// Quickstart: ingest a handful of monitoring records through the public
// API and run a first multievent query.
package main

import (
	"fmt"
	"log"
	"time"

	aiql "github.com/aiql/aiql"
)

func main() {
	db := aiql.Open()

	// Three events on host 7: a shell starts a database client, the
	// database engine writes a dump, and an unknown tool reads it back.
	base := time.Date(2018, 5, 10, 13, 30, 0, 0, time.UTC)
	at := func(sec int) int64 { return base.Add(time.Duration(sec) * time.Second).UnixNano() }

	cmd := aiql.Process{PID: 410, ExeName: "cmd.exe", Path: `C:\Windows\System32\cmd.exe`, User: "dbadmin"}
	osql := aiql.Process{PID: 412, ExeName: "osql.exe", Path: `C:\Program Files\SQL\osql.exe`, User: "dbadmin"}
	sqlservr := aiql.Process{PID: 301, ExeName: "sqlservr.exe", Path: `C:\Program Files\SQL\sqlservr.exe`, User: "system"}
	tool := aiql.Process{PID: 905, ExeName: "sbblv.exe", Path: `C:\Temp\sbblv.exe`, User: "dbadmin"}
	dump := aiql.File{Path: `C:\SQLData\backup1.dmp`, Owner: "system"}

	db.AppendAll([]aiql.Record{
		{AgentID: 7, Subject: cmd, Op: aiql.OpStart, ObjType: aiql.EntityProcess, ObjProc: osql, StartTS: at(0)},
		{AgentID: 7, Subject: sqlservr, Op: aiql.OpWrite, ObjType: aiql.EntityFile, ObjFile: dump, StartTS: at(30), Amount: 850_000_000},
		{AgentID: 7, Subject: tool, Op: aiql.OpRead, ObjType: aiql.EntityFile, ObjFile: dump, StartTS: at(60), Amount: 850_000_000},
	})
	db.Flush()

	res, err := db.Query(`
proc writer write file f["%backup1.dmp"] as evt1
proc reader read file f as evt2
with evt1 before evt2
return distinct writer, reader, f`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Who read the database dump after it was written?")
	fmt.Print(res.Table())
	fmt.Printf("(%d rows, %d events scanned)\n", len(res.Rows), res.Stats.ScannedEvents)
}
