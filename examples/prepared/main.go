// Prepared statements: compile one investigation template, then
// iterate it over different suspects and days — the interactive loop
// attack investigation actually runs (same query shape, different
// bindings), paying for parse/validate/schedule exactly once.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	aiql "github.com/aiql/aiql"
)

func main() {
	db := aiql.Open()

	// Two days of activity on host 7: on May 10 an unknown tool reads
	// the database dump; on May 11 a backup agent reads it legitimately.
	day1 := time.Date(2018, 5, 10, 13, 30, 0, 0, time.UTC)
	day2 := time.Date(2018, 5, 11, 2, 0, 0, 0, time.UTC)

	sqlservr := aiql.Process{PID: 301, ExeName: "sqlservr.exe", Path: `C:\Program Files\SQL\sqlservr.exe`, User: "system"}
	tool := aiql.Process{PID: 905, ExeName: "sbblv.exe", Path: `C:\Temp\sbblv.exe`, User: "dbadmin"}
	backup := aiql.Process{PID: 120, ExeName: "backup.exe", Path: `C:\Windows\backup.exe`, User: "system"}
	dump := aiql.File{Path: `C:\SQLData\backup1.dmp`, Owner: "system"}

	db.AppendAll([]aiql.Record{
		{AgentID: 7, Subject: sqlservr, Op: aiql.OpWrite, ObjType: aiql.EntityFile, ObjFile: dump, StartTS: day1.UnixNano(), Amount: 850_000_000},
		{AgentID: 7, Subject: tool, Op: aiql.OpRead, ObjType: aiql.EntityFile, ObjFile: dump, StartTS: day1.Add(time.Minute).UnixNano(), Amount: 850_000_000},
		{AgentID: 7, Subject: backup, Op: aiql.OpRead, ObjType: aiql.EntityFile, ObjFile: dump, StartTS: day2.UnixNano(), Amount: 850_000_000},
	})
	db.Flush()

	// One template, three typed parameters. The signature is inferred
	// from each placeholder's position: $day is a time literal, $agent a
	// number, $reader an entity string pattern.
	stmt, err := db.Prepare(`
(at $day)
agentid = $agent
proc r[$reader] read file f["%backup1.dmp"] as evt
return distinct r, f`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("template signature:")
	for _, p := range stmt.Params() {
		fmt.Printf(" $%s(%s)", p.Name, p.Type)
	}
	fmt.Println()

	// Iterate the investigation: same compiled plan, different bindings.
	ctx := context.Background()
	for _, bindings := range []aiql.Params{
		{"day": "05/10/2018", "agent": 7, "reader": "%"},        // who read it on the day of the dump?
		{"day": "05/11/2018", "agent": 7, "reader": "%"},        // and the day after?
		{"day": "05/10/2018", "agent": 7, "reader": "%sbblv%"},  // was it the suspicious tool?
		{"day": "05/10/2018", "agent": 7, "reader": "%backup%"}, // or the backup agent?
	} {
		res, err := stmt.Exec(ctx, bindings)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nday=%v reader=%v → %d row(s)\n", bindings["day"], bindings["reader"], len(res.Rows))
		fmt.Print(res.Table())
	}
}
