// Anomaly demonstrates the frequency-based behavioral model of the
// paper's Query 3: a sliding window over network-write events computes a
// moving average of bytes transferred per process, and the having clause
// compares each window against its own history to flag transfer spikes —
// while a steady high-volume talker stays unflagged.
package main

import (
	"fmt"
	"log"
	"time"

	aiql "github.com/aiql/aiql"
)

func main() {
	db := aiql.Open()
	base := time.Date(2018, 5, 10, 9, 0, 0, 0, time.UTC)
	at := func(min, sec int) int64 {
		return base.Add(time.Duration(min)*time.Minute + time.Duration(sec)*time.Second).UnixNano()
	}

	cdn := aiql.Netconn{SrcIP: "10.0.0.2", SrcPort: 49152, DstIP: "203.0.113.129", DstPort: 443, Protocol: "tcp"}
	updater := aiql.Process{PID: 912, ExeName: "updatesvc.exe", Path: `C:\Program Files\Updater\updatesvc.exe`, User: "system"}
	malware := aiql.Process{PID: 2230, ExeName: "sbblv.exe", Path: `C:\Temp\sbblv.exe`, User: "dbadmin"}

	var recs []aiql.Record
	// the updater sends a steady ~1 KB every 30 seconds for 30 minutes
	for m := 0; m < 30; m++ {
		for _, sec := range []int{10, 40} {
			recs = append(recs, aiql.Record{
				AgentID: 2, Subject: updater, Op: aiql.OpWrite,
				ObjType: aiql.EntityNetconn, ObjConn: cdn,
				StartTS: at(m, sec), Amount: 1000,
			})
		}
	}
	// the malware bursts 6 MB per minute for three minutes, mid-window
	for m := 20; m < 23; m++ {
		recs = append(recs, aiql.Record{
			AgentID: 2, Subject: malware, Op: aiql.OpWrite,
			ObjType: aiql.EntityNetconn, ObjConn: cdn,
			StartTS: at(m, 25), Amount: 6_000_000,
		})
	}
	db.AppendAll(recs)
	db.Flush()

	query := `(from "05/10/2018 09:00:00" to "05/10/2018 09:30:00")
agentid = 2
window = 1 min, step = 1 min
proc p write ip i[dstip = "203.0.113.129"] as evt
return p, avg(evt.amount) as amt
group by p
having amt > 2 * (amt + amt[1] + amt[2]) / 3`

	fmt.Println("== anomaly query (paper Query 3): transfer spikes toward 203.0.113.129")
	fmt.Println(query)
	fmt.Println()
	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	fmt.Printf("\n%d anomalous (process, window-average) pairs.\n", len(res.Rows))
	fmt.Println(`The malware's burst dwarfs its (empty) history and is flagged;
the updater's steady 1 KB cadence never deviates from its moving average,
so it stays silent.`)
}
