// Exfiltration walks the live end-to-end investigation of the paper's §3:
// starting with no prior knowledge of the attack, an anomaly query
// surfaces a process shipping unusually large data to a suspicious IP;
// multievent queries then reconstruct the exfiltration chain on the
// database server (step a5 of the APT), iterating exactly as the demo
// narrative describes.
package main

import (
	"fmt"
	"log"

	"github.com/aiql/aiql/internal/experiments"

	aiql "github.com/aiql/aiql"
)

func main() {
	fmt.Println("generating the demo enterprise dataset (APT scenario injected)...")
	db := aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(60000, 10, 42)))
	st := db.Stats()
	fmt.Printf("dataset: %d events, %d processes, %d files, %d connections\n\n",
		st.Events, st.Processes, st.Files, st.Netconns)

	step := func(title, query string) *aiql.Result {
		fmt.Println("== " + title)
		res, err := db.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Table())
		fmt.Printf("(%d rows in %v)\n\n", len(res.Rows), res.Stats.Elapsed.Round(1000))
		return res
	}

	// 1. Assume no prior knowledge: which processes on the database
	// server transfer anomalously large volumes to any single IP?
	step("1. anomaly query: large transfers from the database server",
		`(from "05/10/2018 13:00:00" to "05/10/2018 14:00:00")
agentid = 2
window = 1 min, step = 1 min
proc p write ip i as evt
return p, i, avg(evt.amount) as amt
group by p, i
having amt > 2 * (amt + amt[1] + amt[2]) / 3 and amt > 1000000`)

	// 2. The anomaly flags sbblv.exe and powershell.exe sending to
	// 203.0.113.129. What files did those processes read beforehand?
	step("2. multievent query: files read by the flagged processes",
		`(at "05/10/2018")
agentid = 2
proc p["%sbblv.exe"] read file f as evt
return distinct p, f`)

	// 3. Who created the dump file they read?
	step("3. multievent query: creator of the dump file",
		`(at "05/10/2018")
agentid = 2
proc p write file f["%backup1.dmp"] as evt
return distinct p, f`)

	// 4. Confirm the ordering: connection to the suspicious IP opened
	// before the bulk transfer began.
	step("4. multievent query: connect precedes the data transfer",
		`(at "05/10/2018")
agentid = 2
proc p["%sbblv.exe"] connect ip i[dstip = "203.0.113.129"] as evt1
proc p write ip i as evt2
with evt1 before evt2
return distinct p, i`)

	// 5. The full chain in one query — the paper's Query 1.
	step("5. the complete exfiltration behavior (paper Query 1)",
		`(at "05/10/2018")
agentid = 2
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip = "203.0.113.129"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1`)

	fmt.Println("investigation of step a5 complete: cmd.exe → osql.exe triggered the dump,")
	fmt.Println("sqlservr.exe wrote backup1.dmp, sbblv.exe read it and shipped it to 203.0.113.129.")
}
