// Dependency demonstrates forward dependency tracking (the paper's
// Query 2): starting from the staging of a malware file on the web
// server, the query follows the causal event path — across hosts through
// a shared network connection — to the workstation where the malware
// landed and ran.
package main

import (
	"fmt"
	"log"

	"github.com/aiql/aiql/internal/experiments"

	aiql "github.com/aiql/aiql"
)

func main() {
	fmt.Println("generating the demo enterprise dataset (APT scenario injected)...")
	db := aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(60000, 10, 42)))

	query := `(at "05/10/2018")
forward: proc p1["%cp%", agentid = 1] ->[write] file f1["%info_stealer%"]
<-[read] proc p2["%apache%"]
->[connect] proc p3[agentid = 5]
->[write] file f2["%info_stealer%"]
return f1, p1, p2, p3, f2`

	fmt.Println("== forward tracking of the malware's ramification (paper Query 2)")
	fmt.Println(query)
	fmt.Println()

	// the dependency query compiles to a multievent query; show the plan
	plan, err := db.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("engine schedule (pruning-power order):")
	fmt.Println(plan)

	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	fmt.Printf("\n(%d rows in %v, %d events scanned)\n",
		len(res.Rows), res.Stats.Elapsed.Round(1000), res.Stats.ScannedEvents)
	fmt.Println(`
Reading the path: /bin/cp staged the script under the web root on host 1,
apache2 served it over a connection accepted on host 5, where it was
written back to disk — the cross-host hop is joined on the shared
network connection observed by both agents.`)

	// backward variant: from the workstation copy back toward its origin
	// (each edge to the right happened earlier)
	back := `(at "05/10/2018")
backward: file f2["%info_stealer.exe", agentid = 5] <-[write] proc p3 ->[accept] ip c1
return f2, p3, c1.src_ip`
	fmt.Println("== backward tracking from the dropped file")
	bres, err := db.Query(back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bres.Table())
	fmt.Printf("(%d rows)\n", len(bres.Rows))
}
