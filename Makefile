# Tier-1 gate: what CI runs, runnable locally with `make check`.

GO ?= go

.PHONY: check fmt vet build test race race-nommap bench bench-streaming bench-segments bench-persist bench-prepare bench-ingest bench-scan bench-obs bench-shard smoke-metrics smoke-shard serve

check: fmt vet build race race-nommap

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The storage packages again with mmap compiled out (pread fallback):
# keeps the aiql_nommap build honest and races the same code paths the
# fallback exercises on platforms without mmap.
race-nommap:
	$(GO) test -race -tags aiql_nommap ./internal/durable/... ./internal/eventstore/...

# run-bench <package> <bench regex> <benchtime> <output json>: run one
# benchmark group and convert its output into the named JSON report for
# the CI perf-trajectory artifact.
define run-bench
	$(GO) test $(1) -run XXX -bench '$(2)' \
		-benchtime=$(3) > bench.out 2>&1 || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o $(4) < bench.out
	@rm -f bench.out
endef

bench: bench-streaming bench-segments bench-persist bench-prepare bench-ingest bench-scan bench-obs bench-shard

# Streaming/caching benchmarks on the Fig4 50k-event dataset: cold vs.
# warm cache, full drain vs. LIMIT-50 early termination.
bench-streaming:
	$(call run-bench,./internal/service/,BenchmarkColdQuery|BenchmarkWarmCache|BenchmarkFullDrain|BenchmarkLimit50EarlyTermination,5x,BENCH_streaming.json)

# Segment-granular reuse benchmarks on the Fig4 50k-event dataset:
# cold re-execution vs. full result-cache hit vs. partial reuse after an
# append (sealed segments served from the scan cache, only the fresh
# tail re-scanned; target >= 10x vs cold).
bench-segments:
	$(call run-bench,./internal/service/,BenchmarkSegmentsCold|BenchmarkSegmentsFullCacheHit|BenchmarkSegmentsPartialReuseAfterAppend,20x,BENCH_segments.json)

# Durable-storage benchmarks on the Fig4 50k-event dataset: dataset
# load from file-per-segment snapshots — v2 mmap cold open (footer +
# block directory only, target >= 3x vs the eager v1 decode) and the
# eager v1 gob decode — vs. legacy gob replay (re-intern, re-chunk,
# re-seal, re-index everything; target >= 5x).
bench-persist:
	$(call run-bench,./internal/eventstore/,BenchmarkPersist,10x,BENCH_persist.json)

# Prepared-statement benchmarks on the Fig4 50k dataset: per-call
# parse+plan+execute vs. compile-once/execute-many re-execution of the
# same investigation template.
bench-prepare:
	$(call run-bench,./internal/service/,BenchmarkPrepareColdPerCall|BenchmarkPreparedReexecute,50x,BENCH_prepare.json)

# Live-ingestion + standing-query benchmarks on the Fig4 50k dataset:
# per-append incremental re-evaluation (delta state + scan cache) vs.
# full re-execution (target >= 5x), plus acknowledged ingest throughput
# with and without a registered watch.
bench-ingest:
	$(call run-bench,./internal/service/,BenchmarkStandingEvalFullRescan|BenchmarkStandingEvalIncremental|BenchmarkIngestBatch$$|BenchmarkIngestBatchWatched,20x,BENCH_ingest.json)

# Parallel-scan benchmarks on the Fig4 50k-event dataset: cold full
# scans, sequential (row-at-a-time reference path) vs. the batch/bitmap
# executor at 1/2/4/8 workers, plus warm scan-cache parity. Target:
# >= 2x cold speedup at 4 workers vs. sequential.
bench-scan:
	$(call run-bench,./internal/engine/,BenchmarkScan,10x,BENCH_scan.json)

# Observability benchmarks on the Fig4 50k-event dataset: the full
# four-pattern investigation query, cold-scanned, with and without a
# query span in the context. Unlike the other bench targets this one
# gates: benchjson asserts the traced run stays within 5% of the
# untraced one (ns/op ratio <= 1.05, recorded in BENCH_obs.json), so
# tracing stays cheap enough to leave on for every execution.
bench-obs:
	$(GO) test ./internal/engine/ -run XXX -bench 'BenchmarkObsFig4' \
		-benchtime=10x > bench.out 2>&1 || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_obs.json \
		-max-ratio 'BenchmarkObsFig4TraceOn/BenchmarkObsFig4TraceOff<=1.05' < bench.out
	@rm -f bench.out

# Sharded scatter-gather benchmarks on the Fig4 50k-event dataset: cold
# full-corpus scatter + k-way merge-sort at 1, 2, and 4 local members.
# The 1-shard run is the unsharded baseline the merge overhead is read
# against.
bench-shard:
	$(call run-bench,./internal/shard/,BenchmarkShardColdScan,10x,BENCH_shard.json)

# Boot aiqlserver on the built-in demo dataset, scrape /metrics on both
# the API and ops listeners, and lint the expositions with promlint.
smoke-metrics:
	$(GO) build -o aiqlserver.smoke ./cmd/aiqlserver
	@./aiqlserver.smoke -addr 127.0.0.1:18080 -ops-addr 127.0.0.1:18081 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null; rm -f aiqlserver.smoke metrics.smoke' EXIT; \
	ok=0; for i in $$(seq 1 100); do \
		if curl -fsS 127.0.0.1:18080/metrics > metrics.smoke 2>/dev/null; then ok=1; break; fi; \
		sleep 0.2; done; \
	[ $$ok -eq 1 ] || { echo "aiqlserver never served /metrics"; exit 1; }; \
	$(GO) run ./cmd/promlint < metrics.smoke || exit 1; \
	curl -fsS 127.0.0.1:18081/metrics | $(GO) run ./cmd/promlint || exit 1; \
	curl -fsS -o /dev/null 127.0.0.1:18081/debug/pprof/cmdline || exit 1; \
	echo "metrics smoke OK"

# Sharded-deployment smoke: two member aiqlservers (each serving the
# built-in 50k-event demo dataset) behind one coordinator running the
# partition map, exercised end to end over the wire — readiness via
# /api/v1/healthz, a scatter-gather Fig4 investigation, a LIMIT-
# paginated cursor walk, and a promlint-checked scrape of the
# coordinator's aiql_shard_* metrics.
smoke-shard:
	$(GO) build -o aiqlserver.smoke ./cmd/aiqlserver
	@printf '%s\n' '{"datasets":[{"dataset":"fig4","members":[{"name":"m1","url":"http://127.0.0.1:18091","dataset":"demo"},{"name":"m2","url":"http://127.0.0.1:18092","dataset":"demo"}]}]}' > shards.smoke.json; \
	./aiqlserver.smoke -addr 127.0.0.1:18091 & m1=$$!; \
	./aiqlserver.smoke -addr 127.0.0.1:18092 & m2=$$!; \
	./aiqlserver.smoke -addr 127.0.0.1:18090 -shards shards.smoke.json & co=$$!; \
	trap 'kill $$m1 $$m2 $$co 2>/dev/null; \
		rm -f aiqlserver.smoke shards.smoke.json shard.smoke page1.smoke page2.smoke metrics.shard.smoke' EXIT; \
	ok=0; for i in $$(seq 1 150); do \
		if curl -fsS -o /dev/null 127.0.0.1:18091/api/v1/healthz 2>/dev/null && \
		   curl -fsS -o /dev/null 127.0.0.1:18092/api/v1/healthz 2>/dev/null && \
		   curl -fsS -o /dev/null 127.0.0.1:18090/api/v1/healthz 2>/dev/null; then ok=1; break; fi; \
		sleep 0.2; done; \
	[ $$ok -eq 1 ] || { echo "shard smoke: servers never became healthy"; exit 1; }; \
	curl -fsS -X POST 127.0.0.1:18090/api/v1/query \
		-d '{"query": "(at \"05/10/2018\") agentid = 1 proc p accept ip i[srcip = \"203.0.113.129\"] as evt return distinct p, i.src_ip"}' \
		> shard.smoke || { echo "shard smoke: scatter-gather query failed"; exit 1; }; \
	grep -q '"total_rows":[1-9]' shard.smoke || { echo "shard smoke: scatter-gather returned no rows:"; cat shard.smoke; exit 1; }; \
	curl -fsS -X POST 127.0.0.1:18090/api/v1/query \
		-d '{"query": "proc p write file f as evt return p, f", "limit": 5}' \
		> page1.smoke || { echo "shard smoke: paginated query failed"; exit 1; }; \
	cur=$$(sed -n 's/.*"next_cursor":"\([^"]*\)".*/\1/p' page1.smoke); \
	[ -n "$$cur" ] || { echo "shard smoke: no next_cursor on page 1:"; cat page1.smoke; exit 1; }; \
	curl -fsS -X POST 127.0.0.1:18090/api/v1/query \
		-d "{\"query\": \"proc p write file f as evt return p, f\", \"limit\": 5, \"cursor\": \"$$cur\"}" \
		> page2.smoke || { echo "shard smoke: cursor page failed"; exit 1; }; \
	grep -q '"offset":5' page2.smoke || { echo "shard smoke: page 2 offset wrong:"; cat page2.smoke; exit 1; }; \
	curl -fsS 127.0.0.1:18090/metrics > metrics.shard.smoke || exit 1; \
	$(GO) run ./cmd/promlint < metrics.shard.smoke || exit 1; \
	grep -q 'aiql_shard_fanouts_total' metrics.shard.smoke || { echo "shard smoke: no aiql_shard_* series in the exposition"; exit 1; }; \
	echo "shard smoke OK"

# Web UI + JSON API on :8080 over the built-in demo dataset.
serve:
	$(GO) run ./cmd/aiqlserver
