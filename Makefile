# Tier-1 gate: what CI runs, runnable locally with `make check`.

GO ?= go

.PHONY: check fmt vet build test race bench serve

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Cold-vs-warm result-cache comparison on the Fig4 50k-event dataset.
bench:
	$(GO) test ./internal/service/ -run XXX -bench 'BenchmarkColdQuery|BenchmarkWarmCache' -benchtime=5x

# Web UI + JSON API on :8080 over the built-in demo dataset.
serve:
	$(GO) run ./cmd/aiqlserver
