# Tier-1 gate: what CI runs, runnable locally with `make check`.

GO ?= go

.PHONY: check fmt vet build test race bench bench-streaming bench-segments bench-persist bench-prepare bench-ingest serve

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Streaming/caching benchmarks on the Fig4 50k-event dataset: cold vs.
# warm cache, full drain vs. LIMIT-50 early termination. Emits
# BENCH_streaming.json for the CI perf-trajectory artifact.
bench: bench-streaming bench-segments bench-persist bench-prepare bench-ingest

bench-streaming:
	$(GO) test ./internal/service/ -run XXX \
		-bench 'BenchmarkColdQuery|BenchmarkWarmCache|BenchmarkFullDrain|BenchmarkLimit50EarlyTermination' \
		-benchtime=5x > bench.out 2>&1 || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_streaming.json < bench.out
	@rm -f bench.out

# Segment-granular reuse benchmarks on the Fig4 50k-event dataset:
# cold re-execution vs. full result-cache hit vs. partial reuse after an
# append (sealed segments served from the scan cache, only the fresh
# tail re-scanned; target >= 10x vs cold). Emits BENCH_segments.json.
bench-segments:
	$(GO) test ./internal/service/ -run XXX \
		-bench 'BenchmarkSegmentsCold|BenchmarkSegmentsFullCacheHit|BenchmarkSegmentsPartialReuseAfterAppend' \
		-benchtime=20x > bench.out 2>&1 || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_segments.json < bench.out
	@rm -f bench.out

# Durable-storage benchmarks on the Fig4 50k-event dataset: dataset
# load from file-per-segment snapshots (columnar decode + restored
# indexes, no replay) vs. legacy gob replay (re-intern, re-chunk,
# re-seal, re-index everything). Target >= 5x. Emits BENCH_persist.json.
bench-persist:
	$(GO) test ./internal/eventstore/ -run XXX \
		-bench 'BenchmarkPersistGobReplay|BenchmarkPersistSegmentLoad' \
		-benchtime=10x > bench.out 2>&1 || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_persist.json < bench.out
	@rm -f bench.out

# Prepared-statement benchmarks on the Fig4 50k dataset: per-call
# parse+plan+execute vs. compile-once/execute-many re-execution of the
# same investigation template. Emits BENCH_prepare.json.
bench-prepare:
	$(GO) test ./internal/service/ -run XXX \
		-bench 'BenchmarkPrepareColdPerCall|BenchmarkPreparedReexecute' \
		-benchtime=50x > bench.out 2>&1 || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_prepare.json < bench.out
	@rm -f bench.out

# Live-ingestion + standing-query benchmarks on the Fig4 50k dataset:
# per-append incremental re-evaluation (delta state + scan cache) vs.
# full re-execution (target >= 5x), plus acknowledged ingest throughput
# with and without a registered watch. Emits BENCH_ingest.json.
bench-ingest:
	$(GO) test ./internal/service/ -run XXX \
		-bench 'BenchmarkStandingEvalFullRescan|BenchmarkStandingEvalIncremental|BenchmarkIngestBatch$$|BenchmarkIngestBatchWatched' \
		-benchtime=20x > bench.out 2>&1 || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_ingest.json < bench.out
	@rm -f bench.out

# Web UI + JSON API on :8080 over the built-in demo dataset.
serve:
	$(GO) run ./cmd/aiqlserver
