# Tier-1 gate: what CI runs, runnable locally with `make check`.

GO ?= go

.PHONY: check fmt vet build test race race-nommap bench bench-streaming bench-segments bench-persist bench-prepare bench-ingest bench-scan bench-obs smoke-metrics serve

check: fmt vet build race race-nommap

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The storage packages again with mmap compiled out (pread fallback):
# keeps the aiql_nommap build honest and races the same code paths the
# fallback exercises on platforms without mmap.
race-nommap:
	$(GO) test -race -tags aiql_nommap ./internal/durable/... ./internal/eventstore/...

# run-bench <package> <bench regex> <benchtime> <output json>: run one
# benchmark group and convert its output into the named JSON report for
# the CI perf-trajectory artifact.
define run-bench
	$(GO) test $(1) -run XXX -bench '$(2)' \
		-benchtime=$(3) > bench.out 2>&1 || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o $(4) < bench.out
	@rm -f bench.out
endef

bench: bench-streaming bench-segments bench-persist bench-prepare bench-ingest bench-scan bench-obs

# Streaming/caching benchmarks on the Fig4 50k-event dataset: cold vs.
# warm cache, full drain vs. LIMIT-50 early termination.
bench-streaming:
	$(call run-bench,./internal/service/,BenchmarkColdQuery|BenchmarkWarmCache|BenchmarkFullDrain|BenchmarkLimit50EarlyTermination,5x,BENCH_streaming.json)

# Segment-granular reuse benchmarks on the Fig4 50k-event dataset:
# cold re-execution vs. full result-cache hit vs. partial reuse after an
# append (sealed segments served from the scan cache, only the fresh
# tail re-scanned; target >= 10x vs cold).
bench-segments:
	$(call run-bench,./internal/service/,BenchmarkSegmentsCold|BenchmarkSegmentsFullCacheHit|BenchmarkSegmentsPartialReuseAfterAppend,20x,BENCH_segments.json)

# Durable-storage benchmarks on the Fig4 50k-event dataset: dataset
# load from file-per-segment snapshots — v2 mmap cold open (footer +
# block directory only, target >= 3x vs the eager v1 decode) and the
# eager v1 gob decode — vs. legacy gob replay (re-intern, re-chunk,
# re-seal, re-index everything; target >= 5x).
bench-persist:
	$(call run-bench,./internal/eventstore/,BenchmarkPersist,10x,BENCH_persist.json)

# Prepared-statement benchmarks on the Fig4 50k dataset: per-call
# parse+plan+execute vs. compile-once/execute-many re-execution of the
# same investigation template.
bench-prepare:
	$(call run-bench,./internal/service/,BenchmarkPrepareColdPerCall|BenchmarkPreparedReexecute,50x,BENCH_prepare.json)

# Live-ingestion + standing-query benchmarks on the Fig4 50k dataset:
# per-append incremental re-evaluation (delta state + scan cache) vs.
# full re-execution (target >= 5x), plus acknowledged ingest throughput
# with and without a registered watch.
bench-ingest:
	$(call run-bench,./internal/service/,BenchmarkStandingEvalFullRescan|BenchmarkStandingEvalIncremental|BenchmarkIngestBatch$$|BenchmarkIngestBatchWatched,20x,BENCH_ingest.json)

# Parallel-scan benchmarks on the Fig4 50k-event dataset: cold full
# scans, sequential (row-at-a-time reference path) vs. the batch/bitmap
# executor at 1/2/4/8 workers, plus warm scan-cache parity. Target:
# >= 2x cold speedup at 4 workers vs. sequential.
bench-scan:
	$(call run-bench,./internal/engine/,BenchmarkScan,10x,BENCH_scan.json)

# Observability benchmarks on the Fig4 50k-event dataset: the full
# four-pattern investigation query, cold-scanned, with and without a
# query span in the context. Unlike the other bench targets this one
# gates: benchjson asserts the traced run stays within 5% of the
# untraced one (ns/op ratio <= 1.05, recorded in BENCH_obs.json), so
# tracing stays cheap enough to leave on for every execution.
bench-obs:
	$(GO) test ./internal/engine/ -run XXX -bench 'BenchmarkObsFig4' \
		-benchtime=10x > bench.out 2>&1 || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_obs.json \
		-max-ratio 'BenchmarkObsFig4TraceOn/BenchmarkObsFig4TraceOff<=1.05' < bench.out
	@rm -f bench.out

# Boot aiqlserver on the built-in demo dataset, scrape /metrics on both
# the API and ops listeners, and lint the expositions with promlint.
smoke-metrics:
	$(GO) build -o aiqlserver.smoke ./cmd/aiqlserver
	@./aiqlserver.smoke -addr 127.0.0.1:18080 -ops-addr 127.0.0.1:18081 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null; rm -f aiqlserver.smoke metrics.smoke' EXIT; \
	ok=0; for i in $$(seq 1 100); do \
		if curl -fsS 127.0.0.1:18080/metrics > metrics.smoke 2>/dev/null; then ok=1; break; fi; \
		sleep 0.2; done; \
	[ $$ok -eq 1 ] || { echo "aiqlserver never served /metrics"; exit 1; }; \
	$(GO) run ./cmd/promlint < metrics.smoke || exit 1; \
	curl -fsS 127.0.0.1:18081/metrics | $(GO) run ./cmd/promlint || exit 1; \
	curl -fsS -o /dev/null 127.0.0.1:18081/debug/pprof/cmdline || exit 1; \
	echo "metrics smoke OK"

# Web UI + JSON API on :8080 over the built-in demo dataset.
serve:
	$(GO) run ./cmd/aiqlserver
