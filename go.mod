module github.com/aiql/aiql

go 1.22
