// Benchmarks regenerating the paper's evaluation artifacts. Each
// figure/table has one benchmark (with per-query sub-benchmarks for the
// figures' individual bars):
//
//	Figure 4  — BenchmarkFig4AIQL, BenchmarkFig4PostgreSQL
//	Figure 5  — BenchmarkFig5AIQL, BenchmarkFig5PostgreSQLNoOpt,
//	            BenchmarkFig5Neo4j
//	Conciseness table — BenchmarkConcisenessTranslation (the metrics
//	            themselves are asserted in TestConcisenessRatios)
//	Storage ablation  — BenchmarkIngest*
//	Scheduling ablation — BenchmarkScheduling*
//
// The full figure-shaped output (log10 times, totals, speedups) comes
// from `go run ./cmd/aiqlbench`; these benchmarks provide the
// stable-environment timings.
package aiql_test

import (
	"context"
	"sync"
	"testing"

	"github.com/aiql/aiql/internal/aiql/parser"
	"github.com/aiql/aiql/internal/datagen"
	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/experiments"
	"github.com/aiql/aiql/internal/graphdb"
	"github.com/aiql/aiql/internal/relational"
	"github.com/aiql/aiql/internal/translate"
)

// Benchmark dataset sizes, kept modest so the full suite runs in
// minutes; cmd/aiqlbench scales the same workloads up.
const (
	benchFig4Events = 60000
	benchFig5Events = 40000
	benchHosts      = 10
	benchSeed       = 42
)

var (
	fig4Once  sync.Once
	fig4Store *eventstore.Store
	fig4RDB   *relational.DB
	fig4SQL   []string

	fig5Once  sync.Once
	fig5Store *eventstore.Store
	fig5RDB   *relational.DB
	fig5Graph *graphdb.Graph
	fig5Pats  []*graphdb.Pattern
	fig5SQL   []string
)

func fig4Setup(b *testing.B) {
	fig4Once.Do(func() {
		fig4Store = experiments.BuildStore(experiments.Fig4Dataset(benchFig4Events, benchHosts, benchSeed))
		fig4RDB = relational.Open(true)
		if err := translate.LoadRelational(fig4RDB, fig4Store); err != nil {
			panic(err)
		}
		for _, q := range experiments.Fig4Queries() {
			ast, err := parser.Parse(q.Text)
			if err != nil {
				panic(err)
			}
			sql, err := translate.ToSQL(ast)
			if err != nil {
				panic(err)
			}
			fig4SQL = append(fig4SQL, sql)
		}
	})
	b.ReportAllocs()
}

func fig5Setup(b *testing.B) {
	fig5Once.Do(func() {
		fig5Store = experiments.BuildStore(experiments.Fig5Dataset(benchFig5Events, benchHosts, benchSeed))
		fig5RDB = relational.Open(false)
		if err := translate.LoadRelational(fig5RDB, fig5Store); err != nil {
			panic(err)
		}
		fig5Graph = graphdb.New()
		if err := translate.LoadGraph(fig5Graph, fig5Store); err != nil {
			panic(err)
		}
		for _, q := range experiments.Fig5Queries() {
			ast, err := parser.Parse(q.Text)
			if err != nil {
				panic(err)
			}
			sql, err := translate.ToSQL(ast)
			if err != nil {
				panic(err)
			}
			fig5SQL = append(fig5SQL, sql)
			ast2, err := parser.Parse(q.Text)
			if err != nil {
				panic(err)
			}
			pat, err := translate.ToGraphPattern(ast2)
			if err != nil {
				panic(err)
			}
			fig5Pats = append(fig5Pats, pat)
		}
	})
	b.ReportAllocs()
}

// BenchmarkFig4AIQL times each Figure-4 investigation query on the AIQL
// engine (one sub-benchmark per bar).
func BenchmarkFig4AIQL(b *testing.B) {
	fig4Setup(b)
	eng := engine.New(fig4Store)
	for _, q := range experiments.Fig4Queries() {
		b.Run(q.Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Execute(context.Background(), q.Text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4PostgreSQL times the equivalent SQL on the relational
// baseline with optimized storage (indexes), Figure 4's second series.
func BenchmarkFig4PostgreSQL(b *testing.B) {
	fig4Setup(b)
	queries := experiments.Fig4Queries()
	for i, q := range queries {
		sql := fig4SQL[i]
		b.Run(q.Label, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := fig4RDB.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5AIQL times each Figure-5 case-study query on AIQL.
func BenchmarkFig5AIQL(b *testing.B) {
	fig5Setup(b)
	eng := engine.New(fig5Store)
	for _, q := range experiments.Fig5Queries() {
		b.Run(q.Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Execute(context.Background(), q.Text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5PostgreSQLNoOpt times the equivalent SQL on the plain-heap
// relational baseline (no indexes), Figure 5's PostgreSQL series.
func BenchmarkFig5PostgreSQLNoOpt(b *testing.B) {
	fig5Setup(b)
	queries := experiments.Fig5Queries()
	for i, q := range queries {
		sql := fig5SQL[i]
		b.Run(q.Label, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := fig5RDB.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Neo4j times the equivalent graph patterns on the property-
// graph baseline, Figure 5's Neo4j series.
func BenchmarkFig5Neo4j(b *testing.B) {
	fig5Setup(b)
	queries := experiments.Fig5Queries()
	for i, q := range queries {
		pat := fig5Pats[i]
		b.Run(q.Label, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := fig5Graph.Match(pat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcisenessTranslation measures the query translation +
// metric pipeline behind the conciseness table.
func BenchmarkConcisenessTranslation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunConciseness(experiments.Fig4Queries()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ingest benchmarks: the storage-optimization ablation (E5). Each
// benchmark ingests the same record stream under one storage variant.
func benchIngest(b *testing.B, opts eventstore.Options) {
	recs := datagen.Generate(datagen.Config{
		Seed: benchSeed, Hosts: benchHosts, Events: 20000,
		Scenarios: []datagen.Scenario{datagen.ScenarioDemoAPT},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := eventstore.New(opts)
		s.AppendAll(recs)
		s.Flush()
	}
}

// BenchmarkIngestAllOptimizations ingests with every optimization on.
func BenchmarkIngestAllOptimizations(b *testing.B) {
	benchIngest(b, eventstore.DefaultOptions())
}

// BenchmarkIngestNoDedup ingests without entity deduplication.
func BenchmarkIngestNoDedup(b *testing.B) {
	o := eventstore.DefaultOptions()
	o.Dedup = false
	benchIngest(b, o)
}

// BenchmarkIngestNoIndexes ingests without attribute/posting indexes.
func BenchmarkIngestNoIndexes(b *testing.B) {
	o := eventstore.DefaultOptions()
	o.Indexes = false
	benchIngest(b, o)
}

// BenchmarkIngestNoPartitioning ingests into a single heap chunk.
func BenchmarkIngestNoPartitioning(b *testing.B) {
	o := eventstore.DefaultOptions()
	o.Partitioning = false
	benchIngest(b, o)
}

// BenchmarkIngestNoBatchCommit ingests with per-event commits.
func BenchmarkIngestNoBatchCommit(b *testing.B) {
	o := eventstore.DefaultOptions()
	o.BatchCommit = false
	benchIngest(b, o)
}

// BenchmarkIngestPlain ingests with every optimization off.
func BenchmarkIngestPlain(b *testing.B) {
	benchIngest(b, eventstore.PlainOptions())
}

// Scheduling benchmarks: the engine ablation (E6) over the Figure-4
// workload.
func benchScheduling(b *testing.B, cfg engine.Config) {
	fig4Setup(b)
	eng := engine.NewWithConfig(fig4Store, cfg)
	queries := experiments.Fig4Queries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := eng.Execute(context.Background(), q.Text); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSchedulingOptimized runs the workload with both scheduling
// optimizations on.
func BenchmarkSchedulingOptimized(b *testing.B) {
	benchScheduling(b, engine.Config{})
}

// BenchmarkSchedulingNoReordering disables pruning-power ordering.
func BenchmarkSchedulingNoReordering(b *testing.B) {
	benchScheduling(b, engine.Config{DisableReordering: true})
}

// BenchmarkSchedulingNoParallelism disables partition-parallel scans.
func BenchmarkSchedulingNoParallelism(b *testing.B) {
	benchScheduling(b, engine.Config{DisableParallel: true})
}

// BenchmarkSchedulingNeither disables both.
func BenchmarkSchedulingNeither(b *testing.B) {
	benchScheduling(b, engine.Config{DisableReordering: true, DisableParallel: true})
}
