// Command aiql executes Attack Investigation Query Language queries over
// a dataset snapshot, either one-shot (-query / -file) or as an
// interactive REPL.
//
// Usage:
//
//	aiql -data data.aiql -query 'proc p read file f["%passwd%"] as e return distinct p, f'
//	aiql -data data.aiql            # REPL: terminate queries with a ';' line
//	aiql -data data.aiql -explain -query '...'
//	aiql -data data.aiql -migrate ./storedir   # one-shot: convert a gob snapshot to a durable directory
//	aiql -data ./storedir -migrate ./storedir  # one-shot: upgrade v1 segment files to v2 in place
//
// -data also accepts a durable store directory; -migrate converts a
// legacy gob snapshot into the file-per-segment durable layout that
// aiqlserver -data-dir (and -data here) serves without replay. When
// -data and -migrate name the same durable directory, the segment files
// are instead rewritten in place in the v2 mmap-friendly columnar
// format (a no-op for files already v2).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/aiql/aiql/internal/experiments"
	"github.com/aiql/aiql/internal/obs"

	aiql "github.com/aiql/aiql"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aiql: ")
	var (
		data    = flag.String("data", "", "dataset snapshot file (from aiqlgen); empty = built-in demo dataset")
		query   = flag.String("query", "", "one-shot query text")
		file    = flag.String("file", "", "read the query from a file")
		explain = flag.Bool("explain", false, "show the execution plan instead of running")
		stats   = flag.Bool("stats", true, "print execution statistics after results")
		migrate = flag.String("migrate", "", "one-shot: convert the -data gob snapshot into a durable store directory at this path, then exit")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		b := obs.Build()
		fmt.Printf("aiql %s (%s)\n", b.Version, b.GoVersion)
		return
	}

	if *migrate != "" {
		if *data == "" {
			log.Fatal("-migrate requires -data naming the legacy gob snapshot or durable store directory")
		}
		start := time.Now()
		if fi, err := os.Stat(*data); err == nil && fi.IsDir() && filepath.Clean(*data) == filepath.Clean(*migrate) {
			// In-place upgrade: rewrite the directory's v1 segment files
			// in the v2 mmap-friendly columnar format. Filenames and the
			// manifest are unchanged, so the upgrade is restartable.
			db, err := aiql.OpenDir(*data)
			if err != nil {
				log.Fatal(err)
			}
			n, err := db.UpgradeSegments()
			if cerr := db.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "upgraded %d segment files in %s to the v2 columnar format in %v\n",
				n, *data, time.Since(start).Round(time.Millisecond))
			return
		}
		db, err := aiql.OpenPath(*data)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.SaveDir(*migrate); err != nil {
			log.Fatal(err)
		}
		st := db.Stats()
		fmt.Fprintf(os.Stderr, "migrated %d events (%d processes, %d files, %d connections) from %s to %s in %v\n",
			st.Events, st.Processes, st.Files, st.Netconns, *data, *migrate, time.Since(start).Round(time.Millisecond))
		return
	}

	db := openDB(*data)
	st := db.Stats()
	fmt.Fprintf(os.Stderr, "loaded %d events across %d chunks (%d processes, %d files, %d connections)\n",
		st.Events, st.Partitions, st.Processes, st.Files, st.Netconns)

	switch {
	case *query != "":
		run(db, *query, *explain, *stats)
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		run(db, string(b), *explain, *stats)
	default:
		repl(db, *explain, *stats)
	}
}

func openDB(path string) *aiql.DB {
	if path == "" {
		fmt.Fprintln(os.Stderr, "no -data given; generating the built-in demo dataset (50k events, demo-apt scenario)")
		return aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42)))
	}
	db, err := aiql.OpenPath(path)
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func run(db *aiql.DB, src string, explain, stats bool) {
	if explain {
		plan, err := db.Explain(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(plan)
		return
	}
	start := time.Now()
	res, err := db.Query(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	if stats {
		fmt.Fprintf(os.Stderr, "\n%d rows in %v (scanned %d events, order %v)\n",
			len(res.Rows), time.Since(start).Round(time.Microsecond),
			res.Stats.ScannedEvents, res.Stats.PatternOrder)
	}
}

func repl(db *aiql.DB, explain, stats bool) {
	fmt.Fprintln(os.Stderr, `AIQL interactive shell — end a query with a line containing only ';'
commands: \explain (toggle), \stats (toggle), \quit`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var buf []string
	prompt := func() { fmt.Fprint(os.Stderr, "aiql> ") }
	prompt()
	for sc.Scan() {
		line := sc.Text()
		switch strings.TrimSpace(line) {
		case `\quit`, `\q`:
			return
		case `\explain`:
			explain = !explain
			fmt.Fprintf(os.Stderr, "explain mode: %v\n", explain)
			prompt()
			continue
		case `\stats`:
			stats = !stats
			fmt.Fprintf(os.Stderr, "stats: %v\n", stats)
			prompt()
			continue
		case ";":
			src := strings.Join(buf, "\n")
			buf = buf[:0]
			if strings.TrimSpace(src) != "" {
				func() {
					defer func() {
						if r := recover(); r != nil {
							fmt.Fprintf(os.Stderr, "panic: %v\n", r)
						}
					}()
					if err := aiql.Check(src); err != nil {
						fmt.Fprintf(os.Stderr, "error: %v\n", err)
						return
					}
					runSafe(db, src, explain, stats)
				}()
			}
			prompt()
			continue
		default:
			buf = append(buf, line)
			continue
		}
	}
}

func runSafe(db *aiql.DB, src string, explain, stats bool) {
	if explain {
		plan, err := db.Explain(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		fmt.Print(plan)
		return
	}
	start := time.Now()
	res, err := db.Query(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	fmt.Print(res.Table())
	if stats {
		fmt.Fprintf(os.Stderr, "%d rows in %v\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
	}
}
