// Command promlint validates a Prometheus text-format exposition read
// from stdin (the subset aiqlserver's /metrics emits: HELP/TYPE
// comments, counter/gauge/histogram samples). CI pipes a live scrape
// through it so a malformed exposition fails the build instead of
// silently breaking scrapes in the field:
//
//	curl -fsS localhost:8080/metrics | go run ./cmd/promlint
//
// Exits 0 on a well-formed exposition, 1 otherwise (the first error is
// printed with its line number).
package main

import (
	"io"
	"log"
	"os"

	"github.com/aiql/aiql/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("promlint: ")
	body, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(body) == 0 {
		log.Fatal("empty exposition on stdin")
	}
	if err := obs.ValidateExposition(body); err != nil {
		log.Fatal(err)
	}
}
