// Command aiqlserver serves the AIQL web UI (paper §3, Figure 3) and the
// versioned JSON query API. Both routes share one concurrent query
// service: a bounded worker pool with admission control and per-client
// fairness, per-query deadlines, singleflight collapsing of identical
// in-flight queries, and a byte-bounded LRU result cache keyed on the
// store's commit counter. Large results page through cursor tokens or
// stream as NDJSON straight from the engine's cursor pipeline.
//
// Usage:
//
//	aiqlserver -data data.aiql -addr :8080
//
// API:
//
//	POST /api/v1/query         {"query": "...", "limit": 100, "cursor": "...", "timeout_ms": 5000}
//	POST /api/v1/query/stream  {"query": "...", "limit": 100, "timeout_ms": 5000}  (NDJSON)
//	POST /api/v1/check         {"query": "..."}
//	GET  /api/v1/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/aiql/aiql/internal/experiments"
	"github.com/aiql/aiql/internal/service"
	"github.com/aiql/aiql/internal/webui"

	aiql "github.com/aiql/aiql"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aiqlserver: ")
	var (
		data       = flag.String("data", "", "dataset snapshot file (from aiqlgen); empty = built-in demo dataset")
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "max concurrent query executions (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "admission queue depth beyond workers (0 = 4x workers)")
		cache      = flag.Int("cache", 256, "result cache entries (negative disables)")
		cacheBytes = flag.Int64("cache-bytes", 0, "result cache byte budget (0 = 64 MiB, negative = unbounded)")
		perClient  = flag.Int("client-inflight", 0, "max concurrent executions per client (0 = half the workers, negative disables)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-query execution timeout")
	)
	flag.Parse()

	var db *aiql.DB
	if *data == "" {
		fmt.Fprintln(os.Stderr, "no -data given; generating the built-in demo dataset (50k events, demo-apt scenario)")
		db = aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42)))
	} else {
		var err error
		db, err = aiql.LoadFile(*data)
		if err != nil {
			log.Fatal(err)
		}
	}
	svc := service.New(db, service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		MaxCacheBytes:  *cacheBytes,
		ClientInflight: *perClient,
		DefaultTimeout: *timeout,
	})
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", svc.Handler())
	mux.Handle("/", webui.NewWithService(svc))

	st := db.Stats()
	log.Printf("serving %d events (%d chunks) on %s (UI at / — API at /api/v1/query)", st.Events, st.Partitions, *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
