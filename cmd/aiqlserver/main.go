// Command aiqlserver serves the AIQL web UI (paper §3, Figure 3): a
// query input box, execution status area, and an interactive results
// table with sorting and searching, plus syntax checking for query
// debugging.
//
// Usage:
//
//	aiqlserver -data data.aiql -addr :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"github.com/aiql/aiql/internal/experiments"
	"github.com/aiql/aiql/internal/webui"

	aiql "github.com/aiql/aiql"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aiqlserver: ")
	var (
		data = flag.String("data", "", "dataset snapshot file (from aiqlgen); empty = built-in demo dataset")
		addr = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	var db *aiql.DB
	if *data == "" {
		fmt.Fprintln(os.Stderr, "no -data given; generating the built-in demo dataset (50k events, demo-apt scenario)")
		db = aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42)))
	} else {
		var err error
		db, err = aiql.LoadFile(*data)
		if err != nil {
			log.Fatal(err)
		}
	}
	st := db.Stats()
	log.Printf("serving %d events (%d chunks) on %s", st.Events, st.Partitions, *addr)
	if err := http.ListenAndServe(*addr, webui.New(db)); err != nil {
		log.Fatal(err)
	}
}
