// Command aiqlserver serves the AIQL web UI (paper §3, Figure 3) and the
// versioned JSON query API over a catalog of datasets. Every dataset
// owns its own store (LSM-style memtable + sealed segments), engine,
// segment scan cache, and service layer (bounded worker pool with
// admission control and per-client fairness, per-query deadlines,
// singleflight collapsing, byte-bounded result cache), so one process
// serves many independent investigations concurrently. Datasets
// hot-swap atomically without failing in-flight queries.
//
// Usage:
//
//	aiqlserver -data data.aiql -addr :8080
//	aiqlserver -data-dir ./store -compact 30s
//	aiqlserver -datasets "prod=proddir,staging=staging.aiql" -default prod
//	aiqlserver -shards shards.json -shard-timeout 10s
//
// A dataset path may be a legacy gob snapshot file or a durable store
// directory (file-per-segment snapshots + MANIFEST + WAL, recovered on
// open); -data-dir serves a durable directory as the default dataset,
// creating it if absent, and -compact runs each dataset's background
// segment compactor.
//
// -shards declares sharded datasets from a partition-map JSON file:
// each member is a local store directory or a remote aiqlserver peer
// reached over the NDJSON stream API; this process becomes the
// coordinator that scatters queries to the members the partition map
// admits and merge-sorts their row streams (see the README's "Sharded
// deployment" section for the format and the partial-results contract).
//
// API:
//
//	POST /api/v1/prepare               {"query": "proc p[$exe] ... return p", "dataset": "..."} → {stmt_id, params}
//	POST /api/v1/query                 {"query" | "stmt_id", "params": {...}, "dataset": "...", "limit": 100, "cursor": "...", "timeout_ms": 5000, "explain": false}
//	POST /api/v1/query/stream          {"query" | "stmt_id", "params": {...}, "dataset": "...", "limit": 100, "timeout_ms": 5000}  (NDJSON)
//	POST /api/v1/check                 {"query": "..."}
//	GET  /api/v1/stats?dataset=name
//	GET  /api/v1/datasets
//	POST /api/v1/datasets/{name}/load  {"path": "optional.aiql"}
//	POST /api/v1/ingest?dataset=name   NDJSON event records → {ingested, new_matches, ...}
//	POST /api/v1/watch                 {"query": "...", "params": {...}, "dataset": "..."} → {watch_id, ...}
//	GET  /api/v1/watch?dataset=name    registered standing queries
//	DELETE /api/v1/watch/{id}?dataset=name
//	GET  /api/v1/watch/{id}/events?dataset=name   SSE stream of fresh matches
//	GET  /api/v1/healthz?dataset=name  readiness/liveness (store open, WAL lock held, store generation)
//	GET  /api/v1/queries/slow          slow-query log (threshold via -slow-query-ms)
//	GET  /metrics                      Prometheus text exposition
//
// -ops-addr adds a second listener with /metrics and /debug/pprof, and
// "trace": true on a query request returns the execution's span tree.
//
// Every failure carries a stable machine-readable code (parse_error,
// unknown_param, stmt_not_found, overloaded, ...) plus line/col for
// query-text errors.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"github.com/aiql/aiql/internal/catalog"
	"github.com/aiql/aiql/internal/experiments"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/service"
	"github.com/aiql/aiql/internal/shard"
	"github.com/aiql/aiql/internal/webui"

	aiql "github.com/aiql/aiql"
)

// fatal logs the error through the structured logger and exits.
func fatal(args ...any) {
	slog.Error(fmt.Sprint(args...))
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	slog.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

func main() {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)
	var (
		data       = flag.String("data", "", "dataset snapshot file served as dataset \"default\"; empty = built-in demo dataset (unless -datasets or -data-dir is given)")
		dataDir    = flag.String("data-dir", "", "durable store directory served as dataset \"default\" (crash-recovered via MANIFEST + WAL; created if absent)")
		datasets   = flag.String("datasets", "", "comma-separated name=path dataset list; each path may be a gob snapshot or a durable store directory, e.g. \"prod=proddir,staging=staging.aiql\"")
		defName    = flag.String("default", "", "default dataset name (default: first registered)")
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "max concurrent query executions per dataset (0 = GOMAXPROCS)")
		scanWork   = flag.Int("scan-workers", 0, "parallel-scan worker pool shared by all datasets (0 = match -workers, 1 = sequential scans)")
		queue      = flag.Int("queue", 0, "admission queue depth beyond workers (0 = 4x workers)")
		cache      = flag.Int("cache", 256, "result cache entries per dataset (negative disables)")
		cacheBytes = flag.Int64("cache-bytes", 0, "result cache byte budget per dataset (0 = 64 MiB, negative = unbounded)")
		scanCache  = flag.Int64("scan-cache-bytes", 0, "segment scan cache byte budget per dataset (0 = 64 MiB, negative disables)")
		perClient  = flag.Int("client-inflight", 0, "max concurrent executions per client (0 = half the workers, negative disables)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-query execution timeout")
		compact    = flag.Duration("compact", 0, "background segment-compaction interval per dataset (0 disables), e.g. 30s")
		ingestRecs = flag.Int("ingest-max-records", 0, "max event records per ingest request (0 = 10000, negative disables the cap)")
		ingestMax  = flag.Int64("ingest-max-bytes", 0, "max ingest request body bytes (0 = 8 MiB)")
		maxWatches = flag.Int("max-watches", 0, "max standing queries per dataset (0 = 64, negative disables standing queries)")
		watchBuf   = flag.Int("watch-buffer", 0, "buffered matches per SSE subscriber before drop-oldest (0 = 256)")
		segComp    = flag.String("segment-compression", "", "block codec for newly written v2 segment files: lz4 (default) or none")
		blockCache = flag.Int64("block-cache-bytes", 0, "decompressed-block cache byte budget per dataset (0 = 32 MiB, negative disables)")
		shards     = flag.String("shards", "", "partition-map JSON declaring sharded datasets; each member is a local store dir or a remote peer URL (see README \"Sharded deployment\")")
		shardTO    = flag.Duration("shard-timeout", 30*time.Second, "per-member execution timeout for sharded queries")
		shardRetry = flag.Int("shard-retries", 2, "transport retries per remote member before it counts as unavailable (negative disables)")
		shardProbe = flag.Duration("shard-probe", 15*time.Second, "remote member health/epoch probe interval (0 disables background probes)")
		opsAddr    = flag.String("ops-addr", "", "optional separate listen address for the ops surface (/metrics + /debug/pprof); empty serves /metrics on -addr only")
		slowMS     = flag.Int64("slow-query-ms", 500, "slow-query log threshold in milliseconds (0 logs every query, negative disables the log)")
		slowCap    = flag.Int("slow-query-entries", 0, "slow-query log ring capacity (0 = 128)")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		b := obs.Build()
		fmt.Printf("aiqlserver %s (%s)\n", b.Version, b.GoVersion)
		return
	}

	metrics := obs.NewRegistry()
	obs.RegisterRuntimeCollector(metrics)
	slowLog := obs.NewSlowLog(*slowMS, *slowCap)

	cat := catalog.New(catalog.Config{
		Service: service.Config{
			Workers:          *workers,
			QueueDepth:       *queue,
			CacheEntries:     *cache,
			MaxCacheBytes:    *cacheBytes,
			ClientInflight:   *perClient,
			DefaultTimeout:   *timeout,
			IngestMaxRecords: *ingestRecs,
			IngestMaxBytes:   *ingestMax,
			MaxWatches:       *maxWatches,
			WatchBuffer:      *watchBuf,
		},
		ScanCacheBytes:     *scanCache,
		CompactInterval:    *compact,
		ScanWorkers:        *scanWork,
		SegmentCompression: *segComp,
		BlockCacheBytes:    *blockCache,
		Metrics:            metrics,
		SlowLog:            slowLog,
	})

	if *datasets != "" {
		for _, pair := range strings.Split(*datasets, ",") {
			name, path, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || name == "" || path == "" {
				fatalf("bad -datasets entry %q, want name=path", pair)
			}
			if _, err := cat.AddFile(name, path); err != nil {
				fatal(err)
			}
		}
	}
	if *shards != "" {
		cfg, err := shard.LoadConfig(*shards)
		if err != nil {
			fatal(err)
		}
		for _, spec := range cfg.Datasets {
			if _, err := cat.AddSharded(spec, catalog.ShardOptions{
				ShardTimeout:  *shardTO,
				Retries:       *shardRetry,
				ProbeInterval: *shardProbe,
			}); err != nil {
				fatal(err)
			}
			slog.Info("sharded dataset registered", "dataset", spec.Dataset, "members", len(spec.Members))
		}
	}
	if *data != "" && *dataDir != "" {
		fatal("-data and -data-dir are mutually exclusive")
	}
	if *data != "" {
		if _, err := cat.AddFile("default", *data); err != nil {
			fatal(err)
		}
	}
	if *dataDir != "" {
		if _, err := cat.AddDir("default", *dataDir); err != nil {
			fatal(err)
		}
	}
	if len(cat.Names()) == 0 {
		fmt.Fprintln(os.Stderr, "no -data or -datasets given; generating the built-in demo dataset (50k events, demo-apt scenario)")
		db := aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42)))
		db.Flush() // seal the generated data so segment reuse applies immediately
		if _, err := cat.AddDB("demo", db); err != nil {
			fatal(err)
		}
	}
	if *defName != "" {
		if err := cat.SetDefault(*defName); err != nil {
			fatal(err)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/api/v1/", cat.Handler())
	mux.Handle("/metrics", metrics.Handler())
	mux.Handle("/", webui.NewWithProvider(cat))

	if *opsAddr != "" {
		// The ops surface gets its own listener so profiling and
		// scraping stay reachable (and access-controllable) apart from
		// the query API, and pprof is never exposed on the public port.
		ops := http.NewServeMux()
		ops.Handle("/metrics", metrics.Handler())
		ops.HandleFunc("/debug/pprof/", pprof.Index)
		ops.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		ops.HandleFunc("/debug/pprof/profile", pprof.Profile)
		ops.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		ops.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			slog.Info("ops listener up", "addr", *opsAddr)
			if err := http.ListenAndServe(*opsAddr, ops); err != nil {
				fatal(err)
			}
		}()
	}

	for _, name := range cat.Names() {
		d, err := cat.Get(name)
		if err != nil {
			fatal(err)
		}
		st := d.Service().DatasetStats(name)
		slog.Info("dataset loaded", "dataset", name,
			"events", st.Store.Events, "chunks", st.Store.Partitions,
			"sealed_segments", st.Store.Segments,
			"default", name == cat.DefaultName())
	}
	slog.Info("serving", "datasets", len(cat.Names()), "addr", *addr,
		"version", obs.Build().Version, "slow_query_ms", slowLog.ThresholdMS())
	if err := http.ListenAndServe(*addr, obs.AccessLog(logger, mux)); err != nil {
		fatal(err)
	}
}
