// Command aiqlserver serves the AIQL web UI (paper §3, Figure 3) and the
// versioned JSON query API over a catalog of datasets. Every dataset
// owns its own store (LSM-style memtable + sealed segments), engine,
// segment scan cache, and service layer (bounded worker pool with
// admission control and per-client fairness, per-query deadlines,
// singleflight collapsing, byte-bounded result cache), so one process
// serves many independent investigations concurrently. Datasets
// hot-swap atomically without failing in-flight queries.
//
// Usage:
//
//	aiqlserver -data data.aiql -addr :8080
//	aiqlserver -data-dir ./store -compact 30s
//	aiqlserver -datasets "prod=proddir,staging=staging.aiql" -default prod
//
// A dataset path may be a legacy gob snapshot file or a durable store
// directory (file-per-segment snapshots + MANIFEST + WAL, recovered on
// open); -data-dir serves a durable directory as the default dataset,
// creating it if absent, and -compact runs each dataset's background
// segment compactor.
//
// API:
//
//	POST /api/v1/prepare               {"query": "proc p[$exe] ... return p", "dataset": "..."} → {stmt_id, params}
//	POST /api/v1/query                 {"query" | "stmt_id", "params": {...}, "dataset": "...", "limit": 100, "cursor": "...", "timeout_ms": 5000, "explain": false}
//	POST /api/v1/query/stream          {"query" | "stmt_id", "params": {...}, "dataset": "...", "limit": 100, "timeout_ms": 5000}  (NDJSON)
//	POST /api/v1/check                 {"query": "..."}
//	GET  /api/v1/stats?dataset=name
//	GET  /api/v1/datasets
//	POST /api/v1/datasets/{name}/load  {"path": "optional.aiql"}
//	POST /api/v1/ingest?dataset=name   NDJSON event records → {ingested, new_matches, ...}
//	POST /api/v1/watch                 {"query": "...", "params": {...}, "dataset": "..."} → {watch_id, ...}
//	GET  /api/v1/watch?dataset=name    registered standing queries
//	DELETE /api/v1/watch/{id}?dataset=name
//	GET  /api/v1/watch/{id}/events?dataset=name   SSE stream of fresh matches
//
// Every failure carries a stable machine-readable code (parse_error,
// unknown_param, stmt_not_found, overloaded, ...) plus line/col for
// query-text errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/aiql/aiql/internal/catalog"
	"github.com/aiql/aiql/internal/experiments"
	"github.com/aiql/aiql/internal/service"
	"github.com/aiql/aiql/internal/webui"

	aiql "github.com/aiql/aiql"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aiqlserver: ")
	var (
		data       = flag.String("data", "", "dataset snapshot file served as dataset \"default\"; empty = built-in demo dataset (unless -datasets or -data-dir is given)")
		dataDir    = flag.String("data-dir", "", "durable store directory served as dataset \"default\" (crash-recovered via MANIFEST + WAL; created if absent)")
		datasets   = flag.String("datasets", "", "comma-separated name=path dataset list; each path may be a gob snapshot or a durable store directory, e.g. \"prod=proddir,staging=staging.aiql\"")
		defName    = flag.String("default", "", "default dataset name (default: first registered)")
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "max concurrent query executions per dataset (0 = GOMAXPROCS)")
		scanWork   = flag.Int("scan-workers", 0, "parallel-scan worker pool shared by all datasets (0 = match -workers, 1 = sequential scans)")
		queue      = flag.Int("queue", 0, "admission queue depth beyond workers (0 = 4x workers)")
		cache      = flag.Int("cache", 256, "result cache entries per dataset (negative disables)")
		cacheBytes = flag.Int64("cache-bytes", 0, "result cache byte budget per dataset (0 = 64 MiB, negative = unbounded)")
		scanCache  = flag.Int64("scan-cache-bytes", 0, "segment scan cache byte budget per dataset (0 = 64 MiB, negative disables)")
		perClient  = flag.Int("client-inflight", 0, "max concurrent executions per client (0 = half the workers, negative disables)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-query execution timeout")
		compact    = flag.Duration("compact", 0, "background segment-compaction interval per dataset (0 disables), e.g. 30s")
		ingestRecs = flag.Int("ingest-max-records", 0, "max event records per ingest request (0 = 10000, negative disables the cap)")
		ingestMax  = flag.Int64("ingest-max-bytes", 0, "max ingest request body bytes (0 = 8 MiB)")
		maxWatches = flag.Int("max-watches", 0, "max standing queries per dataset (0 = 64, negative disables standing queries)")
		watchBuf   = flag.Int("watch-buffer", 0, "buffered matches per SSE subscriber before drop-oldest (0 = 256)")
		segComp    = flag.String("segment-compression", "", "block codec for newly written v2 segment files: lz4 (default) or none")
		blockCache = flag.Int64("block-cache-bytes", 0, "decompressed-block cache byte budget per dataset (0 = 32 MiB, negative disables)")
	)
	flag.Parse()

	cat := catalog.New(catalog.Config{
		Service: service.Config{
			Workers:          *workers,
			QueueDepth:       *queue,
			CacheEntries:     *cache,
			MaxCacheBytes:    *cacheBytes,
			ClientInflight:   *perClient,
			DefaultTimeout:   *timeout,
			IngestMaxRecords: *ingestRecs,
			IngestMaxBytes:   *ingestMax,
			MaxWatches:       *maxWatches,
			WatchBuffer:      *watchBuf,
		},
		ScanCacheBytes:     *scanCache,
		CompactInterval:    *compact,
		ScanWorkers:        *scanWork,
		SegmentCompression: *segComp,
		BlockCacheBytes:    *blockCache,
	})

	if *datasets != "" {
		for _, pair := range strings.Split(*datasets, ",") {
			name, path, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || name == "" || path == "" {
				log.Fatalf("bad -datasets entry %q, want name=path", pair)
			}
			if _, err := cat.AddFile(name, path); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *data != "" && *dataDir != "" {
		log.Fatal("-data and -data-dir are mutually exclusive")
	}
	if *data != "" {
		if _, err := cat.AddFile("default", *data); err != nil {
			log.Fatal(err)
		}
	}
	if *dataDir != "" {
		if _, err := cat.AddDir("default", *dataDir); err != nil {
			log.Fatal(err)
		}
	}
	if len(cat.Names()) == 0 {
		fmt.Fprintln(os.Stderr, "no -data or -datasets given; generating the built-in demo dataset (50k events, demo-apt scenario)")
		db := aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42)))
		db.Flush() // seal the generated data so segment reuse applies immediately
		if _, err := cat.AddDB("demo", db); err != nil {
			log.Fatal(err)
		}
	}
	if *defName != "" {
		if err := cat.SetDefault(*defName); err != nil {
			log.Fatal(err)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/api/v1/", cat.Handler())
	mux.Handle("/", webui.NewWithProvider(cat))

	for _, name := range cat.Names() {
		d, err := cat.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		st := d.Service().DatasetStats(name)
		log.Printf("dataset %q: %d events, %d chunks, %d sealed segments%s",
			name, st.Store.Events, st.Store.Partitions, st.Store.Segments,
			map[bool]string{true: " (default)"}[name == cat.DefaultName()])
	}
	log.Printf("serving %d dataset(s) on %s (UI at / — API at /api/v1/query)", len(cat.Names()), *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
