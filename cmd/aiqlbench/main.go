// Command aiqlbench regenerates every table and figure of the paper's
// evaluation:
//
//	fig4      — Figure 4: the 19 investigation queries (18 multievent +
//	            1 anomaly) on AIQL vs PostgreSQL w/ optimized storage,
//	            with the total-time speedup headline (paper: 21x)
//	fig5      — Figure 5: the 26 case-study queries on AIQL vs
//	            PostgreSQL w/o optimized storage vs Neo4j (paper: 124x
//	            and 157x)
//	concise   — the conciseness comparison (paper: SQL ≥3.0x
//	            constraints, 3.5x words, 5.2x characters)
//	storage   — storage-optimization ablation (dedup, indexes,
//	            partitioning, batch commit)
//	ablation  — engine-scheduling ablation (pruning-power ordering,
//	            partition parallelism)
//	all       — everything above
//
// Usage:
//
//	aiqlbench -experiment fig4 -events 400000 -hosts 15 -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/aiql/aiql/internal/datagen"
	"github.com/aiql/aiql/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aiqlbench: ")
	var (
		experiment = flag.String("experiment", "all", "fig4 | fig5 | concise | storage | ablation | all")
		events     = flag.Int("events", 200000, "background events in generated datasets")
		hosts      = flag.Int("hosts", 12, "hosts in generated datasets")
		seed       = flag.Int64("seed", 42, "random seed")
		verify     = flag.Bool("verify", true, "cross-check result sets across engines")
		repeat     = flag.Int("repeat", 1, "repetitions per query (best time kept)")
	)
	flag.Parse()
	opt := experiments.RunOptions{Verify: *verify, Repeat: *repeat}

	run := func(name string, fn func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("fig4", func() error {
		fmt.Fprintf(os.Stderr, "generating demo-apt dataset (%d events, %d hosts, seed %d)...\n", *events, *hosts, *seed)
		store := experiments.BuildStore(experiments.Fig4Dataset(*events, *hosts, *seed))
		timings, err := experiments.RunFig4(store, opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderComparison(
			"Figure 4: log10 query execution time — AIQL vs PostgreSQL (w/ optimized storage)",
			timings, []string{experiments.EngineAIQL, experiments.EnginePostgres}))
		reportConsistency(timings)
		return nil
	})

	run("fig5", func() error {
		fmt.Fprintf(os.Stderr, "generating atc-case dataset (%d events, %d hosts, seed %d)...\n", *events, *hosts, *seed)
		store := experiments.BuildStore(experiments.Fig5Dataset(*events, *hosts, *seed))
		timings, err := experiments.RunFig5(store, opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderComparison(
			"Figure 5: log10 query execution time — AIQL vs PostgreSQL (w/o optimized storage) vs Neo4j",
			timings, []string{experiments.EngineAIQL, experiments.EnginePostgres, experiments.EngineNeo4j}))
		reportConsistency(timings)
		return nil
	})

	run("concise", func() error {
		rows, err := experiments.RunConciseness(experiments.Fig4Queries())
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderConciseness(rows))
		return nil
	})

	run("storage", func() error {
		rows, err := experiments.RunStorageAblation(datagen.Config{
			Seed: *seed, Hosts: *hosts, Events: *events,
			Scenarios: []datagen.Scenario{datagen.ScenarioDemoAPT},
		})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderStorage(rows))
		return nil
	})

	run("ablation", func() error {
		store := experiments.BuildStore(experiments.Fig4Dataset(*events, *hosts, *seed))
		rows, err := experiments.RunSchedulingAblation(store)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderScheduling(rows))
		return nil
	})
}

func reportConsistency(timings []experiments.Timing) {
	bad := 0
	for _, t := range timings {
		if t.Verified && !t.Consistent {
			fmt.Fprintf(os.Stderr, "WARNING: %s result sets differ across engines\n", t.Label)
			bad++
		}
	}
	if bad == 0 {
		fmt.Fprintln(os.Stderr, "result sets verified identical across engines")
	}
}
