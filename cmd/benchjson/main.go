// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark report, so CI can record the perf
// trajectory per PR as an artifact. The parsing lives in
// internal/benchjson so benchmark tests can emit reports directly.
//
// Usage:
//
//	go test ./internal/service/ -run XXX -bench . | go run ./cmd/benchjson -o BENCH_streaming.json
//	... | go run ./cmd/benchjson -o BENCH_obs.json \
//	        -max-ratio 'BenchmarkObsFig4TraceOn/BenchmarkObsFig4TraceOff<=1.05'
//
// Each -max-ratio (repeatable) asserts one ns/op ratio between two
// benchmarks in the report; the computed ratios are written into the
// JSON and any violated bound makes the command exit non-zero after
// the report is written, so CI keeps the artifact for the failed run.
package main

import (
	"flag"
	"log"
	"os"

	"github.com/aiql/aiql/internal/benchjson"
)

// ratioFlags collects repeated -max-ratio specs.
type ratioFlags []string

func (r *ratioFlags) String() string     { return "" }
func (r *ratioFlags) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	var ratios ratioFlags
	flag.Var(&ratios, "max-ratio", "assert 'Numerator/Denominator<=Limit' on ns/op (repeatable)")
	flag.Parse()

	rep, err := benchjson.Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	failed := false
	for _, spec := range ratios {
		r, err := rep.AssertRatio(spec)
		if err != nil {
			log.Fatal(err)
		}
		if r.Pass {
			log.Printf("ratio %s = %.3f <= %.3f", r.Name, r.Value, r.Limit)
		} else {
			log.Printf("ratio %s = %.3f EXCEEDS limit %.3f", r.Name, r.Value, r.Limit)
			failed = true
		}
	}
	if err := rep.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}
