// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark report, so CI can record the perf
// trajectory per PR as an artifact.
//
// Usage:
//
//	go test ./internal/service/ -run XXX -bench . | go run ./cmd/benchjson -o BENCH_streaming.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MsPerOp    float64 `json:"ms_per_op"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		// BenchmarkName-8   	       3	 123456789 ns/op [...]
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name:       fields[0],
			Iterations: iters,
			NsPerOp:    ns,
			MsPerOp:    ns / 1e6,
		})
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}
