// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark report, so CI can record the perf
// trajectory per PR as an artifact. The parsing lives in
// internal/benchjson so benchmark tests can emit reports directly.
//
// Usage:
//
//	go test ./internal/service/ -run XXX -bench . | go run ./cmd/benchjson -o BENCH_streaming.json
package main

import (
	"flag"
	"log"
	"os"

	"github.com/aiql/aiql/internal/benchjson"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := benchjson.Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
}
