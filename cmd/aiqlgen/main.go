// Command aiqlgen generates synthetic enterprise system-monitoring
// datasets with the paper's APT attack scenarios injected, and writes
// them as AIQL snapshot files consumable by aiql, aiqlserver, and
// aiqlbench.
//
// Usage:
//
//	aiqlgen -out data.aiql -events 400000 -hosts 15 -seed 42 -scenarios demo-apt,atc-case
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/aiql/aiql/internal/datagen"
	"github.com/aiql/aiql/internal/eventstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aiqlgen: ")
	var (
		out       = flag.String("out", "data.aiql", "output snapshot file")
		events    = flag.Int("events", 100000, "approximate number of background events")
		hosts     = flag.Int("hosts", 10, "number of hosts (agents); servers occupy IDs 1-4")
		seed      = flag.Int64("seed", 42, "random seed")
		scenarios = flag.String("scenarios", "demo-apt", "comma-separated attack scenarios to inject (demo-apt, atc-case, none)")
	)
	flag.Parse()

	var scs []datagen.Scenario
	for _, s := range strings.Split(*scenarios, ",") {
		switch strings.TrimSpace(s) {
		case "demo-apt":
			scs = append(scs, datagen.ScenarioDemoAPT)
		case "atc-case":
			scs = append(scs, datagen.ScenarioATCCase)
		case "none", "":
		default:
			log.Fatalf("unknown scenario %q (use demo-apt, atc-case, none)", s)
		}
	}

	store := eventstore.New(eventstore.DefaultOptions())
	n := datagen.GenerateInto(store, datagen.Config{
		Seed:      *seed,
		Hosts:     *hosts,
		Events:    *events,
		Scenarios: scs,
	})
	if err := store.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("wrote %s: %d events, %d hosts, %d chunks, %d processes, %d files, %d connections (~%.1f MB in memory)\n",
		*out, n, *hosts, st.Partitions, st.Processes, st.Files, st.Netconns, float64(st.ApproxBytes)/1e6)
}
