package like

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatchBasics(t *testing.T) {
	cases := []struct {
		pattern string
		input   string
		want    bool
	}{
		{"%cmd.exe", `C:\Windows\System32\cmd.exe`, true},
		{"%cmd.exe", "cmd.exe", true},
		{"%cmd.exe", "cmd.exe.bak", false},
		{"cmd.exe", "cmd.exe", true},
		{"cmd.exe", "CMD.EXE", true}, // case-insensitive
		{"cmd.exe", "xcmd.exe", false},
		{"%backup1.dmp", `C:\data\backup1.dmp`, true},
		{"%info_stealer%", "/var/www/info_stealer.sh", true},
		{"/var/www/%", "/var/www/html/index.php", true},
		{"/var/www/%", "/etc/passwd", false},
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"a%b%c", "abc", true},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "acb", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"a_c", "abbc", false},
		{"_", "x", true},
		{"_", "", false},
		{"%.129", "203.0.113.129", true},
		{"%.129", "203.0.113.128", false},
		{"ab%", "ab", true},
		{"ab%", "a", false},
		{"%%", "x", true},
		{"a%%b", "ab", true},
	}
	for _, c := range cases {
		if got := Match(c.pattern, c.input); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestUnderscoreWithPercent(t *testing.T) {
	cases := []struct {
		pattern string
		input   string
		want    bool
	}{
		{"a_%", "ab", true},
		{"a_%", "a", false},
		{"a_%", "abcdef", true},
		{"%_design.cad", `C:\Projects\eng\pcb_design.cad`, true},
		{"_%_", "ab", true},
		{"_%_", "a", false},
	}
	for _, c := range cases {
		if got := Match(c.pattern, c.input); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestPrefix(t *testing.T) {
	cases := []struct {
		pattern string
		want    string
	}{
		{"abc", "abc"},
		{"abc%", "abc"},
		{"%abc", ""},
		{"ab_c%", "ab"},
		{"a%b", "a"},
		{"%", ""},
	}
	for _, c := range cases {
		if got := Compile(c.pattern).Prefix(); got != c.want {
			t.Errorf("Prefix(%q) = %q, want %q", c.pattern, got, c.want)
		}
	}
}

func TestExact(t *testing.T) {
	if !Compile("plain").Exact() {
		t.Error("plain string should be exact")
	}
	for _, p := range []string{"a%", "_a", "%"} {
		if Compile(p).Exact() {
			t.Errorf("%q should not be exact", p)
		}
	}
	if got := Compile("MiXeD").ExactValue(); got != "mixed" {
		t.Errorf("ExactValue = %q, want %q", got, "mixed")
	}
}

// TestMatchAgainstRegexp cross-checks the matcher against the reference
// regular-expression translation on random patterns and inputs.
func TestMatchAgainstRegexp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("ab%_c")
	inputs := []rune("abcx")
	gen := func(letters []rune, n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteRune(letters[rng.Intn(len(letters))])
		}
		return b.String()
	}
	for i := 0; i < 3000; i++ {
		pattern := gen(alphabet, rng.Intn(7))
		input := gen(inputs, rng.Intn(9))
		re := regexp.MustCompile(ToRegexp(pattern))
		want := re.MatchString(input)
		if got := Match(pattern, input); got != want {
			t.Fatalf("Match(%q, %q) = %v, regexp says %v", pattern, input, got, want)
		}
	}
}

// TestExactMatchesSelf: any string without wildcards matches itself.
func TestExactMatchesSelf(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return Match(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPercentWrappedMatchesContaining: %s% matches any superstring of s.
func TestPercentWrappedMatchesContaining(t *testing.T) {
	f := func(prefix, s, suffix string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return Match("%"+s+"%", prefix+s+suffix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToRegexpEscapesMeta(t *testing.T) {
	// the dot in cmd.exe must not match "cmdxexe"
	re := regexp.MustCompile(ToRegexp("%cmd.exe"))
	if re.MatchString("cmdxexe") {
		t.Error("unescaped '.' in regexp translation")
	}
	if !re.MatchString("CMD.EXE") {
		t.Error("regexp translation should be case-insensitive")
	}
}
