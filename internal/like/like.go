// Package like implements SQL-LIKE-style pattern matching as used by AIQL
// attribute filters: '%' matches any (possibly empty) substring and '_'
// matches exactly one byte. Matching is case-insensitive for ASCII, which
// mirrors how security analysts filter executable and file names collected
// from mixed Windows/Linux fleets.
package like

import "strings"

// Pattern is a compiled LIKE pattern.
type Pattern struct {
	raw      string
	segments []string // literal segments between '%' wildcards, lowercased
	single   []int    // count of '_' immediately following each segment boundary (unused fast path when zero)
	leading  bool     // pattern starts with '%'
	trailing bool     // pattern ends with '%'
	exact    bool     // no wildcards at all: exact match
	hasUnder bool     // pattern contains '_'
}

// Compile parses a LIKE pattern. Compile never fails: every string is a
// valid pattern; strings without wildcards require an exact match.
func Compile(raw string) *Pattern {
	p := &Pattern{raw: raw}
	lower := strings.ToLower(raw)
	p.hasUnder = strings.ContainsRune(lower, '_')
	if !strings.ContainsRune(lower, '%') && !p.hasUnder {
		p.exact = true
		p.segments = []string{lower}
		return p
	}
	p.leading = strings.HasPrefix(lower, "%")
	p.trailing = strings.HasSuffix(lower, "%")
	for _, seg := range strings.Split(lower, "%") {
		if seg != "" {
			p.segments = append(p.segments, seg)
		}
	}
	return p
}

// Raw returns the original pattern text.
func (p *Pattern) Raw() string { return p.raw }

// Exact reports whether the pattern contains no wildcards.
func (p *Pattern) Exact() bool { return p.exact }

// ExactValue returns the literal (lowercased) value for exact patterns.
func (p *Pattern) ExactValue() string {
	if len(p.segments) == 0 {
		return ""
	}
	return p.segments[0]
}

// Prefix returns the literal prefix the pattern demands, if any.
// Useful for index range scans: "C:\Win%" has prefix "c:\win".
func (p *Pattern) Prefix() string {
	if p.exact {
		return p.segments[0]
	}
	if p.leading || len(p.segments) == 0 {
		return ""
	}
	// the first segment is a required prefix only if no '_' precedes it
	first := strings.Split(strings.ToLower(p.raw), "%")[0]
	if i := strings.IndexByte(first, '_'); i >= 0 {
		return first[:i]
	}
	return first
}

// Match reports whether s matches the pattern (ASCII case-insensitive).
func (p *Pattern) Match(s string) bool {
	ls := strings.ToLower(s)
	if p.hasUnder {
		return matchGeneral(strings.ToLower(p.raw), ls)
	}
	if p.exact {
		return ls == p.segments[0]
	}
	if len(p.segments) == 0 {
		// pattern was all '%'
		return true
	}
	rest := ls
	for i, seg := range p.segments {
		if i == 0 && !p.leading {
			if !strings.HasPrefix(rest, seg) {
				return false
			}
			rest = rest[len(seg):]
			continue
		}
		if i == len(p.segments)-1 && !p.trailing {
			return strings.HasSuffix(rest, seg) && len(rest) >= len(seg)
		}
		j := strings.Index(rest, seg)
		if j < 0 {
			return false
		}
		rest = rest[j+len(seg):]
	}
	return true
}

// matchGeneral is the full backtracking matcher handling both '%' and '_'.
// pat and s must already be lowercased.
func matchGeneral(pat, s string) bool {
	// iterative two-pointer algorithm with single backtrack point,
	// the classic wildcard matcher
	var (
		pi, si     int
		starPi     = -1
		starSi     int
		plen, slen = len(pat), len(s)
	)
	for si < slen {
		switch {
		case pi < plen && (pat[pi] == '_' || pat[pi] == s[si]):
			pi++
			si++
		case pi < plen && pat[pi] == '%':
			starPi = pi
			starSi = si
			pi++
		case starPi >= 0:
			pi = starPi + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < plen && pat[pi] == '%' {
		pi++
	}
	return pi == plen
}

// Match is a convenience for one-shot matching.
func Match(pattern, s string) bool { return Compile(pattern).Match(s) }

// ToRegexp converts a LIKE pattern into an equivalent (case-insensitive)
// regular expression source string. Used by tests to cross-check the
// matcher and by the Cypher translator ('=~' operator).
func ToRegexp(pattern string) string {
	var b strings.Builder
	b.WriteString("(?i)^")
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString(".*")
		case '_':
			b.WriteString(".")
		case '.', '+', '*', '?', '(', ')', '[', ']', '{', '}', '^', '$', '|', '\\':
			b.WriteByte('\\')
			b.WriteRune(r)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteString("$")
	return b.String()
}
