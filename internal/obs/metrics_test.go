package obs

import (
	"strings"
	"testing"
)

func TestRegisterRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	bad := []string{
		"queries_total",          // missing namespace
		"aiql_QueriesTotal",      // camelCase
		"aiql_queries-total",     // dash
		"aiql_queries total",     // space
		"aiql_",                  // empty suffix
		"http_requests_total",    // wrong namespace
		"aiql_queries_total\n",   // trailing junk
		"AIQL_queries_total",     // uppercase namespace
		"aiql_queries_total{a}",  // label syntax in name
		"aiql_très_total",        // non-ASCII
		"aiql_queries_total ",    // trailing space
		" aiql_queries_total",    // leading space
		"",                       // empty
		"aiql_queries_total$bad", // symbol
	}
	for _, name := range bad {
		if _, err := r.Counter(name, "help"); err == nil {
			t.Errorf("Counter(%q) registered; want naming-contract error", name)
		}
		if ValidMetricName(name) {
			t.Errorf("ValidMetricName(%q) = true; want false", name)
		}
	}
	if _, err := r.Counter("aiql_queries_total", "help"); err != nil {
		t.Fatalf("valid name rejected: %v", err)
	}
}

func TestRegisterRejectsBadLabelNames(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Counter("aiql_x_total", "h", Label{Name: "bad-label", Value: "v"}); err == nil {
		t.Fatal("bad label name registered; want error")
	}
}

func TestRegisterKindClash(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Counter("aiql_x_total", "h"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Gauge("aiql_x_total", "h"); err == nil {
		t.Fatal("re-registering a counter as a gauge succeeded; want kind-clash error")
	}
}

func TestRegisterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.MustCounter("aiql_x_total", "h", Label{Name: "dataset", Value: "demo"})
	b := r.MustCounter("aiql_x_total", "h", Label{Name: "dataset", Value: "demo"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters; hot-swap would reset series")
	}
	c := r.MustCounter("aiql_x_total", "h", Label{Name: "dataset", Value: "other"})
	if a == c {
		t.Fatal("distinct label values shared one counter")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared series out of sync: %d", b.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("aiql_lat_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`aiql_lat_seconds_bucket{le="0.1"} 1`,
		`aiql_lat_seconds_bucket{le="1"} 2`,
		`aiql_lat_seconds_bucket{le="10"} 3`,
		`aiql_lat_seconds_bucket{le="+Inf"} 4`,
		`aiql_lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "aiql_lat_seconds_sum 55.55") {
		t.Errorf("exposition missing sum line:\n%s", out)
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(5)
	g.Add(-2)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments reported non-zero values")
	}
	var r *Registry
	cc, err := r.Counter("aiql_x_total", "h")
	if err != nil || cc != nil {
		t.Fatalf("nil registry: got (%v, %v), want (nil, nil)", cc, err)
	}
}
