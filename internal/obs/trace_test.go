package obs

import (
	"context"
	"testing"
)

func TestTraceTree(t *testing.T) {
	tr := NewTrace("query")
	root := tr.Root()
	parse := root.Child("parse")
	parse.End()
	scan := root.Child("scan e1")
	scan.SetInt("events_scanned", 100)
	scan.SetInt("events_scanned", 150) // replace, not append
	scan.SetInt("hits", 3)
	scan.End()
	root.End()

	n := tr.Tree()
	if n.Name != "query" || len(n.Children) != 2 {
		t.Fatalf("tree = %+v", n)
	}
	sc := n.Children[1]
	if sc.Name != "scan e1" || sc.Attrs["events_scanned"] != 150 || sc.Attrs["hits"] != 3 {
		t.Fatalf("scan node = %+v", sc)
	}
	if len(sc.Attrs) != 2 {
		t.Fatalf("SetInt appended instead of replacing: %v", sc.Attrs)
	}
	if sc.DurationUS < 0 || sc.StartUS < 0 {
		t.Fatalf("negative times: %+v", sc)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	s.SetInt("k", 1)
	s.End()
	var tr *Trace
	if tr.Root() != nil || tr.Tree() != nil {
		t.Fatal("nil trace produced nodes")
	}
	ctx := WithSpan(context.Background(), nil)
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span stored in context")
	}
}

func TestSpanContext(t *testing.T) {
	tr := NewTrace("q")
	ctx := WithSpan(context.Background(), tr.Root())
	if SpanFromContext(ctx) != tr.Root() {
		t.Fatal("span did not round-trip through context")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context carried a span")
	}
}

func TestTopSpans(t *testing.T) {
	root := &SpanNode{Name: "query", DurationUS: 1000, Children: []*SpanNode{
		{Name: "parse", DurationUS: 10},
		{Name: "scan e1", DurationUS: 700, Children: []*SpanNode{
			{Name: "inner", DurationUS: 650},
		}},
		{Name: "join e2", DurationUS: 200},
	}}
	top := TopSpans(root, 2)
	if len(top) != 2 || top[0].Name != "scan e1" || top[1].Name != "inner" {
		t.Fatalf("top spans = %+v", top)
	}
	if TopSpans(nil, 3) != nil || TopSpans(root, 0) != nil {
		t.Fatal("degenerate TopSpans not nil")
	}
}
