package obs

import (
	"runtime"
	"time"
)

// Version identifies the build. It defaults to "dev" and is meant to
// be stamped at link time:
//
//	go build -ldflags "-X github.com/aiql/aiql/internal/obs.Version=v1.2.3" ./cmd/aiqlserver
var Version = "dev"

// processStart anchors uptime reporting.
var processStart = time.Now()

// Uptime returns how long the process has been running.
func Uptime() time.Duration { return time.Since(processStart) }

// BuildInfo is the wire form of the build identity served in the
// /api/v1/stats `build` block.
type BuildInfo struct {
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Build reports the running binary's identity and uptime.
func Build() BuildInfo {
	return BuildInfo{
		Version:       Version,
		GoVersion:     runtime.Version(),
		UptimeSeconds: Uptime().Seconds(),
	}
}

// RegisterRuntimeCollector wires Go runtime gauges and the build-info
// marker into the registry under the "runtime" collector key:
// goroutine count, heap figures (ReadMemStats at scrape time), uptime,
// and aiql_build_info{version,go_version} = 1 in the standard
// Prometheus build-info idiom.
func RegisterRuntimeCollector(r *Registry) {
	r.SetCollector("runtime", func() []Sample {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return []Sample{
			{Name: "aiql_build_info", Help: "Build identity; value is always 1.", Kind: KindGauge,
				Labels: []Label{{"version", Version}, {"go_version", runtime.Version()}}, Value: 1},
			{Name: "aiql_process_uptime_seconds", Help: "Seconds since process start.", Kind: KindGauge,
				Value: Uptime().Seconds()},
			{Name: "aiql_go_goroutines", Help: "Live goroutines.", Kind: KindGauge,
				Value: float64(runtime.NumGoroutine())},
			{Name: "aiql_go_heap_alloc_bytes", Help: "Heap bytes allocated and in use.", Kind: KindGauge,
				Value: float64(ms.HeapAlloc)},
			{Name: "aiql_go_heap_sys_bytes", Help: "Heap bytes obtained from the OS.", Kind: KindGauge,
				Value: float64(ms.HeapSys)},
			{Name: "aiql_go_gc_total", Help: "Completed GC cycles.", Kind: KindCounter,
				Value: float64(ms.NumGC)},
		}
	})
}
