package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Trace is one query's span tree. The service creates a trace per
// execution and threads its root span through the engine via context;
// the engine hangs parse/plan/scan/join spans off it. All mutation is
// guarded by one per-trace mutex — span fan-out within a query is a
// handful of nodes, so a single lock is cheaper than per-span state.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	root  *Span
}

// Span is one timed region of a trace with integer attributes. The nil
// Span is valid: every method no-ops, so untraced executions pay one
// context lookup and nothing else.
type Span struct {
	t        *Trace
	name     string
	start    time.Time
	end      time.Time
	attrs    []spanAttr
	children []*Span
}

type spanAttr struct {
	key string
	val int64
}

// NewTrace starts a trace whose root span is named name.
func NewTrace(name string) *Trace {
	t := &Trace{start: time.Now()}
	t.root = &Span{t: t, name: name, start: t.start}
	return t
}

// Root returns the trace's root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Child starts a sub-span of s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{t: s.t, name: name, start: time.Now()}
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.mu.Unlock()
	return c
}

// End marks the span finished. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.t.mu.Unlock()
}

// SetInt records (or replaces) an integer attribute on the span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = v
			s.t.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, spanAttr{key, v})
	s.t.mu.Unlock()
}

type spanCtxKey struct{}

// WithSpan returns ctx carrying s as the current span. A nil span
// returns ctx unchanged, so "tracing off" is the absence of the key.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span, or nil when ctx carries
// none — the engine's single branch point between traced and untraced
// execution.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanNode is the wire form of one finished span: offsets and
// durations in microseconds from the trace start, EXPLAIN ANALYZE
// style.
type SpanNode struct {
	Name       string           `json:"name"`
	StartUS    int64            `json:"start_us"`
	DurationUS int64            `json:"duration_us"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []*SpanNode      `json:"children,omitempty"`
}

// Tree snapshots the trace as a SpanNode tree. Spans not yet ended are
// reported as running up to the snapshot instant.
func (t *Trace) Tree() *SpanNode {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.node(t.root, now)
}

func (t *Trace) node(s *Span, now time.Time) *SpanNode {
	end := s.end
	if end.IsZero() {
		end = now
	}
	n := &SpanNode{
		Name:       s.name,
		StartUS:    s.start.Sub(t.start).Microseconds(),
		DurationUS: end.Sub(s.start).Microseconds(),
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]int64, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.key] = a.val
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, t.node(c, now))
	}
	return n
}

// SpanSummary is one flattened span in a slow-query log entry.
type SpanSummary struct {
	Name       string           `json:"name"`
	DurationUS int64            `json:"duration_us"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
}

// TopSpans flattens a span tree (root excluded — its duration is the
// whole query) and returns the n longest spans, longest first.
func TopSpans(root *SpanNode, n int) []SpanSummary {
	if root == nil || n <= 0 {
		return nil
	}
	var all []SpanSummary
	var walk func(*SpanNode)
	walk = func(sn *SpanNode) {
		for _, c := range sn.Children {
			all = append(all, SpanSummary{Name: c.Name, DurationUS: c.DurationUS, Attrs: c.Attrs})
			walk(c)
		}
	}
	walk(root)
	sort.SliceStable(all, func(i, j int) bool { return all[i].DurationUS > all[j].DurationUS })
	if len(all) > n {
		all = all[:n]
	}
	return all
}
