package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact text the registry renders for a
// small fixed instrument set: family order, HELP/TYPE lines, series
// order, label escaping, histogram expansion.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("aiql_queries_total", "Queries received.", Label{Name: "dataset", Value: "demo"}).Add(7)
	r.MustCounter("aiql_queries_total", "Queries received.", Label{Name: "dataset", Value: "apt"}).Add(2)
	r.MustGauge("aiql_active_queries", "Currently executing.").Set(3)
	h := r.MustHistogram("aiql_query_duration_seconds", `Latency with "quotes" and \ slash.`, []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	r.SetCollector("extra", func() []Sample {
		return []Sample{{Name: "aiql_go_goroutines", Help: "Live goroutines.", Kind: KindGauge, Value: 11}}
	})

	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP aiql_active_queries Currently executing.
# TYPE aiql_active_queries gauge
aiql_active_queries 3
# HELP aiql_go_goroutines Live goroutines.
# TYPE aiql_go_goroutines gauge
aiql_go_goroutines 11
# HELP aiql_queries_total Queries received.
# TYPE aiql_queries_total counter
aiql_queries_total{dataset="apt"} 2
aiql_queries_total{dataset="demo"} 7
# HELP aiql_query_duration_seconds Latency with "quotes" and \\ slash.
# TYPE aiql_query_duration_seconds histogram
aiql_query_duration_seconds_bucket{le="0.5"} 1
aiql_query_duration_seconds_bucket{le="2"} 2
aiql_query_duration_seconds_bucket{le="+Inf"} 2
aiql_query_duration_seconds_sum 1.25
aiql_query_duration_seconds_count 2
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := ValidateExposition([]byte(got)); err != nil {
		t.Errorf("golden exposition fails validation: %v", err)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("aiql_x_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != expositionContentType {
		t.Fatalf("content type = %q", ct)
	}
	if err := ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("handler output invalid: %v", err)
	}
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing trailing newline": "# HELP aiql_x_total h\n# TYPE aiql_x_total counter\naiql_x_total 1",
		"sample before TYPE":       "aiql_x_total 1\n# TYPE aiql_x_total counter\n",
		"duplicate TYPE":           "# TYPE aiql_x_total counter\naiql_x_total 1\n# TYPE aiql_x_total counter\n",
		"bad value":                "# TYPE aiql_x_total counter\naiql_x_total one\n",
		"unquoted label":           "# TYPE aiql_x_total counter\naiql_x_total{a=b} 1\n",
		"unclosed label brace":     "# TYPE aiql_x_total counter\naiql_x_total{a=\"b\" 1\n",
		"bad metric name":          "# TYPE aiql-x counter\naiql-x 1\n",
	}
	for name, body := range cases {
		if err := ValidateExposition([]byte(body)); err == nil {
			t.Errorf("%s: validated; want error\n%s", name, body)
		}
	}
	ok := "# HELP aiql_x_total h\n# TYPE aiql_x_total counter\naiql_x_total{a=\"b\",c=\"d\"} 1\naiql_x_total 2.5\n"
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeCollector(r)
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"aiql_build_info{", "aiql_go_goroutines", "aiql_go_heap_alloc_bytes", "aiql_process_uptime_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime collector output missing %q", want)
		}
	}
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Errorf("runtime exposition invalid: %v", err)
	}
}
