package obs

import (
	"sync"
	"time"
)

// SlowEntry is one recorded slow query.
type SlowEntry struct {
	Time    time.Time `json:"time"`
	Dataset string    `json:"dataset,omitempty"`
	Kind    string    `json:"kind,omitempty"`
	// Query is the normalized query text (whitespace-canonical, so
	// formatting variants of one investigation collapse together).
	Query string `json:"query"`
	// Bindings fingerprints the parameter bindings of a prepared
	// execution, so repeats of one template with different `$name`
	// values are tellable apart without logging the values themselves.
	Bindings      string        `json:"bindings,omitempty"`
	DurationMS    float64       `json:"duration_ms"`
	Rows          int           `json:"rows"`
	ScannedEvents int64         `json:"scanned_events"`
	Cached        bool          `json:"cached,omitempty"`
	Error         string        `json:"error,omitempty"`
	Spans         []SpanSummary `json:"spans,omitempty"`
}

// SlowLog is a bounded in-memory ring of queries slower than a
// threshold. One log is shared across a whole catalog (entries carry
// their dataset), so it survives dataset hot-swaps. The nil SlowLog is
// valid and discards records.
type SlowLog struct {
	thresholdMS int64
	capacity    int

	mu    sync.Mutex
	ring  []SlowEntry
	next  int
	total uint64
}

// NewSlowLog creates a slow-query log keeping the most recent capacity
// entries at or above thresholdMS milliseconds. A negative threshold
// disables recording (the log stays queryable, always empty); zero
// records every query. A non-positive capacity selects 128.
func NewSlowLog(thresholdMS int64, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{thresholdMS: thresholdMS, capacity: capacity}
}

// ThresholdMS returns the configured threshold (-1 for a nil log).
func (l *SlowLog) ThresholdMS() int64 {
	if l == nil {
		return -1
	}
	return l.thresholdMS
}

// Record adds e when it meets the threshold, evicting the oldest entry
// past capacity.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil || l.thresholdMS < 0 || e.DurationMS < float64(l.thresholdMS) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < l.capacity {
		l.ring = append(l.ring, e)
		l.next = len(l.ring) % l.capacity
		return
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % l.capacity
}

// Snapshot returns the retained entries newest-first plus the total
// number of slow queries ever recorded (including evicted ones).
func (l *SlowLog) Snapshot() ([]SlowEntry, uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.ring))
	for i := 0; i < len(l.ring); i++ {
		// walk backwards from the slot before next, wrapping
		idx := (l.next - 1 - i + 2*len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out, l.total
}
