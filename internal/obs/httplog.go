package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// requestIDHeader carries the correlation ID. An inbound value (set by
// a proxy or a retrying client) is respected so one logical request
// correlates across hops; otherwise the middleware mints one.
const requestIDHeader = "X-Request-Id"

var requestSeq atomic.Uint64

// newRequestID mints a process-unique correlation ID: the process
// start instant anchors uniqueness across restarts, the sequence
// number within the process.
func newRequestID() string {
	return fmt.Sprintf("%x-%x", processStart.UnixNano()&0xffffffffff, requestSeq.Add(1))
}

// statusWriter records the status and byte count while preserving the
// Flusher the NDJSON/SSE streaming endpoints depend on.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController passthrough.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// AccessLog wraps next with structured request logging: one slog line
// per request carrying method, path, status, bytes, duration, remote,
// and the correlation ID (minted if absent, always echoed back in the
// X-Request-Id response header). A nil logger uses slog.Default().
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get(requestIDHeader)
		if reqID == "" {
			reqID = newRequestID()
			r.Header.Set(requestIDHeader, reqID)
		}
		w.Header().Set(requestIDHeader, reqID)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("bytes", sw.bytes),
			slog.String("duration", strconv.FormatFloat(float64(time.Since(start))/float64(time.Millisecond), 'f', 3, 64)+"ms"),
			slog.String("remote", r.RemoteAddr),
		)
	})
}
