package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// expositionContentType is the Prometheus text format version served
// by Handler.
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteExposition renders every instrument and collector sample in the
// Prometheus text format: families sorted by name, HELP/TYPE once per
// name, series sorted by label key, so the output is deterministic and
// golden-testable.
func (r *Registry) WriteExposition(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	colls := make([]func() []Sample, 0, len(r.collectors))
	keys := make([]string, 0, len(r.collectors))
	for k := range r.collectors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		colls = append(colls, r.collectors[k])
	}
	r.mu.Unlock()

	// Collectors run with no registry lock held: they call into the
	// catalog/store stats paths, which may be arbitrarily slow and must
	// never block registration.
	type group struct {
		help    string
		kind    Kind
		samples []Sample
	}
	groups := map[string]*group{}
	order := []string{}
	for _, fn := range colls {
		for _, s := range fn() {
			if !nameRE.MatchString(s.Name) || s.Kind == KindHistogram {
				continue // never let a buggy collector corrupt the exposition
			}
			g, ok := groups[s.Name]
			if !ok {
				g = &group{help: s.Help, kind: s.Kind}
				groups[s.Name] = g
				order = append(order, s.Name)
			}
			g.samples = append(g.samples, s)
		}
	}

	names := make([]string, 0, len(fams)+len(order))
	for _, f := range fams {
		names = append(names, f.name)
	}
	for _, n := range order {
		if _, clash := r.lookup(n); !clash {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		if f, ok := r.lookup(name); ok {
			writeFamily(bw, f)
			continue
		}
		g := groups[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(g.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, g.kind)
		lines := make([]string, 0, len(g.samples))
		for _, s := range g.samples {
			lines = append(lines, name+renderLabels(s.Labels)+" "+formatValue(s.Value))
		}
		sort.Strings(lines)
		for _, l := range lines {
			bw.WriteString(l)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// lookup returns the instrument family for name, if one exists.
func (r *Registry) lookup(name string) (*family, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	return f, ok
}

func writeFamily(w *bufio.Writer, f *family) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	keys := append([]string(nil), f.keys...)
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		switch f.kind {
		case KindCounter:
			fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(float64(s.c.Value())))
		case KindGauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(float64(s.g.Value())))
		case KindHistogram:
			var cum uint64
			for i, bound := range s.h.bounds {
				cum += s.h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(s.labels, formatValue(bound)), cum)
			}
			cum += s.h.counts[len(s.h.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(s.labels, "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatValue(s.h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.h.Count())
		}
	}
}

// withLE merges the le bucket label into a rendered label fragment.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		var buf bytes.Buffer
		if err := r.WriteExposition(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", expositionContentType)
		w.Write(buf.Bytes())
	})
}

const expoMetricNameRE = `[a-zA-Z_:][a-zA-Z0-9_:]*`

var (
	expoSampleRE = regexp.MustCompile(`^(` + expoMetricNameRE + `)(\{[^}]*\})?\s+(\S+)(\s+-?\d+)?$`)
	expoHelpRE   = regexp.MustCompile(`^# (HELP|TYPE) (` + expoMetricNameRE + `)(?: (.*))?$`)
	expoLabelRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// ValidateExposition checks data against the Prometheus text format:
// HELP/TYPE comment grammar, TYPE before (and at most once per) its
// samples, metric and label name grammar, quoted label values, and
// parseable sample values. It is the shared checker behind the
// exposition golden test and the CI scrape-smoke (cmd/promlint), so a
// malformed /metrics fails the same way in both places.
func ValidateExposition(data []byte) error {
	typed := map[string]string{}
	seenSample := map[string]bool{}
	lines := strings.Split(string(data), "\n")
	if len(data) > 0 && !strings.HasSuffix(string(data), "\n") {
		return fmt.Errorf("exposition does not end in a newline")
	}
	for i, line := range lines {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := expoHelpRE.FindStringSubmatch(line)
			if m == nil {
				if strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
					return fmt.Errorf("line %d: malformed %s comment: %q", lineNo, strings.Fields(line)[1], line)
				}
				continue // free-form comment
			}
			if m[1] == "TYPE" {
				name := m[2]
				typ := strings.TrimSpace(m[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, typ, name)
				}
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if seenSample[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				typed[name] = typ
			}
			continue
		}
		m := expoSampleRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line: %q", lineNo, line)
		}
		name, labels, value := m[1], m[2], m[3]
		if labels != "" {
			inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
			if inner != "" {
				for _, pair := range splitLabelPairs(inner) {
					if !expoLabelRE.MatchString(pair) {
						return fmt.Errorf("line %d: malformed label pair %q", lineNo, pair)
					}
				}
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			switch value {
			case "+Inf", "-Inf", "NaN":
			default:
				return fmt.Errorf("line %d: unparseable sample value %q", lineNo, value)
			}
		}
		// histogram sub-series resolve to their family's TYPE
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(name, suffix); fam != name {
				if typed[fam] == "histogram" || typed[fam] == "summary" {
					base = fam
				}
				break
			}
		}
		seenSample[base] = true
	}
	return nil
}

// splitLabelPairs splits a label body on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\' && inQuote:
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
