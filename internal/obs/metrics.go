// Package obs is the observability substrate: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket histograms)
// with Prometheus text exposition, a per-query span tracer threaded
// through the engine via context, a bounded slow-query log, and the
// structured request-logging middleware the HTTP surface shares.
//
// Everything here is stdlib-only by design — the registry is the one
// place later distributed/optimizer PRs emit into, so it must never
// drag a dependency into the storage or engine packages that import it.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's exposition type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name=value metric dimension.
type Label struct {
	Name  string
	Value string
}

// nameRE is the registry's naming contract: every metric this system
// exports is namespaced under aiql_ and lowercase, so dashboards can
// select the whole surface with one matcher and a typo'd camelCase
// name fails at registration instead of silently fragmenting series.
var nameRE = regexp.MustCompile(`^aiql_[a-z0-9_]+$`)

// labelNameRE is the Prometheus label-name grammar.
var labelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// ValidMetricName reports whether name satisfies the registry's
// aiql_[a-z0-9_]+ naming contract.
func ValidMetricName(name string) bool { return nameRE.MatchString(name) }

// Counter is a monotonically increasing metric. The nil Counter is
// valid and discards updates, so call sites need no registry guard.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The nil Gauge is valid
// and discards updates.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default latency histogram bounds, in seconds:
// 1ms to 10s, the band interactive investigation queries live in.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket distribution. Buckets are cumulative at
// exposition time only; Observe touches exactly one bucket counter,
// the total count, and the sum. The nil Histogram is valid and
// discards observations.
type Histogram struct {
	bounds []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Sample is one scrape-time data point produced by a collector:
// subsystems that already keep their own counters (store, durable
// layer, caches) bridge them into the registry as samples instead of
// double-counting into parallel instruments, so /metrics and
// /api/v1/stats read the same source of truth.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind // KindCounter or KindGauge
	Labels []Label
	Value  float64
}

// series is one labeled instrument inside a family.
type series struct {
	labels string // pre-rendered {a="b",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every label variant of one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histogram families only
	series map[string]*series
	keys   []string // registration order; sorted at exposition
}

// Registry holds instruments and collectors and renders them as
// Prometheus text exposition. The nil Registry is valid: Must*
// registration on it returns nil instruments, which discard updates —
// so metrics are a construction-time choice, not a per-call branch.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors map[string]func() []Sample
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families:   map[string]*family{},
		collectors: map[string]func() []Sample{},
	}
}

// register returns the series for (name, labels), creating family and
// series as needed. Registration is get-or-create: a second caller
// with the same name and labels receives the same instrument, so a
// hot-swapped dataset keeps appending to its existing counters.
func (r *Registry) register(name, help string, kind Kind, bounds []float64, labels []Label) (*series, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("obs: metric name %q does not match %s", name, nameRE)
	}
	for _, l := range labels {
		if !labelNameRE.MatchString(l.Name) {
			return nil, fmt.Errorf("obs: label name %q on %s is not a valid Prometheus label", l.Name, name)
		}
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: map[string]*series{}}
		r.families[name] = f
	} else if f.kind != kind {
		return nil, fmt.Errorf("obs: metric %s already registered as %s, not %s", name, f.kind, kind)
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			h := &Histogram{bounds: append([]float64(nil), f.bounds...)}
			h.counts = make([]atomic.Uint64, len(h.bounds)+1)
			s.h = h
		}
		f.series[key] = s
		f.keys = append(f.keys, key)
	}
	return s, nil
}

// Counter registers (or retrieves) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) (*Counter, error) {
	if r == nil {
		return nil, nil
	}
	s, err := r.register(name, help, KindCounter, nil, labels)
	if err != nil {
		return nil, err
	}
	return s.c, nil
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) (*Gauge, error) {
	if r == nil {
		return nil, nil
	}
	s, err := r.register(name, help, KindGauge, nil, labels)
	if err != nil {
		return nil, err
	}
	return s.g, nil
}

// Histogram registers (or retrieves) a histogram with the given upper
// bucket bounds (ascending; +Inf is implicit). Bounds are fixed by the
// first registration of the name.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) (*Histogram, error) {
	if r == nil {
		return nil, nil
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		return nil, fmt.Errorf("obs: histogram %s bounds are not ascending", name)
	}
	s, err := r.register(name, help, KindHistogram, bounds, labels)
	if err != nil {
		return nil, err
	}
	return s.h, nil
}

// MustCounter is Counter, panicking on a registration error (a
// programming bug: bad name or kind clash).
func (r *Registry) MustCounter(name, help string, labels ...Label) *Counter {
	c, err := r.Counter(name, help, labels...)
	if err != nil {
		panic(err)
	}
	return c
}

// MustGauge is Gauge, panicking on a registration error.
func (r *Registry) MustGauge(name, help string, labels ...Label) *Gauge {
	g, err := r.Gauge(name, help, labels...)
	if err != nil {
		panic(err)
	}
	return g
}

// MustHistogram is Histogram, panicking on a registration error.
func (r *Registry) MustHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h, err := r.Histogram(name, help, bounds, labels...)
	if err != nil {
		panic(err)
	}
	return h
}

// SetCollector installs (or replaces) the scrape-time sample source
// registered under key. Keyed replacement is what makes dataset
// hot-swaps clean: the catalog re-registers under the same key and the
// old closure is dropped, never scraped again.
func (r *Registry) SetCollector(key string, fn func() []Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn == nil {
		delete(r.collectors, key)
		return
	}
	r.collectors[key] = fn
}

// RemoveCollector drops the collector registered under key.
func (r *Registry) RemoveCollector(key string) { r.SetCollector(key, nil) }

// renderLabels renders a label set in sorted-name order as the
// canonical {a="b",c="d"} fragment ("" for no labels).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\n\"") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '"':
			b.WriteString(`\"`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
