package obs

import (
	"fmt"
	"testing"
)

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(100, 8)
	l.Record(SlowEntry{Query: "fast", DurationMS: 99.9})
	l.Record(SlowEntry{Query: "slow", DurationMS: 100})
	entries, total := l.Snapshot()
	if total != 1 || len(entries) != 1 || entries[0].Query != "slow" {
		t.Fatalf("entries=%+v total=%d; want only the 100ms query", entries, total)
	}
	if l.ThresholdMS() != 100 {
		t.Fatalf("ThresholdMS = %d", l.ThresholdMS())
	}
}

func TestSlowLogZeroLogsEverything(t *testing.T) {
	l := NewSlowLog(0, 4)
	l.Record(SlowEntry{Query: "q", DurationMS: 0})
	if _, total := l.Snapshot(); total != 1 {
		t.Fatalf("threshold 0 skipped a query; total=%d", total)
	}
}

func TestSlowLogNegativeDisables(t *testing.T) {
	l := NewSlowLog(-1, 4)
	l.Record(SlowEntry{Query: "q", DurationMS: 1e9})
	if entries, total := l.Snapshot(); total != 0 || len(entries) != 0 {
		t.Fatalf("disabled log recorded: entries=%d total=%d", len(entries), total)
	}
}

func TestSlowLogRingWrapNewestFirst(t *testing.T) {
	l := NewSlowLog(0, 3)
	for i := 0; i < 5; i++ {
		l.Record(SlowEntry{Query: fmt.Sprintf("q%d", i), DurationMS: float64(i)})
	}
	entries, total := l.Snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	want := []string{"q4", "q3", "q2"}
	if len(entries) != len(want) {
		t.Fatalf("kept %d entries, want %d", len(entries), len(want))
	}
	for i, w := range want {
		if entries[i].Query != w {
			t.Fatalf("entries[%d] = %q, want %q (newest-first)", i, entries[i].Query, w)
		}
	}
}

func TestSlowLogNil(t *testing.T) {
	var l *SlowLog
	l.Record(SlowEntry{Query: "q", DurationMS: 1})
	if entries, total := l.Snapshot(); entries != nil || total != 0 {
		t.Fatal("nil log returned entries")
	}
	if l.ThresholdMS() != -1 {
		t.Fatalf("nil ThresholdMS = %d, want -1", l.ThresholdMS())
	}
}
