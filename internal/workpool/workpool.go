// Package workpool provides a bounded pool of helper goroutines for
// parallel scan work. One process-wide pool (or one explicitly shared
// instance) caps the total number of concurrent scan tasks regardless
// of how many queries, datasets, or snapshots fan work out — the same
// single-point-of-governance idea as the service admission pool, applied
// to intra-query parallelism.
//
// The pool is deliberately non-blocking: TryGo either claims a helper
// slot immediately or refuses, and callers are expected to do the work
// inline when refused. That shape makes saturation harmless (a busy
// pool degrades to sequential execution instead of queueing) and makes
// deadlock impossible (no scan ever waits for a slot held by another
// scan).
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded set of helper-goroutine slots. The zero Pool and
// the nil Pool are valid and never run helpers.
type Pool struct {
	slots chan struct{}

	busy      atomic.Int64
	tasks     atomic.Uint64
	saturated atomic.Uint64
}

// New creates a pool with the given number of helper slots. A
// non-positive count yields a pool that always refuses TryGo, which
// degrades every caller to inline (sequential) execution.
func New(helpers int) *Pool {
	if helpers < 0 {
		helpers = 0
	}
	return &Pool{slots: make(chan struct{}, helpers)}
}

var defaultPool = sync.OnceValue(func() *Pool {
	return New(runtime.GOMAXPROCS(0) - 1)
})

// Default returns the lazily created process-wide pool, sized to
// GOMAXPROCS-1 helpers: together with the caller doing work inline,
// a fan-out saturates the machine without oversubscribing it.
func Default() *Pool { return defaultPool() }

// Helpers returns the pool's helper-slot capacity.
func (p *Pool) Helpers() int {
	if p == nil {
		return 0
	}
	return cap(p.slots)
}

// TryGo runs fn on a helper goroutine if a slot is free, returning
// whether it did. It never blocks: when the pool is saturated (or has
// zero slots) the caller keeps the work and runs it inline.
func (p *Pool) TryGo(fn func()) bool {
	if p == nil {
		return false
	}
	select {
	case p.slots <- struct{}{}:
	default:
		p.saturated.Add(1)
		return false
	}
	p.tasks.Add(1)
	p.busy.Add(1)
	go func() {
		defer func() {
			p.busy.Add(-1)
			<-p.slots
		}()
		fn()
	}()
	return true
}

// Stats are the pool's gauges and monotonic counters.
type Stats struct {
	// Workers is the helper-slot capacity.
	Workers int `json:"workers"`
	// Busy is the number of helpers currently running a task.
	Busy int64 `json:"busy"`
	// Tasks counts tasks ever started on a helper.
	Tasks uint64 `json:"tasks"`
	// Saturated counts TryGo calls refused for lack of a free slot
	// (the caller ran that work inline).
	Saturated uint64 `json:"saturated"`
}

// Stats returns a snapshot of the pool's counters; zero values for a
// nil pool.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		Workers:   cap(p.slots),
		Busy:      p.busy.Load(),
		Tasks:     p.tasks.Load(),
		Saturated: p.saturated.Load(),
	}
}
