package workpool

import (
	"sync"
	"testing"
)

func TestTryGoBoundsConcurrency(t *testing.T) {
	const helpers = 3
	p := New(helpers)
	if got := p.Helpers(); got != helpers {
		t.Fatalf("Helpers() = %d, want %d", got, helpers)
	}

	// Occupy every slot, then verify the pool refuses more work
	// instead of blocking or oversubscribing.
	var (
		started sync.WaitGroup
		release = make(chan struct{})
		done    sync.WaitGroup
	)
	started.Add(helpers)
	done.Add(helpers)
	for i := 0; i < helpers; i++ {
		if !p.TryGo(func() {
			started.Done()
			<-release
			done.Done()
		}) {
			t.Fatalf("TryGo %d refused with free slots", i)
		}
	}
	started.Wait()

	if p.TryGo(func() { t.Error("ran a task on a saturated pool") }) {
		t.Fatal("TryGo accepted work with all slots busy")
	}
	s := p.Stats()
	if s.Busy != helpers || s.Tasks != helpers || s.Saturated != 1 {
		t.Fatalf("saturated stats = %+v, want busy=%d tasks=%d saturated=1", s, helpers, helpers)
	}

	close(release)
	done.Wait()

	// Freed slots must be reusable.
	var again sync.WaitGroup
	again.Add(1)
	if !p.TryGo(func() { again.Done() }) {
		t.Fatal("TryGo refused after all helpers finished")
	}
	again.Wait()
	if s := p.Stats(); s.Tasks != helpers+1 {
		t.Fatalf("Tasks = %d, want %d", s.Tasks, helpers+1)
	}
}

func TestZeroAndNilPoolsRefuse(t *testing.T) {
	for _, p := range []*Pool{nil, New(0), New(-5)} {
		if p.Helpers() != 0 {
			t.Errorf("Helpers() = %d, want 0", p.Helpers())
		}
		if p.TryGo(func() {}) {
			t.Error("TryGo succeeded on a helperless pool")
		}
		if s := p.Stats(); s.Workers != 0 || s.Busy != 0 || s.Tasks != 0 {
			t.Errorf("Stats() = %+v, want zeroes", s)
		}
	}
}
