// Package numfmt renders numeric cell values identically across the AIQL
// engine and the baseline engines, so cross-engine result comparison can
// use plain string equality.
package numfmt

import (
	"math"
	"strconv"
)

// Format renders f: integral values print without a decimal point, other
// values use Go's shortest round-trip representation.
func Format(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
