package numfmt

import (
	"testing"
	"testing/quick"
)

func TestFormat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1:       "1",
		-3:      "-3",
		42:      "42",
		2.5:     "2.5",
		-0.125:  "-0.125",
		1e6:     "1000000",
		1e15:    "1e+15", // beyond the integer-format cutoff
		1234.75: "1234.75",
	}
	for in, want := range cases {
		if got := Format(in); got != want {
			t.Errorf("Format(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestIntegersFormatWithoutPoint: every small integer formats with no
// decimal point.
func TestIntegersFormatWithoutPoint(t *testing.T) {
	f := func(n int32) bool {
		s := Format(float64(n))
		for _, r := range s {
			if r == '.' || r == 'e' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
