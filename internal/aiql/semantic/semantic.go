// Package semantic validates and normalizes parsed AIQL queries: it
// resolves entity variable types, checks attribute names against the data
// model, verifies that operations are compatible with object entity types,
// resolves event aliases in with clauses, and expands the context-aware
// return shortcuts (a bare entity variable means its default attribute,
// e.g. p1 → p1.exe_name).
package semantic

import (
	"fmt"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/token"
	"github.com/aiql/aiql/internal/sysmon"
)

// Error is a semantic error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("semantic error at %s: %s", e.Pos, e.Msg) }

func errf(pos token.Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ParamType classifies what kind of value a `$name` placeholder accepts,
// inferred from the placeholder's position in the query.
type ParamType string

// Parameter types.
const (
	// ParamString is an entity attribute value or pattern (LIKE
	// wildcards in the bound string are honored) or a string-valued
	// event attribute such as optype.
	ParamString ParamType = "string"
	// ParamNumber is a numeric comparison value (agentid, amount,
	// ordering comparisons on entity attributes).
	ParamNumber ParamType = "number"
	// ParamTime is a time-window literal ("05/10/2018", "2018-05-10
	// 13:30:00").
	ParamTime ParamType = "time"
)

// ParamSpec is one entry of a query's typed parameter signature.
type ParamSpec struct {
	Name string    `json:"name"`
	Type ParamType `json:"type"`
}

// ParamError reports conflicting uses of one placeholder: two positions
// that demand different value types.
type ParamError struct {
	Name string
	Pos  token.Pos
	Msg  string
}

// Error implements the error interface.
func (e *ParamError) Error() string { return fmt.Sprintf("semantic error at %s: %s", e.Pos, e.Msg) }

// Info is the symbol information produced by Check.
type Info struct {
	// Vars maps entity variable names to their types.
	Vars map[string]sysmon.EntityType
	// Events maps event aliases to their pattern index.
	Events map[string]int
	// Columns are the output column labels, in return order.
	Columns []string
	// Aggregates maps return aliases to their aggregate expression, for
	// anomaly queries.
	Aggregates map[string]*ast.CallExpr
	// Params is the query's typed parameter signature, placeholders in
	// first-appearance order. Empty for fully literal queries.
	Params []ParamSpec

	paramTypes map[string]ParamType
}

// addParam records one placeholder occurrence, rejecting a type that
// conflicts with an earlier occurrence of the same name.
func (info *Info) addParam(name string, t ParamType, pos token.Pos) error {
	if prev, ok := info.paramTypes[name]; ok {
		if prev != t {
			return &ParamError{Name: name, Pos: pos,
				Msg: fmt.Sprintf("parameter $%s is used as both %s and %s", name, prev, t)}
		}
		return nil
	}
	info.paramTypes[name] = t
	info.Params = append(info.Params, ParamSpec{Name: name, Type: t})
	return nil
}

// eventAttrParamType is the parameter type demanded by an event-attribute
// comparison position.
func eventAttrParamType(attr string) ParamType {
	switch attr {
	case "optype", "op":
		return ParamString
	default: // id, agentid, amount, seq, starttime, endtime
		return ParamNumber
	}
}

// entityFilterParamType is the parameter type demanded by an
// entity-attribute comparison: ordering comparisons need numbers,
// equality and LIKE take strings (wildcards resolved at bind time).
func entityFilterParamType(op ast.CmpOp) ParamType {
	switch op {
	case ast.CmpLT, ast.CmpLE, ast.CmpGT, ast.CmpGE:
		return ParamNumber
	default:
		return ParamString
	}
}

// Check validates q, normalizing it in place, and returns symbol info.
// Dependency queries must be rewritten to multievent form first (package
// engine does this); Check rejects them.
func Check(q ast.Query) (*Info, error) {
	info := &Info{
		Vars:       map[string]sysmon.EntityType{},
		Events:     map[string]int{},
		Aggregates: map[string]*ast.CallExpr{},
		paramTypes: map[string]ParamType{},
	}
	if err := checkHead(q.Header(), info); err != nil {
		return info, err
	}
	switch x := q.(type) {
	case *ast.MultieventQuery:
		return info, checkMultievent(x, info)
	case *ast.AnomalyQuery:
		return info, checkAnomaly(x, info)
	case *ast.DependencyQuery:
		return info, checkDependencyShape(x)
	default:
		return nil, fmt.Errorf("semantic: unknown query type %T", q)
	}
}

// checkHead collects placeholder uses from the global clauses: window
// bound parameters are time-typed, global event-attribute constraints
// follow the event-attribute rule.
func checkHead(h *ast.Head, info *Info) error {
	if w := h.Window; w != nil {
		for _, name := range []string{w.AtParam, w.FromParam, w.ToParam} {
			if name == "" {
				continue
			}
			if err := info.addParam(name, ParamTime, w.Pos); err != nil {
				return err
			}
		}
	}
	for i := range h.Globals {
		f := &h.Globals[i]
		if f.Val.Param == "" {
			continue
		}
		if err := info.addParam(f.Val.Param, eventAttrParamType(f.Attr), f.Pos); err != nil {
			return err
		}
	}
	return nil
}

// opObjectTypes returns the object entity types permitted for an op name.
func opObjectTypes(op string) []sysmon.EntityType {
	switch op {
	case "start", "end":
		return []sysmon.EntityType{sysmon.EntityProcess}
	case "execute", "delete", "rename", "chmod":
		return []sysmon.EntityType{sysmon.EntityFile}
	case "read", "write":
		return []sysmon.EntityType{sysmon.EntityFile, sysmon.EntityNetconn}
	case "connect", "accept", "send", "recv":
		return []sysmon.EntityType{sysmon.EntityNetconn}
	default:
		return nil
	}
}

func contains(ts []sysmon.EntityType, t sysmon.EntityType) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

func checkEntityRef(r *ast.EntityRef, info *Info) error {
	if prev, ok := info.Vars[r.Name]; ok {
		if r.Type == sysmon.EntityInvalid {
			r.Type = prev
		} else if r.Type != prev {
			return errf(r.Pos, "variable %q has conflicting types %s and %s", r.Name, prev, r.Type)
		}
	} else {
		if r.Type == sysmon.EntityInvalid {
			return errf(r.Pos, "variable %q used before declaration", r.Name)
		}
		info.Vars[r.Name] = r.Type
	}
	for i := range r.Filters {
		f := &r.Filters[i]
		canon, ok := sysmon.CanonicalAttr(r.Type, f.Attr)
		if !ok {
			return errf(f.Pos, "entity %q (%s) has no attribute %q (valid: %v)",
				r.Name, r.Type, f.Attr, sysmon.Attrs(r.Type))
		}
		f.Attr = canon
		if f.Val.Param != "" {
			if err := info.addParam(f.Val.Param, entityFilterParamType(f.Op), f.Pos); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkPattern(p *ast.EventPattern, idx int, info *Info) error {
	if err := checkEntityRef(&p.Subject, info); err != nil {
		return err
	}
	if p.Subject.Type != sysmon.EntityProcess {
		return errf(p.Subject.Pos, "event subject %q must be a process", p.Subject.Name)
	}
	if err := checkEntityRef(&p.Object, info); err != nil {
		return err
	}
	for _, op := range p.Ops {
		allowed := opObjectTypes(op)
		if allowed == nil {
			return errf(p.Pos, "unknown operation %q", op)
		}
		if !contains(allowed, p.Object.Type) {
			return errf(p.Object.Pos, "operation %q cannot target a %s (%q)", op, p.Object.Type, p.Object.Name)
		}
	}
	for i := range p.EvtFilters {
		f := &p.EvtFilters[i]
		if !sysmon.ValidEventAttr(f.Attr) {
			return errf(f.Pos, "unknown event attribute %q", f.Attr)
		}
		if f.Val.Param != "" {
			if err := info.addParam(f.Val.Param, eventAttrParamType(f.Attr), f.Pos); err != nil {
				return err
			}
		}
	}
	if p.Alias != "" {
		if _, dup := info.Events[p.Alias]; dup {
			return errf(p.Pos, "duplicate event alias %q", p.Alias)
		}
		if _, isVar := info.Vars[p.Alias]; isVar {
			return errf(p.Pos, "event alias %q collides with entity variable", p.Alias)
		}
		info.Events[p.Alias] = idx
	}
	return nil
}

func checkMultievent(q *ast.MultieventQuery, info *Info) error {
	for i := range q.Patterns {
		if err := checkPattern(&q.Patterns[i], i, info); err != nil {
			return err
		}
	}
	for _, w := range q.With {
		switch c := w.(type) {
		case ast.TemporalRel:
			if _, ok := info.Events[c.Left]; !ok {
				return errf(c.Pos, "unknown event alias %q in with clause", c.Left)
			}
			if _, ok := info.Events[c.Right]; !ok {
				return errf(c.Pos, "unknown event alias %q in with clause", c.Right)
			}
			if c.Left == c.Right {
				return errf(c.Pos, "temporal relation relates %q to itself", c.Left)
			}
		case ast.EventCond:
			if _, ok := info.Events[c.Event]; !ok {
				return errf(c.Pos, "unknown event alias %q in with clause", c.Event)
			}
			if !sysmon.ValidEventAttr(c.Attr) {
				return errf(c.Pos, "unknown event attribute %q", c.Attr)
			}
			if c.Val.Param != "" {
				if err := info.addParam(c.Val.Param, eventAttrParamType(c.Attr), c.Pos); err != nil {
					return err
				}
			}
		}
	}
	if len(q.Return) == 0 {
		return fmt.Errorf("semantic: query returns nothing")
	}
	for i := range q.Return {
		if err := checkReturnItem(&q.Return[i], info, false); err != nil {
			return err
		}
		info.Columns = append(info.Columns, columnLabel(&q.Return[i]))
	}
	return nil
}

// checkReturnItem validates and normalizes one return item. Bare entity
// variables expand to their default attribute (context-aware shortcut).
// Aggregates are only legal when agg is true (anomaly queries).
func checkReturnItem(it *ast.ReturnItem, info *Info, agg bool) error {
	expanded, err := normalizeExpr(it.Expr, info, agg)
	if err != nil {
		return err
	}
	it.Expr = expanded
	if !agg && ast.ContainsAggregate(it.Expr) {
		return errf(it.Expr.Pos(), "aggregate functions require an anomaly query (window = ..., step = ...)")
	}
	if agg {
		if call, ok := it.Expr.(*ast.CallExpr); ok {
			name := it.Alias
			if name == "" {
				name = call.Func
			}
			info.Aggregates[name] = call
		}
	}
	return nil
}

// normalizeExpr resolves variables in a return/group-by expression.
func normalizeExpr(e ast.Expr, info *Info, agg bool) (ast.Expr, error) {
	switch x := e.(type) {
	case *ast.VarExpr:
		if t, ok := info.Vars[x.Name]; ok {
			return &ast.AttrExpr{Var: x.Name, Attr: sysmon.DefaultAttr(t), At: x.At}, nil
		}
		if _, ok := info.Events[x.Name]; ok {
			return x, nil // bare event reference (count(evt), evt id projection)
		}
		return nil, errf(x.At, "unknown variable %q", x.Name)
	case *ast.AttrExpr:
		if t, ok := info.Vars[x.Var]; ok {
			canon, ok := sysmon.CanonicalAttr(t, x.Attr)
			if !ok {
				return nil, errf(x.At, "entity %q (%s) has no attribute %q (valid: %v)", x.Var, t, x.Attr, sysmon.Attrs(t))
			}
			x.Attr = canon
			return x, nil
		}
		if _, ok := info.Events[x.Var]; ok {
			if !sysmon.ValidEventAttr(x.Attr) {
				return nil, errf(x.At, "unknown event attribute %q", x.Attr)
			}
			return x, nil
		}
		return nil, errf(x.At, "unknown variable %q", x.Var)
	case *ast.CallExpr:
		if !agg {
			return nil, errf(x.At, "aggregate %q requires an anomaly query", x.Func)
		}
		if x.Arg != nil {
			arg, err := normalizeExpr(x.Arg, info, false)
			if err != nil {
				return nil, err
			}
			x.Arg = arg
		} else if x.Func != "count" {
			return nil, errf(x.At, "%s() needs an argument", x.Func)
		}
		return x, nil
	case *ast.BinaryExpr:
		l, err := normalizeExpr(x.L, info, agg)
		if err != nil {
			return nil, err
		}
		r, err := normalizeExpr(x.R, info, agg)
		if err != nil {
			return nil, err
		}
		x.L, x.R = l, r
		return x, nil
	case *ast.UnaryExpr:
		sub, err := normalizeExpr(x.X, info, agg)
		if err != nil {
			return nil, err
		}
		x.X = sub
		return x, nil
	default:
		return e, nil
	}
}

func columnLabel(it *ast.ReturnItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	return ast.ExprString(it.Expr)
}

func checkAnomaly(q *ast.AnomalyQuery, info *Info) error {
	if q.Window <= 0 || q.Step <= 0 {
		return fmt.Errorf("semantic: anomaly query needs positive window and step")
	}
	if err := checkPattern(&q.Pattern, 0, info); err != nil {
		return err
	}
	if len(q.Return) == 0 {
		return fmt.Errorf("semantic: query returns nothing")
	}
	for i := range q.Return {
		if err := checkReturnItem(&q.Return[i], info, true); err != nil {
			return err
		}
		info.Columns = append(info.Columns, columnLabel(&q.Return[i]))
	}
	for i, e := range q.GroupBy {
		g, err := normalizeExpr(e, info, false)
		if err != nil {
			return err
		}
		q.GroupBy[i] = g
	}
	if q.Having != nil {
		if err := checkHaving(q.Having, info); err != nil {
			return err
		}
	}
	return nil
}

// checkHaving validates a having expression: it may reference return
// aliases (current or lagged window), literals, and arithmetic over them.
func checkHaving(e ast.Expr, info *Info) error {
	switch x := e.(type) {
	case *ast.VarExpr:
		if _, ok := info.Aggregates[x.Name]; !ok {
			return errf(x.At, "having references %q, which is not an aggregate return alias", x.Name)
		}
		return nil
	case *ast.HistExpr:
		if _, ok := info.Aggregates[x.Name]; !ok {
			return errf(x.At, "having references %q[%d], but %q is not an aggregate return alias", x.Name, x.Lag, x.Name)
		}
		return nil
	case *ast.NumberLit, *ast.StringLit:
		return nil
	case *ast.BinaryExpr:
		if err := checkHaving(x.L, info); err != nil {
			return err
		}
		return checkHaving(x.R, info)
	case *ast.UnaryExpr:
		return checkHaving(x.X, info)
	case *ast.AttrExpr:
		return errf(x.At, "having may only reference aggregate aliases, not %s.%s", x.Var, x.Attr)
	case *ast.CallExpr:
		return errf(x.At, "aggregates in having must be named in the return clause and referenced by alias")
	default:
		return fmt.Errorf("semantic: unsupported having expression")
	}
}

// checkDependencyShape performs the structural checks possible before the
// dependency query is rewritten to multievent form.
func checkDependencyShape(q *ast.DependencyQuery) error {
	if len(q.Nodes) != len(q.Edges)+1 {
		return fmt.Errorf("semantic: malformed dependency chain")
	}
	types := map[string]sysmon.EntityType{}
	for i := range q.Nodes {
		n := &q.Nodes[i]
		if prev, ok := types[n.Name]; ok {
			if n.Type != sysmon.EntityInvalid && n.Type != prev {
				return errf(n.Pos, "variable %q has conflicting types", n.Name)
			}
			n.Type = prev
		} else {
			if n.Type == sysmon.EntityInvalid {
				return errf(n.Pos, "variable %q used before declaration", n.Name)
			}
			types[n.Name] = n.Type
		}
	}
	for i, e := range q.Edges {
		l, r := &q.Nodes[i], &q.Nodes[i+1]
		subj, obj := l, r
		if !e.LeftToRight {
			subj, obj = r, l
		}
		if subj.Type != sysmon.EntityProcess {
			return errf(subj.Pos, "dependency edge subject %q must be a process", subj.Name)
		}
		if e.Op == "connect" && obj.Type == sysmon.EntityProcess {
			continue // cross-host IPC edge; expanded during rewrite
		}
		if allowed := opObjectTypes(e.Op); !contains(allowed, obj.Type) {
			return errf(obj.Pos, "operation %q cannot target a %s (%q)", e.Op, obj.Type, obj.Name)
		}
	}
	return nil
}
