package semantic

import (
	"errors"
	"strings"
	"testing"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/parser"
	"github.com/aiql/aiql/internal/sysmon"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return Check(q)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("Check: %v\n%s", err, src)
	}
	return info
}

func TestSymbolsResolved(t *testing.T) {
	info := mustCheck(t, `
proc p1["%cmd.exe"] start proc p2 as evt1
proc p2 write file f as evt2
with evt1 before evt2
return distinct p1, p2, f`)
	if info.Vars["p1"] != sysmon.EntityProcess || info.Vars["f"] != sysmon.EntityFile {
		t.Errorf("vars = %v", info.Vars)
	}
	if info.Events["evt1"] != 0 || info.Events["evt2"] != 1 {
		t.Errorf("events = %v", info.Events)
	}
	if len(info.Columns) != 3 {
		t.Errorf("columns = %v", info.Columns)
	}
}

func TestReturnShortcutExpansion(t *testing.T) {
	q, err := parser.Parse(`proc p start proc q as e return p, q.pid, e.amount`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(q); err != nil {
		t.Fatal(err)
	}
	mq := q.(*ast.MultieventQuery)
	// bare p expands to p.exe_name
	attr, ok := mq.Return[0].Expr.(*ast.AttrExpr)
	if !ok || attr.Attr != "exe_name" {
		t.Errorf("return[0] = %#v", mq.Return[0].Expr)
	}
	// q.pid stays as written
	if a := mq.Return[1].Expr.(*ast.AttrExpr); a.Attr != "pid" {
		t.Errorf("return[1] = %#v", a)
	}
	// event attribute reference passes
	if a := mq.Return[2].Expr.(*ast.AttrExpr); a.Var != "e" || a.Attr != "amount" {
		t.Errorf("return[2] = %#v", a)
	}
}

func TestAttributeCanonicalization(t *testing.T) {
	q, err := parser.Parse(`proc p connect ip i[dstip = "1.2.3.4"] as e return i.dstip`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(q); err != nil {
		t.Fatal(err)
	}
	mq := q.(*ast.MultieventQuery)
	if mq.Patterns[0].Object.Filters[0].Attr != "dst_ip" {
		t.Errorf("filter attr = %q", mq.Patterns[0].Object.Filters[0].Attr)
	}
	if mq.Return[0].Expr.(*ast.AttrExpr).Attr != "dst_ip" {
		t.Errorf("return attr not canonicalized")
	}
}

func TestCheckIsIdempotent(t *testing.T) {
	q, err := parser.Parse(`proc p start proc q as e return p, q`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(q); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(q); err != nil {
		t.Fatalf("second Check failed: %v", err)
	}
}

func TestSemanticRejections(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`proc p start file f as e return p`, "cannot target"},
		{`proc p read proc q as e return p`, "cannot target"},
		{`proc p connect file f as e return p`, "cannot target"},
		{`proc p start proc q as e return bogus`, "unknown variable"},
		{`proc p start proc q as e return p.bogus`, "no attribute"},
		{`proc p[bogus = "x"] start proc q as e return p`, "no attribute"},
		{`proc p start proc q as e with e before e return p`, "itself"},
		{`proc p start proc q as e with zz before e return p`, "unknown event alias"},
		{`proc p start proc q as e with e.bogus > 1 return p`, "unknown event attribute"},
		{`proc p start proc q as e return count(e)`, "anomaly"},
		{`proc p start proc q as e proc x start proc y as e return p`, "duplicate event alias"},
		{`proc e start proc q as e return e`, "collides"},
		{`window = 1 min, step = 1 min
proc p write ip i as evt
return p, avg(evt.amount) as amt
having bogus > 1`, "not an aggregate"},
		{`window = 1 min, step = 1 min
proc p write ip i as evt
return p, avg(evt.amount) as amt
having p.exe_name > 1`, "aggregate aliases"},
		{`window = 1 min, step = 1 min
proc p write ip i as evt
return p, avg(evt.amount) as amt
having avg(evt.amount) > 1`, "referenced by alias"},
	}
	for _, c := range cases {
		_, err := check(t, c.src)
		if err == nil {
			t.Errorf("Check(%q): expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Check(%q): error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestAnomalyAggregatesRegistered(t *testing.T) {
	info := mustCheck(t, `
window = 1 min, step = 1 min
proc p write ip i as evt
return p, avg(evt.amount) as amt, count(evt) as n
group by p
having amt > 2 * amt[1] and n > 0`)
	if info.Aggregates["amt"] == nil || info.Aggregates["n"] == nil {
		t.Errorf("aggregates = %v", info.Aggregates)
	}
}

func TestDependencyShapeChecks(t *testing.T) {
	// ip node as an edge subject is rejected
	_, err := check(t, `forward: file f <-[write] proc p ->[read] file g <-[connect] ip c return f`)
	if err == nil {
		t.Error("expected subject-type error for connect edge from ip")
	}
	// valid chains pass
	mustCheck(t, `forward: proc a ->[write] file f <-[read] proc b ->[connect] proc c return f`)
}

func TestPolymorphicReadWrite(t *testing.T) {
	// read targets both files and connections
	mustCheck(t, `proc p read file f as e return p`)
	mustCheck(t, `proc p read ip i as e return p`)
	mustCheck(t, `proc p read || write ip i as e return p`)
}

func TestParamSignatureInference(t *testing.T) {
	info := mustCheck(t, `
(at $day)
agentid = $agent
proc p[$exe] start proc q[pid = $pid] as e1
proc q write file f {amount > $amt} as e2
with e2.optype = $op
return p, q, f`)
	want := []ParamSpec{
		{Name: "day", Type: ParamTime},
		{Name: "agent", Type: ParamNumber},
		{Name: "exe", Type: ParamString},
		{Name: "pid", Type: ParamString},
		{Name: "amt", Type: ParamNumber},
		{Name: "op", Type: ParamString},
	}
	if len(info.Params) != len(want) {
		t.Fatalf("params = %+v, want %d entries", info.Params, len(want))
	}
	for i, w := range want {
		if info.Params[i] != w {
			t.Errorf("param %d = %+v, want %+v", i, info.Params[i], w)
		}
	}
}

func TestParamReuseSameTypeAllowed(t *testing.T) {
	info := mustCheck(t, `
proc p[$exe] start proc q[exe_name = $exe] as e1
return p, q`)
	if len(info.Params) != 1 || info.Params[0].Name != "exe" || info.Params[0].Type != ParamString {
		t.Errorf("params = %+v", info.Params)
	}
}

func TestParamConflictingTypesRejected(t *testing.T) {
	for name, src := range map[string]string{
		"string vs number": `proc p[$x] start proc q {agentid = $x} return p`,
		"time vs string":   `(at $x) proc p[$x] start proc q return p`,
		"number vs time":   `(from $x to "05/12/2018") proc p[pid > $x] start proc q return p`,
	} {
		q, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		_, err = Check(q)
		if err == nil {
			t.Errorf("%s: Check succeeded, want conflict error", name)
			continue
		}
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a ParamError", name, err)
		}
	}
}

func TestOrderingComparisonParamIsNumber(t *testing.T) {
	info := mustCheck(t, `proc p[pid >= $lo] start proc q return p`)
	if len(info.Params) != 1 || info.Params[0].Type != ParamNumber {
		t.Errorf("params = %+v, want number", info.Params)
	}
}
