package ast

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Print renders a query back to AIQL surface syntax. The output parses to
// an equivalent AST (used by round-trip tests) and is the canonical form
// shown by tooling.
func Print(q Query) string {
	var b strings.Builder
	printHead(&b, q.Header())
	switch x := q.(type) {
	case *MultieventQuery:
		printMultievent(&b, x)
	case *DependencyQuery:
		printDependency(&b, x)
	case *AnomalyQuery:
		printAnomaly(&b, x)
	}
	return b.String()
}

func printHead(b *strings.Builder, h *Head) {
	switch w := h.Window; {
	case w == nil:
	case w.AtParam != "":
		fmt.Fprintf(b, "(at $%s)\n", w.AtParam)
	case w.FromParam != "" || w.ToParam != "":
		fmt.Fprintf(b, "(from %s to %s)\n", windowBound(w.FromParam, w.From), windowBound(w.ToParam, w.To))
	case w.From != 0 || w.To != 0:
		from := time.Unix(0, w.From).UTC()
		to := time.Unix(0, w.To).UTC()
		fmt.Fprintf(b, "(from %q to %q)\n", from.Format("01/02/2006 15:04:05"), to.Format("01/02/2006 15:04:05"))
	}
	for _, f := range h.Globals {
		fmt.Fprintf(b, "%s %s %s\n", f.Attr, f.Op, formatValue(f.Val))
	}
}

// windowBound renders one time-window bound: the placeholder when one is
// set, the literal instant otherwise.
func windowBound(param string, ns int64) string {
	if param != "" {
		return "$" + param
	}
	return strconv.Quote(time.Unix(0, ns).UTC().Format("01/02/2006 15:04:05"))
}

func formatValue(v Value) string {
	if v.Param != "" {
		return "$" + v.Param
	}
	if v.IsNum {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return strconv.Quote(v.Str)
}

func printFilters(b *strings.Builder, t fmt.Stringer, defAttr string, filters []Filter) {
	if len(filters) == 0 {
		return
	}
	b.WriteString("[")
	for i, f := range filters {
		if i > 0 {
			b.WriteString(", ")
		}
		if i == 0 && f.Attr == defAttr && f.Op == CmpLike && !f.Val.IsNum {
			b.WriteString(strconv.Quote(f.Val.Str))
			continue
		}
		fmt.Fprintf(b, "%s %s %s", f.Attr, f.Op, formatValue(f.Val))
	}
	b.WriteString("]")
}

func printEntityRef(b *strings.Builder, r *EntityRef, withType bool) {
	if withType {
		b.WriteString(r.Type.String())
		b.WriteString(" ")
	}
	b.WriteString(r.Name)
	printFilters(b, r.Type, defaultAttrName(r), r.Filters)
}

func defaultAttrName(r *EntityRef) string {
	switch r.Type.String() {
	case "proc":
		return "exe_name"
	case "file":
		return "name"
	case "ip":
		return "dst_ip"
	}
	return ""
}

func printPattern(b *strings.Builder, p *EventPattern, declared map[string]bool) {
	printEntityRef(b, &p.Subject, !declared[p.Subject.Name])
	declared[p.Subject.Name] = true
	b.WriteString(" ")
	b.WriteString(strings.Join(p.Ops, " || "))
	b.WriteString(" ")
	printEntityRef(b, &p.Object, !declared[p.Object.Name])
	declared[p.Object.Name] = true
	if len(p.EvtFilters) > 0 {
		b.WriteString(" {")
		for i, f := range p.EvtFilters {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s %s %s", f.Attr, f.Op, formatValue(f.Val))
		}
		b.WriteString("}")
	}
	if p.Alias != "" {
		fmt.Fprintf(b, " as %s", p.Alias)
	}
	b.WriteString("\n")
}

func printMultievent(b *strings.Builder, q *MultieventQuery) {
	declared := map[string]bool{}
	for i := range q.Patterns {
		printPattern(b, &q.Patterns[i], declared)
	}
	if len(q.With) > 0 {
		b.WriteString("with ")
		for i, w := range q.With {
			if i > 0 {
				b.WriteString(", ")
			}
			switch c := w.(type) {
			case TemporalRel:
				fmt.Fprintf(b, "%s %s %s", c.Left, c.Op, c.Right)
				if c.Within > 0 {
					fmt.Fprintf(b, " within %s", formatDuration(c.Within))
				}
			case EventCond:
				fmt.Fprintf(b, "%s.%s %s %s", c.Event, c.Attr, c.Op, formatValue(c.Val))
			}
		}
		b.WriteString("\n")
	}
	printReturn(b, q.Return, q.Distinct)
}

func printDependency(b *strings.Builder, q *DependencyQuery) {
	fmt.Fprintf(b, "%s: ", q.Direction)
	declared := map[string]bool{}
	for i := range q.Nodes {
		printEntityRef(b, &q.Nodes[i], !declared[q.Nodes[i].Name])
		declared[q.Nodes[i].Name] = true
		if i < len(q.Edges) {
			if q.Edges[i].LeftToRight {
				fmt.Fprintf(b, " ->[%s] ", q.Edges[i].Op)
			} else {
				fmt.Fprintf(b, " <-[%s] ", q.Edges[i].Op)
			}
		}
	}
	b.WriteString("\n")
	printReturn(b, q.Return, q.Distinct)
}

func printAnomaly(b *strings.Builder, q *AnomalyQuery) {
	fmt.Fprintf(b, "window = %s, step = %s\n", formatDuration(q.Window), formatDuration(q.Step))
	declared := map[string]bool{}
	printPattern(b, &q.Pattern, declared)
	printReturn(b, q.Return, false)
	if len(q.GroupBy) > 0 {
		b.WriteString("group by ")
		for i, e := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ExprString(e))
		}
		b.WriteString("\n")
	}
	if q.Having != nil {
		fmt.Fprintf(b, "having %s\n", ExprString(q.Having))
	}
}

func printReturn(b *strings.Builder, items []ReturnItem, distinct bool) {
	b.WriteString("return ")
	if distinct {
		b.WriteString("distinct ")
	}
	for i, it := range items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ExprString(it.Expr))
		if it.Alias != "" {
			fmt.Fprintf(b, " as %s", it.Alias)
		}
	}
	b.WriteString("\n")
}

func formatDuration(d time.Duration) string {
	switch {
	case d%(24*time.Hour) == 0 && d >= 24*time.Hour:
		return fmt.Sprintf("%d day", d/(24*time.Hour))
	case d%time.Hour == 0 && d >= time.Hour:
		return fmt.Sprintf("%d hour", d/time.Hour)
	case d%time.Minute == 0 && d >= time.Minute:
		return fmt.Sprintf("%d min", d/time.Minute)
	default:
		return fmt.Sprintf("%d sec", d/time.Second)
	}
}

// ExprString renders an expression in surface syntax.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *VarExpr:
		return x.Name
	case *AttrExpr:
		return x.Var + "." + x.Attr
	case *CallExpr:
		if x.Arg == nil {
			return x.Func + "()"
		}
		return x.Func + "(" + ExprString(x.Arg) + ")"
	case *HistExpr:
		return fmt.Sprintf("%s[%d]", x.Name, x.Lag)
	case *NumberLit:
		return strconv.FormatFloat(x.Val, 'g', -1, 64)
	case *StringLit:
		return strconv.Quote(x.Val)
	case *BinaryExpr:
		return "(" + ExprString(x.L) + " " + x.Op + " " + ExprString(x.R) + ")"
	case *UnaryExpr:
		if x.Op == "not" {
			return "(not " + ExprString(x.X) + ")"
		}
		return "(-" + ExprString(x.X) + ")"
	default:
		return "?"
	}
}
