package ast

import (
	"github.com/aiql/aiql/internal/aiql/token"
)

// Expr is the expression language of return, group by, and having
// clauses.
type Expr interface {
	isExpr()
	// Pos returns the expression's source position.
	Pos() token.Pos
}

// VarExpr references an entity or event variable: `p1`. In return clauses
// a bare entity variable means its default attribute (context-aware
// shortcut, e.g. p1 → p1.exe_name).
type VarExpr struct {
	Name string
	At   token.Pos
}

// AttrExpr is a qualified attribute access: `p1.exe_name`, `evt.amount`.
type AttrExpr struct {
	Var  string
	Attr string
	At   token.Pos
}

// CallExpr is an aggregate call: `avg(evt.amount)`, `count(evt)`.
type CallExpr struct {
	Func string
	Arg  Expr // nil for count()
	At   token.Pos
}

// HistExpr accesses the value of an aggregate alias in a previous sliding
// window: `amt[1]` is the value one window back.
type HistExpr struct {
	Name string
	Lag  int
	At   token.Pos
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Val float64
	At  token.Pos
}

// StringLit is a string literal.
type StringLit struct {
	Val string
	At  token.Pos
}

// BinaryExpr applies an arithmetic, comparison, or logical operator.
// Op is one of + - * / = != < <= > >= and or like.
type BinaryExpr struct {
	Op   string
	L, R Expr
	At   token.Pos
}

// UnaryExpr applies negation: `not x` or `-x`.
type UnaryExpr struct {
	Op string // "not" or "-"
	X  Expr
	At token.Pos
}

func (*VarExpr) isExpr()    {}
func (*AttrExpr) isExpr()   {}
func (*CallExpr) isExpr()   {}
func (*HistExpr) isExpr()   {}
func (*NumberLit) isExpr()  {}
func (*StringLit) isExpr()  {}
func (*BinaryExpr) isExpr() {}
func (*UnaryExpr) isExpr()  {}

// Pos implements Expr.
func (e *VarExpr) Pos() token.Pos { return e.At }

// Pos implements Expr.
func (e *AttrExpr) Pos() token.Pos { return e.At }

// Pos implements Expr.
func (e *CallExpr) Pos() token.Pos { return e.At }

// Pos implements Expr.
func (e *HistExpr) Pos() token.Pos { return e.At }

// Pos implements Expr.
func (e *NumberLit) Pos() token.Pos { return e.At }

// Pos implements Expr.
func (e *StringLit) Pos() token.Pos { return e.At }

// Pos implements Expr.
func (e *BinaryExpr) Pos() token.Pos { return e.At }

// Pos implements Expr.
func (e *UnaryExpr) Pos() token.Pos { return e.At }

// AggregateFuncs is the set of aggregate function names accepted by
// anomaly queries.
var AggregateFuncs = map[string]bool{
	"count": true,
	"sum":   true,
	"avg":   true,
	"min":   true,
	"max":   true,
}

// ContainsAggregate reports whether the expression tree contains an
// aggregate call.
func ContainsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *CallExpr:
		return true
	case *BinaryExpr:
		return ContainsAggregate(x.L) || ContainsAggregate(x.R)
	case *UnaryExpr:
		return ContainsAggregate(x.X)
	default:
		return false
	}
}
