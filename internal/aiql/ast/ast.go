// Package ast defines the abstract syntax tree for AIQL queries: the
// multievent, dependency, and anomaly query families, shared clause nodes
// (entity references, filters, temporal relations), and the expression
// language used by return and having clauses.
package ast

import (
	"time"

	"github.com/aiql/aiql/internal/aiql/token"
	"github.com/aiql/aiql/internal/sysmon"
)

// Query is implemented by the three AIQL query families.
type Query interface {
	isQuery()
	// Kind returns "multievent", "dependency", or "anomaly".
	Kind() string
	// Header returns the shared global clauses.
	Header() *Head
}

// Head holds the global clauses shared by all query families: the time
// window and global event-attribute constraints such as `agentid = 5`.
type Head struct {
	Window  *TimeWindow
	Globals []Filter
}

// TimeWindow is the temporal scope of a query, [From, To) in unix nanos.
// Zero bounds are open. Raw preserves the source text for display. The
// *Param fields name prepared-statement placeholders standing in for the
// corresponding literal: AtParam for the single `at` instant, FromParam
// and ToParam for the range bounds. Bind substitutes and parses them; a
// window with an unresolved parameter cannot be executed.
type TimeWindow struct {
	From      int64
	To        int64
	Raw       string
	AtParam   string
	FromParam string
	ToParam   string
	Pos       token.Pos
}

// HasParams reports whether the window still carries placeholders.
func (w *TimeWindow) HasParams() bool {
	return w.AtParam != "" || w.FromParam != "" || w.ToParam != ""
}

// CmpOp is a comparison operator in filters and expressions.
type CmpOp int

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNEQ
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	CmpLike
)

var cmpNames = [...]string{"=", "!=", "<", "<=", ">", ">=", "like"}

// String returns the surface syntax of the operator.
func (c CmpOp) String() string { return cmpNames[c] }

// Value is a literal in a filter: a string (LIKE pattern or exact) or a
// number. A non-empty Param names a prepared-statement placeholder
// (`$name`) instead of a literal; binding replaces it with the concrete
// value before execution.
type Value struct {
	IsNum bool
	Str   string
	Num   float64
	Param string
}

// Filter is one attribute constraint, e.g. `exe_name = "%cmd.exe"`,
// `dstip = "XXX.129"`, or `agentid = 1` (an event attribute).
type Filter struct {
	Attr string
	Op   CmpOp
	Val  Value
	Pos  token.Pos
}

// EntityRef is one occurrence of an entity variable in a pattern. The
// first occurrence declares the variable with its type; later occurrences
// may omit type and filters (`proc p4 read file f1`).
type EntityRef struct {
	Type    sysmon.EntityType
	Name    string
	Filters []Filter
	Pos     token.Pos
}

// EventPattern is one event constraint: subject process performs one of
// Ops on the object entity. EvtFilters holds event-level constraints that
// appeared inside the brackets (e.g. agentid) or in the with clause.
type EventPattern struct {
	Subject    EntityRef
	Ops        []string
	Object     EntityRef
	Alias      string // evt name; parser assigns evtN when absent
	EvtFilters []Filter
	Pos        token.Pos
}

// TemporalRel orders two event patterns: `evt1 before evt2 [within 5 min]`.
type TemporalRel struct {
	Left   string
	Op     string // "before" or "after"
	Right  string
	Within time.Duration // 0 = unbounded
	Pos    token.Pos
}

// EventCond is an event-attribute condition in a with clause,
// e.g. `evt1.amount > 1000`.
type EventCond struct {
	Event string
	Attr  string
	Op    CmpOp
	Val   Value
	Pos   token.Pos
}

// WithCond is a clause element of `with ...`: a TemporalRel or EventCond.
type WithCond interface{ isWithCond() }

func (TemporalRel) isWithCond() {}
func (EventCond) isWithCond()   {}

// ReturnItem is one projection: an expression with an optional alias.
type ReturnItem struct {
	Expr  Expr
	Alias string
}

// MultieventQuery expresses a multi-step attack behavior: several event
// patterns related by shared entity variables and temporal relations.
type MultieventQuery struct {
	Head_    Head
	Patterns []EventPattern
	With     []WithCond
	Return   []ReturnItem
	Distinct bool
}

func (*MultieventQuery) isQuery() {}

// Kind implements Query.
func (*MultieventQuery) Kind() string { return "multievent" }

// Header implements Query.
func (q *MultieventQuery) Header() *Head { return &q.Head_ }

// Direction of a dependency query.
type Direction int

// Dependency tracking directions.
const (
	Forward Direction = iota
	Backward
)

// String returns "forward" or "backward".
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// DepEdge connects adjacent nodes of a dependency chain. LeftToRight
// records the arrow direction: `A ->[op] B` has the left node as subject,
// `A <-[op] B` has the right node as subject.
type DepEdge struct {
	Op          string
	LeftToRight bool
	Pos         token.Pos
}

// DependencyQuery chains constraints among events as an event path for
// causality tracking (paper §2.2.2). It compiles to a MultieventQuery.
type DependencyQuery struct {
	Head_     Head
	Direction Direction
	Nodes     []EntityRef
	Edges     []DepEdge // len(Edges) == len(Nodes)-1
	Return    []ReturnItem
	Distinct  bool
}

func (*DependencyQuery) isQuery() {}

// Kind implements Query.
func (*DependencyQuery) Kind() string { return "dependency" }

// Header implements Query.
func (q *DependencyQuery) Header() *Head { return &q.Head_ }

// AnomalyQuery expresses a frequency-based behavioral model over sliding
// windows (paper §2.2.3).
type AnomalyQuery struct {
	Head_   Head
	Window  time.Duration // sliding window length
	Step    time.Duration // slide step
	Pattern EventPattern
	Return  []ReturnItem
	GroupBy []Expr
	Having  Expr
}

func (*AnomalyQuery) isQuery() {}

// Kind implements Query.
func (*AnomalyQuery) Kind() string { return "anomaly" }

// Header implements Query.
func (q *AnomalyQuery) Header() *Head { return &q.Head_ }
