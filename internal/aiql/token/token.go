// Package token defines the lexical tokens of the AIQL language and the
// source positions used in error reporting.
package token

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. Most AIQL words (entity types, operations, duration units,
// aggregate functions) are contextual: they lex as IDENT and the parser
// gives them meaning by position, which keeps the reserved-word set small.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT  // p1, proc, write, agentid
	STRING // "%cmd.exe"
	NUMBER // 42, 2.5
	PARAM  // $name — prepared-statement placeholder in a value position

	LPAREN   // (
	RPAREN   // )
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	DOT      // .
	COLON    // :
	ARROW    // ->
	BACKARR  // <-
	OROR     // ||
	ANDAND   // &&

	ASSIGN // =
	EQ     // == (accepted as synonym of =)
	NEQ    // !=
	LT     // <
	LE     // <=
	GT     // >
	GE     // >=

	PLUS  // +
	MINUS // -
	STAR  // *
	SLASH // /
	RBRACE
	LBRACE

	// Reserved keywords
	RETURN
	DISTINCT
	AS
	WITH
	GROUP
	BY
	HAVING
	FORWARD
	BACKWARD
	BEFORE
	AFTER
	WITHIN
	AND
	OR
	NOT
	LIKE
)

var kindNames = map[Kind]string{
	ILLEGAL:  "ILLEGAL",
	EOF:      "EOF",
	IDENT:    "identifier",
	STRING:   "string",
	NUMBER:   "number",
	PARAM:    "parameter",
	LPAREN:   "'('",
	RPAREN:   "')'",
	LBRACKET: "'['",
	RBRACKET: "']'",
	LBRACE:   "'{'",
	RBRACE:   "'}'",
	COMMA:    "','",
	DOT:      "'.'",
	COLON:    "':'",
	ARROW:    "'->'",
	BACKARR:  "'<-'",
	OROR:     "'||'",
	ANDAND:   "'&&'",
	ASSIGN:   "'='",
	EQ:       "'=='",
	NEQ:      "'!='",
	LT:       "'<'",
	LE:       "'<='",
	GT:       "'>'",
	GE:       "'>='",
	PLUS:     "'+'",
	MINUS:    "'-'",
	STAR:     "'*'",
	SLASH:    "'/'",
	RETURN:   "'return'",
	DISTINCT: "'distinct'",
	AS:       "'as'",
	WITH:     "'with'",
	GROUP:    "'group'",
	BY:       "'by'",
	HAVING:   "'having'",
	FORWARD:  "'forward'",
	BACKWARD: "'backward'",
	BEFORE:   "'before'",
	AFTER:    "'after'",
	WITHIN:   "'within'",
	AND:      "'and'",
	OR:       "'or'",
	NOT:      "'not'",
	LIKE:     "'like'",
}

// String returns a human-readable name for the kind, used in error
// messages ("expected ')', found identifier").
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps reserved words to their kinds.
var Keywords = map[string]Kind{
	"return":   RETURN,
	"distinct": DISTINCT,
	"as":       AS,
	"with":     WITH,
	"group":    GROUP,
	"by":       BY,
	"having":   HAVING,
	"forward":  FORWARD,
	"backward": BACKWARD,
	"before":   BEFORE,
	"after":    AFTER,
	"within":   WITHIN,
	"and":      AND,
	"or":       OR,
	"not":      NOT,
	"like":     LIKE,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit.
type Token struct {
	Kind Kind
	Text string // raw text (string tokens hold the unquoted value)
	Num  float64
	Pos  Pos
}

// Is reports whether the token is an IDENT with the given (case-sensitive)
// text — the test for contextual keywords such as "proc" or "window".
func (t Token) Is(word string) bool { return t.Kind == IDENT && t.Text == word }

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return t.Text
	case STRING:
		return fmt.Sprintf("%q", t.Text)
	case NUMBER:
		return t.Text
	case PARAM:
		return "$" + t.Text
	default:
		return t.Kind.String()
	}
}
