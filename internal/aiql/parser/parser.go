// Package parser implements the recursive-descent parser for the AIQL
// language. It turns query text into the AST of one of the three query
// families (multievent, dependency, anomaly) and reports syntax errors
// with line/column positions and expected-token hints.
package parser

import (
	"fmt"
	"strings"
	"time"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/lexer"
	"github.com/aiql/aiql/internal/aiql/token"
	"github.com/aiql/aiql/internal/sysmon"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("syntax error at %s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int
	// auto-alias counter for event patterns without `as`
	autoEvt int
}

// Parse parses one AIQL query.
func Parse(src string) (ast.Query, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(token.EOF) {
		return nil, p.errf("unexpected %s after end of query", p.cur())
	}
	return q, nil
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }
func (p *parser) atWord(w string) bool { return p.cur().Is(w) }
func (p *parser) next() token.Token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if !p.at(k) {
		return token.Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) errAt(pos token.Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------- header

// headState carries the parsed global clauses plus the anomaly window
// spec if one appeared.
type headState struct {
	head    ast.Head
	window  time.Duration
	step    time.Duration
	hasSpec bool
}

// parseQuery dispatches on the query family after consuming the header.
func (p *parser) parseQuery() (ast.Query, error) {
	var hs headState
	if err := p.parseHeader(&hs); err != nil {
		return nil, err
	}
	switch {
	case p.at(token.FORWARD) || p.at(token.BACKWARD):
		if hs.hasSpec {
			return nil, p.errf("window/step clauses are not allowed in dependency queries")
		}
		return p.parseDependency(hs.head)
	case hs.hasSpec:
		return p.parseAnomaly(hs)
	default:
		return p.parseMultievent(hs.head)
	}
}

// parseHeader consumes time-window parens, global constraints, and
// window/step specs, in any order, until the query body begins.
func (p *parser) parseHeader(hs *headState) error {
	for {
		switch {
		case p.at(token.LPAREN):
			// a time window: (at "...") or (from "..." to "...")
			if err := p.parseTimeWindow(hs); err != nil {
				return err
			}
		case p.at(token.IDENT) && p.cur().Text == "window" && p.peek().Kind == token.ASSIGN:
			if err := p.parseWindowSpec(hs); err != nil {
				return err
			}
		case p.at(token.IDENT) && p.isGlobalConstraint():
			f, err := p.parseNamedFilter()
			if err != nil {
				return err
			}
			if !sysmon.ValidEventAttr(f.Attr) {
				return p.errAt(f.Pos, "unknown global attribute %q (global constraints apply to event attributes such as agentid)", f.Attr)
			}
			hs.head.Globals = append(hs.head.Globals, f)
			p.skipComma()
		default:
			return nil
		}
	}
}

// isGlobalConstraint reports whether the upcoming tokens form a global
// `attr op value` constraint rather than the start of an event pattern.
func (p *parser) isGlobalConstraint() bool {
	switch p.peek().Kind {
	case token.ASSIGN, token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE, token.LIKE:
		return true
	}
	return false
}

func (p *parser) skipComma() {
	if p.at(token.COMMA) {
		p.next()
	}
}

func (p *parser) parseTimeWindow(hs *headState) error {
	open, _ := p.expect(token.LPAREN)
	if hs.head.Window != nil {
		return p.errAt(open.Pos, "duplicate time window")
	}
	w := &ast.TimeWindow{Pos: open.Pos}
	switch {
	case p.atWord("at"):
		p.next()
		if p.at(token.PARAM) {
			w.AtParam = p.next().Text
			w.Raw = fmt.Sprintf("at $%s", w.AtParam)
			break
		}
		lit, err := p.expect(token.STRING)
		if err != nil {
			return err
		}
		from, to, err := parseInstant(lit.Text, true)
		if err != nil {
			return p.errAt(lit.Pos, "%v", err)
		}
		w.From, w.To = from, to
		w.Raw = fmt.Sprintf("at %q", lit.Text)
	case p.atWord("from"):
		p.next()
		fromRaw, err := p.parseWindowBound(&w.From, &w.FromParam)
		if err != nil {
			return err
		}
		if !p.atWord("to") {
			return p.errf("expected 'to' in time window, found %s", p.cur())
		}
		p.next()
		toPos := p.cur().Pos
		toRaw, err := p.parseWindowBound(&w.To, &w.ToParam)
		if err != nil {
			return err
		}
		if !w.HasParams() && w.To <= w.From {
			return p.errAt(toPos, "time window is empty: 'to' is not after 'from'")
		}
		w.Raw = fmt.Sprintf("from %s to %s", fromRaw, toRaw)
	default:
		return p.errf("expected 'at' or 'from' in time window, found %s", p.cur())
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return err
	}
	hs.head.Window = w
	return nil
}

// parseWindowBound parses one `from`/`to` bound: a time literal or a
// $parameter. It stores the parsed instant (or the placeholder name) and
// returns the bound's surface form for TimeWindow.Raw.
func (p *parser) parseWindowBound(ns *int64, param *string) (string, error) {
	if p.at(token.PARAM) {
		*param = p.next().Text
		return "$" + *param, nil
	}
	lit, err := p.expect(token.STRING)
	if err != nil {
		return "", err
	}
	v, _, err := parseInstant(lit.Text, false)
	if err != nil {
		return "", p.errAt(lit.Pos, "%v", err)
	}
	*ns = v
	return fmt.Sprintf("%q", lit.Text), nil
}

// timeLayouts are the accepted literal formats for time windows.
var timeLayouts = []struct {
	layout  string
	dayOnly bool
}{
	{"01/02/2006 15:04:05", false},
	{"01/02/2006 15:04", false},
	{"01/02/2006", true},
	{"2006-01-02 15:04:05", false},
	{"2006-01-02T15:04:05", false},
	{"2006-01-02", true},
}

// ParseInstant parses a time literal exactly as time-window clauses do,
// for binding `$name` window parameters outside the parser. With
// asWindow set and a date-only literal, the result covers the whole day.
func ParseInstant(s string, asWindow bool) (from, to int64, err error) {
	return parseInstant(s, asWindow)
}

// parseInstant parses a time literal. With asWindow set and a date-only
// literal, the result covers the whole day [midnight, midnight+24h).
func parseInstant(s string, asWindow bool) (from, to int64, err error) {
	for _, tl := range timeLayouts {
		t, perr := time.ParseInLocation(tl.layout, s, time.UTC)
		if perr != nil {
			continue
		}
		from = t.UnixNano()
		if asWindow {
			if tl.dayOnly {
				to = t.Add(24 * time.Hour).UnixNano()
			} else {
				to = t.Add(time.Hour).UnixNano()
			}
		}
		return from, to, nil
	}
	return 0, 0, fmt.Errorf("cannot parse time %q (use mm/dd/yyyy or yyyy-mm-dd, optionally with hh:mm:ss)", s)
}

func (p *parser) parseWindowSpec(hs *headState) error {
	// window = <dur> , step = <dur>
	p.next() // 'window'
	if _, err := p.expect(token.ASSIGN); err != nil {
		return err
	}
	d, err := p.parseDuration()
	if err != nil {
		return err
	}
	hs.window = d
	p.skipComma()
	if !(p.at(token.IDENT) && p.cur().Text == "step") {
		return p.errf("expected 'step = <duration>' after window spec, found %s", p.cur())
	}
	p.next()
	if _, err := p.expect(token.ASSIGN); err != nil {
		return err
	}
	s, err := p.parseDuration()
	if err != nil {
		return err
	}
	hs.step = s
	hs.hasSpec = true
	return nil
}

func (p *parser) parseDuration() (time.Duration, error) {
	num, err := p.expect(token.NUMBER)
	if err != nil {
		return 0, err
	}
	unitTok := p.cur()
	if unitTok.Kind != token.IDENT {
		return 0, p.errf("expected duration unit (sec/min/hour/day), found %s", p.cur())
	}
	var unit time.Duration
	switch strings.ToLower(unitTok.Text) {
	case "s", "sec", "secs", "second", "seconds":
		unit = time.Second
	case "m", "min", "mins", "minute", "minutes":
		unit = time.Minute
	case "h", "hour", "hours":
		unit = time.Hour
	case "d", "day", "days":
		unit = 24 * time.Hour
	case "ms", "millisecond", "milliseconds":
		unit = time.Millisecond
	default:
		return 0, p.errf("unknown duration unit %q (use sec/min/hour/day)", unitTok.Text)
	}
	p.next()
	d := time.Duration(num.Num * float64(unit))
	if d <= 0 {
		return 0, p.errAt(num.Pos, "duration must be positive")
	}
	return d, nil
}

// -------------------------------------------------------------- filters

// parseNamedFilter parses `attr op value`.
func (p *parser) parseNamedFilter() (ast.Filter, error) {
	name, err := p.expect(token.IDENT)
	if err != nil {
		return ast.Filter{}, err
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return ast.Filter{}, err
	}
	val, err := p.parseValue()
	if err != nil {
		return ast.Filter{}, err
	}
	f := ast.Filter{Attr: strings.ToLower(name.Text), Op: op, Val: val, Pos: name.Pos}
	// `attr = "%pat%"` with wildcards means LIKE
	if f.Op == ast.CmpEQ && !f.Val.IsNum && strings.ContainsAny(f.Val.Str, "%_") {
		f.Op = ast.CmpLike
	}
	return f, nil
}

func (p *parser) parseCmpOp() (ast.CmpOp, error) {
	switch p.cur().Kind {
	case token.ASSIGN, token.EQ:
		p.next()
		return ast.CmpEQ, nil
	case token.NEQ:
		p.next()
		return ast.CmpNEQ, nil
	case token.LT:
		p.next()
		return ast.CmpLT, nil
	case token.LE:
		p.next()
		return ast.CmpLE, nil
	case token.GT:
		p.next()
		return ast.CmpGT, nil
	case token.GE:
		p.next()
		return ast.CmpGE, nil
	case token.LIKE:
		p.next()
		return ast.CmpLike, nil
	}
	return 0, p.errf("expected comparison operator, found %s", p.cur())
}

func (p *parser) parseValue() (ast.Value, error) {
	switch p.cur().Kind {
	case token.STRING:
		t := p.next()
		return ast.Value{Str: t.Text}, nil
	case token.NUMBER:
		t := p.next()
		return ast.Value{IsNum: true, Num: t.Num, Str: t.Text}, nil
	case token.PARAM:
		t := p.next()
		return ast.Value{Param: t.Text}, nil
	case token.MINUS:
		p.next()
		t, err := p.expect(token.NUMBER)
		if err != nil {
			return ast.Value{}, err
		}
		return ast.Value{IsNum: true, Num: -t.Num, Str: "-" + t.Text}, nil
	}
	return ast.Value{}, p.errf("expected string, number, or $parameter, found %s", p.cur())
}

// ---------------------------------------------------------- entity refs

// parseEntityRef parses `[type] name [ '[' filters ']' ]`. The entity type
// keyword is contextual; declared tracks variables already introduced so a
// bare name can re-reference one.
func (p *parser) parseEntityRef(declared map[string]sysmon.EntityType) (ast.EntityRef, []ast.Filter, error) {
	var ref ast.EntityRef
	tok := p.cur()
	if tok.Kind != token.IDENT {
		return ref, nil, p.errf("expected entity type or variable, found %s", p.cur())
	}
	if t, ok := sysmon.ParseEntityType(tok.Text); ok && p.peek().Kind == token.IDENT {
		ref.Type = t
		p.next()
		tok = p.cur()
	}
	nameTok, err := p.expect(token.IDENT)
	if err != nil {
		return ref, nil, err
	}
	ref.Name = nameTok.Text
	ref.Pos = nameTok.Pos
	if prev, ok := declared[ref.Name]; ok {
		if ref.Type != sysmon.EntityInvalid && ref.Type != prev {
			return ref, nil, p.errAt(nameTok.Pos, "variable %q redeclared with different type %s (was %s)", ref.Name, ref.Type, prev)
		}
		ref.Type = prev
	} else {
		if ref.Type == sysmon.EntityInvalid {
			return ref, nil, p.errAt(nameTok.Pos, "variable %q used before declaration (prefix its first use with proc/file/ip)", ref.Name)
		}
		declared[ref.Name] = ref.Type
	}
	var evtFilters []ast.Filter
	if p.at(token.LBRACKET) {
		p.next()
		first := true
		for !p.at(token.RBRACKET) {
			if !first {
				if _, err := p.expect(token.COMMA); err != nil {
					return ref, nil, err
				}
			}
			first = false
			switch {
			case p.at(token.STRING):
				// positional filter on the default attribute, LIKE semantics
				lit := p.next()
				op := ast.CmpLike
				if !strings.ContainsAny(lit.Text, "%_") {
					op = ast.CmpEQ
				}
				ref.Filters = append(ref.Filters, ast.Filter{
					Attr: sysmon.DefaultAttr(ref.Type), Op: op,
					Val: ast.Value{Str: lit.Text}, Pos: lit.Pos,
				})
			case p.at(token.PARAM):
				// positional placeholder on the default attribute; whether
				// it means LIKE or exact equality depends on the bound
				// value, so binding resolves the operator
				prm := p.next()
				ref.Filters = append(ref.Filters, ast.Filter{
					Attr: sysmon.DefaultAttr(ref.Type), Op: ast.CmpEQ,
					Val: ast.Value{Param: prm.Text}, Pos: prm.Pos,
				})
			case p.at(token.IDENT):
				f, err := p.parseNamedFilter()
				if err != nil {
					return ref, nil, err
				}
				if sysmon.ValidEventAttr(f.Attr) && !sysmon.ValidAttr(ref.Type, f.Attr) {
					evtFilters = append(evtFilters, f)
				} else {
					ref.Filters = append(ref.Filters, f)
				}
			default:
				return ref, nil, p.errf("expected filter, found %s", p.cur())
			}
		}
		p.next() // ']'
	}
	return ref, evtFilters, nil
}

// ------------------------------------------------------- event patterns

// parseOps parses `op (|| op)*`.
func (p *parser) parseOps() ([]string, error) {
	var ops []string
	for {
		tok := p.cur()
		if tok.Kind != token.IDENT {
			return nil, p.errf("expected operation name, found %s", p.cur())
		}
		if _, ok := sysmon.ParseOperation(strings.ToLower(tok.Text)); !ok {
			return nil, p.errAt(tok.Pos, "unknown operation %q", tok.Text)
		}
		ops = append(ops, strings.ToLower(tok.Text))
		p.next()
		if !p.at(token.OROR) {
			return ops, nil
		}
		p.next()
	}
}

func (p *parser) parsePattern(declared map[string]sysmon.EntityType) (ast.EventPattern, error) {
	var pat ast.EventPattern
	pat.Pos = p.cur().Pos
	subj, subjEvt, err := p.parseEntityRef(declared)
	if err != nil {
		return pat, err
	}
	if subj.Type != sysmon.EntityProcess {
		return pat, p.errAt(subj.Pos, "event subject %q must be a process", subj.Name)
	}
	pat.Subject = subj
	pat.EvtFilters = append(pat.EvtFilters, subjEvt...)
	pat.Ops, err = p.parseOps()
	if err != nil {
		return pat, err
	}
	obj, objEvt, err := p.parseEntityRef(declared)
	if err != nil {
		return pat, err
	}
	pat.Object = obj
	pat.EvtFilters = append(pat.EvtFilters, objEvt...)
	// optional event-filter block: { attr op value, ... }
	if p.at(token.LBRACE) {
		p.next()
		first := true
		for !p.at(token.RBRACE) {
			if !first {
				if _, err := p.expect(token.COMMA); err != nil {
					return pat, err
				}
			}
			first = false
			f, err := p.parseNamedFilter()
			if err != nil {
				return pat, err
			}
			pat.EvtFilters = append(pat.EvtFilters, f)
		}
		p.next()
	}
	if p.at(token.AS) {
		p.next()
		alias, err := p.expect(token.IDENT)
		if err != nil {
			return pat, err
		}
		pat.Alias = alias.Text
	} else {
		p.autoEvt++
		pat.Alias = fmt.Sprintf("evt%d", p.autoEvt)
	}
	return pat, nil
}

// ---------------------------------------------------------- multievent

func (p *parser) parseMultievent(head ast.Head) (*ast.MultieventQuery, error) {
	q := &ast.MultieventQuery{Head_: head}
	declared := map[string]sysmon.EntityType{}
	for !p.at(token.WITH) && !p.at(token.RETURN) {
		if p.at(token.EOF) {
			return nil, p.errf("unexpected end of query: missing return clause")
		}
		pat, err := p.parsePattern(declared)
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, pat)
	}
	if len(q.Patterns) == 0 {
		return nil, p.errf("multievent query needs at least one event pattern")
	}
	if p.at(token.WITH) {
		p.next()
		for {
			cond, err := p.parseWithCond()
			if err != nil {
				return nil, err
			}
			q.With = append(q.With, cond)
			if !p.at(token.COMMA) {
				break
			}
			p.next()
		}
	}
	var err error
	q.Return, q.Distinct, err = p.parseReturn()
	if err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseWithCond() (ast.WithCond, error) {
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(token.BEFORE) || p.at(token.AFTER):
		opTok := p.next()
		right, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		rel := ast.TemporalRel{Left: name.Text, Op: opTok.Text, Right: right.Text, Pos: name.Pos}
		if p.at(token.WITHIN) {
			p.next()
			d, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			rel.Within = d
		}
		return rel, nil
	case p.at(token.DOT):
		p.next()
		attr, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		op, err := p.parseCmpOp()
		if err != nil {
			return nil, err
		}
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return ast.EventCond{Event: name.Text, Attr: strings.ToLower(attr.Text), Op: op, Val: val, Pos: name.Pos}, nil
	}
	return nil, p.errf("expected 'before', 'after', or '.attr' in with clause, found %s", p.cur())
}

// ---------------------------------------------------------- dependency

func (p *parser) parseDependency(head ast.Head) (*ast.DependencyQuery, error) {
	q := &ast.DependencyQuery{Head_: head}
	if p.at(token.FORWARD) {
		q.Direction = ast.Forward
	} else {
		q.Direction = ast.Backward
	}
	p.next()
	if _, err := p.expect(token.COLON); err != nil {
		return nil, err
	}
	declared := map[string]sysmon.EntityType{}
	node, evtF, err := p.parseEntityRef(declared)
	if err != nil {
		return nil, err
	}
	if len(evtF) > 0 {
		// event filters on dependency nodes attach to the adjacent edge;
		// stash them on the node's filter list keyed as event attrs
		node.Filters = append(node.Filters, evtF...)
	}
	q.Nodes = append(q.Nodes, node)
	for p.at(token.ARROW) || p.at(token.BACKARR) {
		dirTok := p.next()
		if _, err := p.expect(token.LBRACKET); err != nil {
			return nil, err
		}
		opTok, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		opName := strings.ToLower(opTok.Text)
		if _, ok := sysmon.ParseOperation(opName); !ok && opName != "connect" {
			return nil, p.errAt(opTok.Pos, "unknown operation %q", opTok.Text)
		}
		if _, err := p.expect(token.RBRACKET); err != nil {
			return nil, err
		}
		next, evtF, err := p.parseEntityRef(declared)
		if err != nil {
			return nil, err
		}
		if len(evtF) > 0 {
			next.Filters = append(next.Filters, evtF...)
		}
		q.Edges = append(q.Edges, ast.DepEdge{
			Op:          opName,
			LeftToRight: dirTok.Kind == token.ARROW,
			Pos:         dirTok.Pos,
		})
		q.Nodes = append(q.Nodes, next)
	}
	if len(q.Nodes) < 2 {
		return nil, p.errf("dependency query needs at least one edge (use '->[op]' or '<-[op]')")
	}
	q.Return, q.Distinct, err = p.parseReturn()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// ------------------------------------------------------------- anomaly

func (p *parser) parseAnomaly(hs headState) (*ast.AnomalyQuery, error) {
	q := &ast.AnomalyQuery{Head_: hs.head, Window: hs.window, Step: hs.step}
	if q.Step > q.Window {
		return nil, p.errf("window step (%s) must not exceed window length (%s)", q.Step, q.Window)
	}
	declared := map[string]sysmon.EntityType{}
	pat, err := p.parsePattern(declared)
	if err != nil {
		return nil, err
	}
	q.Pattern = pat
	if !p.at(token.RETURN) {
		return nil, p.errf("anomaly query takes exactly one event pattern; expected 'return', found %s", p.cur())
	}
	q.Return, _, err = p.parseReturn()
	if err != nil {
		return nil, err
	}
	if p.at(token.GROUP) {
		p.next()
		if _, err := p.expect(token.BY); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.at(token.COMMA) {
				break
			}
			p.next()
		}
	}
	if p.at(token.HAVING) {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	return q, nil
}

// -------------------------------------------------------------- return

func (p *parser) parseReturn() ([]ast.ReturnItem, bool, error) {
	if _, err := p.expect(token.RETURN); err != nil {
		return nil, false, err
	}
	distinct := false
	if p.at(token.DISTINCT) {
		distinct = true
		p.next()
	}
	var items []ast.ReturnItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, false, err
		}
		item := ast.ReturnItem{Expr: e}
		if p.at(token.AS) {
			p.next()
			alias, err := p.expect(token.IDENT)
			if err != nil {
				return nil, false, err
			}
			item.Alias = alias.Text
		}
		items = append(items, item)
		if !p.at(token.COMMA) {
			break
		}
		p.next()
	}
	return items, distinct, nil
}
