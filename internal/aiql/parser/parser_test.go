package parser

import (
	"strings"
	"testing"
	"time"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/sysmon"
)

func parseMulti(t *testing.T, src string) *ast.MultieventQuery {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, src)
	}
	mq, ok := q.(*ast.MultieventQuery)
	if !ok {
		t.Fatalf("got %T, want multievent", q)
	}
	return mq
}

func TestParseQuery1(t *testing.T) {
	// the paper's Query 1 verbatim (modulo obfuscated values)
	mq := parseMulti(t, `
(at "05/10/2018")
agentid = 7
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="203.0.113.129"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1`)
	if len(mq.Patterns) != 4 {
		t.Fatalf("got %d patterns, want 4", len(mq.Patterns))
	}
	if mq.Head_.Window == nil {
		t.Fatal("missing time window")
	}
	day := time.Date(2018, 5, 10, 0, 0, 0, 0, time.UTC)
	if mq.Head_.Window.From != day.UnixNano() || mq.Head_.Window.To != day.Add(24*time.Hour).UnixNano() {
		t.Errorf("window = [%d, %d)", mq.Head_.Window.From, mq.Head_.Window.To)
	}
	if len(mq.Head_.Globals) != 1 || mq.Head_.Globals[0].Attr != "agentid" {
		t.Errorf("globals = %+v", mq.Head_.Globals)
	}
	p4 := mq.Patterns[3]
	if len(p4.Ops) != 2 || p4.Ops[0] != "read" || p4.Ops[1] != "write" {
		t.Errorf("ops = %v", p4.Ops)
	}
	if p4.Object.Type != sysmon.EntityNetconn {
		t.Errorf("object type = %v", p4.Object.Type)
	}
	if len(mq.With) != 3 {
		t.Errorf("with conds = %d", len(mq.With))
	}
	if !mq.Distinct || len(mq.Return) != 6 {
		t.Errorf("return: distinct=%v items=%d", mq.Distinct, len(mq.Return))
	}
}

func TestPositionalFilterBindsDefaultAttr(t *testing.T) {
	mq := parseMulti(t, `proc p["%cmd.exe"] start proc q return p`)
	f := mq.Patterns[0].Subject.Filters[0]
	if f.Attr != "exe_name" || f.Op != ast.CmpLike {
		t.Errorf("filter = %+v", f)
	}
	// exact positional strings parse as equality
	mq = parseMulti(t, `proc p["cmd.exe"] start proc q return p`)
	if mq.Patterns[0].Subject.Filters[0].Op != ast.CmpEQ {
		t.Error("wildcard-free positional filter should be equality")
	}
}

func TestAgentFilterInBracketsBecomesEventFilter(t *testing.T) {
	mq := parseMulti(t, `proc p["%cp%", agentid = 1] write file f return p`)
	if len(mq.Patterns[0].EvtFilters) != 1 || mq.Patterns[0].EvtFilters[0].Attr != "agentid" {
		t.Errorf("event filters = %+v", mq.Patterns[0].EvtFilters)
	}
	if len(mq.Patterns[0].Subject.Filters) != 1 {
		t.Errorf("entity filters = %+v", mq.Patterns[0].Subject.Filters)
	}
}

func TestAutoAliases(t *testing.T) {
	mq := parseMulti(t, `
proc a start proc b
proc b start proc c
return a, b, c`)
	if mq.Patterns[0].Alias != "evt1" || mq.Patterns[1].Alias != "evt2" {
		t.Errorf("aliases = %q, %q", mq.Patterns[0].Alias, mq.Patterns[1].Alias)
	}
}

func TestWithinClause(t *testing.T) {
	mq := parseMulti(t, `
proc a start proc b as e1
proc b start proc c as e2
with e1 before e2 within 5 min
return a`)
	rel := mq.With[0].(ast.TemporalRel)
	if rel.Within != 5*time.Minute {
		t.Errorf("within = %v", rel.Within)
	}
}

func TestEventCondInWith(t *testing.T) {
	mq := parseMulti(t, `
proc p write ip i as e1
with e1.amount > 1000000
return p`)
	cond := mq.With[0].(ast.EventCond)
	if cond.Attr != "amount" || cond.Op != ast.CmpGT || cond.Val.Num != 1000000 {
		t.Errorf("cond = %+v", cond)
	}
}

func TestParseDependency(t *testing.T) {
	q, err := Parse(`
forward: proc p1["%cp%", agentid = 1] ->[write] file f1["%x%"]
<-[read] proc p2
->[connect] proc p3[agentid = 2]
return f1, p1, p2, p3`)
	if err != nil {
		t.Fatal(err)
	}
	dq := q.(*ast.DependencyQuery)
	if dq.Direction != ast.Forward {
		t.Error("direction")
	}
	if len(dq.Nodes) != 4 || len(dq.Edges) != 3 {
		t.Fatalf("nodes=%d edges=%d", len(dq.Nodes), len(dq.Edges))
	}
	if dq.Edges[0].Op != "write" || !dq.Edges[0].LeftToRight {
		t.Errorf("edge0 = %+v", dq.Edges[0])
	}
	if dq.Edges[1].Op != "read" || dq.Edges[1].LeftToRight {
		t.Errorf("edge1 = %+v", dq.Edges[1])
	}
}

func TestParseBackwardDependency(t *testing.T) {
	q, err := Parse(`backward: file f <-[write] proc p return f, p`)
	if err != nil {
		t.Fatal(err)
	}
	if q.(*ast.DependencyQuery).Direction != ast.Backward {
		t.Error("direction should be backward")
	}
}

func TestParseAnomaly(t *testing.T) {
	q, err := Parse(`
(at "05/10/2018")
window = 1 min, step = 10 sec
proc p write ip i[dstip="203.0.113.129"] as evt
return p, avg(evt.amount) as amt
group by p
having amt > 2 * (amt + amt[1] + amt[2]) / 3`)
	if err != nil {
		t.Fatal(err)
	}
	aq := q.(*ast.AnomalyQuery)
	if aq.Window != time.Minute || aq.Step != 10*time.Second {
		t.Errorf("window=%v step=%v", aq.Window, aq.Step)
	}
	if len(aq.GroupBy) != 1 || aq.Having == nil {
		t.Error("group by / having missing")
	}
	call, ok := aq.Return[1].Expr.(*ast.CallExpr)
	if !ok || call.Func != "avg" {
		t.Errorf("return[1] = %T", aq.Return[1].Expr)
	}
	// having parses with correct precedence: amt > ((2*(amt+amt[1]+amt[2]))/3)
	bin := aq.Having.(*ast.BinaryExpr)
	if bin.Op != ">" {
		t.Errorf("having top op = %q", bin.Op)
	}
}

func TestFromToWindow(t *testing.T) {
	mq := parseMulti(t, `
(from "05/10/2018 13:00:00" to "05/10/2018 14:00:00")
proc p start proc q return p`)
	from := time.Date(2018, 5, 10, 13, 0, 0, 0, time.UTC).UnixNano()
	to := time.Date(2018, 5, 10, 14, 0, 0, 0, time.UTC).UnixNano()
	if mq.Head_.Window.From != from || mq.Head_.Window.To != to {
		t.Errorf("window = [%d, %d)", mq.Head_.Window.From, mq.Head_.Window.To)
	}
	// ISO dates work too
	parseMulti(t, `(from "2018-05-10 13:00:00" to "2018-05-10 14:00:00")
proc p start proc q return p`)
}

func TestDurationUnits(t *testing.T) {
	for unit, want := range map[string]time.Duration{
		"sec": time.Second, "min": time.Minute, "hour": time.Hour, "day": 24 * time.Hour,
	} {
		q, err := Parse(`window = 2 ` + unit + `, step = 1 ` + unit + `
proc p write ip i as evt return count(evt)`)
		if err != nil {
			t.Fatalf("%s: %v", unit, err)
		}
		if q.(*ast.AnomalyQuery).Window != 2*want {
			t.Errorf("%s: window = %v", unit, q.(*ast.AnomalyQuery).Window)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`proc p1 start proc p2`, "missing return"},
		{`proc p1 start p2x return p1`, "before declaration"},
		{`proc p1 bogusop proc p2 return p1`, "unknown operation"},
		{`(at "not a date") proc p start proc q return p`, "cannot parse time"},
		{`(from "05/10/2018" to "05/09/2018") proc p start proc q return p`, "empty"},
		{`window = 10 min, step = 20 min proc p write ip i as e return count(e)`, "must not exceed"},
		{`window = 1 parsec, step = 1 sec proc p write ip i as e return count(e)`, "unknown duration unit"},
		{`proc p start proc q return p,`, "expected expression"},
		{`forward: proc p return p`, "at least one edge"},
		{`proc p[exe_name ~ "x"] start proc q return p`, ""},
		{`(at "05/10/2018") (at "05/10/2018") proc p start proc q return p`, "duplicate time window"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error", c.src)
			continue
		}
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q): error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Parse("proc p1 start proc p2\nreturn p1,")
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if perr.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Pos.Line)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	sources := []string{
		`(from "05/10/2018 00:00:00" to "05/11/2018 00:00:00")
agentid = 7
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
with evt1 before evt2
return distinct p1, p2, f1`,
		`forward: proc p1["%cp%"] ->[write] file f1["%x%"] <-[read] proc p2 return f1, p2`,
		`window = 1 min, step = 30 sec
proc p write ip i[dstip = "1.2.3.4"] as evt
return p, avg(evt.amount) as amt
group by p
having amt > 2 * amt[1]`,
	}
	for _, src := range sources {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse original: %v\n%s", err, src)
		}
		printed := ast.Print(q1)
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("parse printed form: %v\n--- printed:\n%s", err, printed)
		}
		reprinted := ast.Print(q2)
		if printed != reprinted {
			t.Errorf("round trip not stable:\n--- first:\n%s\n--- second:\n%s", printed, reprinted)
		}
	}
}

func TestParamsInValuePositions(t *testing.T) {
	mq := parseMulti(t, `
(at $day)
agentid = $agent
proc p[$exe] start proc q[exe_name = $target] as e1
proc q write file f {amount > $amt} as e2
with e1 before e2, e2.amount >= $amt
return p, q, f`)
	w := mq.Head_.Window
	if w == nil || w.AtParam != "day" || w.From != 0 || w.To != 0 {
		t.Fatalf("window = %+v, want at-param day", w)
	}
	if !w.HasParams() {
		t.Error("HasParams() = false")
	}
	if g := mq.Head_.Globals[0]; g.Val.Param != "agent" {
		t.Errorf("global = %+v", g)
	}
	if f := mq.Patterns[0].Subject.Filters[0]; f.Val.Param != "exe" || f.Attr != "exe_name" || f.Op != ast.CmpEQ {
		t.Errorf("positional param filter = %+v", f)
	}
	if f := mq.Patterns[0].Object.Filters[0]; f.Val.Param != "target" || f.Op != ast.CmpEQ {
		t.Errorf("named param filter = %+v", f)
	}
	if f := mq.Patterns[1].EvtFilters[0]; f.Val.Param != "amt" || f.Op != ast.CmpGT {
		t.Errorf("event param filter = %+v", f)
	}
	cond, ok := mq.With[1].(ast.EventCond)
	if !ok || cond.Val.Param != "amt" {
		t.Errorf("with cond = %+v", mq.With[1])
	}
}

func TestParamsInFromToWindow(t *testing.T) {
	mq := parseMulti(t, `(from $start to "05/12/2018") proc p start proc q return p`)
	w := mq.Head_.Window
	if w == nil || w.FromParam != "start" || w.ToParam != "" || w.To == 0 {
		t.Fatalf("window = %+v", w)
	}
	mq = parseMulti(t, `(from $a to $b) proc p start proc q return p`)
	w = mq.Head_.Window
	if w.FromParam != "a" || w.ToParam != "b" {
		t.Fatalf("window = %+v", w)
	}
}

func TestParamRejectedOutsideValuePositions(t *testing.T) {
	for name, src := range map[string]string{
		"as alias":       `proc p start proc q as $e return p`,
		"return item":    `proc p start proc q return $p`,
		"operation":      `proc p $op proc q return p`,
		"duration":       `proc a start proc b as e1 proc b start proc c as e2 with e1 before e2 within $d return a`,
		"entity name":    `proc $p start proc q return q`,
		"attribute name": `proc p[$attr = "x"] start proc q return p`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse(%q) succeeded, want error", name, src)
		}
	}
}

func TestParamPrintRoundTrip(t *testing.T) {
	src := `(at $day)
agentid = $agent
proc p1[$exe] start proc p2[exe_name = $t] as evt1
return distinct p1, p2`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Print(q)
	q2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed form failed: %v\n%s", err, printed)
	}
	if ast.Print(q2) != printed {
		t.Errorf("print not stable:\n%s\nvs\n%s", printed, ast.Print(q2))
	}
	if !strings.Contains(printed, "$day") || !strings.Contains(printed, "$exe") {
		t.Errorf("printed form lost parameters:\n%s", printed)
	}
}
