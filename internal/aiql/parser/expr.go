package parser

import (
	"strings"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/token"
)

// Expression grammar (lowest to highest precedence):
//
//	expr    := orExpr
//	orExpr  := andExpr (('or' | '||') andExpr)*
//	andExpr := notExpr (('and' | '&&') notExpr)*
//	notExpr := 'not' notExpr | cmpExpr
//	cmpExpr := addExpr [cmpOp addExpr]
//	addExpr := mulExpr (('+'|'-') mulExpr)*
//	mulExpr := unary (('*'|'/') unary)*
//	unary   := '-' unary | primary
//	primary := NUMBER | STRING | '(' expr ')'
//	         | IDENT '(' [expr] ')'       aggregate call
//	         | IDENT '[' NUMBER ']'       historical window access
//	         | IDENT '.' IDENT            attribute access
//	         | IDENT                      variable
func (p *parser) parseExpr() (ast.Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(token.OR) || p.at(token.OROR) {
		pos := p.cur().Pos
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Op: "or", L: l, R: r, At: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.at(token.AND) || p.at(token.ANDAND) {
		pos := p.cur().Pos
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Op: "and", L: l, R: r, At: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.at(token.NOT) {
		pos := p.cur().Pos
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "not", X: x, At: pos}, nil
	}
	return p.parseCmp()
}

var cmpTokens = map[token.Kind]string{
	token.ASSIGN: "=",
	token.EQ:     "=",
	token.NEQ:    "!=",
	token.LT:     "<",
	token.LE:     "<=",
	token.GT:     ">",
	token.GE:     ">=",
	token.LIKE:   "like",
}

func (p *parser) parseCmp() (ast.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpTokens[p.cur().Kind]; ok {
		pos := p.cur().Pos
		p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ast.BinaryExpr{Op: op, L: l, R: r, At: pos}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (ast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(token.PLUS) || p.at(token.MINUS) {
		opTok := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		op := "+"
		if opTok.Kind == token.MINUS {
			op = "-"
		}
		l = &ast.BinaryExpr{Op: op, L: l, R: r, At: opTok.Pos}
	}
	return l, nil
}

func (p *parser) parseMul() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(token.STAR) || p.at(token.SLASH) {
		opTok := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := "*"
		if opTok.Kind == token.SLASH {
			op = "/"
		}
		l = &ast.BinaryExpr{Op: op, L: l, R: r, At: opTok.Pos}
	}
	return l, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.at(token.MINUS) {
		pos := p.cur().Pos
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "-", X: x, At: pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case token.NUMBER:
		p.next()
		return &ast.NumberLit{Val: tok.Num, At: tok.Pos}, nil
	case token.STRING:
		p.next()
		return &ast.StringLit{Val: tok.Text, At: tok.Pos}, nil
	case token.LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case token.IDENT:
		p.next()
		name := tok.Text
		switch p.cur().Kind {
		case token.LPAREN:
			fname := strings.ToLower(name)
			if !ast.AggregateFuncs[fname] {
				return nil, p.errAt(tok.Pos, "unknown function %q (aggregates: count, sum, avg, min, max)", name)
			}
			p.next()
			var arg ast.Expr
			if !p.at(token.RPAREN) {
				var err error
				arg, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			return &ast.CallExpr{Func: fname, Arg: arg, At: tok.Pos}, nil
		case token.LBRACKET:
			p.next()
			lag, err := p.expect(token.NUMBER)
			if err != nil {
				return nil, err
			}
			if lag.Num != float64(int(lag.Num)) || lag.Num < 0 {
				return nil, p.errAt(lag.Pos, "window lag must be a non-negative integer")
			}
			if _, err := p.expect(token.RBRACKET); err != nil {
				return nil, err
			}
			return &ast.HistExpr{Name: name, Lag: int(lag.Num), At: tok.Pos}, nil
		case token.DOT:
			p.next()
			attr, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			return &ast.AttrExpr{Var: name, Attr: strings.ToLower(attr.Text), At: tok.Pos}, nil
		default:
			return &ast.VarExpr{Name: name, At: tok.Pos}, nil
		}
	}
	return nil, p.errf("expected expression, found %s", p.cur())
}
