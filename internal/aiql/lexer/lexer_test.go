package lexer

import (
	"testing"

	"github.com/aiql/aiql/internal/aiql/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, `proc p1["%cmd.exe"] start proc p2 as evt1`)
	want := []token.Kind{
		token.IDENT, token.IDENT, token.LBRACKET, token.STRING, token.RBRACKET,
		token.IDENT, token.IDENT, token.IDENT, token.AS, token.IDENT, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperatorsAndArrows(t *testing.T) {
	got := kinds(t, `->[write] <-[read] || && = == != < <= > >= + - * / . , : ( ) { }`)
	want := []token.Kind{
		token.ARROW, token.LBRACKET, token.IDENT, token.RBRACKET,
		token.BACKARR, token.LBRACKET, token.IDENT, token.RBRACKET,
		token.OROR, token.ANDAND, token.ASSIGN, token.EQ, token.NEQ,
		token.LT, token.LE, token.GT, token.GE,
		token.PLUS, token.MINUS, token.STAR, token.SLASH,
		token.DOT, token.COMMA, token.COLON,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("RETURN Distinct wiTH")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.RETURN || toks[1].Kind != token.DISTINCT || toks[2].Kind != token.WITH {
		t.Errorf("keyword folding failed: %v", toks)
	}
}

func TestStringEscapes(t *testing.T) {
	toks, err := Tokenize(`"a\"b" 'c\'d' "tab\there"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != `a"b` {
		t.Errorf("double-quote escape: %q", toks[0].Text)
	}
	if toks[1].Text != `c'd` {
		t.Errorf("single-quote escape: %q", toks[1].Text)
	}
	if toks[2].Text != "tab\there" {
		t.Errorf("tab escape: %q", toks[2].Text)
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("42 2.5 0 10.25")
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{42, 2.5, 0, 10.25}
	for i, w := range wants {
		if toks[i].Kind != token.NUMBER || toks[i].Num != w {
			t.Errorf("number %d = %v (%v), want %v", i, toks[i].Num, toks[i].Kind, w)
		}
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("a // comment to end of line\nb")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("comment handling: %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  bb\n   \tccc")
	if err != nil {
		t.Fatal(err)
	}
	wants := []token.Pos{{Line: 1, Col: 1}, {Line: 2, Col: 3}, {Line: 3, Col: 5}}
	for i, w := range wants {
		if toks[i].Pos != w {
			t.Errorf("token %d pos = %v, want %v", i, toks[i].Pos, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		"\"newline\nin string\"",
		"a ! b", // bare !
		"a | b", // bare |
		"a & b", // bare &
		"a @ b", // unknown char
	} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Tokenize("abc @")
	lexErr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if lexErr.Pos.Line != 1 || lexErr.Pos.Col != 5 {
		t.Errorf("error pos = %v, want 1:5", lexErr.Pos)
	}
}

func TestParamTokens(t *testing.T) {
	toks, err := Tokenize(`proc p[$exe] start proc q {agentid = $agent}`)
	if err != nil {
		t.Fatal(err)
	}
	var params []string
	for _, tk := range toks {
		if tk.Kind == token.PARAM {
			params = append(params, tk.Text)
		}
	}
	if len(params) != 2 || params[0] != "exe" || params[1] != "agent" {
		t.Errorf("params = %v, want [exe agent]", params)
	}
	// parameter names follow identifier rules and are never keywordized
	toks, err = Tokenize(`$return $_x1`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.PARAM || toks[0].Text != "return" {
		t.Errorf("$return lexed as %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != token.PARAM || toks[1].Text != "_x1" {
		t.Errorf("$_x1 lexed as %v %q", toks[1].Kind, toks[1].Text)
	}
}

func TestParamErrors(t *testing.T) {
	for _, src := range []string{`$`, `$ x`, `$1`, `$"s"`} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}
