// Package lexer implements the scanner for AIQL query text. It produces
// the token stream consumed by the parser, tracking line/column positions
// for error reporting and supporting '//' line comments as used in the
// paper's example queries.
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/aiql/aiql/internal/aiql/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans AIQL source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New creates a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input, returning all tokens up to and
// including EOF, or the first lexical error.
func Tokenize(src string) ([]token.Token, error) {
	lx := New(src)
	var out []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		return l.scanIdent(pos), nil
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '"' || c == '\'':
		return l.scanString(pos)
	case c == '$':
		return l.scanParam(pos)
	}
	l.advance()
	mk := func(k token.Kind) (token.Token, error) {
		return token.Token{Kind: k, Pos: pos, Text: l.src[l.offOf(pos):l.off]}, nil
	}
	switch c {
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '[':
		return mk(token.LBRACKET)
	case ']':
		return mk(token.RBRACKET)
	case '{':
		return mk(token.LBRACE)
	case '}':
		return mk(token.RBRACE)
	case ',':
		return mk(token.COMMA)
	case '.':
		return mk(token.DOT)
	case ':':
		return mk(token.COLON)
	case '+':
		return mk(token.PLUS)
	case '*':
		return mk(token.STAR)
	case '/':
		return mk(token.SLASH)
	case '-':
		if l.peek() == '>' {
			l.advance()
			return mk(token.ARROW)
		}
		return mk(token.MINUS)
	case '<':
		switch l.peek() {
		case '-':
			l.advance()
			return mk(token.BACKARR)
		case '=':
			l.advance()
			return mk(token.LE)
		}
		return mk(token.LT)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(token.GE)
		}
		return mk(token.GT)
	case '=':
		if l.peek() == '=' {
			l.advance()
			return mk(token.EQ)
		}
		return mk(token.ASSIGN)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(token.NEQ)
		}
		return token.Token{}, &Error{Pos: pos, Msg: "unexpected character '!' (did you mean '!=' ?)"}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return mk(token.OROR)
		}
		return token.Token{}, &Error{Pos: pos, Msg: "unexpected character '|' (did you mean '||' ?)"}
	case '&':
		if l.peek() == '&' {
			l.advance()
			return mk(token.ANDAND)
		}
		return token.Token{}, &Error{Pos: pos, Msg: "unexpected character '&' (did you mean '&&' ?)"}
	}
	return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", string(c))}
}

// offOf recovers the byte offset where the current token began. Single and
// double character punctuation only; identifiers and literals track their
// own text.
func (l *Lexer) offOf(pos token.Pos) int {
	// Tokens never span lines, so walk back from the current offset by the
	// column delta.
	return l.off - (l.col - pos.Col)
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	if k, ok := token.Keywords[strings.ToLower(text)]; ok {
		return token.Token{Kind: k, Text: strings.ToLower(text), Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Text: text, Pos: pos}
}

// scanParam scans a `$name` prepared-statement placeholder. The token
// text is the bare name; names follow identifier rules and are never
// keywordized, so `$return` is a valid parameter.
func (l *Lexer) scanParam(pos token.Pos) (token.Token, error) {
	l.advance() // '$'
	if !isIdentStart(l.peek()) {
		return token.Token{}, &Error{Pos: pos, Msg: "expected parameter name after '$' (parameters look like $name)"}
	}
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	return token.Token{Kind: token.PARAM, Text: l.src[start:l.off], Pos: pos}, nil
}

func (l *Lexer) scanNumber(pos token.Pos) (token.Token, error) {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	text := l.src[start:l.off]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("malformed number %q", text)}
	}
	return token.Token{Kind: token.NUMBER, Text: text, Num: v, Pos: pos}, nil
}

func (l *Lexer) scanString(pos token.Pos) (token.Token, error) {
	quote := l.advance()
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return token.Token{}, &Error{Pos: pos, Msg: "unterminated string literal"}
		}
		c := l.advance()
		if c == quote {
			break
		}
		if c == '\n' {
			return token.Token{}, &Error{Pos: pos, Msg: "newline in string literal"}
		}
		if c == '\\' && l.off < len(l.src) {
			esc := l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"', '\'':
				b.WriteByte(esc)
			default:
				b.WriteByte('\\')
				b.WriteByte(esc)
			}
			continue
		}
		b.WriteByte(c)
	}
	return token.Token{Kind: token.STRING, Text: b.String(), Pos: pos}, nil
}
