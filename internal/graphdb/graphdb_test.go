package graphdb

import (
	"reflect"
	"testing"
)

// tiny graph: two processes, one file, a netconn; p1 writes f, p2 reads
// f, p2 connects out.
func buildGraph(t *testing.T) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New()
	p1 := g.AddNode("Process", map[string]PropValue{"exe_name": StrProp("cp"), "pid": NumProp(10)})
	p2 := g.AddNode("Process", map[string]PropValue{"exe_name": StrProp("apache2"), "pid": NumProp(20)})
	f := g.AddNode("File", map[string]PropValue{"name": StrProp("/var/www/payload.sh")})
	c := g.AddNode("Netconn", map[string]PropValue{"dst_ip": StrProp("9.9.9.9"), "dst_port": NumProp(443)})
	g.AddEdge(p1, f, "write", map[string]PropValue{"ord": NumProp(0), "start_ts": NumProp(100), "id": NumProp(1), "agentid": NumProp(1)})
	g.AddEdge(p2, f, "read", map[string]PropValue{"ord": NumProp(1), "start_ts": NumProp(200), "id": NumProp(2), "agentid": NumProp(1)})
	g.AddEdge(p2, c, "connect", map[string]PropValue{"ord": NumProp(2), "start_ts": NumProp(300), "id": NumProp(3), "agentid": NumProp(1)})
	return g, p1, p2, f, c
}

func TestAddAndLookup(t *testing.T) {
	g, p1, _, f, _ := buildGraph(t)
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if v, ok := g.Node(p1).Prop("exe_name"); !ok || v.S != "cp" {
		t.Errorf("prop lookup = %v, %v", v, ok)
	}
	if _, ok := g.Node(f).Prop("bogus"); ok {
		t.Error("bogus prop found")
	}
	if got := g.Labels(); !reflect.DeepEqual(got, []string{"File", "Netconn", "Process"}) {
		t.Errorf("labels = %v", got)
	}
	if got := len(g.NodesByLabel("Process")); got != 2 {
		t.Errorf("process nodes = %d", got)
	}
}

func TestMatchSingleEdge(t *testing.T) {
	g, _, _, _, _ := buildGraph(t)
	res, err := g.Match(&Pattern{
		Nodes: []NodePattern{
			{Var: "p", Label: "Process"},
			{Var: "f", Label: "File", Preds: []PropPred{{Prop: "name", Op: CmpLike, Val: StrProp("%payload%")}}},
		},
		Edges: []EdgePattern{
			{Alias: "e", FromVar: "p", ToVar: "f", Types: []string{"write"}},
		},
		Return: []ReturnItem{
			{Var: "p", Prop: "exe_name", Label: "p"},
			{Var: "f", Prop: "name", Label: "f"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"cp", "/var/www/payload.sh"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestMatchChainWithTemporalRel(t *testing.T) {
	g, _, _, _, _ := buildGraph(t)
	pat := &Pattern{
		Nodes: []NodePattern{
			{Var: "p1", Label: "Process"},
			{Var: "p2", Label: "Process"},
			{Var: "f", Label: "File"},
		},
		Edges: []EdgePattern{
			{Alias: "e1", FromVar: "p1", ToVar: "f", Types: []string{"write"}},
			{Alias: "e2", FromVar: "p2", ToVar: "f", Types: []string{"read"}},
		},
		Rels: []EdgeRel{
			{LeftEdge: "e1", LeftProp: "ord", Op: CmpLT, RightEdge: "e2", RightProp: "ord"},
		},
		Return: []ReturnItem{
			{Var: "p1", Prop: "exe_name", Label: "writer"},
			{Var: "p2", Prop: "exe_name", Label: "reader"},
		},
	}
	res, err := g.Match(pat)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"cp", "apache2"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
	// reversed temporal relation eliminates the match
	pat.Rels[0] = EdgeRel{LeftEdge: "e2", LeftProp: "ord", Op: CmpLT, RightEdge: "e1", RightProp: "ord"}
	res, err = g.Match(pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("reversed rel should not match, got %v", res.Rows)
	}
}

func TestEdgeRelOffset(t *testing.T) {
	g, _, _, _, _ := buildGraph(t)
	pat := &Pattern{
		Nodes: []NodePattern{
			{Var: "p", Label: "Process"},
			{Var: "f", Label: "File"},
			{Var: "c", Label: "Netconn"},
		},
		Edges: []EdgePattern{
			{Alias: "e1", FromVar: "p", ToVar: "f", Types: []string{"read"}},
			{Alias: "e2", FromVar: "p", ToVar: "c", Types: []string{"connect"}},
		},
		// within 50: e2.start_ts <= e1.start_ts + 50 → 300 <= 250 fails
		Rels: []EdgeRel{
			{LeftEdge: "e2", LeftProp: "start_ts", Op: CmpLE, RightEdge: "e1", RightProp: "start_ts", Offset: 50},
		},
		Return: []ReturnItem{{Var: "p", Prop: "exe_name", Label: "p"}},
	}
	res, err := g.Match(pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("offset bound should fail, got %v", res.Rows)
	}
	pat.Rels[0].Offset = 150 // 300 <= 350 passes
	res, err = g.Match(pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("offset bound should pass, got %v", res.Rows)
	}
}

func TestNumericIndexStart(t *testing.T) {
	g := New()
	for i := 0; i < 100; i++ {
		g.AddNode("Process", map[string]PropValue{"pid": NumProp(int64(i))})
	}
	target := g.AddNode("File", map[string]PropValue{"name": StrProp("x")})
	g.AddEdge(42, target, "write", map[string]PropValue{"id": NumProp(1)})
	g.CreateIndex("Process", "pid")
	res, err := g.Match(&Pattern{
		Nodes: []NodePattern{
			{Var: "p", Label: "Process", Preds: []PropPred{{Prop: "pid", Op: CmpEQ, Val: NumProp(42)}}},
			{Var: "f", Label: "File"},
		},
		Edges:  []EdgePattern{{Alias: "e", FromVar: "p", ToVar: "f", Types: []string{"write"}}},
		Return: []ReturnItem{{Var: "p", Prop: "pid", Label: "pid"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "42" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestEdgeReturnAndDistinct(t *testing.T) {
	g, p1, _, f, _ := buildGraph(t)
	// duplicate edge to test distinct
	g.AddEdge(p1, f, "write", map[string]PropValue{"ord": NumProp(3), "start_ts": NumProp(400), "id": NumProp(4), "agentid": NumProp(1)})
	pat := &Pattern{
		Nodes: []NodePattern{
			{Var: "p", Label: "Process"},
			{Var: "f", Label: "File"},
		},
		Edges:    []EdgePattern{{Alias: "e", FromVar: "p", ToVar: "f", Types: []string{"write"}}},
		Return:   []ReturnItem{{Var: "p", Prop: "exe_name", Label: "p"}},
		Distinct: true,
	}
	res, err := g.Match(pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("distinct rows = %v", res.Rows)
	}
	pat.Distinct = false
	pat.Return = []ReturnItem{{Var: "e", Prop: "id", IsEdge: true, Label: "event"}}
	res, err = g.Match(pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("edge id rows = %v", res.Rows)
	}
}

func TestMatchRejectsUndeclaredVariable(t *testing.T) {
	g, _, _, _, _ := buildGraph(t)
	_, err := g.Match(&Pattern{
		Nodes: []NodePattern{{Var: "p", Label: "Process"}},
		Edges: []EdgePattern{{Alias: "e", FromVar: "p", ToVar: "ghost"}},
	})
	if err == nil {
		t.Fatal("expected undeclared-variable error")
	}
}

func TestCaseInsensitiveStringPreds(t *testing.T) {
	g, _, _, _, _ := buildGraph(t)
	res, err := g.Match(&Pattern{
		Nodes: []NodePattern{
			{Var: "p", Label: "Process", Preds: []PropPred{{Prop: "exe_name", Op: CmpEQ, Val: StrProp("APACHE2")}}},
			{Var: "f", Label: "File"},
		},
		Edges:  []EdgePattern{{Alias: "e", FromVar: "p", ToVar: "f", Types: []string{"read"}}},
		Return: []ReturnItem{{Var: "p", Prop: "exe_name", Label: "p"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("case-insensitive equality failed: %v", res.Rows)
	}
}
