// Package graphdb implements an embedded property-graph database — the
// stand-in for Neo4j in the paper's comparisons. Entities are nodes,
// events are typed edges carrying properties, and queries are subgraph
// patterns matched by backtracking traversal in the style of Cypher's
// runtime: a start-node scan (label index plus exact-property lookup)
// followed by edge-at-a-time expansion, with no join reordering and no
// hash joins — the behavior the paper identifies as the reason graph
// databases lag on multi-step attack behaviors.
package graphdb

import (
	"sort"
	"strconv"
	"strings"
)

// PropValue is one property value: string or integer.
type PropValue struct {
	S     string
	N     int64
	IsNum bool
}

// StrProp and NumProp construct property values.
func StrProp(s string) PropValue { return PropValue{S: s} }

// NumProp returns a numeric property value.
func NumProp(n int64) PropValue { return PropValue{N: n, IsNum: true} }

// Text renders the property for result rows.
func (p PropValue) Text() string {
	if p.IsNum {
		return strconv.FormatInt(p.N, 10)
	}
	return p.S
}

// Num returns the numeric value (parsing strings as needed).
func (p PropValue) Num() float64 {
	if p.IsNum {
		return float64(p.N)
	}
	f, _ := strconv.ParseFloat(p.S, 64)
	return f
}

// key returns a canonical hash key (case-insensitive for strings).
func (p PropValue) key() string {
	if p.IsNum {
		return "n" + strconv.FormatInt(p.N, 10)
	}
	return "s" + strings.ToLower(p.S)
}

// NodeID and EdgeID are handles into the graph's stores.
type NodeID int32

// EdgeID is a handle to an edge.
type EdgeID int32

// propEntry is one record in a property chain. Properties are stored as
// a chain searched linearly by key — the access pattern of Neo4j's
// property store, where every read walks the record chain comparing key
// tokens.
type propEntry struct {
	key string
	val PropValue
}

// propChain is an ordered property list with linear-scan lookup.
type propChain []propEntry

// Prop reads one property by key.
func (c propChain) Prop(name string) (PropValue, bool) {
	for i := range c {
		if c[i].key == name {
			return c[i].val, true
		}
	}
	return PropValue{}, false
}

// chainFromMap builds a deterministic chain (sorted keys) from a map.
func chainFromMap(props map[string]PropValue) propChain {
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	chain := make(propChain, 0, len(keys))
	for _, k := range keys {
		chain = append(chain, propEntry{key: k, val: props[k]})
	}
	return chain
}

// Node is one graph node.
type Node struct {
	ID    NodeID
	Label string
	props propChain
	out   []EdgeID
	in    []EdgeID
}

// Prop reads a node property (chain walk).
func (n *Node) Prop(name string) (PropValue, bool) { return n.props.Prop(name) }

// Edge is one directed, typed edge.
type Edge struct {
	ID    EdgeID
	Type  string // operation name
	From  NodeID
	To    NodeID
	props propChain
}

// Prop reads an edge property (chain walk).
func (e *Edge) Prop(name string) (PropValue, bool) { return e.props.Prop(name) }

// Graph is the property-graph store.
type Graph struct {
	nodes []Node
	edges []Edge

	labelIdx map[string][]NodeID
	// exact property index per (label, prop): value key → node IDs; used
	// for start-node selection like Neo4j schema indexes
	propIdx map[string]map[string][]NodeID
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		labelIdx: map[string][]NodeID{},
		propIdx:  map[string]map[string][]NodeID{},
	}
}

// AddNode inserts a node and returns its ID.
func (g *Graph) AddNode(label string, props map[string]PropValue) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Label: label, props: chainFromMap(props)})
	g.labelIdx[label] = append(g.labelIdx[label], id)
	return id
}

// AddEdge inserts a directed edge and returns its ID.
func (g *Graph) AddEdge(from, to NodeID, typ string, props map[string]PropValue) EdgeID {
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, Type: typ, From: from, To: to, props: chainFromMap(props)})
	g.nodes[from].out = append(g.nodes[from].out, id)
	g.nodes[to].in = append(g.nodes[to].in, id)
	return id
}

// CreateIndex builds an exact-value index on (label, prop) for start-node
// selection.
func (g *Graph) CreateIndex(label, prop string) {
	key := label + "\x00" + prop
	idx := map[string][]NodeID{}
	for _, id := range g.labelIdx[label] {
		if v, ok := g.nodes[id].Prop(prop); ok {
			idx[v.key()] = append(idx[v.key()], id)
		}
	}
	g.propIdx[key] = idx
}

// Node returns a node by ID.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Edge returns an edge by ID.
func (g *Graph) Edge(id EdgeID) *Edge { return &g.edges[id] }

// NumNodes and NumEdges report store sizes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NodesByLabel returns the node IDs with the given label.
func (g *Graph) NodesByLabel(label string) []NodeID { return g.labelIdx[label] }

// lookupProp consults the exact-property index; ok is false when no index
// exists for (label, prop).
func (g *Graph) lookupProp(label, prop string, v PropValue) ([]NodeID, bool) {
	idx, ok := g.propIdx[label+"\x00"+prop]
	if !ok {
		return nil, false
	}
	return idx[v.key()], true
}

// Labels returns the labels present, sorted (for diagnostics).
func (g *Graph) Labels() []string {
	out := make([]string, 0, len(g.labelIdx))
	for l := range g.labelIdx {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
