package graphdb

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"github.com/aiql/aiql/internal/like"
)

// CmpOp is a predicate comparison operator.
type CmpOp int

// Comparison operators for property predicates.
const (
	CmpEQ CmpOp = iota
	CmpNEQ
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	CmpLike
)

// PropPred filters a node or edge by one property. String pattern and
// equality predicates are evaluated with compiled regular expressions,
// matching how the Cypher translation runs: Cypher has no LIKE and no
// case-insensitive '=', so both become '=~' regex filters paying general
// regex-engine cost per row (see the ToCypher output).
type PropPred struct {
	Prop string
	Op   CmpOp
	Val  PropValue
	re   *regexp.Regexp
}

func (p *PropPred) regex() *regexp.Regexp {
	if p.re == nil {
		p.re = regexp.MustCompile(like.ToRegexp(p.Val.S))
	}
	return p.re
}

func (p *PropPred) eval(v PropValue, ok bool) bool {
	if !ok {
		return false
	}
	switch p.Op {
	case CmpLike:
		return p.regex().MatchString(v.Text())
	case CmpEQ:
		if p.Val.IsNum || v.IsNum {
			return v.Num() == p.Val.Num()
		}
		return p.regex().MatchString(v.Text())
	case CmpNEQ:
		if p.Val.IsNum || v.IsNum {
			return v.Num() != p.Val.Num()
		}
		return !p.regex().MatchString(v.Text())
	case CmpLT:
		return v.Num() < p.Val.Num()
	case CmpLE:
		return v.Num() <= p.Val.Num()
	case CmpGT:
		return v.Num() > p.Val.Num()
	case CmpGE:
		return v.Num() >= p.Val.Num()
	}
	return false
}

// NodePattern matches one pattern node.
type NodePattern struct {
	Var   string
	Label string
	Preds []PropPred
}

// EdgePattern matches one pattern edge between two pattern nodes.
type EdgePattern struct {
	Alias   string // edge variable (event alias)
	FromVar string
	ToVar   string
	Types   []string // operation names; empty = any
	Preds   []PropPred
}

// EdgeRel compares properties of two pattern edges, e.g. the temporal
// relation e1.start_ts < e2.start_ts. Offset shifts the right side:
// left.prop OP right.prop + Offset (used for `within` duration bounds).
type EdgeRel struct {
	LeftEdge  string
	LeftProp  string
	Op        CmpOp
	RightEdge string
	RightProp string
	Offset    int64
}

// ReturnItem projects a node or edge property.
type ReturnItem struct {
	Var    string // node or edge variable
	Prop   string
	IsEdge bool
	Label  string // output column label
}

// Pattern is a complete subgraph query.
type Pattern struct {
	Nodes    []NodePattern
	Edges    []EdgePattern
	Rels     []EdgeRel
	Return   []ReturnItem
	Distinct bool
}

// Result mirrors the other engines' result shape.
type Result struct {
	Columns []string
	Rows    [][]string
}

// Match executes the pattern with the match-then-join model of 2018-era
// Cypher runtimes, which the paper contrasts AIQL against ("Neo4j runs
// generally slower than PostgreSQL since it lacks support for efficient
// joins"): each relationship pattern is matched independently — via a
// schema-index start when an exact equality predicate has one, else a
// full relationship scan with per-row property filtering — and the match
// sets are then nested-loop joined in syntactic order, enforcing shared
// node variables and cross-edge predicates. No statistics, no join
// reordering, no hash joins.
func (g *Graph) Match(p *Pattern) (*Result, error) {
	nodeByVar := map[string]*NodePattern{}
	for i := range p.Nodes {
		nodeByVar[p.Nodes[i].Var] = &p.Nodes[i]
	}
	for _, e := range p.Edges {
		if nodeByVar[e.FromVar] == nil || nodeByVar[e.ToVar] == nil {
			return nil, fmt.Errorf("graphdb: edge references undeclared node variable (%s)-->(%s)", e.FromVar, e.ToVar)
		}
	}
	res := &Result{}
	for _, r := range p.Return {
		res.Columns = append(res.Columns, r.Label)
	}

	// phase 1: independent match sets per edge pattern
	matchSets := make([][]EdgeID, len(p.Edges))
	for i := range p.Edges {
		matchSets[i] = g.matchEdgeSet(&p.Edges[i], nodeByVar)
	}

	// phase 2: nested-loop join in syntactic order
	type binding struct {
		nodes map[string]NodeID
		edges map[string]EdgeID
	}
	acc := []binding{{nodes: map[string]NodeID{}, edges: map[string]EdgeID{}}}
	for i := range p.Edges {
		ep := &p.Edges[i]
		var next []binding
		for _, b := range acc {
			for _, eid := range matchSets[i] {
				edge := g.Edge(eid)
				if nid, ok := b.nodes[ep.FromVar]; ok && nid != edge.From {
					continue
				}
				if nid, ok := b.nodes[ep.ToVar]; ok && nid != edge.To {
					continue
				}
				if !g.relsOK(p.Rels, b.edges, ep.Alias, eid) {
					continue
				}
				nb := binding{
					nodes: make(map[string]NodeID, len(b.nodes)+2),
					edges: make(map[string]EdgeID, len(b.edges)+1),
				}
				for k, v := range b.nodes {
					nb.nodes[k] = v
				}
				for k, v := range b.edges {
					nb.edges[k] = v
				}
				nb.nodes[ep.FromVar] = edge.From
				nb.nodes[ep.ToVar] = edge.To
				nb.edges[ep.Alias] = eid
				next = append(next, nb)
			}
		}
		acc = next
		if len(acc) == 0 {
			break
		}
	}

	// projection
	for _, b := range acc {
		row := make([]string, len(p.Return))
		for i, r := range p.Return {
			if r.IsEdge {
				eid, ok := b.edges[r.Var]
				if !ok {
					return nil, fmt.Errorf("graphdb: unbound edge variable %q in return", r.Var)
				}
				v, _ := g.Edge(eid).Prop(r.Prop)
				row[i] = v.Text()
			} else {
				nid, ok := b.nodes[r.Var]
				if !ok {
					return nil, fmt.Errorf("graphdb: unbound node variable %q in return", r.Var)
				}
				v, _ := g.Node(nid).Prop(r.Prop)
				row[i] = v.Text()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	if p.Distinct {
		res.Rows = dedupSorted(res.Rows)
	}
	return res, nil
}

// pipelineRow is the boxed execution context flowing between pipeline
// stages, allocated per emitted row as interpreted Cypher runtimes do.
type pipelineRow struct {
	edge *Edge
	from *Node
	to   *Node
}

// pipelineStage is one Filter operator in the interpreted pipeline.
type pipelineStage interface {
	pass(r *pipelineRow) bool
}

type typeStage struct{ types []string }

func (s *typeStage) pass(r *pipelineRow) bool {
	return len(s.types) == 0 || containsStr(s.types, r.edge.Type)
}

type edgePredStage struct{ pred *PropPred }

func (s *edgePredStage) pass(r *pipelineRow) bool {
	v, ok := r.edge.Prop(s.pred.Prop)
	return s.pred.eval(v, ok)
}

type nodePredStage struct {
	pred   *PropPred
	label  string
	onFrom bool
}

func (s *nodePredStage) pass(r *pipelineRow) bool {
	n := r.to
	if s.onFrom {
		n = r.from
	}
	if n.Label != s.label {
		return false
	}
	v, ok := n.Prop(s.pred.Prop)
	return s.pred.eval(v, ok)
}

type labelStage struct {
	label  string
	onFrom bool
}

func (s *labelStage) pass(r *pipelineRow) bool {
	if s.onFrom {
		return r.from.Label == s.label
	}
	return r.to.Label == s.label
}

// buildPipeline compiles one relationship pattern into the Filter stages
// that run after Expand: type filter, edge property filters, endpoint
// label checks, and endpoint property filters.
func buildPipeline(ep *EdgePattern, fromPat, toPat *NodePattern) []pipelineStage {
	stages := []pipelineStage{&typeStage{types: ep.Types}}
	for i := range ep.Preds {
		stages = append(stages, &edgePredStage{pred: &ep.Preds[i]})
	}
	stages = append(stages, &labelStage{label: fromPat.Label, onFrom: true})
	for i := range fromPat.Preds {
		stages = append(stages, &nodePredStage{pred: &fromPat.Preds[i], label: fromPat.Label, onFrom: true})
	}
	stages = append(stages, &labelStage{label: toPat.Label})
	for i := range toPat.Preds {
		stages = append(stages, &nodePredStage{pred: &toPat.Preds[i], label: toPat.Label})
	}
	return stages
}

// matchEdgeSet enumerates the edges satisfying one relationship pattern
// in isolation, running the interpreted Expand→Filter pipeline: every
// visited relationship materializes a boxed row context that flows
// through the stage chain (virtual dispatch per stage), the execution
// model of 2018-era Cypher runtimes. When an endpoint has a numeric
// equality predicate backed by a schema index the Expand starts from the
// indexed nodes; otherwise it is NodeByLabelScan + ExpandAll.
func (g *Graph) matchEdgeSet(ep *EdgePattern, nodeByVar map[string]*NodePattern) []EdgeID {
	fromPat := nodeByVar[ep.FromVar]
	toPat := nodeByVar[ep.ToVar]
	stages := buildPipeline(ep, fromPat, toPat)

	check := func(eid EdgeID) bool {
		edge := g.Edge(eid)
		r := &pipelineRow{edge: edge, from: g.Node(edge.From), to: g.Node(edge.To)}
		for _, s := range stages {
			if !s.pass(r) {
				return false
			}
		}
		return true
	}

	// schema-index start: exact equality predicate on an indexed property
	if ids, ok := g.indexStart(fromPat); ok {
		var out []EdgeID
		for _, nid := range ids {
			for _, eid := range g.Node(nid).out {
				if check(eid) {
					out = append(out, eid)
				}
			}
		}
		return out
	}
	if ids, ok := g.indexStart(toPat); ok {
		var out []EdgeID
		for _, nid := range ids {
			for _, eid := range g.Node(nid).in {
				if check(eid) {
					out = append(out, eid)
				}
			}
		}
		return out
	}

	// No applicable index: NodeByLabelScan + ExpandAll, the Cypher plan
	// for unindexed starts — visit every candidate source node and walk
	// its adjacency, touching relationship records in store order rather
	// than sequentially.
	var out []EdgeID
	for _, nid := range g.labelIdx[fromPat.Label] {
		for _, eid := range g.nodes[nid].out {
			if check(eid) {
				out = append(out, eid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// indexStart returns the candidate nodes for a pattern via the schema
// index, when an exact equality predicate has one. String equality in
// this domain is case-insensitive (names from mixed OS fleets), which a
// Neo4j schema index cannot serve — 3.x-era Neo4j has no functional
// (toLower) indexes — so only numeric equality predicates are indexable;
// string filters fall back to the label scan. (The relational baseline
// keeps its lower()-style functional hash index: PostgreSQL supports
// expression indexes.)
func (g *Graph) indexStart(np *NodePattern) ([]NodeID, bool) {
	for i := range np.Preds {
		if np.Preds[i].Op != CmpEQ || !np.Preds[i].Val.IsNum {
			continue
		}
		if ids, ok := g.lookupProp(np.Label, np.Preds[i].Prop, np.Preds[i].Val); ok {
			return ids, true
		}
	}
	return nil, false
}

// relsOK checks the cross-edge predicates that become decidable once the
// new edge is bound.
func (g *Graph) relsOK(rels []EdgeRel, bound map[string]EdgeID, alias string, eid EdgeID) bool {
	for _, r := range rels {
		var leftID, rightID EdgeID
		var ok bool
		switch {
		case r.LeftEdge == alias:
			leftID = eid
			rightID, ok = bound[r.RightEdge]
		case r.RightEdge == alias:
			rightID = eid
			leftID, ok = bound[r.LeftEdge]
		default:
			continue
		}
		if !ok {
			continue
		}
		lv, lok := g.Edge(leftID).Prop(r.LeftProp)
		rv, rok := g.Edge(rightID).Prop(r.RightProp)
		if !lok || !rok {
			return false
		}
		if r.Offset != 0 {
			rv = NumProp(rv.N + r.Offset)
		}
		pred := PropPred{Prop: r.LeftProp, Op: r.Op, Val: rv}
		if !pred.eval(lv, true) {
			return false
		}
	}
	return true
}

func dedupSorted(rows [][]string) [][]string {
	out := rows[:0]
	var prev string
	for i, r := range rows {
		k := strings.Join(r, "\t")
		if i == 0 || k != prev {
			out = append(out, r)
		}
		prev = k
	}
	return out
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
