package eventstore

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/aiql/aiql/internal/like"
	"github.com/aiql/aiql/internal/sysmon"
)

// buildBatchStore commits a randomized event mix — several agents,
// ops across every family, varied amounts — leaving part of it sealed
// (key-column batch path) and part in memtables (struct batch path).
func buildBatchStore(t *testing.T, sealed, unsealed int) *Store {
	t.Helper()
	s := New(DefaultOptions())
	rng := rand.New(rand.NewSource(11))
	exes := []string{"bash", "vim", "curl", "python", "sshd"}
	ops := []sysmon.Operation{
		sysmon.OpStart, sysmon.OpRead, sysmon.OpWrite, sysmon.OpDelete,
		sysmon.OpConnect, sysmon.OpSend,
	}
	add := func(n int) {
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			r := mkRecord(uint32(1+rng.Intn(4)), exes[rng.Intn(len(exes))],
				ops[rng.Intn(len(ops))], "obj.txt", rng.Intn(600))
			r.Amount = uint64(rng.Intn(200))
			recs = append(recs, r)
		}
		s.AppendAll(recs)
	}
	add(sealed)
	s.Flush()
	add(unsealed)
	return s
}

// TestCollectBatchMatchesScan cross-checks the bitmap batch collector
// — dense masked-compare over the packed key column, residual sparse
// probes, posting-list path, memtable kernels — against the
// row-at-a-time Scan reference for every filter shape. Any divergence
// in membership or order is a correctness bug in the vectorized path.
func TestCollectBatchMatchesScan(t *testing.T) {
	s := buildBatchStore(t, 3000, 500)
	from := base.Add(100 * time.Minute).UnixNano()
	to := base.Add(400 * time.Minute).UnixNano()
	bash := s.Dict().MatchEntities(sysmon.EntityProcess, "exe_name", like.Compile("bash"))

	filters := []*EventFilter{
		{},
		{Agents: []uint32{2}},    // single agent: folded into the dense mask
		{Agents: []uint32{1, 3}}, // agent set: residual sparse probe
		{Ops: []sysmon.Operation{sysmon.OpDelete}},               // single op: dense mask
		{Ops: []sysmon.Operation{sysmon.OpRead, sysmon.OpWrite}}, // op set: sparse probe
		{ObjType: sysmon.EntityFile},
		{MinAmount: 120},
		{From: from, To: to},
		{Agents: []uint32{2}, Ops: []sysmon.Operation{sysmon.OpWrite}, ObjType: sysmon.EntityFile},
		{Agents: []uint32{1, 4}, Ops: []sysmon.Operation{sysmon.OpSend, sysmon.OpConnect}, MinAmount: 40, From: from},
		{Subjects: bash}, // posting-list path on indexed segments
		{Subjects: bash, From: from, To: to},
		{Objects: NewIDSet()}, // empty set: must match nothing
	}
	keeps := []func(*sysmon.Event) bool{
		nil,
		func(ev *sysmon.Event) bool { return ev.Amount%2 == 0 },
	}

	for fi, f := range filters {
		for ki, keep := range keeps {
			units := s.Snapshot().Units(f)
			cf := f.Compile()
			var got, want []uint64
			var visited int64
			for i := range units {
				batch, v, complete := units[i].CollectBatch(context.Background(), cf, keep)
				if !complete {
					t.Fatalf("filter %d keep %d: batch collect incomplete without cancellation", fi, ki)
				}
				visited += v
				for j := range batch {
					got = append(got, batch[j].ID)
				}
				units[i].Scan(f, func(ev *sysmon.Event) bool {
					if keep == nil || keep(ev) {
						want = append(want, ev.ID)
					}
					return true
				})
			}
			if len(got) != len(want) {
				t.Fatalf("filter %d keep %d: batch path found %d events, scan found %d", fi, ki, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("filter %d keep %d: event %d differs: batch %d, scan %d", fi, ki, j, got[j], want[j])
				}
			}
			if visited < int64(len(want)) {
				t.Errorf("filter %d keep %d: visited %d < matched %d", fi, ki, visited, len(want))
			}
		}
	}
}

// TestCollectBatchIntoReusesBuffer verifies the scratch-reuse contract:
// the returned batch aliases the passed-in buffer when capacity
// suffices, so a sequential walk can recycle one allocation across
// every unit.
func TestCollectBatchIntoReusesBuffer(t *testing.T) {
	s := buildBatchStore(t, 2000, 0)
	f := &EventFilter{Ops: []sysmon.Operation{sysmon.OpDelete}}
	cf := f.Compile()
	units := s.Snapshot().Units(f)
	if len(units) == 0 {
		t.Fatal("no scan units")
	}
	buf := make([]sysmon.Event, 0, 4096)
	for i := range units {
		batch, _, complete := units[i].CollectBatchInto(context.Background(), cf, nil, buf[:0])
		if !complete {
			t.Fatal("unexpected incomplete collect")
		}
		if len(batch) > 0 && cap(batch) <= cap(buf) && &batch[:1][0] != &buf[:1][0] {
			t.Fatalf("unit %d: batch did not reuse the scratch buffer", i)
		}
	}
}

// TestPostingEstimateClampsToTimeSlice pins the estimator fix: a
// narrow time window over an entity with postings spread across the
// whole segment must be charged only for the postings inside the
// window, not the full posting-list length — otherwise the planner
// ranks a cheap windowed pattern as expensive as an unbounded one.
func TestPostingEstimateClampsToTimeSlice(t *testing.T) {
	s := New(DefaultOptions())
	// One agent, one subject, 400 events at one-minute spacing: the
	// subject's posting list in the sealed segment covers everything.
	recs := make([]Record, 0, 400)
	for i := 0; i < 400; i++ {
		recs = append(recs, mkRecord(1, "bash", sysmon.OpWrite, "out.log", i))
	}
	s.AppendAll(recs)
	s.Flush()

	bash := s.Dict().MatchEntities(sysmon.EntityProcess, "exe_name", like.Compile("bash"))
	if bash.Len() != 1 {
		t.Fatalf("expected one interned bash process, got %d", bash.Len())
	}
	from := base.Add(100 * time.Minute).UnixNano()
	to := base.Add(110 * time.Minute).UnixNano()
	f := &EventFilter{Subjects: bash, From: from, To: to}

	actual := 0
	s.Scan(context.Background(), f, func(*sysmon.Event) bool { actual++; return true })
	if actual != 10 {
		t.Fatalf("windowed scan matched %d events, want 10", actual)
	}
	est := s.EstimateMatches(f)
	if est < actual {
		t.Fatalf("estimate %d undercounts actual %d", est, actual)
	}
	// Clamped to the window the bound is exact; pre-fix it was 400.
	if est > 2*actual {
		t.Errorf("estimate %d not clamped to the time slice (actual %d)", est, actual)
	}
}
