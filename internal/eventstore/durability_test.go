package eventstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aiql/aiql/internal/durable"
	"github.com/aiql/aiql/internal/sysmon"
)

// durableOpts returns small-segment durable options rooted at dir.
func durableOpts(dir string) Options {
	opts := DefaultOptions()
	opts.Dir = dir
	opts.SyncWAL = true
	opts.BatchCommit = false // every Append commits (and is acknowledged)
	opts.SegmentEvents = 8
	return opts
}

// fill appends n distinct-ish records across two agents.
func fill(s *Store, n, from int) {
	for i := from; i < from+n; i++ {
		agent := uint32(1 + i%2)
		s.Append(mkRecord(agent, fmt.Sprintf("exe%d", i%5), sysmon.OpWrite, fmt.Sprintf("f%d.txt", i%7), i))
	}
}

// crash abandons a durable store without Close, as a killed process
// would: the WAL handle stays unfsynced-but-written and only the
// directory flock — which the OS releases with a dead process — is
// dropped so the reopening "process" can take over.
func crash(s *Store) { s.dur.lock.Release() }

// collectAll returns every event, sorted by ID for comparison.
func collectAll(s *Store) []sysmon.Event {
	evs := s.Collect(&EventFilter{})
	sort.Slice(evs, func(i, j int) bool { return evs[i].ID < evs[j].ID })
	return evs
}

// eventStrings renders events with entity attributes resolved, so
// stores with different internal entity numbering can be compared.
func eventStrings(s *Store) []string {
	dict := s.Dict()
	var out []string
	for _, ev := range collectAll(s) {
		out = append(out, fmt.Sprintf("%d|%d|%s|%s|%s|%s|%d|%d",
			ev.ID, ev.AgentID,
			dict.Attr(sysmon.EntityProcess, ev.Subject, "exename"),
			ev.Op, ev.ObjType,
			dict.Attr(ev.ObjType, ev.Object, "name"),
			ev.StartTS, ev.Amount))
	}
	return out
}

func TestDurableOpenAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 30, 0) // 30 events, seal threshold 8 → sealed segments + tails
	want := eventStrings(s)
	wantLen := s.Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != wantLen {
		t.Fatalf("reopened store has %d events, want %d", s2.Len(), wantLen)
	}
	if got := eventStrings(s2); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened events differ:\n got %v\nwant %v", got[:3], want[:3])
	}
	// appends must continue with fresh IDs, not collide with recovered ones
	fill(s2, 5, 100)
	if s2.Len() != wantLen+5 {
		t.Fatalf("after post-recovery appends: %d events, want %d", s2.Len(), wantLen+5)
	}
	seen := map[uint64]bool{}
	for _, ev := range collectAll(s2) {
		if seen[ev.ID] {
			t.Fatalf("duplicate event ID %d after recovery", ev.ID)
		}
		seen[ev.ID] = true
	}
}

// The acceptance scenario: kill after appends past the last seal. The
// first store is never closed (the "crash"); reopening must recover all
// acknowledged events from MANIFEST + WAL.
func TestCrashRecoveryPastLastSeal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 20, 0) // seals at 8 → sealed segments exist
	fill(s, 5, 50) // unsealed tail, covered only by the WAL
	want := eventStrings(s)
	crash(s) // no Close: the WAL handle is simply abandoned

	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := eventStrings(s2); !reflect.DeepEqual(got, want) {
		t.Fatalf("crash recovery lost events: got %d, want %d", len(got), len(want))
	}
}

// A torn final WAL record — the disk image a crash mid-append leaves —
// must not poison recovery: every record before the tear is recovered.
func TestCrashRecoveryTornWALRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 12, 0)
	all := eventStrings(s)
	total := s.Len()
	crash(s)

	// tear the last record: chop a few bytes off the WAL
	walPath := filepath.Join(dir, durable.WALName)
	buf, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 {
		t.Fatal("expected a non-empty WAL (unsealed tail)")
	}
	if err := os.WriteFile(walPath, buf[:len(buf)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != total-1 {
		t.Fatalf("recovered %d events, want %d (all but the torn record)", s2.Len(), total-1)
	}
	if got := eventStrings(s2); !reflect.DeepEqual(got, all[:len(all)-1]) {
		t.Fatal("surviving events differ from the pre-tear prefix")
	}
}

// A segment file that never made it into a manifest edition (crash
// between seal and manifest write) is an orphan: recovery must ignore
// and delete it, and recover its events from the WAL instead.
func TestRecoveryRemovesOrphanSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 10, 0)
	want := eventStrings(s)
	crash(s)

	orphan := filepath.Join(dir, durable.SegmentFileName(999))
	if _, err := durable.WriteSegmentFile(orphan, &durable.SegmentData{ID: 999}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan segment file survived recovery")
	}
	if got := eventStrings(s2); !reflect.DeepEqual(got, want) {
		t.Fatal("events differ after orphan cleanup")
	}
}

// Once a flush seals everything and the manifest edition covers it,
// the WAL must be empty: reopening performs zero replay.
func TestWALTruncatedWhenFullySealed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(s, 20, 0)
	if st := s.DurableStats(); st.WALBytes == 0 {
		t.Fatal("expected WAL to cover the unsealed tail before the flush")
	}
	s.Flush()
	st := s.DurableStats()
	if st.WALBytes != 0 || st.WALRecords != 0 {
		t.Fatalf("WAL not truncated after full seal: %d bytes, %d records", st.WALBytes, st.WALRecords)
	}
	if st.SegmentFiles == 0 || st.ManifestEdition == 0 {
		t.Fatalf("expected segment files and a manifest edition, got %+v", st)
	}
	if st.LastError != "" {
		t.Fatalf("durable error: %s", st.LastError)
	}
}

// The directory is single-writer: a second Open while the first store
// still holds the flock must be rejected, and Close must release the
// lock so a successor can take over.
func TestOpenEnforcesSingleWriter(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 5, 0)
	if _, err := Open(durableOpts(dir)); err == nil || !strings.Contains(err.Error(), "already open") {
		t.Fatalf("second Open on a live directory: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

func TestOpenRejectsMismatchedLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 10, 0)
	s.Flush()
	s.Close()

	opts := durableOpts(dir)
	opts.Partitioning = false
	if _, err := Open(opts); err == nil || !strings.Contains(err.Error(), "manifest layout") {
		t.Fatalf("mismatched partitioning accepted: %v", err)
	}
	opts = durableOpts(dir)
	opts.ChunkDuration = 2 * time.Hour
	if _, err := Open(opts); err == nil {
		t.Fatal("mismatched chunk duration accepted")
	}
}

func TestSaveDirMigrateRoundTrip(t *testing.T) {
	// legacy path: an in-memory store saved as a gob snapshot
	mem := New(DefaultOptions())
	fill(mem, 40, 0)
	mem.Flush()
	gobPath := filepath.Join(t.TempDir(), "legacy.aiql")
	if err := mem.SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}
	want := eventStrings(mem)

	// migrate the gob snapshot into a durable directory
	dir := filepath.Join(t.TempDir(), "store")
	opts := DefaultOptions()
	if err := MigrateGobToDir(gobPath, dir, opts); err != nil {
		t.Fatal(err)
	}
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := eventStrings(s); !reflect.DeepEqual(got, want) {
		t.Fatalf("migrated store differs: %d vs %d events", len(got), len(want))
	}
	if st := s.DurableStats(); st.WALBytes != 0 || st.SegmentFiles == 0 {
		t.Fatalf("migrated directory: %+v", st)
	}
	// migrating onto an existing durable directory must refuse
	if err := MigrateGobToDir(gobPath, dir, DefaultOptions()); err == nil {
		t.Fatal("migration overwrote an existing durable store")
	}
}

// sealMany builds a store with many deliberately tiny segments.
func sealMany(t *testing.T, opts Options, batches, perBatch int) *Store {
	t.Helper()
	var s *Store
	var err error
	if opts.Dir != "" {
		s, err = Open(opts)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		s = New(opts)
	}
	for b := 0; b < batches; b++ {
		fill(s, perBatch, b*perBatch)
		s.Flush() // every flush seals → tiny segments pile up
	}
	return s
}

func TestCompactionReducesSegmentsWithoutChangingResults(t *testing.T) {
	for _, durableStore := range []bool{false, true} {
		name := map[bool]string{false: "memory", true: "durable"}[durableStore]
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.BatchCommit = false
			opts.CompactFanIn = 8
			opts.CompactTargetEvents = 64
			if durableStore {
				opts.Dir = t.TempDir()
			}
			s := sealMany(t, opts, 16, 4) // 64 events in ≥16 tiny segments
			defer s.Close()

			before := s.NumSegments()
			if before < 16 {
				t.Fatalf("setup produced only %d segments", before)
			}
			wantEvents := eventStrings(s)
			filter := &EventFilter{Ops: []sysmon.Operation{sysmon.OpWrite}}
			wantMatches := len(s.Collect(filter))

			res := s.Compact()
			if res.Passes == 0 || res.SegmentsRetired == 0 {
				t.Fatalf("compaction did nothing: %+v", res)
			}
			after := s.NumSegments()
			if after >= before {
				t.Fatalf("segments %d → %d, expected a reduction", before, after)
			}
			// 64 events with a 64-event target: each chunk compacts to
			// its minimal chain (fan-in bounded), far below the input
			if after > before/2 {
				t.Fatalf("segments %d → %d, expected at least a 2x reduction", before, after)
			}
			if got := eventStrings(s); !reflect.DeepEqual(got, wantEvents) {
				t.Fatal("compaction changed the event set")
			}
			if got := len(s.Collect(filter)); got != wantMatches {
				t.Fatalf("filtered scan after compaction: %d matches, want %d", got, wantMatches)
			}
			if st := s.DurableStats(); st.Compactions == 0 || st.SegmentsCompacted == 0 {
				t.Fatalf("compaction counters not bumped: %+v", st)
			}

			if durableStore {
				// the new manifest edition must reflect the merged set;
				// reopening sees the compacted layout and the same data
				st := s.DurableStats()
				if st.SegmentFiles != after {
					t.Fatalf("%d segment files on disk, %d segments in memory", st.SegmentFiles, after)
				}
				s.Close()
				s2, err := Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				defer s2.Close()
				if s2.NumSegments() != after {
					t.Fatalf("reopened store has %d segments, want %d", s2.NumSegments(), after)
				}
				if got := eventStrings(s2); !reflect.DeepEqual(got, wantEvents) {
					t.Fatal("reopened compacted store lost events")
				}
			}
		})
	}
}

// Snapshots pinned before a compaction keep scanning the retired chain;
// the compactor must never mutate it. Run with -race.
func TestCompactionConcurrentWithScans(t *testing.T) {
	opts := DefaultOptions()
	opts.BatchCommit = false
	opts.CompactTargetEvents = 128
	s := sealMany(t, opts, 32, 4)
	defer s.Close()
	want := len(s.Collect(&EventFilter{}))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				s.Scan(context.Background(), &EventFilter{}, func(*sysmon.Event) bool { n++; return true })
				if n < want {
					panic(fmt.Sprintf("scan during compaction saw %d events, want >= %d", n, want))
				}
			}
		}()
	}
	var retired []uint64
	var retiredMu sync.Mutex
	s.OnSegmentRetire(func(ids []uint64) {
		retiredMu.Lock()
		retired = append(retired, ids...)
		retiredMu.Unlock()
	})
	s.Compact()
	close(stop)
	wg.Wait()
	retiredMu.Lock()
	defer retiredMu.Unlock()
	if len(retired) == 0 {
		t.Fatal("no retirement notifications delivered")
	}
}

// The background compactor drains tiny segments on its own.
func TestBackgroundCompactor(t *testing.T) {
	opts := DefaultOptions()
	opts.BatchCommit = false
	opts.CompactTargetEvents = 256
	s := sealMany(t, opts, 16, 4)
	before := s.NumSegments()
	s.StartCompactor(time.Millisecond)
	defer s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.NumSegments() >= before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := s.NumSegments(); after >= before {
		t.Fatalf("background compactor made no progress: %d → %d", before, after)
	}
	s.StopCompactor()
	s.StopCompactor() // idempotent
}

// Encode must not hold the store lock for the duration of the gob
// encode: a writer appending concurrently must not deadlock or race,
// and the snapshot must be a consistent committed prefix. Run with -race.
func TestEncodeConcurrentWithAppends(t *testing.T) {
	s := New(DefaultOptions())
	fill(s, 64, 0)
	s.Flush()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fill(s, 256, 1000)
	}()
	for i := 0; i < 10; i++ {
		var sink countingWriter
		if err := s.Encode(&sink); err != nil {
			t.Error(err)
		}
		if sink.n == 0 {
			t.Error("empty encode")
		}
	}
	wg.Wait()
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

// A bulk AppendAll under SyncWAL must group-commit: the batch spans
// many internal commits (BatchSize boundaries plus the tail), but the
// whole call costs exactly one WAL fsync. Before the fix every commit
// fsynced individually, cratering bulk-ingest throughput.
func TestAppendAllGroupCommitSingleSync(t *testing.T) {
	opts := durableOpts(t.TempDir())
	opts.BatchCommit = true
	opts.BatchSize = 8 // 100 records → 13 internal commits
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = mkRecord(uint32(1+i%2), fmt.Sprintf("exe%d", i%5), sysmon.OpWrite, fmt.Sprintf("f%d.txt", i%7), i)
	}
	before := s.dur.wal.Syncs()
	if err := s.AppendAll(recs); err != nil {
		t.Fatal(err)
	}
	if got := s.dur.wal.Syncs() - before; got != 1 {
		t.Fatalf("AppendAll of %d records issued %d WAL fsyncs, want exactly 1 (group commit)", len(recs), got)
	}
	// The batch must be fully committed (visible) at return, not parked
	// in the append buffer waiting for a BatchSize boundary.
	if s.Len() != len(recs) {
		t.Fatalf("after AppendAll: Len=%d, want %d (tail must commit)", s.Len(), len(recs))
	}
	if st := s.DurableStats(); st.WALSyncs == 0 {
		t.Fatalf("DurableStats.WALSyncs = 0, want > 0")
	}

	// Single-record Append keeps per-commit acknowledged durability:
	// each call fsyncs once.
	before = s.dur.wal.Syncs()
	if err := s.Append(mkRecord(1, "solo", sysmon.OpWrite, "solo.txt", 500)); err != nil {
		t.Fatal(err)
	}
	// BatchCommit buffers until BatchSize; force the commit so the sync
	// accounting is observable.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.dur.wal.Syncs() - before; got != 1 {
		t.Fatalf("Append+Flush of one record issued %d WAL fsyncs, want 1", got)
	}
}

// Writes against a closed store must fail with the typed ErrClosed —
// reachable when an HTTP ingest races a catalog hot-swap — and must not
// touch the closed WAL.
func TestAppendAfterCloseReturnsErrClosed(t *testing.T) {
	s, err := Open(durableOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 10, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mkRecord(1, "late", sysmon.OpWrite, "late.txt", 0)
	if err := s.Append(r); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: err=%v, want ErrClosed", err)
	}
	if err := s.AppendAll([]Record{r, r}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AppendAll after Close: err=%v, want ErrClosed", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: err=%v, want ErrClosed", err)
	}
	// The in-memory state stays readable.
	if s.Len() != 10 {
		t.Fatalf("Len after Close = %d, want 10", s.Len())
	}
}

// Concurrent appenders racing Close must each either succeed fully
// (their events are durable and visible) or fail with ErrClosed —
// never crash into the closed WAL. Run with -race.
func TestAppendRacesClose(t *testing.T) {
	s, err := Open(durableOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				r := mkRecord(uint32(1+g), fmt.Sprintf("exe%d", i), sysmon.OpWrite, "f.txt", i)
				if err := s.AppendAll([]Record{r}); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("AppendAll: %v", err)
					}
					return
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
