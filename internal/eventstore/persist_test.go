package eventstore

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"github.com/aiql/aiql/internal/sysmon"
)

// encodeSnapshot serializes a small valid store image for corruption.
func encodeSnapshot(t *testing.T) []byte {
	t.Helper()
	s := New(DefaultOptions())
	fill(s, 24, 0)
	s.Flush()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Decode must return a descriptive error — never panic, never succeed
// silently — for byte streams clipped at every region of the snapshot.
func TestDecodeTruncatedSnapshots(t *testing.T) {
	full := encodeSnapshot(t)
	cuts := []struct {
		name string
		n    int
	}{
		{"empty", 0},
		{"three bytes", 3},
		{"mid type section", 40},
		{"mid header", len(full) / 8},
		{"mid tables", len(full) / 3},
		{"mid events", len(full) / 2},
		{"most of stream", len(full) * 9 / 10},
		{"last byte gone", len(full) - 1},
	}
	for _, tc := range cuts {
		t.Run(tc.name, func(t *testing.T) {
			s := New(DefaultOptions())
			err := s.Decode(bytes.NewReader(full[:tc.n]))
			if err == nil {
				t.Fatalf("clipped at %d of %d bytes: Decode succeeded", tc.n, len(full))
			}
			if !strings.Contains(err.Error(), "eventstore:") {
				t.Fatalf("error lacks context: %v", err)
			}
			if s.Len() != 0 {
				t.Fatalf("failed decode left %d events in the store", s.Len())
			}
		})
	}
}

func TestDecodeGarbageInput(t *testing.T) {
	for _, junk := range [][]byte{
		[]byte("not a snapshot at all"),
		bytes.Repeat([]byte{0xff}, 512),
		bytes.Repeat([]byte{0x00}, 512),
	} {
		s := New(DefaultOptions())
		if err := s.Decode(bytes.NewReader(junk)); err == nil {
			t.Fatalf("garbage input %x... accepted", junk[:8])
		}
	}
}

// A structurally valid gob stream whose events reference entities
// beyond the decoded tables must be rejected with a bounds error, not
// ingested with dangling references.
func TestDecodeRejectsDanglingEntityRefs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*diskSnapshot)
	}{
		{"subject out of range", func(d *diskSnapshot) { d.Events[0].Subject = sysmon.EntityID(len(d.Procs) + 10) }},
		{"object out of range", func(d *diskSnapshot) { d.Events[0].Object = sysmon.EntityID(1 << 20) }},
		{"bad object type", func(d *diskSnapshot) { d.Events[0].ObjType = sysmon.EntityType(99) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var snap diskSnapshot
			if err := gob.NewDecoder(bytes.NewReader(encodeSnapshot(t))).Decode(&snap); err != nil {
				t.Fatal(err)
			}
			tc.mutate(&snap)
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
				t.Fatal(err)
			}
			s := New(DefaultOptions())
			err := s.Decode(&buf)
			if err == nil || !strings.Contains(err.Error(), "corrupt snapshot") {
				t.Fatalf("dangling reference accepted: %v", err)
			}
		})
	}
}

func TestDecodeVersionMismatch(t *testing.T) {
	var snap diskSnapshot
	if err := gob.NewDecoder(bytes.NewReader(encodeSnapshot(t))).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = 99
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	s := New(DefaultOptions())
	if err := s.Decode(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch accepted: %v", err)
	}
}
