package eventstore

import (
	"unsafe"

	"github.com/aiql/aiql/internal/sysmon"
)

// Stats summarizes a store's contents and footprint; the storage ablation
// experiment (E5) reports these numbers with each optimization toggled.
type Stats struct {
	Events     int
	Partitions int
	Processes  int
	Files      int
	Netconns   int
	// ApproxBytes is an estimate of in-memory footprint: event array plus
	// entity tables plus string payloads (index overhead excluded).
	ApproxBytes uint64
}

// SegmentStats describes the store's LSM layout: how much committed
// data sits in sealed (immutable, cache-reusable) segments versus
// active memtables.
type SegmentStats struct {
	Partitions     int    `json:"partitions"`
	Segments       int    `json:"segments"`
	SealedEvents   int    `json:"sealed_events"`
	SealedBytes    uint64 `json:"sealed_bytes"`
	MemtableEvents int    `json:"memtable_events"`
	MemtableBytes  uint64 `json:"memtable_bytes"`
}

// SegmentStats computes the store's segment-layout statistics.
func (s *Store) SegmentStats() SegmentStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := SegmentStats{Partitions: len(s.parts)}
	for _, key := range s.order {
		p := s.parts[key]
		st.Segments += len(p.segs)
		for _, g := range p.segs {
			st.SealedEvents += g.Len()
			st.SealedBytes += g.ApproxBytes()
		}
		st.MemtableEvents += len(p.mem.events)
		st.MemtableBytes += uint64(len(p.mem.events)) * uint64(unsafe.Sizeof(sysmon.Event{}))
	}
	return st
}

// StorageStats describes where sealed-segment bytes live: mapped (v2
// segment files served through mmap — resident only as the page cache
// decides), heap (eagerly decoded v1 segments, lazily materialized
// events, and cached decompressed blocks), and the block cache's
// hit/miss/eviction counters.
type StorageStats struct {
	MappedBytes int64           `json:"mapped_bytes"`
	HeapBytes   int64           `json:"heap_bytes"`
	BlockCache  BlockCacheStats `json:"block_cache"`
}

// StorageStats computes the store's storage-residency statistics.
func (s *Store) StorageStats() StorageStats {
	sn := s.Snapshot()
	var st StorageStats
	for i := range sn.parts {
		for _, g := range sn.parts[i].segs {
			if rd := g.reader(); rd != nil {
				st.MappedBytes += rd.MappedBytes()
			}
			st.HeapBytes += int64(g.ApproxBytes())
		}
	}
	st.BlockCache = s.blockCache.Stats()
	st.HeapBytes += st.BlockCache.Bytes
	return st
}

// BlockCacheStats reports the decompressed-block cache's counters
// without walking the snapshot — cheap enough for per-span deltas in
// the query tracer (StorageStats, by contrast, visits every segment).
func (s *Store) BlockCacheStats() BlockCacheStats {
	return s.blockCache.Stats()
}

// Stats computes summary statistics for the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Events:     s.total,
		Partitions: len(s.parts),
		Processes:  len(s.dict.procs),
		Files:      len(s.dict.files),
		Netconns:   len(s.dict.conns),
	}
	st.ApproxBytes = uint64(s.total) * uint64(unsafe.Sizeof(sysmon.Event{}))
	for i := range s.dict.procs {
		p := &s.dict.procs[i]
		st.ApproxBytes += uint64(unsafe.Sizeof(*p)) +
			uint64(len(p.ExeName)+len(p.Path)+len(p.User)+len(p.CmdLine))
	}
	for i := range s.dict.files {
		f := &s.dict.files[i]
		st.ApproxBytes += uint64(unsafe.Sizeof(*f)) + uint64(len(f.Path)+len(f.Owner))
	}
	for i := range s.dict.conns {
		c := &s.dict.conns[i]
		st.ApproxBytes += uint64(unsafe.Sizeof(*c)) +
			uint64(len(c.SrcIP)+len(c.DstIP)+len(c.Protocol))
	}
	return st
}
