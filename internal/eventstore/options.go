// Package eventstore implements the AIQL domain-specific data model and
// storage for system monitoring data.
//
// The store exploits the strong spatial and temporal properties of the
// data: every event occurs on one host (agent) at one time, so events are
// organized into hypertable-style chunks keyed by (agent, time bucket).
// Entities are deduplicated into a dictionary with attribute indexes, and
// per-chunk posting lists map entities to the events that reference them.
// These structures give the query engine both fast access paths and the
// statistics it needs to estimate the pruning power of event patterns.
//
// Every optimization the paper describes (deduplication, attribute
// indexes, time/space partitioning, batch commit) can be toggled through
// Options so the benchmark harness can ablate each one.
package eventstore

import "time"

// Options control which storage optimizations are active.
type Options struct {
	// Dedup enables entity deduplication (interning): identical entities
	// observed by different events share one dictionary entry. Interning
	// is also what gives entities identity across events — multievent
	// queries joining on shared entity variables require it; disabling it
	// is meant for storage/ingest ablations.
	Dedup bool
	// Indexes enables attribute indexes over the entity dictionary and
	// per-chunk entity→event posting lists.
	Indexes bool
	// Partitioning enables hypertable-style chunking by (agent, time
	// bucket). When disabled all events land in a single heap chunk.
	Partitioning bool
	// BatchCommit buffers appended events and commits them in batches,
	// amortizing sort and index maintenance.
	BatchCommit bool
	// ChunkDuration is the time width of a hypertable chunk.
	ChunkDuration time.Duration
	// BatchSize is the number of buffered events per batch commit.
	BatchSize int
	// SegmentEvents is the seal threshold: a chunk's memtable reaching
	// this many events at a commit boundary is sealed into an immutable
	// segment. Flush additionally seals every non-empty memtable
	// regardless of size. Smaller segments seal (and become cacheable)
	// sooner; larger ones amortize per-segment overhead.
	SegmentEvents int

	// Dir enables the durable storage subsystem: sealed segments are
	// written once as individual files under Dir, a MANIFEST records
	// the live segment set plus the dictionary tables, and a
	// write-ahead log covers committed-but-unsealed events. Open the
	// store with Open (New ignores Dir). Empty keeps the store purely
	// in-memory.
	Dir string
	// SyncWAL fsyncs the write-ahead log on every commit, making
	// acknowledged appends durable against power loss (not just
	// process crashes) at the cost of one fsync per commit batch.
	SyncWAL bool
	// CompactFanIn caps how many adjacent small segments one
	// compaction merges into a single segment. Default 8.
	CompactFanIn int
	// CompactTargetEvents is the compactor's target segment size:
	// chains of adjacent sealed segments smaller than the target are
	// merged until the merged segment would exceed it. Default
	// 4×SegmentEvents.
	CompactTargetEvents int
	// SegmentCompression selects the block codec for newly written v2
	// segment files: "lz4" (the default; fast byte-oriented LZ with
	// delta-coded ID columns) or "none" (every column raw, maximizing
	// the zero-copy mmap surface). Scan-critical columns (scan key,
	// start timestamp) are always stored raw regardless.
	SegmentCompression string
	// BlockCacheBytes bounds the cache of decompressed segment column
	// blocks shared by all segments of the store. 0 selects
	// DefaultBlockCacheBytes; negative disables the cache.
	BlockCacheBytes int64
}

// DefaultOptions returns the fully optimized configuration used by the
// AIQL system (all optimizations on, 1-hour chunks, 4096-event batches).
func DefaultOptions() Options {
	return Options{
		Dedup:         true,
		Indexes:       true,
		Partitioning:  true,
		BatchCommit:   true,
		ChunkDuration: time.Hour,
		BatchSize:     4096,
		SegmentEvents: 8192,
	}
}

// PlainOptions returns the unoptimized configuration: a single append-only
// heap with no dedup, no indexes, no partitioning, and per-event commits.
// This models the "w/o our optimized storage" baseline of the paper.
func PlainOptions() Options {
	return Options{ChunkDuration: time.Hour, BatchSize: 1}
}

func (o Options) normalized() Options {
	if o.ChunkDuration <= 0 {
		o.ChunkDuration = time.Hour
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.SegmentEvents <= 0 {
		o.SegmentEvents = 8192
	}
	if o.CompactFanIn <= 1 {
		o.CompactFanIn = 8
	}
	if o.CompactTargetEvents <= 0 {
		o.CompactTargetEvents = 4 * o.SegmentEvents
	}
	if o.SegmentCompression == "" {
		o.SegmentCompression = "lz4"
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = DefaultBlockCacheBytes
	}
	return o
}
