package eventstore

import (
	"sort"
	"sync"

	"github.com/aiql/aiql/internal/sysmon"
)

// PartKey identifies a hypertable chunk: one agent over one time bucket.
// With partitioning disabled all events live in the zero-key chunk.
type PartKey struct {
	AgentID uint32
	Bucket  int64 // StartTS / ChunkDuration
}

// Partition is one hypertable chunk. Events are kept sorted by start
// timestamp; with indexes enabled, posting lists map each entity to the
// positions of the events that reference it, and an operation histogram
// supports selectivity estimation.
//
// Locking: mutation always happens under the Store's write lock, and
// most readers hold the Store's read lock, but the parallel scan paths
// (ScanParallel, ScanPartitions) release the store lock before touching
// chunks so the streaming execution pipeline can emit rows while a
// writer commits to other chunks. The chunk's own RWMutex protects
// those unlocked readers; it is taken only at the entry points
// (appendBatch, scan, Events), never nested.
type Partition struct {
	mu     sync.RWMutex
	Key    PartKey
	events []sysmon.Event
	sorted bool

	indexed    bool
	postingSub map[sysmon.EntityID][]int32
	postingObj map[sysmon.EntityID][]int32
	opCount    [sysmon.NumOperations]int
	minTS      int64
	maxTS      int64
}

func newPartition(key PartKey, indexed bool) *Partition {
	p := &Partition{Key: key, indexed: indexed, sorted: true}
	if indexed {
		p.postingSub = make(map[sysmon.EntityID][]int32)
		p.postingObj = make(map[sysmon.EntityID][]int32)
	}
	return p
}

// Len returns the number of events in the chunk.
func (p *Partition) Len() int { return len(p.events) }

// TimeRange returns the minimum and maximum start timestamps in the chunk.
func (p *Partition) TimeRange() (int64, int64) { return p.minTS, p.maxTS }

// appendBatch adds events to the chunk, keeping sort order and indexes.
// Events within a batch are sorted once; cross-batch disorder triggers a
// full re-sort and re-index (rare: agents deliver data roughly in order).
func (p *Partition) appendBatch(evs []sysmon.Event) {
	if len(evs) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// agents deliver mostly in order; skip the sort when the batch
	// already is
	inOrder := true
	for i := 1; i < len(evs); i++ {
		if evs[i].StartTS < evs[i-1].StartTS {
			inOrder = false
			break
		}
	}
	if !inOrder {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].StartTS < evs[j].StartTS })
	}
	needResort := len(p.events) > 0 && evs[0].StartTS < p.events[len(p.events)-1].StartTS
	base := len(p.events)
	p.events = append(p.events, evs...)
	if len(p.events) > 0 {
		if base == 0 || evs[0].StartTS < p.minTS {
			p.minTS = p.events[0].StartTS
		}
		if last := evs[len(evs)-1].StartTS; base == 0 || last > p.maxTS {
			p.maxTS = last
		}
		if base == 0 {
			p.minTS = p.events[0].StartTS
		}
	}
	if needResort {
		sort.SliceStable(p.events, func(i, j int) bool { return p.events[i].StartTS < p.events[j].StartTS })
		p.rebuildIndexes()
		p.refreshBounds()
		return
	}
	if p.indexed {
		for i := base; i < len(p.events); i++ {
			ev := &p.events[i]
			p.postingSub[ev.Subject] = append(p.postingSub[ev.Subject], int32(i))
			p.postingObj[ev.Object] = append(p.postingObj[ev.Object], int32(i))
			p.opCount[ev.Op]++
		}
	}
	p.refreshBounds()
}

func (p *Partition) refreshBounds() {
	if len(p.events) == 0 {
		p.minTS, p.maxTS = 0, 0
		return
	}
	p.minTS = p.events[0].StartTS
	p.maxTS = p.events[len(p.events)-1].StartTS
}

func (p *Partition) rebuildIndexes() {
	if !p.indexed {
		return
	}
	p.postingSub = make(map[sysmon.EntityID][]int32, len(p.postingSub))
	p.postingObj = make(map[sysmon.EntityID][]int32, len(p.postingObj))
	p.opCount = [sysmon.NumOperations]int{}
	for i := range p.events {
		ev := &p.events[i]
		p.postingSub[ev.Subject] = append(p.postingSub[ev.Subject], int32(i))
		p.postingObj[ev.Object] = append(p.postingObj[ev.Object], int32(i))
		p.opCount[ev.Op]++
	}
}

// overlaps reports whether the chunk's time range intersects [from, to).
func (p *Partition) overlaps(from, to int64) bool {
	if len(p.events) == 0 {
		return false
	}
	if from != 0 && p.maxTS < from {
		return false
	}
	if to != 0 && p.minTS >= to {
		return false
	}
	return true
}

// scan calls fn for every event in the chunk that passes the filter, in
// start-timestamp order. It returns false if fn aborted the scan.
//
// When indexes are available the scan picks the cheapest access path:
// the shorter of the subject/object posting lists restricted by the
// filter's entity sets, falling back to a (time-bounded) sequential scan.
func (p *Partition) scan(f *EventFilter, ops *[sysmon.NumOperations]bool, agents map[uint32]struct{}, fn func(*sysmon.Event) bool) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.indexed {
		if list, ok := p.bestPostingList(f); ok {
			for _, pos := range list {
				ev := &p.events[pos]
				if f.matches(ev, ops, agents) {
					if !fn(ev) {
						return false
					}
				}
			}
			return true
		}
	}
	lo, hi := p.timeSlice(f.From, f.To)
	for i := lo; i < hi; i++ {
		ev := &p.events[i]
		if f.matches(ev, ops, agents) {
			if !fn(ev) {
				return false
			}
		}
	}
	return true
}

// bestPostingList merges the posting lists of the smaller bound entity set
// (subject or object) when the filter constrains one to a small set.
// The merged list preserves position order so scans stay time-ordered.
func (p *Partition) bestPostingList(f *EventFilter) ([]int32, bool) {
	const postingLimit = 512 // beyond this, sequential scan wins
	subLen, objLen := f.Subjects.Len(), f.Objects.Len()
	useSub := subLen >= 0 && subLen <= postingLimit
	useObj := objLen >= 0 && objLen <= postingLimit
	if useSub && useObj && objLen < subLen {
		useSub = false
	}
	switch {
	case useSub:
		return p.mergePostings(p.postingSub, f.Subjects), true
	case useObj:
		return p.mergePostings(p.postingObj, f.Objects), true
	}
	return nil, false
}

func (p *Partition) mergePostings(postings map[sysmon.EntityID][]int32, set *IDSet) []int32 {
	var out []int32
	for _, id := range set.IDs() {
		out = append(out, postings[id]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// estimate returns an upper bound on how many events in the chunk can
// match the filter, using the op histogram and posting-list lengths.
// Without indexes the estimate is the (time-sliced) chunk size.
func (p *Partition) estimate(f *EventFilter) int {
	lo, hi := p.timeSlice(f.From, f.To)
	n := hi - lo
	if n <= 0 {
		return 0
	}
	if !p.indexed {
		return n
	}
	if len(f.Ops) > 0 {
		opN := 0
		for _, op := range f.Ops {
			if int(op) < sysmon.NumOperations {
				opN += p.opCount[op]
			}
		}
		if opN < n {
			n = opN
		}
	}
	if s := p.postingEstimate(p.postingSub, f.Subjects); s >= 0 && s < n {
		n = s
	}
	if s := p.postingEstimate(p.postingObj, f.Objects); s >= 0 && s < n {
		n = s
	}
	return n
}

func (p *Partition) postingEstimate(postings map[sysmon.EntityID][]int32, set *IDSet) int {
	l := set.Len()
	if l < 0 {
		return -1
	}
	const estimateLimit = 4096 // cap the work spent estimating
	if l > estimateLimit {
		return -1
	}
	total := 0
	for id := range set.m {
		total += len(postings[id])
	}
	return total
}

// timeSlice returns the index range [lo, hi) of events whose start
// timestamps fall in [from, to), using binary search over the sorted chunk.
func (p *Partition) timeSlice(from, to int64) (int, int) {
	if !p.sorted {
		return 0, len(p.events)
	}
	lo, hi := 0, len(p.events)
	if from != 0 {
		lo = sort.Search(len(p.events), func(i int) bool { return p.events[i].StartTS >= from })
	}
	if to != 0 {
		hi = sort.Search(len(p.events), func(i int) bool { return p.events[i].StartTS >= to })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Events exposes the chunk's raw events (read-only) for bulk consumers
// such as baseline-engine loaders.
func (p *Partition) Events() []sysmon.Event {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.events
}
