package eventstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/aiql/aiql/internal/durable"
	"github.com/aiql/aiql/internal/sysmon"
)

// The durable storage subsystem layers crash-safe persistence under the
// LSM store without touching its read path: sealed segments are written
// exactly once as individual files and loaded back without re-indexing,
// a MANIFEST names the live segment set (plus the dictionary tables and
// ID counters), and a write-ahead log covers committed events that have
// not reached a sealed segment yet. Recovery is manifest load + WAL
// replay of the unsealed tail.
//
// Two invariants carry the whole design:
//
//  1. Chunk chains seal in arrival (event-ID) order, so a chunk's
//     persisted segments always cover an ID-prefix of its events. The
//     manifest lists the longest *persisted* prefix of each chain, and
//     WAL replay skips exactly the records whose event ID falls at or
//     below the listed segments' max event ID for their chunk.
//  2. The WAL is truncated only when a manifest edition covers every
//     committed event (all chains fully persisted, all memtables and
//     the append batch empty). Until then replay stays idempotent:
//     entity records carry their dictionary ID and event records their
//     event ID, so records already captured by a newer manifest are
//     recognized and skipped.
//
// A crash between a seal and its manifest edition therefore loses
// nothing: the segment file is ignored (and deleted as an orphan on the
// next open) and its events are recovered from the WAL instead.

// persistedSeg records one segment's on-disk file.
type persistedSeg struct {
	file  string
	bytes int64
}

// durableState is a Store's attachment to its directory.
type durableState struct {
	dir     string
	syncWAL bool
	wal     *durable.WAL
	lock    *durable.DirLock // exclusive flock; held until Close

	// mu serializes segment persistence, manifest editions, and WAL
	// truncation decisions. Lock order: mu before Store.mu (read).
	mu        sync.Mutex
	edition   uint64
	persisted map[uint64]persistedSeg

	// loggedProcs/Files/Conns count the dictionary entries already
	// appended to the WAL; guarded by the Store's write lock (they are
	// only touched inside commitLocked).
	loggedProcs int
	loggedFiles int
	loggedConns int

	errMu   sync.Mutex
	lastErr error
}

// setErr records the first durability failure; the store keeps serving
// from memory, and the error surfaces through DurableStats.
func (d *durableState) setErr(err error) {
	if err == nil {
		return
	}
	d.errMu.Lock()
	if d.lastErr == nil {
		d.lastErr = err
	}
	d.errMu.Unlock()
}

func (d *durableState) lastError() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.lastErr
}

// Open opens (creating or recovering) the durable store at opts.Dir:
// manifest-listed segment files load back with their indexes — no
// re-chunking, re-interning, or re-indexing — and the WAL replays the
// committed-but-unsealed tail into memtables. A torn final WAL record
// (crash mid append) is truncated; every record before it is recovered.
func Open(opts Options) (*Store, error) {
	opts = opts.normalized()
	if opts.Dir == "" {
		return nil, fmt.Errorf("eventstore: Open requires Options.Dir (use New for an in-memory store)")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventstore: %w", err)
	}
	// The whole subsystem assumes one writer per directory: WAL frames,
	// manifest editions, and orphan cleanup would all tear under two.
	// The flock enforces it across processes (and across opens within
	// one process); a crashed owner releases it automatically.
	lock, err := durable.LockDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("eventstore: %w", err)
	}
	opened := false
	defer func() {
		if !opened {
			lock.Release()
		}
	}()
	s := New(opts)
	d := &durableState{dir: opts.Dir, syncWAL: opts.SyncWAL, lock: lock, persisted: make(map[uint64]persistedSeg)}

	maxSealed := make(map[PartKey]uint64)
	var toIndex []*Segment
	m, err := durable.ReadManifest(opts.Dir)
	switch {
	case err == nil:
		if m.Partitioning != opts.Partitioning || m.ChunkDurationNS != int64(opts.ChunkDuration) || m.Dedup != opts.Dedup {
			return nil, fmt.Errorf("eventstore: %s: manifest layout (partitioning=%v chunk=%v dedup=%v) does not match Open options (partitioning=%v chunk=%v dedup=%v)",
				opts.Dir, m.Partitioning, m.ChunkDurationNS, m.Dedup, opts.Partitioning, int64(opts.ChunkDuration), opts.Dedup)
		}
		// The dictionary rebuild (intern maps + attribute indexes over
		// tens of thousands of entities) and the segment file loads are
		// independent; run them concurrently, with the files themselves
		// decoded by a worker pool — this is where load-without-replay
		// wins its wall-clock over gob.
		dictDone := make(chan struct{})
		go func() {
			defer close(dictDone)
			s.dict.restoreTables(m.Procs, m.Files, m.Conns)
		}()
		s.nextSegID = m.NextSegID
		s.nextEventID = m.NextEventID
		for agent, seq := range m.NextSeq {
			s.nextSeq[agent] = seq
		}
		d.edition = m.Edition
		loaded := make([]*Segment, len(m.Segments))
		sizes := make([]int64, len(m.Segments))
		var loadErr error
		var loadMu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i := range m.Segments {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer func() { <-sem; wg.Done() }()
				ref := &m.Segments[i]
				path := filepath.Join(opts.Dir, ref.File)
				sd, err := durable.ReadSegmentFile(path)
				if err == nil && (sd.ID != ref.ID || len(sd.Events) != ref.Events) {
					err = fmt.Errorf("segment file %s does not match manifest (id %d vs %d, %d events vs %d)",
						ref.File, sd.ID, ref.ID, len(sd.Events), ref.Events)
				}
				if err != nil {
					loadMu.Lock()
					if loadErr == nil {
						loadErr = err
					}
					loadMu.Unlock()
					return
				}
				loaded[i] = restoreSegment(sd, opts.Indexes)
				if fi, err := os.Stat(path); err == nil {
					sizes[i] = fi.Size()
				}
			}(i)
		}
		wg.Wait()
		<-dictDone
		if loadErr != nil {
			return nil, fmt.Errorf("eventstore: recover %s: %w", opts.Dir, loadErr)
		}
		// assemble chains in manifest (scan) order
		for i, g := range loaded {
			if opts.Indexes && !g.ready.Load() {
				toIndex = append(toIndex, g) // persisted before its indexes were built
			}
			p := s.parts[g.key]
			if p == nil {
				p = &partState{key: g.key}
				s.parts[g.key] = p
				s.order = append(s.order, g.key)
			}
			p.segs = append(p.segs, g)
			d.persisted[g.id] = persistedSeg{file: m.Segments[i].File, bytes: sizes[i]}
			if g.maxEventID > maxSealed[g.key] {
				maxSealed[g.key] = g.maxEventID
			}
			s.noteEventsLocked(len(g.events), g.minTS, g.maxTS)
		}
	case errors.Is(err, durable.ErrNoManifest):
		// fresh directory
	default:
		return nil, fmt.Errorf("eventstore: recover %s: %w", opts.Dir, err)
	}

	// Replay the WAL tail: entity deltas the manifest does not capture
	// extend the dictionary; events not covered by a listed segment go
	// back to their chunk's memtable.
	pending := make(map[PartKey][]sysmon.Event)
	var pendingOrder []PartKey
	wal, err := durable.OpenWAL(filepath.Join(opts.Dir, durable.WALName), func(rec durable.Rec) error {
		switch rec.Kind {
		case durable.RecProc:
			if int(rec.ID) > s.dict.Count(sysmon.EntityProcess) {
				if id := s.dict.InternProcess(rec.Proc); id != rec.ID {
					return fmt.Errorf("eventstore: recover %s: WAL process entity landed at id %d, logged as %d", opts.Dir, id, rec.ID)
				}
			}
		case durable.RecFile:
			if int(rec.ID) > s.dict.Count(sysmon.EntityFile) {
				if id := s.dict.InternFile(rec.File); id != rec.ID {
					return fmt.Errorf("eventstore: recover %s: WAL file entity landed at id %d, logged as %d", opts.Dir, id, rec.ID)
				}
			}
		case durable.RecConn:
			if int(rec.ID) > s.dict.Count(sysmon.EntityNetconn) {
				if id := s.dict.InternNetconn(rec.Conn); id != rec.ID {
					return fmt.Errorf("eventstore: recover %s: WAL connection entity landed at id %d, logged as %d", opts.Dir, id, rec.ID)
				}
			}
		case durable.RecEvent:
			ev := rec.Event
			key := s.partKey(ev.AgentID, ev.StartTS)
			if ev.ID <= maxSealed[key] {
				return nil // already durable in a manifest-listed segment
			}
			if _, ok := pending[key]; !ok {
				pendingOrder = append(pendingOrder, key)
			}
			pending[key] = append(pending[key], ev)
			if ev.ID > s.nextEventID {
				s.nextEventID = ev.ID
			}
			if ev.Seq > s.nextSeq[ev.AgentID] {
				s.nextSeq[ev.AgentID] = ev.Seq
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.wal = wal
	for _, key := range pendingOrder {
		evs := pending[key]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].StartTS < evs[j].StartTS })
		p := s.parts[key]
		if p == nil {
			p = &partState{key: key}
			s.parts[key] = p
			s.order = append(s.order, key)
		}
		var minTS, maxTS int64
		if len(evs) > 0 {
			minTS, maxTS = evs[0].StartTS, evs[len(evs)-1].StartTS
		}
		p.mem.appendBatch(evs)
		s.noteEventsLocked(len(evs), minTS, maxTS)
	}
	d.loggedProcs = s.dict.Count(sysmon.EntityProcess)
	d.loggedFiles = s.dict.Count(sysmon.EntityFile)
	d.loggedConns = s.dict.Count(sysmon.EntityNetconn)
	s.dur = d
	indexSegments(toIndex)
	removeOrphans(opts.Dir, d.persisted)
	opened = true
	return s, nil
}

// noteEventsLocked accounts n restored events with the given time range
// into the store's totals. Open runs single-threaded, so "locked" is by
// construction rather than by mutex.
func (s *Store) noteEventsLocked(n int, minTS, maxTS int64) {
	if n == 0 {
		return
	}
	if s.total == 0 || minTS < s.minTS {
		s.minTS = minTS
	}
	if s.total == 0 || maxTS > s.maxTS {
		s.maxTS = maxTS
	}
	s.total += n
}

// removeOrphans deletes segment files the manifest does not reference:
// leftovers of a crash between a seal and its manifest edition (their
// events recover from the WAL) or of a compaction's retired inputs.
func removeOrphans(dir string, persisted map[uint64]persistedSeg) {
	live := make(map[string]bool, len(persisted))
	for _, ps := range persisted {
		live[ps.file] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		stale := (strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") && !live[name]) ||
			strings.HasPrefix(name, ".tmp-")
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// logCommitLocked appends the commit to the WAL before it becomes
// visible: first the dictionary entries interned since the last logged
// point (replay must be able to resolve the events' entity IDs), then
// the batch's events. Runs under the store's write lock, which is what
// guarantees WAL order equals commit order. sync=false skips the fsync
// even under SyncWAL: AppendAll group-commits, issuing one Sync for the
// whole batch after its final commit.
func (d *durableState) logCommitLocked(s *Store, sync bool) {
	procs, files, conns := s.dict.tableHeaders()
	recs := make([]durable.Rec, 0,
		len(s.batch)+(len(procs)-d.loggedProcs)+(len(files)-d.loggedFiles)+(len(conns)-d.loggedConns))
	for i := d.loggedProcs; i < len(procs); i++ {
		recs = append(recs, durable.Rec{Kind: durable.RecProc, ID: sysmon.EntityID(i + 1), Proc: procs[i]})
	}
	for i := d.loggedFiles; i < len(files); i++ {
		recs = append(recs, durable.Rec{Kind: durable.RecFile, ID: sysmon.EntityID(i + 1), File: files[i]})
	}
	for i := d.loggedConns; i < len(conns); i++ {
		recs = append(recs, durable.Rec{Kind: durable.RecConn, ID: sysmon.EntityID(i + 1), Conn: conns[i]})
	}
	d.loggedProcs, d.loggedFiles, d.loggedConns = len(procs), len(files), len(conns)
	for i := range s.batch {
		recs = append(recs, durable.Rec{Kind: durable.RecEvent, Event: s.batch[i]})
	}
	if err := d.wal.Append(recs, sync && d.syncWAL); err != nil {
		d.setErr(err)
	}
}

// persistSealed writes freshly sealed segments as individual files and
// installs a manifest edition covering them. Called with no store locks
// held, after the segments' indexes are built, so a seal's disk work
// never stalls appends or queries.
func (s *Store) persistSealed(segs []*Segment) {
	d := s.dur
	if d == nil || len(segs) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Re-checked under d.mu: Close drains this mutex after setting the
	// flag, so once Close returns no straggler can touch the directory.
	if s.closed.Load() {
		return
	}
	for _, g := range segs {
		name := durable.SegmentFileName(g.id)
		n, err := durable.WriteSegmentFile(filepath.Join(d.dir, name), g.segmentData())
		if err != nil {
			d.setErr(err)
			return
		}
		d.persisted[g.id] = persistedSeg{file: name, bytes: n}
	}
	s.writeManifestLocked()
}

// writeManifestLocked installs a manifest edition reflecting the
// store's current persisted state, then truncates the WAL if the
// edition covers every committed event. The caller holds d.mu; the
// store read lock is held across the write and the truncation so no
// commit can slip records into the WAL between the coverage check and
// the truncate.
func (s *Store) writeManifestLocked() {
	d := s.dur
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := &durable.Manifest{
		Edition:         d.edition + 1,
		NextSegID:       s.nextSegID,
		NextEventID:     s.nextEventID,
		NextSeq:         make(map[uint32]uint64, len(s.nextSeq)),
		Partitioning:    s.opts.Partitioning,
		ChunkDurationNS: int64(s.opts.ChunkDuration),
		Dedup:           s.opts.Dedup,
	}
	for agent, seq := range s.nextSeq {
		m.NextSeq[agent] = seq
	}
	m.Procs, m.Files, m.Conns = s.dict.tableHeaders()
	covered := len(s.batch) == 0
	for _, key := range s.order {
		p := s.parts[key]
		if len(p.mem.events) > 0 {
			covered = false
		}
		for _, g := range p.segs {
			ps, ok := d.persisted[g.id]
			if !ok {
				// List only the longest persisted prefix of the chain:
				// recovery's ID-prefix skip rule depends on no gaps.
				covered = false
				break
			}
			m.Segments = append(m.Segments, durable.SegmentRef{
				ID:         g.id,
				AgentID:    g.key.AgentID,
				Bucket:     g.key.Bucket,
				File:       ps.file,
				Events:     len(g.events),
				MinTS:      g.minTS,
				MaxTS:      g.maxTS,
				MinEventID: g.minEventID,
				MaxEventID: g.maxEventID,
			})
		}
	}
	if err := durable.WriteManifest(d.dir, m); err != nil {
		d.setErr(err)
		return
	}
	d.edition = m.Edition
	if covered {
		if err := d.wal.Truncate(); err != nil {
			d.setErr(err)
		}
	}
}

// SaveDir writes the store's full state into dir as a durable store
// directory: every chunk is sealed, each segment becomes one file, and
// a first manifest edition lists them all (so the WAL starts empty).
// The target must not already contain a durable store. The caller must
// quiesce writers for the duration. This is the migration path from
// legacy gob snapshots: LoadFile + SaveDir, then Open serves the
// directory from then on.
func (s *Store) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eventstore: %w", err)
	}
	if _, err := durable.ReadManifest(dir); err == nil {
		return fmt.Errorf("eventstore: SaveDir target %s already contains a durable store", dir)
	} else if !errors.Is(err, durable.ErrNoManifest) {
		return err
	}
	if err := s.Flush(); err != nil {
		return err
	}
	sn := s.Snapshot()

	s.mu.RLock()
	m := &durable.Manifest{
		Edition:         1,
		NextSegID:       s.nextSegID,
		NextEventID:     s.nextEventID,
		NextSeq:         make(map[uint32]uint64, len(s.nextSeq)),
		Partitioning:    s.opts.Partitioning,
		ChunkDurationNS: int64(s.opts.ChunkDuration),
		Dedup:           s.opts.Dedup,
	}
	for agent, seq := range s.nextSeq {
		m.NextSeq[agent] = seq
	}
	s.mu.RUnlock()
	m.Procs, m.Files, m.Conns = s.dict.tableHeaders()

	for i := range sn.parts {
		for _, g := range sn.parts[i].segs {
			g.buildIndexes() // idempotent; ensures the file carries indexes
			name := durable.SegmentFileName(g.id)
			if _, err := durable.WriteSegmentFile(filepath.Join(dir, name), g.segmentData()); err != nil {
				return err
			}
			m.Segments = append(m.Segments, durable.SegmentRef{
				ID:         g.id,
				AgentID:    g.key.AgentID,
				Bucket:     g.key.Bucket,
				File:       name,
				Events:     len(g.events),
				MinTS:      g.minTS,
				MaxTS:      g.maxTS,
				MinEventID: g.minEventID,
				MaxEventID: g.maxEventID,
			})
		}
	}
	return durable.WriteManifest(dir, m)
}

// MigrateGobToDir converts a legacy gob snapshot into a durable store
// directory with the given options. The directory can then be served
// with Open — no gob replay, re-interning, or re-indexing on any later
// load.
func MigrateGobToDir(gobPath, dir string, opts Options) error {
	opts.Dir = ""
	s, err := LoadFile(gobPath, opts)
	if err != nil {
		return err
	}
	return s.SaveDir(dir)
}

// Dir returns the durable directory backing the store; empty for
// in-memory stores.
func (s *Store) Dir() string {
	if s.dur == nil {
		return ""
	}
	return s.dur.dir
}

// Close stops the background compactor, waits for any in-flight
// compaction pass to finish its manifest edition, prevents further
// passes and persistence, and closes the write-ahead log. After Close
// the directory has exactly one consistent owner-less state, so another
// Open (a hot-swap reload) can take it over safely. The in-memory state
// stays readable — in-flight queries on pinned snapshots are unaffected
// — but later appends are no longer made durable.
func (s *Store) Close() error {
	s.StopCompactor()
	s.closed.Store(true)
	// Drain barriers: an in-flight direct Compact call holds compactMu
	// through its manifest write, and an in-flight persistSealed holds
	// d.mu through its file writes. Once both are acquired here, every
	// writer that slipped past the closed flag has finished and every
	// later one re-checks the flag under the mutex it holds.
	s.compactMu.Lock()
	s.compactMu.Unlock() //nolint:staticcheck // empty critical section is the point
	// Append/AppendAll/Flush check the closed flag under s.mu before
	// touching the WAL, so draining s.mu here guarantees no straggler
	// ingest write reaches the log after it closes below; the writer
	// instead observes the flag and returns ErrClosed.
	s.mu.Lock()
	s.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	if s.dur == nil {
		return nil
	}
	s.dur.mu.Lock()
	s.dur.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	err := s.dur.wal.Close()
	if lerr := s.dur.lock.Release(); err == nil {
		err = lerr
	}
	return err
}

// DurableStats describes the store's on-disk footprint and the durable
// subsystem's activity. Zero-valued (except compaction counters) for
// in-memory stores.
type DurableStats struct {
	Dir               string `json:"dir,omitempty"`
	SegmentFiles      int    `json:"segment_files"`
	SegmentFileBytes  int64  `json:"segment_file_bytes"`
	WALBytes          int64  `json:"wal_bytes"`
	WALRecords        uint64 `json:"wal_records"`
	WALSyncs          uint64 `json:"wal_syncs"`
	ManifestEdition   uint64 `json:"manifest_edition"`
	Compactions       uint64 `json:"compactions"`
	SegmentsCompacted uint64 `json:"segments_compacted"`
	LastError         string `json:"last_error,omitempty"`
}

// DurableStats reports the durable subsystem's figures.
func (s *Store) DurableStats() DurableStats {
	st := DurableStats{
		Compactions:       s.compactions.Load(),
		SegmentsCompacted: s.segsCompacted.Load(),
	}
	d := s.dur
	if d == nil {
		return st
	}
	st.Dir = d.dir
	d.mu.Lock()
	st.ManifestEdition = d.edition
	st.SegmentFiles = len(d.persisted)
	for _, ps := range d.persisted {
		st.SegmentFileBytes += ps.bytes
	}
	d.mu.Unlock()
	st.WALBytes = d.wal.Size()
	st.WALRecords = d.wal.Records()
	st.WALSyncs = d.wal.Syncs()
	if err := d.lastError(); err != nil {
		st.LastError = err.Error()
	}
	return st
}
