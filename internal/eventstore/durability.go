package eventstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/aiql/aiql/internal/durable"
	"github.com/aiql/aiql/internal/sysmon"
)

// The durable storage subsystem layers crash-safe persistence under the
// LSM store without touching its read path: sealed segments are written
// exactly once as individual files and loaded back without re-indexing,
// a MANIFEST names the live segment set (plus the dictionary tables and
// ID counters), and a write-ahead log covers committed events that have
// not reached a sealed segment yet. Recovery is manifest load + WAL
// replay of the unsealed tail.
//
// Two invariants carry the whole design:
//
//  1. Chunk chains seal in arrival (event-ID) order, so a chunk's
//     persisted segments always cover an ID-prefix of its events. The
//     manifest lists the longest *persisted* prefix of each chain, and
//     WAL replay skips exactly the records whose event ID falls at or
//     below the listed segments' max event ID for their chunk.
//  2. The WAL is truncated only when a manifest edition covers every
//     committed event (all chains fully persisted, all memtables and
//     the append batch empty). Until then replay stays idempotent:
//     entity records carry their dictionary ID and event records their
//     event ID, so records already captured by a newer manifest are
//     recognized and skipped.
//
// A crash between a seal and its manifest edition therefore loses
// nothing: the segment file is ignored (and deleted as an orphan on the
// next open) and its events are recovered from the WAL instead.

// persistedSeg records one segment's on-disk file and format version
// (SegmentFormat*), the latter written into manifest refs so a reopen
// can defer v2 file opens entirely.
type persistedSeg struct {
	file  string
	bytes int64
	ver   uint8
}

// durableState is a Store's attachment to its directory.
type durableState struct {
	dir     string
	syncWAL bool
	wal     *durable.WAL
	lock    *durable.DirLock // exclusive flock; held until Close

	// mu serializes segment persistence, manifest editions, and WAL
	// truncation decisions. Lock order: mu before Store.mu (read).
	mu        sync.Mutex
	edition   uint64
	persisted map[uint64]persistedSeg

	// manifested tracks which persisted segments the on-disk manifest
	// (base + delta log) already lists, and manifestedProcs/Files/Conns
	// how many dictionary rows it carries — the baseline each delta
	// frame appends on top of. deltaBroken forces full rewrites after a
	// failed delta append (the log's tail state is then unknown). All
	// guarded by mu.
	manifested      map[uint64]bool
	manifestedProcs int
	manifestedFiles int
	manifestedConns int
	deltaBroken     bool

	// loggedProcs/Files/Conns count the dictionary entries already
	// appended to the WAL; guarded by the Store's write lock (they are
	// only touched inside commitLocked).
	loggedProcs int
	loggedFiles int
	loggedConns int

	errMu   sync.Mutex
	lastErr error
}

// setErr records the first durability failure; the store keeps serving
// from memory, and the error surfaces through DurableStats.
func (d *durableState) setErr(err error) {
	if err == nil {
		return
	}
	d.errMu.Lock()
	if d.lastErr == nil {
		d.lastErr = err
	}
	d.errMu.Unlock()
}

func (d *durableState) lastError() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.lastErr
}

// Open opens (creating or recovering) the durable store at opts.Dir:
// manifest-listed segment files load back with their indexes — no
// re-chunking, re-interning, or re-indexing — and the WAL replays the
// committed-but-unsealed tail into memtables. A torn final WAL record
// (crash mid append) is truncated; every record before it is recovered.
func Open(opts Options) (*Store, error) {
	opts = opts.normalized()
	if opts.Dir == "" {
		return nil, fmt.Errorf("eventstore: Open requires Options.Dir (use New for an in-memory store)")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventstore: %w", err)
	}
	// The whole subsystem assumes one writer per directory: WAL frames,
	// manifest editions, and orphan cleanup would all tear under two.
	// The flock enforces it across processes (and across opens within
	// one process); a crashed owner releases it automatically.
	lock, err := durable.LockDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("eventstore: %w", err)
	}
	opened := false
	defer func() {
		if !opened {
			lock.Release()
		}
	}()
	s := New(opts)
	d := &durableState{
		dir:        opts.Dir,
		syncWAL:    opts.SyncWAL,
		lock:       lock,
		persisted:  make(map[uint64]persistedSeg),
		manifested: make(map[uint64]bool),
	}

	maxSealed := make(map[PartKey]uint64)
	var toIndex []*Segment
	m, err := durable.ReadManifest(opts.Dir)
	switch {
	case err == nil:
		if m.Partitioning != opts.Partitioning || m.ChunkDurationNS != int64(opts.ChunkDuration) || m.Dedup != opts.Dedup {
			return nil, fmt.Errorf("eventstore: %s: manifest layout (partitioning=%v chunk=%v dedup=%v) does not match Open options (partitioning=%v chunk=%v dedup=%v)",
				opts.Dir, m.Partitioning, m.ChunkDurationNS, m.Dedup, opts.Partitioning, int64(opts.ChunkDuration), opts.Dedup)
		}
		// Fold the incremental edition log into the base manifest first:
		// the WAL may already have been truncated against a delta-covered
		// edition, so serving the base alone could lose sealed segments.
		if _, err := durable.ApplyManifestDeltas(opts.Dir, m); err != nil {
			return nil, fmt.Errorf("eventstore: recover %s: %w", opts.Dir, err)
		}
		// The dictionary rebuild (intern maps + attribute indexes over
		// tens of thousands of entities) and the segment file loads are
		// independent; run them concurrently, with the files themselves
		// decoded by a worker pool — this is where load-without-replay
		// wins its wall-clock over gob.
		dictDone := make(chan struct{})
		go func() {
			defer close(dictDone)
			s.dict.restoreTables(m.Procs, m.Files, m.Conns)
		}()
		s.nextSegID = m.NextSegID
		s.nextEventID = m.NextEventID
		for agent, seq := range m.NextSeq {
			s.nextSeq[agent] = seq
		}
		d.edition = m.Edition
		loaded := make([]*Segment, len(m.Segments))
		sizes := make([]int64, len(m.Segments))
		vers := make([]uint8, len(m.Segments))
		var loadErr error
		var loadMu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i := range m.Segments {
			ref := &m.Segments[i]
			path := filepath.Join(opts.Dir, ref.File)
			if ref.Format == durable.SegmentFormatV2 {
				// The ref carries every bound a cold segment needs, so a
				// v2 file is not even opened here: one Stat confirms it
				// exists (and sizes the stats), and the open — syscalls,
				// footer decode, block directory — is deferred until a
				// scan first touches the segment. A stale hint degrades
				// gracefully: first access sniffs the header and falls
				// back to an eager v1 decode.
				fi, serr := os.Stat(path)
				if serr != nil {
					loadMu.Lock()
					if loadErr == nil {
						loadErr = fmt.Errorf("segment file %s: %w", ref.File, serr)
					}
					loadMu.Unlock()
					continue
				}
				loaded[i] = restoreSegmentLazy(ref, path, opts.Indexes, s.blockCache, d.setErr)
				sizes[i] = fi.Size()
				vers[i] = durable.SegmentFormatV2
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, ref *durable.SegmentRef, path string) {
				defer func() { <-sem; wg.Done() }()
				// Version dispatch: v2 files open as mmap-backed readers
				// (footer + block directory only — no event decode), v1
				// files keep the eager heap decode for compatibility.
				op, err := durable.OpenSegment(path)
				if err == nil {
					switch {
					case op.V2 != nil:
						rd := op.V2
						if rd.ID != ref.ID || rd.Count != ref.Events {
							err = fmt.Errorf("segment file %s does not match manifest (id %d vs %d, %d events vs %d)",
								ref.File, rd.ID, ref.ID, rd.Count, ref.Events)
							break
						}
						loaded[i] = restoreSegmentFromReader(rd, opts.Indexes, s.blockCache, d.setErr)
						sizes[i] = rd.Size()
						vers[i] = durable.SegmentFormatV2
					default:
						sd := op.V1
						if sd.ID != ref.ID || len(sd.Events) != ref.Events {
							err = fmt.Errorf("segment file %s does not match manifest (id %d vs %d, %d events vs %d)",
								ref.File, sd.ID, ref.ID, len(sd.Events), ref.Events)
							break
						}
						loaded[i] = restoreSegment(sd, opts.Indexes)
						vers[i] = durable.SegmentFormatV1
						if fi, serr := os.Stat(path); serr == nil {
							sizes[i] = fi.Size()
						}
					}
				}
				if err != nil {
					loadMu.Lock()
					if loadErr == nil {
						loadErr = err
					}
					loadMu.Unlock()
				}
			}(i, ref, path)
		}
		wg.Wait()
		<-dictDone
		if loadErr != nil {
			return nil, fmt.Errorf("eventstore: recover %s: %w", opts.Dir, loadErr)
		}
		// assemble chains in manifest (scan) order
		for i, g := range loaded {
			// Lazily restored segments are never queued for an index
			// rebuild: forcing their files open would defeat the lazy
			// restore, and v2 files written by seal or compaction carry
			// their indexes anyway. The rare unindexed one (a crash in
			// the seal's index window) serves sequential scans until
			// compaction rewrites it.
			rd := g.reader()
			if opts.Indexes && !g.ready.Load() && g.lazyPath == "" && !(rd != nil && rd.Indexed) {
				toIndex = append(toIndex, g) // persisted before its indexes were built
			}
			p := s.parts[g.key]
			if p == nil {
				p = &partState{key: g.key}
				s.parts[g.key] = p
				s.order = append(s.order, g.key)
			}
			p.segs = append(p.segs, g)
			d.persisted[g.id] = persistedSeg{file: m.Segments[i].File, bytes: sizes[i], ver: vers[i]}
			d.manifested[g.id] = true
			if g.maxEventID > maxSealed[g.key] {
				maxSealed[g.key] = g.maxEventID
			}
			s.noteEventsLocked(g.Len(), g.minTS, g.maxTS)
		}
		d.manifestedProcs, d.manifestedFiles, d.manifestedConns = len(m.Procs), len(m.Files), len(m.Conns)
	case errors.Is(err, durable.ErrNoManifest):
		// fresh directory
	default:
		return nil, fmt.Errorf("eventstore: recover %s: %w", opts.Dir, err)
	}

	// Replay the WAL tail: entity deltas the manifest does not capture
	// extend the dictionary; events not covered by a listed segment go
	// back to their chunk's memtable.
	pending := make(map[PartKey][]sysmon.Event)
	var pendingOrder []PartKey
	wal, err := durable.OpenWAL(filepath.Join(opts.Dir, durable.WALName), func(rec durable.Rec) error {
		switch rec.Kind {
		case durable.RecProc:
			if int(rec.ID) > s.dict.Count(sysmon.EntityProcess) {
				if id := s.dict.InternProcess(rec.Proc); id != rec.ID {
					return fmt.Errorf("eventstore: recover %s: WAL process entity landed at id %d, logged as %d", opts.Dir, id, rec.ID)
				}
			}
		case durable.RecFile:
			if int(rec.ID) > s.dict.Count(sysmon.EntityFile) {
				if id := s.dict.InternFile(rec.File); id != rec.ID {
					return fmt.Errorf("eventstore: recover %s: WAL file entity landed at id %d, logged as %d", opts.Dir, id, rec.ID)
				}
			}
		case durable.RecConn:
			if int(rec.ID) > s.dict.Count(sysmon.EntityNetconn) {
				if id := s.dict.InternNetconn(rec.Conn); id != rec.ID {
					return fmt.Errorf("eventstore: recover %s: WAL connection entity landed at id %d, logged as %d", opts.Dir, id, rec.ID)
				}
			}
		case durable.RecEvent:
			ev := rec.Event
			key := s.partKey(ev.AgentID, ev.StartTS)
			if ev.ID <= maxSealed[key] {
				return nil // already durable in a manifest-listed segment
			}
			if _, ok := pending[key]; !ok {
				pendingOrder = append(pendingOrder, key)
			}
			pending[key] = append(pending[key], ev)
			if ev.ID > s.nextEventID {
				s.nextEventID = ev.ID
			}
			if ev.Seq > s.nextSeq[ev.AgentID] {
				s.nextSeq[ev.AgentID] = ev.Seq
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.wal = wal
	for _, key := range pendingOrder {
		evs := pending[key]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].StartTS < evs[j].StartTS })
		p := s.parts[key]
		if p == nil {
			p = &partState{key: key}
			s.parts[key] = p
			s.order = append(s.order, key)
		}
		var minTS, maxTS int64
		if len(evs) > 0 {
			minTS, maxTS = evs[0].StartTS, evs[len(evs)-1].StartTS
		}
		p.mem.appendBatch(evs)
		s.noteEventsLocked(len(evs), minTS, maxTS)
	}
	d.loggedProcs = s.dict.Count(sysmon.EntityProcess)
	d.loggedFiles = s.dict.Count(sysmon.EntityFile)
	d.loggedConns = s.dict.Count(sysmon.EntityNetconn)
	s.dur = d
	indexSegments(toIndex)
	removeOrphans(opts.Dir, d.persisted)
	opened = true
	return s, nil
}

// noteEventsLocked accounts n restored events with the given time range
// into the store's totals. Open runs single-threaded, so "locked" is by
// construction rather than by mutex.
func (s *Store) noteEventsLocked(n int, minTS, maxTS int64) {
	if n == 0 {
		return
	}
	if s.total == 0 || minTS < s.minTS {
		s.minTS = minTS
	}
	if s.total == 0 || maxTS > s.maxTS {
		s.maxTS = maxTS
	}
	s.total += n
}

// removeOrphans deletes segment files the manifest does not reference:
// leftovers of a crash between a seal and its manifest edition (their
// events recover from the WAL) or of a compaction's retired inputs.
func removeOrphans(dir string, persisted map[uint64]persistedSeg) {
	live := make(map[string]bool, len(persisted))
	for _, ps := range persisted {
		live[ps.file] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		stale := (strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") && !live[name]) ||
			strings.HasPrefix(name, ".tmp-")
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// logCommitLocked appends the commit to the WAL before it becomes
// visible: first the dictionary entries interned since the last logged
// point (replay must be able to resolve the events' entity IDs), then
// the batch's events. Runs under the store's write lock, which is what
// guarantees WAL order equals commit order. sync=false skips the fsync
// even under SyncWAL: AppendAll group-commits, issuing one Sync for the
// whole batch after its final commit.
func (d *durableState) logCommitLocked(s *Store, sync bool) {
	procs, files, conns := s.dict.tableHeaders()
	recs := make([]durable.Rec, 0,
		len(s.batch)+(len(procs)-d.loggedProcs)+(len(files)-d.loggedFiles)+(len(conns)-d.loggedConns))
	for i := d.loggedProcs; i < len(procs); i++ {
		recs = append(recs, durable.Rec{Kind: durable.RecProc, ID: sysmon.EntityID(i + 1), Proc: procs[i]})
	}
	for i := d.loggedFiles; i < len(files); i++ {
		recs = append(recs, durable.Rec{Kind: durable.RecFile, ID: sysmon.EntityID(i + 1), File: files[i]})
	}
	for i := d.loggedConns; i < len(conns); i++ {
		recs = append(recs, durable.Rec{Kind: durable.RecConn, ID: sysmon.EntityID(i + 1), Conn: conns[i]})
	}
	d.loggedProcs, d.loggedFiles, d.loggedConns = len(procs), len(files), len(conns)
	for i := range s.batch {
		recs = append(recs, durable.Rec{Kind: durable.RecEvent, Event: s.batch[i]})
	}
	if err := d.wal.Append(recs, sync && d.syncWAL); err != nil {
		d.setErr(err)
	}
}

// persistSealed writes freshly sealed segments as individual files and
// installs a manifest edition covering them. Called with no store locks
// held, after the segments' indexes are built, so a seal's disk work
// never stalls appends or queries.
func (s *Store) persistSealed(segs []*Segment) {
	d := s.dur
	if d == nil || len(segs) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Re-checked under d.mu: Close drains this mutex after setting the
	// flag, so once Close returns no straggler can touch the directory.
	if s.closed.Load() {
		return
	}
	for _, g := range segs {
		name := durable.SegmentFileName(g.id)
		n, err := s.writeSegmentFile(filepath.Join(d.dir, name), g)
		if err != nil {
			d.setErr(err)
			return
		}
		d.persisted[g.id] = persistedSeg{file: name, bytes: n, ver: durable.SegmentFormatV2}
	}
	if !s.appendManifestDeltaLocked() {
		s.writeManifestLocked()
	}
}

// writeSegmentFile writes g as a v2 (columnar, block-compressed) segment
// file, honoring the store's codec choice.
func (s *Store) writeSegmentFile(path string, g *Segment) (int64, error) {
	return durable.WriteSegmentFileV2(path, g.segmentData(), s.opts.SegmentCompression != "none")
}

// appendManifestDeltaLocked installs the next manifest edition as one
// appended delta frame instead of a full rewrite, carrying only the
// segment refs and dictionary rows added since the last edition. Returns
// false when a full rewrite is required instead: no base manifest exists
// yet, a previous append failed (the log tail is suspect), or the append
// itself errors. The caller holds d.mu; like writeManifestLocked, the
// store read lock spans the coverage check and the WAL truncation.
func (s *Store) appendManifestDeltaLocked() bool {
	d := s.dur
	if d.edition == 0 || d.deltaBroken {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	delta := &durable.ManifestDelta{
		Edition:     d.edition + 1,
		NextSegID:   s.nextSegID,
		NextEventID: s.nextEventID,
		NextSeq:     make(map[uint32]uint64, len(s.nextSeq)),
	}
	for agent, seq := range s.nextSeq {
		delta.NextSeq[agent] = seq
	}
	procs, files, conns := s.dict.tableHeaders()
	delta.Procs = procs[d.manifestedProcs:]
	delta.Files = files[d.manifestedFiles:]
	delta.Conns = conns[d.manifestedConns:]
	covered := len(s.batch) == 0
	for _, key := range s.order {
		p := s.parts[key]
		if len(p.mem.events) > 0 {
			covered = false
		}
		for _, g := range p.segs {
			if d.manifested[g.id] {
				continue
			}
			ps, ok := d.persisted[g.id]
			if !ok {
				// Same prefix rule as the full rewrite: a chain with an
				// unpersisted middle must not list anything past the gap.
				covered = false
				break
			}
			delta.Segments = append(delta.Segments, durable.SegmentRef{
				ID:         g.id,
				AgentID:    g.key.AgentID,
				Bucket:     g.key.Bucket,
				File:       ps.file,
				Events:     g.Len(),
				MinTS:      g.minTS,
				MaxTS:      g.maxTS,
				MinEventID: g.minEventID,
				MaxEventID: g.maxEventID,
				Format:     ps.ver,
			})
		}
	}
	if err := durable.AppendManifestDelta(d.dir, delta); err != nil {
		// Fall back to a full rewrite (which truncates the suspect log);
		// only if that also fails does an error surface.
		d.deltaBroken = true
		return false
	}
	d.edition = delta.Edition
	for i := range delta.Segments {
		d.manifested[delta.Segments[i].ID] = true
	}
	d.manifestedProcs, d.manifestedFiles, d.manifestedConns = len(procs), len(files), len(conns)
	if covered {
		if err := d.wal.Truncate(); err != nil {
			d.setErr(err)
		}
	}
	return true
}

// writeManifestLocked installs a manifest edition reflecting the
// store's current persisted state, then truncates the WAL if the
// edition covers every committed event. The caller holds d.mu; the
// store read lock is held across the write and the truncation so no
// commit can slip records into the WAL between the coverage check and
// the truncate.
func (s *Store) writeManifestLocked() {
	d := s.dur
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := &durable.Manifest{
		Edition:         d.edition + 1,
		NextSegID:       s.nextSegID,
		NextEventID:     s.nextEventID,
		NextSeq:         make(map[uint32]uint64, len(s.nextSeq)),
		Partitioning:    s.opts.Partitioning,
		ChunkDurationNS: int64(s.opts.ChunkDuration),
		Dedup:           s.opts.Dedup,
	}
	for agent, seq := range s.nextSeq {
		m.NextSeq[agent] = seq
	}
	m.Procs, m.Files, m.Conns = s.dict.tableHeaders()
	covered := len(s.batch) == 0
	for _, key := range s.order {
		p := s.parts[key]
		if len(p.mem.events) > 0 {
			covered = false
		}
		for _, g := range p.segs {
			ps, ok := d.persisted[g.id]
			if !ok {
				// List only the longest persisted prefix of the chain:
				// recovery's ID-prefix skip rule depends on no gaps.
				covered = false
				break
			}
			m.Segments = append(m.Segments, durable.SegmentRef{
				ID:         g.id,
				AgentID:    g.key.AgentID,
				Bucket:     g.key.Bucket,
				File:       ps.file,
				Events:     g.Len(),
				MinTS:      g.minTS,
				MaxTS:      g.maxTS,
				MinEventID: g.minEventID,
				MaxEventID: g.maxEventID,
				Format:     ps.ver,
			})
		}
	}
	if err := durable.WriteManifest(d.dir, m); err != nil {
		d.setErr(err)
		return
	}
	d.edition = m.Edition
	// The full rewrite captured everything the delta log carried (and
	// re-baselined the dictionary counters), so the log restarts empty.
	// Ordering matters: the new base is durable first, so a crash here
	// leaves stale frames recovery skips by edition.
	if err := durable.RemoveManifestDelta(d.dir); err != nil {
		d.setErr(err)
	} else {
		d.deltaBroken = false
	}
	d.manifested = make(map[uint64]bool, len(m.Segments))
	for i := range m.Segments {
		d.manifested[m.Segments[i].ID] = true
	}
	d.manifestedProcs, d.manifestedFiles, d.manifestedConns = len(m.Procs), len(m.Files), len(m.Conns)
	if covered {
		if err := d.wal.Truncate(); err != nil {
			d.setErr(err)
		}
	}
}

// SaveDir writes the store's full state into dir as a durable store
// directory: every chunk is sealed, each segment becomes one file, and
// a first manifest edition lists them all (so the WAL starts empty).
// The target must not already contain a durable store. The caller must
// quiesce writers for the duration. This is the migration path from
// legacy gob snapshots: LoadFile + SaveDir, then Open serves the
// directory from then on.
func (s *Store) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eventstore: %w", err)
	}
	if _, err := durable.ReadManifest(dir); err == nil {
		return fmt.Errorf("eventstore: SaveDir target %s already contains a durable store", dir)
	} else if !errors.Is(err, durable.ErrNoManifest) {
		return err
	}
	if err := s.Flush(); err != nil {
		return err
	}
	sn := s.Snapshot()

	s.mu.RLock()
	m := &durable.Manifest{
		Edition:         1,
		NextSegID:       s.nextSegID,
		NextEventID:     s.nextEventID,
		NextSeq:         make(map[uint32]uint64, len(s.nextSeq)),
		Partitioning:    s.opts.Partitioning,
		ChunkDurationNS: int64(s.opts.ChunkDuration),
		Dedup:           s.opts.Dedup,
	}
	for agent, seq := range s.nextSeq {
		m.NextSeq[agent] = seq
	}
	s.mu.RUnlock()
	m.Procs, m.Files, m.Conns = s.dict.tableHeaders()

	for i := range sn.parts {
		for _, g := range sn.parts[i].segs {
			g.buildIndexes() // idempotent; ensures the file carries indexes
			name := durable.SegmentFileName(g.id)
			if _, err := s.writeSegmentFile(filepath.Join(dir, name), g); err != nil {
				return err
			}
			m.Segments = append(m.Segments, durable.SegmentRef{
				ID:         g.id,
				AgentID:    g.key.AgentID,
				Bucket:     g.key.Bucket,
				File:       name,
				Events:     g.Len(),
				MinTS:      g.minTS,
				MaxTS:      g.maxTS,
				MinEventID: g.minEventID,
				MaxEventID: g.maxEventID,
				Format:     durable.SegmentFormatV2,
			})
		}
	}
	return durable.WriteManifest(dir, m)
}

// UpgradeSegments rewrites every persisted v1 segment file in place in
// the v2 columnar format, returning how many were upgraded. Filenames,
// event counts, and IDs are unchanged, so the manifest stays valid as
// is; already-v2 files are left alone. In-memory segments keep serving
// their heap copies — the mmap-backed read path engages on the next
// Open. Safe to call on a live store; the rewrite uses the same
// atomic-replace discipline as every other durable write.
func (s *Store) UpgradeSegments() (int, error) {
	d := s.dur
	if d == nil {
		return 0, fmt.Errorf("eventstore: UpgradeSegments requires a durable store")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	s.mu.RLock()
	segs := make([]*Segment, 0, len(d.persisted))
	for _, key := range s.order {
		segs = append(segs, s.parts[key].segs...)
	}
	s.mu.RUnlock()
	upgraded := 0
	for _, g := range segs {
		ps, ok := d.persisted[g.id]
		if !ok {
			continue
		}
		path := filepath.Join(d.dir, ps.file)
		ver, err := durable.SegmentFileVersion(path)
		if err != nil {
			return upgraded, err
		}
		if ver >= 2 {
			continue
		}
		g.buildIndexes() // idempotent; the v2 file carries the indexes
		data := durable.EncodeSegmentV2(g.segmentData(), s.opts.SegmentCompression != "none")
		if err := durable.ReplaceSegmentFile(path, data); err != nil {
			return upgraded, err
		}
		d.persisted[g.id] = persistedSeg{file: ps.file, bytes: int64(len(data)), ver: durable.SegmentFormatV2}
		upgraded++
	}
	if upgraded > 0 {
		// Refresh the manifest's Format hints so the next Open defers
		// the upgraded files' opens instead of sniffing each header.
		s.writeManifestLocked()
	}
	return upgraded, nil
}

// MigrateGobToDir converts a legacy gob snapshot into a durable store
// directory with the given options. The directory can then be served
// with Open — no gob replay, re-interning, or re-indexing on any later
// load.
func MigrateGobToDir(gobPath, dir string, opts Options) error {
	opts.Dir = ""
	s, err := LoadFile(gobPath, opts)
	if err != nil {
		return err
	}
	return s.SaveDir(dir)
}

// Dir returns the durable directory backing the store; empty for
// in-memory stores.
func (s *Store) Dir() string {
	if s.dur == nil {
		return ""
	}
	return s.dur.dir
}

// Close stops the background compactor, waits for any in-flight
// compaction pass to finish its manifest edition, prevents further
// passes and persistence, and closes the write-ahead log. After Close
// the directory has exactly one consistent owner-less state, so another
// Open (a hot-swap reload) can take it over safely. The in-memory state
// stays readable — in-flight queries on pinned snapshots are unaffected
// — but later appends are no longer made durable.
func (s *Store) Close() error {
	s.StopCompactor()
	s.closed.Store(true)
	// Drain barriers: an in-flight direct Compact call holds compactMu
	// through its manifest write, and an in-flight persistSealed holds
	// d.mu through its file writes. Once both are acquired here, every
	// writer that slipped past the closed flag has finished and every
	// later one re-checks the flag under the mutex it holds.
	s.compactMu.Lock()
	s.compactMu.Unlock() //nolint:staticcheck // empty critical section is the point
	// Append/AppendAll/Flush check the closed flag under s.mu before
	// touching the WAL, so draining s.mu here guarantees no straggler
	// ingest write reaches the log after it closes below; the writer
	// instead observes the flag and returns ErrClosed.
	s.mu.Lock()
	s.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	if s.dur == nil {
		return nil
	}
	s.dur.mu.Lock()
	s.dur.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	err := s.dur.wal.Close()
	if lerr := s.dur.lock.Release(); err == nil {
		err = lerr
	}
	return err
}

// DurableStats describes the store's on-disk footprint and the durable
// subsystem's activity. Zero-valued (except compaction counters) for
// in-memory stores.
type DurableStats struct {
	Dir               string `json:"dir,omitempty"`
	SegmentFiles      int    `json:"segment_files"`
	SegmentFileBytes  int64  `json:"segment_file_bytes"`
	WALBytes          int64  `json:"wal_bytes"`
	WALRecords        uint64 `json:"wal_records"`
	WALSyncs          uint64 `json:"wal_syncs"`
	ManifestEdition   uint64 `json:"manifest_edition"`
	ManifestDeltas    int64  `json:"manifest_delta_bytes"`
	Compactions       uint64 `json:"compactions"`
	SegmentsCompacted uint64 `json:"segments_compacted"`
	LastError         string `json:"last_error,omitempty"`
}

// DurableStats reports the durable subsystem's figures.
func (s *Store) DurableStats() DurableStats {
	st := DurableStats{
		Compactions:       s.compactions.Load(),
		SegmentsCompacted: s.segsCompacted.Load(),
	}
	d := s.dur
	if d == nil {
		return st
	}
	st.Dir = d.dir
	d.mu.Lock()
	st.ManifestEdition = d.edition
	st.SegmentFiles = len(d.persisted)
	for _, ps := range d.persisted {
		st.SegmentFileBytes += ps.bytes
	}
	d.mu.Unlock()
	st.ManifestDeltas = durable.ManifestDeltaSize(d.dir)
	st.WALBytes = d.wal.Size()
	st.WALRecords = d.wal.Records()
	st.WALSyncs = d.wal.Syncs()
	if err := d.lastError(); err != nil {
		st.LastError = err.Error()
	}
	return st
}
