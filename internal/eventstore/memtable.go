package eventstore

import (
	"unsafe"

	"github.com/aiql/aiql/internal/sysmon"
)

// memtable is a hypertable chunk's active write buffer: committed events
// accumulate here until a seal turns them into an immutable Segment.
//
// Mutation always happens under the Store's write lock, but snapshot
// readers iterate frozen MemViews of the table with no lock held. The
// invariant that makes that safe is copy-on-write for the committed
// prefix: an in-order batch extends the slice with append (writes land
// past every frozen view's length), and an out-of-order batch builds a
// freshly merged slice instead of sorting in place, so the backing array
// a MemView captured is never rewritten.
type memtable struct {
	events []sysmon.Event // sorted by StartTS
	minTS  int64
	maxTS  int64
}

// appendBatch adds a batch (already sorted by StartTS) to the memtable,
// preserving global sort order without mutating the committed prefix.
func (m *memtable) appendBatch(evs []sysmon.Event) {
	if len(evs) == 0 {
		return
	}
	if len(m.events) == 0 {
		m.events = append(m.events, evs...)
		m.minTS = m.events[0].StartTS
		m.maxTS = m.events[len(m.events)-1].StartTS
		return
	}
	if evs[0].StartTS >= m.maxTS {
		// common case: agents deliver roughly in order
		m.events = append(m.events, evs...)
	} else {
		// out-of-order batch: merge into a fresh slice; frozen views keep
		// reading the old backing array untouched
		merged := make([]sysmon.Event, 0, len(m.events)+len(evs))
		i, j := 0, 0
		for i < len(m.events) && j < len(evs) {
			if m.events[i].StartTS <= evs[j].StartTS {
				merged = append(merged, m.events[i])
				i++
			} else {
				merged = append(merged, evs[j])
				j++
			}
		}
		merged = append(merged, m.events[i:]...)
		merged = append(merged, evs[j:]...)
		m.events = merged
	}
	if evs[0].StartTS < m.minTS {
		m.minTS = evs[0].StartTS
	}
	if last := m.events[len(m.events)-1].StartTS; last > m.maxTS {
		m.maxTS = last
	}
}

// view freezes the memtable's current contents. The returned MemView
// stays valid and immutable regardless of later appends or seals.
func (m *memtable) view() MemView {
	return MemView{events: m.events, minTS: m.minTS, maxTS: m.maxTS}
}

// MemView is a frozen, read-only view of a chunk's memtable — the
// unsealed tail a snapshot scans fresh on every query (it has no stable
// identity to cache under, unlike a sealed Segment).
type MemView struct {
	events []sysmon.Event
	minTS  int64
	maxTS  int64
}

// Len returns the number of events in the view.
func (v *MemView) Len() int { return len(v.events) }

// TimeRange returns the minimum and maximum start timestamps.
func (v *MemView) TimeRange() (int64, int64) { return v.minTS, v.maxTS }

// Events exposes the view's raw events. The slice is immutable and must
// not be modified.
func (v *MemView) Events() []sysmon.Event { return v.events }

// ApproxBytes estimates the view's resident event-array footprint.
func (v *MemView) ApproxBytes() uint64 {
	return uint64(len(v.events)) * uint64(unsafe.Sizeof(sysmon.Event{}))
}

// overlaps reports whether the view's time range intersects [from, to).
func (v *MemView) overlaps(from, to int64) bool {
	if len(v.events) == 0 {
		return false
	}
	if from != 0 && v.maxTS < from {
		return false
	}
	if to != 0 && v.minTS >= to {
		return false
	}
	return true
}

// scan calls fn for every event passing the filter, in start-timestamp
// order; memtables are small (bounded by the seal threshold), so the
// scan is always the time-bounded sequential path. It returns false if
// fn aborted the scan.
func (v *MemView) scan(f *EventFilter, ops *[sysmon.NumOperations]bool, agents map[uint32]struct{}, fn func(*sysmon.Event) bool) bool {
	lo, hi := timeSlice(v.events, f.From, f.To)
	for i := lo; i < hi; i++ {
		ev := &v.events[i]
		if f.matches(ev, ops, agents) {
			if !fn(ev) {
				return false
			}
		}
	}
	return true
}

// estimate returns an upper bound on matching events: the time-sliced
// view size (memtables carry no posting indexes).
func (v *MemView) estimate(f *EventFilter) int {
	lo, hi := timeSlice(v.events, f.From, f.To)
	if hi < lo {
		return 0
	}
	return hi - lo
}
