package eventstore

import (
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/aiql/aiql/internal/durable"
	"github.com/aiql/aiql/internal/sysmon"
)

// Segment is one sealed, immutable run of events for a hypertable chunk:
// the unit of the store's LSM-style layout. A segment's events are sorted
// by start timestamp and never change after sealing, so readers touch it
// without any lock, and per-segment scan results can be cached by
// (filter, segment id) and reused verbatim across appends.
//
// Posting indexes (entity → event positions, operation histogram) are
// built once, outside the store's write lock, after the segment becomes
// visible: a seal never stalls concurrent appends or queries on index
// maintenance. Until the build finishes, scans fall back to the
// (time-bounded) sequential path; the ready flag publishes the indexes
// with release/acquire semantics.
type Segment struct {
	id     uint64
	key    PartKey
	events []sysmon.Event // sorted by StartTS; immutable after seal
	minTS  int64
	maxTS  int64
	// minEventID/maxEventID bound the contained event IDs. Events are
	// routed to a chunk in ID (arrival) order and a seal moves the
	// whole memtable, so a chunk's sealed events are always an
	// ID-prefix of its event stream — which is what lets WAL recovery
	// skip exactly the records a persisted segment already covers.
	minEventID uint64
	maxEventID uint64

	indexed    bool // whether posting indexes are wanted at all
	buildOnce  sync.Once
	ready      atomic.Bool
	postingSub map[sysmon.EntityID][]int32
	postingObj map[sysmon.EntityID][]int32
	opCount    [sysmon.NumOperations]int

	// keysOnce/scanKeys is the packed scan-key column for the batch
	// filter path (see batch.go), built lazily on the segment's first
	// batch scan: one word per event instead of the whole 56-byte
	// struct, so the dense predicate pass streams ~7x less memory.
	keysOnce sync.Once
	scanKeys []uint64
}

// keyColumn returns the segment's packed scan-key column, building it
// on first use. Sealed segments are immutable, so the column is built
// once and shared by every concurrent scan.
func (g *Segment) keyColumn() []uint64 {
	g.keysOnce.Do(func() {
		keys := make([]uint64, len(g.events))
		for i := range g.events {
			ev := &g.events[i]
			keys[i] = scanKey(ev.AgentID, ev.Op, ev.ObjType)
		}
		g.scanKeys = keys
	})
	return g.scanKeys
}

// newSegment seals a sorted event run into an immutable segment. The
// caller must not retain write access to events.
func newSegment(id uint64, key PartKey, events []sysmon.Event, indexed bool) *Segment {
	g := &Segment{id: id, key: key, events: events, indexed: indexed}
	if len(events) > 0 {
		g.minTS = events[0].StartTS
		g.maxTS = events[len(events)-1].StartTS
		g.minEventID, g.maxEventID = events[0].ID, events[0].ID
		for i := range events {
			if id := events[i].ID; id < g.minEventID {
				g.minEventID = id
			} else if id > g.maxEventID {
				g.maxEventID = id
			}
		}
	}
	return g
}

// restoreSegment rebuilds a sealed segment from its persisted form. The
// posting indexes come straight from the file when present (and wanted),
// so a load performs no index rebuild: the segment is ready to serve
// indexed scans — and segment-granular cache reuse — immediately.
func restoreSegment(d *durable.SegmentData, indexed bool) *Segment {
	g := newSegment(d.ID, PartKey{AgentID: d.AgentID, Bucket: d.Bucket}, d.Events, indexed)
	if indexed && d.Indexed {
		g.postingSub = d.PostingSub
		g.postingObj = d.PostingObj
		for op, c := range d.OpCount {
			if op < sysmon.NumOperations {
				g.opCount[op] = c
			}
		}
		g.ready.Store(true)
	}
	return g
}

// segmentData exports the segment's persisted form. The events and
// posting slices are shared, not copied: both sides are immutable.
func (g *Segment) segmentData() *durable.SegmentData {
	d := &durable.SegmentData{
		ID:         g.id,
		AgentID:    g.key.AgentID,
		Bucket:     g.key.Bucket,
		Events:     g.events,
		MinEventID: g.minEventID,
		MaxEventID: g.maxEventID,
	}
	if g.indexed && g.ready.Load() {
		d.Indexed = true
		d.PostingSub = g.postingSub
		d.PostingObj = g.postingObj
		d.OpCount = append([]int(nil), g.opCount[:]...)
	}
	return d
}

// ID returns the segment's store-wide unique, monotonically assigned id.
func (g *Segment) ID() uint64 { return g.id }

// Key returns the hypertable chunk the segment belongs to.
func (g *Segment) Key() PartKey { return g.key }

// Len returns the number of events in the segment.
func (g *Segment) Len() int { return len(g.events) }

// TimeRange returns the minimum and maximum start timestamps.
func (g *Segment) TimeRange() (int64, int64) { return g.minTS, g.maxTS }

// Events exposes the segment's raw events. The slice is immutable and
// must not be modified.
func (g *Segment) Events() []sysmon.Event { return g.events }

// ApproxBytes estimates the segment's resident event-array footprint
// (posting indexes excluded).
func (g *Segment) ApproxBytes() uint64 {
	return uint64(len(g.events)) * uint64(unsafe.Sizeof(sysmon.Event{}))
}

// buildIndexes constructs the posting lists and operation histogram.
// It is idempotent and safe to call concurrently; the store calls it
// after sealing, with no locks held.
func (g *Segment) buildIndexes() {
	if !g.indexed || g.ready.Load() {
		return // unindexed, or restored with prebuilt indexes
	}
	g.buildOnce.Do(func() {
		g.postingSub = make(map[sysmon.EntityID][]int32)
		g.postingObj = make(map[sysmon.EntityID][]int32)
		for i := range g.events {
			ev := &g.events[i]
			g.postingSub[ev.Subject] = append(g.postingSub[ev.Subject], int32(i))
			g.postingObj[ev.Object] = append(g.postingObj[ev.Object], int32(i))
			g.opCount[ev.Op]++
		}
		g.ready.Store(true)
	})
}

// overlaps reports whether the segment's time range intersects [from, to).
func (g *Segment) overlaps(from, to int64) bool {
	if len(g.events) == 0 {
		return false
	}
	if from != 0 && g.maxTS < from {
		return false
	}
	if to != 0 && g.minTS >= to {
		return false
	}
	return true
}

// scan calls fn for every event passing the filter, in start-timestamp
// order. It returns false if fn aborted the scan.
//
// With indexes built, the scan picks the cheapest access path: the
// shorter of the subject/object posting lists restricted by the filter's
// entity sets, falling back to a (time-bounded) sequential scan.
func (g *Segment) scan(f *EventFilter, ops *[sysmon.NumOperations]bool, agents map[uint32]struct{}, fn func(*sysmon.Event) bool) bool {
	if g.indexed && g.ready.Load() {
		if list, ok := g.bestPostingList(f); ok {
			for _, pos := range list {
				ev := &g.events[pos]
				if f.matches(ev, ops, agents) {
					if !fn(ev) {
						return false
					}
				}
			}
			return true
		}
	}
	lo, hi := timeSlice(g.events, f.From, f.To)
	for i := lo; i < hi; i++ {
		ev := &g.events[i]
		if f.matches(ev, ops, agents) {
			if !fn(ev) {
				return false
			}
		}
	}
	return true
}

// bestPostingList merges the posting lists of the smaller bound entity
// set (subject or object) when the filter constrains one to a small set.
// The merged list preserves position order so scans stay time-ordered.
func (g *Segment) bestPostingList(f *EventFilter) ([]int32, bool) {
	const postingLimit = 512 // beyond this, sequential scan wins
	subLen, objLen := f.Subjects.Len(), f.Objects.Len()
	useSub := subLen >= 0 && subLen <= postingLimit
	useObj := objLen >= 0 && objLen <= postingLimit
	if useSub && useObj && objLen < subLen {
		useSub = false
	}
	switch {
	case useSub:
		return mergePostings(g.postingSub, f.Subjects), true
	case useObj:
		return mergePostings(g.postingObj, f.Objects), true
	}
	return nil, false
}

func mergePostings(postings map[sysmon.EntityID][]int32, set *IDSet) []int32 {
	var out []int32
	for _, id := range set.IDs() {
		out = append(out, postings[id]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// estimate returns an upper bound on how many events in the segment can
// match the filter, using the op histogram and posting-list lengths when
// the indexes are built, else the (time-sliced) segment size.
func (g *Segment) estimate(f *EventFilter) int {
	lo, hi := timeSlice(g.events, f.From, f.To)
	n := hi - lo
	if n <= 0 {
		return 0
	}
	if !g.indexed || !g.ready.Load() {
		return n
	}
	if len(f.Ops) > 0 {
		opN := 0
		for _, op := range f.Ops {
			if int(op) < sysmon.NumOperations {
				opN += g.opCount[op]
			}
		}
		if opN < n {
			n = opN
		}
	}
	if s := postingEstimate(g.postingSub, f.Subjects, lo, hi); s >= 0 && s < n {
		n = s
	}
	if s := postingEstimate(g.postingObj, f.Objects, lo, hi); s >= 0 && s < n {
		n = s
	}
	return n
}

// postingEstimate sums the posting-list lengths for the set's entities,
// clamped to the [lo, hi) position range of the filter's time slice:
// a window that excludes most of the segment must not be charged for
// postings it can never touch. Posting lists are position-sorted, so
// the clamp is two binary searches per list.
func postingEstimate(postings map[sysmon.EntityID][]int32, set *IDSet, lo, hi int) int {
	l := set.Len()
	if l < 0 {
		return -1
	}
	const estimateLimit = 4096 // cap the work spent estimating
	if l > estimateLimit {
		return -1
	}
	total := 0
	for id := range set.m {
		list := postings[id]
		if lo > 0 {
			list = list[sort.Search(len(list), func(i int) bool { return int(list[i]) >= lo }):]
		}
		if len(list) > 0 && int(list[len(list)-1]) >= hi {
			list = list[:sort.Search(len(list), func(i int) bool { return int(list[i]) >= hi })]
		}
		total += len(list)
	}
	return total
}

// timeSlice returns the index range [lo, hi) of events whose start
// timestamps fall in [from, to), using binary search over a sorted run.
func timeSlice(events []sysmon.Event, from, to int64) (int, int) {
	lo, hi := 0, len(events)
	if from != 0 {
		lo = sort.Search(len(events), func(i int) bool { return events[i].StartTS >= from })
	}
	if to != 0 {
		hi = sort.Search(len(events), func(i int) bool { return events[i].StartTS >= to })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
