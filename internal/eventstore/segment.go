package eventstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/aiql/aiql/internal/durable"
	"github.com/aiql/aiql/internal/sysmon"
)

// Segment is one sealed, immutable run of events for a hypertable chunk:
// the unit of the store's LSM-style layout. A segment's events are sorted
// by start timestamp and never change after sealing, so readers touch it
// without any lock, and per-segment scan results can be cached by
// (filter, segment id) and reused verbatim across appends.
//
// A segment has two backings. Freshly sealed segments own their event
// array on the heap. Segments restored from v2 files keep only a
// durable.SegmentReader over the mmap'd file: count and bounds come
// from the footer, the scan-key and timestamp columns are zero-copy
// views of the mapping, per-attribute columns decode lazily through the
// store's block cache, and the AoS event array materializes only if a
// caller actually needs whole events (gob export, compaction merges,
// posting-path scans). Resident memory for a cold dataset is therefore
// metadata, not data.
//
// Posting indexes (entity → event positions, operation histogram) are
// built once, outside the store's write lock, after the segment becomes
// visible: a seal never stalls concurrent appends or queries on index
// maintenance. Until the build finishes, scans fall back to the
// (time-bounded) sequential path; the ready flag publishes the indexes
// with release/acquire semantics. For reader-backed segments the
// "build" is a lazy load of the file's index section, triggered the
// first time a filter could profit from it.
type Segment struct {
	id    uint64
	key   PartKey
	count int
	// events is the AoS event array: always set for heap-sealed
	// segments, lazily materialized (evOnce/evDone) for reader-backed
	// ones. Read it through loadedEvents/materialize only.
	events []sysmon.Event
	minTS  int64
	maxTS  int64
	// minEventID/maxEventID bound the contained event IDs. Events are
	// routed to a chunk in ID (arrival) order and a seal moves the
	// whole memtable, so a chunk's sealed events are always an
	// ID-prefix of its event stream — which is what lets WAL recovery
	// skip exactly the records a persisted segment already covers.
	minEventID uint64
	maxEventID uint64

	indexed    bool // whether posting indexes are wanted at all
	buildOnce  sync.Once
	ready      atomic.Bool
	postingSub map[sysmon.EntityID][]int32
	postingObj map[sysmon.EntityID][]int32
	opCount    [sysmon.NumOperations]int
	// opsReady publishes opCount independently of the posting maps:
	// v2 files persist the histogram in the block directory, so
	// estimates use it without loading the index section. Atomic
	// because the heap build path sets it concurrently with estimates.
	opsReady atomic.Bool

	// keysOnce/scanKeys is the packed scan-key column for the batch
	// filter path (see batch.go), built lazily on the segment's first
	// batch scan: one word per event instead of the whole 56-byte
	// struct, so the dense predicate pass streams ~7x less memory. For
	// reader-backed segments it is a zero-copy cast of the file's key
	// column.
	keysOnce sync.Once
	scanKeys []uint64

	// File backing (nil for heap-sealed segments). For lazily restored
	// segments the pointer stays nil until openOnce runs: every bound a
	// cold segment needs (count, time range, ID range) came from the
	// manifest ref, so a reopening store defers even the file open —
	// and its syscalls — until a scan actually touches the segment.
	// Access through fileReader (forces the open) or reader (peeks).
	rd       atomic.Pointer[durable.SegmentReader]
	lazyPath string
	openOnce sync.Once
	bc       *BlockCache
	onErr    func(error)

	evOnce sync.Once
	evDone atomic.Bool

	tsOnce sync.Once
	tsCol  []int64
}

// fileBacked reports whether the segment's authoritative data lives in
// a segment file (opened or not) rather than on the heap.
func (g *Segment) fileBacked() bool { return g.lazyPath != "" || g.rd.Load() != nil }

// fileReader returns the segment's reader, opening the file on first
// use for lazily restored segments. It returns nil for heap-backed
// segments, for lazily opened files that turned out to be v1 (their
// events are installed eagerly instead), and after a failed open (the
// error is recorded and the data reads as absent).
func (g *Segment) fileReader() *durable.SegmentReader {
	if g.lazyPath == "" {
		return g.rd.Load()
	}
	g.openOnce.Do(func() {
		op, err := durable.OpenSegment(g.lazyPath)
		if err != nil {
			g.fail(err)
			return
		}
		if rd := op.V2; rd != nil {
			if rd.ID != g.id || rd.Count != g.count {
				g.fail(fmt.Errorf("segment file %s does not match manifest (id %d vs %d, %d events vs %d)",
					g.lazyPath, rd.ID, g.id, rd.Count, g.count))
				return
			}
			if g.indexed && rd.Indexed {
				for op, c := range rd.OpCount {
					if op < sysmon.NumOperations {
						g.opCount[op] = c
					}
				}
				g.opsReady.Store(true)
			}
			g.rd.Store(rd)
			return
		}
		// The format hint was stale: a v1 file decodes eagerly, exactly
		// as if it had been restored at open.
		sd := op.V1
		if sd.ID != g.id || len(sd.Events) != g.count {
			g.fail(fmt.Errorf("segment file %s does not match manifest (id %d vs %d, %d events vs %d)",
				g.lazyPath, sd.ID, g.id, len(sd.Events), g.count))
			return
		}
		g.events = sd.Events
		if g.indexed && sd.Indexed {
			g.postingSub = sd.PostingSub
			g.postingObj = sd.PostingObj
			for op, c := range sd.OpCount {
				if op < sysmon.NumOperations {
					g.opCount[op] = c
				}
			}
			g.opsReady.Store(true)
			g.ready.Store(true)
		}
		g.evDone.Store(true)
	})
	return g.rd.Load()
}

// fail records a lazy-decode failure (corrupt block reached by a scan)
// with the owning store; the scan treats the unreadable data as absent.
func (g *Segment) fail(err error) {
	if g.onErr != nil {
		g.onErr(err)
	}
}

// keyColumn returns the segment's packed scan-key column, building it
// on first use. Sealed segments are immutable, so the column is built
// once and shared by every concurrent scan. Reader-backed segments cast
// the mapped key column in place; nil is returned (and the error
// recorded) if the column is unreadable.
func (g *Segment) keyColumn() []uint64 {
	g.keysOnce.Do(func() {
		if rd := g.fileReader(); rd != nil {
			col, err := rd.Column(durable.ColKey)
			if err != nil {
				g.fail(err)
				return
			}
			if keys, ok := durable.AsUint64s(col); ok {
				g.scanKeys = keys
				return
			}
			keys := make([]uint64, len(col)/8)
			for i := range keys {
				keys[i] = binary.LittleEndian.Uint64(col[i*8:])
			}
			g.scanKeys = keys
			return
		}
		keys := make([]uint64, len(g.events))
		for i := range g.events {
			ev := &g.events[i]
			keys[i] = scanKey(ev.AgentID, ev.Op, ev.ObjType)
		}
		g.scanKeys = keys
	})
	return g.scanKeys
}

// tsColumn returns the StartTS column for reader-backed segments
// (zero-copy from the mapping when aligned). Heap-backed segments use
// their event array directly and never call this.
func (g *Segment) tsColumn() []int64 {
	g.tsOnce.Do(func() {
		rd := g.fileReader()
		if rd == nil {
			return
		}
		col, err := rd.Column(durable.ColStartTS)
		if err != nil {
			g.fail(err)
			return
		}
		if ts, ok := durable.AsInt64s(col); ok {
			g.tsCol = ts
			return
		}
		ts := make([]int64, len(col)/8)
		for i := range ts {
			ts[i] = int64(binary.LittleEndian.Uint64(col[i*8:]))
		}
		g.tsCol = ts
	})
	return g.tsCol
}

// loadedEvents returns the AoS event array if it is resident, nil
// otherwise — the batch path uses it to choose between the in-memory
// kernels and the columnar gather path, without forcing a materialize.
func (g *Segment) loadedEvents() []sysmon.Event {
	if !g.fileBacked() || g.evDone.Load() {
		return g.events
	}
	return nil
}

// materialize returns the full AoS event array, decoding the segment
// file on first call. On decode failure the error is recorded and an
// empty array is returned: unreadable data reads as absent.
func (g *Segment) materialize() []sysmon.Event {
	if !g.fileBacked() || g.evDone.Load() {
		return g.events
	}
	g.evOnce.Do(func() {
		rd := g.fileReader()
		if rd == nil {
			// Open failed (data reads as absent), or a lazily opened v1
			// file already installed its events.
			return
		}
		evs, err := rd.MaterializeEvents()
		if err != nil {
			g.fail(err)
			evs = nil
		}
		g.events = evs
		g.evDone.Store(true)
	})
	return g.events
}

// newSegment seals a sorted event run into an immutable segment. The
// caller must not retain write access to events.
func newSegment(id uint64, key PartKey, events []sysmon.Event, indexed bool) *Segment {
	g := &Segment{id: id, key: key, events: events, count: len(events), indexed: indexed}
	if len(events) > 0 {
		g.minTS = events[0].StartTS
		g.maxTS = events[len(events)-1].StartTS
		g.minEventID, g.maxEventID = events[0].ID, events[0].ID
		for i := range events {
			if id := events[i].ID; id < g.minEventID {
				g.minEventID = id
			} else if id > g.maxEventID {
				g.maxEventID = id
			}
		}
	}
	return g
}

// restoreSegment rebuilds a sealed segment from its eager (v1) persisted
// form. The posting indexes come straight from the file when present
// (and wanted), so a load performs no index rebuild: the segment is
// ready to serve indexed scans — and segment-granular cache reuse —
// immediately.
func restoreSegment(d *durable.SegmentData, indexed bool) *Segment {
	g := newSegment(d.ID, PartKey{AgentID: d.AgentID, Bucket: d.Bucket}, d.Events, indexed)
	if indexed && d.Indexed {
		g.postingSub = d.PostingSub
		g.postingObj = d.PostingObj
		for op, c := range d.OpCount {
			if op < sysmon.NumOperations {
				g.opCount[op] = c
			}
		}
		g.opsReady.Store(true)
		g.ready.Store(true)
	}
	return g
}

// restoreSegmentFromReader wraps an opened v2 segment file without
// decoding any event data: count, time range, and ID bounds come from
// the footer, the op histogram from the block directory. Columns and
// posting lists load lazily; bc (may be nil) caches decoded blocks and
// onErr receives lazy decode failures.
func restoreSegmentFromReader(rd *durable.SegmentReader, indexed bool, bc *BlockCache, onErr func(error)) *Segment {
	g := &Segment{
		id:         rd.ID,
		key:        PartKey{AgentID: rd.AgentID, Bucket: rd.Bucket},
		count:      rd.Count,
		minTS:      rd.MinTS,
		maxTS:      rd.MaxTS,
		minEventID: rd.MinEventID,
		maxEventID: rd.MaxEventID,
		indexed:    indexed,
		bc:         bc,
		onErr:      onErr,
	}
	g.rd.Store(rd)
	if indexed && rd.Indexed {
		for op, c := range rd.OpCount {
			if op < sysmon.NumOperations {
				g.opCount[op] = c
			}
		}
		g.opsReady.Store(true)
	}
	return g
}

// restoreSegmentLazy rebuilds a sealed segment from its manifest ref
// alone, without opening the segment file: count, time range, and ID
// bounds all come from the ref, so a reopening store pays zero per-file
// syscalls until a scan first touches the segment. The manifest's
// Format hint says the file is v2; if the hint turns out stale, the
// first access falls back to an eager v1 decode.
func restoreSegmentLazy(ref *durable.SegmentRef, path string, indexed bool, bc *BlockCache, onErr func(error)) *Segment {
	return &Segment{
		id:         ref.ID,
		key:        PartKey{AgentID: ref.AgentID, Bucket: ref.Bucket},
		count:      ref.Events,
		minTS:      ref.MinTS,
		maxTS:      ref.MaxTS,
		minEventID: ref.MinEventID,
		maxEventID: ref.MaxEventID,
		indexed:    indexed,
		lazyPath:   path,
		bc:         bc,
		onErr:      onErr,
	}
}

// reader peeks at the segment's file backing without forcing a lazy
// open (nil when heap-resident or not yet opened).
func (g *Segment) reader() *durable.SegmentReader { return g.rd.Load() }

// segmentData exports the segment's persisted form. The events and
// posting slices are shared, not copied: both sides are immutable.
// Reader-backed segments materialize first.
func (g *Segment) segmentData() *durable.SegmentData {
	d := &durable.SegmentData{
		ID:         g.id,
		AgentID:    g.key.AgentID,
		Bucket:     g.key.Bucket,
		Events:     g.materialize(),
		MinEventID: g.minEventID,
		MaxEventID: g.maxEventID,
	}
	if g.indexed && g.ready.Load() {
		d.Indexed = true
		d.PostingSub = g.postingSub
		d.PostingObj = g.postingObj
		d.OpCount = append([]int(nil), g.opCount[:]...)
	}
	return d
}

// ID returns the segment's store-wide unique, monotonically assigned id.
func (g *Segment) ID() uint64 { return g.id }

// Key returns the hypertable chunk the segment belongs to.
func (g *Segment) Key() PartKey { return g.key }

// Len returns the number of events in the segment.
func (g *Segment) Len() int { return g.count }

// TimeRange returns the minimum and maximum start timestamps.
func (g *Segment) TimeRange() (int64, int64) { return g.minTS, g.maxTS }

// Events exposes the segment's raw events, materializing a
// reader-backed segment on first call. The slice is immutable and must
// not be modified.
func (g *Segment) Events() []sysmon.Event { return g.materialize() }

// ApproxBytes estimates the segment's resident heap footprint for the
// event data (posting indexes excluded). A reader-backed segment that
// has not materialized holds no AoS array, so its heap cost is ~zero —
// the mapped file is accounted separately (see StorageStats).
func (g *Segment) ApproxBytes() uint64 {
	if g.fileBacked() && !g.evDone.Load() {
		return 0
	}
	return uint64(g.count) * uint64(unsafe.Sizeof(sysmon.Event{}))
}

// buildIndexes constructs the posting lists and operation histogram.
// It is idempotent and safe to call concurrently; the store calls it
// after sealing, with no locks held. Reader-backed segments whose file
// carries indexes defer to the lazy load instead of rebuilding.
func (g *Segment) buildIndexes() {
	if !g.indexed || g.ready.Load() {
		return // unindexed, or restored with prebuilt indexes
	}
	if g.fileBacked() {
		if rd := g.fileReader(); rd != nil && rd.Indexed {
			g.ensureIndexes()
			return
		}
		if g.ready.Load() {
			return // lazily opened v1 file installed prebuilt indexes
		}
	}
	g.buildOnce.Do(func() {
		events := g.materialize()
		g.postingSub = make(map[sysmon.EntityID][]int32)
		g.postingObj = make(map[sysmon.EntityID][]int32)
		for i := range events {
			ev := &events[i]
			g.postingSub[ev.Subject] = append(g.postingSub[ev.Subject], int32(i))
			g.postingObj[ev.Object] = append(g.postingObj[ev.Object], int32(i))
			g.opCount[ev.Op]++
		}
		g.opsReady.Store(true)
		g.ready.Store(true)
	})
}

// ensureIndexes makes the posting indexes available if they can be had
// without a rebuild, loading a reader-backed segment's index section on
// first need. Returns whether indexed scans may proceed.
func (g *Segment) ensureIndexes() bool {
	if !g.indexed {
		return false
	}
	if g.ready.Load() {
		return true
	}
	if !g.fileBacked() {
		return false // heap segments index in the background post-seal
	}
	rd := g.fileReader()
	if g.ready.Load() {
		return true // lazily opened v1 file installed prebuilt indexes
	}
	if rd == nil || !rd.Indexed {
		return false
	}
	g.buildOnce.Do(func() {
		sub, obj, err := rd.ReadIndexes()
		if err != nil {
			g.fail(err)
			return
		}
		g.postingSub = sub
		g.postingObj = obj
		g.ready.Store(true)
	})
	return g.ready.Load()
}

// postingApplicable reports whether the filter constrains an entity set
// tightly enough for the posting path to win — the precondition for
// lazily loading a reader-backed segment's index section at all.
func (g *Segment) postingApplicable(f *EventFilter) bool {
	const postingLimit = 512
	subLen, objLen := f.Subjects.Len(), f.Objects.Len()
	return (subLen >= 0 && subLen <= postingLimit) || (objLen >= 0 && objLen <= postingLimit)
}

// overlaps reports whether the segment's time range intersects [from, to).
func (g *Segment) overlaps(from, to int64) bool {
	if g.count == 0 {
		return false
	}
	if from != 0 && g.maxTS < from {
		return false
	}
	if to != 0 && g.minTS >= to {
		return false
	}
	return true
}

// scan calls fn for every event passing the filter, in start-timestamp
// order. It returns false if fn aborted the scan.
//
// With indexes built, the scan picks the cheapest access path: the
// shorter of the subject/object posting lists restricted by the filter's
// entity sets, falling back to a (time-bounded) sequential scan. The
// callback shape needs whole events, so reader-backed segments
// materialize here; the engine's hot path uses CollectBatch instead,
// which gathers from columns.
func (g *Segment) scan(f *EventFilter, ops *[sysmon.NumOperations]bool, agents map[uint32]struct{}, fn func(*sysmon.Event) bool) bool {
	if g.indexed && (g.ready.Load() || (g.fileBacked() && g.postingApplicable(f) && g.ensureIndexes())) {
		if list, ok := g.bestPostingList(f); ok {
			events := g.materialize()
			for _, pos := range list {
				if int(pos) >= len(events) {
					continue // materialize failed; data reads as absent
				}
				ev := &events[pos]
				if f.matches(ev, ops, agents) {
					if !fn(ev) {
						return false
					}
				}
			}
			return true
		}
	}
	events := g.materialize()
	lo, hi := timeSlice(events, f.From, f.To)
	for i := lo; i < hi; i++ {
		ev := &events[i]
		if f.matches(ev, ops, agents) {
			if !fn(ev) {
				return false
			}
		}
	}
	return true
}

// bestPostingList merges the posting lists of the smaller bound entity
// set (subject or object) when the filter constrains one to a small set.
// The merged list preserves position order so scans stay time-ordered.
func (g *Segment) bestPostingList(f *EventFilter) ([]int32, bool) {
	const postingLimit = 512 // beyond this, sequential scan wins
	subLen, objLen := f.Subjects.Len(), f.Objects.Len()
	useSub := subLen >= 0 && subLen <= postingLimit
	useObj := objLen >= 0 && objLen <= postingLimit
	if useSub && useObj && objLen < subLen {
		useSub = false
	}
	switch {
	case useSub:
		return mergePostings(g.postingSub, f.Subjects), true
	case useObj:
		return mergePostings(g.postingObj, f.Objects), true
	}
	return nil, false
}

func mergePostings(postings map[sysmon.EntityID][]int32, set *IDSet) []int32 {
	var out []int32
	for _, id := range set.IDs() {
		out = append(out, postings[id]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// timeSliceIdx returns the [lo, hi) position range of events in
// [from, to), against whichever timestamp representation is resident:
// the AoS array for heap segments, the mapped StartTS column for
// reader-backed ones.
func (g *Segment) timeSliceIdx(from, to int64) (int, int) {
	// A window covering the whole segment needs no timestamp lookup at
	// all — in particular it never forces a lazy segment's file open.
	if (from == 0 || from <= g.minTS) && (to == 0 || to > g.maxTS) {
		return 0, g.count
	}
	if evs := g.loadedEvents(); evs != nil || !g.fileBacked() {
		return timeSlice(evs, from, to)
	}
	return timeSliceTS(g.tsColumn(), from, to)
}

// estimate returns an upper bound on how many events in the segment can
// match the filter, using the op histogram and posting-list lengths when
// available, else the (time-sliced) segment size. For reader-backed
// segments the histogram is free (persisted in the directory) and the
// posting clamp triggers the lazy index load only when the filter's
// entity sets could actually tighten the bound.
func (g *Segment) estimate(f *EventFilter) int {
	lo, hi := g.timeSliceIdx(f.From, f.To)
	n := hi - lo
	if n <= 0 {
		return 0
	}
	if !g.indexed {
		return n
	}
	if len(f.Ops) > 0 && g.opsReady.Load() {
		opN := 0
		for _, op := range f.Ops {
			if int(op) < sysmon.NumOperations {
				opN += g.opCount[op]
			}
		}
		if opN < n {
			n = opN
		}
	}
	if !g.ready.Load() {
		if !g.postingApplicable(f) || !g.ensureIndexes() {
			return n
		}
	}
	if s := postingEstimate(g.postingSub, f.Subjects, lo, hi); s >= 0 && s < n {
		n = s
	}
	if s := postingEstimate(g.postingObj, f.Objects, lo, hi); s >= 0 && s < n {
		n = s
	}
	return n
}

// postingEstimate sums the posting-list lengths for the set's entities,
// clamped to the [lo, hi) position range of the filter's time slice:
// a window that excludes most of the segment must not be charged for
// postings it can never touch. Posting lists are position-sorted, so
// the clamp is two binary searches per list.
func postingEstimate(postings map[sysmon.EntityID][]int32, set *IDSet, lo, hi int) int {
	l := set.Len()
	if l < 0 {
		return -1
	}
	const estimateLimit = 4096 // cap the work spent estimating
	if l > estimateLimit {
		return -1
	}
	total := 0
	for id := range set.m {
		list := postings[id]
		if lo > 0 {
			list = list[sort.Search(len(list), func(i int) bool { return int(list[i]) >= lo }):]
		}
		if len(list) > 0 && int(list[len(list)-1]) >= hi {
			list = list[:sort.Search(len(list), func(i int) bool { return int(list[i]) >= hi })]
		}
		total += len(list)
	}
	return total
}

// timeSlice returns the index range [lo, hi) of events whose start
// timestamps fall in [from, to), using binary search over a sorted run.
func timeSlice(events []sysmon.Event, from, to int64) (int, int) {
	lo, hi := 0, len(events)
	if from != 0 {
		lo = sort.Search(len(events), func(i int) bool { return events[i].StartTS >= from })
	}
	if to != 0 {
		hi = sort.Search(len(events), func(i int) bool { return events[i].StartTS >= to })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// timeSliceTS is timeSlice over a bare timestamp column.
func timeSliceTS(ts []int64, from, to int64) (int, int) {
	lo, hi := 0, len(ts)
	if from != 0 {
		lo = sort.Search(len(ts), func(i int) bool { return ts[i] >= from })
	}
	if to != 0 {
		hi = sort.Search(len(ts), func(i int) bool { return ts[i] >= to })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
