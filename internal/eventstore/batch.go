package eventstore

import (
	"context"
	"encoding/binary"
	"errors"
	"math/bits"
	"slices"

	"github.com/aiql/aiql/internal/durable"
	"github.com/aiql/aiql/internal/sysmon"
)

// errNoReader latches in a column cursor whose segment lost its file
// backing (a lazy open that failed); the data reads as absent.
var errNoReader = errors.New("eventstore: segment file unavailable")

// This file is the batch-oriented scan path: instead of invoking a
// callback per event, a unit's events are filtered a block at a time
// into a selection bitmap — one predicate pass over the whole block,
// then the next pass over the survivors — and only the surviving
// events are copied out. The per-event work for rejected events drops
// to roughly one comparison plus a bit clear, cancellation checks
// amortize to one per block, and the emitted batches are exactly the
// shape the engine's segment scan cache stores.

// batchBlockEvents is the number of events filtered per selection
// bitmap. Small enough that a block's bitmap lives in registers/L1,
// large enough to amortize the per-block pass setup and ctx check.
const batchBlockEvents = 1024

const batchBlockWords = batchBlockEvents / 64

type blockBitmap [batchBlockWords]uint64

// scanKey packs an event's cheap scalar predicates into one word so
// the dense filter pass streams 8 bytes per event instead of the whole
// event struct. Layout: agent in bits 63-32, op in 31-16, object type
// in 15-8; the low byte stays zero. The packing is shared with the v2
// segment format's persisted key column (durable.ColKey), which is what
// lets the bitmap loop read the mmap'd file directly.
func scanKey(agent uint32, op sysmon.Operation, t sysmon.EntityType) uint64 {
	return durable.ScanKey(agent, uint16(op), uint8(t))
}

const (
	scanKeyAgentMask = uint64(0xFFFFFFFF) << 32
	scanKeyOpMask    = uint64(0xFFFF) << 16
	scanKeyTypeMask  = uint64(0xFF) << 8
)

// CompiledFilter carries an EventFilter together with its derived
// lookup structures (op table, agent set, single-value fast paths, and
// the mask/want pair for the packed key column), computed once per
// scan instead of once per unit.
type CompiledFilter struct {
	f      *EventFilter
	ops    *[sysmon.NumOperations]bool
	agents map[uint32]struct{}

	oneAgent    uint32
	hasOneAgent bool
	oneOp       sysmon.Operation
	hasOneOp    bool

	// mask/want fold every single-valued scalar predicate into one
	// masked compare over the key column; multi-valued agent/op sets
	// fall through to the residual set probes (needAgents/needOps).
	mask, want uint64
	needAgents bool
	needOps    bool
}

// Compile precomputes the filter's scan-time lookup structures. The
// filter must not be mutated while the compiled form is in use.
func (f *EventFilter) Compile() *CompiledFilter {
	cf := &CompiledFilter{f: f, ops: f.opSet(), agents: f.agentSet()}
	if len(f.Agents) == 1 {
		cf.oneAgent, cf.hasOneAgent = f.Agents[0], true
	}
	if len(f.Ops) == 1 && int(f.Ops[0]) < sysmon.NumOperations {
		cf.oneOp, cf.hasOneOp = f.Ops[0], true
	}
	switch {
	case cf.hasOneAgent:
		cf.mask |= scanKeyAgentMask
		cf.want |= uint64(cf.oneAgent) << 32
	case cf.agents != nil:
		cf.needAgents = true
	}
	switch {
	case cf.hasOneOp:
		cf.mask |= scanKeyOpMask
		cf.want |= uint64(cf.oneOp) << 16
	case cf.ops != nil:
		cf.needOps = true
	}
	if f.ObjType != sysmon.EntityInvalid {
		cf.mask |= scanKeyTypeMask
		cf.want |= uint64(f.ObjType) << 8
	}
	return cf
}

// CollectBatch gathers the unit's events passing the filter — and the
// keep predicate, when non-nil — into a batch, in start-timestamp
// order. visited counts the events that passed the filter (the same
// events the callback path would visit), and complete is false when
// ctx aborted the scan mid-unit, in which case the partial batch must
// not be cached.
//
// Sealed segments with built indexes take the posting-list path when
// bestPostingList applies (the list is already sparse, so a bitmap
// buys nothing); everything else goes through the block-filtered
// dense path.
func (u *ScanUnit) CollectBatch(ctx context.Context, cf *CompiledFilter, keep func(*sysmon.Event) bool) (batch []sysmon.Event, visited int64, complete bool) {
	return u.CollectBatchInto(ctx, cf, keep, nil)
}

// CollectBatchInto is CollectBatch appending into buf (which must be
// empty but may carry capacity), letting a sequential caller that does
// not retain batches — no scan cache to fill — reuse one scratch
// buffer across units instead of allocating per unit.
func (u *ScanUnit) CollectBatchInto(ctx context.Context, cf *CompiledFilter, keep func(*sysmon.Event) bool, buf []sysmon.Event) (batch []sysmon.Event, visited int64, complete bool) {
	if g := u.seg; g != nil {
		if g.fileBacked() {
			// Resolve a lazily restored segment before choosing a path:
			// the open decides whether events live on the heap (v1
			// fallback) or behind the column reader.
			g.fileReader()
		}
		if g.indexed && (g.ready.Load() || (g.fileBacked() && g.postingApplicable(cf.f) && g.ensureIndexes())) {
			if list, ok := g.bestPostingList(cf.f); ok {
				if events := g.loadedEvents(); events != nil {
					return collectPostings(ctx, events, list, cf, keep, buf)
				}
				return collectPostingsCols(ctx, g, list, cf, keep, buf)
			}
		}
		if events := g.loadedEvents(); events != nil {
			return collectBlocksKeys(ctx, events, g.keyColumn(), cf, keep, buf)
		}
		return collectBlocksCols(ctx, g, cf, keep, buf)
	}
	return collectBlocks(ctx, u.mem.events, cf, keep, buf)
}

// colCursor streams one column of a reader-backed segment by absolute
// event position, memoizing the current decoded block. Scan positions
// are monotonically increasing, so each file block is fetched at most
// once per pass; decoded (non-zero-copy) blocks go through the store's
// block cache so a warm re-scan touches no codec at all. The first
// decode failure latches in err and subsequent reads return zeros — the
// caller checks err at block boundaries and treats the data as absent.
type colCursor struct {
	g       *Segment
	rd      *durable.SegmentReader
	col     int
	blk     int
	data    []byte
	scratch []byte
	err     error
}

func newColCursor(g *Segment, col int) colCursor {
	return colCursor{g: g, rd: g.reader(), col: col, blk: -1}
}

func (c *colCursor) block(blk int) []byte {
	if blk == c.blk {
		return c.data
	}
	g := c.g
	if data, ok := g.bc.get(g.id, uint8(c.col), uint32(blk)); ok {
		c.blk, c.data = blk, data
		return data
	}
	if c.rd == nil {
		c.err = errNoReader
		c.blk, c.data = blk, nil
		return nil
	}
	if c.scratch == nil {
		c.scratch = make([]byte, 0, batchBlockEvents*8)
	}
	data, zeroCopy, err := c.rd.Block(c.col, blk, c.scratch)
	if err != nil {
		c.err = err
		c.blk, c.data = blk, nil
		return nil
	}
	if !zeroCopy && g.bc != nil {
		owned := make([]byte, len(data))
		copy(owned, data)
		g.bc.put(g.id, uint8(c.col), uint32(blk), owned)
		data = owned
	}
	c.blk, c.data = blk, data
	return data
}

func (c *colCursor) u64(pos int) uint64 {
	b := c.block(pos >> 10)
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b[(pos&(batchBlockEvents-1))*8:])
}

func (c *colCursor) u32(pos int) uint32 {
	b := c.block(pos >> 10)
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[(pos&(batchBlockEvents-1))*4:])
}

// gatherEvent assembles one whole event from the per-attribute columns:
// agent, op, and object type unpack from the scan key; the remaining
// fields gather from their column cursors.
type colGather struct {
	g                           *Segment
	ts                          []int64
	id, sub, obj, end, amt, seq colCursor
}

func newColGather(g *Segment, ts []int64) *colGather {
	return &colGather{
		g:   g,
		ts:  ts,
		id:  newColCursor(g, durable.ColID),
		sub: newColCursor(g, durable.ColSubject),
		obj: newColCursor(g, durable.ColObject),
		end: newColCursor(g, durable.ColEndTS),
		amt: newColCursor(g, durable.ColAmount),
		seq: newColCursor(g, durable.ColSeq),
	}
}

func (cg *colGather) event(pos int, key uint64) sysmon.Event {
	return sysmon.Event{
		ID:      cg.id.u64(pos),
		AgentID: uint32(key >> 32),
		Subject: sysmon.EntityID(cg.sub.u32(pos)),
		Op:      sysmon.Operation((key >> 16) & 0xFFFF),
		ObjType: sysmon.EntityType((key >> 8) & 0xFF),
		Object:  sysmon.EntityID(cg.obj.u32(pos)),
		StartTS: cg.ts[pos],
		EndTS:   int64(cg.end.u64(pos)),
		Amount:  cg.amt.u64(pos),
		Seq:     cg.seq.u64(pos),
	}
}

// cursorErr returns the first decode failure across the gather's
// cursors, if any.
func (cg *colGather) cursorErr() error {
	for _, c := range []*colCursor{&cg.id, &cg.sub, &cg.obj, &cg.end, &cg.amt, &cg.seq} {
		if c.err != nil {
			return c.err
		}
	}
	return nil
}

// collectPostings walks a merged posting list (position-sorted, so the
// output stays time-ordered), re-checking the full filter per entry:
// posting lists are keyed on one endpoint only.
func collectPostings(ctx context.Context, events []sysmon.Event, list []int32, cf *CompiledFilter, keep func(*sysmon.Event) bool, buf []sysmon.Event) (batch []sysmon.Event, visited int64, complete bool) {
	batch = buf
	for n, pos := range list {
		if n%scanCheckInterval == scanCheckInterval-1 && ctx.Err() != nil {
			return batch, visited, false
		}
		ev := &events[pos]
		if !cf.f.matches(ev, cf.ops, cf.agents) {
			continue
		}
		visited++
		if keep == nil || keep(ev) {
			batch = append(batch, *ev)
		}
	}
	return batch, visited, true
}

// collectBlocks runs the dense path: time-slice the sorted run, then
// filter each block through selection-bitmap predicate passes. Events
// inside the slice already satisfy From/To (the run is sorted by
// StartTS), so the time predicates need no pass.
func collectBlocks(ctx context.Context, events []sysmon.Event, cf *CompiledFilter, keep func(*sysmon.Event) bool, buf []sysmon.Event) (batch []sysmon.Event, visited int64, complete bool) {
	batch = buf
	lo, hi := timeSlice(events, cf.f.From, cf.f.To)
	var sel blockBitmap
	for base := lo; base < hi; base += batchBlockEvents {
		if ctx.Err() != nil {
			return batch, visited, false
		}
		n := hi - base
		if n > batchBlockEvents {
			n = batchBlockEvents
		}
		blk := events[base : base+n]
		live := filterBlock(blk, cf, &sel)
		if live == 0 {
			continue
		}
		visited += int64(live)
		// Grow for this block's survivors in one step: the append loop
		// below would otherwise reallocate along the doubling chain,
		// which dominates the cold path's allocation cost.
		batch = slices.Grow(batch, live)
		words := (n + 63) / 64
		for w := 0; w < words; w++ {
			for b := sel[w]; b != 0; b &= b - 1 {
				ev := &blk[w<<6+bits.TrailingZeros64(b)]
				if keep == nil || keep(ev) {
					batch = append(batch, *ev)
				}
			}
		}
	}
	return batch, visited, true
}

// collectBlocksKeys is the sealed-segment dense path: like
// collectBlocks, but the scalar predicates run over the segment's
// packed key column — one masked compare per event streaming 8 bytes
// instead of the 56-byte struct — and only surviving events are read
// from the event array.
func collectBlocksKeys(ctx context.Context, events []sysmon.Event, keys []uint64, cf *CompiledFilter, keep func(*sysmon.Event) bool, buf []sysmon.Event) (batch []sysmon.Event, visited int64, complete bool) {
	batch = buf
	lo, hi := timeSlice(events, cf.f.From, cf.f.To)
	var sel blockBitmap
	for base := lo; base < hi; base += batchBlockEvents {
		if ctx.Err() != nil {
			return batch, visited, false
		}
		n := hi - base
		if n > batchBlockEvents {
			n = batchBlockEvents
		}
		blk := events[base : base+n]
		live := filterBlockKeys(blk, keys[base:base+n], cf, &sel)
		if live == 0 {
			continue
		}
		visited += int64(live)
		// Grow for this block's survivors in one step: the append loop
		// below would otherwise reallocate along the doubling chain.
		batch = slices.Grow(batch, live)
		words := (n + 63) / 64
		for w := 0; w < words; w++ {
			for b := sel[w]; b != 0; b &= b - 1 {
				ev := &blk[w<<6+bits.TrailingZeros64(b)]
				if keep == nil || keep(ev) {
					batch = append(batch, *ev)
				}
			}
		}
	}
	return batch, visited, true
}

// collectBlocksCols is the dense path over a reader-backed (v2)
// segment that has never been materialized: the scalar predicates run
// over the mmap'd scan-key column exactly like collectBlocksKeys, but
// residual set probes and survivor materialization gather from the
// per-attribute column vectors instead of an AoS event array — the
// 56-byte structs are assembled only for events that pass everything
// else. On a decode error the remaining data reads as absent: the
// error is recorded with the store and the batch built so far stands.
func collectBlocksCols(ctx context.Context, g *Segment, cf *CompiledFilter, keep func(*sysmon.Event) bool, buf []sysmon.Event) (batch []sysmon.Event, visited int64, complete bool) {
	batch = buf
	keys := g.keyColumn()
	ts := g.tsColumn()
	if keys == nil || len(ts) != len(keys) {
		return batch, 0, true // column unreadable; recorded by keyColumn
	}
	lo, hi := timeSliceTS(ts, cf.f.From, cf.f.To)
	gather := newColGather(g, ts)
	var sel blockBitmap
	var ev sysmon.Event
	for base := lo; base < hi; base += batchBlockEvents {
		if ctx.Err() != nil {
			return batch, visited, false
		}
		n := hi - base
		if n > batchBlockEvents {
			n = batchBlockEvents
		}
		live := filterBlockKeysCols(keys[base:base+n], base, gather, cf, &sel)
		if err := gather.cursorErr(); err != nil {
			g.fail(err)
			return batch, visited, true
		}
		if live == 0 {
			continue
		}
		visited += int64(live)
		batch = slices.Grow(batch, live)
		mark := len(batch)
		words := (n + 63) / 64
		for w := 0; w < words; w++ {
			for b := sel[w]; b != 0; b &= b - 1 {
				pos := base + w<<6 + bits.TrailingZeros64(b)
				ev = gather.event(pos, keys[pos])
				if keep == nil || keep(&ev) {
					batch = append(batch, ev)
				}
			}
		}
		if err := gather.cursorErr(); err != nil {
			g.fail(err)
			return batch[:mark], visited - int64(live), true
		}
	}
	return batch, visited, true
}

// collectPostingsCols walks a merged posting list gathering candidate
// events from the column vectors, re-checking the full filter per
// entry: posting lists are keyed on one endpoint only. Positions in a
// posting list ascend, so the cursors stream forward here too.
func collectPostingsCols(ctx context.Context, g *Segment, list []int32, cf *CompiledFilter, keep func(*sysmon.Event) bool, buf []sysmon.Event) (batch []sysmon.Event, visited int64, complete bool) {
	batch = buf
	keys := g.keyColumn()
	ts := g.tsColumn()
	if keys == nil || len(ts) != len(keys) {
		return batch, 0, true
	}
	gather := newColGather(g, ts)
	var ev sysmon.Event
	for n, pos := range list {
		if n%scanCheckInterval == scanCheckInterval-1 && ctx.Err() != nil {
			return batch, visited, false
		}
		if int(pos) >= len(keys) {
			continue
		}
		ev = gather.event(int(pos), keys[pos])
		if err := gather.cursorErr(); err != nil {
			g.fail(err)
			return batch, visited, true
		}
		if !cf.f.matches(&ev, cf.ops, cf.agents) {
			continue
		}
		visited++
		if keep == nil || keep(&ev) {
			batch = append(batch, ev)
		}
	}
	return batch, visited, true
}

// filterBlockKeysCols is filterBlockKeys with the residual probes
// (entity sets, amount bound) reading the column vectors at absolute
// positions instead of an AoS block. The dense masked-compare pass over
// the key column is shared verbatim.
func filterBlockKeysCols(keys []uint64, base int, gather *colGather, cf *CompiledFilter, sel *blockBitmap) int {
	n := len(keys)
	words := (n + 63) / 64
	any := filterKeysDense(keys, cf, sel)
	if any == 0 {
		return 0
	}

	if cf.needAgents {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if _, ok := cf.agents[uint32(keys[w<<6+tz]>>32)]; !ok {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
		if any == 0 {
			return 0
		}
	}

	if cf.needOps {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if !cf.ops[sysmon.Operation(keys[w<<6+tz]>>16)&0xFFFF] {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
		if any == 0 {
			return 0
		}
	}

	f := cf.f
	if f.Subjects != nil {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if !f.Subjects.Has(sysmon.EntityID(gather.sub.u32(base + w<<6 + tz))) {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
		if any == 0 {
			return 0
		}
	}

	if f.Objects != nil {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if !f.Objects.Has(sysmon.EntityID(gather.obj.u32(base + w<<6 + tz))) {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
		if any == 0 {
			return 0
		}
	}

	if f.MinAmount != 0 {
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if gather.amt.u64(base+w<<6+tz) < f.MinAmount {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
		}
	}

	live := 0
	for w := 0; w < words; w++ {
		live += bits.OnesCount64(sel[w])
	}
	return live
}

// filterKeysDense runs the masked-compare pass of the key column into
// the selection bitmap (the first, dense stage shared by the AoS-block
// and columnar key paths), returning an any-survivors word.
func filterKeysDense(keys []uint64, cf *CompiledFilter, sel *blockBitmap) uint64 {
	n := len(keys)
	words := (n + 63) / 64
	var any uint64
	if cf.mask != 0 {
		mask, want := cf.mask, cf.want
		base, w := 0, 0
		// Full words unrolled 4-wide into independent accumulators:
		// the compare chains have no carried dependency, so the CPU
		// overlaps them — measurably faster than the rolled loop.
		for ; base+64 <= n; base, w = base+64, w+1 {
			run := keys[base : base+64 : base+64]
			var m0, m1, m2, m3 uint64
			for i := 0; i < 64; i += 4 {
				var b0, b1, b2, b3 uint64
				if run[i]&mask == want {
					b0 = 1
				}
				if run[i+1]&mask == want {
					b1 = 1
				}
				if run[i+2]&mask == want {
					b2 = 1
				}
				if run[i+3]&mask == want {
					b3 = 1
				}
				m0 |= b0 << uint(i)
				m1 |= b1 << uint(i+1)
				m2 |= b2 << uint(i+2)
				m3 |= b3 << uint(i+3)
			}
			m := m0 | m1 | m2 | m3
			sel[w] = m
			any |= m
		}
		if base < n {
			run := keys[base:n]
			var m uint64
			for i := range run {
				var bit uint64
				if run[i]&mask == want {
					bit = 1
				}
				m |= bit << uint(i)
			}
			sel[w] = m
			any |= m
		}
	} else {
		for w := 0; w < words; w++ {
			sel[w] = ^uint64(0)
		}
		if tail := n & 63; tail != 0 {
			sel[words-1] = 1<<uint(tail) - 1
		}
		any = 1
	}
	return any
}

// filterBlockKeys narrows the selection bitmap using the packed key
// column: every single-valued scalar predicate (agent, op, object
// type) folds into one dense branchless masked compare; multi-valued
// agent/op sets probe the key column for survivors only; entity sets
// and the amount bound then touch the surviving events. Predicate
// semantics mirror EventFilter.matches exactly (minus From/To, which
// the caller's time slice already guarantees).
func filterBlockKeys(blk []sysmon.Event, keys []uint64, cf *CompiledFilter, sel *blockBitmap) int {
	n := len(keys)
	words := (n + 63) / 64
	any := filterKeysDense(keys, cf, sel)
	if any == 0 {
		return 0
	}

	if cf.needAgents {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if _, ok := cf.agents[uint32(keys[w<<6+tz]>>32)]; !ok {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
		if any == 0 {
			return 0
		}
	}

	if cf.needOps {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if !cf.ops[sysmon.Operation(keys[w<<6+tz]>>16)&0xFFFF] {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
		if any == 0 {
			return 0
		}
	}

	f := cf.f
	if f.Subjects != nil {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if !f.Subjects.Has(blk[w<<6+tz].Subject) {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
		if any == 0 {
			return 0
		}
	}

	if f.Objects != nil {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if !f.Objects.Has(blk[w<<6+tz].Object) {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
		if any == 0 {
			return 0
		}
	}

	if f.MinAmount != 0 {
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if blk[w<<6+tz].Amount < f.MinAmount {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
		}
	}

	live := 0
	for w := 0; w < words; w++ {
		live += bits.OnesCount64(sel[w])
	}
	return live
}

// filterBlock narrows the selection bitmap with one pass per active
// predicate, cheapest scalar comparisons first so later set probes
// only touch survivors, and returns the surviving count. Predicate
// semantics mirror EventFilter.matches exactly (minus From/To, which
// the caller's time slice already guarantees).
func filterBlock(blk []sysmon.Event, cf *CompiledFilter, sel *blockBitmap) int {
	n := len(blk)
	words := (n + 63) / 64
	for w := 0; w < words; w++ {
		sel[w] = ^uint64(0)
	}
	if tail := n & 63; tail != 0 {
		sel[words-1] = 1<<uint(tail) - 1
	}
	f := cf.f
	any := uint64(1)

	// The first active pass sees an all-ones bitmap, where iterating
	// set bits costs more than just visiting every event: the scalar
	// predicates (agent, op, object type) get dense branchless kernels
	// that build each selection word directly, and whichever of them
	// runs first takes its dense form. Later passes see a thinned
	// bitmap, so they iterate set bits.
	dense := true

	if cf.hasOneAgent {
		any = denseOneAgent(blk, cf.oneAgent, sel)
		dense = false
	} else if cf.agents != nil {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if _, ok := cf.agents[blk[w<<6+tz].AgentID]; !ok {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
		dense = false
	}
	if any == 0 {
		return 0
	}

	if cf.hasOneOp {
		if dense {
			any = denseOneOp(blk, cf.oneOp, sel)
		} else {
			any = 0
			for w := 0; w < words; w++ {
				b := sel[w]
				for r := b; r != 0; r &= r - 1 {
					tz := bits.TrailingZeros64(r)
					if blk[w<<6+tz].Op != cf.oneOp {
						b &^= 1 << uint(tz)
					}
				}
				sel[w] = b
				any |= b
			}
		}
		dense = false
	} else if cf.ops != nil {
		if dense {
			any = denseOps(blk, cf.ops, sel)
		} else {
			any = 0
			for w := 0; w < words; w++ {
				b := sel[w]
				for r := b; r != 0; r &= r - 1 {
					tz := bits.TrailingZeros64(r)
					if !cf.ops[blk[w<<6+tz].Op] {
						b &^= 1 << uint(tz)
					}
				}
				sel[w] = b
				any |= b
			}
		}
		dense = false
	}
	if any == 0 {
		return 0
	}

	if f.ObjType != sysmon.EntityInvalid {
		if dense {
			any = denseObjType(blk, f.ObjType, sel)
		} else {
			any = 0
			for w := 0; w < words; w++ {
				b := sel[w]
				for r := b; r != 0; r &= r - 1 {
					tz := bits.TrailingZeros64(r)
					if blk[w<<6+tz].ObjType != f.ObjType {
						b &^= 1 << uint(tz)
					}
				}
				sel[w] = b
				any |= b
			}
		}
		dense = false
	}
	if any == 0 {
		return 0
	}

	if f.Subjects != nil {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if !f.Subjects.Has(blk[w<<6+tz].Subject) {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
	}
	if any == 0 {
		return 0
	}

	if f.Objects != nil {
		any = 0
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if !f.Objects.Has(blk[w<<6+tz].Object) {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
			any |= b
		}
	}
	if any == 0 {
		return 0
	}

	if f.MinAmount != 0 {
		for w := 0; w < words; w++ {
			b := sel[w]
			for r := b; r != 0; r &= r - 1 {
				tz := bits.TrailingZeros64(r)
				if blk[w<<6+tz].Amount < f.MinAmount {
					b &^= 1 << uint(tz)
				}
			}
			sel[w] = b
		}
	}

	live := 0
	for w := 0; w < words; w++ {
		live += bits.OnesCount64(sel[w])
	}
	return live
}

// The dense kernels build a selection word per 64 events with a
// branchless compare-and-or, so the first predicate pass costs about
// one comparison per event with no bitmap bookkeeping. They are
// deliberately monomorphic: a shared kernel taking a predicate closure
// would pay an uninlinable call per event, which is the cost the block
// path exists to avoid.

func denseOneAgent(blk []sysmon.Event, agent uint32, sel *blockBitmap) uint64 {
	var any uint64
	for base, w := 0, 0; base < len(blk); base, w = base+64, w+1 {
		run := blk[base:min(base+64, len(blk))]
		var m uint64
		for i := range run {
			var bit uint64
			if run[i].AgentID == agent {
				bit = 1
			}
			m |= bit << uint(i)
		}
		sel[w] = m
		any |= m
	}
	return any
}

func denseOneOp(blk []sysmon.Event, op sysmon.Operation, sel *blockBitmap) uint64 {
	var any uint64
	for base, w := 0, 0; base < len(blk); base, w = base+64, w+1 {
		run := blk[base:min(base+64, len(blk))]
		var m uint64
		for i := range run {
			var bit uint64
			if run[i].Op == op {
				bit = 1
			}
			m |= bit << uint(i)
		}
		sel[w] = m
		any |= m
	}
	return any
}

func denseOps(blk []sysmon.Event, ops *[sysmon.NumOperations]bool, sel *blockBitmap) uint64 {
	var any uint64
	for base, w := 0, 0; base < len(blk); base, w = base+64, w+1 {
		run := blk[base:min(base+64, len(blk))]
		var m uint64
		for i := range run {
			var bit uint64
			if ops[run[i].Op] {
				bit = 1
			}
			m |= bit << uint(i)
		}
		sel[w] = m
		any |= m
	}
	return any
}

func denseObjType(blk []sysmon.Event, t sysmon.EntityType, sel *blockBitmap) uint64 {
	var any uint64
	for base, w := 0, 0; base < len(blk); base, w = base+64, w+1 {
		run := blk[base:min(base+64, len(blk))]
		var m uint64
		for i := range run {
			var bit uint64
			if run[i].ObjType == t {
				bit = 1
			}
			m |= bit << uint(i)
		}
		sel[w] = m
		any |= m
	}
	return any
}
