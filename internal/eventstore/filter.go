package eventstore

import (
	"github.com/aiql/aiql/internal/sysmon"
)

// EventFilter describes the events one data query selects: the spatial
// scope (agents), the temporal scope (time range), the operation set, the
// object entity type, and optional entity-set constraints on the subject
// and object carried over from already-matched event patterns.
type EventFilter struct {
	// Agents restricts the spatial scope; empty means all agents.
	Agents []uint32
	// From/To restrict the temporal scope on event start time,
	// half-open [From, To); zero values leave the bound open.
	From, To int64
	// Ops restricts the operation; empty means any operation.
	Ops []sysmon.Operation
	// ObjType restricts the object entity type; EntityInvalid means any.
	ObjType sysmon.EntityType
	// Subjects/Objects restrict the endpoint entities; nil means
	// unconstrained, an empty set matches nothing.
	Subjects *IDSet
	Objects  *IDSet
	// MinAmount filters on the event's byte count (0 = no filter).
	MinAmount uint64
}

// opSet returns a dense lookup table for the filter's operations, or nil
// when all operations pass.
func (f *EventFilter) opSet() *[sysmon.NumOperations]bool {
	if len(f.Ops) == 0 {
		return nil
	}
	var set [sysmon.NumOperations]bool
	for _, op := range f.Ops {
		if int(op) < sysmon.NumOperations {
			set[op] = true
		}
	}
	return &set
}

// agentSet returns a membership map for the filter's agents, or nil when
// all agents pass.
func (f *EventFilter) agentSet() map[uint32]struct{} {
	if len(f.Agents) == 0 {
		return nil
	}
	m := make(map[uint32]struct{}, len(f.Agents))
	for _, a := range f.Agents {
		m[a] = struct{}{}
	}
	return m
}

// matches reports whether ev passes every predicate of the filter, given
// precomputed op and agent sets (either may be nil = pass-all).
func (f *EventFilter) matches(ev *sysmon.Event, ops *[sysmon.NumOperations]bool, agents map[uint32]struct{}) bool {
	if agents != nil {
		if _, ok := agents[ev.AgentID]; !ok {
			return false
		}
	}
	if f.From != 0 && ev.StartTS < f.From {
		return false
	}
	if f.To != 0 && ev.StartTS >= f.To {
		return false
	}
	if ops != nil && !ops[ev.Op] {
		return false
	}
	if f.ObjType != sysmon.EntityInvalid && ev.ObjType != f.ObjType {
		return false
	}
	if !f.Subjects.Has(ev.Subject) {
		return false
	}
	if !f.Objects.Has(ev.Object) {
		return false
	}
	if f.MinAmount != 0 && ev.Amount < f.MinAmount {
		return false
	}
	return true
}
