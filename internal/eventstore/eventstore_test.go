package eventstore

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/aiql/aiql/internal/like"
	"github.com/aiql/aiql/internal/sysmon"
)

var base = time.Date(2018, 5, 10, 0, 0, 0, 0, time.UTC)

func mkRecord(agent uint32, exe string, op sysmon.Operation, obj string, minute int) Record {
	r := Record{
		AgentID: agent,
		Subject: sysmon.Process{PID: 100, ExeName: exe, Path: "/bin/" + exe, User: "u"},
		Op:      op,
		StartTS: base.Add(time.Duration(minute) * time.Minute).UnixNano(),
		Amount:  64,
	}
	switch op.ObjectType() {
	case sysmon.EntityProcess:
		r.ObjType = sysmon.EntityProcess
		r.ObjProc = sysmon.Process{PID: 200, ExeName: obj, Path: "/bin/" + obj, User: "u"}
	case sysmon.EntityNetconn:
		r.ObjType = sysmon.EntityNetconn
		r.ObjConn = sysmon.Netconn{SrcIP: "10.0.0.1", SrcPort: 1000, DstIP: obj, DstPort: 443, Protocol: "tcp"}
	default:
		r.ObjType = sysmon.EntityFile
		r.ObjFile = sysmon.File{Path: "/data/" + obj}
	}
	return r
}

func TestDedupInterning(t *testing.T) {
	s := New(DefaultOptions())
	for i := 0; i < 10; i++ {
		s.Append(mkRecord(1, "bash", sysmon.OpRead, "f.txt", i))
	}
	s.Flush()
	if got := s.Dict().Count(sysmon.EntityProcess); got != 1 {
		t.Errorf("deduped store has %d processes, want 1", got)
	}
	if got := s.Dict().Count(sysmon.EntityFile); got != 1 {
		t.Errorf("deduped store has %d files, want 1", got)
	}

	plain := New(PlainOptions())
	for i := 0; i < 10; i++ {
		plain.Append(mkRecord(1, "bash", sysmon.OpRead, "f.txt", i))
	}
	plain.Flush()
	if got := plain.Dict().Count(sysmon.EntityProcess); got != 10 {
		t.Errorf("plain store has %d processes, want 10", got)
	}
}

func TestPartitioningByAgentAndTime(t *testing.T) {
	opts := DefaultOptions()
	opts.ChunkDuration = time.Hour
	s := New(opts)
	// two agents, events spread over 3 hours → 6 chunks
	for agent := uint32(1); agent <= 2; agent++ {
		for h := 0; h < 3; h++ {
			s.Append(mkRecord(agent, "bash", sysmon.OpRead, "f.txt", h*60+5))
		}
	}
	s.Flush()
	if got := s.NumPartitions(); got != 6 {
		t.Errorf("got %d partitions, want 6", got)
	}

	noPart := DefaultOptions()
	noPart.Partitioning = false
	s2 := New(noPart)
	for agent := uint32(1); agent <= 2; agent++ {
		for h := 0; h < 3; h++ {
			s2.Append(mkRecord(agent, "bash", sysmon.OpRead, "f.txt", h*60+5))
		}
	}
	s2.Flush()
	if got := s2.NumPartitions(); got != 1 {
		t.Errorf("unpartitioned store has %d chunks, want 1", got)
	}
}

func TestScanFilters(t *testing.T) {
	s := New(DefaultOptions())
	s.AppendAll([]Record{
		mkRecord(1, "bash", sysmon.OpRead, "a.txt", 0),
		mkRecord(1, "bash", sysmon.OpWrite, "a.txt", 10),
		mkRecord(2, "vim", sysmon.OpRead, "b.txt", 20),
		mkRecord(2, "vim", sysmon.OpConnect, "9.9.9.9", 30),
	})
	s.Flush()

	count := func(f *EventFilter) int {
		n := 0
		s.Scan(context.Background(), f, func(*sysmon.Event) bool { n++; return true })
		return n
	}
	if got := count(&EventFilter{}); got != 4 {
		t.Errorf("unfiltered scan = %d", got)
	}
	if got := count(&EventFilter{Agents: []uint32{1}}); got != 2 {
		t.Errorf("agent filter = %d", got)
	}
	if got := count(&EventFilter{Ops: []sysmon.Operation{sysmon.OpRead}}); got != 2 {
		t.Errorf("op filter = %d", got)
	}
	if got := count(&EventFilter{ObjType: sysmon.EntityNetconn}); got != 1 {
		t.Errorf("objtype filter = %d", got)
	}
	from := base.Add(15 * time.Minute).UnixNano()
	if got := count(&EventFilter{From: from}); got != 2 {
		t.Errorf("time filter = %d", got)
	}
	// entity-set filters
	bashIDs := s.Dict().MatchEntities(sysmon.EntityProcess, "exe_name", like.Compile("bash"))
	if got := count(&EventFilter{Subjects: bashIDs}); got != 2 {
		t.Errorf("subject set filter = %d", got)
	}
	if got := count(&EventFilter{Subjects: NewIDSet()}); got != 0 {
		t.Errorf("empty subject set = %d", got)
	}
}

func TestEstimateNeverUndercounts(t *testing.T) {
	s := New(DefaultOptions())
	rng := rand.New(rand.NewSource(3))
	exes := []string{"bash", "vim", "curl", "python"}
	for i := 0; i < 500; i++ {
		op := sysmon.OpRead
		if rng.Intn(2) == 0 {
			op = sysmon.OpWrite
		}
		s.Append(mkRecord(uint32(1+rng.Intn(3)), exes[rng.Intn(len(exes))], op, "f.txt", rng.Intn(300)))
	}
	s.Flush()
	filters := []*EventFilter{
		{},
		{Agents: []uint32{2}},
		{Ops: []sysmon.Operation{sysmon.OpRead}},
		{Subjects: s.Dict().MatchEntities(sysmon.EntityProcess, "exe_name", like.Compile("bash"))},
		{Agents: []uint32{1}, Ops: []sysmon.Operation{sysmon.OpWrite},
			Subjects: s.Dict().MatchEntities(sysmon.EntityProcess, "exe_name", like.Compile("vim"))},
	}
	for i, f := range filters {
		actual := 0
		s.Scan(context.Background(), f, func(*sysmon.Event) bool { actual++; return true })
		if est := s.EstimateMatches(f); est < actual {
			t.Errorf("filter %d: estimate %d < actual %d", i, est, actual)
		}
	}
}

func TestScanParallelMatchesSequential(t *testing.T) {
	s := New(DefaultOptions())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		s.Append(mkRecord(uint32(1+rng.Intn(4)), "bash", sysmon.OpRead, "f.txt", rng.Intn(600)))
	}
	s.Flush()
	f := &EventFilter{Ops: []sysmon.Operation{sysmon.OpRead}}
	var seq []uint64
	s.Scan(context.Background(), f, func(ev *sysmon.Event) bool { seq = append(seq, ev.ID); return true })
	var mu sync.Mutex
	var par []uint64
	s.ScanParallel(context.Background(), f, func(ev *sysmon.Event) {
		mu.Lock()
		par = append(par, ev.ID)
		mu.Unlock()
	})
	if len(seq) != len(par) {
		t.Fatalf("sequential %d events, parallel %d", len(seq), len(par))
	}
	seen := map[uint64]bool{}
	for _, id := range seq {
		seen[id] = true
	}
	for _, id := range par {
		if !seen[id] {
			t.Fatalf("parallel scan produced unknown event %d", id)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New(DefaultOptions())
	s.AppendAll([]Record{
		mkRecord(1, "bash", sysmon.OpRead, "a.txt", 0),
		mkRecord(2, "vim", sysmon.OpConnect, "9.9.9.9", 30),
	})
	s.Flush()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// load into an optimized store and a plain store: contents must agree
	for _, opts := range []Options{DefaultOptions(), PlainOptions()} {
		s2 := New(opts)
		if err := s2.Decode(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		if s2.Len() != s.Len() {
			t.Errorf("loaded %d events, want %d", s2.Len(), s.Len())
		}
		a := s.Collect(&EventFilter{})
		b := s2.Collect(&EventFilter{})
		if len(a) != len(b) {
			t.Fatalf("collect mismatch: %d vs %d", len(a), len(b))
		}
		// compare attribute views (entity IDs may differ across options)
		for i := range a {
			av := s.Dict().Attr(sysmon.EntityProcess, a[i].Subject, "exe_name")
			bv := s2.Dict().Attr(sysmon.EntityProcess, b[i].Subject, "exe_name")
			if av != bv {
				t.Fatalf("event %d subject %q vs %q", i, av, bv)
			}
		}
	}
}

func TestDecodeRejectsNonEmptyStore(t *testing.T) {
	s := New(DefaultOptions())
	s.Append(mkRecord(1, "bash", sysmon.OpRead, "a.txt", 0))
	s.Flush()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Decode(&buf); err == nil {
		t.Fatal("Decode into non-empty store should fail")
	}
}

func TestBatchCommitVisibility(t *testing.T) {
	opts := DefaultOptions()
	opts.BatchSize = 100
	s := New(opts)
	for i := 0; i < 10; i++ {
		s.Append(mkRecord(1, "bash", sysmon.OpRead, "a.txt", i))
	}
	// below batch size: nothing committed yet
	if s.Len() != 0 {
		t.Errorf("uncommitted events visible: %d", s.Len())
	}
	s.Flush()
	if s.Len() != 10 {
		t.Errorf("after flush: %d events", s.Len())
	}
}

func TestOutOfOrderAppendsStaySorted(t *testing.T) {
	opts := DefaultOptions()
	opts.BatchSize = 1
	s := New(opts)
	for _, m := range []int{30, 10, 50, 20, 40} {
		s.Append(mkRecord(1, "bash", sysmon.OpRead, "a.txt", m))
	}
	s.Flush()
	var last int64
	s.Scan(context.Background(), &EventFilter{}, func(ev *sysmon.Event) bool {
		if ev.StartTS < last {
			t.Fatalf("scan out of order: %d after %d", ev.StartTS, last)
		}
		last = ev.StartTS
		return true
	})
}

// TestInterningIdempotent: interning the same entity twice returns the
// same ID (property-based).
func TestInterningIdempotent(t *testing.T) {
	s := New(DefaultOptions())
	f := func(pid uint32, exe, path, user string) bool {
		p := sysmon.Process{PID: pid, ExeName: exe, Path: path, User: user}
		return s.Dict().InternProcess(p) == s.Dict().InternProcess(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEveryEventInExactlyOneChunk: chunk sizes sum to the store size.
func TestEveryEventInExactlyOneChunk(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(DefaultOptions())
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			s.Append(mkRecord(uint32(1+rng.Intn(3)), "bash", sysmon.OpRead, "f.txt", rng.Intn(36*60)))
		}
		s.Flush()
		total := 0
		for _, p := range s.Partitions() {
			total += p.Len()
		}
		return total == n && s.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTimeRange(t *testing.T) {
	s := New(DefaultOptions())
	s.AppendAll([]Record{
		mkRecord(1, "bash", sysmon.OpRead, "a", 10),
		mkRecord(1, "bash", sysmon.OpRead, "b", 5),
		mkRecord(1, "bash", sysmon.OpRead, "c", 20),
	})
	s.Flush()
	lo, hi := s.TimeRange()
	if lo != base.Add(5*time.Minute).UnixNano() || hi != base.Add(20*time.Minute).UnixNano() {
		t.Errorf("range = [%d, %d]", lo, hi)
	}
}

func TestAgents(t *testing.T) {
	s := New(DefaultOptions())
	s.AppendAll([]Record{
		mkRecord(3, "bash", sysmon.OpRead, "a", 0),
		mkRecord(1, "bash", sysmon.OpRead, "b", 0),
		mkRecord(3, "bash", sysmon.OpRead, "c", 0),
	})
	s.Flush()
	if got := s.Agents(); !reflect.DeepEqual(got, []uint32{1, 3}) {
		t.Errorf("Agents() = %v", got)
	}
}

func TestMatchEntitiesPatterns(t *testing.T) {
	s := New(DefaultOptions())
	s.AppendAll([]Record{
		mkRecord(1, "cmd.exe", sysmon.OpRead, "a", 0),
		mkRecord(1, "powershell.exe", sysmon.OpRead, "b", 0),
		mkRecord(1, "bash", sysmon.OpRead, "c", 0),
	})
	s.Flush()
	d := s.Dict()
	if got := d.MatchEntities(sysmon.EntityProcess, "exe_name", like.Compile("%.exe")).Len(); got != 2 {
		t.Errorf("%%.exe matched %d", got)
	}
	if got := d.MatchEntities(sysmon.EntityProcess, "exe_name", like.Compile("CMD.EXE")).Len(); got != 1 {
		t.Errorf("exact case-insensitive matched %d", got)
	}
	if got := d.MatchEntities(sysmon.EntityProcess, "bogus", like.Compile("x")).Len(); got != 0 {
		t.Errorf("bogus attribute matched %d", got)
	}
}

func TestIDSetOperations(t *testing.T) {
	a := NewIDSet(1, 2, 3)
	b := NewIDSet(2, 3, 4)
	inter := a.Intersect(b)
	if inter.Len() != 2 || !inter.Has(2) || !inter.Has(3) || inter.Has(1) {
		t.Errorf("intersect = %v", inter.IDs())
	}
	var nilSet *IDSet
	if got := nilSet.Intersect(a); got.Len() != 3 {
		t.Error("nil ∩ a should be a")
	}
	if !nilSet.Has(99) {
		t.Error("nil set contains everything")
	}
	if nilSet.Len() != -1 {
		t.Error("nil set length should be -1 (unbounded)")
	}
	if !NewIDSet().Empty() || a.Empty() {
		t.Error("Empty() misbehaves")
	}
}

func TestStatsReflectContents(t *testing.T) {
	s := New(DefaultOptions())
	s.AppendAll([]Record{
		mkRecord(1, "bash", sysmon.OpRead, "a.txt", 0),
		mkRecord(1, "vim", sysmon.OpConnect, "9.9.9.9", 1),
	})
	s.Flush()
	st := s.Stats()
	if st.Events != 2 || st.Processes != 2 || st.Files != 1 || st.Netconns != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.ApproxBytes == 0 {
		t.Error("ApproxBytes should be nonzero")
	}
}

// TestSealThresholdCreatesSegments: a memtable reaching SegmentEvents at
// a commit boundary is sealed; smaller tails stay in the memtable.
func TestSealThresholdCreatesSegments(t *testing.T) {
	opts := DefaultOptions()
	opts.Partitioning = false
	opts.BatchSize = 10
	opts.SegmentEvents = 25
	s := New(opts)
	for i := 0; i < 107; i++ {
		s.Append(mkRecord(1, "bash", sysmon.OpRead, "f.txt", i))
	}
	// commits at 10,20,...,100 events; seals when the memtable crosses 25
	if got := s.NumSegments(); got == 0 {
		t.Fatalf("threshold sealing produced no segments")
	}
	st := s.SegmentStats()
	if st.SealedEvents+st.MemtableEvents != s.Len() {
		t.Errorf("sealed %d + memtable %d != committed %d", st.SealedEvents, st.MemtableEvents, s.Len())
	}
	before := s.Commits()
	s.Flush() // commits the 7-event batch tail, then seals everything
	if got := s.SegmentStats().MemtableEvents; got != 0 {
		t.Errorf("flush left %d memtable events", got)
	}
	if s.Len() != 107 {
		t.Errorf("store has %d events, want 107", s.Len())
	}
	if got := s.Commits(); got != before+1 {
		t.Errorf("flush with a buffered batch bumped commits %d → %d, want one commit", before, got)
	}
	// sealing with no new data must not bump the commit counter
	s.Flush()
	if got := s.Commits(); got != before+1 {
		t.Errorf("pure seal bumped commits to %d", got)
	}
}

// TestSnapshotFrozenDuringAppendAndSeal: a snapshot taken before
// concurrent appends and seals keeps returning exactly the event set it
// pinned (run under -race to validate the lock-free read paths).
func TestSnapshotFrozenDuringAppendAndSeal(t *testing.T) {
	opts := DefaultOptions()
	opts.SegmentEvents = 64 // force frequent seals
	opts.BatchSize = 16
	s := New(opts)
	for i := 0; i < 500; i++ {
		s.Append(mkRecord(uint32(1+i%3), "bash", sysmon.OpRead, "f.txt", i%240))
	}
	s.Flush()
	snap := s.Snapshot()
	want := snap.Len()
	if want != 500 {
		t.Fatalf("snapshot pinned %d events, want 500", want)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < 20; round++ {
			recs := make([]Record, 0, 40)
			for i := 0; i < 40; i++ {
				recs = append(recs, mkRecord(uint32(1+i%3), "vim", sysmon.OpWrite, "g.txt", (round*40+i)%240))
			}
			s.AppendAll(recs)
			s.Flush() // seal between reads
		}
	}()

	for i := 0; i < 50; i++ {
		got := 0
		snap.Scan(context.Background(), &EventFilter{}, func(*sysmon.Event) bool { got++; return true })
		if got != want {
			t.Fatalf("iteration %d: snapshot scan saw %d events, want %d", i, got, want)
		}
	}
	<-done
	if s.Len() != 500+20*40 {
		t.Errorf("store grew to %d events, want %d", s.Len(), 500+20*40)
	}
	if got := 0; true {
		snap.Scan(context.Background(), &EventFilter{}, func(*sysmon.Event) bool { got++; return true })
		if got != want {
			t.Errorf("post-append snapshot scan saw %d events, want %d", got, want)
		}
	}
}

// TestScanDuringIndexBuild: scans racing a seal's out-of-lock index
// build must fall back to the sequential path and stay correct.
func TestScanDuringIndexBuild(t *testing.T) {
	opts := DefaultOptions()
	opts.SegmentEvents = 128
	s := New(opts)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			s.Append(mkRecord(1, "bash", sysmon.OpRead, "f.txt", i%600))
			if i%256 == 255 {
				s.Flush()
			}
		}
		s.Flush()
	}()
	for i := 0; i < 200; i++ {
		f := &EventFilter{Subjects: s.Dict().MatchEntities(sysmon.EntityProcess, "exe_name", like.Compile("bash"))}
		n := 0
		s.Scan(context.Background(), f, func(*sysmon.Event) bool { n++; return true })
	}
	wg.Wait()
	if got := len(s.Collect(&EventFilter{})); got != 2000 {
		t.Errorf("collected %d events, want 2000", got)
	}
}

// TestUnitsDeterministicOrder: Units returns segments oldest-first per
// chunk with the memtable tail last, and every committed event appears
// in exactly one unit.
func TestUnitsDeterministicOrder(t *testing.T) {
	opts := DefaultOptions()
	opts.SegmentEvents = 8
	opts.BatchSize = 4
	s := New(opts)
	for i := 0; i < 50; i++ {
		s.Append(mkRecord(1, "bash", sysmon.OpRead, "f.txt", i))
	}
	s.Flush()
	for i := 0; i < 3; i++ { // unsealed tail
		s.Append(mkRecord(1, "bash", sysmon.OpRead, "g.txt", 50+i))
	}
	snap := s.Snapshot()
	units := snap.Units(&EventFilter{})
	total := 0
	lastSealed := true
	var lastID uint64
	for _, u := range units {
		total += u.Len()
		if u.Sealed() {
			if !lastSealed {
				t.Fatal("sealed unit after memtable tail within a chunk ordering")
			}
			if u.SegmentID() <= lastID {
				t.Fatalf("segment ids not ascending: %d after %d", u.SegmentID(), lastID)
			}
			lastID = u.SegmentID()
		} else {
			lastSealed = false
		}
	}
	if total != snap.Len() {
		t.Errorf("units cover %d events, snapshot has %d", total, snap.Len())
	}
}
