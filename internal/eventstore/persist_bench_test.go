package eventstore_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/experiments"
)

// The persistence benchmarks quantify the paper's storage argument at
// the durability layer: loading a dataset from file-per-segment
// snapshots (decode columnar blocks + restore prebuilt indexes) versus
// replaying a flat gob log (re-intern every entity, re-chunk, re-seal,
// and re-index every event). Run via `make bench-persist`, which emits
// BENCH_persist.json for the CI perf-trajectory artifact.

var persistFixture struct {
	once    sync.Once
	gobPath string
	dir     string
	events  int
	err     error
}

func persistSetup(b *testing.B) (gobPath, dir string, events int) {
	f := &persistFixture
	f.once.Do(func() {
		s := experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42))
		s.Flush()
		f.events = s.Len()
		// not b.TempDir(): the fixture must outlive the benchmark
		// invocation that happened to build it
		base, err := os.MkdirTemp("", "aiql-persist-bench")
		if err != nil {
			f.err = err
			return
		}
		f.gobPath = filepath.Join(base, "fig4.aiql")
		if f.err = s.SaveFile(f.gobPath); f.err != nil {
			return
		}
		f.dir = filepath.Join(base, "fig4store")
		f.err = s.SaveDir(f.dir)
	})
	if f.err != nil {
		b.Fatal(f.err)
	}
	return f.gobPath, f.dir, f.events
}

// BenchmarkPersistGobReplay loads the Fig4 50k dataset from a legacy
// gob snapshot: the flat event log is decoded and every event is
// re-interned, re-chunked, re-sealed, and re-indexed.
func BenchmarkPersistGobReplay(b *testing.B) {
	gobPath, _, events := persistSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := eventstore.LoadFile(gobPath, eventstore.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != events {
			b.Fatalf("loaded %d events, want %d", s.Len(), events)
		}
	}
}

// BenchmarkPersistSegmentLoad opens the same dataset from its durable
// directory: segment files stream straight into sealed in-memory
// segments with their posting indexes restored from disk — no replay.
func BenchmarkPersistSegmentLoad(b *testing.B) {
	_, dir, events := persistSetup(b)
	opts := eventstore.DefaultOptions()
	opts.Dir = dir
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := eventstore.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != events {
			b.Fatalf("loaded %d events, want %d", s.Len(), events)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}
