package eventstore_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/aiql/aiql/internal/durable"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/experiments"
)

// The persistence benchmarks quantify the paper's storage argument at
// the durability layer: loading a dataset from file-per-segment
// snapshots (decode columnar blocks + restore prebuilt indexes) versus
// replaying a flat gob log (re-intern every entity, re-chunk, re-seal,
// and re-index every event). Run via `make bench-persist`, which emits
// BENCH_persist.json for the CI perf-trajectory artifact.

var persistFixture struct {
	once    sync.Once
	gobPath string
	dir     string
	dirV1   string
	events  int
	err     error
}

func persistSetup(b *testing.B) (gobPath, dir string, events int) {
	f := &persistFixture
	f.once.Do(func() {
		s := experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42))
		s.Flush()
		f.events = s.Len()
		// not b.TempDir(): the fixture must outlive the benchmark
		// invocation that happened to build it
		base, err := os.MkdirTemp("", "aiql-persist-bench")
		if err != nil {
			f.err = err
			return
		}
		f.gobPath = filepath.Join(base, "fig4.aiql")
		if f.err = s.SaveFile(f.gobPath); f.err != nil {
			return
		}
		f.dir = filepath.Join(base, "fig4store")
		if f.err = s.SaveDir(f.dir); f.err != nil {
			return
		}
		f.dirV1 = filepath.Join(base, "fig4store-v1")
		f.err = cloneDirAsV1(f.dir, f.dirV1)
	})
	if f.err != nil {
		b.Fatal(f.err)
	}
	return f.gobPath, f.dir, f.events
}

// cloneDirAsV1 copies a durable directory and rewrites its segment
// files in the pre-columnar v1 gob format, recreating the layout the
// store produced before v2 existed. Filenames and counts are
// unchanged, so the copied manifest stays valid.
func cloneDirAsV1(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".seg") {
			op, err := durable.OpenSegment(filepath.Join(src, e.Name()))
			if err != nil {
				return err
			}
			if op.V2 != nil {
				evs, err := op.V2.MaterializeEvents()
				if err != nil {
					return err
				}
				sub, obj, err := op.V2.ReadIndexes()
				if err != nil {
					return err
				}
				buf = durable.EncodeSegment(&durable.SegmentData{
					ID: op.V2.ID, AgentID: op.V2.AgentID, Bucket: op.V2.Bucket,
					Events: evs, Indexed: op.V2.Indexed,
					PostingSub: sub, PostingObj: obj, OpCount: op.V2.OpCount,
				})
			}
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), buf, 0o644); err != nil {
			return err
		}
	}
	// A pre-columnar manifest carried no Format hints; clear them in the
	// clone so its open exercises the legacy eager-decode path instead
	// of deferring to the v2 lazy restore.
	m, err := durable.ReadManifest(dst)
	if err != nil {
		return err
	}
	if _, err := durable.ApplyManifestDeltas(dst, m); err != nil {
		return err
	}
	for i := range m.Segments {
		m.Segments[i].Format = durable.SegmentFormatUnknown
	}
	if err := durable.WriteManifest(dst, m); err != nil {
		return err
	}
	return durable.RemoveManifestDelta(dst)
}

// BenchmarkPersistGobReplay loads the Fig4 50k dataset from a legacy
// gob snapshot: the flat event log is decoded and every event is
// re-interned, re-chunked, re-sealed, and re-indexed.
func BenchmarkPersistGobReplay(b *testing.B) {
	gobPath, _, events := persistSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := eventstore.LoadFile(gobPath, eventstore.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != events {
			b.Fatalf("loaded %d events, want %d", s.Len(), events)
		}
	}
}

// BenchmarkPersistSegmentLoad opens the same dataset from its durable
// directory of v2 columnar segment files: each file is mmap'd and only
// its footer and block directory are read at open — column blocks
// decompress lazily on first scan. This is the mmap cold-open side of
// the v1-vs-v2 comparison; heap-bytes/mapped-bytes record where the
// opened store's resident data lives.
func BenchmarkPersistSegmentLoad(b *testing.B) {
	_, dir, events := persistSetup(b)
	opts := eventstore.DefaultOptions()
	opts.Dir = dir
	b.ReportAllocs()
	b.ResetTimer()
	var st eventstore.StorageStats
	for i := 0; i < b.N; i++ {
		s, err := eventstore.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != events {
			b.Fatalf("loaded %d events, want %d", s.Len(), events)
		}
		b.StopTimer()
		st = s.StorageStats()
		s.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(st.HeapBytes), "heap-bytes")
	b.ReportMetric(float64(st.MappedBytes), "mapped-bytes")
}

// BenchmarkPersistSegmentLoadV1Eager opens the identical dataset from a
// directory of pre-columnar v1 gob segment files: every segment is
// fully decoded onto the heap at open. The eager-decode side of the
// v1-vs-v2 cold-open comparison.
func BenchmarkPersistSegmentLoadV1Eager(b *testing.B) {
	_, _, events := persistSetup(b)
	opts := eventstore.DefaultOptions()
	opts.Dir = persistFixture.dirV1
	b.ReportAllocs()
	b.ResetTimer()
	var st eventstore.StorageStats
	for i := 0; i < b.N; i++ {
		s, err := eventstore.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != events {
			b.Fatalf("loaded %d events, want %d", s.Len(), events)
		}
		b.StopTimer()
		st = s.StorageStats()
		s.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(st.HeapBytes), "heap-bytes")
	b.ReportMetric(float64(st.MappedBytes), "mapped-bytes")
}
