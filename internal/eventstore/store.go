package eventstore

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/aiql/aiql/internal/sysmon"
)

// scanCheckInterval is how many visited events a scan processes between
// context-cancellation checks. Checking ctx.Err() takes a mutex, so the
// check is amortized over a block of events; partition boundaries are
// always checked.
const scanCheckInterval = 2048

// Store is the AIQL data store: an entity dictionary plus hypertable
// chunks of events. It is safe for concurrent readers; writers are
// serialized internally.
type Store struct {
	mu   sync.RWMutex
	opts Options
	dict *Dictionary

	parts map[PartKey]*Partition
	order []PartKey // insertion-ordered keys for deterministic iteration

	batch       []sysmon.Event
	commits     uint64
	nextEventID uint64
	nextSeq     map[uint32]uint64
	total       int
	minTS       int64
	maxTS       int64
}

// New creates a store with the given options.
func New(opts Options) *Store {
	opts = opts.normalized()
	return &Store{
		opts:    opts,
		dict:    newDictionary(opts.Dedup, opts.Indexes),
		parts:   make(map[PartKey]*Partition),
		nextSeq: make(map[uint32]uint64),
	}
}

// Options returns the store's configuration.
func (s *Store) Options() Options { return s.opts }

// Dict returns the entity dictionary.
func (s *Store) Dict() *Dictionary { return s.dict }

// Record is one raw monitoring record as produced by a collection agent:
// the subject process and object entity are given by value, and the store
// interns them according to its deduplication policy.
type Record struct {
	AgentID uint32
	Subject sysmon.Process
	Op      sysmon.Operation
	ObjProc sysmon.Process // used when Op's object is a process
	ObjFile sysmon.File    // used when Op's object is a file
	ObjConn sysmon.Netconn // used when Op's object is a connection
	ObjType sysmon.EntityType
	StartTS int64
	EndTS   int64
	Amount  uint64
}

// Append ingests one raw record. With batch commit enabled the record is
// buffered and committed when the batch fills; call Flush to force.
func (s *Store) Append(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(r)
	if !s.opts.BatchCommit || len(s.batch) >= s.opts.BatchSize {
		s.flushLocked()
	}
}

// AppendAll ingests a slice of raw records under one lock acquisition.
// Commit boundaries follow the batch-commit policy exactly as Append's
// do: without batch commit every record commits individually.
func (s *Store) AppendAll(rs []Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range rs {
		s.appendLocked(rs[i])
		if !s.opts.BatchCommit || len(s.batch) >= s.opts.BatchSize {
			s.flushLocked()
		}
	}
}

func (s *Store) appendLocked(r Record) {
	subj := s.dict.InternProcess(r.Subject)
	var obj sysmon.EntityID
	objType := r.ObjType
	if objType == sysmon.EntityInvalid {
		objType = r.Op.ObjectType()
	}
	switch objType {
	case sysmon.EntityProcess:
		obj = s.dict.InternProcess(r.ObjProc)
	case sysmon.EntityFile:
		obj = s.dict.InternFile(r.ObjFile)
	case sysmon.EntityNetconn:
		obj = s.dict.InternNetconn(r.ObjConn)
	}
	s.nextEventID++
	s.nextSeq[r.AgentID]++
	end := r.EndTS
	if end < r.StartTS {
		end = r.StartTS
	}
	s.batch = append(s.batch, sysmon.Event{
		ID:      s.nextEventID,
		AgentID: r.AgentID,
		Subject: subj,
		Op:      r.Op,
		ObjType: objType,
		Object:  obj,
		StartTS: r.StartTS,
		EndTS:   end,
		Amount:  r.Amount,
		Seq:     s.nextSeq[r.AgentID],
	})
}

// Flush commits any buffered events.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

func (s *Store) flushLocked() {
	if len(s.batch) == 0 {
		return
	}
	s.commits++
	// group the batch by partition key, then append per chunk
	groups := make(map[PartKey][]sysmon.Event)
	var keys []PartKey
	for _, ev := range s.batch {
		key := s.partKey(ev.AgentID, ev.StartTS)
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], ev)
		if s.total == 0 || ev.StartTS < s.minTS {
			s.minTS = ev.StartTS
		}
		if s.total == 0 || ev.StartTS > s.maxTS {
			s.maxTS = ev.StartTS
		}
		s.total++
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].AgentID != keys[j].AgentID {
			return keys[i].AgentID < keys[j].AgentID
		}
		return keys[i].Bucket < keys[j].Bucket
	})
	for _, key := range keys {
		part := s.parts[key]
		if part == nil {
			part = newPartition(key, s.opts.Indexes)
			s.parts[key] = part
			s.order = append(s.order, key)
		}
		part.appendBatch(groups[key])
	}
	s.batch = s.batch[:0]
}

func (s *Store) partKey(agent uint32, ts int64) PartKey {
	if !s.opts.Partitioning {
		return PartKey{}
	}
	return PartKey{AgentID: agent, Bucket: ts / int64(s.opts.ChunkDuration)}
}

// Commits returns the number of commit boundaries so far — each would be
// one durable transaction in a disk-backed deployment, which is what
// batch commit amortizes.
func (s *Store) Commits() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commits
}

// Len returns the number of committed events.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// TimeRange returns the committed events' [min, max] start timestamps.
func (s *Store) TimeRange() (int64, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.minTS, s.maxTS
}

// NumPartitions returns the number of hypertable chunks.
func (s *Store) NumPartitions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.parts)
}

// selectParts returns the chunks that can contain events matching the
// filter, using the spatial (agent) and temporal (bucket) dimensions.
func (s *Store) selectParts(f *EventFilter) []*Partition {
	agents := f.agentSet()
	var out []*Partition
	for _, key := range s.order {
		p := s.parts[key]
		if s.opts.Partitioning {
			if agents != nil {
				if _, ok := agents[key.AgentID]; !ok {
					continue
				}
			}
			if !p.overlaps(f.From, f.To) {
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

// Scan calls fn for every committed event matching the filter. Within a
// chunk events arrive in start-time order; across chunks the order follows
// the deterministic chunk order. fn returning false stops the scan.
//
// The scan honors ctx: it checks for cancellation before starting, at
// every chunk boundary, and every scanCheckInterval visited events, and
// returns ctx.Err() when the scan was aborted by cancellation.
func (s *Store) Scan(ctx context.Context, f *EventFilter, fn func(*sysmon.Event) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	ops := f.opSet()
	agents := f.agentSet()
	visited := 0
	cancelled := false
	for _, p := range s.selectParts(f) {
		ok := p.scan(f, ops, agents, func(ev *sysmon.Event) bool {
			visited++
			if visited%scanCheckInterval == 0 && ctx.Err() != nil {
				cancelled = true
				return false
			}
			return fn(ev)
		})
		if cancelled {
			return ctx.Err()
		}
		if !ok {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ScanChunked scans the matching chunks one at a time in deterministic
// chunk order: each chunk's events passing the filter and the keep
// predicate are collected into a batch under only that chunk's read
// lock, then handed to merge with no locks held. It is the streaming
// pipeline's sequential scan: merge may block arbitrarily long (a
// consumer draining rows to a slow client) without stalling writers or
// other readers, unlike Scan, which holds the store read lock across
// its callbacks. merge returning false stops the scan; batches are
// bounded by chunk size, and visited counts the events examined for
// the batch. Returns ctx.Err() when the scan was aborted by
// cancellation.
func (s *Store) ScanChunked(ctx context.Context, f *EventFilter, keep func(*sysmon.Event) bool, merge func(batch []sysmon.Event, visited int64) bool) error {
	s.mu.RLock()
	parts := s.selectParts(f)
	s.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	ops := f.opSet()
	agents := f.agentSet()
	for _, p := range parts {
		var batch []sysmon.Event
		var visited int64
		cancelled := false
		p.scan(f, ops, agents, func(ev *sysmon.Event) bool {
			visited++
			if visited%scanCheckInterval == 0 && ctx.Err() != nil {
				cancelled = true
				return false
			}
			if keep == nil || keep(ev) {
				batch = append(batch, *ev)
			}
			return true
		})
		if !merge(batch, visited) {
			return nil
		}
		if cancelled {
			return ctx.Err()
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Collect returns all events matching the filter.
func (s *Store) Collect(f *EventFilter) []sysmon.Event {
	var out []sysmon.Event
	s.Scan(context.Background(), f, func(ev *sysmon.Event) bool {
		out = append(out, *ev)
		return true
	})
	return out
}

// ScanParallel fans the scan out across chunks using up to
// runtime.GOMAXPROCS workers and calls fn concurrently (fn must be safe
// for concurrent use). It is the engine's spatial/temporal sub-query
// parallelism. Returns the number of chunks whose scan started — fewer
// than the matching chunks when ctx is cancelled early: workers stop
// picking up chunks and bail out of in-flight chunk scans at the next
// check interval.
func (s *Store) ScanParallel(ctx context.Context, f *EventFilter, fn func(*sysmon.Event)) int {
	s.mu.RLock()
	parts := s.selectParts(f)
	s.mu.RUnlock()
	if ctx.Err() != nil {
		return 0
	}
	ops := f.opSet()
	agents := f.agentSet()
	var scanned atomic.Int64
	scanOne := func(p *Partition) {
		scanned.Add(1)
		visited := 0
		p.scan(f, ops, agents, func(ev *sysmon.Event) bool {
			visited++
			if visited%scanCheckInterval == 0 && ctx.Err() != nil {
				return false
			}
			fn(ev)
			return true
		})
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers <= 1 {
		for _, p := range parts {
			if ctx.Err() != nil {
				break
			}
			scanOne(p)
		}
		return int(scanned.Load())
	}
	var wg sync.WaitGroup
	ch := make(chan *Partition, len(parts))
	for _, p := range parts {
		ch <- p
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ch {
				if ctx.Err() != nil {
					return
				}
				scanOne(p)
			}
		}()
	}
	wg.Wait()
	return int(scanned.Load())
}

// ScanPartitions is the engine's spatial/temporal sub-query parallelism:
// chunks matching the filter are scanned by a worker pool; each worker
// collects the events passing both the filter and the keep predicate into
// a per-chunk buffer and hands it to merge together with the number of
// events visited. merge may be called concurrently; the caller
// synchronizes. Returns the number of chunks whose scan started.
//
// Cancelling ctx aborts the scan early: unstarted chunks are skipped
// (and excluded from the returned count) and in-flight chunk scans bail
// out at the next check interval. Partial chunk batches are still handed
// to merge so visited-event accounting stays truthful; the caller
// detects cancellation via ctx.Err().
func (s *Store) ScanPartitions(ctx context.Context, f *EventFilter, keep func(*sysmon.Event) bool, merge func(batch []sysmon.Event, visited int64)) int {
	s.mu.RLock()
	parts := s.selectParts(f)
	s.mu.RUnlock()
	if ctx.Err() != nil {
		return 0
	}
	ops := f.opSet()
	agents := f.agentSet()
	var scanned atomic.Int64
	scanOne := func(p *Partition) {
		scanned.Add(1)
		var batch []sysmon.Event
		var visited int64
		p.scan(f, ops, agents, func(ev *sysmon.Event) bool {
			visited++
			if visited%scanCheckInterval == 0 && ctx.Err() != nil {
				return false
			}
			if keep == nil || keep(ev) {
				batch = append(batch, *ev)
			}
			return true
		})
		merge(batch, visited)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers <= 1 {
		for _, p := range parts {
			if ctx.Err() != nil {
				break
			}
			scanOne(p)
		}
		return int(scanned.Load())
	}
	var wg sync.WaitGroup
	ch := make(chan *Partition, len(parts))
	for _, p := range parts {
		ch <- p
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ch {
				if ctx.Err() != nil {
					return
				}
				scanOne(p)
			}
		}()
	}
	wg.Wait()
	return int(scanned.Load())
}

// EstimateMatches returns an upper-bound estimate of the number of events
// matching the filter — the optimizer's "pruning power" signal. Lower
// estimates mean higher pruning power.
func (s *Store) EstimateMatches(f *EventFilter) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, p := range s.selectParts(f) {
		total += p.estimate(f)
	}
	return total
}

// Agents returns the distinct agent IDs present in the store, ascending.
func (s *Store) Agents() []uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[uint32]struct{}{}
	for _, key := range s.order {
		if s.opts.Partitioning {
			seen[key.AgentID] = struct{}{}
		} else {
			for _, ev := range s.parts[key].events {
				seen[ev.AgentID] = struct{}{}
			}
		}
	}
	out := make([]uint32, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Partitions returns the store's chunks in deterministic order, for bulk
// consumers (baseline loaders, snapshots).
func (s *Store) Partitions() []*Partition {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Partition, 0, len(s.order))
	for _, key := range s.order {
		out = append(out, s.parts[key])
	}
	return out
}
