package eventstore

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/aiql/aiql/internal/sysmon"
)

// ErrClosed reports a write against a closed store. Reachable when a
// live writer (an HTTP ingest, a loader) races a catalog hot-swap that
// closes the store it is about to append to: the write is refused
// cleanly instead of silently losing durability, and the caller retries
// against the swapped-in store.
var ErrClosed = errors.New("eventstore: store is closed")

// scanCheckInterval is how many visited events a scan processes between
// context-cancellation checks. Checking ctx.Err() takes a mutex, so the
// check is amortized over a block of events; unit boundaries are always
// checked.
const scanCheckInterval = 2048

// PartKey identifies a hypertable chunk: one agent over one time bucket.
// With partitioning disabled all events live in the zero-key chunk.
type PartKey struct {
	AgentID uint32
	Bucket  int64 // StartTS / ChunkDuration
}

// partState is one hypertable chunk's LSM state: the active memtable
// receiving committed events plus the chain of sealed immutable
// segments, oldest first.
type partState struct {
	key  PartKey
	mem  memtable
	segs []*Segment
}

// Store is the AIQL data store: an entity dictionary plus hypertable
// chunks of events in an LSM-style layout — per chunk, an active
// in-memory memtable and a chain of sealed, immutable segments. Readers
// obtain a lock-free Snapshot; the store's lock only serializes writers
// and snapshot capture. It is safe for concurrent readers and writers.
type Store struct {
	mu   sync.RWMutex
	opts Options
	dict *Dictionary

	parts map[PartKey]*partState
	order []PartKey // insertion-ordered keys for deterministic iteration

	batch       []sysmon.Event
	commits     uint64
	nextSegID   uint64
	nextEventID uint64
	nextSeq     map[uint32]uint64
	total       int
	minTS       int64
	maxTS       int64

	// snap memoizes the current Snapshot between mutations; commits and
	// seals clear it. Guarded by mu.
	snap *Snapshot

	// dur attaches the store to its durable directory; nil for
	// in-memory stores. Set once before the store is shared.
	dur *durableState

	// blockCache holds decompressed v2 segment column blocks, shared by
	// every mmap-backed segment of the store. nil when disabled.
	blockCache *BlockCache

	compactions   atomic.Uint64
	segsCompacted atomic.Uint64

	// compactorMu guards the background compactor's lifecycle;
	// compactMu serializes compaction passes themselves.
	compactorMu   sync.Mutex
	compactorStop chan struct{}
	compactorDone chan struct{}
	compactMu     sync.Mutex
	closed        atomic.Bool

	retireMu  sync.Mutex
	retireFns []func(segIDs []uint64)
}

// OnSegmentRetire registers fn to be called with the IDs of segments
// retired by compaction, after their replacement is installed. The
// engine uses this to drop the retired segments' scan-cache entries so
// the cache re-points at the merged segment.
func (s *Store) OnSegmentRetire(fn func(segIDs []uint64)) {
	s.retireMu.Lock()
	s.retireFns = append(s.retireFns, fn)
	s.retireMu.Unlock()
}

func (s *Store) notifyRetire(ids []uint64) {
	if len(ids) == 0 {
		return
	}
	s.retireMu.Lock()
	fns := append([]func(segIDs []uint64){}, s.retireFns...)
	s.retireMu.Unlock()
	for _, fn := range fns {
		fn(ids)
	}
}

// afterCommit finishes a commit outside the store lock: index builds
// for freshly sealed segments, then (for durable stores) segment file
// persistence and a manifest edition.
func (s *Store) afterCommit(sealed []*Segment) {
	indexSegments(sealed)
	s.persistSealed(sealed)
}

// New creates a store with the given options.
func New(opts Options) *Store {
	opts = opts.normalized()
	return &Store{
		opts:       opts,
		dict:       newDictionary(opts.Dedup, opts.Indexes),
		parts:      make(map[PartKey]*partState),
		nextSeq:    make(map[uint32]uint64),
		blockCache: NewBlockCache(opts.BlockCacheBytes),
	}
}

// Options returns the store's configuration.
func (s *Store) Options() Options { return s.opts }

// Dict returns the entity dictionary.
func (s *Store) Dict() *Dictionary { return s.dict }

// Record is one raw monitoring record as produced by a collection agent:
// the subject process and object entity are given by value, and the store
// interns them according to its deduplication policy.
type Record struct {
	AgentID uint32
	Subject sysmon.Process
	Op      sysmon.Operation
	ObjProc sysmon.Process // used when Op's object is a process
	ObjFile sysmon.File    // used when Op's object is a file
	ObjConn sysmon.Netconn // used when Op's object is a connection
	ObjType sysmon.EntityType
	StartTS int64
	EndTS   int64
	Amount  uint64
}

// Append ingests one raw record. With batch commit enabled the record is
// buffered and committed when the batch fills; call Flush to force.
// Returns ErrClosed after Close.
func (s *Store) Append(r Record) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return ErrClosed
	}
	s.appendLocked(r)
	var sealed []*Segment
	if !s.opts.BatchCommit || len(s.batch) >= s.opts.BatchSize {
		sealed = s.commitLocked(true)
	}
	s.mu.Unlock()
	s.afterCommit(sealed)
	return nil
}

// AppendAll ingests one acknowledged batch under a single lock
// acquisition: intermediate commit boundaries follow the batch-commit
// policy, the tail commits before the call returns, and the whole batch
// is group-committed — with SyncWAL, every commit the call makes is
// covered by ONE WAL fsync instead of one per commit, so bulk-ingest
// durability costs a single syscall per batch. When the call returns
// the records are visible to queries and (with SyncWAL) durable.
// Returns ErrClosed after Close.
func (s *Store) AppendAll(rs []Record) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return ErrClosed
	}
	var sealed []*Segment
	committed := false
	for i := range rs {
		s.appendLocked(rs[i])
		if !s.opts.BatchCommit || len(s.batch) >= s.opts.BatchSize {
			sealed = append(sealed, s.commitLocked(false)...)
			committed = true
		}
	}
	if len(s.batch) > 0 {
		sealed = append(sealed, s.commitLocked(false)...)
		committed = true
	}
	if committed && s.dur != nil && s.dur.syncWAL {
		// Group commit: the per-commit WAL appends above skipped their
		// fsyncs; this one sync makes the entire batch durable.
		if err := s.dur.wal.Sync(); err != nil {
			s.dur.setErr(err)
		}
	}
	s.mu.Unlock()
	s.afterCommit(sealed)
	return nil
}

func (s *Store) appendLocked(r Record) {
	subj := s.dict.InternProcess(r.Subject)
	var obj sysmon.EntityID
	objType := r.ObjType
	if objType == sysmon.EntityInvalid {
		objType = r.Op.ObjectType()
	}
	switch objType {
	case sysmon.EntityProcess:
		obj = s.dict.InternProcess(r.ObjProc)
	case sysmon.EntityFile:
		obj = s.dict.InternFile(r.ObjFile)
	case sysmon.EntityNetconn:
		obj = s.dict.InternNetconn(r.ObjConn)
	}
	s.nextEventID++
	s.nextSeq[r.AgentID]++
	end := r.EndTS
	if end < r.StartTS {
		end = r.StartTS
	}
	s.batch = append(s.batch, sysmon.Event{
		ID:      s.nextEventID,
		AgentID: r.AgentID,
		Subject: subj,
		Op:      r.Op,
		ObjType: objType,
		Object:  obj,
		StartTS: r.StartTS,
		EndTS:   end,
		Amount:  r.Amount,
		Seq:     s.nextSeq[r.AgentID],
	})
}

// Flush commits any buffered events and seals every non-empty memtable
// into an immutable segment, so the whole store becomes reusable sealed
// state. Sealing moves no data and bumps no commit counter — results
// (and result-cache entries) computed before a seal stay valid — and
// segment index builds run after the store lock is released, so a seal
// never stalls concurrent appends or queries. Returns ErrClosed after
// Close.
func (s *Store) Flush() error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return ErrClosed
	}
	sealed := s.commitLocked(true)
	sealed = append(sealed, s.sealAllLocked()...)
	s.mu.Unlock()
	s.afterCommit(sealed)
	return nil
}

// commitLocked makes the buffered batch visible: events are grouped by
// partition key and appended to each chunk's memtable; memtables that
// reach the seal threshold are sealed. Returns the segments sealed, for
// index building outside the lock. sync=false defers the WAL fsync to a
// caller-issued group commit (AppendAll syncs once after its last
// commit); callers without a later sync point must pass true.
func (s *Store) commitLocked(sync bool) []*Segment {
	if len(s.batch) == 0 {
		return nil
	}
	if s.dur != nil {
		// WAL first: the commit is durable (and, with SyncWAL, fsynced
		// — acknowledged) before it becomes visible.
		s.dur.logCommitLocked(s, sync)
	}
	s.commits++
	s.snap = nil
	// group the batch by partition key, then append per chunk
	groups := make(map[PartKey][]sysmon.Event)
	var keys []PartKey
	for _, ev := range s.batch {
		key := s.partKey(ev.AgentID, ev.StartTS)
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], ev)
		if s.total == 0 || ev.StartTS < s.minTS {
			s.minTS = ev.StartTS
		}
		if s.total == 0 || ev.StartTS > s.maxTS {
			s.maxTS = ev.StartTS
		}
		s.total++
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].AgentID != keys[j].AgentID {
			return keys[i].AgentID < keys[j].AgentID
		}
		return keys[i].Bucket < keys[j].Bucket
	})
	var sealed []*Segment
	for _, key := range keys {
		p := s.parts[key]
		if p == nil {
			p = &partState{key: key}
			s.parts[key] = p
			s.order = append(s.order, key)
		}
		evs := groups[key]
		// within a batch events may interleave; sort once before merging
		inOrder := true
		for i := 1; i < len(evs); i++ {
			if evs[i].StartTS < evs[i-1].StartTS {
				inOrder = false
				break
			}
		}
		if !inOrder {
			sort.SliceStable(evs, func(i, j int) bool { return evs[i].StartTS < evs[j].StartTS })
		}
		p.mem.appendBatch(evs)
		if len(p.mem.events) >= s.opts.SegmentEvents {
			sealed = append(sealed, s.sealPartLocked(p))
		}
	}
	s.batch = s.batch[:0]
	return sealed
}

// sealAllLocked seals every non-empty memtable.
func (s *Store) sealAllLocked() []*Segment {
	var sealed []*Segment
	for _, key := range s.order {
		p := s.parts[key]
		if len(p.mem.events) > 0 {
			sealed = append(sealed, s.sealPartLocked(p))
		}
	}
	return sealed
}

// sealPartLocked turns the chunk's memtable into an immutable segment
// and installs a fresh memtable. The segment is scannable immediately
// (its events are already sorted); posting indexes are built later,
// outside the store lock.
func (s *Store) sealPartLocked(p *partState) *Segment {
	s.nextSegID++
	s.snap = nil
	g := newSegment(s.nextSegID, p.key, p.mem.events, s.opts.Indexes)
	p.segs = append(p.segs, g)
	p.mem = memtable{}
	return g
}

// indexSegments builds posting indexes for freshly sealed segments.
// Callers invoke it with no locks held: this is the seal-time index
// work that must not stall concurrent appends or queries.
func indexSegments(segs []*Segment) {
	for _, g := range segs {
		g.buildIndexes()
	}
}

func (s *Store) partKey(agent uint32, ts int64) PartKey {
	if !s.opts.Partitioning {
		return PartKey{}
	}
	return PartKey{AgentID: agent, Bucket: ts / int64(s.opts.ChunkDuration)}
}

// Commits returns the number of commit boundaries so far — each would be
// one durable transaction in a disk-backed deployment, which is what
// batch commit amortizes. Sealing does not bump the counter: it moves no
// data, so results computed before a seal remain valid.
func (s *Store) Commits() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commits
}

// Closed reports whether the store has been closed. While a durable
// store is open its directory flock is held, so !Closed() doubles as
// "the WAL lock is held" for health reporting.
func (s *Store) Closed() bool { return s.closed.Load() }

// Len returns the number of committed events.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// TimeRange returns the committed events' [min, max] start timestamps.
func (s *Store) TimeRange() (int64, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.minTS, s.maxTS
}

// NumPartitions returns the number of hypertable chunks.
func (s *Store) NumPartitions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.parts)
}

// NumSegments returns the number of sealed segments.
func (s *Store) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, key := range s.order {
		n += len(s.parts[key].segs)
	}
	return n
}

// Scan calls fn for every committed event matching the filter over a
// fresh snapshot; see Snapshot.Scan.
func (s *Store) Scan(ctx context.Context, f *EventFilter, fn func(*sysmon.Event) bool) error {
	return s.Snapshot().Scan(ctx, f, fn)
}

// ScanChunked scans the matching units one at a time over a fresh
// snapshot; see Snapshot.ScanChunked.
func (s *Store) ScanChunked(ctx context.Context, f *EventFilter, keep func(*sysmon.Event) bool, merge func(batch []sysmon.Event, visited int64) bool) error {
	return s.Snapshot().ScanChunked(ctx, f, keep, merge)
}

// Collect returns all events matching the filter.
func (s *Store) Collect(f *EventFilter) []sysmon.Event {
	return s.Snapshot().Collect(f)
}

// ScanParallel fans the scan out across units of a fresh snapshot; see
// Snapshot.ScanParallel.
func (s *Store) ScanParallel(ctx context.Context, f *EventFilter, fn func(*sysmon.Event)) int {
	return s.Snapshot().ScanParallel(ctx, f, fn)
}

// ScanPartitions fans the scan out across units of a fresh snapshot;
// see Snapshot.ScanPartitions.
func (s *Store) ScanPartitions(ctx context.Context, f *EventFilter, keep func(*sysmon.Event) bool, merge func(batch []sysmon.Event, visited int64)) int {
	return s.Snapshot().ScanPartitions(ctx, f, keep, merge)
}

// EstimateMatches returns an upper-bound estimate of the number of events
// matching the filter; see Snapshot.EstimateMatches.
func (s *Store) EstimateMatches(f *EventFilter) int {
	return s.Snapshot().EstimateMatches(f)
}

// Agents returns the distinct agent IDs present in the store, ascending.
func (s *Store) Agents() []uint32 {
	return s.Snapshot().Agents()
}

// PartitionView is one hypertable chunk's committed events, flattened
// across its segments and memtable, for bulk consumers (baseline
// loaders, tests).
type PartitionView struct {
	Key    PartKey
	events []sysmon.Event
}

// Len returns the number of events in the chunk.
func (p *PartitionView) Len() int { return len(p.events) }

// Events returns the chunk's events: each segment's run oldest first,
// then the memtable tail. The slice is owned by the caller.
func (p *PartitionView) Events() []sysmon.Event { return p.events }

// Partitions returns the store's chunks in deterministic order, for bulk
// consumers (baseline loaders, tests).
func (s *Store) Partitions() []*PartitionView {
	sn := s.Snapshot()
	out := make([]*PartitionView, 0, len(sn.parts))
	for i := range sn.parts {
		p := &sn.parts[i]
		pv := &PartitionView{Key: p.key}
		for _, g := range p.segs {
			pv.events = append(pv.events, g.Events()...)
		}
		pv.events = append(pv.events, p.mem.Events()...)
		out = append(out, pv)
	}
	return out
}
