package eventstore

import "sync"

// BlockCache is the byte-bounded cache of decompressed v2 segment
// column blocks. Zero-copy raw blocks never enter it — mapped bytes
// are already the page cache's problem — only blocks that had to be
// decoded to heap (compressed columns, or any column under the read-at
// fallback). Eviction is CLOCK, matching the segment scan cache: one
// used bit per entry, second chance on access, so repeated scans over
// the same warm columns stay resident while one-off scans cycle
// through.
//
// The cache is shared by every segment of one store and is safe for
// concurrent use.
type BlockCache struct {
	mu        sync.Mutex
	max       int64
	bytes     int64
	entries   map[blockCacheKey]*blockCacheEntry
	ring      []*blockCacheEntry
	hand      int
	hits      uint64
	misses    uint64
	evictions uint64
}

type blockCacheKey struct {
	seg uint64
	col uint8
	blk uint32
}

type blockCacheEntry struct {
	key  blockCacheKey
	data []byte
	used bool
}

// BlockCacheStats is a point-in-time snapshot of cache counters.
type BlockCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Bytes     int64  `json:"bytes"`
	Entries   int    `json:"entries"`
}

// DefaultBlockCacheBytes is the block-cache budget when the option is
// left zero: enough for ~4k decoded 8-byte-wide blocks.
const DefaultBlockCacheBytes = 32 << 20

// NewBlockCache creates a cache bounded to maxBytes of block data.
// Returns nil (an always-miss cache) when maxBytes <= 0.
func NewBlockCache(maxBytes int64) *BlockCache {
	if maxBytes <= 0 {
		return nil
	}
	return &BlockCache{max: maxBytes, entries: make(map[blockCacheKey]*blockCacheEntry)}
}

// get returns the cached block, marking it recently used. A nil cache
// always misses.
func (c *BlockCache) get(seg uint64, col uint8, blk uint32) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[blockCacheKey{seg, col, blk}]; ok {
		e.used = true
		c.hits++
		return e.data, true
	}
	c.misses++
	return nil, false
}

// put inserts an owned block buffer (the cache keeps the slice; the
// caller must not reuse it). No-op on a nil cache, an existing entry,
// or a block bigger than the whole budget.
func (c *BlockCache) put(seg uint64, col uint8, blk uint32, data []byte) {
	if c == nil {
		return
	}
	key := blockCacheKey{seg, col, blk}
	n := int64(len(data))
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok || n > c.max {
		return
	}
	for c.bytes+n > c.max && len(c.ring) > 0 {
		c.evictOneLocked()
	}
	e := &blockCacheEntry{key: key, data: data, used: true}
	c.ring = append(c.ring, e)
	c.entries[key] = e
	c.bytes += n
}

// evictOneLocked runs the CLOCK hand until a victim falls out.
func (c *BlockCache) evictOneLocked() {
	for {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := c.ring[c.hand]
		if e.used {
			e.used = false
			c.hand++
			continue
		}
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.data))
		last := len(c.ring) - 1
		c.ring[c.hand] = c.ring[last]
		c.ring[last] = nil
		c.ring = c.ring[:last]
		c.evictions++
		return
	}
}

// Stats snapshots the cache counters. Safe on a nil cache.
func (c *BlockCache) Stats() BlockCacheStats {
	if c == nil {
		return BlockCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return BlockCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   len(c.ring),
	}
}
