package eventstore

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/aiql/aiql/internal/like"
	"github.com/aiql/aiql/internal/sysmon"
)

// Dictionary holds the entity tables. With deduplication enabled,
// structurally identical entities are interned to a single ID; with
// attribute indexes enabled, exact-value hash indexes and sorted-value
// lists support fast lookup and prefix range scans.
//
// Interning always runs under the Store's write lock, but the streaming
// execution pipeline projects rows (reading Attr) while partitions are
// being scanned outside the store lock, concurrently with writers. The
// dictionary's own RWMutex makes those reads safe; entries are
// immutable once interned, so readers only need the lock to snapshot
// the table headers.
type Dictionary struct {
	mu      sync.RWMutex
	dedup   bool
	indexed bool

	// needsBuild marks a restored dictionary whose intern maps and
	// attribute indexes have not been hydrated yet (see restoreTables).
	needsBuild atomic.Bool

	procs []sysmon.Process // index = EntityID-1
	files []sysmon.File
	conns []sysmon.Netconn

	procIntern map[sysmon.Process]sysmon.EntityID
	fileIntern map[sysmon.File]sysmon.EntityID
	connIntern map[sysmon.Netconn]sysmon.EntityID

	// exact-value indexes: attr → lowercased value → IDs
	procIdx map[string]map[string][]sysmon.EntityID
	fileIdx map[string]map[string][]sysmon.EntityID
	connIdx map[string]map[string][]sysmon.EntityID
}

func newDictionary(dedup, indexed bool) *Dictionary {
	d := &Dictionary{dedup: dedup, indexed: indexed}
	if dedup {
		d.procIntern = make(map[sysmon.Process]sysmon.EntityID)
		d.fileIntern = make(map[sysmon.File]sysmon.EntityID)
		d.connIntern = make(map[sysmon.Netconn]sysmon.EntityID)
	}
	if indexed {
		d.procIdx = make(map[string]map[string][]sysmon.EntityID)
		d.fileIdx = make(map[string]map[string][]sysmon.EntityID)
		d.connIdx = make(map[string]map[string][]sysmon.EntityID)
	}
	return d
}

// tableHeaders snapshots the entity table slice headers. Tables are
// append-only and entries immutable, so the returned slices stay valid
// while the dictionary keeps interning; callers may read them with no
// lock held but must not mutate them.
func (d *Dictionary) tableHeaders() (procs []sysmon.Process, files []sysmon.File, conns []sysmon.Netconn) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.procs, d.files, d.conns
}

// restoreTables installs persisted entity tables into an empty
// dictionary. Entity IDs are table positions, so restoring the tables
// verbatim preserves every ID referenced by persisted events.
//
// The derived structures — intern maps and attribute hash indexes —
// are NOT rebuilt here: they hydrate lazily on first use (an intern, or
// an exact-match index lookup), keeping dataset open latency down to
// reading the tables themselves. Everything else works on the raw
// tables: ID→entity lookups index directly and wildcard attribute
// matches scan the (deduplicated, hence small) tables anyway.
func (d *Dictionary) restoreTables(procs []sysmon.Process, files []sysmon.File, conns []sysmon.Netconn) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.procs, d.files, d.conns = procs, files, conns
	if d.dedup || d.indexed {
		d.needsBuild.Store(true)
	}
}

// ensureBuilt hydrates the derived structures deferred by
// restoreTables; a no-op (one atomic load) once built.
func (d *Dictionary) ensureBuilt() {
	if !d.needsBuild.Load() {
		return
	}
	d.mu.Lock()
	d.buildLocked()
	d.mu.Unlock()
}

// buildLocked rebuilds intern maps and attribute indexes from the
// restored tables. The three entity types rebuild concurrently — their
// maps are disjoint. Caller holds the write lock.
func (d *Dictionary) buildLocked() {
	if !d.needsBuild.Load() {
		return
	}
	procs, files, conns := d.procs, d.files, d.conns
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		if d.dedup {
			d.procIntern = make(map[sysmon.Process]sysmon.EntityID, len(procs))
		}
		for i := range procs {
			id := sysmon.EntityID(i + 1)
			if d.dedup {
				d.procIntern[procs[i]] = id
			}
			if d.indexed {
				for _, attr := range sysmon.Attrs(sysmon.EntityProcess) {
					addIdx(d.procIdx, attr, sysmon.ProcessAttr(&procs[i], attr), id)
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		if d.dedup {
			d.fileIntern = make(map[sysmon.File]sysmon.EntityID, len(files))
		}
		for i := range files {
			id := sysmon.EntityID(i + 1)
			if d.dedup {
				d.fileIntern[files[i]] = id
			}
			if d.indexed {
				for _, attr := range sysmon.Attrs(sysmon.EntityFile) {
					addIdx(d.fileIdx, attr, sysmon.FileAttr(&files[i], attr), id)
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		if d.dedup {
			d.connIntern = make(map[sysmon.Netconn]sysmon.EntityID, len(conns))
		}
		for i := range conns {
			id := sysmon.EntityID(i + 1)
			if d.dedup {
				d.connIntern[conns[i]] = id
			}
			if d.indexed {
				for _, attr := range sysmon.Attrs(sysmon.EntityNetconn) {
					addIdx(d.connIdx, attr, sysmon.NetconnAttr(&conns[i], attr), id)
				}
			}
		}
	}()
	wg.Wait()
	d.needsBuild.Store(false)
}

// InternProcess returns the ID for p, creating (and indexing) it if new.
func (d *Dictionary) InternProcess(p sysmon.Process) sysmon.EntityID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildLocked()
	if d.dedup {
		if id, ok := d.procIntern[p]; ok {
			return id
		}
	}
	d.procs = append(d.procs, p)
	id := sysmon.EntityID(len(d.procs))
	if d.dedup {
		d.procIntern[p] = id
	}
	if d.indexed {
		for _, attr := range sysmon.Attrs(sysmon.EntityProcess) {
			addIdx(d.procIdx, attr, sysmon.ProcessAttr(&p, attr), id)
		}
	}
	return id
}

// InternFile returns the ID for f, creating (and indexing) it if new.
func (d *Dictionary) InternFile(f sysmon.File) sysmon.EntityID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildLocked()
	if d.dedup {
		if id, ok := d.fileIntern[f]; ok {
			return id
		}
	}
	d.files = append(d.files, f)
	id := sysmon.EntityID(len(d.files))
	if d.dedup {
		d.fileIntern[f] = id
	}
	if d.indexed {
		for _, attr := range sysmon.Attrs(sysmon.EntityFile) {
			addIdx(d.fileIdx, attr, sysmon.FileAttr(&f, attr), id)
		}
	}
	return id
}

// InternNetconn returns the ID for n, creating (and indexing) it if new.
func (d *Dictionary) InternNetconn(n sysmon.Netconn) sysmon.EntityID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildLocked()
	if d.dedup {
		if id, ok := d.connIntern[n]; ok {
			return id
		}
	}
	d.conns = append(d.conns, n)
	id := sysmon.EntityID(len(d.conns))
	if d.dedup {
		d.connIntern[n] = id
	}
	if d.indexed {
		for _, attr := range sysmon.Attrs(sysmon.EntityNetconn) {
			addIdx(d.connIdx, attr, sysmon.NetconnAttr(&n, attr), id)
		}
	}
	return id
}

func addIdx(idx map[string]map[string][]sysmon.EntityID, attr, val string, id sysmon.EntityID) {
	val = strings.ToLower(val)
	m := idx[attr]
	if m == nil {
		m = make(map[string][]sysmon.EntityID)
		idx[attr] = m
	}
	m[val] = append(m[val], id)
}

// Process returns the process entity for id, or nil if out of range.
func (d *Dictionary) Process(id sysmon.EntityID) *sysmon.Process {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || int(id) > len(d.procs) {
		return nil
	}
	return &d.procs[id-1]
}

// File returns the file entity for id, or nil if out of range.
func (d *Dictionary) File(id sysmon.EntityID) *sysmon.File {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || int(id) > len(d.files) {
		return nil
	}
	return &d.files[id-1]
}

// Netconn returns the connection entity for id, or nil if out of range.
func (d *Dictionary) Netconn(id sysmon.EntityID) *sysmon.Netconn {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || int(id) > len(d.conns) {
		return nil
	}
	return &d.conns[id-1]
}

// Attr returns the string value of attr for the entity (t, id).
func (d *Dictionary) Attr(t sysmon.EntityType, id sysmon.EntityID, attr string) string {
	switch t {
	case sysmon.EntityProcess:
		if p := d.Process(id); p != nil {
			return sysmon.ProcessAttr(p, attr)
		}
	case sysmon.EntityFile:
		if f := d.File(id); f != nil {
			return sysmon.FileAttr(f, attr)
		}
	case sysmon.EntityNetconn:
		if n := d.Netconn(id); n != nil {
			return sysmon.NetconnAttr(n, attr)
		}
	}
	return ""
}

// Count returns the number of entities of type t.
func (d *Dictionary) Count(t sysmon.EntityType) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	switch t {
	case sysmon.EntityProcess:
		return len(d.procs)
	case sysmon.EntityFile:
		return len(d.files)
	case sysmon.EntityNetconn:
		return len(d.conns)
	default:
		return 0
	}
}

// MatchEntities returns the set of entity IDs of type t whose attribute
// attr matches the LIKE pattern. With indexes enabled, exact patterns use
// the hash index; wildcard patterns scan the (deduplicated, hence small)
// dictionary. Without indexes every lookup scans the dictionary.
func (d *Dictionary) MatchEntities(t sysmon.EntityType, attr string, pat *like.Pattern) *IDSet {
	if d.indexed && pat.Exact() {
		d.ensureBuilt() // only the exact path consults the hash indexes
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	attr, ok := sysmon.CanonicalAttr(t, attr)
	if !ok {
		return NewIDSet()
	}
	if d.indexed && pat.Exact() {
		var idx map[string]map[string][]sysmon.EntityID
		switch t {
		case sysmon.EntityProcess:
			idx = d.procIdx
		case sysmon.EntityFile:
			idx = d.fileIdx
		case sysmon.EntityNetconn:
			idx = d.connIdx
		}
		if m := idx[attr]; m != nil {
			return NewIDSet(m[pat.ExactValue()]...)
		}
	}
	out := NewIDSet()
	switch t {
	case sysmon.EntityProcess:
		for i := range d.procs {
			if pat.Match(sysmon.ProcessAttr(&d.procs[i], attr)) {
				out.Add(sysmon.EntityID(i + 1))
			}
		}
	case sysmon.EntityFile:
		for i := range d.files {
			if pat.Match(sysmon.FileAttr(&d.files[i], attr)) {
				out.Add(sysmon.EntityID(i + 1))
			}
		}
	case sysmon.EntityNetconn:
		for i := range d.conns {
			if pat.Match(sysmon.NetconnAttr(&d.conns[i], attr)) {
				out.Add(sysmon.EntityID(i + 1))
			}
		}
	}
	return out
}

// AllValues returns the distinct lowercased values of attr over entities of
// type t, sorted; used by tools and tests.
func (d *Dictionary) AllValues(t sysmon.EntityType, attr string) []string {
	seen := map[string]struct{}{}
	n := d.Count(t)
	for i := 1; i <= n; i++ {
		seen[strings.ToLower(d.Attr(t, sysmon.EntityID(i), attr))] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
