package eventstore

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/aiql/aiql/internal/sysmon"
	"github.com/aiql/aiql/internal/workpool"
)

// Snapshot is an immutable, epoch-pinned view of a store: for every
// hypertable chunk, the sealed segment chain plus a frozen view of the
// active memtable, captured at one commit boundary. Acquiring a snapshot
// takes the store lock only long enough to copy slice headers; every
// scan then runs entirely lock-free — concurrent appends, commits, and
// seals never move data under a reader, and a reader draining a slow
// client never stalls a writer.
//
// Queries execute against one snapshot end to end, so a cursor iterated
// while the store absorbs new data still sees exactly the segment set
// that existed when execution began.
type Snapshot struct {
	opts    Options
	dict    *Dictionary
	commits uint64
	total   int
	minTS   int64
	maxTS   int64
	parts   []snapPart
}

// snapPart is one chunk's view: sealed segments plus the unsealed tail.
type snapPart struct {
	key  PartKey
	segs []*Segment
	mem  MemView
}

// Snapshot captures the store's current committed state. Snapshots are
// immutable and shared: repeated calls between commits return the same
// instance, so a read-mostly store pays the capture cost once per
// commit, not once per query.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	if sn := s.snap; sn != nil {
		s.mu.RUnlock()
		return sn
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap == nil {
		s.snap = s.buildSnapshotLocked()
	}
	return s.snap
}

// buildSnapshotLocked materializes the current view; the caller holds
// the write lock.
func (s *Store) buildSnapshotLocked() *Snapshot {
	sn := &Snapshot{
		opts:    s.opts,
		dict:    s.dict,
		commits: s.commits,
		total:   s.total,
		minTS:   s.minTS,
		maxTS:   s.maxTS,
		parts:   make([]snapPart, 0, len(s.order)),
	}
	for _, key := range s.order {
		p := s.parts[key]
		// The seg slice header is shared, not copied: segment chains are
		// append-only (no compaction rewrites elements in place), so the
		// snapshot's [0:len) window stays immutable even while sealers
		// append past it.
		sn.parts = append(sn.parts, snapPart{key: key, segs: p.segs, mem: p.mem.view()})
	}
	return sn
}

// Dict returns the entity dictionary. The dictionary is append-only and
// shared with the live store: IDs referenced by snapshot events stay
// valid forever.
func (sn *Snapshot) Dict() *Dictionary { return sn.dict }

// Commits returns the store's commit counter at capture time.
func (sn *Snapshot) Commits() uint64 { return sn.commits }

// Len returns the number of committed events in the snapshot.
func (sn *Snapshot) Len() int { return sn.total }

// TimeRange returns the snapshot's [min, max] start timestamps.
func (sn *Snapshot) TimeRange() (int64, int64) { return sn.minTS, sn.maxTS }

// NumPartitions returns the number of hypertable chunks.
func (sn *Snapshot) NumPartitions() int { return len(sn.parts) }

// NumSegments returns the number of sealed segments.
func (sn *Snapshot) NumSegments() int {
	n := 0
	for i := range sn.parts {
		n += len(sn.parts[i].segs)
	}
	return n
}

// ScanUnit is one independently scannable piece of a snapshot: a sealed
// segment or a chunk's unsealed memtable tail. Sealed units have a
// stable identity (the segment id), which is what makes their scan
// results safely cacheable and reusable across appends.
type ScanUnit struct {
	key PartKey
	seg *Segment // exactly one of seg/mem is set
	mem *MemView
}

// Sealed reports whether the unit is an immutable sealed segment.
func (u *ScanUnit) Sealed() bool { return u.seg != nil }

// SegmentID returns the sealed segment's id; 0 for memtable tails.
func (u *ScanUnit) SegmentID() uint64 {
	if u.seg == nil {
		return 0
	}
	return u.seg.id
}

// Key returns the hypertable chunk the unit belongs to.
func (u *ScanUnit) Key() PartKey { return u.key }

// Len returns the number of events in the unit.
func (u *ScanUnit) Len() int {
	if u.seg != nil {
		return u.seg.Len()
	}
	return u.mem.Len()
}

// Scan calls fn for every event in the unit passing the filter, in
// start-timestamp order, and reports whether the unit was scanned to
// completion (fn never returned false).
func (u *ScanUnit) Scan(f *EventFilter, fn func(*sysmon.Event) bool) bool {
	ops := f.opSet()
	agents := f.agentSet()
	if u.seg != nil {
		return u.seg.scan(f, ops, agents, fn)
	}
	return u.mem.scan(f, ops, agents, fn)
}

// Estimate returns an upper bound on the unit's events matching f.
func (u *ScanUnit) Estimate(f *EventFilter) int {
	if u.seg != nil {
		return u.seg.estimate(f)
	}
	return u.mem.estimate(f)
}

// Units returns the scan units that can contain events matching the
// filter, pruned along the spatial (agent) and temporal (time range)
// dimensions, in deterministic order: chunks in insertion order, each
// chunk's segments oldest first, its memtable tail last.
func (sn *Snapshot) Units(f *EventFilter) []ScanUnit {
	agents := f.agentSet()
	out := make([]ScanUnit, 0, len(sn.parts))
	for i := range sn.parts {
		p := &sn.parts[i]
		if sn.opts.Partitioning && agents != nil {
			if _, ok := agents[p.key.AgentID]; !ok {
				continue
			}
		}
		for _, g := range p.segs {
			if g.overlaps(f.From, f.To) {
				out = append(out, ScanUnit{key: p.key, seg: g})
			}
		}
		if p.mem.overlaps(f.From, f.To) {
			out = append(out, ScanUnit{key: p.key, mem: &sn.parts[i].mem})
		}
	}
	return out
}

// Scan calls fn for every event matching the filter. Within a scan unit
// events arrive in start-time order; across units the order follows the
// deterministic unit order. fn returning false stops the scan.
//
// The scan honors ctx: it checks for cancellation before starting, at
// every unit boundary, and every scanCheckInterval visited events, and
// returns ctx.Err() when the scan was aborted by cancellation.
func (sn *Snapshot) Scan(ctx context.Context, f *EventFilter, fn func(*sysmon.Event) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ops := f.opSet()
	agents := f.agentSet()
	visited := 0
	cancelled := false
	for _, u := range sn.Units(f) {
		scanFn := func(ev *sysmon.Event) bool {
			visited++
			if visited%scanCheckInterval == 0 && ctx.Err() != nil {
				cancelled = true
				return false
			}
			return fn(ev)
		}
		var ok bool
		if u.seg != nil {
			ok = u.seg.scan(f, ops, agents, scanFn)
		} else {
			ok = u.mem.scan(f, ops, agents, scanFn)
		}
		if cancelled {
			return ctx.Err()
		}
		if !ok {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Collect returns all events matching the filter.
func (sn *Snapshot) Collect(f *EventFilter) []sysmon.Event {
	var out []sysmon.Event
	sn.Scan(context.Background(), f, func(ev *sysmon.Event) bool {
		out = append(out, *ev)
		return true
	})
	return out
}

// ScanChunked scans the matching units one at a time in deterministic
// order: each unit's events passing the filter and the keep predicate
// are collected into a batch, then handed to merge. The snapshot holds
// no locks, so merge may block arbitrarily long (a consumer draining
// rows to a slow client) without stalling writers or other readers.
// merge returning false stops the scan; batches are bounded by unit
// size, and visited counts the events examined for the batch. Returns
// ctx.Err() when the scan was aborted by cancellation.
func (sn *Snapshot) ScanChunked(ctx context.Context, f *EventFilter, keep func(*sysmon.Event) bool, merge func(batch []sysmon.Event, visited int64) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ops := f.opSet()
	agents := f.agentSet()
	for _, u := range sn.Units(f) {
		batch, visited, complete := collectUnit(ctx, &u, f, ops, agents, keep)
		if !merge(batch, visited) {
			return nil
		}
		if !complete {
			return ctx.Err()
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// collectUnit gathers one unit's events passing filter and keep into a
// batch, amortizing cancellation checks; complete is false when the
// scan was aborted by ctx.
func collectUnit(ctx context.Context, u *ScanUnit, f *EventFilter, ops *[sysmon.NumOperations]bool, agents map[uint32]struct{}, keep func(*sysmon.Event) bool) (batch []sysmon.Event, visited int64, complete bool) {
	complete = true
	scanFn := func(ev *sysmon.Event) bool {
		visited++
		if visited%scanCheckInterval == 0 && ctx.Err() != nil {
			complete = false
			return false
		}
		if keep == nil || keep(ev) {
			batch = append(batch, *ev)
		}
		return true
	}
	if u.seg != nil {
		u.seg.scan(f, ops, agents, scanFn)
	} else {
		u.mem.scan(f, ops, agents, scanFn)
	}
	return batch, visited, complete
}

// ScanPartitions fans the scan out across units using up to
// runtime.GOMAXPROCS workers: each worker collects a unit's events
// passing both the filter and the keep predicate into a batch and hands
// it to merge together with the number of events visited. merge may be
// called concurrently; the caller synchronizes. Returns the number of
// units whose scan started.
//
// Cancelling ctx aborts the scan early: unstarted units are skipped
// (and excluded from the returned count) and in-flight unit scans bail
// out at the next check interval. Partial batches are still handed to
// merge so visited-event accounting stays truthful; the caller detects
// cancellation via ctx.Err().
func (sn *Snapshot) ScanPartitions(ctx context.Context, f *EventFilter, keep func(*sysmon.Event) bool, merge func(batch []sysmon.Event, visited int64)) int {
	if ctx.Err() != nil {
		return 0
	}
	units := sn.Units(f)
	ops := f.opSet()
	agents := f.agentSet()
	var scanned atomic.Int64
	scanOne := func(u *ScanUnit) {
		scanned.Add(1)
		batch, visited, _ := collectUnit(ctx, u, f, ops, agents, keep)
		merge(batch, visited)
	}
	ForEachUnit(ctx, units, func(_ int, u *ScanUnit) { scanOne(u) })
	return int(scanned.Load())
}

// ForEachUnit runs fn over the units, fanning out onto the process-wide
// scan worker pool, skipping unstarted units once ctx is cancelled. fn
// receives each unit's index and must be safe for concurrent use. The
// calling goroutine always participates, so the fan-out makes progress
// (sequentially, in order) even when the pool is saturated or empty.
func ForEachUnit(ctx context.Context, units []ScanUnit, fn func(int, *ScanUnit)) {
	if len(units) == 0 {
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			if ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= len(units) {
				return
			}
			fn(i, &units[i])
		}
	}
	pool := workpool.Default()
	helpers := pool.Helpers()
	if helpers > len(units)-1 {
		helpers = len(units) - 1
	}
	var wg sync.WaitGroup
	for w := 0; w < helpers; w++ {
		wg.Add(1)
		if !pool.TryGo(func() { defer wg.Done(); run() }) {
			wg.Done()
			break
		}
	}
	run()
	wg.Wait()
}

// ScanParallel fans the scan out across units and calls fn concurrently
// (fn must be safe for concurrent use). Returns the number of units
// whose scan started — fewer than the matching units when ctx is
// cancelled early.
func (sn *Snapshot) ScanParallel(ctx context.Context, f *EventFilter, fn func(*sysmon.Event)) int {
	if ctx.Err() != nil {
		return 0
	}
	units := sn.Units(f)
	ops := f.opSet()
	agents := f.agentSet()
	var scanned atomic.Int64
	scanOne := func(u *ScanUnit) {
		scanned.Add(1)
		visited := 0
		scanFn := func(ev *sysmon.Event) bool {
			visited++
			if visited%scanCheckInterval == 0 && ctx.Err() != nil {
				return false
			}
			fn(ev)
			return true
		}
		if u.seg != nil {
			u.seg.scan(f, ops, agents, scanFn)
		} else {
			u.mem.scan(f, ops, agents, scanFn)
		}
	}
	ForEachUnit(ctx, units, func(_ int, u *ScanUnit) { scanOne(u) })
	return int(scanned.Load())
}

// EstimateMatches returns an upper-bound estimate of the number of
// events matching the filter — the optimizer's "pruning power" signal.
// Lower estimates mean higher pruning power.
func (sn *Snapshot) EstimateMatches(f *EventFilter) int {
	total := 0
	for _, u := range sn.Units(f) {
		total += u.Estimate(f)
	}
	return total
}

// Agents returns the distinct agent IDs present in the snapshot,
// ascending.
func (sn *Snapshot) Agents() []uint32 {
	seen := map[uint32]struct{}{}
	for i := range sn.parts {
		p := &sn.parts[i]
		if sn.opts.Partitioning {
			seen[p.key.AgentID] = struct{}{}
			continue
		}
		for _, g := range p.segs {
			evs := g.Events()
			for j := range evs {
				seen[evs[j].AgentID] = struct{}{}
			}
		}
		evs := p.mem.Events()
		for j := range evs {
			seen[evs[j].AgentID] = struct{}{}
		}
	}
	out := make([]uint32, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
