package eventstore

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"github.com/aiql/aiql/internal/sysmon"
)

// diskSnapshot is the on-disk representation of a store: the entity
// tables plus the flat event log. Chunking, segments, and indexes are
// rebuilt on load, so a snapshot written by an optimized store can be
// loaded into a plain one and vice versa.
type diskSnapshot struct {
	Version int
	Procs   []sysmon.Process
	Files   []sysmon.File
	Conns   []sysmon.Netconn
	Events  []sysmon.Event
}

const snapshotVersion = 1

// Encode serializes the store (gob-encoded) to w. The store lock is
// held only long enough to copy slice headers — segment runs, frozen
// memtable prefixes, and dictionary tables are all immutable behind
// their headers — so the (potentially long) gob encode of a large store
// never stalls writers.
func (s *Store) Encode(w io.Writer) error {
	snap := diskSnapshot{Version: snapshotVersion}
	s.mu.RLock()
	runs := make([][]sysmon.Event, 0, 2*len(s.order))
	total := 0
	for _, key := range s.order {
		p := s.parts[key]
		for _, g := range p.segs {
			runs = append(runs, g.Events())
			total += g.Len()
		}
		runs = append(runs, p.mem.events)
		total += len(p.mem.events)
	}
	s.mu.RUnlock()
	// The dictionary has its own lock; tables are append-only so the
	// headers stay valid while interning continues.
	snap.Procs, snap.Files, snap.Conns = s.dict.tableHeaders()

	snap.Events = make([]sysmon.Event, 0, total)
	for _, run := range runs {
		snap.Events = append(snap.Events, run...)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Decode loads a snapshot written by Encode into an empty store,
// rebuilding chunks, segments, and indexes according to the store's own
// options. The loaded data is fully sealed, so a freshly loaded dataset
// is immediately eligible for segment-granular result reuse.
//
// Truncated or corrupt input returns a descriptive error: gob decoding
// failures (including panics deep inside the decoder) are captured, and
// every event's entity references are bounds-checked against the
// decoded tables before anything is committed.
func (s *Store) Decode(r io.Reader) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("eventstore: decode snapshot: corrupt input: %v", p)
		}
	}()
	var snap diskSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("eventstore: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("eventstore: unsupported snapshot version %d", snap.Version)
	}
	for i := range snap.Events {
		ev := &snap.Events[i]
		if int(ev.Subject) > len(snap.Procs) {
			return fmt.Errorf("eventstore: corrupt snapshot: event %d references process %d of %d", ev.ID, ev.Subject, len(snap.Procs))
		}
		var objects int
		switch ev.ObjType {
		case sysmon.EntityProcess:
			objects = len(snap.Procs)
		case sysmon.EntityFile:
			objects = len(snap.Files)
		case sysmon.EntityNetconn:
			objects = len(snap.Conns)
		case sysmon.EntityInvalid:
			// legal for operations whose object type is ambiguous and
			// was never resolved; such events carry no object reference
		default:
			return fmt.Errorf("eventstore: corrupt snapshot: event %d has object type %d", ev.ID, ev.ObjType)
		}
		if int(ev.Object) > objects {
			return fmt.Errorf("eventstore: corrupt snapshot: event %d references %s object %d of %d", ev.ID, ev.ObjType, ev.Object, objects)
		}
	}
	s.mu.Lock()
	if s.total != 0 || len(s.batch) != 0 {
		s.mu.Unlock()
		return fmt.Errorf("eventstore: Decode requires an empty store")
	}
	// Entity IDs in the snapshot are positions in the original tables;
	// re-intern to honor this store's dedup/index options while keeping a
	// translation map so the event endpoints stay correct.
	procMap := make([]sysmon.EntityID, len(snap.Procs)+1)
	for i, p := range snap.Procs {
		procMap[i+1] = s.dict.InternProcess(p)
	}
	fileMap := make([]sysmon.EntityID, len(snap.Files)+1)
	for i, f := range snap.Files {
		fileMap[i+1] = s.dict.InternFile(f)
	}
	connMap := make([]sysmon.EntityID, len(snap.Conns)+1)
	for i, c := range snap.Conns {
		connMap[i+1] = s.dict.InternNetconn(c)
	}
	var sealed []*Segment
	for _, ev := range snap.Events {
		if int(ev.Subject) < len(procMap) {
			ev.Subject = procMap[ev.Subject]
		}
		switch ev.ObjType {
		case sysmon.EntityProcess:
			if int(ev.Object) < len(procMap) {
				ev.Object = procMap[ev.Object]
			}
		case sysmon.EntityFile:
			if int(ev.Object) < len(fileMap) {
				ev.Object = fileMap[ev.Object]
			}
		case sysmon.EntityNetconn:
			if int(ev.Object) < len(connMap) {
				ev.Object = connMap[ev.Object]
			}
		}
		if ev.ID > s.nextEventID {
			s.nextEventID = ev.ID
		}
		if ev.Seq > s.nextSeq[ev.AgentID] {
			s.nextSeq[ev.AgentID] = ev.Seq
		}
		s.batch = append(s.batch, ev)
		if len(s.batch) >= 65536 {
			sealed = append(sealed, s.commitLocked(true)...)
		}
	}
	sealed = append(sealed, s.commitLocked(true)...)
	sealed = append(sealed, s.sealAllLocked()...)
	s.mu.Unlock()
	s.afterCommit(sealed)
	return nil
}

// SaveFile writes the store snapshot to path.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("eventstore: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := s.Encode(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("eventstore: flush snapshot: %w", err)
	}
	return f.Close()
}

// LoadFile reads a snapshot from path into a new store with opts.
func LoadFile(path string, opts Options) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("eventstore: %w", err)
	}
	defer f.Close()
	s := New(opts)
	if err := s.Decode(bufio.NewReader(f)); err != nil {
		return nil, err
	}
	return s, nil
}
