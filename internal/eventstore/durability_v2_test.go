package eventstore

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/aiql/aiql/internal/durable"
	"github.com/aiql/aiql/internal/sysmon"
)

// downgradeDirToV1 rewrites every v2 segment file under dir in the v1
// gob format, simulating a data directory produced before the columnar
// format existed. Filenames, IDs, and event counts are unchanged, so
// the manifest stays valid. Returns the number of files rewritten.
func downgradeDirToV1(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "seg-") || !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		op, err := durable.OpenSegment(path)
		if err != nil {
			t.Fatal(err)
		}
		if op.V2 == nil {
			continue
		}
		rd := op.V2
		evs, err := rd.MaterializeEvents()
		if err != nil {
			t.Fatal(err)
		}
		sub, obj, err := rd.ReadIndexes()
		if err != nil {
			t.Fatal(err)
		}
		sd := &durable.SegmentData{
			ID:         rd.ID,
			AgentID:    rd.AgentID,
			Bucket:     rd.Bucket,
			Events:     evs,
			Indexed:    rd.Indexed,
			PostingSub: sub,
			PostingObj: obj,
			OpCount:    rd.OpCount,
		}
		if err := durable.ReplaceSegmentFile(path, durable.EncodeSegment(sd)); err != nil {
			t.Fatal(err)
		}
		n++
	}
	// A pre-columnar store also had no Format hints in its manifest:
	// fold the delta log into the base, clear every hint, and rewrite,
	// so the reopen exercises the legacy sniff-the-header path rather
	// than the v2 lazy restore.
	m, err := durable.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := durable.ApplyManifestDeltas(dir, m); err != nil {
		t.Fatal(err)
	}
	for i := range m.Segments {
		m.Segments[i].Format = durable.SegmentFormatUnknown
	}
	if err := durable.WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if err := durable.RemoveManifestDelta(dir); err != nil {
		t.Fatal(err)
	}
	return n
}

// segmentFileVersions returns the format version of every segment file
// under dir.
func segmentFileVersions(t *testing.T, dir string) []int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var vs []int
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "seg-") || !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		v, err := durable.SegmentFileVersion(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	return vs
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// Seals after the first full manifest write must append O(delta)
// frames to MANIFEST.delta instead of rewriting the whole manifest:
// the MANIFEST file's bytes stay fixed while editions advance, and a
// reopen replays the deltas (the WAL has been truncated against them,
// so the deltas are the only durable record of the sealed segments).
func TestManifestDeltaEditions(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 16, 0) // first seal → full manifest; second seal → first delta
	st0 := s.DurableStats()
	if st0.ManifestEdition < 2 {
		t.Fatalf("after 16 events: edition %d, want >= 2", st0.ManifestEdition)
	}
	base := fileSize(t, filepath.Join(dir, durable.ManifestName))

	fill(s, 64, 100) // 8 more seals, all of them delta appends
	st := s.DurableStats()
	if st.ManifestEdition <= st0.ManifestEdition {
		t.Fatalf("edition did not advance: %d -> %d", st0.ManifestEdition, st.ManifestEdition)
	}
	if st.ManifestDeltas <= 0 {
		t.Fatalf("ManifestDeltas = %d, want > 0", st.ManifestDeltas)
	}
	if got := fileSize(t, filepath.Join(dir, durable.ManifestName)); got != base {
		t.Fatalf("MANIFEST grew %d -> %d bytes; seals must append deltas, not rewrite", base, got)
	}
	// Each frame carries only the per-seal delta, not the full segment
	// list: the whole log for ~10 editions stays small.
	if st.ManifestDeltas > 64<<10 {
		t.Fatalf("delta log is %d bytes for %d editions; frames are not O(delta)", st.ManifestDeltas, st.ManifestEdition)
	}
	want := eventStrings(s)
	wantLen := s.Len()
	crash(s)

	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != wantLen {
		t.Fatalf("reopened store has %d events, want %d", s2.Len(), wantLen)
	}
	if got := eventStrings(s2); !reflect.DeepEqual(got, want) {
		t.Fatal("reopened events differ after delta replay")
	}
	if got := s2.DurableStats().ManifestEdition; got != st.ManifestEdition {
		t.Fatalf("reopened edition %d, want %d", got, st.ManifestEdition)
	}
	// The reopened store keeps appending deltas from the recovered edition.
	fill(s2, 16, 500)
	if got := s2.DurableStats().ManifestEdition; got <= st.ManifestEdition {
		t.Fatalf("post-recovery edition %d, want > %d", got, st.ManifestEdition)
	}
}

// A torn tail in MANIFEST.delta — a crash mid-append — must not lose
// the intact frames before it.
func TestManifestDeltaTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 48, 0)
	if s.DurableStats().ManifestDeltas <= 0 {
		t.Fatal("expected delta frames before tearing the log")
	}
	want := eventStrings(s)
	crash(s)

	f, err := os.OpenFile(filepath.Join(dir, durable.ManifestDeltaName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x7f, 0x03, 0xee, 0x41, 0x99}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := eventStrings(s2); !reflect.DeepEqual(got, want) {
		t.Fatal("reopened events differ after torn delta tail")
	}
	fill(s2, 16, 500)
	if e := s2.DurableStats().LastError; e != "" {
		t.Fatalf("post-recovery appends: %v", e)
	}
}

// A full manifest rewrite (compaction) removes the delta log. If a
// crash resurrects stale frames — editions at or below the rewritten
// manifest's — recovery must skip them rather than re-apply old state.
func TestManifestDeltaStaleFrames(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 48, 0)
	deltaPath := filepath.Join(dir, durable.ManifestDeltaName)
	stale, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}

	if res := s.Compact(); res.Passes == 0 {
		t.Fatal("compaction found no work; test needs a full manifest rewrite")
	}
	if _, err := os.Stat(deltaPath); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("delta log still present after compaction rewrite: %v", err)
	}
	// Resurrect the pre-compaction frames, as a crash that interleaved
	// badly with the rewrite could.
	if err := os.WriteFile(deltaPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	want := eventStrings(s)
	wantEdition := s.DurableStats().ManifestEdition
	crash(s)

	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := eventStrings(s2); !reflect.DeepEqual(got, want) {
		t.Fatal("stale delta frames changed recovered state")
	}
	if got := s2.DurableStats().ManifestEdition; got != wantEdition {
		t.Fatalf("reopened edition %d, want %d (stale frames must be skipped)", got, wantEdition)
	}
	seen := map[uint64]bool{}
	for _, ev := range collectAll(s2) {
		if seen[ev.ID] {
			t.Fatalf("duplicate event ID %d after stale-frame recovery", ev.ID)
		}
		seen[ev.ID] = true
	}
}

// A data directory written before the v2 columnar format — v1 gob
// segment files throughout — must open read/write without migration,
// and its data must round-trip through compaction into v2 files.
func TestV1SegmentCompat(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 40, 0)
	want := eventStrings(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := downgradeDirToV1(t, dir); n == 0 {
		t.Fatal("no segment files to downgrade")
	}
	for _, v := range segmentFileVersions(t, dir) {
		if v != 1 {
			t.Fatalf("downgraded dir contains a v%d file", v)
		}
	}

	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := eventStrings(s2); !reflect.DeepEqual(got, want) {
		t.Fatal("v1 directory recovered different events")
	}
	// Writes keep working: new seals are v2 alongside the v1 files.
	fill(s2, 24, 100)
	if e := s2.DurableStats().LastError; e != "" {
		t.Fatalf("appends against v1 directory: %v", e)
	}
	if res := s2.Compact(); res.Passes == 0 {
		t.Fatal("compaction found no work")
	}
	want2 := eventStrings(s2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	hasV2 := false
	for _, v := range segmentFileVersions(t, dir) {
		if v == 2 {
			hasV2 = true
		}
	}
	if !hasV2 {
		t.Fatal("compaction of v1 segments produced no v2 files")
	}

	s3, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := eventStrings(s3); !reflect.DeepEqual(got, want2) {
		t.Fatal("mixed v1/v2 directory recovered different events")
	}
}

// UpgradeSegments rewrites a v1 directory's files as v2 in place,
// restartably and without touching the manifest.
func TestUpgradeSegmentsInPlace(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 40, 0)
	want := eventStrings(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	downgradeDirToV1(t, dir)

	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.UpgradeSegments()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("UpgradeSegments converted nothing")
	}
	for _, v := range segmentFileVersions(t, dir) {
		if v != 2 {
			t.Fatalf("after upgrade: v%d file remains", v)
		}
	}
	// A second pass is a no-op.
	if n2, err := s2.UpgradeSegments(); err != nil || n2 != 0 {
		t.Fatalf("second upgrade pass: n=%d err=%v", n2, err)
	}
	if got := eventStrings(s2); !reflect.DeepEqual(got, want) {
		t.Fatal("events differ in upgrading store")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := eventStrings(s3); !reflect.DeepEqual(got, want) {
		t.Fatal("events differ after reopening upgraded directory")
	}
}

// StorageStats reports mapped bytes for open v2 segments and block
// cache traffic once batch scans decode compressed columns.
func TestStorageStatsBlockCache(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fill(s, 64, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	scan := func() int {
		cf := (&EventFilter{}).Compile()
		keep := func(*sysmon.Event) bool { return true }
		total := 0
		for _, u := range s2.Snapshot().Units(&EventFilter{}) {
			batch, _, complete := u.CollectBatch(context.Background(), cf, keep)
			if !complete {
				t.Fatal("batch scan incomplete")
			}
			total += len(batch)
		}
		return total
	}
	if got := scan(); got != 64 {
		t.Fatalf("batch scan returned %d events, want 64", got)
	}
	st := s2.StorageStats()
	if st.BlockCache.Misses == 0 {
		t.Fatal("cold batch scan recorded no block-cache misses")
	}
	if st.BlockCache.Bytes <= 0 || st.BlockCache.Entries == 0 {
		t.Fatalf("block cache holds nothing after a scan: %+v", st.BlockCache)
	}
	if st.HeapBytes < st.BlockCache.Bytes {
		t.Fatalf("HeapBytes %d < cached block bytes %d", st.HeapBytes, st.BlockCache.Bytes)
	}
	scan()
	st2 := s2.StorageStats()
	if st2.BlockCache.Hits == 0 {
		t.Fatal("warm batch scan recorded no block-cache hits")
	}
	// On mmap-capable platforms the open segment files are mapped, not
	// heap-resident; the read-at fallback reports zero mapped bytes.
	segBytes := int64(0)
	for _, v := range segmentFileVersions(t, dir) {
		if v == 2 {
			segBytes = 1
		}
	}
	if segBytes == 0 {
		t.Fatal("expected v2 segment files on disk")
	}
	if st2.MappedBytes < 0 {
		t.Fatalf("negative mapped bytes %d", st2.MappedBytes)
	}
}
