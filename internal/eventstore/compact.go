package eventstore

import (
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/aiql/aiql/internal/durable"
	"github.com/aiql/aiql/internal/sysmon"
)

// Compaction solves the small-segment accumulation problem: repeated
// small seals (frequent Flushes, trickling agents) leave chains of tiny
// segments whose per-segment overhead — scan-cache entries, manifest
// rows, file handles — dwarfs their data. A pass merges a chain of
// adjacent small segments into one (bounded by CompactFanIn segments
// and CompactTargetEvents merged events), installs the result by
// replacing the chain slice copy-on-write — snapshots pinned by
// in-flight queries keep scanning the retired segments, which stay
// immutable — and retires the old segment IDs through the store's
// retire listeners so the engine's scan cache re-points at the merged
// segment. Durable stores write the merged segment file and a new
// manifest edition before deleting the retired files, so a crash at any
// point recovers either the old chain or the new one, never neither.
//
// Compaction moves no events in or out of the store and does not bump
// the commit counter: every result (and result-cache entry) computed
// before a pass remains valid after it.

// CompactionResult sums what compaction passes accomplished.
type CompactionResult struct {
	// Passes is the number of merges performed.
	Passes int
	// SegmentsRetired counts the input segments replaced by merges.
	SegmentsRetired int
	// EventsMerged counts the events rewritten into merged segments.
	EventsMerged int
}

// compactRun is one eligible chain of adjacent small segments.
type compactRun struct {
	key  PartKey
	segs []*Segment
}

// findCompactRunLocked returns the first chain of ≥2 adjacent segments,
// each smaller than the target, whose merged size stays within the
// target, taking at most CompactFanIn inputs. Caller holds mu (read).
func (s *Store) findCompactRunLocked() *compactRun {
	target := s.opts.CompactTargetEvents
	fanIn := s.opts.CompactFanIn
	for _, key := range s.order {
		p := s.parts[key]
		for i := 0; i < len(p.segs); i++ {
			if p.segs[i].Len() >= target {
				continue
			}
			total := 0
			j := i
			for j < len(p.segs) && j-i < fanIn && p.segs[j].Len() < target && total+p.segs[j].Len() <= target {
				total += p.segs[j].Len()
				j++
			}
			if j-i >= 2 {
				return &compactRun{key: key, segs: p.segs[i:j:j]}
			}
		}
	}
	return nil
}

// CompactOnce performs at most one merge. It reports whether a merge
// happened; callers loop (or use Compact) to drain all eligible chains.
// Safe to call concurrently with appends, seals, and queries.
func (s *Store) CompactOnce() (CompactionResult, bool) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.closed.Load() {
		return CompactionResult{}, false
	}

	s.mu.RLock()
	run := s.findCompactRunLocked()
	s.mu.RUnlock()
	if run == nil {
		return CompactionResult{}, false
	}

	// Merge outside any lock: the inputs are immutable.
	merged := mergeSegmentEvents(run.segs)
	s.mu.Lock()
	s.nextSegID++
	id := s.nextSegID
	s.mu.Unlock()
	g := newSegment(id, run.key, merged, s.opts.Indexes)
	g.buildIndexes()

	// Durable stores persist the merged segment before installing it,
	// so the manifest edition written below can list it immediately.
	if d := s.dur; d != nil {
		d.mu.Lock()
		name := durable.SegmentFileName(id)
		n, err := s.writeSegmentFile(filepath.Join(d.dir, name), g)
		if err != nil {
			d.setErr(err)
			d.mu.Unlock()
			return CompactionResult{}, false
		}
		d.persisted[id] = persistedSeg{file: name, bytes: n}
		d.mu.Unlock()
	}

	// Install copy-on-write: pinned snapshots keep the old chain slice;
	// only compaction removes or reorders chain elements and compactMu
	// serializes it, so the run is still in place — seals can only have
	// appended behind it.
	s.mu.Lock()
	p := s.parts[run.key]
	idx := runIndex(p.segs, run.segs)
	if idx < 0 {
		s.mu.Unlock()
		if d := s.dur; d != nil {
			d.mu.Lock()
			if ps, ok := d.persisted[id]; ok {
				delete(d.persisted, id)
				os.Remove(filepath.Join(d.dir, ps.file))
			}
			d.mu.Unlock()
		}
		return CompactionResult{}, false
	}
	newSegs := make([]*Segment, 0, len(p.segs)-len(run.segs)+1)
	newSegs = append(newSegs, p.segs[:idx]...)
	newSegs = append(newSegs, g)
	newSegs = append(newSegs, p.segs[idx+len(run.segs):]...)
	p.segs = newSegs
	s.snap = nil // same data, new segment set; commits stay unchanged
	s.mu.Unlock()

	retired := make([]uint64, len(run.segs))
	for i, old := range run.segs {
		retired[i] = old.id
	}
	s.notifyRetire(retired)

	if d := s.dur; d != nil {
		d.mu.Lock()
		var oldFiles []string
		for _, old := range run.segs {
			if ps, ok := d.persisted[old.id]; ok {
				oldFiles = append(oldFiles, ps.file)
				delete(d.persisted, old.id)
			}
		}
		s.writeManifestLocked()
		d.mu.Unlock()
		// The new edition no longer references the retired files;
		// pinned snapshots read memory, never files, so deletion is
		// safe immediately.
		for _, f := range oldFiles {
			os.Remove(filepath.Join(d.dir, f))
		}
	}

	s.compactions.Add(1)
	s.segsCompacted.Add(uint64(len(run.segs)))
	return CompactionResult{Passes: 1, SegmentsRetired: len(run.segs), EventsMerged: len(merged)}, true
}

// Compact runs passes until no chain is eligible, returning the sums.
func (s *Store) Compact() CompactionResult {
	var total CompactionResult
	for {
		r, ok := s.CompactOnce()
		if !ok {
			return total
		}
		total.Passes += r.Passes
		total.SegmentsRetired += r.SegmentsRetired
		total.EventsMerged += r.EventsMerged
	}
}

// runIndex locates run as a contiguous subsequence of segs by pointer
// identity; -1 if it is no longer there.
func runIndex(segs, run []*Segment) int {
	for i := 0; i+len(run) <= len(segs); i++ {
		if segs[i] != run[0] {
			continue
		}
		match := true
		for j := 1; j < len(run); j++ {
			if segs[i+j] != run[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// mergeSegmentEvents flattens the runs in chain order and stable-sorts
// by start timestamp: equal timestamps keep their chain (arrival)
// order, exactly as a stable k-way merge would.
func mergeSegmentEvents(segs []*Segment) []sysmon.Event {
	total := 0
	for _, g := range segs {
		total += g.Len()
	}
	out := make([]sysmon.Event, 0, total)
	for _, g := range segs {
		out = append(out, g.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartTS < out[j].StartTS })
	return out
}

// StartCompactor runs Compact in the background every interval until
// StopCompactor (or Close). A second call while running is a no-op.
func (s *Store) StartCompactor(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.compactorMu.Lock()
	defer s.compactorMu.Unlock()
	if s.compactorStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.compactorStop, s.compactorDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Compact()
			}
		}
	}()
}

// StopCompactor stops the background compactor and waits for the
// in-flight pass, if any, to finish. No-op when none is running.
func (s *Store) StopCompactor() {
	s.compactorMu.Lock()
	stop, done := s.compactorStop, s.compactorDone
	s.compactorStop, s.compactorDone = nil, nil
	s.compactorMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
