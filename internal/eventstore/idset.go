package eventstore

import (
	"sort"

	"github.com/aiql/aiql/internal/sysmon"
)

// IDSet is a set of entity IDs, used to carry entity bindings between
// event patterns during query execution (e.g. "the same file f1").
type IDSet struct {
	m map[sysmon.EntityID]struct{}
}

// NewIDSet creates a set containing the given IDs.
func NewIDSet(ids ...sysmon.EntityID) *IDSet {
	s := &IDSet{m: make(map[sysmon.EntityID]struct{}, len(ids))}
	for _, id := range ids {
		s.m[id] = struct{}{}
	}
	return s
}

// Add inserts id into the set.
func (s *IDSet) Add(id sysmon.EntityID) { s.m[id] = struct{}{} }

// Has reports whether id is in the set. A nil set contains everything,
// matching the "unconstrained" meaning used by event filters.
func (s *IDSet) Has(id sysmon.EntityID) bool {
	if s == nil {
		return true
	}
	_, ok := s.m[id]
	return ok
}

// Len returns the number of IDs in the set; a nil set has length -1,
// meaning "unbounded".
func (s *IDSet) Len() int {
	if s == nil {
		return -1
	}
	return len(s.m)
}

// Empty reports whether the set is non-nil and has no members.
func (s *IDSet) Empty() bool { return s != nil && len(s.m) == 0 }

// IDs returns the members in ascending order.
func (s *IDSet) IDs() []sysmon.EntityID {
	if s == nil {
		return nil
	}
	out := make([]sysmon.EntityID, 0, len(s.m))
	for id := range s.m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Intersect returns the intersection of s and t. Either may be nil
// (meaning unbounded); the intersection with nil is the other set.
func (s *IDSet) Intersect(t *IDSet) *IDSet {
	if s == nil {
		return t
	}
	if t == nil {
		return s
	}
	small, large := s, t
	if len(large.m) < len(small.m) {
		small, large = large, small
	}
	out := &IDSet{m: make(map[sysmon.EntityID]struct{})}
	for id := range small.m {
		if _, ok := large.m[id]; ok {
			out.m[id] = struct{}{}
		}
	}
	return out
}
