package relational

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/aiql/aiql/internal/like"
)

// Rows is a query result.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// RenderStrings renders every cell as text (cross-engine comparable).
func (r *Rows) RenderStrings() [][]string {
	out := make([][]string, len(r.Data))
	for i, row := range r.Data {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.Text()
		}
		out[i] = cells
	}
	return out
}

// Query parses and executes a SELECT statement.
func (db *DB) Query(sql string) (*Rows, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	return db.execSelect(stmt)
}

// execSelect runs one (possibly derived) SELECT.
func (db *DB) execSelect(stmt *SelectStmt) (*Rows, error) {
	rs, err := db.execFrom(stmt)
	if err != nil {
		return nil, err
	}
	needAgg := len(stmt.GroupBy) > 0 || stmt.Having != nil
	if !needAgg {
		for _, it := range stmt.Items {
			if !it.Star && hasAggregate(it.Expr) {
				needAgg = true
				break
			}
		}
	}
	var out *Rows
	if needAgg {
		out, err = db.execAggregate(stmt, rs)
	} else {
		out, err = db.execProject(stmt, rs)
	}
	if err != nil {
		return nil, err
	}
	if stmt.Distinct {
		out.Data = distinctRows(out.Data)
	}
	if len(stmt.OrderBy) > 0 {
		if err := orderRows(stmt, out); err != nil {
			return nil, err
		}
	}
	if stmt.Limit >= 0 && len(out.Data) > stmt.Limit {
		out.Data = out.Data[:stmt.Limit]
	}
	return out, nil
}

// execFrom materializes the FROM clause: base tables and derived tables
// joined left-to-right in syntactic order (no join reordering).
func (db *DB) execFrom(stmt *SelectStmt) (*rowset, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sql: missing FROM clause")
	}
	whereConj := splitConjuncts(stmt.Where)
	consumed := make([]bool, len(whereConj))

	// column ownership for unqualified pushdown attribution
	colOwner := map[string]string{}
	colSeen := map[string]int{}
	for _, fi := range stmt.From {
		if fi.TableName != "" {
			if t, ok := db.tables[fi.TableName]; ok {
				for _, c := range t.Columns {
					colSeen[c.Name]++
					colOwner[c.Name] = fi.Alias
				}
			}
		}
	}
	for name, n := range colSeen {
		if n > 1 {
			delete(colOwner, name)
		}
	}

	var acc *rowset
	accAliases := map[string]bool{}
	for idx := range stmt.From {
		fi := &stmt.From[idx]
		if accAliases[fi.Alias] {
			return nil, fmt.Errorf("sql: duplicate table alias %q", fi.Alias)
		}
		onConj := splitConjuncts(fi.On)

		// single-alias pushdown: ON conjuncts always; WHERE conjuncts
		// only for inner/cross joins (LEFT JOIN must preserve semantics)
		var push []SQLExpr
		takeWhere := fi.Join != JoinLeft
		for ci, c := range whereConj {
			if consumed[ci] || !takeWhere {
				continue
			}
			quals := map[string]bool{}
			exprQuals(c, colOwner, quals)
			if len(quals) == 1 && quals[fi.Alias] {
				push = append(push, c)
				consumed[ci] = true
			}
		}
		var onResidual []SQLExpr
		for _, c := range onConj {
			quals := map[string]bool{}
			exprQuals(c, colOwner, quals)
			if len(quals) == 1 && quals[fi.Alias] {
				push = append(push, c)
			} else {
				onResidual = append(onResidual, c)
			}
		}

		base, err := db.materializeFromItem(fi, push)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = base
			accAliases[fi.Alias] = true
			continue
		}

		// join-level conjuncts: ON residuals plus WHERE conjuncts whose
		// qualifiers are covered by the accumulated aliases + this one
		joinConj := onResidual
		if fi.Join != JoinLeft {
			for ci, c := range whereConj {
				if consumed[ci] {
					continue
				}
				quals := map[string]bool{}
				exprQuals(c, colOwner, quals)
				covered := true
				usesNew := false
				for q := range quals {
					if q == fi.Alias {
						usesNew = true
						continue
					}
					if !accAliases[q] {
						covered = false
					}
				}
				if covered && usesNew {
					joinConj = append(joinConj, c)
					consumed[ci] = true
				}
			}
		}
		acc, err = joinRowsets(acc, base, fi.Join, joinConj)
		if err != nil {
			return nil, err
		}
		accAliases[fi.Alias] = true
	}

	// residual WHERE conjuncts
	var residual []SQLExpr
	for ci, c := range whereConj {
		if !consumed[ci] {
			residual = append(residual, c)
		}
	}
	if len(residual) > 0 {
		kept := acc.rows[:0:0]
		for _, row := range acc.rows {
			ok := true
			for _, c := range residual {
				v, err := evalSQL(c, acc.scope, row)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, row)
			}
		}
		acc = &rowset{scope: acc.scope, rows: kept}
	}
	return acc, nil
}

func (db *DB) materializeFromItem(fi *FromItem, push []SQLExpr) (*rowset, error) {
	if fi.Sub != nil {
		sub, err := db.execSelect(fi.Sub)
		if err != nil {
			return nil, err
		}
		cols := make([]scopeCol, len(sub.Columns))
		for i, c := range sub.Columns {
			cols[i] = scopeCol{qual: fi.Alias, name: strings.ToLower(c)}
		}
		rs := &rowset{scope: newScope(cols), rows: sub.Data}
		// apply pushdown conjuncts post-materialization
		if len(push) > 0 {
			kept := rs.rows[:0:0]
			for _, row := range rs.rows {
				ok := true
				for _, c := range push {
					v, err := evalSQL(c, rs.scope, row)
					if err != nil {
						return nil, err
					}
					if !v.Truthy() {
						ok = false
						break
					}
				}
				if ok {
					kept = append(kept, row)
				}
			}
			rs.rows = kept
		}
		return rs, nil
	}
	t, ok := db.Table(fi.TableName)
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", fi.TableName)
	}
	rs, _, err := db.scanTable(t, fi.Alias, push)
	return rs, err
}

// joinRowsets combines the accumulated rowset with a new base. A hash
// join runs when an equi-join conjunct links the two sides; otherwise a
// nested loop evaluates all conjuncts pairwise. LEFT joins preserve
// unmatched left rows with NULL padding.
func joinRowsets(left, right *rowset, jt JoinType, conj []SQLExpr) (*rowset, error) {
	merged := left.scope.merge(right.scope)
	out := &rowset{scope: merged}

	// find one equi-join pair; remaining conjuncts become residuals
	var (
		li, ri   int
		haveKey  bool
		residual []SQLExpr
	)
	for _, c := range conj {
		if !haveKey {
			if l, r, ok := eqJoinKey(c, left.scope, right.scope); ok {
				li, ri, haveKey = l, r, true
				continue
			}
		}
		residual = append(residual, c)
	}

	evalResidual := func(row []Value) (bool, error) {
		for _, c := range residual {
			v, err := evalSQL(c, merged, row)
			if err != nil {
				return false, err
			}
			if !v.Truthy() {
				return false, nil
			}
		}
		return true, nil
	}

	nullPad := make([]Value, len(right.scope.cols))
	for i := range nullPad {
		nullPad[i] = Null
	}

	if haveKey {
		// build on the right side, probe with left rows
		build := make(map[string][]int, len(right.rows))
		for i, row := range right.rows {
			k := row[ri].Key()
			build[k] = append(build[k], i)
		}
		for _, lrow := range left.rows {
			matched := false
			if !lrow[li].IsNull() {
				for _, riIdx := range build[lrow[li].Key()] {
					cand := append(append([]Value{}, lrow...), right.rows[riIdx]...)
					ok, err := evalResidual(cand)
					if err != nil {
						return nil, err
					}
					if ok {
						out.rows = append(out.rows, cand)
						matched = true
					}
				}
			}
			if !matched && jt == JoinLeft {
				out.rows = append(out.rows, append(append([]Value{}, lrow...), nullPad...))
			}
		}
		return out, nil
	}

	// nested loop
	for _, lrow := range left.rows {
		matched := false
		for _, rrow := range right.rows {
			cand := append(append([]Value{}, lrow...), rrow...)
			ok, err := evalResidual(cand)
			if err != nil {
				return nil, err
			}
			if ok {
				out.rows = append(out.rows, cand)
				matched = true
			}
		}
		if !matched && jt == JoinLeft {
			out.rows = append(out.rows, append(append([]Value{}, lrow...), nullPad...))
		}
	}
	return out, nil
}

// execProject evaluates the select list without aggregation.
func (db *DB) execProject(stmt *SelectStmt, rs *rowset) (*Rows, error) {
	out := &Rows{}
	var exprs []SQLExpr
	for i, it := range stmt.Items {
		if it.Star {
			for _, c := range rs.scope.cols {
				out.Columns = append(out.Columns, c.name)
				exprs = append(exprs, &ColRef{Qual: c.qual, Name: c.name})
			}
			continue
		}
		out.Columns = append(out.Columns, outputName(it, i))
		exprs = append(exprs, it.Expr)
	}
	for _, row := range rs.rows {
		cells := make([]Value, len(exprs))
		for i, e := range exprs {
			v, err := evalSQL(e, rs.scope, row)
			if err != nil {
				return nil, err
			}
			cells[i] = v
		}
		out.Data = append(out.Data, cells)
	}
	return out, nil
}

// execAggregate groups rows, computes aggregates, and applies HAVING.
func (db *DB) execAggregate(stmt *SelectStmt, rs *rowset) (*Rows, error) {
	type group struct {
		first []Value
		rows  [][]Value
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range rs.rows {
		var key strings.Builder
		for _, g := range stmt.GroupBy {
			v, err := evalSQL(g, rs.scope, row)
			if err != nil {
				return nil, err
			}
			key.WriteString(v.Key())
			key.WriteByte(0)
		}
		k := key.String()
		gr := groups[k]
		if gr == nil {
			gr = &group{first: row}
			groups[k] = gr
			order = append(order, k)
		}
		gr.rows = append(gr.rows, row)
	}
	// an aggregate over an empty input with no GROUP BY yields one row
	if len(groups) == 0 && len(stmt.GroupBy) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	out := &Rows{}
	for i, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: SELECT * is not allowed with GROUP BY")
		}
		out.Columns = append(out.Columns, outputName(it, i))
	}
	for _, k := range order {
		gr := groups[k]
		if stmt.Having != nil {
			v, err := evalAggExpr(stmt.Having, rs.scope, gr.first, gr.rows)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		cells := make([]Value, len(stmt.Items))
		for i, it := range stmt.Items {
			v, err := evalAggExpr(it.Expr, rs.scope, gr.first, gr.rows)
			if err != nil {
				return nil, err
			}
			cells[i] = v
		}
		out.Data = append(out.Data, cells)
	}
	return out, nil
}

func distinctRows(rows [][]Value) [][]Value {
	seen := map[string]bool{}
	out := rows[:0:0]
	for _, row := range rows {
		var key strings.Builder
		for _, v := range row {
			key.WriteString(v.Key())
			key.WriteByte(0)
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out
}

// orderRows sorts the projected output. ORDER BY keys resolve against the
// output columns (aliases or column names).
func orderRows(stmt *SelectStmt, out *Rows) error {
	type key struct {
		idx  int
		desc bool
	}
	var keys []key
	for _, o := range stmt.OrderBy {
		c, ok := o.Expr.(*ColRef)
		if !ok {
			return fmt.Errorf("sql: ORDER BY supports output column references, got %s", sqlExprString(o.Expr))
		}
		found := -1
		for i, name := range out.Columns {
			if strings.EqualFold(name, c.Name) {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("sql: ORDER BY column %q is not in the select list", c.Name)
		}
		keys = append(keys, key{idx: found, desc: o.Desc})
	}
	sort.SliceStable(out.Data, func(i, j int) bool {
		for _, k := range keys {
			c := Compare(out.Data[i][k.idx], out.Data[j][k.idx])
			if c != 0 {
				if k.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return nil
}

// ------------------------------------------------------------ evaluation

// evalSQL evaluates a scalar expression against one row.
func evalSQL(e SQLExpr, sc *scope, row []Value) (Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.V, nil
	case *ColRef:
		i, err := sc.resolve(x)
		if err != nil {
			return Null, err
		}
		return row[i], nil
	case *UnExpr:
		v, err := evalSQL(x.X, sc, row)
		if err != nil {
			return Null, err
		}
		if x.Op == "NOT" {
			if v.IsNull() {
				return Null, nil
			}
			return Bool(!v.Truthy()), nil
		}
		if v.IsNull() {
			return Null, nil
		}
		if v.Kind == KindInt {
			return Int(-v.I), nil
		}
		return Float(-v.Num()), nil
	case *IsNullExpr:
		v, err := evalSQL(x.X, sc, row)
		if err != nil {
			return Null, err
		}
		return Bool(v.IsNull() != x.Not), nil
	case *InExpr:
		v, err := evalSQL(x.X, sc, row)
		if err != nil {
			return Null, err
		}
		found := false
		for _, item := range x.List {
			iv, err := evalSQL(item, sc, row)
			if err != nil {
				return Null, err
			}
			if Equal(v, iv) {
				found = true
				break
			}
		}
		return Bool(found != x.Not), nil
	case *BinExpr:
		return evalBin(x, sc, row)
	case *FuncCall:
		return evalScalarFunc(x, sc, row)
	default:
		return Null, fmt.Errorf("sql: unsupported expression %s", sqlExprString(e))
	}
}

func evalBin(x *BinExpr, sc *scope, row []Value) (Value, error) {
	l, err := evalSQL(x.L, sc, row)
	if err != nil {
		return Null, err
	}
	// short-circuit logic with SQL three-valued simplification
	switch x.Op {
	case "AND":
		if !l.IsNull() && !l.Truthy() {
			return Bool(false), nil
		}
		r, err := evalSQL(x.R, sc, row)
		if err != nil {
			return Null, err
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(l.Truthy() && r.Truthy()), nil
	case "OR":
		if !l.IsNull() && l.Truthy() {
			return Bool(true), nil
		}
		r, err := evalSQL(x.R, sc, row)
		if err != nil {
			return Null, err
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(l.Truthy() || r.Truthy()), nil
	}
	r, err := evalSQL(x.R, sc, row)
	if err != nil {
		return Null, err
	}
	if l.IsNull() || r.IsNull() {
		return Null, nil
	}
	switch x.Op {
	case "+", "-", "*", "/":
		if x.Op == "/" {
			d := r.Num()
			if d == 0 {
				return Null, nil
			}
			return Float(l.Num() / d), nil
		}
		if l.Kind == KindInt && r.Kind == KindInt {
			switch x.Op {
			case "+":
				return Int(l.I + r.I), nil
			case "-":
				return Int(l.I - r.I), nil
			case "*":
				return Int(l.I * r.I), nil
			}
		}
		switch x.Op {
		case "+":
			return Float(l.Num() + r.Num()), nil
		case "-":
			return Float(l.Num() - r.Num()), nil
		default:
			return Float(l.Num() * r.Num()), nil
		}
	case "||":
		return Str(l.Text() + r.Text()), nil
	case "=":
		return Bool(Compare(l, r) == 0), nil
	case "<>":
		return Bool(Compare(l, r) != 0), nil
	case "<":
		return Bool(Compare(l, r) < 0), nil
	case "<=":
		return Bool(Compare(l, r) <= 0), nil
	case ">":
		return Bool(Compare(l, r) > 0), nil
	case ">=":
		return Bool(Compare(l, r) >= 0), nil
	case "LIKE":
		// literal patterns compile once per query, as a prepared
		// statement would
		if x.likeCache == nil {
			if _, isLit := x.R.(*Lit); isLit {
				x.likeCache = like.Compile(r.Text())
			}
		}
		if x.likeCache != nil {
			return Bool(x.likeCache.Match(l.Text())), nil
		}
		return Bool(like.Match(r.Text(), l.Text())), nil
	}
	return Null, fmt.Errorf("sql: unsupported operator %q", x.Op)
}

func evalScalarFunc(x *FuncCall, sc *scope, row []Value) (Value, error) {
	if sqlAggregates[x.Name] {
		return Null, fmt.Errorf("sql: aggregate %s used outside GROUP BY context", x.Name)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := evalSQL(a, sc, row)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	switch x.Name {
	case "COALESCE":
		for _, v := range args {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null, nil
	case "LOWER":
		if len(args) != 1 {
			return Null, fmt.Errorf("sql: LOWER takes one argument")
		}
		return Str(strings.ToLower(args[0].Text())), nil
	case "UPPER":
		if len(args) != 1 {
			return Null, fmt.Errorf("sql: UPPER takes one argument")
		}
		return Str(strings.ToUpper(args[0].Text())), nil
	case "ABS":
		if len(args) != 1 {
			return Null, fmt.Errorf("sql: ABS takes one argument")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Float(math.Abs(args[0].Num())), nil
	case "FLOOR":
		if len(args) != 1 {
			return Null, fmt.Errorf("sql: FLOOR takes one argument")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Int(int64(math.Floor(args[0].Num()))), nil
	}
	return Null, fmt.Errorf("sql: unknown function %s", x.Name)
}

// evalAggExpr evaluates an expression in aggregate context: aggregate
// calls compute over the group's rows, everything else evaluates against
// the group's representative row.
func evalAggExpr(e SQLExpr, sc *scope, first []Value, rows [][]Value) (Value, error) {
	switch x := e.(type) {
	case *FuncCall:
		if !sqlAggregates[x.Name] {
			// scalar function over aggregate arguments,
			// e.g. COALESCE(SUM(amount), 0)
			if hasAggregate(x) {
				lits := make([]SQLExpr, len(x.Args))
				for i, a := range x.Args {
					v, err := evalAggExpr(a, sc, first, rows)
					if err != nil {
						return Null, err
					}
					lits[i] = &Lit{V: v}
				}
				return evalScalarFunc(&FuncCall{Name: x.Name, Args: lits}, sc, first)
			}
			break
		}
		if x.Star || len(x.Args) == 0 {
			if x.Name != "COUNT" {
				return Null, fmt.Errorf("sql: %s needs an argument", x.Name)
			}
			return Int(int64(len(rows))), nil
		}
		arg := x.Args[0]
		var (
			count int64
			sum   float64
			minV  Value
			maxV  Value
		)
		for _, row := range rows {
			v, err := evalSQL(arg, sc, row)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				continue
			}
			if count == 0 {
				minV, maxV = v, v
			} else {
				if Compare(v, minV) < 0 {
					minV = v
				}
				if Compare(v, maxV) > 0 {
					maxV = v
				}
			}
			count++
			sum += v.Num()
		}
		switch x.Name {
		case "COUNT":
			return Int(count), nil
		case "SUM":
			if count == 0 {
				return Null, nil
			}
			return Float(sum), nil
		case "AVG":
			if count == 0 {
				return Null, nil
			}
			return Float(sum / float64(count)), nil
		case "MIN":
			if count == 0 {
				return Null, nil
			}
			return minV, nil
		case "MAX":
			if count == 0 {
				return Null, nil
			}
			return maxV, nil
		}
	case *BinExpr:
		if hasAggregate(x) {
			l, err := evalAggExpr(x.L, sc, first, rows)
			if err != nil {
				return Null, err
			}
			r, err := evalAggExpr(x.R, sc, first, rows)
			if err != nil {
				return Null, err
			}
			return evalBin(&BinExpr{Op: x.Op, L: &Lit{V: l}, R: &Lit{V: r}}, sc, first)
		}
	case *UnExpr:
		if hasAggregate(x) {
			v, err := evalAggExpr(x.X, sc, first, rows)
			if err != nil {
				return Null, err
			}
			return evalSQL(&UnExpr{Op: x.Op, X: &Lit{V: v}}, sc, first)
		}
	}
	if first == nil {
		return Null, nil
	}
	return evalSQL(e, sc, first)
}
