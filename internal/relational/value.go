// Package relational implements an embedded relational database engine
// with a SQL subset — the stand-in for PostgreSQL in the paper's
// comparisons. It provides tables with typed columns, hash and ordered
// indexes, and a query pipeline (lexer, parser, planner, executor)
// supporting SELECT with joins (inner and left), WHERE, GROUP BY, HAVING,
// ORDER BY, LIMIT, DISTINCT, derived tables, LIKE, and the standard
// aggregates.
//
// The planner is deliberately general-purpose: predicates are pushed down
// and indexes are used for single-table access, but joins execute in the
// syntactic order of the FROM clause with no semantic reordering — the
// "default SQL engine scheduling" the paper contrasts AIQL against.
package relational

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/aiql/aiql/internal/numfmt"
)

// Kind is a value's runtime type.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// Value is one SQL value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Null, Int, Float, Str, and Bool construct values.
var Null = Value{Kind: KindNull}

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Truthy reports whether the value counts as true in a WHERE context.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindBool:
		return v.B
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// Num returns the value as float64 (0 for non-numeric).
func (v Value) Num() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindBool:
		if v.B {
			return 1
		}
		return 0
	case KindString:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	default:
		return 0
	}
}

// Text renders the value the way result tables display it. Numeric
// rendering matches the AIQL engine so cross-engine comparisons can use
// string equality.
func (v Value) Text() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return numfmt.Format(v.F)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values: NULLs first, then numerically when both are
// numeric, else by string. Returns -1, 0, or 1.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if isNumeric(a) && isNumeric(b) {
		x, y := a.Num(), b.Num()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
	// TEXT uses a citext-like case-insensitive collation, matching the
	// AIQL engine's treatment of names collected from mixed OS fleets.
	return foldCompare(a.Text(), b.Text())
}

// foldCompare is an allocation-free ASCII case-insensitive comparison.
func foldCompare(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ca, cb := foldByte(a[i]), foldByte(b[i])
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func foldByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

func isNumeric(v Value) bool {
	return v.Kind == KindInt || v.Kind == KindFloat || v.Kind == KindBool
}

// Equal reports SQL equality (NULL equals nothing, not even NULL).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Key returns a canonical string key for hashing (group by, hash join,
// distinct). NULLs hash to a distinct sentinel so grouping treats them as
// one group, matching common engine behavior.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "\x00N"
	case KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return "i" + strconv.FormatInt(int64(v.F), 10)
		}
		return "f" + strconv.FormatFloat(v.F, 'b', -1, 64)
	case KindString:
		return "s" + strings.ToLower(v.S)
	case KindBool:
		if v.B {
			return "i1"
		}
		return "i0"
	default:
		return "?"
	}
}

// ColType declares a column's storage type.
type ColType uint8

// Column types.
const (
	TypeInt ColType = iota
	TypeFloat
	TypeText
)

// String returns the SQL name of the type.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "DOUBLE PRECISION"
	default:
		return "TEXT"
	}
}

// coerce validates that a value is storable under the column type.
func coerce(v Value, t ColType) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case TypeInt:
		switch v.Kind {
		case KindInt:
			return v, nil
		case KindFloat:
			return Int(int64(v.F)), nil
		}
	case TypeFloat:
		switch v.Kind {
		case KindFloat:
			return v, nil
		case KindInt:
			return Float(float64(v.I)), nil
		}
	case TypeText:
		if v.Kind == KindString {
			return v, nil
		}
	}
	return Null, fmt.Errorf("relational: cannot store %v into %s column", v, t)
}
