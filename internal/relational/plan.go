package relational

import (
	"fmt"
	"strings"

	"github.com/aiql/aiql/internal/like"
)

// scopeCol identifies one column of an intermediate rowset.
type scopeCol struct {
	qual string
	name string
}

// scope resolves column references against an intermediate rowset.
// Resolutions are memoized per ColRef node, the equivalent of a real
// engine compiling references to column offsets once per query.
type scope struct {
	cols   []scopeCol
	byQual map[string]int
	byName map[string][]int
	memo   map[*ColRef]int
}

func newScope(cols []scopeCol) *scope {
	s := &scope{
		cols: cols, byQual: map[string]int{}, byName: map[string][]int{},
		memo: map[*ColRef]int{},
	}
	for i, c := range cols {
		s.byQual[c.qual+"."+c.name] = i
		s.byName[c.name] = append(s.byName[c.name], i)
	}
	return s
}

func (s *scope) resolve(c *ColRef) (int, error) {
	if i, ok := s.memo[c]; ok {
		return i, nil
	}
	i, err := s.resolveSlow(c)
	if err == nil {
		s.memo[c] = i
	}
	return i, err
}

func (s *scope) resolveSlow(c *ColRef) (int, error) {
	if c.Qual != "" {
		if i, ok := s.byQual[c.Qual+"."+c.Name]; ok {
			return i, nil
		}
		return -1, fmt.Errorf("sql: unknown column %s.%s", c.Qual, c.Name)
	}
	idxs := s.byName[c.Name]
	switch len(idxs) {
	case 1:
		return idxs[0], nil
	case 0:
		return -1, fmt.Errorf("sql: unknown column %s", c.Name)
	default:
		return -1, fmt.Errorf("sql: ambiguous column %s", c.Name)
	}
}

// has reports whether the scope can resolve the reference.
func (s *scope) has(c *ColRef) bool {
	_, err := s.resolve(c)
	return err == nil
}

// merge concatenates two scopes.
func (s *scope) merge(t *scope) *scope {
	cols := append(append([]scopeCol{}, s.cols...), t.cols...)
	return newScope(cols)
}

// rowset is an intermediate result: a scope plus rows.
type rowset struct {
	scope *scope
	rows  [][]Value
}

// splitConjuncts flattens an AND tree.
func splitConjuncts(e SQLExpr) []SQLExpr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []SQLExpr{e}
}

// exprQuals collects the qualifiers referenced by an expression.
// Unqualified references resolve through colOwner (column → alias), built
// from the FROM items in scope.
func exprQuals(e SQLExpr, colOwner map[string]string, out map[string]bool) {
	switch x := e.(type) {
	case *ColRef:
		q := x.Qual
		if q == "" {
			q = colOwner[x.Name]
		}
		if q != "" {
			out[q] = true
		} else {
			out["?"] = true // unresolvable: never push down
		}
	case *BinExpr:
		exprQuals(x.L, colOwner, out)
		exprQuals(x.R, colOwner, out)
	case *UnExpr:
		exprQuals(x.X, colOwner, out)
	case *IsNullExpr:
		exprQuals(x.X, colOwner, out)
	case *FuncCall:
		for _, a := range x.Args {
			exprQuals(a, colOwner, out)
		}
	case *InExpr:
		exprQuals(x.X, colOwner, out)
		for _, a := range x.List {
			exprQuals(a, colOwner, out)
		}
	}
}

// eqJoinKey extracts `a.x = b.y` equi-join column pairs where one side
// resolves in left scope and the other in right scope.
func eqJoinKey(e SQLExpr, left, right *scope) (li, ri int, ok bool) {
	b, isBin := e.(*BinExpr)
	if !isBin || b.Op != "=" {
		return 0, 0, false
	}
	lc, lok := b.L.(*ColRef)
	rc, rok := b.R.(*ColRef)
	if !lok || !rok {
		return 0, 0, false
	}
	if left.has(lc) && right.has(rc) {
		li, _ = left.resolve(lc)
		ri, _ = right.resolve(rc)
		return li, ri, true
	}
	if left.has(rc) && right.has(lc) {
		li, _ = left.resolve(rc)
		ri, _ = right.resolve(lc)
		return li, ri, true
	}
	return 0, 0, false
}

// accessPath describes how a base-table scan will run, for EXPLAIN-style
// introspection and tests.
type accessPath struct {
	kind   string // "seq", "hash", "range"
	column string
}

// scanTable materializes a base table under pushdown conjuncts, picking
// an index access path when the database is optimized. Returns the
// surviving conjunct residuals already applied (all of them: the caller
// must not re-apply).
func (db *DB) scanTable(t *Table, alias string, conj []SQLExpr) (*rowset, accessPath, error) {
	cols := make([]scopeCol, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = scopeCol{qual: alias, name: c.Name}
	}
	sc := newScope(cols)
	rs := &rowset{scope: sc}

	// compile residual predicate evaluation
	matches := func(row []Value) (bool, error) {
		for _, c := range conj {
			v, err := evalSQL(c, sc, row)
			if err != nil {
				return false, err
			}
			if !v.Truthy() {
				return false, nil
			}
		}
		return true, nil
	}

	path := accessPath{kind: "seq"}
	if db.optimized {
		// equality on a hash-indexed column?
		if col, val, ok := findEqConjunct(conj, sc, t); ok {
			path = accessPath{kind: "hash", column: col}
			for _, ri := range t.lookupEq(col, val) {
				row := t.rows[ri]
				ok, err := matches(row)
				if err != nil {
					return nil, path, err
				}
				if ok {
					rs.rows = append(rs.rows, row)
				}
			}
			return rs, path, nil
		}
		// range bounds on an ordered-indexed column?
		if col, lo, hi, ok := findRangeConjunct(conj, sc, t); ok {
			path = accessPath{kind: "range", column: col}
			var err error
			t.scanRange(col, lo, hi, func(ri int) bool {
				row := t.rows[ri]
				var m bool
				m, err = matches(row)
				if err != nil {
					return false
				}
				if m {
					rs.rows = append(rs.rows, row)
				}
				return true
			})
			if err != nil {
				return nil, path, err
			}
			return rs, path, nil
		}
	}
	for _, row := range t.rows {
		ok, err := matches(row)
		if err != nil {
			return nil, path, err
		}
		if ok {
			rs.rows = append(rs.rows, row)
		}
	}
	return rs, path, nil
}

// findEqConjunct locates a `col = literal` conjunct on a hash-indexed
// column of t.
func findEqConjunct(conj []SQLExpr, sc *scope, t *Table) (string, Value, bool) {
	for _, c := range conj {
		b, ok := c.(*BinExpr)
		if !ok || b.Op != "=" {
			continue
		}
		col, lit, ok := colLit(b, sc)
		if !ok {
			continue
		}
		name := sc.cols[col].name
		if t.HasIndex(name) {
			return name, lit, true
		}
	}
	return "", Null, false
}

// findRangeConjunct assembles lo/hi bounds from range conjuncts on one
// ordered-indexed column.
func findRangeConjunct(conj []SQLExpr, sc *scope, t *Table) (string, *Value, *Value, bool) {
	type bound struct{ lo, hi *Value }
	bounds := map[string]*bound{}
	for _, c := range conj {
		b, ok := c.(*BinExpr)
		if !ok {
			continue
		}
		switch b.Op {
		case ">", ">=", "<", "<=":
		case "LIKE":
			// literal-prefix LIKE gives a range bound
			col, lit, ok := colLit(b, sc)
			if !ok || lit.Kind != KindString {
				continue
			}
			name := sc.cols[col].name
			if !t.HasIndex(name) {
				continue
			}
			pat := like.Compile(lit.S)
			prefix := pat.Prefix()
			if prefix == "" {
				continue
			}
			bd := bounds[name]
			if bd == nil {
				bd = &bound{}
				bounds[name] = bd
			}
			lo := Str(prefix)
			hi := Str(prefix + "\xff")
			bd.lo, bd.hi = &lo, &hi
			continue
		default:
			continue
		}
		col, lit, ok := colLit(b, sc)
		if !ok {
			continue
		}
		name := sc.cols[col].name
		if !t.HasIndex(name) {
			continue
		}
		bd := bounds[name]
		if bd == nil {
			bd = &bound{}
			bounds[name] = bd
		}
		// normalize direction: colLit returns col-first orientation
		switch b.Op {
		case ">", ">=":
			v := lit
			bd.lo = &v
		case "<", "<=":
			v := lit
			bd.hi = &v
		}
	}
	for name, bd := range bounds {
		if bd.lo != nil || bd.hi != nil {
			return name, bd.lo, bd.hi, true
		}
	}
	return "", nil, nil, false
}

// colLit matches `col op literal` or `literal op col`, returning the
// column index and literal with col-first orientation. Flipped
// comparisons adjust nothing here: callers only use it for = and for
// assembling conservative range bounds, where the exact inclusivity is
// re-checked by residual evaluation anyway.
func colLit(b *BinExpr, sc *scope) (int, Value, bool) {
	if c, ok := b.L.(*ColRef); ok {
		if l, ok2 := b.R.(*Lit); ok2 && sc.has(c) {
			i, _ := sc.resolve(c)
			return i, l.V, true
		}
	}
	if c, ok := b.R.(*ColRef); ok {
		if l, ok2 := b.L.(*Lit); ok2 && sc.has(c) {
			i, _ := sc.resolve(c)
			return i, l.V, true
		}
	}
	return 0, Null, false
}

// outputName returns the display name of a select item.
func outputName(it SelectItem, pos int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Name
	}
	return fmt.Sprintf("col%d", pos+1)
}

// sqlExprString renders an expression for error messages.
func sqlExprString(e SQLExpr) string {
	switch x := e.(type) {
	case *ColRef:
		if x.Qual != "" {
			return x.Qual + "." + x.Name
		}
		return x.Name
	case *Lit:
		return x.V.Text()
	case *BinExpr:
		return "(" + sqlExprString(x.L) + " " + x.Op + " " + sqlExprString(x.R) + ")"
	case *UnExpr:
		return x.Op + " " + sqlExprString(x.X)
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = sqlExprString(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	default:
		return "?"
	}
}
