package relational

// SQL abstract syntax. Only SELECT statements exist: data loading is
// programmatic (bulk ingest), as in the paper's pipeline where agents
// write through a separate ingestion path.

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    SQLExpr
	GroupBy  []SQLExpr
	Having   SQLExpr
	OrderBy  []OrderItem
	Limit    int // -1 = no limit
}

// SelectItem is one projection.
type SelectItem struct {
	Expr  SQLExpr
	Alias string
	Star  bool // SELECT *
}

// JoinType distinguishes how a FROM item combines with what precedes it.
type JoinType int

// Join types. The first FROM item always uses JoinNone; comma-separated
// tables use JoinCross (predicates in WHERE), JOIN ... ON uses JoinInner,
// LEFT JOIN ... ON uses JoinLeft.
const (
	JoinNone JoinType = iota
	JoinCross
	JoinInner
	JoinLeft
)

// FromItem is one table or derived table in the FROM clause.
type FromItem struct {
	TableName string
	Sub       *SelectStmt // derived table when non-nil
	Alias     string
	Join      JoinType
	On        SQLExpr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr SQLExpr
	Desc bool
}

// SQLExpr is a SQL scalar expression.
type SQLExpr interface{ isSQLExpr() }

// ColRef references a column, optionally qualified: `e1.start_ts`.
type ColRef struct {
	Qual string // may be ""
	Name string
}

// Lit is a literal value.
type Lit struct{ V Value }

// BinExpr applies a binary operator: arithmetic, comparison, AND/OR, LIKE.
type BinExpr struct {
	Op   string // uppercase: + - * / = <> < <= > >= AND OR LIKE
	L, R SQLExpr

	likeCache interface{ Match(string) bool } // compiled LIKE pattern (literal RHS)
}

// UnExpr applies NOT or unary minus.
type UnExpr struct {
	Op string // NOT or -
	X  SQLExpr
}

// IsNullExpr tests `x IS [NOT] NULL`.
type IsNullExpr struct {
	X   SQLExpr
	Not bool
}

// FuncCall is a function application; aggregates and scalar functions.
type FuncCall struct {
	Name string // uppercase
	Args []SQLExpr
	Star bool // COUNT(*)
}

// InExpr tests membership in a literal list.
type InExpr struct {
	X    SQLExpr
	List []SQLExpr
	Not  bool
}

func (*ColRef) isSQLExpr()     {}
func (*Lit) isSQLExpr()        {}
func (*BinExpr) isSQLExpr()    {}
func (*UnExpr) isSQLExpr()     {}
func (*IsNullExpr) isSQLExpr() {}
func (*FuncCall) isSQLExpr()   {}
func (*InExpr) isSQLExpr()     {}

// sqlAggregates is the aggregate function set.
var sqlAggregates = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// hasAggregate reports whether the expression contains an aggregate call.
func hasAggregate(e SQLExpr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if sqlAggregates[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
		return false
	case *BinExpr:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *UnExpr:
		return hasAggregate(x.X)
	case *IsNullExpr:
		return hasAggregate(x.X)
	case *InExpr:
		if hasAggregate(x.X) {
			return true
		}
		for _, a := range x.List {
			if hasAggregate(a) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
