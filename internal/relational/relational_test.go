package relational

import (
	"reflect"
	"testing"
)

// newTestDB builds a small two-table database (people, orders).
func newTestDB(t *testing.T, optimized bool) *DB {
	t.Helper()
	db := Open(optimized)
	people, err := db.CreateTable("people", []Column{
		{Name: "id", Type: TypeInt},
		{Name: "name", Type: TypeText},
		{Name: "age", Type: TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]Value{
		{Int(1), Str("alice"), Int(34)},
		{Int(2), Str("bob"), Int(28)},
		{Int(3), Str("carol"), Int(41)},
		{Int(4), Str("dave"), Int(28)},
	}
	if err := people.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	orders, err := db.CreateTable("orders", []Column{
		{Name: "id", Type: TypeInt},
		{Name: "person_id", Type: TypeInt},
		{Name: "item", Type: TypeText},
		{Name: "price", Type: TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	orows := [][]Value{
		{Int(10), Int(1), Str("book"), Float(12.5)},
		{Int(11), Int(1), Str("pen"), Float(2)},
		{Int(12), Int(2), Str("book"), Float(13)},
		{Int(13), Int(3), Str("lamp"), Float(40)},
	}
	if err := orders.InsertAll(orows); err != nil {
		t.Fatal(err)
	}
	if optimized {
		for _, idx := range [][2]string{{"people", "id"}, {"people", "name"}, {"orders", "person_id"}} {
			if err := db.CreateIndex(idx[0], idx[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func queryStrings(t *testing.T, db *DB, sql string) [][]string {
	t.Helper()
	rows, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows.RenderStrings()
}

func TestSelectWhere(t *testing.T) {
	for _, opt := range []bool{true, false} {
		db := newTestDB(t, opt)
		got := queryStrings(t, db, `SELECT name FROM people WHERE age = 28 ORDER BY name`)
		want := [][]string{{"bob"}, {"dave"}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("optimized=%v: got %v, want %v", opt, got, want)
		}
	}
}

func TestJoinOn(t *testing.T) {
	for _, opt := range []bool{true, false} {
		db := newTestDB(t, opt)
		got := queryStrings(t, db, `
SELECT p.name, o.item FROM people p JOIN orders o ON o.person_id = p.id
WHERE o.price > 10 ORDER BY name, item`)
		want := [][]string{{"alice", "book"}, {"bob", "book"}, {"carol", "lamp"}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("optimized=%v: got %v, want %v", opt, got, want)
		}
	}
}

func TestCommaJoinWithWhere(t *testing.T) {
	db := newTestDB(t, true)
	got := queryStrings(t, db, `
SELECT p.name, o.item FROM people p, orders o
WHERE o.person_id = p.id AND p.name = 'alice' ORDER BY item`)
	want := [][]string{{"alice", "book"}, {"alice", "pen"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	db := newTestDB(t, true)
	got := queryStrings(t, db, `
SELECT p.name, o.item FROM people p LEFT JOIN orders o ON o.person_id = p.id
ORDER BY name, item`)
	want := [][]string{
		{"alice", "book"}, {"alice", "pen"},
		{"bob", "book"}, {"carol", "lamp"},
		{"dave", "NULL"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newTestDB(t, true)
	got := queryStrings(t, db, `
SELECT p.name, COUNT(*) AS n, SUM(o.price) AS total
FROM people p JOIN orders o ON o.person_id = p.id
GROUP BY p.name HAVING COUNT(*) >= 1 ORDER BY name`)
	want := [][]string{
		{"alice", "2", "14.5"},
		{"bob", "1", "13"},
		{"carol", "1", "40"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestAggregatesOverEmptyInput(t *testing.T) {
	db := newTestDB(t, true)
	got := queryStrings(t, db, `SELECT COUNT(*) AS n FROM people WHERE age > 100`)
	want := [][]string{{"0"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLikeCaseInsensitive(t *testing.T) {
	db := newTestDB(t, true)
	got := queryStrings(t, db, `SELECT name FROM people WHERE name LIKE '%AL%' ORDER BY name`)
	want := [][]string{{"alice"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	db := newTestDB(t, true)
	got := queryStrings(t, db, `SELECT DISTINCT age FROM people ORDER BY age`)
	want := [][]string{{"28"}, {"34"}, {"41"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distinct: got %v, want %v", got, want)
	}
	got = queryStrings(t, db, `SELECT DISTINCT age FROM people ORDER BY age LIMIT 2`)
	want = [][]string{{"28"}, {"34"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("limit: got %v, want %v", got, want)
	}
}

func TestDerivedTable(t *testing.T) {
	db := newTestDB(t, true)
	got := queryStrings(t, db, `
SELECT s.name, s.total FROM (
  SELECT p.name AS name, SUM(o.price) AS total
  FROM people p JOIN orders o ON o.person_id = p.id
  GROUP BY p.name
) AS s WHERE s.total > 13 ORDER BY name`)
	want := [][]string{{"alice", "14.5"}, {"carol", "40"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestDerivedTableSelfJoinWithCoalesce(t *testing.T) {
	db := newTestDB(t, true)
	// the pattern the anomaly-query translation relies on: a bucketed
	// aggregate left-joined to its own lagged buckets
	got := queryStrings(t, db, `
SELECT b0.age, b0.n, COALESCE(b1.n, 0) AS prev
FROM (SELECT age, COUNT(*) AS n FROM people GROUP BY age) b0
LEFT JOIN (SELECT age, COUNT(*) AS n FROM people GROUP BY age) b1
  ON b1.age = b0.age - 6
ORDER BY age`)
	want := [][]string{
		{"28", "2", "0"},
		{"34", "1", "2"},
		{"41", "1", "0"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestInAndBetween(t *testing.T) {
	db := newTestDB(t, true)
	got := queryStrings(t, db, `SELECT name FROM people WHERE age IN (28, 41) ORDER BY name`)
	want := [][]string{{"bob"}, {"carol"}, {"dave"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IN: got %v, want %v", got, want)
	}
	got = queryStrings(t, db, `SELECT name FROM people WHERE age BETWEEN 30 AND 45 ORDER BY name`)
	want = [][]string{{"alice"}, {"carol"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BETWEEN: got %v, want %v", got, want)
	}
}

func TestArithmeticAndNullDivision(t *testing.T) {
	db := newTestDB(t, true)
	got := queryStrings(t, db, `SELECT name, age * 2 + 1 AS x FROM people WHERE name = 'bob'`)
	want := [][]string{{"bob", "57"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("arith: got %v, want %v", got, want)
	}
	got = queryStrings(t, db, `SELECT age / 0 AS x FROM people WHERE name = 'bob'`)
	want = [][]string{{"NULL"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("div0: got %v, want %v", got, want)
	}
}

func TestErrorCases(t *testing.T) {
	db := newTestDB(t, true)
	for _, sql := range []string{
		`SELECT`,                                 // nothing to select
		`SELECT x FROM nosuch`,                   // unknown table
		`SELECT bogus FROM people`,               // unknown column
		`SELECT p.id FROM people p, orders p`,    // duplicate alias is tolerated? ambiguity surfaces at resolve
		`SELECT name FROM people WHERE`,          // dangling where
		`SELECT name FROM people ORDER BY nope`,  // unknown order key
		`SELECT id FROM (SELECT id FROM people)`, // derived table without alias
	} {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("Query(%q): expected error, got none", sql)
		}
	}
}

func TestIndexRefusedWhenUnoptimized(t *testing.T) {
	db := newTestDB(t, false)
	if err := db.CreateIndex("people", "id"); err == nil {
		t.Fatal("expected CreateIndex to fail on unoptimized database")
	}
}

func TestIndexAndSeqScanAgree(t *testing.T) {
	sqls := []string{
		`SELECT name FROM people WHERE name = 'alice'`,
		`SELECT name FROM people WHERE id >= 2 AND id <= 3 ORDER BY name`,
		`SELECT p.name, o.item FROM people p JOIN orders o ON o.person_id = p.id ORDER BY name, item`,
	}
	opt := newTestDB(t, true)
	plain := newTestDB(t, false)
	for _, sql := range sqls {
		a := queryStrings(t, opt, sql)
		b := queryStrings(t, plain, sql)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s:\n optimized=%v\n plain=%v", sql, a, b)
		}
	}
}
