package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Table is a heap of rows plus optional indexes.
type Table struct {
	Name    string
	Columns []Column
	colIdx  map[string]int
	rows    [][]Value

	hashIdx map[string]map[string][]int // column → value key → row positions
	sortIdx map[string][]int            // column → row positions ordered by value
}

// DB is an embedded relational database.
type DB struct {
	mu        sync.RWMutex
	tables    map[string]*Table
	optimized bool // indexes permitted (the paper's "w/ optimized storage")
}

// Open creates an empty database. With optimized false the database
// refuses to build indexes, modeling the plain-heap baseline.
func Open(optimized bool) *DB {
	return &DB{tables: make(map[string]*Table), optimized: optimized}
}

// Optimized reports whether the database allows indexes.
func (db *DB) Optimized() bool { return db.optimized }

// CreateTable registers a new table.
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	lname := strings.ToLower(name)
	if _, exists := db.tables[lname]; exists {
		return nil, fmt.Errorf("relational: table %q already exists", name)
	}
	t := &Table{Name: lname, Columns: cols, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colIdx[lc]; dup {
			return nil, fmt.Errorf("relational: duplicate column %q in table %q", c.Name, name)
		}
		t.Columns[i].Name = lc
		t.colIdx[lc] = i
	}
	db.tables[lname] = t
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames lists the tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert appends one row; values are coerced to the column types.
// Indexes must be created after bulk loading (Insert invalidates none —
// CreateIndex builds from current rows), mirroring bulk-load practice.
func (t *Table) Insert(vals []Value) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("relational: table %q has %d columns, got %d values", t.Name, len(t.Columns), len(vals))
	}
	row := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := coerce(v, t.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("column %q: %w", t.Columns[i].Name, err)
		}
		row[i] = cv
	}
	t.rows = append(t.rows, row)
	return nil
}

// InsertAll bulk-appends rows.
func (t *Table) InsertAll(rows [][]Value) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// ColumnIndex resolves a column name to its position.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.colIdx[strings.ToLower(name)]
	return i, ok
}

// CreateIndex builds a hash index and an ordered index on a column.
// It fails on an unoptimized database (the plain-heap baseline).
func (db *DB) CreateIndex(table, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.optimized {
		return fmt.Errorf("relational: database opened without storage optimizations; indexes unavailable")
	}
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("relational: no table %q", table)
	}
	ci, ok := t.ColumnIndex(column)
	if !ok {
		return fmt.Errorf("relational: no column %q in table %q", column, table)
	}
	col := t.Columns[ci].Name
	if t.hashIdx == nil {
		t.hashIdx = map[string]map[string][]int{}
	}
	if t.sortIdx == nil {
		t.sortIdx = map[string][]int{}
	}
	h := make(map[string][]int, len(t.rows))
	order := make([]int, len(t.rows))
	for i, row := range t.rows {
		k := row[ci].Key()
		h[k] = append(h[k], i)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return Compare(t.rows[order[a]][ci], t.rows[order[b]][ci]) < 0
	})
	t.hashIdx[col] = h
	t.sortIdx[col] = order
	return nil
}

// HasIndex reports whether the column has indexes.
func (t *Table) HasIndex(column string) bool {
	if t.hashIdx == nil {
		return false
	}
	_, ok := t.hashIdx[strings.ToLower(column)]
	return ok
}

// lookupEq returns the row positions whose column equals v, via the hash
// index (must exist).
func (t *Table) lookupEq(column string, v Value) []int {
	return t.hashIdx[column][v.Key()]
}

// scanRange iterates rows whose column value is in [lo, hi] (either bound
// may be nil = open) via the ordered index.
func (t *Table) scanRange(column string, lo, hi *Value, fn func(rowIdx int) bool) {
	order := t.sortIdx[column]
	ci := t.colIdx[column]
	start := 0
	if lo != nil {
		start = sort.Search(len(order), func(i int) bool {
			return Compare(t.rows[order[i]][ci], *lo) >= 0
		})
	}
	for i := start; i < len(order); i++ {
		row := t.rows[order[i]]
		if hi != nil && Compare(row[ci], *hi) > 0 {
			return
		}
		if !fn(order[i]) {
			return
		}
	}
}

// Row returns the row at position i.
func (t *Table) Row(i int) []Value { return t.rows[i] }
