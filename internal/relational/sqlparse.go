package relational

import (
	"fmt"
)

// sqlParser is a recursive-descent parser over the SQL token stream.
type sqlParser struct {
	toks []sqlToken
	pos  int
}

// ParseSQL parses one SELECT statement.
func ParseSQL(src string) (*SelectStmt, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != sqlEOF {
		return nil, fmt.Errorf("sql: unexpected %q after statement (offset %d)", p.cur().text, p.cur().off)
	}
	return stmt, nil
}

func (p *sqlParser) cur() sqlToken { return p.toks[p.pos] }
func (p *sqlParser) next() sqlToken {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *sqlParser) atKw(kw string) bool {
	return p.cur().kind == sqlKeyword && p.cur().text == kw
}

func (p *sqlParser) eatKw(kw string) bool {
	if p.atKw(kw) {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectKw(kw string) error {
	if !p.eatKw(kw) {
		return fmt.Errorf("sql: expected %s, found %q (offset %d)", kw, p.cur().text, p.cur().off)
	}
	return nil
}

func (p *sqlParser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.eatKw("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.cur().kind != sqlComma {
			break
		}
		p.next()
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(stmt); err != nil {
		return nil, err
	}
	if p.eatKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.eatKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.cur().kind != sqlComma {
				break
			}
			p.next()
		}
	}
	if p.eatKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.eatKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.eatKw("DESC") {
				item.Desc = true
			} else {
				p.eatKw("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.cur().kind != sqlComma {
				break
			}
			p.next()
		}
	}
	if p.eatKw("LIMIT") {
		t := p.cur()
		if t.kind != sqlNumber {
			return nil, fmt.Errorf("sql: LIMIT needs a number (offset %d)", t.off)
		}
		p.next()
		stmt.Limit = int(t.num)
	}
	return stmt, nil
}

func (p *sqlParser) parseSelectItem() (SelectItem, error) {
	if p.cur().kind == sqlStar {
		p.next()
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.eatKw("AS") {
		t := p.cur()
		if t.kind != sqlIdent {
			return item, fmt.Errorf("sql: expected alias after AS (offset %d)", t.off)
		}
		p.next()
		item.Alias = t.text
	} else if p.cur().kind == sqlIdent {
		// bare alias: SELECT a.x foo
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *sqlParser) parseFrom(stmt *SelectStmt) error {
	first, err := p.parseFromItem(JoinNone)
	if err != nil {
		return err
	}
	stmt.From = append(stmt.From, first)
	for {
		switch {
		case p.cur().kind == sqlComma:
			p.next()
			it, err := p.parseFromItem(JoinCross)
			if err != nil {
				return err
			}
			stmt.From = append(stmt.From, it)
		case p.atKw("JOIN") || p.atKw("INNER") || p.atKw("CROSS"):
			cross := p.atKw("CROSS")
			p.eatKw("INNER")
			p.eatKw("CROSS")
			if err := p.expectKw("JOIN"); err != nil {
				return err
			}
			jt := JoinInner
			if cross {
				jt = JoinCross
			}
			it, err := p.parseFromItem(jt)
			if err != nil {
				return err
			}
			if !cross {
				if err := p.expectKw("ON"); err != nil {
					return err
				}
				on, err := p.parseExpr()
				if err != nil {
					return err
				}
				it.On = on
			}
			stmt.From = append(stmt.From, it)
		case p.atKw("LEFT"):
			p.next()
			p.eatKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return err
			}
			it, err := p.parseFromItem(JoinLeft)
			if err != nil {
				return err
			}
			if err := p.expectKw("ON"); err != nil {
				return err
			}
			on, err := p.parseExpr()
			if err != nil {
				return err
			}
			it.On = on
			stmt.From = append(stmt.From, it)
		default:
			return nil
		}
	}
}

func (p *sqlParser) parseFromItem(jt JoinType) (FromItem, error) {
	it := FromItem{Join: jt}
	switch {
	case p.cur().kind == sqlLParen:
		p.next()
		sub, err := p.parseSelect()
		if err != nil {
			return it, err
		}
		if p.cur().kind != sqlRParen {
			return it, fmt.Errorf("sql: expected ')' after derived table (offset %d)", p.cur().off)
		}
		p.next()
		it.Sub = sub
	case p.cur().kind == sqlIdent:
		it.TableName = p.next().text
	default:
		return it, fmt.Errorf("sql: expected table name or subquery in FROM (offset %d)", p.cur().off)
	}
	p.eatKw("AS")
	if p.cur().kind == sqlIdent {
		it.Alias = p.next().text
	} else if it.Sub != nil {
		return it, fmt.Errorf("sql: derived table needs an alias (offset %d)", p.cur().off)
	} else {
		it.Alias = it.TableName
	}
	return it, nil
}

// ------------------------------------------------------------ expressions

func (p *sqlParser) parseExpr() (SQLExpr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (SQLExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKw("OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (SQLExpr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKw("AND") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (SQLExpr, error) {
	if p.atKw("NOT") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

func (p *sqlParser) parseCmp() (SQLExpr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch {
	case t.kind == sqlOp && (t.text == "=" || t.text == "<>" || t.text == "!=" ||
		t.text == "<" || t.text == "<=" || t.text == ">" || t.text == ">="):
		p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		op := t.text
		if op == "!=" {
			op = "<>"
		}
		return &BinExpr{Op: op, L: l, R: r}, nil
	case p.atKw("LIKE"):
		p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: "LIKE", L: l, R: r}, nil
	case p.atKw("NOT"):
		// NOT LIKE / NOT IN
		save := p.pos
		p.next()
		switch {
		case p.atKw("LIKE"):
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &UnExpr{Op: "NOT", X: &BinExpr{Op: "LIKE", L: l, R: r}}, nil
		case p.atKw("IN"):
			p.next()
			in, err := p.parseInList(l, true)
			if err != nil {
				return nil, err
			}
			return in, nil
		default:
			p.pos = save
			return l, nil
		}
	case p.atKw("IS"):
		p.next()
		not := p.eatKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Not: not}, nil
	case p.atKw("IN"):
		p.next()
		return p.parseInList(l, false)
	case p.atKw("BETWEEN"):
		p.next()
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: "AND",
			L: &BinExpr{Op: ">=", L: l, R: lo},
			R: &BinExpr{Op: "<=", L: l, R: hi}}, nil
	}
	return l, nil
}

func (p *sqlParser) parseInList(x SQLExpr, not bool) (SQLExpr, error) {
	if p.cur().kind != sqlLParen {
		return nil, fmt.Errorf("sql: expected '(' after IN (offset %d)", p.cur().off)
	}
	p.next()
	in := &InExpr{X: x, Not: not}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if p.cur().kind == sqlComma {
			p.next()
			continue
		}
		break
	}
	if p.cur().kind != sqlRParen {
		return nil, fmt.Errorf("sql: expected ')' to close IN list (offset %d)", p.cur().off)
	}
	p.next()
	return in, nil
}

func (p *sqlParser) parseAdd() (SQLExpr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == sqlOp && (p.cur().text == "+" || p.cur().text == "-" || p.cur().text == "||") {
		op := p.next().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseMul() (SQLExpr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for (p.cur().kind == sqlOp && p.cur().text == "/") || p.cur().kind == sqlStar {
		op := "*"
		if p.cur().kind == sqlOp {
			op = "/"
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseUnary() (SQLExpr, error) {
	if p.cur().kind == sqlOp && p.cur().text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *sqlParser) parsePrimary() (SQLExpr, error) {
	t := p.cur()
	switch t.kind {
	case sqlNumber:
		p.next()
		if t.num == float64(int64(t.num)) {
			return &Lit{V: Int(int64(t.num))}, nil
		}
		return &Lit{V: Float(t.num)}, nil
	case sqlString:
		p.next()
		return &Lit{V: Str(t.text)}, nil
	case sqlKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Lit{V: Null}, nil
		case "TRUE":
			p.next()
			return &Lit{V: Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Lit{V: Bool(false)}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %s in expression (offset %d)", t.text, t.off)
	case sqlLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != sqlRParen {
			return nil, fmt.Errorf("sql: expected ')' (offset %d)", p.cur().off)
		}
		p.next()
		return e, nil
	case sqlIdent:
		p.next()
		name := t.text
		// function call
		if p.cur().kind == sqlLParen {
			p.next()
			fc := &FuncCall{Name: upper(name)}
			if p.cur().kind == sqlStar {
				p.next()
				fc.Star = true
			} else if p.cur().kind != sqlRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if p.cur().kind == sqlComma {
						p.next()
						continue
					}
					break
				}
			}
			if p.cur().kind != sqlRParen {
				return nil, fmt.Errorf("sql: expected ')' after arguments (offset %d)", p.cur().off)
			}
			p.next()
			return fc, nil
		}
		// qualified column
		if p.cur().kind == sqlOp && p.cur().text == "." {
			p.next()
			c := p.cur()
			if c.kind != sqlIdent {
				return nil, fmt.Errorf("sql: expected column after '.' (offset %d)", c.off)
			}
			p.next()
			return &ColRef{Qual: name, Name: c.text}, nil
		}
		return &ColRef{Name: name}, nil
	}
	return nil, fmt.Errorf("sql: unexpected %q in expression (offset %d)", t.text, t.off)
}

func upper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}
