package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// sqlTokKind classifies SQL tokens.
type sqlTokKind int

const (
	sqlEOF sqlTokKind = iota
	sqlIdent
	sqlKeyword
	sqlString
	sqlNumber
	sqlOp // = <> != < <= > >= + - * / || .
	sqlLParen
	sqlRParen
	sqlComma
	sqlStar
)

type sqlToken struct {
	kind sqlTokKind
	text string // keywords uppercased, identifiers lowercased
	num  float64
	off  int
}

var sqlKeywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"JOIN": true, "LEFT": true, "INNER": true, "OUTER": true, "ON": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "AND": true, "OR": true,
	"NOT": true, "LIKE": true, "AS": true, "IS": true, "NULL": true,
	"IN": true, "BETWEEN": true, "CROSS": true, "TRUE": true, "FALSE": true,
}

// sqlLex tokenizes SQL text. SQL string literals use single quotes with
// ” as the escape; -- starts a line comment.
func sqlLex(src string) ([]sqlToken, error) {
	var toks []sqlToken
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			start := i
			for i < n && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
			if i < n && src[i] == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9' {
				i++
				for i < n && (src[i] >= '0' && src[i] <= '9') {
					i++
				}
			}
			v, err := strconv.ParseFloat(src[start:i], 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number at offset %d", start)
			}
			toks = append(toks, sqlToken{kind: sqlNumber, text: src[start:i], num: v, off: start})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(src[i])
				i++
			}
			toks = append(toks, sqlToken{kind: sqlString, text: b.String(), off: start})
		case isSQLIdentStart(c):
			start := i
			for i < n && isSQLIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if sqlKeywords[up] {
				toks = append(toks, sqlToken{kind: sqlKeyword, text: up, off: start})
			} else {
				toks = append(toks, sqlToken{kind: sqlIdent, text: strings.ToLower(word), off: start})
			}
		case c == '(':
			toks = append(toks, sqlToken{kind: sqlLParen, text: "(", off: i})
			i++
		case c == ')':
			toks = append(toks, sqlToken{kind: sqlRParen, text: ")", off: i})
			i++
		case c == ',':
			toks = append(toks, sqlToken{kind: sqlComma, text: ",", off: i})
			i++
		case c == '*':
			toks = append(toks, sqlToken{kind: sqlStar, text: "*", off: i})
			i++
		case c == ';':
			i++ // statement terminator: ignored
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<>", "!=", "<=", ">=", "||":
				toks = append(toks, sqlToken{kind: sqlOp, text: two, off: i})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '/', '.':
				toks = append(toks, sqlToken{kind: sqlOp, text: string(c), off: i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", string(c), i)
			}
		}
	}
	toks = append(toks, sqlToken{kind: sqlEOF, off: n})
	return toks, nil
}

func isSQLIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isSQLIdentPart(c byte) bool {
	return isSQLIdentStart(c) || (c >= '0' && c <= '9')
}
