package shard

import (
	"context"
	"fmt"
	"testing"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/datagen"
	"github.com/aiql/aiql/internal/experiments"
	"github.com/aiql/aiql/internal/service"
)

// fig4ShardQuery is a full-scan investigation over the Fig4 demo-apt
// dataset: every process-writes-file event, the broadest pattern the
// scenario produces, so the benchmark measures scatter + merge over the
// whole 50k-event corpus.
const fig4ShardQuery = `proc p write file f as evt return p, f`

// buildShardedFig4 partitions the Fig4 50k-event dataset across n local
// members by agentid (the natural host partitioning) and fronts them
// with a coordinator.
func buildShardedFig4(tb testing.TB, n int) (*Coordinator, service.ShardQuery) {
	tb.Helper()
	recs := datagen.Generate(experiments.Fig4Dataset(50000, 10, 42))
	buckets := make([][]aiql.Record, n)
	for _, r := range recs {
		i := int(r.AgentID) % n
		buckets[i] = append(buckets[i], r)
	}
	members := make([]Member, n)
	for i, bucket := range buckets {
		db := aiql.Open()
		db.AppendAll(bucket)
		db.Flush()
		members[i] = Member{Name: fmt.Sprintf("m%d", i), Source: NewLocalSource(db)}
	}
	coord := NewCoordinator("fig4", members, Options{})
	tb.Cleanup(func() { coord.Close() })
	stmt, err := aiql.Open().Prepare(fig4ShardQuery)
	if err != nil {
		tb.Fatal(err)
	}
	return coord, service.ShardQuery{Query: fig4ShardQuery, Columns: stmt.Columns(), Kind: stmt.Kind()}
}

// BenchmarkShardColdScan: cold scatter-gather of the full Fig4 corpus
// at 1, 2, and 4 local members. No result or scan caches are enabled,
// so every iteration re-scans every member store; the 1-shard run is
// the unsharded baseline the merge overhead is read against.
func BenchmarkShardColdScan(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			coord, q := buildShardedFig4(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, warns, err := coord.Run(context.Background(), q)
				if err != nil || len(warns) != 0 {
					b.Fatalf("err=%v warns=%v", err, warns)
				}
				if len(res.Rows) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}
