package shard

import (
	"context"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/service"
)

// Source executes queries against one member store — the node-local vs
// remote scan abstraction the coordinator fans out over. Stream
// delivers the member's rows in the canonical sorted order
// (engine.RowLess); a positive q.Limit stops after that many rows.
// Implementations must be safe for concurrent use.
type Source interface {
	// Stream executes q and calls row for each sorted result row. The
	// returned statistics describe the member's own execution work.
	Stream(ctx context.Context, q service.ShardQuery, row func([]string) error) (engine.ExecStats, error)
	// Ping probes liveness and returns the member's store epoch — any
	// change means committed data moved and cached coordinator results
	// are stale.
	Ping(ctx context.Context) (epoch uint64, err error)
	// Close releases the member's resources (store lock, idle
	// connections).
	Close() error
}

// LocalSource serves a member from an eventstore in this process.
// Execution goes through the full buffered engine path, so rows come
// out in canonical order with the member's result semantics intact.
type LocalSource struct {
	db *aiql.DB
}

// NewLocalSource wraps an open database as a shard member. The source
// owns the database: Close closes it.
func NewLocalSource(db *aiql.DB) *LocalSource { return &LocalSource{db: db} }

// DB exposes the wrapped database (tests, catalog stats).
func (s *LocalSource) DB() *aiql.DB { return s.db }

// Stream implements Source by compiling against the member store and
// walking the sorted buffered result.
func (s *LocalSource) Stream(ctx context.Context, q service.ShardQuery, row func([]string) error) (engine.ExecStats, error) {
	stmt, err := s.db.Prepare(q.Query)
	if err != nil {
		return engine.ExecStats{}, err
	}
	res, err := stmt.Exec(ctx, aiql.Params(q.Params))
	if err != nil {
		return engine.ExecStats{}, err
	}
	rows := res.Rows
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	for _, r := range rows {
		if err := row(r); err != nil {
			return res.Stats, err
		}
	}
	return res.Stats, nil
}

// Ping implements Source: the local epoch is the store's commit
// counter.
func (s *LocalSource) Ping(ctx context.Context) (uint64, error) {
	if s.db.Closed() {
		return 0, aiql.ErrClosed
	}
	return s.db.Commits(), nil
}

// Close implements Source.
func (s *LocalSource) Close() error { return s.db.Close() }
