package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aiql/aiql/internal/service"
)

// memberStub scripts a member's query/stream endpoint: each request
// pops the next behavior.
type memberStub struct {
	t        *testing.T
	behave   []func(w http.ResponseWriter)
	requests atomic.Int64
}

func (m *memberStub) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/query/stream", func(w http.ResponseWriter, r *http.Request) {
		n := int(m.requests.Add(1)) - 1
		var req service.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			m.t.Errorf("bad request body: %v", err)
		}
		if !req.Sorted {
			m.t.Error("shard client did not request sorted rows")
		}
		if n >= len(m.behave) {
			m.t.Errorf("unexpected request #%d", n+1)
			w.WriteHeader(500)
			return
		}
		m.behave[n](w)
	})
	mux.HandleFunc("/api/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.Health{Status: "ok", StoreOpen: true, Generation: 42})
	})
	return mux
}

func serveRows(rows [][]string, scanned int64) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		enc := json.NewEncoder(w)
		enc.Encode(service.StreamHeader{Columns: []string{"p", "f"}})
		for _, r := range rows {
			enc.Encode(r)
		}
		enc.Encode(service.StreamTrailer{Done: true, Rows: len(rows), ScannedEvents: scanned})
	}
}

func newClient(t *testing.T, srv *httptest.Server, opts Options) *Client {
	t.Helper()
	c, err := New(srv.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func collect(c *Client, q service.ShardQuery) ([][]string, int64, error) {
	var rows [][]string
	stats, err := c.Stream(context.Background(), q, func(r []string) error {
		rows = append(rows, r)
		return nil
	})
	return rows, stats.ScannedEvents, err
}

func TestStreamHappyPath(t *testing.T) {
	want := [][]string{{"worker.exe", "a.log"}, {"worker.exe", "b.log"}}
	stub := &memberStub{t: t, behave: []func(http.ResponseWriter){serveRows(want, 7)}}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	c := newClient(t, srv, Options{Dataset: "events"})
	rows, scanned, err := collect(c, service.ShardQuery{Query: "q"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, want) || scanned != 7 {
		t.Fatalf("rows=%v scanned=%d", rows, scanned)
	}
	if c.Retries() != 0 {
		t.Errorf("retries = %d, want 0", c.Retries())
	}
	if g, err := c.Ping(context.Background()); err != nil || g != 42 {
		t.Fatalf("ping = %d/%v, want 42", g, err)
	}
}

func TestThrottledNeverRetries(t *testing.T) {
	stub := &memberStub{t: t, behave: []func(http.ResponseWriter){
		func(w http.ResponseWriter) {
			w.Header().Set("Retry-After", "11")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(service.ErrorResponse{Code: "client_throttled", Error: "busy"})
		},
	}}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	c := newClient(t, srv, Options{})
	_, _, err := collect(c, service.ShardQuery{Query: "q"})
	var thr *ThrottledError
	if !errors.As(err, &thr) || thr.After != 11 {
		t.Fatalf("got %v, want ThrottledError carrying Retry-After 11", err)
	}
	if n := stub.requests.Load(); n != 1 {
		t.Fatalf("429 was retried: %d requests", n)
	}
}

func TestQueryRejectionNeverRetries(t *testing.T) {
	stub := &memberStub{t: t, behave: []func(http.ResponseWriter){
		func(w http.ResponseWriter) {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(service.ErrorResponse{Code: service.CodeParseError, Error: "syntax error"})
		},
	}}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	c := newClient(t, srv, Options{})
	_, _, err := collect(c, service.ShardQuery{Query: "q"})
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Code != service.CodeParseError || qe.Status != 400 {
		t.Fatalf("got %v, want QueryError{400, parse_error}", err)
	}
	if n := stub.requests.Load(); n != 1 {
		t.Fatalf("4xx was retried: %d requests", n)
	}
}

func TestTransportRetriesThenSucceeds(t *testing.T) {
	want := [][]string{{"worker.exe", "a.log"}}
	stub := &memberStub{t: t, behave: []func(http.ResponseWriter){
		func(w http.ResponseWriter) { w.WriteHeader(http.StatusBadGateway) },
		serveRows(want, 1),
	}}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	c := newClient(t, srv, Options{Backoff: time.Millisecond})
	rows, _, err := collect(c, service.ShardQuery{Query: "q"})
	if err != nil || !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	if c.Retries() != 1 {
		t.Errorf("retries = %d, want 1", c.Retries())
	}
}

func TestNoRetryAfterRowsDelivered(t *testing.T) {
	stub := &memberStub{t: t, behave: []func(http.ResponseWriter){
		func(w http.ResponseWriter) {
			// rows flow, then the member dies without a trailer
			enc := json.NewEncoder(w)
			enc.Encode(service.StreamHeader{Columns: []string{"p", "f"}})
			enc.Encode([]string{"worker.exe", "a.log"})
			w.(http.Flusher).Flush()
			if hj, ok := w.(http.Hijacker); ok {
				conn, _, _ := hj.Hijack()
				conn.Close()
			}
		},
	}}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	c := newClient(t, srv, Options{Backoff: time.Millisecond})
	rows, _, err := collect(c, service.ShardQuery{Query: "q"})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("got %v, want TransportError for a mid-stream cut", err)
	}
	if len(rows) != 1 {
		t.Fatalf("delivered rows = %d, want the 1 row that arrived", len(rows))
	}
	if n := stub.requests.Load(); n != 1 {
		t.Fatalf("mid-stream failure was retried after delivering rows: %d requests (a retry would duplicate rows)", n)
	}
}

func TestTrailerErrorIsTransport(t *testing.T) {
	stub := &memberStub{t: t, behave: []func(http.ResponseWriter){
		func(w http.ResponseWriter) {
			enc := json.NewEncoder(w)
			enc.Encode(service.StreamHeader{Columns: []string{"p", "f"}})
			enc.Encode(service.StreamTrailer{Done: false, Error: "store closed", Code: "internal"})
		},
	}}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	c := newClient(t, srv, Options{Retries: -1})
	_, _, err := collect(c, service.ShardQuery{Query: "q"})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("got %v, want TransportError for a failure trailer", err)
	}
}

func TestPingUnavailable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(service.Health{Status: "unavailable"})
	}))
	defer srv.Close()
	c := newClient(t, srv, Options{})
	if _, err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping to a 503 member succeeded")
	}
	srv.Close()
	if _, err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping to a dead listener succeeded")
	}
}

func TestBadURL(t *testing.T) {
	for _, u := range []string{"", "not a url", "/just/a/path"} {
		if _, err := New(u, Options{}); err == nil {
			t.Errorf("New(%q) accepted", u)
		}
	}
}

func TestRetriesExhaust(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, "boom")
	}))
	defer srv.Close()
	c := newClient(t, srv, Options{Retries: 2, Backoff: time.Millisecond})
	_, _, err := collect(c, service.ShardQuery{Query: "q"})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("got %v, want TransportError", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("attempts = %d, want 1 + 2 retries", hits.Load())
	}
}
