// Package client reaches a remote shard member over the existing
// NDJSON query/stream wire format. The client asks the member for
// sorted rows ("sorted": true), so the coordinator can merge member
// streams deterministically; transport failures before any row is
// delivered retry with exponential backoff, and every failure is
// classified — throttled, query-rejected, or unavailable — so the
// coordinator can propagate 429 hints faithfully, fail fast on real
// query errors, and degrade to partial results only for genuinely
// unreachable members.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/service"
)

// ThrottledError reports a member 429: the member's own Retry-After
// hint travels with it so the coordinator can propagate the largest
// across members instead of synthesizing a new one. Never retried by
// the client — backing off is the caller's contract.
type ThrottledError struct {
	After int // whole seconds from the member's Retry-After header
	Msg   string
}

func (e *ThrottledError) Error() string {
	return fmt.Sprintf("member throttled (retry after %ds): %s", e.After, e.Msg)
}

// QueryError reports that the member rejected the query itself (4xx):
// the query, not the member, is the problem, so the whole fan-out
// should fail with the member's structured code rather than degrade to
// partial results.
type QueryError struct {
	Status int
	Code   string
	Msg    string
}

func (e *QueryError) Error() string {
	return fmt.Sprintf("member rejected query (%d %s): %s", e.Status, e.Code, e.Msg)
}

// TransportError reports the member is unavailable: connect failure,
// 5xx, or a stream that died before its trailer, with retries
// exhausted. The coordinator turns it into a shard_unavailable warning
// (or error under require_all).
type TransportError struct {
	Msg string
}

func (e *TransportError) Error() string { return "member unavailable: " + e.Msg }

// Options tune one member client.
type Options struct {
	// Dataset names the dataset on the member; empty selects its
	// default.
	Dataset string
	// Timeout bounds each HTTP attempt end-to-end (connect through
	// trailer). 0 leaves the context in charge. Default: 0.
	Timeout time.Duration
	// Retries is how many times a failed attempt is retried, on
	// transport failures only and only while zero rows have been
	// delivered (a retry after delivered rows would duplicate them).
	// Default: 2.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt.
	// Default: 100ms.
	Backoff time.Duration
	// ClientID identifies the coordinator to the member's per-client
	// admission accounting (X-Client-Id).
	ClientID string
	// HTTPClient overrides the transport (tests). Default:
	// http.DefaultClient semantics with keep-alives.
	HTTPClient *http.Client
}

// Client is one remote member's transport. Safe for concurrent use.
type Client struct {
	base    string
	opts    Options
	hc      *http.Client
	retries atomic.Uint64
}

// New builds a client for the member at baseURL (scheme://host[:port],
// no path).
func New(baseURL string, opts Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("shard client: bad member url %q", baseURL)
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), opts: opts, hc: hc}, nil
}

// Retries reports the transport retries performed over the client's
// lifetime (metrics).
func (c *Client) Retries() uint64 { return c.retries.Load() }

// Close releases idle connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// Ping implements the shard source probe: GET /api/v1/healthz on the
// member, returning its store generation as the epoch.
func (c *Client) Ping(ctx context.Context) (uint64, error) {
	u := c.base + "/api/v1/healthz"
	if c.opts.Dataset != "" {
		u += "?dataset=" + url.QueryEscape(c.opts.Dataset)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, &TransportError{Msg: err.Error()}
	}
	defer resp.Body.Close()
	var h service.Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&h); err != nil {
		return 0, &TransportError{Msg: "healthz: " + err.Error()}
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		return 0, &TransportError{Msg: fmt.Sprintf("healthz: %d %s", resp.StatusCode, h.Status)}
	}
	return h.Generation, nil
}

// Stream executes q on the member over POST /api/v1/query/stream with
// sorted rows, calling row per row. Transport failures retry with
// backoff while no row has been delivered; 429 and 4xx never retry.
func (c *Client) Stream(ctx context.Context, q service.ShardQuery, row func([]string) error) (engine.ExecStats, error) {
	payload, err := json.Marshal(service.QueryRequest{
		Query:   q.Query,
		Params:  q.Params,
		Dataset: c.opts.Dataset,
		Limit:   q.Limit,
		Sorted:  true,
	})
	if err != nil {
		return engine.ExecStats{}, err
	}
	backoff := c.opts.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return engine.ExecStats{}, &TransportError{Msg: "retry wait: " + ctx.Err().Error()}
			}
			backoff *= 2
		}
		stats, emitted, err := c.attempt(ctx, payload, row)
		if err == nil {
			return stats, nil
		}
		var te *TransportError
		if !errors.As(err, &te) {
			// throttled, query-rejected, or the sink itself failed:
			// retrying cannot help and may duplicate work
			return stats, err
		}
		if emitted > 0 {
			// rows already reached the merge; a retry would replay them
			return stats, err
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return engine.ExecStats{}, lastErr
}

// attempt is one HTTP round: request, classify status, decode the
// NDJSON stream through the trailer.
func (c *Client) attempt(ctx context.Context, payload []byte, row func([]string) error) (engine.ExecStats, int, error) {
	rctx := ctx
	if c.opts.Timeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, c.opts.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, c.base+"/api/v1/query/stream", bytes.NewReader(payload))
	if err != nil {
		return engine.ExecStats{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.opts.ClientID != "" {
		req.Header.Set("X-Client-Id", c.opts.ClientID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return engine.ExecStats{}, 0, &TransportError{Msg: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return engine.ExecStats{}, 0, classifyStatus(resp)
	}

	dec := json.NewDecoder(resp.Body)
	var hdr service.StreamHeader
	if err := dec.Decode(&hdr); err != nil {
		return engine.ExecStats{}, 0, &TransportError{Msg: "stream header: " + err.Error()}
	}
	emitted := 0
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			// the stream died without a trailer — the member is gone
			return engine.ExecStats{}, emitted, &TransportError{Msg: "stream cut mid-flight: " + err.Error()}
		}
		if len(raw) > 0 && raw[0] == '[' {
			var r []string
			if err := json.Unmarshal(raw, &r); err != nil {
				return engine.ExecStats{}, emitted, &TransportError{Msg: "bad row: " + err.Error()}
			}
			if err := row(r); err != nil {
				return engine.ExecStats{}, emitted, err
			}
			emitted++
			continue
		}
		var tr service.StreamTrailer
		if err := json.Unmarshal(raw, &tr); err != nil {
			return engine.ExecStats{}, emitted, &TransportError{Msg: "bad trailer: " + err.Error()}
		}
		if !tr.Done || tr.Error != "" {
			// the member reported its own mid-stream failure; whatever
			// the cause, this member's contribution is incomplete
			return engine.ExecStats{}, emitted, &TransportError{Msg: fmt.Sprintf("member failed mid-stream: %s (%s)", tr.Error, tr.Code)}
		}
		return engine.ExecStats{ScannedEvents: tr.ScannedEvents}, emitted, nil
	}
}

// classifyStatus maps a non-200 response to the typed error the
// coordinator dispatches on.
func classifyStatus(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var eb service.ErrorResponse
	_ = json.Unmarshal(data, &eb)
	msg := eb.Error
	if msg == "" {
		msg = strings.TrimSpace(string(data))
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if after < 1 {
			after = 1
		}
		return &ThrottledError{After: after, Msg: msg}
	case resp.StatusCode >= 500:
		return &TransportError{Msg: fmt.Sprintf("status %d: %s", resp.StatusCode, msg)}
	default:
		code := eb.Code
		if code == "" {
			code = service.CodeBadRequest
		}
		return &QueryError{Status: resp.StatusCode, Code: code, Msg: msg}
	}
}
