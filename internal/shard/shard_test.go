package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/service"
	"github.com/aiql/aiql/internal/shard/client"
)

const demoQuery = `proc p["%worker.exe"] write file f as evt return p, f`

// day returns the unix-nano start of a 2018-05 day, matching the
// mm/dd/yyyy literals the partition map and time windows use.
func day(d int) int64 {
	return time.Date(2018, 5, d, 0, 0, 0, 0, time.UTC).UnixNano()
}

// record builds one matching event owned by an agent at a timestamp.
func record(agent uint32, ts int64, tag string) aiql.Record {
	return aiql.Record{
		AgentID: agent,
		Subject: aiql.Process{PID: 100, ExeName: "worker.exe", Path: `C:\bin\worker.exe`, User: "alice"},
		Op:      aiql.OpWrite,
		ObjType: aiql.EntityFile,
		ObjFile: aiql.File{Path: `C:\logs\` + tag + `.log`},
		StartTS: ts,
	}
}

// corpus is a deterministic event set spread over agents 1..3 and May
// 10-12 2018: the axes the partition-map tests slice on.
func corpus() []aiql.Record {
	var recs []aiql.Record
	for i := 0; i < 60; i++ {
		agent := uint32(1 + i%3)
		ts := day(10+i%3) + int64(i)*int64(time.Minute)
		recs = append(recs, record(agent, ts, fmt.Sprintf("a%d-e%02d", agent, i)))
	}
	return recs
}

func buildDB(t testing.TB, recs []aiql.Record) *aiql.DB {
	t.Helper()
	db := aiql.Open()
	db.AppendAll(recs)
	db.Flush()
	return db
}

// split partitions records by predicate into a new member database.
func split(t testing.TB, recs []aiql.Record, keep func(aiql.Record) bool) *aiql.DB {
	t.Helper()
	var mine []aiql.Record
	for _, r := range recs {
		if keep(r) {
			mine = append(mine, r)
		}
	}
	return buildDB(t, mine)
}

// shardQueryFor compiles the query on an empty planning store, exactly
// as the sharded service does.
func shardQueryFor(t testing.TB, query string, params map[string]any) service.ShardQuery {
	t.Helper()
	stmt, err := aiql.Open().Prepare(query)
	if err != nil {
		t.Fatal(err)
	}
	return service.ShardQuery{Query: query, Params: params, Columns: stmt.Columns(), Kind: stmt.Kind()}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{
		"datasets": [{
			"dataset": "events",
			"members": [
				{"name": "old", "dir": "/data/old", "to": "05/11/2018"},
				{"name": "hot", "url": "http://peer:8080", "dataset": "events", "from": "05/11/2018", "agents": [1, 2]}
			]
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	m := cfg.Datasets[0].Members
	b0, err := m[0].Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if b0.To != day(11) {
		t.Errorf("old.To = %d, want %d", b0.To, day(11))
	}
	b1, err := m[1].Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if b1.From != day(11) || len(b1.Agents) != 2 {
		t.Errorf("hot bounds = %+v", b1)
	}

	bad := []string{
		`{"datasets": [{"dataset": "", "members": [{"name": "a", "dir": "x"}]}]}`,
		`{"datasets": [{"dataset": "d", "members": []}]}`,
		`{"datasets": [{"dataset": "d", "members": [{"name": "", "dir": "x"}]}]}`,
		`{"datasets": [{"dataset": "d", "members": [{"name": "a", "dir": "x"}, {"name": "a", "dir": "y"}]}]}`,
		`{"datasets": [{"dataset": "d", "members": [{"name": "a", "dir": "x", "url": "http://h"}]}]}`,
		`{"datasets": [{"dataset": "d", "members": [{"name": "a"}]}]}`,
		`{"datasets": [{"dataset": "d", "members": [{"name": "a", "dir": "x", "from": "not-a-date"}]}]}`,
		`{"datasets": [{"dataset": "d", "members": [{"name": "a", "dir": "x", "from": "05/12/2018", "to": "05/10/2018"}]}]}`,
		`{"datasets": [{"dataset": "d", "members": [{"name": "a", "dir": "x"}]}, {"dataset": "d", "members": [{"name": "b", "dir": "y"}]}]}`,
	}
	for _, src := range bad {
		if _, err := ParseConfig([]byte(src)); err == nil {
			t.Errorf("config accepted, want error: %s", src)
		}
	}
}

func TestPruneScope(t *testing.T) {
	mk := func(from, to string, agents ...int64) Bounds {
		b, err := MemberSpec{Name: "m", Dir: "x", From: from, To: to, Agents: agents}.Bounds()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	may10 := mk("05/10/2018", "05/11/2018")
	may11on := mk("05/11/2018", "")
	agents12 := mk("", "", 1, 2)

	cases := []struct {
		name   string
		query  string
		params map[string]any
		bounds Bounds
		admit  bool
	}{
		{"window hits slice", `(at "05/10/2018") ` + demoQuery, nil, may10, true},
		{"window misses slice", `(at "05/10/2018") ` + demoQuery, nil, may11on, false},
		{"window param resolves", `(at $d) ` + demoQuery, map[string]any{"d": "05/12/2018"}, may10, false},
		{"window param missing degrades", `(at $d) ` + demoQuery, nil, may10, true},
		{"no window admits", demoQuery, nil, may11on, true},
		{"agent owned", `agentid = 2 ` + demoQuery, nil, agents12, true},
		{"agent not owned", `agentid = 7 ` + demoQuery, nil, agents12, false},
		{"agent param", `agentid = $a ` + demoQuery, map[string]any{"a": float64(7)}, agents12, false},
		{"agent param missing degrades", `agentid = $a ` + demoQuery, nil, agents12, true},
		{"open member bounds admit", `(at "05/10/2018") agentid = 7 ` + demoQuery, nil, mk("", ""), true},
		{"range query prunes", `(from "05/12/2018" to "05/14/2018") ` + demoQuery, nil, may10, false},
		{"range query overlaps", `(from "05/10/2018 06:00:00" to "05/14/2018") ` + demoQuery, nil, may10, true},
	}
	for _, tc := range cases {
		sc := scopeOf(service.ShardQuery{Query: tc.query, Params: tc.params})
		if got := tc.bounds.admits(sc); got != tc.admit {
			t.Errorf("%s: admits = %v, want %v (scope %+v)", tc.name, got, tc.admit, sc)
		}
	}
}

// TestScatterGatherGolden: the merged scatter across agent-partitioned
// members is byte-identical to the same data in one store.
func TestScatterGatherGolden(t *testing.T) {
	recs := corpus()
	single := buildDB(t, recs)
	members := []Member{}
	for a := uint32(1); a <= 3; a++ {
		agent := a
		db := split(t, recs, func(r aiql.Record) bool { return r.AgentID == agent })
		members = append(members, Member{
			Name:   fmt.Sprintf("agent%d", agent),
			Source: NewLocalSource(db),
			Bounds: Bounds{Agents: []int64{int64(agent)}, From: -1 << 62, To: 1 << 62},
		})
	}
	coord := NewCoordinator("events", members, Options{})
	defer coord.Close()

	stmt, err := single.Prepare(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stmt.Exec(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, warns, err := coord.Run(context.Background(), shardQueryFor(t, demoQuery, nil))
	if err != nil || len(warns) != 0 {
		t.Fatalf("scatter failed: err=%v warns=%v", err, warns)
	}
	if !reflect.DeepEqual(got.Columns, want.Columns) {
		t.Fatalf("columns %v != %v", got.Columns, want.Columns)
	}
	if len(got.Rows) != 60 || !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("merged rows diverge from unsharded execution (%d vs %d rows)", len(got.Rows), len(want.Rows))
	}
	if got.Stats.ScannedEvents != want.Stats.ScannedEvents {
		t.Errorf("scanned %d events, unsharded scanned %d", got.Stats.ScannedEvents, want.Stats.ScannedEvents)
	}

	// agent-pinned query contacts only the owning member
	q := shardQueryFor(t, `agentid = 2 `+demoQuery, nil)
	if _, _, err := coord.Run(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	st := coord.Stats()
	for _, m := range st.Members {
		wantFan := uint64(1)
		if m.Shard == "agent2" {
			wantFan = 2
		}
		if m.Fanouts != wantFan {
			t.Errorf("%s fanouts = %d, want %d", m.Shard, m.Fanouts, wantFan)
		}
	}
	if st.Queries != 2 {
		t.Errorf("queries = %d, want 2", st.Queries)
	}
}

// TestLimitPushdown: a limit stops the merge after n rows and matches
// the unsharded prefix; members past their contribution are canceled.
func TestLimitPushdown(t *testing.T) {
	recs := corpus()
	single := buildDB(t, recs)
	var members []Member
	for a := uint32(1); a <= 3; a++ {
		agent := a
		members = append(members, Member{
			Name:   fmt.Sprintf("agent%d", agent),
			Source: NewLocalSource(split(t, recs, func(r aiql.Record) bool { return r.AgentID == agent })),
		})
	}
	coord := NewCoordinator("events", members, Options{})
	defer coord.Close()

	stmt, err := single.Prepare(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stmt.Exec(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := shardQueryFor(t, demoQuery, nil)
	q.Limit = 7
	var rows [][]string
	_, warns, err := coord.RunStream(context.Background(), q,
		func([]string) error { return nil },
		func(r []string) error { rows = append(rows, r); return nil })
	if err != nil || len(warns) != 0 {
		t.Fatalf("err=%v warns=%v", err, warns)
	}
	if !reflect.DeepEqual(rows, want.Rows[:7]) {
		t.Fatalf("limited merge is not the sorted prefix: %v", rows)
	}
}

// errSource fails with a fixed error, optionally after emitting rows.
type errSource struct {
	rows [][]string
	err  error
}

func (s *errSource) Stream(ctx context.Context, q service.ShardQuery, row func([]string) error) (engine.ExecStats, error) {
	for _, r := range s.rows {
		if err := row(r); err != nil {
			return engine.ExecStats{}, err
		}
	}
	return engine.ExecStats{}, s.err
}
func (s *errSource) Ping(ctx context.Context) (uint64, error) { return 0, s.err }
func (s *errSource) Close() error                             { return nil }

// TestMemberFailureDegrades: a dead member becomes a typed warning and
// the healthy members' rows still arrive — unless require_all.
func TestMemberFailureDegrades(t *testing.T) {
	recs := corpus()
	healthy := split(t, recs, func(r aiql.Record) bool { return r.AgentID == 1 })
	mk := func() []Member {
		return []Member{
			{Name: "alive", Source: NewLocalSource(healthy)},
			{Name: "dead", Source: &errSource{err: &client.TransportError{Msg: "connection refused"}}},
		}
	}
	coord := NewCoordinator("events", mk(), Options{})
	res, warns, err := coord.Run(context.Background(), shardQueryFor(t, demoQuery, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 1 || warns[0].Code != service.CodeShardUnavailable || warns[0].Shard != "dead" {
		t.Fatalf("warnings = %+v", warns)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("partial result has %d rows, want the live member's 20", len(res.Rows))
	}
	st := coord.Stats()
	if st.Partial != 1 {
		t.Errorf("partial counter = %d, want 1", st.Partial)
	}
	for _, m := range st.Members {
		if m.Shard == "dead" && (m.Healthy || m.Errors != 1) {
			t.Errorf("dead member stats = %+v", m)
		}
	}

	// require_all turns the same failure into a shard_unavailable error
	q := shardQueryFor(t, demoQuery, nil)
	q.RequireAll = true
	if _, _, err := coord.Run(context.Background(), q); !errors.Is(err, service.ErrShardUnavailable) {
		t.Fatalf("require_all: got %v, want ErrShardUnavailable", err)
	}

	// every member dead and nothing delivered: an error, not an empty
	// "partial" success
	allDead := NewCoordinator("events", []Member{
		{Name: "d1", Source: &errSource{err: &client.TransportError{Msg: "down"}}},
		{Name: "d2", Source: &errSource{err: &client.TransportError{Msg: "down"}}},
	}, Options{})
	if _, _, err := allDead.Run(context.Background(), shardQueryFor(t, demoQuery, nil)); !errors.Is(err, service.ErrShardUnavailable) {
		t.Fatalf("all-dead: got %v, want ErrShardUnavailable", err)
	}
}

// TestMemberErrorClassification: throttled members propagate the
// largest Retry-After; query rejections fail the whole fan-out.
func TestMemberErrorClassification(t *testing.T) {
	coord := NewCoordinator("events", []Member{
		{Name: "slow", Source: &errSource{err: &client.ThrottledError{After: 3, Msg: "busy"}}},
		{Name: "slower", Source: &errSource{err: &client.ThrottledError{After: 9, Msg: "busier"}}},
	}, Options{})
	_, _, err := coord.Run(context.Background(), shardQueryFor(t, demoQuery, nil))
	if !errors.Is(err, service.ErrClientThrottled) {
		t.Fatalf("got %v, want ErrClientThrottled", err)
	}
	if after, ok := service.RetryHintSeconds(err); !ok || after != 9 {
		t.Fatalf("retry hint = %d/%v, want the larger member hint 9", after, ok)
	}

	rejected := NewCoordinator("events", []Member{
		{Name: "picky", Source: &errSource{err: &client.QueryError{Status: 400, Code: service.CodeUnknownParam, Msg: "no $x"}}},
	}, Options{})
	_, _, err = rejected.Run(context.Background(), shardQueryFor(t, demoQuery, nil))
	if err == nil || !strings.Contains(err.Error(), "picky") {
		t.Fatalf("query rejection: got %v, want fatal error naming the shard", err)
	}
	var warns []service.ShardWarning
	if _, warns, _ = rejected.Run(context.Background(), shardQueryFor(t, demoQuery, nil)); len(warns) != 0 {
		t.Fatalf("query rejection degraded to warnings: %+v", warns)
	}
}

// TestGenerationTracksMembers: committing to any member moves the
// coordinator generation (result caches invalidate), and probing
// refreshes health.
func TestGenerationTracksMembers(t *testing.T) {
	db := buildDB(t, corpus()[:3])
	coord := NewCoordinator("events", []Member{{Name: "m", Source: NewLocalSource(db)}}, Options{})
	defer coord.Close()
	g1 := coord.Generation()
	db.Append(record(1, day(10), "late"))
	db.Flush()
	if g2 := coord.Generation(); g2 == g1 {
		t.Fatal("generation unchanged after member commit")
	}
	coord.Probe(context.Background())
	if st := coord.Stats(); !st.Members[0].Healthy {
		t.Fatal("probed live member reported unhealthy")
	}
}

// TestMergeDeterminism: duplicate rows across members merge in member
// order, every run.
func TestMergeDeterminism(t *testing.T) {
	shared := [][]string{{"a", "1"}, {"b", "2"}}
	mk := func() []Member {
		return []Member{
			{Name: "m1", Source: &errSource{rows: shared}},
			{Name: "m2", Source: &errSource{rows: shared}},
		}
	}
	q := service.ShardQuery{Query: demoQuery, Columns: []string{"x", "y"}}
	var first [][]string
	for i := 0; i < 5; i++ {
		coord := NewCoordinator("events", mk(), Options{})
		var rows [][]string
		if _, _, err := coord.RunStream(context.Background(), q,
			func([]string) error { return nil },
			func(r []string) error { rows = append(rows, r); return nil }); err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("merged %d rows, want 4", len(rows))
		}
		if i == 0 {
			first = rows
		} else if !reflect.DeepEqual(rows, first) {
			t.Fatalf("merge order diverged between runs: %v vs %v", rows, first)
		}
		coord.Close()
	}
}

// blockSource emits one late-sorting head row (the merge needs every
// member's head before it can emit), then hangs until canceled —
// proving cancellation reaches members once the limit is met.
type blockSource struct {
	started chan struct{}
	once    sync.Once
}

func (s *blockSource) Stream(ctx context.Context, q service.ShardQuery, row func([]string) error) (engine.ExecStats, error) {
	s.once.Do(func() { close(s.started) })
	if err := row([]string{"~last", "~last"}); err != nil {
		return engine.ExecStats{}, err
	}
	<-ctx.Done()
	return engine.ExecStats{}, ctx.Err()
}
func (s *blockSource) Ping(ctx context.Context) (uint64, error) { return 0, nil }
func (s *blockSource) Close() error                             { return nil }

// TestLimitCancelsStragglers: once the limit is satisfied from fast
// members, a hung member is canceled rather than waited for, and its
// teardown error does not surface as a warning.
func TestLimitCancelsStragglers(t *testing.T) {
	fast := split(t, corpus(), func(r aiql.Record) bool { return r.AgentID == 1 })
	hung := &blockSource{started: make(chan struct{})}
	coord := NewCoordinator("events", []Member{
		{Name: "fast", Source: NewLocalSource(fast)},
		{Name: "hung", Source: hung},
	}, Options{ShardTimeout: time.Minute})
	defer coord.Close()
	q := shardQueryFor(t, demoQuery, nil)
	q.Limit = 5
	done := make(chan struct{})
	var warns []service.ShardWarning
	var err error
	var rows int
	go func() {
		defer close(done)
		_, warns, err = coord.RunStream(context.Background(), q,
			func([]string) error { return nil },
			func([]string) error { rows++; return nil })
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("limit-satisfied merge still waiting on the hung member")
	}
	if err != nil || rows != 5 {
		t.Fatalf("err=%v rows=%d, want clean 5-row result", err, rows)
	}
	if len(warns) != 0 {
		t.Fatalf("teardown echoed as warnings: %+v", warns)
	}
}
