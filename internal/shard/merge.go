package shard

import "github.com/aiql/aiql/internal/engine"

// heapItem is one member's current head row in the k-way merge.
type heapItem struct {
	row    []string
	member int // index into the live member slice
}

// rowHeap orders head rows by the engine's canonical result order
// (engine.RowLess), breaking exact ties by member index so the merge
// is fully deterministic: the same member data always merges to the
// same byte sequence.
type rowHeap []heapItem

func (h rowHeap) Len() int { return len(h) }

func (h rowHeap) Less(i, j int) bool {
	if engine.RowLess(h[i].row, h[j].row) {
		return true
	}
	if engine.RowLess(h[j].row, h[i].row) {
		return false
	}
	return h[i].member < h[j].member
}

func (h rowHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *rowHeap) Push(x any) { *h = append(*h, x.(heapItem)) }

func (h *rowHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1].row = nil
	*h = old[:n-1]
	return it
}
