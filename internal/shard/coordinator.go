package shard

import (
	"container/heap"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/service"
	"github.com/aiql/aiql/internal/shard/client"
)

// Member pairs a partition-map entry with its executable source.
type Member struct {
	Name   string
	Source Source
	Remote bool
	Bounds Bounds
}

// Options tune a coordinator.
type Options struct {
	// ShardTimeout bounds each member's execution of one query; a
	// member exceeding it is treated as unavailable for that query.
	// Default: 30s.
	ShardTimeout time.Duration
	// ProbeInterval is how often remote members' healthz is probed for
	// liveness and epoch changes (bounded cache staleness). 0 disables
	// the background prober — tests drive Probe explicitly.
	ProbeInterval time.Duration
}

// member is a Member plus its live state and counters.
type member struct {
	name    string
	src     Source
	remote  bool
	bounds  Bounds
	healthy atomic.Bool
	epoch   atomic.Uint64 // remote store epoch from the last probe
	fanouts atomic.Uint64
	pruned  atomic.Uint64
	errs    atomic.Uint64
	rows    atomic.Uint64
}

// epochNow is the member's contribution to the dataset generation:
// live commits for local members, the last probed epoch for remote
// ones (staleness bounded by the probe interval).
func (m *member) epochNow() uint64 {
	if m.remote {
		return m.epoch.Load()
	}
	e, err := m.src.Ping(context.Background())
	if err != nil {
		return ^uint64(0)
	}
	return e
}

// Coordinator fans queries out across a sharded dataset's members and
// merge-sorts their row streams. It implements service.ShardBackend.
type Coordinator struct {
	dataset string
	members []*member
	opts    Options

	queries atomic.Uint64
	partial atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator builds a coordinator over the members. Members start
// optimistically healthy; probes and query outcomes adjust.
func NewCoordinator(dataset string, members []Member, opts Options) *Coordinator {
	if opts.ShardTimeout <= 0 {
		opts.ShardTimeout = 30 * time.Second
	}
	c := &Coordinator{dataset: dataset, opts: opts, stop: make(chan struct{})}
	for _, m := range members {
		mm := &member{name: m.Name, src: m.Source, remote: m.Remote, bounds: m.Bounds}
		mm.healthy.Store(true)
		c.members = append(c.members, mm)
	}
	if opts.ProbeInterval > 0 {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c
}

// probeLoop refreshes member health and remote epochs until Close.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeInterval)
			c.Probe(ctx)
			cancel()
		}
	}
}

// Probe runs one health/epoch round across all members concurrently.
func (c *Coordinator) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range c.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			e, err := m.src.Ping(ctx)
			if err != nil {
				m.healthy.Store(false)
				return
			}
			m.healthy.Store(true)
			m.epoch.Store(e)
		}(m)
	}
	wg.Wait()
}

// Generation implements service.ShardBackend: a hash over every
// member's name and epoch, so any member committing data (or a probe
// observing a remote epoch change) moves the coordinator's result-cache
// generation.
func (c *Coordinator) Generation() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, m := range c.members {
		io.WriteString(h, m.name)
		h.Write([]byte{0})
		binary.LittleEndian.PutUint64(buf[:], m.epochNow())
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Stats implements service.ShardBackend.
func (c *Coordinator) Stats() *service.ShardStats {
	st := &service.ShardStats{
		Queries:    c.queries.Load(),
		Partial:    c.partial.Load(),
		Generation: c.Generation(),
	}
	for _, m := range c.members {
		ms := service.ShardMemberStats{
			Shard:   m.name,
			Remote:  m.remote,
			Healthy: m.healthy.Load(),
			Fanouts: m.fanouts.Load(),
			Pruned:  m.pruned.Load(),
			Errors:  m.errs.Load(),
			Rows:    m.rows.Load(),
		}
		if r, ok := m.src.(interface{ Retries() uint64 }); ok {
			ms.Retries = r.Retries()
		}
		st.Members = append(st.Members, ms)
	}
	return st
}

// Close implements service.ShardBackend: stops the prober and closes
// every member source.
func (c *Coordinator) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	var first error
	for _, m := range c.members {
		if err := m.src.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Run implements service.ShardBackend: the buffered scatter-gather.
// The returned rows are the merged sorted streams of every admitted
// member — byte-identical to the unsharded execution of the same data.
func (c *Coordinator) Run(ctx context.Context, q service.ShardQuery) (*engine.Result, []service.ShardWarning, error) {
	start := time.Now()
	res := &engine.Result{Columns: q.Columns, Rows: [][]string{}}
	stats, warns, err := c.RunStream(ctx, q,
		func(cols []string) error {
			if len(res.Columns) == 0 {
				res.Columns = cols
			}
			return nil
		},
		func(r []string) error {
			res.Rows = append(res.Rows, r)
			return nil
		})
	if err != nil {
		return nil, warns, err
	}
	res.Stats = stats
	res.Stats.Elapsed = time.Since(start)
	return res, warns, nil
}

// RunStream implements service.ShardBackend: scatter to every member
// the partition map admits, k-way merge-sort the sorted member streams,
// and emit rows as they win the merge. A positive q.Limit stops the
// merge (and cancels members) after that many rows. Member failures
// degrade to warnings unless q.RequireAll, the failure is the query's
// own fault (4xx), or every member failed.
func (c *Coordinator) RunStream(ctx context.Context, q service.ShardQuery, header func(cols []string) error, row func([]string) error) (engine.ExecStats, []service.ShardWarning, error) {
	c.queries.Add(1)
	sc := scopeOf(q)

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type mstate struct {
		m     *member
		ch    chan []string
		stats engine.ExecStats
		err   error // valid only after ch closes
	}
	parent := obs.SpanFromContext(ctx)
	var live []*mstate
	for _, m := range c.members {
		if !m.bounds.admits(sc) {
			m.pruned.Add(1)
			continue
		}
		m.fanouts.Add(1)
		live = append(live, &mstate{m: m, ch: make(chan []string, 64)})
	}
	var wg sync.WaitGroup
	defer wg.Wait() // no goroutine outlives the call (cancel unblocks sends)
	for _, st := range live {
		wg.Add(1)
		go func(st *mstate) {
			defer wg.Done()
			defer close(st.ch) // after st.err is set: close publishes it
			span := parent.Child("shard:" + st.m.name)
			defer span.End()
			mctx, mcancel := context.WithTimeout(sctx, c.opts.ShardTimeout)
			defer mcancel()
			sent := int64(0)
			st.stats, st.err = st.m.src.Stream(mctx, q, func(r []string) error {
				select {
				case st.ch <- r:
					sent++
					return nil
				case <-sctx.Done():
					return sctx.Err()
				}
			})
			span.SetInt("rows", sent)
			span.SetInt("scanned_events", st.stats.ScannedEvents)
		}(st)
	}

	if err := header(q.Columns); err != nil {
		cancel()
		return engine.ExecStats{}, nil, err
	}

	var (
		h             rowHeap
		warnings      []service.ShardWarning
		stats         engine.ExecStats
		fatal         error
		throttled     error
		throttleAfter int
		emitted       int
	)
	// finishMember folds a completed member into the outcome: stats
	// always, then the error classified as fatal (the query's own
	// fault), throttled (propagate the member's 429 hint), or
	// unavailable (warning, or fatal under RequireAll).
	finishMember := func(st *mstate) {
		stats.Accumulate(st.stats)
		err := st.err
		if err == nil {
			st.m.healthy.Store(true)
			return
		}
		if sctx.Err() != nil {
			// the scatter is already being torn down (limit reached,
			// earlier fatal, or the caller's own deadline): member
			// errors here are echoes of the cancellation
			if fatal == nil && throttled == nil && ctx.Err() != nil {
				fatal = ctx.Err()
			}
			return
		}
		var (
			thr *client.ThrottledError
			qe  *client.QueryError
			te  *client.TransportError
		)
		switch {
		case errors.As(err, &thr):
			st.m.errs.Add(1)
			if thr.After > throttleAfter {
				throttleAfter = thr.After
			}
			if throttled == nil {
				throttled = fmt.Errorf("shard %s: %w", st.m.name, service.ErrClientThrottled)
			}
		case errors.As(err, &qe):
			st.m.errs.Add(1)
			if fatal == nil {
				fatal = service.APIError(qe.Status, qe.Code, fmt.Sprintf("shard %s: %s", st.m.name, qe.Msg))
			}
		case errors.As(err, &te), errors.Is(err, aiql.ErrClosed),
			errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			// unreachable, mid-stream death, closed store, or the
			// per-shard timeout: the member is unavailable
			st.m.errs.Add(1)
			st.m.healthy.Store(false)
			if q.RequireAll && fatal == nil {
				fatal = fmt.Errorf("shard %s: %v: %w", st.m.name, err, service.ErrShardUnavailable)
			} else {
				warnings = append(warnings, service.ShardWarning{
					Code: service.CodeShardUnavailable, Shard: st.m.name, Error: err.Error()})
			}
		default:
			// the member executed and rejected the query (local member
			// bind/semantic failure): the query is the problem
			st.m.errs.Add(1)
			if fatal == nil {
				fatal = fmt.Errorf("shard %s: %w", st.m.name, err)
			}
		}
	}
	// pull advances one member: its next row joins the heap, or its
	// completion is folded into the outcome.
	pull := func(i int) {
		st := live[i]
		r, ok := <-st.ch
		if !ok {
			finishMember(st)
			return
		}
		st.m.rows.Add(1)
		heap.Push(&h, heapItem{row: r, member: i})
	}

	// Seed every member's head row. A throttled member does not stop the
	// seeding: other members may carry larger Retry-After hints, and the
	// propagated hint is the maximum across members.
	for i := range live {
		pull(i)
		if fatal != nil {
			break
		}
	}
	if fatal == nil && throttled == nil {
		for h.Len() > 0 {
			it := heap.Pop(&h).(heapItem)
			if err := row(it.row); err != nil {
				cancel()
				return stats, warnings, err
			}
			emitted++
			if q.Limit > 0 && emitted >= q.Limit {
				break
			}
			pull(it.member)
			if fatal != nil || throttled != nil {
				break
			}
		}
	}
	cancel()
	if fatal != nil {
		return stats, warnings, fatal
	}
	if throttled != nil {
		return stats, warnings, service.WithRetryHint(throttled, throttleAfter)
	}
	if len(warnings) > 0 {
		c.partial.Add(1)
		if len(warnings) == len(live) && emitted == 0 {
			// not partial — nothing: every member is gone
			return stats, warnings, fmt.Errorf("all %d shard members unavailable: %w", len(live), service.ErrShardUnavailable)
		}
	}
	return stats, warnings, nil
}
