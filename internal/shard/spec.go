// Package shard scatter-gathers queries across the members of a
// sharded dataset. A sharded dataset is declared as a partition map —
// by time range and/or agentid, both first-class in the data model —
// over N member stores; members are local eventstore directories or
// remote aiqlserver peers reached over the NDJSON query/stream wire
// format. The coordinator fans a query out to every member the
// partition map cannot prove irrelevant (time-window and agent
// pruning), pushes limit hints down, and k-way merge-sorts the sorted
// member streams with engine.RowLess — so a scatter-gathered result is
// byte-identical to the same data queried in one unsharded store.
//
// Cross-shard joins are partition-local: a multievent query joins
// entities within each member, so the partition map must keep every
// event a query needs to correlate on the same member (the natural
// agentid partitioning does this for host-local behavior queries;
// cross-host queries need the involved agents co-resident).
package shard

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"github.com/aiql/aiql/internal/aiql/parser"
)

// MemberSpec declares one member of a sharded dataset in the partition
// map: where the member lives (exactly one of Dir or URL) and which
// slice of the data it owns. Bounds are advisory for pruning — a query
// proven outside every declared bound skips the member without contact
// — and do not filter rows: each member serves whatever its store
// holds.
type MemberSpec struct {
	// Name identifies the member in warnings, metrics, and spans.
	Name string `json:"name"`
	// Dir is a local eventstore directory (durable layout).
	Dir string `json:"dir,omitempty"`
	// URL is a remote peer's base URL (http://host:port); the member is
	// reached over the NDJSON query/stream endpoint.
	URL string `json:"url,omitempty"`
	// Dataset names the dataset on the remote peer; empty selects the
	// peer's default dataset. Ignored for local members.
	Dataset string `json:"dataset,omitempty"`
	// From and To bound the member's time slice, [From, To), in the
	// same literal formats time-window clauses accept (mm/dd/yyyy or
	// yyyy-mm-dd, optionally with hh:mm:ss). Empty bounds are open.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Agents lists the agentids the member owns; empty means any.
	Agents []int64 `json:"agents,omitempty"`
}

// DatasetSpec declares one sharded dataset: its catalog name and
// partition map.
type DatasetSpec struct {
	Dataset string       `json:"dataset"`
	Members []MemberSpec `json:"members"`
}

// Config is the -shards file format: every sharded dataset the server
// coordinates.
type Config struct {
	Datasets []DatasetSpec `json:"datasets"`
}

// Bounds is a member's partition slice in executable form: the time
// range [From, To) in unix nanos (math.MinInt64/MaxInt64 when open) and
// the owned agent set (nil = all).
type Bounds struct {
	From, To int64
	Agents   []int64
}

// Bounds resolves the spec's literal bounds. Errors name the offending
// field so a bad partition map fails at load, not at query time.
func (m MemberSpec) Bounds() (Bounds, error) {
	b := Bounds{From: math.MinInt64, To: math.MaxInt64, Agents: m.Agents}
	if m.From != "" {
		from, _, err := parser.ParseInstant(m.From, false)
		if err != nil {
			return b, fmt.Errorf("member %q: from: %w", m.Name, err)
		}
		b.From = from
	}
	if m.To != "" {
		to, _, err := parser.ParseInstant(m.To, false)
		if err != nil {
			return b, fmt.Errorf("member %q: to: %w", m.Name, err)
		}
		b.To = to
	}
	if b.From >= b.To {
		return b, fmt.Errorf("member %q: empty time slice [%s, %s)", m.Name, m.From, m.To)
	}
	return b, nil
}

// Validate checks one dataset's partition map: a name per member,
// exactly one placement, parseable bounds.
func (d DatasetSpec) Validate() error {
	if d.Dataset == "" {
		return fmt.Errorf("shard: dataset spec without a name")
	}
	if len(d.Members) == 0 {
		return fmt.Errorf("shard: dataset %q has no members", d.Dataset)
	}
	seen := map[string]bool{}
	for _, m := range d.Members {
		if m.Name == "" {
			return fmt.Errorf("shard: dataset %q: member without a name", d.Dataset)
		}
		if seen[m.Name] {
			return fmt.Errorf("shard: dataset %q: duplicate member %q", d.Dataset, m.Name)
		}
		seen[m.Name] = true
		if (m.Dir == "") == (m.URL == "") {
			return fmt.Errorf("shard: dataset %q: member %q must set exactly one of dir or url", d.Dataset, m.Name)
		}
		if _, err := m.Bounds(); err != nil {
			return fmt.Errorf("shard: dataset %q: %w", d.Dataset, err)
		}
	}
	return nil
}

// ParseConfig parses and validates a -shards config document.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("shard: bad config: %w", err)
	}
	seen := map[string]bool{}
	for _, d := range cfg.Datasets {
		if err := d.Validate(); err != nil {
			return cfg, err
		}
		if seen[d.Dataset] {
			return cfg, fmt.Errorf("shard: duplicate dataset %q", d.Dataset)
		}
		seen[d.Dataset] = true
	}
	return cfg, nil
}

// LoadConfig reads and parses a -shards config file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("shard: %w", err)
	}
	return ParseConfig(data)
}
