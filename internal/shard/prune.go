package shard

import (
	"math"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/parser"
	"github.com/aiql/aiql/internal/service"
)

// queryScope is what the coordinator can prove about a query's reach
// from its header clauses alone: the resolved time window and any
// globally-pinned agentids. An empty scope (the zero value) proves
// nothing and prunes nothing — pruning is an optimization, so every
// extraction failure degrades to "contact the member".
type queryScope struct {
	hasWindow bool
	from, to  int64 // [from, to) unix nanos
	agents    []int64
}

// scopeOf extracts the provable scope of a shard query, resolving
// `$name` window and agentid parameters from the raw bindings exactly
// as binding does.
func scopeOf(q service.ShardQuery) queryScope {
	var sc queryScope
	parsed, err := parser.Parse(q.Query)
	if err != nil {
		return sc
	}
	head := parsed.Header()
	if w := head.Window; w != nil {
		sc.hasWindow, sc.from, sc.to = resolveWindow(w, q.Params)
	}
	for _, f := range head.Globals {
		if f.Attr != "agentid" || f.Op != ast.CmpEQ {
			continue
		}
		if id, ok := agentValue(f.Val, q.Params); ok {
			sc.agents = append(sc.agents, id)
		}
	}
	return sc
}

// resolveWindow turns a window clause (possibly parameterized) into
// concrete [from, to) bounds. Unresolvable parameters widen the bound
// to open rather than guessing.
func resolveWindow(w *ast.TimeWindow, params map[string]any) (ok bool, from, to int64) {
	from, to = w.From, w.To
	if w.AtParam != "" {
		s, found := params[w.AtParam].(string)
		if !found {
			return false, 0, 0
		}
		f, t, err := parser.ParseInstant(s, true)
		if err != nil {
			return false, 0, 0
		}
		from, to = f, t
	}
	if w.FromParam != "" {
		s, found := params[w.FromParam].(string)
		if !found {
			return false, 0, 0
		}
		f, _, err := parser.ParseInstant(s, false)
		if err != nil {
			return false, 0, 0
		}
		from = f
	}
	if w.ToParam != "" {
		s, found := params[w.ToParam].(string)
		if !found {
			return false, 0, 0
		}
		t, _, err := parser.ParseInstant(s, false)
		if err != nil {
			return false, 0, 0
		}
		to = t
	}
	if from == 0 && to == 0 {
		return false, 0, 0
	}
	if to == 0 {
		to = math.MaxInt64
	}
	if from == 0 {
		from = math.MinInt64
	}
	return true, from, to
}

// agentValue resolves a global agentid filter's value, following a
// `$name` parameter into the raw bindings.
func agentValue(v ast.Value, params map[string]any) (int64, bool) {
	if v.Param != "" {
		switch n := params[v.Param].(type) {
		case float64:
			return int64(n), true
		case int:
			return int64(n), true
		case int64:
			return n, true
		}
		return 0, false
	}
	if v.IsNum {
		return int64(v.Num), true
	}
	return 0, false
}

// admits reports whether a member's declared bounds could hold rows the
// scope reaches: the time ranges overlap and the agent sets intersect.
// Open bounds and empty scopes always admit.
func (b Bounds) admits(sc queryScope) bool {
	if sc.hasWindow && (sc.to <= b.From || sc.from >= b.To) {
		return false
	}
	if len(sc.agents) > 0 && len(b.Agents) > 0 {
		owned := false
		for _, want := range sc.agents {
			for _, have := range b.Agents {
				if want == have {
					owned = true
				}
			}
		}
		if !owned {
			return false
		}
	}
	return true
}
