// Package webui implements the AIQL web interface (paper §3, Figure 3):
// an input box for entering queries, an execution status area showing
// query time, and an interactive results table with sorting and
// searching, plus a syntax-check endpoint used for query debugging.
// It is a single-page application served by the standard library's HTTP
// server — the reproduction of the Apache Tomcat UI.
package webui

import (
	"encoding/json"
	"fmt"
	"html/template"
	"log/slog"
	"net"
	"net/http"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/service"
)

// Provider resolves dataset names to their service layers and lists the
// datasets the UI can offer. A multi-dataset catalog implements it; a
// single service is adapted by NewWithService.
type Provider interface {
	// Resolve maps a dataset name ("" = default) to its service.
	Resolve(dataset string) (*service.Service, error)
	// Names lists the selectable datasets, sorted.
	Names() []string
	// DefaultName is the dataset the empty selection queries.
	DefaultName() string
}

// singleProvider adapts one fixed service to the Provider interface.
type singleProvider struct{ svc *service.Service }

func (p singleProvider) Resolve(dataset string) (*service.Service, error) {
	if dataset != "" {
		return nil, fmt.Errorf("%w: %q (single-dataset server)", service.ErrUnknownDataset, dataset)
	}
	return p.svc, nil
}
func (p singleProvider) Names() []string     { return nil }
func (p singleProvider) DefaultName() string { return "" }

// Server serves the web UI over one or more AIQL datasets. Query
// execution is routed through each dataset's concurrent service layer,
// so the UI shares the admission control, deadlines, result caches, and
// statistics of the versioned JSON API.
type Server struct {
	prov Provider
	mux  *http.ServeMux
}

// New creates the UI server with a default-configured service layer.
func New(db *aiql.DB) *Server {
	return NewWithService(service.New(db, service.Config{}))
}

// NewWithService creates the UI server over an existing single service
// layer, sharing its worker pool and result cache with other API
// consumers.
func NewWithService(svc *service.Service) *Server {
	return NewWithProvider(singleProvider{svc})
}

// NewWithProvider creates the UI server over a dataset provider (a
// catalog), adding a dataset selector to the page.
func NewWithProvider(p Provider) *Server {
	s := &Server{prov: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/check", s.handleCheck)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/datasets", s.handleDatasets)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// maxRequestBody caps request bodies; queries are human-written text.
const maxRequestBody = 1 << 20

type queryRequest struct {
	Query   string `json:"query"`
	Dataset string `json:"dataset,omitempty"`
	Limit   int    `json:"limit,omitempty"`
	Cursor  string `json:"cursor,omitempty"`
}

type queryResponse struct {
	Columns    []string   `json:"columns,omitempty"`
	Rows       [][]string `json:"rows,omitempty"`
	RowCount   int        `json:"row_count"`
	Offset     int        `json:"offset"`
	NextCursor string     `json:"next_cursor,omitempty"`
	ElapsedMS  float64    `json:"elapsed_ms"`
	Scanned    int64      `json:"scanned_events"`
	Order      []string   `json:"pattern_order,omitempty"`
	Kind       string     `json:"kind,omitempty"`
	Cached     bool       `json:"cached"`
	Error      string     `json:"error,omitempty"`
}

// uiPageSize is how many rows the UI fetches per round trip; the
// browser pages through large results with cursor tokens instead of
// receiving one giant response.
const uiPageSize = 500

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeJSON(w, queryResponse{Error: "bad request: " + err.Error()})
		return
	}
	limit := req.Limit
	if limit <= 0 {
		limit = uiPageSize
	}
	client := r.RemoteAddr
	if host, _, err := net.SplitHostPort(client); err == nil {
		client = host
	}
	svc, err := s.prov.Resolve(req.Dataset)
	if err != nil {
		writeJSON(w, queryResponse{Error: err.Error()})
		return
	}
	resp, err := svc.Do(r.Context(), service.Request{
		Query:  req.Query,
		Limit:  limit,
		Cursor: req.Cursor,
		Client: "webui:" + client,
	})
	if err != nil {
		kind, _ := aiql.QueryKind(req.Query)
		writeJSON(w, queryResponse{Error: err.Error(), Kind: kind})
		return
	}
	writeJSON(w, queryResponse{
		Columns:    resp.Columns,
		Rows:       resp.Rows,
		RowCount:   resp.TotalRows,
		Offset:     resp.Offset,
		NextCursor: resp.NextCursor,
		ElapsedMS:  float64(resp.Duration) / 1e6,
		Scanned:    resp.Stats.ScannedEvents,
		Order:      resp.Stats.PatternOrder,
		Kind:       resp.Kind,
		Cached:     resp.Cached,
	})
}

type checkResponse struct {
	OK    bool   `json:"ok"`
	Kind  string `json:"kind,omitempty"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeJSON(w, checkResponse{Error: "bad request: " + err.Error()})
		return
	}
	if err := aiql.Check(req.Query); err != nil {
		writeJSON(w, checkResponse{Error: err.Error()})
		return
	}
	kind, _ := aiql.QueryKind(req.Query)
	writeJSON(w, checkResponse{OK: true, Kind: kind})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("dataset")
	svc, err := s.prov.Resolve(name)
	if err != nil {
		writeJSON(w, queryResponse{Error: err.Error()})
		return
	}
	writeJSON(w, svc.DatasetStats(name))
}

// handleDatasets lists the selectable datasets for the UI's dropdown.
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Default  string   `json:"default"`
		Datasets []string `json:"datasets"`
	}{s.prov.DefaultName(), s.prov.Names()})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := page.Execute(w, nil); err != nil {
		slog.Warn("webui: page render failed", "error", err)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Warn("webui: response encode failed", "error", err)
	}
}

var page = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>AIQL — Attack Investigation Query Language</title>
<style>
 body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2rem; background: #f7f8fa; color: #1d2330; }
 h1 { font-size: 1.4rem; }
 textarea { width: 100%; height: 11rem; font-family: ui-monospace, Menlo, monospace; font-size: .9rem;
            border: 1px solid #c5ccd8; border-radius: 6px; padding: .6rem; box-sizing: border-box; }
 button { padding: .45rem 1.1rem; margin-right: .5rem; border: 0; border-radius: 6px;
          background: #2456d6; color: #fff; font-size: .9rem; cursor: pointer; }
 button.secondary { background: #5d6b85; }
 #status { margin: .8rem 0; font-size: .9rem; color: #42506b; min-height: 1.2rem; }
 #status.error { color: #b3261e; white-space: pre-wrap; font-family: ui-monospace, monospace; }
 table { border-collapse: collapse; background: #fff; font-size: .85rem; }
 th, td { border: 1px solid #dbe0ea; padding: .3rem .6rem; text-align: left; }
 th { background: #eef1f6; cursor: pointer; user-select: none; }
 input#filter { padding: .35rem .6rem; margin: .4rem 0; width: 22rem;
                border: 1px solid #c5ccd8; border-radius: 6px; }
 select#dataset { padding: .4rem .6rem; margin-right: .5rem; border: 1px solid #c5ccd8;
                  border-radius: 6px; background: #fff; font-size: .9rem; display: none; }
 .hint { color: #6a7690; font-size: .8rem; }
</style>
</head>
<body>
<h1>AIQL — Attack Investigation Query Language</h1>
<p class="hint">Multievent, dependency, and anomaly queries over system monitoring data.
Example: <code>proc p1["%cmd.exe"] start proc p2 as evt1 return distinct p1, p2</code></p>
<textarea id="q" spellcheck="false">(at "05/10/2018")
agentid = 2
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip = "203.0.113.129"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1</textarea>
<div style="margin-top:.6rem">
 <select id="dataset" title="dataset"></select>
 <button onclick="runQuery()">Execute</button>
 <button class="secondary" onclick="checkQuery()">Check syntax</button>
 <input id="filter" placeholder="search results…" oninput="renderTable()">
</div>
<div id="status"></div>
<div id="results"></div>
<div id="storestats" class="hint" style="margin-top:.8rem"></div>
<script>
let data = {columns: [], rows: []};
let sortCol = -1, sortAsc = true;

// populate the dataset selector; hidden unless the server has >1 dataset
(async function loadDatasets() {
  try {
    const out = await (await fetch('/api/datasets')).json();
    const sel = document.getElementById('dataset');
    (out.datasets || []).forEach(name => {
      const opt = document.createElement('option');
      opt.value = name;
      opt.textContent = name + (name === out.default ? ' (default)' : '');
      if (name === out.default) opt.selected = true;
      sel.appendChild(opt);
    });
    if ((out.datasets || []).length > 1) sel.style.display = 'inline-block';
  } catch (e) { /* single-dataset server */ }
})();

function selectedDataset() {
  const sel = document.getElementById('dataset');
  return sel.style.display === 'none' ? '' : sel.value;
}

function setStatus(text, isError) {
  const el = document.getElementById('status');
  el.textContent = text;
  el.className = isError ? 'error' : '';
}

async function post(path, body) {
  const resp = await fetch(path, {method: 'POST', headers: {'Content-Type': 'application/json'},
                                  body: JSON.stringify(body)});
  return resp.json();
}

async function runQuery() {
  setStatus('executing…');
  const t0 = performance.now();
  const query = document.getElementById('q').value;
  const dataset = selectedDataset();
  // paginated fetch: first page executes (or hits the cache), follow-up
  // pages walk the cursor chain over the same store snapshot
  let out = await post('/api/query', {query, dataset});
  if (out.error) { setStatus(out.error, true); data = {columns: [], rows: []}; renderTable(); return; }
  data = {columns: out.columns || [], rows: out.rows || []};
  sortCol = -1;
  const first = out;
  const maxRows = 5000; // keep huge results from swamping the browser
  let pages = 1;
  while (out.next_cursor && data.rows.length < maxRows) {
    setStatus('fetched ' + data.rows.length + ' of ' + first.row_count + ' rows…');
    out = await post('/api/query', {query, dataset, cursor: out.next_cursor});
    if (out.error) { setStatus(out.error, true); break; }
    data.rows = data.rows.concat(out.rows || []);
    pages++;
  }
  const shown = data.rows.length < first.row_count ?
      'showing first ' + data.rows.length + ' of ' + first.row_count + ' rows' :
      first.row_count + ' rows';
  setStatus(shown + ' (' + pages + (pages > 1 ? ' pages' : ' page') +
            ') — engine ' + first.elapsed_ms.toFixed(2) + ' ms (round trip ' +
            (performance.now() - t0).toFixed(0) + ' ms)' + (first.cached ? ' [cached]' : '') +
            ', scanned ' + first.scanned_events +
            ' events' + (first.pattern_order ? ', schedule: ' + first.pattern_order.join(' → ') : ''));
  renderTable();
  loadStoreStats();
}

async function checkQuery() {
  const out = await post('/api/check', {query: document.getElementById('q').value});
  if (out.ok) setStatus('syntax OK (' + out.kind + ' query)');
  else setStatus(out.error, true);
}

function renderTable() {
  const filter = document.getElementById('filter').value.toLowerCase();
  let rows = data.rows;
  if (filter) rows = rows.filter(r => r.some(c => c.toLowerCase().includes(filter)));
  if (sortCol >= 0) {
    rows = rows.slice().sort((a, b) => {
      const x = a[sortCol], y = b[sortCol];
      const nx = parseFloat(x), ny = parseFloat(y);
      const cmp = (!isNaN(nx) && !isNaN(ny)) ? nx - ny : x.localeCompare(y);
      return sortAsc ? cmp : -cmp;
    });
  }
  let html = '<table><tr>';
  data.columns.forEach((c, i) => {
    const mark = i === sortCol ? (sortAsc ? ' ▲' : ' ▼') : '';
    html += '<th onclick="sortBy(' + i + ')">' + esc(c) + mark + '</th>';
  });
  html += '</tr>';
  rows.forEach(r => { html += '<tr>' + r.map(c => '<td>' + esc(c) + '</td>').join('') + '</tr>'; });
  html += '</table>';
  document.getElementById('results').innerHTML = data.columns.length ? html : '';
}

function sortBy(i) {
  if (sortCol === i) sortAsc = !sortAsc; else { sortCol = i; sortAsc = true; }
  renderTable();
}

function esc(s) {
  return String(s).replace(/&/g, '&amp;').replace(/</g, '&lt;').replace(/>/g, '&gt;');
}

function fmtBytes(n) {
  if (n >= 1 << 20) return (n / (1 << 20)).toFixed(1) + ' MiB';
  if (n >= 1 << 10) return (n / (1 << 10)).toFixed(1) + ' KiB';
  return n + ' B';
}

// storage footer: segment layout, the durable subsystem's
// disk/WAL/compaction figures, and the prepared-statement registry for
// the selected dataset
async function loadStoreStats() {
  try {
    const ds = selectedDataset();
    const st = await (await fetch('/api/stats' + (ds ? '?dataset=' + encodeURIComponent(ds) : ''))).json();
    const s = st.store || {}, d = st.durable || {};
    let line = 'store: ' + (s.events || 0) + ' events in ' + (s.segments || 0) +
        ' sealed segments + ' + (s.memtable_events || 0) + ' memtable events';
    if (d.dir) {
      line += ' — disk: ' + (d.segment_files || 0) + ' segment files (' +
          fmtBytes(d.segment_file_bytes || 0) + '), WAL ' + fmtBytes(d.wal_bytes || 0) +
          ', manifest edition ' + (d.manifest_edition || 0);
    }
    if (d.compactions) {
      line += ', ' + d.compactions + ' compactions (' + d.segments_compacted + ' segments merged)';
    }
    if (d.last_error) line += ' — durable error: ' + d.last_error;
    const sg = st.storage || {};
    if (sg.mapped_bytes || sg.heap_bytes) {
      const bc = sg.block_cache || {};
      line += ' — storage: ' + fmtBytes(sg.mapped_bytes || 0) + ' mapped, ' +
          fmtBytes(sg.heap_bytes || 0) + ' heap, block cache ' + (bc.hits || 0) +
          '/' + ((bc.hits || 0) + (bc.misses || 0)) + ' hits' +
          (bc.evictions ? ' (' + bc.evictions + ' evictions)' : '');
    }
    const p = st.prepared || {};
    if (p.statements || p.hits || p.evictions || p.expired) {
      line += ' — prepared: ' + (p.statements || 0) + ' statements, ' + (p.hits || 0) +
          ' hits, ' + (p.evictions || 0) + ' evictions' +
          (p.expired ? ', ' + p.expired + ' expired' : '');
    }
    const ing = st.ingest || {};
    if (ing.requests || ing.events) {
      line += ' — ingest: ' + (ing.events || 0) + ' events in ' + (ing.requests || 0) + ' batches' +
          (ing.rejected ? ' (' + ing.rejected + ' rejected)' : '');
    }
    const wt = st.watch || {};
    if (wt.watches || wt.matches || wt.evals) {
      line += ' — watches: ' + (wt.watches || 0) + ' live, ' + (wt.matches || 0) + ' matches pushed to ' +
          (wt.subscribers || 0) + ' subscribers' +
          (wt.dropped ? ' (' + wt.dropped + ' dropped)' : '');
    }
    document.getElementById('storestats').textContent = line;
  } catch (e) { /* stats are best-effort */ }
}
loadStoreStats();
</script>
</body>
</html>`))
