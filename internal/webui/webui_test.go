package webui

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/service"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	db := aiql.Open()
	base := time.Date(2018, 5, 10, 13, 0, 0, 0, time.UTC)
	db.AppendAll([]aiql.Record{
		{
			AgentID: 7,
			Subject: aiql.Process{PID: 1, ExeName: "cmd.exe", Path: `C:\cmd.exe`, User: "u"},
			Op:      aiql.OpStart, ObjType: aiql.EntityProcess,
			ObjProc: aiql.Process{PID: 2, ExeName: "osql.exe", Path: `C:\osql.exe`, User: "u"},
			StartTS: base.UnixNano(),
		},
	})
	db.Flush()
	return New(db)
}

func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestIndexServesPage(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "Attack Investigation Query Language") {
		t.Error("page missing title")
	}
	// unknown path 404s
	w2 := httptest.NewRecorder()
	s.ServeHTTP(w2, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if w2.Code != http.StatusNotFound {
		t.Errorf("unknown path status %d", w2.Code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	w := postJSON(t, s, "/api/query", `{"query": "proc p start proc q as e return distinct p, q"}`)
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("error: %s", resp.Error)
	}
	if resp.RowCount != 1 || len(resp.Rows) != 1 || resp.Rows[0][0] != "cmd.exe" {
		t.Errorf("resp = %+v", resp)
	}
	if resp.Kind != "multievent" {
		t.Errorf("kind = %q", resp.Kind)
	}
}

// TestQueryEndpointSharesServiceCache verifies the UI is wired through
// the service layer: a repeated query is served from the shared result
// cache and says so.
func TestQueryEndpointSharesServiceCache(t *testing.T) {
	s := testServer(t)
	body := `{"query": "proc p start proc q as e return distinct p, q"}`
	var first, second queryResponse
	if err := json.Unmarshal(postJSON(t, s, "/api/query", body).Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(postJSON(t, s, "/api/query", body).Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first execution reported cached")
	}
	if !second.Cached {
		t.Error("repeat query on an unchanged store was not served from the service cache")
	}
	if second.RowCount != first.RowCount {
		t.Errorf("cached row count %d != %d", second.RowCount, first.RowCount)
	}
	// the shared service reports both executions in its stats
	var stats struct {
		Service struct {
			Queries   uint64 `json:"queries"`
			CacheHits uint64 `json:"cache_hits"`
		} `json:"service"`
	}
	req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Service.Queries != 2 || stats.Service.CacheHits != 1 {
		t.Errorf("service stats = %+v, want 2 queries / 1 hit", stats.Service)
	}
}

func TestQueryEndpointReportsErrors(t *testing.T) {
	s := testServer(t)
	w := postJSON(t, s, "/api/query", `{"query": "proc p start"}`)
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Error("expected a query error")
	}
	// GET is rejected
	req := httptest.NewRequest(http.MethodGet, "/api/query", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", rec.Code)
	}
}

func TestCheckEndpoint(t *testing.T) {
	s := testServer(t)
	w := postJSON(t, s, "/api/check", `{"query": "proc p start proc q as e return p"}`)
	var resp checkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Kind != "multievent" {
		t.Errorf("resp = %+v", resp)
	}
	w = postJSON(t, s, "/api/check", `{"query": "proc p start file f as e return p"}`)
	resp = checkResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "cannot target") {
		t.Errorf("semantic error not surfaced: %+v", resp)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var stats service.DatasetStats
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store.Events != 1 || stats.Store.Processes != 2 {
		t.Errorf("stats = %+v", stats.Store)
	}
}
