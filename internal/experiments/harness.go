package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/aiql/aiql/internal/aiql/parser"
	"github.com/aiql/aiql/internal/datagen"
	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/graphdb"
	"github.com/aiql/aiql/internal/relational"
	"github.com/aiql/aiql/internal/translate"
)

// Engine names used in timing maps.
const (
	EngineAIQL     = "AIQL"
	EnginePostgres = "PostgreSQL"
	EngineNeo4j    = "Neo4j"
)

// Timing is one query's measurements across engines.
type Timing struct {
	Label      string
	Kind       string
	Times      map[string]time.Duration
	RowCounts  map[string]int
	Consistent bool // result sets agreed across engines (when verified)
	Verified   bool
}

// RunOptions configure an experiment run.
type RunOptions struct {
	// Verify compares result sets across engines.
	Verify bool
	// Repeat re-runs each query and keeps the best time (default 1).
	Repeat int
}

func (o RunOptions) repeat() int {
	if o.Repeat <= 0 {
		return 1
	}
	return o.Repeat
}

// BuildStore generates a dataset into a fully optimized store.
func BuildStore(cfg datagen.Config) *eventstore.Store {
	s := eventstore.New(eventstore.DefaultOptions())
	datagen.GenerateInto(s, cfg)
	return s
}

func sortedRowKeys(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\t")
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunFig4 executes the Figure-4 workload: every query on the AIQL engine
// and on the relational engine (optimized storage), as in the paper's
// "AIQL vs PostgreSQL (w/ our optimized storage)" comparison.
func RunFig4(store *eventstore.Store, opt RunOptions) ([]Timing, error) {
	rdb := relational.Open(true)
	if err := translate.LoadRelational(rdb, store); err != nil {
		return nil, err
	}
	return runComparison(store, Fig4Queries(), opt, rdb, nil)
}

// RunFig5 executes the Figure-5 workload: every query on the AIQL engine,
// the relational engine without storage optimizations, and the graph
// engine, as in the paper's "AIQL vs PostgreSQL (w/o our optimized
// storage) vs Neo4j" comparison.
func RunFig5(store *eventstore.Store, opt RunOptions) ([]Timing, error) {
	rdb := relational.Open(false)
	if err := translate.LoadRelational(rdb, store); err != nil {
		return nil, err
	}
	g := graphdb.New()
	if err := translate.LoadGraph(g, store); err != nil {
		return nil, err
	}
	return runComparison(store, Fig5Queries(), opt, rdb, g)
}

// runComparison times each query on every configured engine.
func runComparison(store *eventstore.Store, queries []Query, opt RunOptions, rdb *relational.DB, g *graphdb.Graph) ([]Timing, error) {
	eng := engine.New(store)
	var out []Timing
	for _, q := range queries {
		t := Timing{
			Label:      q.Label,
			Kind:       q.Kind,
			Times:      map[string]time.Duration{},
			RowCounts:  map[string]int{},
			Consistent: true,
		}

		var aiqlRows []string
		for r := 0; r < opt.repeat(); r++ {
			start := time.Now()
			res, err := eng.Execute(context.Background(), q.Text)
			if err != nil {
				return nil, fmt.Errorf("%s (AIQL): %w", q.Label, err)
			}
			el := time.Since(start)
			if d, ok := t.Times[EngineAIQL]; !ok || el < d {
				t.Times[EngineAIQL] = el
			}
			t.RowCounts[EngineAIQL] = len(res.Rows)
			if r == 0 {
				aiqlRows = sortedRowKeys(res.Rows)
			}
		}

		if rdb != nil {
			ast, err := parser.Parse(q.Text)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.Label, err)
			}
			sqlText, err := translate.ToSQL(ast)
			if err != nil {
				return nil, fmt.Errorf("%s (ToSQL): %w", q.Label, err)
			}
			for r := 0; r < opt.repeat(); r++ {
				start := time.Now()
				rows, err := rdb.Query(sqlText)
				if err != nil {
					return nil, fmt.Errorf("%s (SQL): %w\n%s", q.Label, err, sqlText)
				}
				el := time.Since(start)
				if d, ok := t.Times[EnginePostgres]; !ok || el < d {
					t.Times[EnginePostgres] = el
				}
				t.RowCounts[EnginePostgres] = len(rows.Data)
				if r == 0 && opt.Verify {
					t.Verified = true
					if !sameRows(aiqlRows, sortedRowKeys(rows.RenderStrings())) {
						t.Consistent = false
					}
				}
			}
		}

		if g != nil && q.Kind != "anomaly" {
			ast, err := parser.Parse(q.Text)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.Label, err)
			}
			pat, err := translate.ToGraphPattern(ast)
			if err != nil {
				return nil, fmt.Errorf("%s (ToGraphPattern): %w", q.Label, err)
			}
			for r := 0; r < opt.repeat(); r++ {
				start := time.Now()
				gres, err := g.Match(pat)
				if err != nil {
					return nil, fmt.Errorf("%s (graph): %w", q.Label, err)
				}
				el := time.Since(start)
				if d, ok := t.Times[EngineNeo4j]; !ok || el < d {
					t.Times[EngineNeo4j] = el
				}
				t.RowCounts[EngineNeo4j] = len(gres.Rows)
				if r == 0 && opt.Verify {
					t.Verified = true
					if !sameRows(aiqlRows, sortedRowKeys(gres.Rows)) {
						t.Consistent = false
					}
				}
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// Totals sums per-engine times across queries.
func Totals(timings []Timing) map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, t := range timings {
		for e, d := range t.Times {
			out[e] += d
		}
	}
	return out
}

// Speedup returns total(baseline)/total(AIQL).
func Speedup(timings []Timing, baseline string) float64 {
	tot := Totals(timings)
	a := tot[EngineAIQL]
	b := tot[baseline]
	if a <= 0 {
		return 0
	}
	return float64(b) / float64(a)
}

// ---------------------------------------------------------------- E4

// ConcisenessRow compares one query's metrics across languages.
type ConcisenessRow struct {
	Label  string
	AIQL   MetricsTriple
	SQL    MetricsTriple
	Cypher MetricsTriple // zero when the query has no Cypher form
}

// MetricsTriple mirrors concise.Metrics without the import cycle concern
// for render-side consumers.
type MetricsTriple struct {
	Constraints int
	Words       int
	Chars       int
}

// ---------------------------------------------------------------- E5

// StorageVariant is one storage-ablation configuration.
type StorageVariant struct {
	Name string
	Opts eventstore.Options
}

// StorageVariants enumerates the ablation grid: all optimizations on,
// each one individually off, and all off.
func StorageVariants() []StorageVariant {
	full := eventstore.DefaultOptions()
	noDedup := full
	noDedup.Dedup = false
	noIdx := full
	noIdx.Indexes = false
	noPart := full
	noPart.Partitioning = false
	noBatch := full
	noBatch.BatchCommit = false
	return []StorageVariant{
		{Name: "all-on", Opts: full},
		{Name: "no-dedup", Opts: noDedup},
		{Name: "no-indexes", Opts: noIdx},
		{Name: "no-partitioning", Opts: noPart},
		{Name: "no-batch-commit", Opts: noBatch},
		{Name: "all-off", Opts: eventstore.PlainOptions()},
	}
}

// StorageResult is one storage-ablation measurement.
type StorageResult struct {
	Name         string
	IngestTime   time.Duration
	EventsPerSec float64
	ApproxBytes  uint64
	Partitions   int
	Processes    int
	Commits      uint64        // commit boundaries (durable transactions)
	QueryTime    time.Duration // representative query (Fig4 a5-5)
}

// RunStorageAblation ingests the same record stream under every storage
// variant and measures ingest throughput, footprint, and the time of a
// representative investigation query.
func RunStorageAblation(cfg datagen.Config) ([]StorageResult, error) {
	recs := datagen.Generate(cfg)
	// The representative query is single-pattern (a5-3): entity interning
	// is part of the data model — shared-variable joins across events
	// match on entity identity, so multievent joins require Dedup and
	// cannot run meaningfully on the no-dedup variants.
	repQuery := Fig4Queries()[16].Text // a5-3: who wrote db.bak
	var out []StorageResult
	for _, v := range StorageVariants() {
		s := eventstore.New(v.Opts)
		start := time.Now()
		s.AppendAll(recs)
		s.Flush()
		ingest := time.Since(start)
		stats := s.Stats()
		eng := engine.New(s)
		var best time.Duration
		for r := 0; r < 3; r++ { // best of three: query times are µs–ms scale
			qStart := time.Now()
			if _, err := eng.Execute(context.Background(), repQuery); err != nil {
				return nil, fmt.Errorf("storage ablation %s: %w", v.Name, err)
			}
			if el := time.Since(qStart); r == 0 || el < best {
				best = el
			}
		}
		out = append(out, StorageResult{
			Name:         v.Name,
			IngestTime:   ingest,
			EventsPerSec: float64(len(recs)) / ingest.Seconds(),
			ApproxBytes:  stats.ApproxBytes,
			Partitions:   stats.Partitions,
			Processes:    stats.Processes,
			Commits:      s.Commits(),
			QueryTime:    best,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------- E6

// SchedulingVariant is one engine-configuration ablation.
type SchedulingVariant struct {
	Name string
	Cfg  engine.Config
}

// SchedulingVariants enumerates the engine ablation grid.
func SchedulingVariants() []SchedulingVariant {
	return []SchedulingVariant{
		{Name: "optimized", Cfg: engine.Config{}},
		{Name: "no-reordering", Cfg: engine.Config{DisableReordering: true}},
		{Name: "no-parallelism", Cfg: engine.Config{DisableParallel: true}},
		{Name: "neither", Cfg: engine.Config{DisableReordering: true, DisableParallel: true}},
	}
}

// SchedulingResult is the total Figure-4 workload time per variant.
type SchedulingResult struct {
	Name     string
	Total    time.Duration
	PerQuery map[string]time.Duration
}

// RunSchedulingAblation executes the Figure-4 multievent queries under
// each engine configuration.
func RunSchedulingAblation(store *eventstore.Store) ([]SchedulingResult, error) {
	queries := Fig4Queries()
	var out []SchedulingResult
	for _, v := range SchedulingVariants() {
		eng := engine.NewWithConfig(store, v.Cfg)
		res := SchedulingResult{Name: v.Name, PerQuery: map[string]time.Duration{}}
		for _, q := range queries {
			start := time.Now()
			if _, err := eng.Execute(context.Background(), q.Text); err != nil {
				return nil, fmt.Errorf("scheduling ablation %s/%s: %w", v.Name, q.Label, err)
			}
			el := time.Since(start)
			res.PerQuery[q.Label] = el
			res.Total += el
		}
		out = append(out, res)
	}
	return out, nil
}
