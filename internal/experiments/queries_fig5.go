package experiments

import "github.com/aiql/aiql/internal/datagen"

// Fig5Queries returns the 26 investigation queries of Figure 5 (labels
// c1-1 … c5-7), reconstructing the APT case study of the underlying
// ATC'18 paper against the atc-case scenario. All queries are multievent
// or dependency queries so every engine (AIQL, PostgreSQL stand-in, Neo4j
// stand-in) can run them; each multi-pattern query chains adjacent
// patterns through shared variables, the shape Cypher traversals execute.
func Fig5Queries() []Query {
	day := `(at "05/10/2018")`
	return []Query{
		// ---- c1: phishing delivery (workstation 6)
		{Label: "c1-1", Kind: "multievent", Text: day + `
agentid = 6
proc p["%winword%"] read file f["%invoice%"] as evt
return distinct p, f`},

		// ---- c2: backdoor download and beaconing
		{Label: "c2-1", Kind: "multievent", Text: day + `
agentid = 6
proc p["%powershell%"] connect ip i[dstip = "198.51.100.77"] as evt
return distinct p, i`},
		{Label: "c2-2", Kind: "multievent", Text: day + `
agentid = 6
proc p["%powershell%"] write file f["%.exe"] as evt
return distinct p, f`},
		{Label: "c2-3", Kind: "multievent", Text: day + `
agentid = 6
proc p1 start proc p2["%dropper%"] as evt
return distinct p1, p2`},
		{Label: "c2-4", Kind: "multievent", Text: day + `
agentid = 6
proc p["%dropper%"] write file f as evt
return distinct p, f`},
		{Label: "c2-5", Kind: "multievent", Text: day + `
agentid = 6
proc p1["%winword%"] start proc p2["%cmd.exe"] as evt1
proc p2 start proc p3["%powershell%"] as evt2
with evt1 before evt2
return distinct p1, p2, p3`},
		{Label: "c2-6", Kind: "multievent", Text: day + `
agentid = 6
proc p1["%powershell%"] write file f["%dropper%"] as evt1
proc p1 start proc p2["%dropper%"] as evt2
with evt1 before evt2
return distinct p1, f, p2`},
		{Label: "c2-7", Kind: "multievent", Text: day + `
agentid = 6
proc p["%backdoor%"] write ip i[dstip = "198.51.100.77"] as evt
return distinct p, i`},
		{Label: "c2-8", Kind: "multievent", Text: day + `
agentid = 6
proc p1["%winword%"] read file f["%invoice%"] as evt1
proc p1 start proc p2["%cmd.exe"] as evt2
proc p2 start proc p3["%powershell%"] as evt3
proc p3 connect ip i[dstip = "198.51.100.77"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, f, p2, p3, i`},

		// ---- c3: privilege escalation
		{Label: "c3-1", Kind: "multievent", Text: day + `
agentid = 6
proc p1["%backdoor%"] start proc p2["%ms16%"] as evt
return distinct p1, p2`},
		{Label: "c3-2", Kind: "multievent", Text: day + `
agentid = 6
proc p1["%backdoor%"] start proc p2["%ms16%"] as evt1
proc p2 start proc p3["%cmd.exe"] as evt2
proc p3 read file f["%lsass.exe"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, p3`},

		// ---- c4: lateral movement to the file server (agent 4)
		{Label: "c4-1", Kind: "multievent", Text: day + `
agentid = 4
proc p accept ip i[srcip = "10.0.0.6"] as evt
return distinct p, i.src_ip`},
		{Label: "c4-2", Kind: "multievent", Text: day + `
agentid = 4
proc p1["%services.exe"] start proc p2["%psexesvc%"] as evt
return distinct p1, p2`},
		{Label: "c4-3", Kind: "multievent", Text: day + `
agentid = 4
proc p1["%psexesvc%"] start proc p2["%cmd.exe"] as evt
return distinct p1, p2`},
		{Label: "c4-4", Kind: "multievent", Text: day + `
agentid = 4
proc p["%robocopy%"] read file f["%_design.cad"] as evt
return distinct p, f`},
		{Label: "c4-5", Kind: "multievent", Text: day + `
agentid = 4
proc p["%robocopy%"] write file f["%archive.rar"] as evt
return distinct p, f`},
		{Label: "c4-6", Kind: "multievent", Text: day + `
agentid = 4
proc p1["%services.exe"] start proc p2["%psexesvc%"] as evt1
proc p2 start proc p3["%cmd.exe"] as evt2
proc p3 start proc p4["%robocopy%"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, p3, p4`},
		{Label: "c4-7", Kind: "multievent", Text: day + `
agentid = 4
proc p["%robocopy%"] read file f1["%_design.cad"] as evt1
proc p write file f2["%archive.rar"] as evt2
with evt1 before evt2
return distinct p, f1, f2`},
		{Label: "c4-8", Kind: "dependency", Text: day + `
forward: proc p1["%backdoor%", agentid = 6] ->[connect] proc p2["%services.exe", agentid = 4]
->[start] proc p3["%psexesvc%"]
->[start] proc p4["%cmd.exe"]
return p1, p2, p3, p4`},

		// ---- c5: exfiltration from the file server
		{Label: "c5-1", Kind: "multievent", Text: day + `
agentid = 4
proc p["%ftp.exe"] read file f["%archive.rar"] as evt
return distinct p, f`},
		{Label: "c5-2", Kind: "multievent", Text: day + `
agentid = 4
proc p["%ftp.exe"] connect ip i[dstip = "198.51.100.77"] as evt
return distinct p, i`},
		{Label: "c5-3", Kind: "multievent", Text: day + `
agentid = 4
proc p["%ftp.exe"] write ip i[dstip = "198.51.100.77"] as evt
with evt.amount > 1000000
return distinct p, i`},
		{Label: "c5-4", Kind: "multievent", Text: day + `
agentid = 4
proc p1 start proc p2["%ftp.exe"] as evt
return distinct p1, p2`},
		{Label: "c5-5", Kind: "multievent", Text: day + `
agentid = 4
proc p1["%cmd.exe"] start proc p2["%ftp.exe"] as evt1
proc p2 read file f["%archive.rar"] as evt2
with evt1 before evt2
return distinct p1, p2, f`},
		{Label: "c5-6", Kind: "multievent", Text: day + `
agentid = 4
proc p["%ftp.exe"] read file f["%archive.rar"] as evt1
proc p connect ip i[dstip = "198.51.100.77"] as evt2
proc p write ip i as evt3
with evt1 before evt2, evt2 before evt3
return distinct p, f, i`},
		{Label: "c5-7", Kind: "multievent", Text: day + `
agentid = 4
proc p1["%robocopy%"] read file f1["%_design.cad"] as evt1
proc p1 write file f2["%archive.rar"] as evt2
proc p2["%ftp.exe"] read file f2 as evt3
proc p2 connect ip i[dstip = "198.51.100.77"] as evt4
proc p2 write ip i as evt5
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5
return distinct p1, f1, f2, p2, i`},
	}
}

// Fig5Dataset generates the atc-case store configuration used by E3.
func Fig5Dataset(events, hosts int, seed int64) datagen.Config {
	return datagen.Config{
		Seed:      seed,
		Hosts:     hosts,
		Events:    events,
		Scenarios: []datagen.Scenario{datagen.ScenarioATCCase},
	}
}
