package experiments

import (
	"context"
	"testing"

	"github.com/aiql/aiql/internal/datagen"
	"github.com/aiql/aiql/internal/engine"
)

const (
	testEvents = 20000
	testHosts  = 8
	testSeed   = 42
)

func TestFig4QueriesFindAttackAndAgree(t *testing.T) {
	store := BuildStore(Fig4Dataset(testEvents, testHosts, testSeed))
	timings, err := RunFig4(store, RunOptions{Verify: true})
	if err != nil {
		t.Fatalf("RunFig4: %v", err)
	}
	if len(timings) != 19 {
		t.Fatalf("got %d queries, want 19", len(timings))
	}
	for _, tm := range timings {
		if tm.RowCounts[EngineAIQL] == 0 {
			t.Errorf("%s: AIQL found no rows — query does not match the injected attack", tm.Label)
		}
		if tm.Verified && !tm.Consistent {
			t.Errorf("%s: engines disagree (AIQL %d rows, PostgreSQL %d rows)",
				tm.Label, tm.RowCounts[EngineAIQL], tm.RowCounts[EnginePostgres])
		}
	}
}

func TestFig5QueriesFindAttackAndAgree(t *testing.T) {
	store := BuildStore(Fig5Dataset(testEvents, testHosts, testSeed))
	timings, err := RunFig5(store, RunOptions{Verify: true})
	if err != nil {
		t.Fatalf("RunFig5: %v", err)
	}
	if len(timings) != 26 {
		t.Fatalf("got %d queries, want 26", len(timings))
	}
	for _, tm := range timings {
		if tm.RowCounts[EngineAIQL] == 0 {
			t.Errorf("%s: AIQL found no rows — query does not match the injected attack", tm.Label)
		}
		if tm.Verified && !tm.Consistent {
			t.Errorf("%s: engines disagree (AIQL %d, PostgreSQL %d, Neo4j %d)",
				tm.Label, tm.RowCounts[EngineAIQL], tm.RowCounts[EnginePostgres], tm.RowCounts[EngineNeo4j])
		}
	}
}

func TestAnomalyQueryIsolatesExfiltrationProcesses(t *testing.T) {
	store := BuildStore(Fig4Dataset(testEvents, testHosts, testSeed))
	eng := engine.New(store)
	res, err := eng.Execute(context.Background(), Fig4Queries()[14].Text) // a5-1
	if err != nil {
		t.Fatalf("a5-1: %v", err)
	}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		seen[row[0]] = true
	}
	if !seen["sbblv.exe"] || !seen["powershell.exe"] {
		t.Errorf("anomaly query missed exfiltration processes, got %v", seen)
	}
	if seen["updatesvc.exe"] {
		t.Errorf("anomaly query flagged the benign steady-rate updater")
	}
}

func TestConcisenessRatios(t *testing.T) {
	rows, err := RunConciseness(Fig4Queries())
	if err != nil {
		t.Fatalf("RunConciseness: %v", err)
	}
	var aC, aW, aH, sC, sW, sH int
	for _, r := range rows {
		aC += r.AIQL.Constraints
		aW += r.AIQL.Words
		aH += r.AIQL.Chars
		sC += r.SQL.Constraints
		sW += r.SQL.Words
		sH += r.SQL.Chars
	}
	if sC <= aC || sW <= aW || sH <= aH {
		t.Errorf("SQL should be less concise on every metric: AIQL %d/%d/%d vs SQL %d/%d/%d",
			aC, aW, aH, sC, sW, sH)
	}
	// the paper reports ≥3.0x constraints, 3.5x words, 5.2x characters;
	// require at least a 1.5x gap on each so the claim's direction holds
	if float64(sC) < 1.5*float64(aC) {
		t.Errorf("constraint ratio %.2f below 1.5x", float64(sC)/float64(aC))
	}
	if float64(sW) < 1.5*float64(aW) {
		t.Errorf("word ratio %.2f below 1.5x", float64(sW)/float64(aW))
	}
	if float64(sH) < 1.5*float64(aH) {
		t.Errorf("char ratio %.2f below 1.5x", float64(sH)/float64(aH))
	}
}

func TestStorageAblation(t *testing.T) {
	rows, err := RunStorageAblation(datagen.Config{
		Seed: testSeed, Hosts: testHosts, Events: 5000,
		Scenarios: []datagen.Scenario{datagen.ScenarioDemoAPT},
	})
	if err != nil {
		t.Fatalf("RunStorageAblation: %v", err)
	}
	byName := map[string]StorageResult{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["no-dedup"].Processes <= byName["all-on"].Processes {
		t.Errorf("disabling dedup should inflate the process table: %d vs %d",
			byName["no-dedup"].Processes, byName["all-on"].Processes)
	}
	if byName["no-partitioning"].Partitions >= byName["all-on"].Partitions {
		t.Errorf("disabling partitioning should collapse chunks: %d vs %d",
			byName["no-partitioning"].Partitions, byName["all-on"].Partitions)
	}
	if byName["no-dedup"].ApproxBytes <= byName["all-on"].ApproxBytes {
		t.Errorf("disabling dedup should grow the footprint")
	}
}

func TestSchedulingAblation(t *testing.T) {
	store := BuildStore(Fig4Dataset(testEvents, testHosts, testSeed))
	rows, err := RunSchedulingAblation(store)
	if err != nil {
		t.Fatalf("RunSchedulingAblation: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d variants, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Errorf("variant %s recorded no time", r.Name)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	store := BuildStore(Fig4Dataset(5000, 6, testSeed))
	timings, err := RunFig4(store, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderComparison("Figure 4", timings, []string{EngineAIQL, EnginePostgres})
	if len(out) < 100 {
		t.Errorf("comparison render too short:\n%s", out)
	}
	rows, err := RunConciseness(Fig4Queries())
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderConciseness(rows); len(out) < 100 {
		t.Errorf("conciseness render too short:\n%s", out)
	}
}
