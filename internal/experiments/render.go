package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/aiql/aiql/internal/aiql/parser"
	"github.com/aiql/aiql/internal/concise"
	"github.com/aiql/aiql/internal/translate"
)

// log10s renders log10(seconds) the way the paper's figures plot it.
func log10s(d time.Duration) string {
	if d <= 0 {
		return "-inf"
	}
	return fmt.Sprintf("%+.2f", math.Log10(d.Seconds()))
}

func bar(d time.Duration, scale time.Duration) string {
	if d <= 0 || scale <= 0 {
		return ""
	}
	// logarithmic bar: one block per factor of ~10^(1/8) above 10µs
	n := int(math.Log10(d.Seconds()/10e-6) * 8)
	if n < 1 {
		n = 1
	}
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}

// RenderComparison renders a Figure-4/5 style table: per-query times,
// log10-transformed values, bars, totals, and speedups.
func RenderComparison(title string, timings []Timing, engines []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "%-6s", "query")
	for _, e := range engines {
		fmt.Fprintf(&b, "  %12s  %8s", e+" (ms)", "log10(s)")
	}
	fmt.Fprintf(&b, "  %s\n", "bar (log scale)")
	maxT := time.Duration(0)
	for _, t := range timings {
		for _, e := range engines {
			if t.Times[e] > maxT {
				maxT = t.Times[e]
			}
		}
	}
	for _, t := range timings {
		fmt.Fprintf(&b, "%-6s", t.Label)
		for _, e := range engines {
			fmt.Fprintf(&b, "  %12.3f  %8s", float64(t.Times[e])/1e6, log10s(t.Times[e]))
		}
		b.WriteString("\n")
		for _, e := range engines {
			fmt.Fprintf(&b, "      %-11s %s\n", e, bar(t.Times[e], maxT))
		}
	}
	tot := Totals(timings)
	b.WriteString(strings.Repeat("-", 72) + "\n")
	for _, e := range engines {
		fmt.Fprintf(&b, "total %-12s %12.1f ms\n", e, float64(tot[e])/1e6)
	}
	for _, e := range engines[1:] {
		fmt.Fprintf(&b, "speedup of %s over %s: %.1fx\n", engines[0], e, Speedup(timings, e))
	}
	return b.String()
}

// RunConciseness measures the conciseness metrics (E4) over a query set.
func RunConciseness(queries []Query) ([]ConcisenessRow, error) {
	var out []ConcisenessRow
	for _, q := range queries {
		row := ConcisenessRow{Label: q.Label}
		am, err := concise.MeasureAIQL(q.Text)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Label, err)
		}
		row.AIQL = MetricsTriple(am)

		ast, err := parser.Parse(q.Text)
		if err != nil {
			return nil, err
		}
		sqlText, err := translate.ToSQL(ast)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Label, err)
		}
		sm, err := concise.MeasureSQL(sqlText)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Label, err)
		}
		row.SQL = MetricsTriple(sm)

		if q.Kind != "anomaly" {
			ast2, err := parser.Parse(q.Text)
			if err != nil {
				return nil, err
			}
			cy, err := translate.ToCypher(ast2)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.Label, err)
			}
			row.Cypher = MetricsTriple(concise.MeasureCypher(cy))
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderConciseness renders the E4 table with aggregate ratios, matching
// the paper's claim format ("SQL contains ≥3.0x more constraints, 3.5x
// more words, 5.2x more characters").
func RenderConciseness(rows []ConcisenessRow) string {
	var b strings.Builder
	b.WriteString("Query conciseness: AIQL vs SQL vs Cypher\n")
	b.WriteString("========================================\n")
	fmt.Fprintf(&b, "%-6s  %24s  %24s  %24s\n", "query",
		"AIQL (cons/words/chars)", "SQL (cons/words/chars)", "Cypher (cons/words/chars)")
	var aC, aW, aH, sC, sW, sH, cC, cW, cH int
	cyN := 0
	for _, r := range rows {
		cy := "-"
		if r.Cypher.Words > 0 {
			cy = fmt.Sprintf("%d / %d / %d", r.Cypher.Constraints, r.Cypher.Words, r.Cypher.Chars)
			cC += r.Cypher.Constraints
			cW += r.Cypher.Words
			cH += r.Cypher.Chars
			cyN++
		}
		fmt.Fprintf(&b, "%-6s  %24s  %24s  %24s\n", r.Label,
			fmt.Sprintf("%d / %d / %d", r.AIQL.Constraints, r.AIQL.Words, r.AIQL.Chars),
			fmt.Sprintf("%d / %d / %d", r.SQL.Constraints, r.SQL.Words, r.SQL.Chars),
			cy)
		aC += r.AIQL.Constraints
		aW += r.AIQL.Words
		aH += r.AIQL.Chars
		sC += r.SQL.Constraints
		sW += r.SQL.Words
		sH += r.SQL.Chars
	}
	div := func(x, y int) float64 {
		if y == 0 {
			return 0
		}
		return float64(x) / float64(y)
	}
	b.WriteString(strings.Repeat("-", 84) + "\n")
	fmt.Fprintf(&b, "SQL vs AIQL:    %.1fx constraints, %.1fx words, %.1fx characters\n",
		div(sC, aC), div(sW, aW), div(sH, aH))
	if cyN > 0 {
		fmt.Fprintf(&b, "Cypher vs AIQL: %.1fx constraints, %.1fx words, %.1fx characters (over %d translatable queries)\n",
			div(cC, aC), div(cW, aW), div(cH, aH), cyN)
	}
	return b.String()
}

// RenderStorage renders the E5 ablation table.
func RenderStorage(rows []StorageResult) string {
	var b strings.Builder
	b.WriteString("Storage optimization ablation\n")
	b.WriteString("=============================\n")
	fmt.Fprintf(&b, "%-16s  %12s  %14s  %12s  %10s  %10s  %10s  %12s\n",
		"variant", "ingest (ms)", "events/sec", "approx MB", "chunks", "procs", "commits", "query (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s  %12.1f  %14.0f  %12.2f  %10d  %10d  %10d  %12.3f\n",
			r.Name, float64(r.IngestTime)/1e6, r.EventsPerSec,
			float64(r.ApproxBytes)/1e6, r.Partitions, r.Processes, r.Commits,
			float64(r.QueryTime)/1e6)
	}
	return b.String()
}

// RenderScheduling renders the E6 ablation table.
func RenderScheduling(rows []SchedulingResult) string {
	var b strings.Builder
	b.WriteString("Query scheduling ablation (Figure-4 workload)\n")
	b.WriteString("==============================================\n")
	fmt.Fprintf(&b, "%-16s  %12s\n", "variant", "total (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s  %12.1f\n", r.Name, float64(r.Total)/1e6)
	}
	if len(rows) > 0 {
		b.WriteString("\nper-query times (ms):\n")
		var labels []string
		for l := range rows[0].PerQuery {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		fmt.Fprintf(&b, "%-6s", "query")
		for _, r := range rows {
			fmt.Fprintf(&b, "  %14s", r.Name)
		}
		b.WriteString("\n")
		for _, l := range labels {
			fmt.Fprintf(&b, "%-6s", l)
			for _, r := range rows {
				fmt.Fprintf(&b, "  %14.3f", float64(r.PerQuery[l])/1e6)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
