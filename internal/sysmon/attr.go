package sysmon

import (
	"fmt"
	"strconv"
)

// Attribute names understood by the query languages, per entity type.
// Each entity type has a default attribute used by the AIQL positional
// filter shortcut (e.g. proc p["%cmd.exe"] filters on exe_name).
var (
	processAttrs = []string{"pid", "exe_name", "path", "user", "cmdline"}
	fileAttrs    = []string{"name", "path", "owner"}
	netconnAttrs = []string{"src_ip", "src_port", "dst_ip", "dst_port", "protocol", "srcip", "srcport", "dstip", "dstport"}
)

// DefaultAttr returns the default attribute name for an entity type:
// the attribute a bare positional filter or bare return variable refers to.
func DefaultAttr(t EntityType) string {
	switch t {
	case EntityProcess:
		return "exe_name"
	case EntityFile:
		return "name"
	case EntityNetconn:
		return "dst_ip"
	default:
		return ""
	}
}

// ValidAttr reports whether name is a queryable attribute of entity type t.
func ValidAttr(t EntityType, name string) bool {
	for _, a := range attrsFor(t) {
		if a == name {
			return true
		}
	}
	return false
}

// Attrs returns the canonical attribute names for an entity type.
func Attrs(t EntityType) []string {
	switch t {
	case EntityProcess:
		return []string{"pid", "exe_name", "path", "user", "cmdline"}
	case EntityFile:
		return []string{"name", "owner"}
	case EntityNetconn:
		return []string{"src_ip", "src_port", "dst_ip", "dst_port", "protocol"}
	default:
		return nil
	}
}

func attrsFor(t EntityType) []string {
	switch t {
	case EntityProcess:
		return processAttrs
	case EntityFile:
		return fileAttrs
	case EntityNetconn:
		return netconnAttrs
	default:
		return nil
	}
}

// CanonicalAttr normalizes attribute aliases (e.g. "dstip" → "dst_ip",
// file "path" → "name"). It returns the canonical name and whether the
// attribute is valid for the entity type.
func CanonicalAttr(t EntityType, name string) (string, bool) {
	if !ValidAttr(t, name) {
		return "", false
	}
	switch t {
	case EntityFile:
		if name == "path" {
			return "name", true
		}
	case EntityNetconn:
		switch name {
		case "srcip":
			return "src_ip", true
		case "srcport":
			return "src_port", true
		case "dstip":
			return "dst_ip", true
		case "dstport":
			return "dst_port", true
		}
	}
	return name, true
}

// ProcessAttr returns the string form of a process attribute.
func ProcessAttr(p *Process, attr string) string {
	switch attr {
	case "pid":
		return strconv.FormatUint(uint64(p.PID), 10)
	case "exe_name":
		return p.ExeName
	case "path":
		return p.Path
	case "user":
		return p.User
	case "cmdline":
		return p.CmdLine
	default:
		return ""
	}
}

// FileAttr returns the string form of a file attribute.
func FileAttr(f *File, attr string) string {
	switch attr {
	case "name", "path":
		return f.Path
	case "owner":
		return f.Owner
	default:
		return ""
	}
}

// NetconnAttr returns the string form of a network-connection attribute.
func NetconnAttr(n *Netconn, attr string) string {
	switch attr {
	case "src_ip":
		return n.SrcIP
	case "src_port":
		return strconv.FormatUint(uint64(n.SrcPort), 10)
	case "dst_ip":
		return n.DstIP
	case "dst_port":
		return strconv.FormatUint(uint64(n.DstPort), 10)
	case "protocol":
		return n.Protocol
	default:
		return ""
	}
}

// EventAttr returns the string form of an event-level attribute
// (attributes of the event itself rather than of its endpoint entities).
func EventAttr(e *Event, attr string) (string, bool) {
	switch attr {
	case "id":
		return strconv.FormatUint(e.ID, 10), true
	case "agentid", "agent_id":
		return strconv.FormatUint(uint64(e.AgentID), 10), true
	case "optype", "op":
		return e.Op.String(), true
	case "starttime", "start_time":
		return strconv.FormatInt(e.StartTS, 10), true
	case "endtime", "end_time":
		return strconv.FormatInt(e.EndTS, 10), true
	case "amount":
		return strconv.FormatUint(e.Amount, 10), true
	case "seq":
		return strconv.FormatUint(e.Seq, 10), true
	}
	return "", false
}

// ValidEventAttr reports whether name is a queryable event-level attribute.
func ValidEventAttr(name string) bool {
	switch name {
	case "id", "agentid", "agent_id", "optype", "op",
		"starttime", "start_time", "endtime", "end_time", "amount", "seq":
		return true
	}
	return false
}

// FormatAgent renders an agent ID the way result tables display hosts.
func FormatAgent(id uint32) string { return fmt.Sprintf("agent-%d", id) }
