// Package sysmon defines the domain-specific data model for system
// monitoring data: system entities (processes, files, network connections)
// and system events that record interactions among them.
//
// The model follows the SVO (subject, operation, object) representation of
// the AIQL paper: subjects are processes, objects are processes, files, or
// network connections, and each event carries the host (agent) it occurred
// on and the time interval it spans, giving the data strong spatial and
// temporal properties that the storage and query layers exploit.
package sysmon

import (
	"fmt"
	"time"
)

// EntityType identifies the kind of a system entity.
type EntityType uint8

// The three system entity kinds of the AIQL data model.
const (
	EntityInvalid EntityType = iota
	EntityProcess
	EntityFile
	EntityNetconn
)

// String returns the AIQL surface-syntax name of the entity type.
func (t EntityType) String() string {
	switch t {
	case EntityProcess:
		return "proc"
	case EntityFile:
		return "file"
	case EntityNetconn:
		return "ip"
	default:
		return fmt.Sprintf("EntityType(%d)", uint8(t))
	}
}

// ParseEntityType converts an AIQL entity keyword to an EntityType.
func ParseEntityType(s string) (EntityType, bool) {
	switch s {
	case "proc", "process":
		return EntityProcess, true
	case "file":
		return EntityFile, true
	case "ip", "conn", "netconn":
		return EntityNetconn, true
	}
	return EntityInvalid, false
}

// Operation identifies the interaction recorded by an event.
type Operation uint16

// Operations, grouped by the event family they belong to.
const (
	OpInvalid Operation = iota

	// Process events: subject process acts on an object process.
	OpStart
	OpEnd

	// File events: subject process acts on an object file.
	OpRead
	OpWrite
	OpExecute
	OpDelete
	OpRename
	OpChmod

	// Network events: subject process acts on an object connection.
	OpConnect
	OpAccept
	OpSend
	OpRecv

	numOperations // sentinel; keep last
)

// NumOperations is the count of defined operations (for table sizing).
const NumOperations = int(numOperations)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpStart:   "start",
	OpEnd:     "end",
	OpRead:    "read",
	OpWrite:   "write",
	OpExecute: "execute",
	OpDelete:  "delete",
	OpRename:  "rename",
	OpChmod:   "chmod",
	OpConnect: "connect",
	OpAccept:  "accept",
	OpSend:    "send",
	OpRecv:    "recv",
}

// String returns the AIQL surface-syntax name of the operation.
func (o Operation) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Operation(%d)", uint16(o))
}

// ParseOperation converts an AIQL operation keyword to an Operation.
func ParseOperation(s string) (Operation, bool) {
	for op, name := range opNames {
		if op != 0 && name == s {
			return Operation(op), true
		}
	}
	return OpInvalid, false
}

// ObjectType reports the entity type an operation's object must have.
// OpRead/OpWrite are polymorphic between files and network connections in
// the surface language; at the event level the object type disambiguates,
// so ObjectType returns EntityInvalid for them.
func (o Operation) ObjectType() EntityType {
	switch o {
	case OpStart, OpEnd:
		return EntityProcess
	case OpExecute, OpDelete, OpRename, OpChmod:
		return EntityFile
	case OpConnect, OpAccept, OpSend, OpRecv:
		return EntityNetconn
	default:
		return EntityInvalid
	}
}

// EntityID is a handle to a deduplicated entity within a Dictionary.
// IDs are dense and start at 1; 0 means "no entity".
type EntityID uint32

// Process is a system entity originating from a software application.
type Process struct {
	PID     uint32
	ExeName string // base executable name, e.g. "cmd.exe"
	Path    string // full executable path, e.g. "C:\Windows\System32\cmd.exe"
	User    string
	CmdLine string
}

// File is a filesystem entity.
type File struct {
	Path  string // full path; the AIQL default attribute "name"
	Owner string
}

// Netconn is a network connection entity.
type Netconn struct {
	SrcIP    string
	SrcPort  uint16
	DstIP    string
	DstPort  uint16
	Protocol string // "tcp" or "udp"
}

// Event is one system-monitoring record: subject process performs an
// operation on an object entity, on a given host, over a time interval.
type Event struct {
	ID      uint64
	AgentID uint32 // host the event was observed on
	Subject EntityID
	Op      Operation
	ObjType EntityType
	Object  EntityID
	StartTS int64  // unix nanoseconds
	EndTS   int64  // unix nanoseconds; >= StartTS
	Amount  uint64 // bytes transferred, for data-moving operations
	Seq     uint64 // per-agent monotone sequence number
}

// Family returns the event family ("process", "file", "network") implied by
// the object type.
func (e *Event) Family() string {
	switch e.ObjType {
	case EntityProcess:
		return "process"
	case EntityFile:
		return "file"
	case EntityNetconn:
		return "network"
	default:
		return "unknown"
	}
}

// Start returns the event start time as a time.Time.
func (e *Event) Start() time.Time { return time.Unix(0, e.StartTS) }

// End returns the event end time as a time.Time.
func (e *Event) End() time.Time { return time.Unix(0, e.EndTS) }
