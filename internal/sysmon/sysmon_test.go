package sysmon

import (
	"testing"
	"time"
)

func TestEntityTypeRoundTrip(t *testing.T) {
	for _, typ := range []EntityType{EntityProcess, EntityFile, EntityNetconn} {
		got, ok := ParseEntityType(typ.String())
		if !ok || got != typ {
			t.Errorf("ParseEntityType(%q) = %v, %v", typ.String(), got, ok)
		}
	}
	if _, ok := ParseEntityType("bogus"); ok {
		t.Error("ParseEntityType accepted bogus type")
	}
	// aliases
	for in, want := range map[string]EntityType{
		"process": EntityProcess, "conn": EntityNetconn, "netconn": EntityNetconn,
	} {
		if got, ok := ParseEntityType(in); !ok || got != want {
			t.Errorf("ParseEntityType(%q) = %v, %v", in, got, ok)
		}
	}
}

func TestOperationRoundTrip(t *testing.T) {
	for op := Operation(1); int(op) < NumOperations; op++ {
		got, ok := ParseOperation(op.String())
		if !ok || got != op {
			t.Errorf("ParseOperation(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := ParseOperation("frobnicate"); ok {
		t.Error("ParseOperation accepted unknown op")
	}
}

func TestOperationObjectTypes(t *testing.T) {
	cases := map[Operation]EntityType{
		OpStart:   EntityProcess,
		OpEnd:     EntityProcess,
		OpExecute: EntityFile,
		OpDelete:  EntityFile,
		OpConnect: EntityNetconn,
		OpAccept:  EntityNetconn,
		OpRead:    EntityInvalid, // polymorphic
		OpWrite:   EntityInvalid,
	}
	for op, want := range cases {
		if got := op.ObjectType(); got != want {
			t.Errorf("%v.ObjectType() = %v, want %v", op, got, want)
		}
	}
}

func TestDefaultAttrs(t *testing.T) {
	if DefaultAttr(EntityProcess) != "exe_name" {
		t.Error("process default attr should be exe_name")
	}
	if DefaultAttr(EntityFile) != "name" {
		t.Error("file default attr should be name")
	}
	if DefaultAttr(EntityNetconn) != "dst_ip" {
		t.Error("netconn default attr should be dst_ip")
	}
}

func TestCanonicalAttr(t *testing.T) {
	cases := []struct {
		typ   EntityType
		in    string
		want  string
		valid bool
	}{
		{EntityNetconn, "dstip", "dst_ip", true},
		{EntityNetconn, "srcport", "src_port", true},
		{EntityNetconn, "dst_ip", "dst_ip", true},
		{EntityFile, "path", "name", true},
		{EntityFile, "name", "name", true},
		{EntityProcess, "exe_name", "exe_name", true},
		{EntityProcess, "dstip", "", false},
		{EntityFile, "pid", "", false},
	}
	for _, c := range cases {
		got, ok := CanonicalAttr(c.typ, c.in)
		if ok != c.valid || got != c.want {
			t.Errorf("CanonicalAttr(%v, %q) = %q, %v; want %q, %v", c.typ, c.in, got, ok, c.want, c.valid)
		}
	}
}

func TestAttrAccessors(t *testing.T) {
	p := Process{PID: 42, ExeName: "x.exe", Path: `C:\x.exe`, User: "u", CmdLine: "x -a"}
	if ProcessAttr(&p, "pid") != "42" || ProcessAttr(&p, "exe_name") != "x.exe" ||
		ProcessAttr(&p, "user") != "u" || ProcessAttr(&p, "cmdline") != "x -a" {
		t.Error("ProcessAttr mismatch")
	}
	f := File{Path: "/etc/passwd", Owner: "root"}
	if FileAttr(&f, "name") != "/etc/passwd" || FileAttr(&f, "path") != "/etc/passwd" || FileAttr(&f, "owner") != "root" {
		t.Error("FileAttr mismatch")
	}
	n := Netconn{SrcIP: "1.2.3.4", SrcPort: 80, DstIP: "5.6.7.8", DstPort: 443, Protocol: "tcp"}
	if NetconnAttr(&n, "src_ip") != "1.2.3.4" || NetconnAttr(&n, "dst_port") != "443" || NetconnAttr(&n, "protocol") != "tcp" {
		t.Error("NetconnAttr mismatch")
	}
}

func TestEventAttr(t *testing.T) {
	ev := Event{ID: 9, AgentID: 3, Op: OpWrite, StartTS: 100, EndTS: 200, Amount: 512, Seq: 4}
	for attr, want := range map[string]string{
		"id": "9", "agentid": "3", "op": "write", "starttime": "100",
		"endtime": "200", "amount": "512", "seq": "4",
	} {
		got, ok := EventAttr(&ev, attr)
		if !ok || got != want {
			t.Errorf("EventAttr(%q) = %q, %v; want %q", attr, got, ok, want)
		}
	}
	if _, ok := EventAttr(&ev, "bogus"); ok {
		t.Error("EventAttr accepted bogus attribute")
	}
}

func TestEventTimesAndFamily(t *testing.T) {
	ts := time.Date(2018, 5, 10, 13, 0, 0, 0, time.UTC)
	ev := Event{StartTS: ts.UnixNano(), EndTS: ts.Add(time.Second).UnixNano(), ObjType: EntityFile}
	if !ev.Start().Equal(ts) {
		t.Error("Start() mismatch")
	}
	if !ev.End().Equal(ts.Add(time.Second)) {
		t.Error("End() mismatch")
	}
	if ev.Family() != "file" {
		t.Errorf("Family() = %q", ev.Family())
	}
	ev.ObjType = EntityProcess
	if ev.Family() != "process" {
		t.Errorf("Family() = %q", ev.Family())
	}
	ev.ObjType = EntityNetconn
	if ev.Family() != "network" {
		t.Errorf("Family() = %q", ev.Family())
	}
}
