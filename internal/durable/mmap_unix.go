//go:build (linux || darwin) && !aiql_nommap

package durable

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// fileHandle is the mmap-backed accessor for immutable segment files.
// readAt returns slices of the shared read-only mapping — zero-copy —
// so block reads on the scan hot path touch no heap at all.
//
// The mapping is released by a finalizer rather than an explicit Close:
// sealed segments are immutable and snapshot pinning means decoded
// views of a retired segment can outlive the store that opened it, so
// the mapping must stay valid exactly as long as anything can still
// reach the handle. Callers keep the invariant that every escaping
// slice of the mapping is owned by a struct that also references the
// handle (Segment → SegmentReader → fileHandle).
type fileHandle struct {
	data []byte
	n    int64
}

func openHandle(path string) (*fileHandle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	n := st.Size()
	if n == 0 {
		return &fileHandle{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(n), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("durable: mmap %s: %w", path, err)
	}
	h := &fileHandle{data: data, n: n}
	runtime.SetFinalizer(h, func(h *fileHandle) { syscall.Munmap(h.data) })
	return h, nil
}

// readAt returns n bytes at off. The second result reports zero-copy:
// the slice aliases the mapping and is valid while the handle is
// reachable.
func (h *fileHandle) readAt(off int64, n int) ([]byte, bool, error) {
	if off < 0 || n < 0 || off+int64(n) > h.n {
		return nil, false, corruptf("read [%d,+%d) beyond file size %d", off, n, h.n)
	}
	return h.data[off : off+int64(n) : off+int64(n)], true, nil
}

func (h *fileHandle) mapped() bool { return h.data != nil }

func (h *fileHandle) size() int64 { return h.n }
