//go:build (!linux && !darwin) || aiql_nommap

package durable

import (
	"fmt"
	"os"
)

// fileHandle is the portable read-at fallback used where mmap is
// unavailable (or disabled with the aiql_nommap build tag, which CI
// uses to race-test this path). Every read allocates and copies, so
// readAt always reports zero-copy=false and callers decode into heap
// buffers exactly as they would for a compressed block.
//
// The *os.File's own finalizer closes the descriptor when the handle
// becomes unreachable, mirroring the mmap flavor's finalizer-driven
// unmap.
type fileHandle struct {
	f *os.File
	n int64
}

func openHandle(path string) (*fileHandle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &fileHandle{f: f, n: st.Size()}, nil
}

func (h *fileHandle) readAt(off int64, n int) ([]byte, bool, error) {
	if off < 0 || n < 0 || off+int64(n) > h.n {
		return nil, false, corruptf("read [%d,+%d) beyond file size %d", off, n, h.n)
	}
	buf := make([]byte, n)
	if _, err := h.f.ReadAt(buf, off); err != nil {
		return nil, false, fmt.Errorf("durable: read segment: %w", err)
	}
	return buf, false, nil
}

func (h *fileHandle) mapped() bool { return false }

func (h *fileHandle) size() int64 { return h.n }
