package durable

import (
	"fmt"
	"os"
	"sort"

	"github.com/aiql/aiql/internal/sysmon"
)

// Segment file layout (all integers little-endian):
//
//	header:  magic "AQSG" | version u32 | segID u64 | agent u32 |
//	         bucket i64 | count u32 | flags u8
//	columns: one block per event field, each a fixed-width array of
//	         count values (ID, AgentID, Subject, Op, ObjType, Object,
//	         StartTS, EndTS, Amount, Seq), followed by crc32
//	indexes: (flags&segFlagIndexed) the serialized posting lists
//	         (subject and object: entity → ascending positions) and the
//	         operation histogram, followed by crc32
//	footer:  minEventID u64 | maxEventID u64 | minTS i64 | maxTS i64 |
//	         crc32 | magic "AQSE"
//
// The columnar blocks decode straight into the in-memory event array
// and the index section restores the posting lists verbatim, so loading
// a segment performs no re-chunking, re-sorting, or re-indexing. The
// footer's min/max event ID is what recovery uses to decide which WAL
// records a loaded segment already covers.

const (
	segMagic       = "AQSG"
	segMagicFooter = "AQSE"
	segVersion     = 1
	segFlagIndexed = 1
)

// SegmentData is the serializable content of one sealed segment.
type SegmentData struct {
	ID      uint64
	AgentID uint32
	Bucket  int64
	Events  []sysmon.Event

	// MinEventID/MaxEventID bound the event IDs contained in the
	// segment; both zero for an empty segment. Filled by WriteSegment
	// when left zero.
	MinEventID uint64
	MaxEventID uint64

	// Indexed carries the posting indexes so a load restores them
	// without rebuilding.
	Indexed    bool
	PostingSub map[sysmon.EntityID][]int32
	PostingObj map[sysmon.EntityID][]int32
	OpCount    []int
}

// fillEventIDBounds computes MinEventID/MaxEventID from the events.
func (d *SegmentData) fillEventIDBounds() {
	if d.MinEventID != 0 || d.MaxEventID != 0 || len(d.Events) == 0 {
		return
	}
	d.MinEventID, d.MaxEventID = d.Events[0].ID, d.Events[0].ID
	for i := range d.Events {
		id := d.Events[i].ID
		if id < d.MinEventID {
			d.MinEventID = id
		}
		if id > d.MaxEventID {
			d.MaxEventID = id
		}
	}
}

// EncodeSegment serializes the segment into the on-disk byte layout.
func EncodeSegment(d *SegmentData) []byte {
	d.fillEventIDBounds()
	n := len(d.Events)
	w := &byteWriter{buf: make([]byte, 0, 64+n*58)}
	w.buf = append(w.buf, segMagic...)
	w.u32(segVersion)
	w.u64(d.ID)
	w.u32(d.AgentID)
	w.i64(d.Bucket)
	w.u32(uint32(n))
	var flags uint8
	if d.Indexed {
		flags |= segFlagIndexed
	}
	w.u8(flags)

	// columnar event blocks
	colStart := len(w.buf)
	for i := range d.Events {
		w.u64(d.Events[i].ID)
	}
	for i := range d.Events {
		w.u32(d.Events[i].AgentID)
	}
	for i := range d.Events {
		w.u32(uint32(d.Events[i].Subject))
	}
	for i := range d.Events {
		w.u16(uint16(d.Events[i].Op))
	}
	for i := range d.Events {
		w.u8(uint8(d.Events[i].ObjType))
	}
	for i := range d.Events {
		w.u32(uint32(d.Events[i].Object))
	}
	for i := range d.Events {
		w.i64(d.Events[i].StartTS)
	}
	for i := range d.Events {
		w.i64(d.Events[i].EndTS)
	}
	for i := range d.Events {
		w.u64(d.Events[i].Amount)
	}
	for i := range d.Events {
		w.u64(d.Events[i].Seq)
	}
	w.u32(checksum(w.buf[colStart:]))

	if d.Indexed {
		idxStart := len(w.buf)
		writePostings(w, d.PostingSub)
		writePostings(w, d.PostingObj)
		w.u32(uint32(len(d.OpCount)))
		for _, c := range d.OpCount {
			w.u64(uint64(c))
		}
		w.u32(checksum(w.buf[idxStart:]))
	}

	footStart := len(w.buf)
	w.u64(d.MinEventID)
	w.u64(d.MaxEventID)
	var minTS, maxTS int64
	if n > 0 {
		minTS, maxTS = d.Events[0].StartTS, d.Events[n-1].StartTS
	}
	w.i64(minTS)
	w.i64(maxTS)
	w.u32(checksum(w.buf[footStart:]))
	w.buf = append(w.buf, segMagicFooter...)
	return w.buf
}

func writePostings(w *byteWriter, postings map[sysmon.EntityID][]int32) {
	ids := make([]sysmon.EntityID, 0, len(postings))
	for id := range postings {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.u32(uint32(len(ids)))
	for _, id := range ids {
		list := postings[id]
		w.u32(uint32(id))
		w.u32(uint32(len(list)))
		for _, pos := range list {
			w.u32(uint32(pos))
		}
	}
}

// DecodeSegment parses a segment file image, verifying magics and
// checksums; corrupt or truncated input returns a descriptive error.
func DecodeSegment(buf []byte) (*SegmentData, error) {
	r := &byteReader{buf: buf}
	if string(r.take(4)) != segMagic {
		return nil, fmt.Errorf("durable: not a segment file (bad magic)")
	}
	if v := r.u32(); v != segVersion {
		return nil, fmt.Errorf("durable: unsupported segment version %d", v)
	}
	d := &SegmentData{ID: r.u64(), AgentID: r.u32(), Bucket: r.i64()}
	n := int(r.u32())
	flags := r.u8()
	if err := r.err("segment header"); err != nil {
		return nil, err
	}
	const eventWidth = 8 + 4 + 4 + 2 + 1 + 4 + 8 + 8 + 8 + 8
	if n < 0 || n > (len(buf)-r.off)/eventWidth+1 {
		return nil, fmt.Errorf("durable: segment event count %d exceeds file size", n)
	}

	colStart := r.off
	d.Events = make([]sysmon.Event, n)
	for i := range d.Events {
		d.Events[i].ID = r.u64()
	}
	for i := range d.Events {
		d.Events[i].AgentID = r.u32()
	}
	for i := range d.Events {
		d.Events[i].Subject = sysmon.EntityID(r.u32())
	}
	for i := range d.Events {
		d.Events[i].Op = sysmon.Operation(r.u16())
	}
	for i := range d.Events {
		d.Events[i].ObjType = sysmon.EntityType(r.u8())
	}
	for i := range d.Events {
		d.Events[i].Object = sysmon.EntityID(r.u32())
	}
	for i := range d.Events {
		d.Events[i].StartTS = r.i64()
	}
	for i := range d.Events {
		d.Events[i].EndTS = r.i64()
	}
	for i := range d.Events {
		d.Events[i].Amount = r.u64()
	}
	for i := range d.Events {
		d.Events[i].Seq = r.u64()
	}
	if err := r.err("segment columns"); err != nil {
		return nil, err
	}
	colEnd := r.off
	if crc := r.u32(); r.fail || crc != checksum(buf[colStart:colEnd]) {
		return nil, fmt.Errorf("durable: segment %d: column block checksum mismatch", d.ID)
	}

	if flags&segFlagIndexed != 0 {
		d.Indexed = true
		idxStart := r.off
		var err error
		if d.PostingSub, err = readPostings(r, n); err != nil {
			return nil, fmt.Errorf("durable: segment %d: %w", d.ID, err)
		}
		if d.PostingObj, err = readPostings(r, n); err != nil {
			return nil, fmt.Errorf("durable: segment %d: %w", d.ID, err)
		}
		opN := int(r.u32())
		if r.fail || opN > 1024 {
			return nil, fmt.Errorf("durable: segment %d: corrupt op histogram", d.ID)
		}
		d.OpCount = make([]int, opN)
		for i := range d.OpCount {
			d.OpCount[i] = int(r.u64())
		}
		if err := r.err("segment indexes"); err != nil {
			return nil, err
		}
		idxEnd := r.off
		if crc := r.u32(); r.fail || crc != checksum(buf[idxStart:idxEnd]) {
			return nil, fmt.Errorf("durable: segment %d: index block checksum mismatch", d.ID)
		}
	}

	footStart := r.off
	d.MinEventID = r.u64()
	d.MaxEventID = r.u64()
	r.i64() // minTS: derivable from events; read for layout
	r.i64() // maxTS
	footEnd := r.off
	if crc := r.u32(); r.fail || crc != checksum(buf[footStart:footEnd]) {
		return nil, fmt.Errorf("durable: segment %d: footer checksum mismatch", d.ID)
	}
	if string(r.take(4)) != segMagicFooter {
		return nil, fmt.Errorf("durable: segment %d: bad footer magic", d.ID)
	}
	return d, nil
}

func readPostings(r *byteReader, maxPos int) (map[sysmon.EntityID][]int32, error) {
	n := int(r.u32())
	if r.fail {
		return nil, fmt.Errorf("truncated posting table")
	}
	postings := make(map[sysmon.EntityID][]int32, n)
	// Every event contributes exactly one position per posting table,
	// so the lists sum to the segment's event count: one slab backs all
	// of them, sparing a per-entity allocation.
	slab := make([]int32, 0, maxPos)
	for i := 0; i < n; i++ {
		id := sysmon.EntityID(r.u32())
		l := int(r.u32())
		if r.fail || l > maxPos {
			return nil, fmt.Errorf("corrupt posting list")
		}
		var list []int32
		if len(slab)+l <= cap(slab) {
			list = slab[len(slab) : len(slab)+l : len(slab)+l]
			slab = slab[:len(slab)+l]
		} else {
			list = make([]int32, l) // corrupt counts; stay safe
		}
		for j := 0; j < l; j++ {
			pos := r.u32()
			if int(pos) >= maxPos {
				return nil, fmt.Errorf("posting position %d out of range", pos)
			}
			list[j] = int32(pos)
		}
		postings[id] = list
	}
	if r.fail {
		return nil, fmt.Errorf("truncated posting table")
	}
	return postings, nil
}

// WriteSegmentFile writes the segment image to path (fsynced),
// returning the file's byte size. The file is written once and never
// modified; callers rename or delete whole files only.
func WriteSegmentFile(path string, d *SegmentData) (int64, error) {
	buf := EncodeSegment(d)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return 0, fmt.Errorf("durable: write segment %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("durable: sync segment %s: %w", path, err)
	}
	return int64(len(buf)), f.Close()
}

// ReadSegmentFile loads and validates one segment file.
func ReadSegmentFile(path string) (*SegmentData, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	d, err := DecodeSegment(buf)
	if err != nil {
		return nil, fmt.Errorf("durable: segment file %s: %w", path, err)
	}
	return d, nil
}
