package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/aiql/aiql/internal/sysmon"
)

func testEvents(n int) []sysmon.Event {
	evs := make([]sysmon.Event, n)
	for i := range evs {
		evs[i] = sysmon.Event{
			ID:      uint64(i + 1),
			AgentID: uint32(i % 3),
			Subject: sysmon.EntityID(i%7 + 1),
			Op:      sysmon.OpWrite,
			ObjType: sysmon.EntityFile,
			Object:  sysmon.EntityID(i%5 + 1),
			StartTS: int64(1000 + i),
			EndTS:   int64(1000 + i + 2),
			Amount:  uint64(i * 10),
			Seq:     uint64(i + 1),
		}
	}
	return evs
}

func testSegment(n int) *SegmentData {
	evs := testEvents(n)
	sub := map[sysmon.EntityID][]int32{}
	obj := map[sysmon.EntityID][]int32{}
	ops := make([]int, sysmon.NumOperations)
	for i := range evs {
		sub[evs[i].Subject] = append(sub[evs[i].Subject], int32(i))
		obj[evs[i].Object] = append(obj[evs[i].Object], int32(i))
		ops[evs[i].Op]++
	}
	return &SegmentData{
		ID: 42, AgentID: 1, Bucket: 99, Events: evs,
		Indexed: true, PostingSub: sub, PostingObj: obj, OpCount: ops,
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100} {
		d := testSegment(n)
		got, err := DecodeSegment(EncodeSegment(d))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !reflect.DeepEqual(got.Events, d.Events) {
			t.Fatalf("n=%d: events differ after round trip", n)
		}
		if got.ID != d.ID || got.AgentID != d.AgentID || got.Bucket != d.Bucket {
			t.Fatalf("n=%d: identity differs: %+v", n, got)
		}
		if n > 0 && (got.MinEventID != 1 || got.MaxEventID != uint64(n)) {
			t.Fatalf("n=%d: event-ID bounds %d..%d", n, got.MinEventID, got.MaxEventID)
		}
		if !reflect.DeepEqual(got.PostingSub, d.PostingSub) || !reflect.DeepEqual(got.PostingObj, d.PostingObj) {
			t.Fatalf("n=%d: postings differ after round trip", n)
		}
		if !reflect.DeepEqual(got.OpCount, d.OpCount) {
			t.Fatalf("n=%d: op histogram differs", n)
		}
	}
}

func TestSegmentRoundTripUnindexed(t *testing.T) {
	d := &SegmentData{ID: 7, Events: testEvents(10)}
	got, err := DecodeSegment(EncodeSegment(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.Indexed || got.PostingSub != nil {
		t.Fatal("unindexed segment decoded with indexes")
	}
	if !reflect.DeepEqual(got.Events, d.Events) {
		t.Fatal("events differ")
	}
}

// Every clipped prefix and every flipped byte must produce an error,
// never a panic and never silent success.
func TestSegmentDecodeCorrupt(t *testing.T) {
	buf := EncodeSegment(testSegment(25))
	for _, cut := range []int{0, 3, 4, 10, 20, len(buf) / 2, len(buf) - 5, len(buf) - 1} {
		if _, err := DecodeSegment(buf[:cut]); err == nil {
			t.Fatalf("clip at %d of %d: no error", cut, len(buf))
		}
	}
	for _, pos := range []int{5, 30, 200, len(buf) - 10} {
		bad := append([]byte(nil), buf...)
		bad[pos] ^= 0xff
		if _, err := DecodeSegment(bad); err == nil {
			t.Fatalf("flip at %d: no error", pos)
		}
	}
}

func TestSegmentFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentFileName(42))
	d := testSegment(50)
	if n, err := WriteSegmentFile(path, d); err != nil || n == 0 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	got, err := ReadSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, d.Events) {
		t.Fatal("events differ after file round trip")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); err != ErrNoManifest {
		t.Fatalf("empty dir: got %v, want ErrNoManifest", err)
	}
	m := &Manifest{
		Edition:     3,
		NextSegID:   9,
		NextEventID: 1234,
		NextSeq:     map[uint32]uint64{1: 10, 2: 20},
		Procs:       []sysmon.Process{{PID: 1, ExeName: "cmd.exe"}},
		Files:       []sysmon.File{{Path: "/etc/passwd"}},
		Conns:       []sysmon.Netconn{{SrcIP: "10.0.0.1", DstPort: 443, Protocol: "tcp"}},
		Segments: []SegmentRef{
			{ID: 1, AgentID: 1, File: SegmentFileName(1), Events: 100, MinEventID: 1, MaxEventID: 100},
			{ID: 2, AgentID: 1, File: SegmentFileName(2), Events: 50, MinEventID: 101, MaxEventID: 150},
		},
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest differs after round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestManifestDecodeCorrupt(t *testing.T) {
	buf, err := EncodeManifest(&Manifest{Edition: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 11, len(buf) - 1} {
		if _, err := DecodeManifest(buf[:cut]); err == nil {
			t.Fatalf("clip at %d: no error", cut)
		}
	}
	bad := append([]byte(nil), buf...)
	bad[14] ^= 0xff
	if _, err := DecodeManifest(bad); err == nil {
		t.Fatal("flipped payload byte: no error")
	}
}

func walRecs(n int) []Rec {
	recs := []Rec{
		{Kind: RecProc, Proc: sysmon.Process{PID: 7, ExeName: "osql.exe", Path: `C:\osql.exe`, User: "svc", CmdLine: "osql -i x"}},
		{Kind: RecFile, File: sysmon.File{Path: "/tmp/backup1.dmp", Owner: "root"}},
		{Kind: RecConn, Conn: sysmon.Netconn{SrcIP: "10.0.0.2", SrcPort: 5555, DstIP: "8.8.8.8", DstPort: 53, Protocol: "udp"}},
	}
	for _, ev := range testEvents(n) {
		recs = append(recs, Rec{Kind: RecEvent, Event: ev})
	}
	return recs
}

func replayAll(t *testing.T, path string) ([]Rec, *WAL) {
	t.Helper()
	var got []Rec
	w, err := OpenWAL(path, func(r Rec) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	return got, w
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALName)
	w, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := walRecs(20)
	if err := w.Append(recs[:5], false); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[5:], true); err != nil {
		t.Fatal(err)
	}
	if w.Records() != uint64(len(recs)) {
		t.Fatalf("records = %d, want %d", w.Records(), len(recs))
	}
	w.Close()

	got, w2 := replayAll(t, path)
	defer w2.Close()
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay differs: got %d recs, want %d", len(got), len(recs))
	}
	if w2.Records() != uint64(len(recs)) || w2.Size() == 0 {
		t.Fatalf("reopened WAL counters: %d recs, %d bytes", w2.Records(), w2.Size())
	}
}

// A crash mid-append leaves a torn final record: replay must deliver
// every record before the tear and the reopened log must truncate the
// garbage so later appends extend a clean file.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALName)
	w, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := walRecs(10)
	if err := w.Append(recs, true); err != nil {
		t.Fatal(err)
	}
	full := w.Size()
	w.Close()

	for _, chop := range []int64{1, 3, 7} {
		dst := filepath.Join(t.TempDir(), WALName)
		buf, _ := os.ReadFile(path)
		if err := os.WriteFile(dst, buf[:full-chop], 0o644); err != nil {
			t.Fatal(err)
		}
		got, w2 := replayAll(t, dst)
		if len(got) != len(recs)-1 {
			t.Fatalf("chop %d: replayed %d, want %d", chop, len(got), len(recs)-1)
		}
		if !reflect.DeepEqual(got, recs[:len(recs)-1]) {
			t.Fatalf("chop %d: surviving records differ", chop)
		}
		// the tail was truncated; appending and replaying again must
		// see the old records plus the new one, with no gap
		if err := w2.Append(recs[:1], true); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		got2, w3 := replayAll(t, dst)
		w3.Close()
		if len(got2) != len(recs) {
			t.Fatalf("chop %d: after repair append, replayed %d, want %d", chop, len(got2), len(recs))
		}
	}
}

// A corrupted byte inside an earlier record stops replay at that
// record: the log is only trusted up to the first bad frame.
func TestWALCorruptMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALName)
	w, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecs(10), true); err != nil {
		t.Fatal(err)
	}
	w.Close()
	buf, _ := os.ReadFile(path)
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, w2 := replayAll(t, path)
	w2.Close()
	if len(got) == 0 || len(got) >= len(walRecs(10)) {
		t.Fatalf("replayed %d records through a mid-file corruption", len(got))
	}
}

func TestWALTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALName)
	w, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecs(5), false); err != nil {
		t.Fatal(err)
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 || w.Records() != 0 {
		t.Fatalf("after truncate: %d bytes, %d records", w.Size(), w.Records())
	}
	if err := w.Append(walRecs(2), true); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, w2 := replayAll(t, path)
	w2.Close()
	if len(got) != len(walRecs(2)) {
		t.Fatalf("after truncate+append: replayed %d, want %d", len(got), len(walRecs(2)))
	}
}
