//go:build !unix

package durable

// LockDir is a no-op on platforms without flock semantics: the
// single-writer assumption is then enforced only by process discipline.
func LockDir(dir string) (*DirLock, error) { return &DirLock{}, nil }

// DirLock holds a directory's exclusive lock until Release.
type DirLock struct{}

// Release drops the lock. Safe to call more than once.
func (l *DirLock) Release() error { return nil }
