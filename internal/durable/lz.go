package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements the two block codecs of the v2 segment format.
// Both are dependency-free and tuned for the shapes event columns
// actually take:
//
//   - lz: a byte-oriented LZ77 codec in the LZ4 family (greedy hash
//     matcher, 64 KiB window, control-byte token stream). Event columns
//     are full of short repeats — interned entity IDs, agent IDs, and
//     op codes recur within a block — so a fast match-copy codec
//     shrinks them severalfold at memcpy-class decode speed.
//   - delta: zigzag-varint deltas for the monotone u64 columns (event
//     ID, per-agent sequence), which compress to ~1 byte per value.
//
// Codec IDs are stored per block in the segment's block directory.
const (
	CodecRaw   uint8 = 0 // verbatim bytes
	CodecLZ    uint8 = 1 // lz token stream
	CodecDelta uint8 = 2 // zigzag-varint deltas over u64 values
)

// ErrCorrupt is the sentinel wrapped by every decode-time integrity
// failure in the v2 segment reader (checksum mismatches, malformed
// token streams, impossible directory entries). errors.Is(err,
// ErrCorrupt) distinguishes bad bytes from I/O errors.
var ErrCorrupt = errors.New("durable: corrupt segment data")

// corruptf builds a typed corruption error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// lz token stream: a sequence of tokens, each introduced by one control
// byte c. c < 0x80 is a literal run of c+1 bytes (1..128), which follow
// verbatim. c >= 0x80 is a match of length (c&0x7F)+lzMinMatch
// (4..131) copied from `distance` bytes back in the output, with the
// u16 little-endian distance (1..65535) following the control byte.
// Matches may overlap their output (distance < length), which is what
// encodes runs.
const (
	lzMinMatch  = 4
	lzMaxMatch  = 127 + lzMinMatch
	lzMaxLit    = 128
	lzWindow    = 1 << 16
	lzHashBits  = 14
	lzHashShift = 32 - lzHashBits
)

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> lzHashShift
}

// lzCompress encodes src and returns the token stream, or nil when the
// encoded form would not be smaller than src (the caller then stores
// the block raw). Empty input encodes to nil.
func lzCompress(src []byte) []byte {
	n := len(src)
	if n < lzMinMatch+1 {
		return nil
	}
	var table [1 << lzHashBits]int32
	for i := range table {
		table[i] = -1
	}
	// A compressed block must save at least one byte to be worth the
	// codec dispatch; give up as soon as dst can no longer win.
	dst := make([]byte, 0, n-1)
	limit := n - 1

	emitLiterals := func(lit []byte) bool {
		for len(lit) > 0 {
			run := len(lit)
			if run > lzMaxLit {
				run = lzMaxLit
			}
			if len(dst)+1+run > limit {
				return false
			}
			dst = append(dst, byte(run-1))
			dst = append(dst, lit[:run]...)
			lit = lit[run:]
		}
		return true
	}

	litStart := 0
	i := 0
	for i+lzMinMatch <= n {
		h := lzHash(binary.LittleEndian.Uint32(src[i:]))
		cand := int(table[h])
		table[h] = int32(i)
		if cand < 0 || i-cand >= lzWindow ||
			binary.LittleEndian.Uint32(src[cand:]) != binary.LittleEndian.Uint32(src[i:]) {
			i++
			continue
		}
		// extend the match
		mlen := lzMinMatch
		for i+mlen < n && mlen < lzMaxMatch && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		if !emitLiterals(src[litStart:i]) {
			return nil
		}
		if len(dst)+3 > limit {
			return nil
		}
		dst = append(dst, 0x80|byte(mlen-lzMinMatch))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(i-cand))
		// seed the table inside the match so adjacent repeats chain
		for j := i + 1; j < i+mlen && j+lzMinMatch <= n; j += 2 {
			table[lzHash(binary.LittleEndian.Uint32(src[j:]))] = int32(j)
		}
		i += mlen
		litStart = i
	}
	if !emitLiterals(src[litStart:]) {
		return nil
	}
	return dst
}

// lzDecompress decodes a token stream produced by lzCompress into dst
// (which must have capacity for rawLen; its length is set to rawLen on
// success). Every read and copy is bounds-checked: corrupt input
// returns a typed error, never panics or over-reads.
func lzDecompress(dst, src []byte, rawLen int) ([]byte, error) {
	dst = dst[:0]
	for s := 0; s < len(src); {
		c := src[s]
		s++
		if c < 0x80 {
			run := int(c) + 1
			if s+run > len(src) || len(dst)+run > rawLen {
				return nil, corruptf("lz literal run overflows block")
			}
			dst = append(dst, src[s:s+run]...)
			s += run
			continue
		}
		mlen := int(c&0x7F) + lzMinMatch
		if s+2 > len(src) {
			return nil, corruptf("lz match truncated")
		}
		dist := int(binary.LittleEndian.Uint16(src[s:]))
		s += 2
		if dist == 0 || dist > len(dst) || len(dst)+mlen > rawLen {
			return nil, corruptf("lz match distance %d at output %d", dist, len(dst))
		}
		// byte-wise copy: overlapping matches (dist < mlen) must see
		// the bytes they just produced
		pos := len(dst) - dist
		for k := 0; k < mlen; k++ {
			dst = append(dst, dst[pos+k])
		}
	}
	if len(dst) != rawLen {
		return nil, corruptf("lz block decoded to %d bytes, want %d", len(dst), rawLen)
	}
	return dst, nil
}

// deltaEncode encodes src — little-endian u64 values — as the first
// value (uvarint) followed by zigzag-varint deltas. Returns nil when
// the encoding would not be smaller, or when src is not a whole number
// of u64s.
func deltaEncode(src []byte) []byte {
	if len(src) == 0 || len(src)%8 != 0 {
		return nil
	}
	dst := make([]byte, 0, len(src)/2)
	prev := binary.LittleEndian.Uint64(src)
	dst = binary.AppendUvarint(dst, prev)
	for off := 8; off < len(src); off += 8 {
		v := binary.LittleEndian.Uint64(src[off:])
		d := int64(v - prev)
		dst = binary.AppendVarint(dst, d)
		prev = v
		if len(dst) >= len(src) {
			return nil
		}
	}
	if len(dst) >= len(src) {
		return nil
	}
	return dst
}

// deltaDecode reverses deltaEncode into dst (capacity >= rawLen).
func deltaDecode(dst, src []byte, rawLen int) ([]byte, error) {
	if rawLen%8 != 0 {
		return nil, corruptf("delta block raw length %d not a multiple of 8", rawLen)
	}
	dst = dst[:0]
	v, s := binary.Uvarint(src)
	if s <= 0 {
		return nil, corruptf("delta block truncated")
	}
	dst = binary.LittleEndian.AppendUint64(dst, v)
	for s < len(src) {
		if len(dst) >= rawLen {
			return nil, corruptf("delta block overflows raw length %d", rawLen)
		}
		d, k := binary.Varint(src[s:])
		if k <= 0 {
			return nil, corruptf("delta block truncated")
		}
		s += k
		v += uint64(d)
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	if len(dst) != rawLen {
		return nil, corruptf("delta block decoded to %d bytes, want %d", len(dst), rawLen)
	}
	return dst, nil
}
