package durable

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeV2 writes a fresh v2 segment file for d and opens a reader on it.
func writeV2(t *testing.T, d *SegmentData, compress bool) (string, *SegmentReader) {
	t.Helper()
	path := filepath.Join(t.TempDir(), SegmentFileName(d.ID))
	if _, err := WriteSegmentFileV2(path, d, compress); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenSegmentReader(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, rd
}

func TestSegmentV2RoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		// 2500 spans three blocks with a ragged tail; 1024 is exactly one.
		for _, n := range []int{1, 100, 1024, 2500} {
			d := testSegment(n)
			_, rd := writeV2(t, d, compress)
			if rd.ID != d.ID || rd.AgentID != d.AgentID || rd.Bucket != d.Bucket || rd.Count != n {
				t.Fatalf("compress=%v n=%d: identity differs: %+v", compress, n, rd)
			}
			if !rd.Indexed || rd.Compressed != compress {
				t.Fatalf("compress=%v n=%d: flags indexed=%v compressed=%v", compress, n, rd.Indexed, rd.Compressed)
			}
			if rd.MinEventID != 1 || rd.MaxEventID != uint64(n) {
				t.Fatalf("compress=%v n=%d: event-ID bounds %d..%d", compress, n, rd.MinEventID, rd.MaxEventID)
			}
			evs, err := rd.MaterializeEvents()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(evs, d.Events) {
				t.Fatalf("compress=%v n=%d: events differ after round trip", compress, n)
			}
			sub, obj, err := rd.ReadIndexes()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sub, d.PostingSub) || !reflect.DeepEqual(obj, d.PostingObj) {
				t.Fatalf("compress=%v n=%d: postings differ after round trip", compress, n)
			}
			if !reflect.DeepEqual(rd.OpCount, d.OpCount) {
				t.Fatalf("compress=%v n=%d: op histogram differs", compress, n)
			}
			// The scan-key and timestamp columns must be whole, raw, and
			// contiguous — that is the zero-copy contract the batch scan
			// kernel depends on.
			keys, err := rd.Column(ColKey)
			if err != nil {
				t.Fatal(err)
			}
			ts, err := rd.Column(ColStartTS)
			if err != nil {
				t.Fatal(err)
			}
			for i, ev := range d.Events {
				wantKey := ScanKey(ev.AgentID, uint16(ev.Op), uint8(ev.ObjType))
				if got := binary.LittleEndian.Uint64(keys[i*8:]); got != wantKey {
					t.Fatalf("compress=%v n=%d: key[%d] = %#x, want %#x", compress, n, i, got, wantKey)
				}
				if got := int64(binary.LittleEndian.Uint64(ts[i*8:])); got != ev.StartTS {
					t.Fatalf("compress=%v n=%d: ts[%d] = %d, want %d", compress, n, i, got, ev.StartTS)
				}
			}
		}
	}
}

func TestSegmentV2VersionDispatch(t *testing.T) {
	dir := t.TempDir()
	d := testSegment(64)
	p1 := filepath.Join(dir, SegmentFileName(1))
	p2 := filepath.Join(dir, SegmentFileName(2))
	if _, err := WriteSegmentFile(p1, d); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSegmentFileV2(p2, d, true); err != nil {
		t.Fatal(err)
	}
	if v, err := SegmentFileVersion(p1); err != nil || v != 1 {
		t.Fatalf("v1 file: version %d err %v", v, err)
	}
	if v, err := SegmentFileVersion(p2); err != nil || v != 2 {
		t.Fatalf("v2 file: version %d err %v", v, err)
	}
	op1, err := OpenSegment(p1)
	if err != nil || op1.V1 == nil || op1.V2 != nil {
		t.Fatalf("open v1: %+v err %v", op1, err)
	}
	op2, err := OpenSegment(p2)
	if err != nil || op2.V2 == nil || op2.V1 != nil {
		t.Fatalf("open v2: %+v err %v", op2, err)
	}
	if !reflect.DeepEqual(op1.V1.Events, d.Events) {
		t.Fatal("v1 events differ")
	}
	// In-place upgrade: replace the v1 file with a v2 image and reread.
	if err := ReplaceSegmentFile(p1, EncodeSegmentV2(d, true)); err != nil {
		t.Fatal(err)
	}
	if v, _ := SegmentFileVersion(p1); v != 2 {
		t.Fatalf("after replace: version %d", v)
	}
	rd, err := OpenSegmentReader(p1)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := rd.MaterializeEvents()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, d.Events) {
		t.Fatal("upgraded events differ")
	}
}

// Every targeted corruption — a flipped byte in a compressed block, in a
// raw block, in the block directory, in the index section, in the
// header, or in the footer — must surface as a typed ErrCorrupt (either
// at open or at first read), never a panic and never silently bad rows.
func TestSegmentV2Corruption(t *testing.T) {
	d := testSegment(2500)
	path, rd := writeV2(t, d, true)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dirOff := binary.LittleEndian.Uint64(orig[len(orig)-seg2FooterSize:])

	cases := []struct {
		name string
		pos  int
	}{
		{"header magic", 0},
		{"header count", 28},
		{"compressed id block", int(rd.blocks[ColID][0].off) + 3},
		{"raw key block", int(rd.blocks[ColKey][1].off) + 5},
		{"raw ts block", int(rd.blocks[ColStartTS][0].off) + 9},
		{"index section", int(rd.idx.off) + 2},
		{"block directory", int(dirOff) + 12},
		{"footer", len(orig) - 20},
		{"footer magic", len(orig) - 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := append([]byte(nil), orig...)
			bad[tc.pos] ^= 0xff
			bp := filepath.Join(t.TempDir(), SegmentFileName(42))
			if err := os.WriteFile(bp, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			crd, err := OpenSegmentReader(bp)
			if err == nil {
				// Structural metadata was intact; the flip must surface
				// on the first read that touches the damaged bytes. The
				// scan-key column is derived during materialization, so
				// probe it explicitly the way the batch kernel does.
				if _, err = crd.MaterializeEvents(); err == nil {
					if _, err = crd.Column(ColKey); err == nil {
						_, _, err = crd.ReadIndexes()
					}
				}
			}
			if err == nil {
				t.Fatalf("flip at %d: no error", tc.pos)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %d: error %v is not ErrCorrupt", tc.pos, err)
			}
		})
	}

	// Clipped files must fail cleanly at open.
	for _, cut := range []int{0, 4, seg2HeaderSize, len(orig) / 2, len(orig) - 1} {
		bp := filepath.Join(t.TempDir(), SegmentFileName(43))
		if err := os.WriteFile(bp, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSegmentReader(bp); err == nil {
			t.Fatalf("clip at %d of %d: no error", cut, len(orig))
		}
	}
}

// FuzzSegmentDecode drives arbitrary bytes through the version dispatch
// and the full v2 lazy read path: whatever the mutation, the reader must
// return an error or correct data — never panic, never index out of
// range.
func FuzzSegmentDecode(f *testing.F) {
	small := testSegment(5)
	big := testSegment(1500)
	f.Add(EncodeSegmentV2(small, true))
	f.Add(EncodeSegmentV2(small, false))
	f.Add(EncodeSegmentV2(big, true))
	f.Add(EncodeSegment(small))
	buf := EncodeSegmentV2(big, true)
	f.Add(buf[:len(buf)/2])
	f.Add(buf[:seg2HeaderSize])
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		op, err := OpenSegment(path)
		if err != nil {
			return
		}
		if op.V2 == nil {
			return
		}
		rd := op.V2
		if _, err := rd.MaterializeEvents(); err != nil {
			return
		}
		rd.ReadIndexes()
		rd.Column(ColKey)
		rd.Column(ColStartTS)
	})
}
