package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"github.com/aiql/aiql/internal/sysmon"
)

// The write-ahead log makes committed-but-unsealed events durable
// between seals. Records are framed [u32 payload length | u32 crc32 |
// payload] and appended in commit order; a commit appends its
// dictionary deltas (entities interned since the last logged point)
// followed by its events, so replaying the log front to back
// reconstructs exactly the interning and append sequence the live
// store performed. A crash mid-write leaves a torn final record: replay
// stops at the first frame whose length or checksum does not line up,
// OpenWAL truncates the tail back to the last durable frame, and every
// record before the tear is recovered.

// RecKind discriminates WAL record payloads.
type RecKind uint8

// WAL record kinds.
const (
	RecInvalid RecKind = iota
	// RecProc/RecFile/RecConn append one entity to the corresponding
	// dictionary table (dictionary tables are append-only, so a delta
	// is just the new entries in intern order).
	RecProc
	RecFile
	RecConn
	// RecEvent appends one committed event (entity references are IDs
	// into the dictionary as of this point in the log).
	RecEvent
)

// Rec is one WAL record; Kind selects which payload field is set.
type Rec struct {
	Kind RecKind
	// ID is the entity's dictionary ID for entity records. Replay uses
	// it to skip entries a newer manifest already captured (manifests
	// are written more often than the WAL is truncated), keeping the
	// log idempotent with respect to the manifest.
	ID    sysmon.EntityID
	Proc  sysmon.Process
	File  sysmon.File
	Conn  sysmon.Netconn
	Event sysmon.Event
}

// walFrameOverhead is the per-record framing cost: length + crc.
const walFrameOverhead = 8

// maxWALRecord bounds a single record's payload; frames claiming more
// are treated as corruption rather than allocated.
const maxWALRecord = 1 << 20

func encodeRec(w *byteWriter, r *Rec) {
	w.u8(uint8(r.Kind))
	switch r.Kind {
	case RecProc:
		w.u32(uint32(r.ID))
		w.u32(r.Proc.PID)
		w.str(r.Proc.ExeName)
		w.str(r.Proc.Path)
		w.str(r.Proc.User)
		w.str(r.Proc.CmdLine)
	case RecFile:
		w.u32(uint32(r.ID))
		w.str(r.File.Path)
		w.str(r.File.Owner)
	case RecConn:
		w.u32(uint32(r.ID))
		w.str(r.Conn.SrcIP)
		w.u16(r.Conn.SrcPort)
		w.str(r.Conn.DstIP)
		w.u16(r.Conn.DstPort)
		w.str(r.Conn.Protocol)
	case RecEvent:
		e := &r.Event
		w.u64(e.ID)
		w.u32(e.AgentID)
		w.u32(uint32(e.Subject))
		w.u16(uint16(e.Op))
		w.u8(uint8(e.ObjType))
		w.u32(uint32(e.Object))
		w.i64(e.StartTS)
		w.i64(e.EndTS)
		w.u64(e.Amount)
		w.u64(e.Seq)
	}
}

func decodeRec(payload []byte) (Rec, error) {
	r := &byteReader{buf: payload}
	var rec Rec
	rec.Kind = RecKind(r.u8())
	switch rec.Kind {
	case RecProc:
		rec.ID = sysmon.EntityID(r.u32())
		rec.Proc.PID = r.u32()
		rec.Proc.ExeName = r.str()
		rec.Proc.Path = r.str()
		rec.Proc.User = r.str()
		rec.Proc.CmdLine = r.str()
	case RecFile:
		rec.ID = sysmon.EntityID(r.u32())
		rec.File.Path = r.str()
		rec.File.Owner = r.str()
	case RecConn:
		rec.ID = sysmon.EntityID(r.u32())
		rec.Conn.SrcIP = r.str()
		rec.Conn.SrcPort = r.u16()
		rec.Conn.DstIP = r.str()
		rec.Conn.DstPort = r.u16()
		rec.Conn.Protocol = r.str()
	case RecEvent:
		e := &rec.Event
		e.ID = r.u64()
		e.AgentID = r.u32()
		e.Subject = sysmon.EntityID(r.u32())
		e.Op = sysmon.Operation(r.u16())
		e.ObjType = sysmon.EntityType(r.u8())
		e.Object = sysmon.EntityID(r.u32())
		e.StartTS = r.i64()
		e.EndTS = r.i64()
		e.Amount = r.u64()
		e.Seq = r.u64()
	default:
		return rec, fmt.Errorf("durable: unknown WAL record kind %d", rec.Kind)
	}
	return rec, r.err("WAL record")
}

// WAL is an open write-ahead log. Appends are serialized internally;
// the caller decides per append whether to fsync (acknowledged
// durability) or just flush to the OS (crash-of-process durability).
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64
	records uint64
	// syncs counts append-path fsyncs (Append with sync, and Sync). The
	// group-commit tests assert on it: a bulk ingest must cost one fsync
	// per batch, not one per commit.
	syncs uint64
}

// OpenWAL opens (creating if absent) the log at path, replaying every
// intact record through apply in order. A torn or corrupt tail — the
// signature of a crash mid-append — is truncated back to the last
// intact frame so subsequent appends extend a clean log; the records
// before the tear are all delivered. apply may be nil to skip replay
// delivery (the scan still locates the tail).
func OpenWAL(path string, apply func(Rec) error) (*WAL, error) {
	buf, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("durable: %w", err)
	}
	good := 0
	var records uint64
	for off := 0; off+walFrameOverhead <= len(buf); {
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		crc := binary.LittleEndian.Uint32(buf[off+4:])
		if n <= 0 || n > maxWALRecord || off+walFrameOverhead+n > len(buf) {
			break // torn final record
		}
		payload := buf[off+walFrameOverhead : off+walFrameOverhead+n]
		if checksum(payload) != crc {
			break // corrupt tail
		}
		rec, err := decodeRec(payload)
		if err != nil {
			break // undecodable: treat as the tear point
		}
		if apply != nil {
			if err := apply(rec); err != nil {
				return nil, err
			}
		}
		off += walFrameOverhead + n
		good = off
		records++
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if int64(good) != int64(len(buf)) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: truncate torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &WAL{f: f, path: path, size: int64(good), records: records}, nil
}

// Append writes the records as one contiguous run of frames. With sync
// the data is fsynced before returning — the commit is then durable
// against power loss, which is what makes it "acknowledged".
func (w *WAL) Append(recs []Rec, sync bool) error {
	if len(recs) == 0 {
		return nil
	}
	enc := &byteWriter{}
	frame := &byteWriter{buf: make([]byte, 0, 256)}
	for i := range recs {
		frame.buf = frame.buf[:0]
		encodeRec(frame, &recs[i])
		enc.u32(uint32(len(frame.buf)))
		enc.u32(checksum(frame.buf))
		enc.buf = append(enc.buf, frame.buf...)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("durable: WAL is closed")
	}
	if _, err := w.f.Write(enc.buf); err != nil {
		return fmt.Errorf("durable: WAL append: %w", err)
	}
	w.size += int64(len(enc.buf))
	w.records += uint64(len(recs))
	if sync {
		w.syncs++
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("durable: WAL sync: %w", err)
		}
	}
	return nil
}

// Truncate discards the log's contents: every event it covered is now
// durable in manifest-listed segment files.
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("durable: WAL is closed")
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: WAL truncate: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: WAL sync: %w", err)
	}
	w.size = 0
	w.records = 0
	return nil
}

// Size returns the log's current byte length.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Records returns the number of records in the log.
func (w *WAL) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Sync fsyncs the log.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.syncs++
	return w.f.Sync()
}

// Syncs returns the number of append-path fsyncs issued so far.
func (w *WAL) Syncs() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Close fsyncs and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.f.Sync()
	err := w.f.Close()
	w.f = nil
	return err
}
