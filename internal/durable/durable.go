// Package durable implements the on-disk primitives of the AIQL durable
// storage subsystem: file-per-segment snapshots, a manifest naming the
// live segment set, and a write-ahead log covering the unsealed tail.
//
// The layout follows the paper's argument that attack-investigation
// queries become efficient only when monitoring data is stored in a
// layout purpose-built for its temporal/spatial locality instead of
// being replayed from flat logs: a sealed segment is written exactly
// once as an immutable file — columnar event blocks plus the segment's
// serialized posting indexes plus a checksummed footer carrying its
// min/max event ID — and loaded back without any re-chunking,
// re-interning, or re-indexing. The MANIFEST records, per edition, the
// live segment files together with the entity dictionary tables and the
// store's ID counters; the WAL makes committed-but-unsealed events
// durable between seals. Crash recovery is manifest load + WAL replay
// of the tail; a torn final WAL record (the signature of a crash mid
// write) truncates cleanly instead of poisoning the replay.
//
// The package speaks only sysmon types and bytes; the eventstore layers
// its LSM store on top (see eventstore.Open), and the background
// compactor rewrites merged segments through the same file format.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Well-known file names inside a durable store directory.
const (
	// ManifestName is the current manifest file.
	ManifestName = "MANIFEST"
	// manifestTmpName stages a manifest edition before the atomic rename.
	manifestTmpName = "MANIFEST.tmp"
	// WALName is the write-ahead log of committed-but-unsealed events.
	WALName = "wal.log"
)

// SegmentFileName returns the canonical file name for a segment id.
func SegmentFileName(id uint64) string {
	return fmt.Sprintf("seg-%08d.seg", id)
}

// crcTable is the Castagnoli table used for every checksum in the
// subsystem (segment blocks, manifest payload, WAL records).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// byteWriter accumulates little-endian fields for one on-disk section.
type byteWriter struct{ buf []byte }

func (w *byteWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *byteWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *byteWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *byteWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *byteWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *byteWriter) str(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// byteReader decodes little-endian fields; it records the first
// out-of-bounds read instead of panicking, so corrupt input surfaces as
// a descriptive error from err().
type byteReader struct {
	buf  []byte
	off  int
	fail bool
	// backing, when set, makes str return substrings of one shared
	// string instead of allocating per field — the entity-table-heavy
	// manifest decode drops tens of thousands of allocations this way,
	// at the cost of pinning the whole image for the tables' lifetime.
	backing string
}

// zeroCopyStrings converts the image to one string up front so every
// str call afterwards is allocation-free.
func (r *byteReader) zeroCopyStrings() { r.backing = string(r.buf) }

func (r *byteReader) take(n int) []byte {
	if r.fail || n < 0 || r.off+n > len(r.buf) {
		r.fail = true
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *byteReader) i64() int64 { return int64(r.u64()) }

func (r *byteReader) str() string {
	n, sz := binary.Uvarint(r.buf[r.off:])
	if sz <= 0 {
		r.fail = true
		return ""
	}
	r.off += sz
	start := r.off
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	if r.backing != "" {
		return r.backing[start : start+int(n)]
	}
	return string(b)
}

func (r *byteReader) err(what string) error {
	if r.fail {
		return fmt.Errorf("durable: truncated %s", what)
	}
	return nil
}

// writeFileAtomic writes data to path via a temporary file, fsync, and
// rename, then fsyncs the directory so the rename itself is durable.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("durable: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: rename %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making recent creates/renames durable.
// Best effort on platforms where directories cannot be fsynced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() // some filesystems reject directory fsync; that's fine
	return nil
}
