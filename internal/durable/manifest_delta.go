package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"github.com/aiql/aiql/internal/sysmon"
)

// ManifestDeltaName is the incremental-edition log beside MANIFEST.
const ManifestDeltaName = "MANIFEST.delta"

// A full manifest rewrite is O(dictionary): the entity tables dominate
// it and grow with the dataset, so rewriting the whole file per seal
// makes seal cost scale with total history. The delta log makes
// editions incremental: each seal appends one frame carrying only what
// changed — the new segment refs, the dictionary rows interned since
// the last edition, and the updated counters. The on-disk manifest is
// then base MANIFEST + every intact delta frame with a consecutive
// edition above it. Compaction (which removes segments — something a
// delta cannot express) and recovery still write full manifests, and a
// full write truncates the delta log, so the log's length is bounded by
// the seals between compactions.
//
// Frames reuse the WAL's [u32 len | u32 crc | payload] framing: a crash
// mid-append leaves a torn tail that replay detects and truncates. A
// crash between "full manifest written" and "delta log truncated"
// leaves stale frames whose editions the new base already covers;
// replay skips frames with edition <= base and tolerates a log that
// starts mid-sequence.

// ManifestDelta is one incremental manifest edition: everything a seal
// changes relative to the previous edition.
type ManifestDelta struct {
	// Edition this delta produces; applies only on top of Edition-1.
	Edition     uint64
	NextSegID   uint64
	NextEventID uint64
	// NextSeq is the full per-agent sequence table (small: one entry
	// per agent, not per event).
	NextSeq map[uint32]uint64
	// Dictionary rows appended since the previous edition, in intern
	// order.
	Procs []sysmon.Process
	Files []sysmon.File
	Conns []sysmon.Netconn
	// Segments newly persisted by this edition, in chain order.
	Segments []SegmentRef
}

func encodeManifestDelta(d *ManifestDelta) []byte {
	w := &byteWriter{buf: make([]byte, 0, 512)}
	w.u64(d.Edition)
	w.u64(d.NextSegID)
	w.u64(d.NextEventID)
	w.u32(uint32(len(d.NextSeq)))
	for agent, seq := range d.NextSeq {
		w.u32(agent)
		w.u64(seq)
	}
	w.u32(uint32(len(d.Procs)))
	for i := range d.Procs {
		p := &d.Procs[i]
		w.u32(p.PID)
		w.str(p.ExeName)
		w.str(p.Path)
		w.str(p.User)
		w.str(p.CmdLine)
	}
	w.u32(uint32(len(d.Files)))
	for i := range d.Files {
		f := &d.Files[i]
		w.str(f.Path)
		w.str(f.Owner)
	}
	w.u32(uint32(len(d.Conns)))
	for i := range d.Conns {
		c := &d.Conns[i]
		w.str(c.SrcIP)
		w.u16(c.SrcPort)
		w.str(c.DstIP)
		w.u16(c.DstPort)
		w.str(c.Protocol)
	}
	w.u32(uint32(len(d.Segments)))
	for i := range d.Segments {
		r := &d.Segments[i]
		w.u64(r.ID)
		w.u32(r.AgentID)
		w.i64(r.Bucket)
		w.str(r.File)
		w.u32(uint32(r.Events))
		w.i64(r.MinTS)
		w.i64(r.MaxTS)
		w.u64(r.MinEventID)
		w.u64(r.MaxEventID)
		w.u8(r.Format)
	}
	return w.buf
}

func decodeManifestDelta(payload []byte) (*ManifestDelta, error) {
	r := &byteReader{buf: payload}
	r.zeroCopyStrings()
	d := &ManifestDelta{
		Edition:     r.u64(),
		NextSegID:   r.u64(),
		NextEventID: r.u64(),
	}
	nSeq := int(r.u32())
	if r.fail || nSeq > len(payload) {
		return nil, fmt.Errorf("durable: corrupt manifest delta (sequence table)")
	}
	if nSeq > 0 {
		d.NextSeq = make(map[uint32]uint64, nSeq)
		for i := 0; i < nSeq; i++ {
			agent := r.u32()
			d.NextSeq[agent] = r.u64()
		}
	}
	nProcs := int(r.u32())
	if r.fail || nProcs > len(payload) {
		return nil, fmt.Errorf("durable: corrupt manifest delta (process table)")
	}
	if nProcs > 0 {
		d.Procs = make([]sysmon.Process, nProcs)
		for i := range d.Procs {
			p := &d.Procs[i]
			p.PID = r.u32()
			p.ExeName = r.str()
			p.Path = r.str()
			p.User = r.str()
			p.CmdLine = r.str()
		}
	}
	nFiles := int(r.u32())
	if r.fail || nFiles > len(payload) {
		return nil, fmt.Errorf("durable: corrupt manifest delta (file table)")
	}
	if nFiles > 0 {
		d.Files = make([]sysmon.File, nFiles)
		for i := range d.Files {
			f := &d.Files[i]
			f.Path = r.str()
			f.Owner = r.str()
		}
	}
	nConns := int(r.u32())
	if r.fail || nConns > len(payload) {
		return nil, fmt.Errorf("durable: corrupt manifest delta (connection table)")
	}
	if nConns > 0 {
		d.Conns = make([]sysmon.Netconn, nConns)
		for i := range d.Conns {
			c := &d.Conns[i]
			c.SrcIP = r.str()
			c.SrcPort = r.u16()
			c.DstIP = r.str()
			c.DstPort = r.u16()
			c.Protocol = r.str()
		}
	}
	nSegs := int(r.u32())
	if r.fail || nSegs > len(payload) {
		return nil, fmt.Errorf("durable: corrupt manifest delta (segment table)")
	}
	if nSegs > 0 {
		d.Segments = make([]SegmentRef, nSegs)
		for i := range d.Segments {
			ref := &d.Segments[i]
			ref.ID = r.u64()
			ref.AgentID = r.u32()
			ref.Bucket = r.i64()
			ref.File = r.str()
			ref.Events = int(r.u32())
			ref.MinTS = r.i64()
			ref.MaxTS = r.i64()
			ref.MinEventID = r.u64()
			ref.MaxEventID = r.u64()
			ref.Format = r.u8()
		}
	}
	if err := r.err("manifest delta"); err != nil {
		return nil, err
	}
	return d, nil
}

// AppendManifestDelta appends one framed delta to dir's delta log and
// fsyncs it. The frame is only meaningful once the base MANIFEST it
// stacks on is durable, which the caller guarantees by ordering.
func AppendManifestDelta(dir string, d *ManifestDelta) error {
	payload := encodeManifestDelta(d)
	w := &byteWriter{buf: make([]byte, 0, len(payload)+walFrameOverhead)}
	w.u32(uint32(len(payload)))
	w.u32(checksum(payload))
	w.buf = append(w.buf, payload...)

	f, err := os.OpenFile(filepath.Join(dir, ManifestDeltaName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(w.buf); err != nil {
		f.Close()
		return fmt.Errorf("durable: append manifest delta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: sync manifest delta: %w", err)
	}
	return f.Close()
}

// ApplyManifestDeltas folds dir's delta log into the base manifest,
// mutating m in place, and returns the number of deltas applied.
// Frames with editions the base already covers are skipped (a crash
// between full-manifest write and delta truncation leaves them); a
// torn, corrupt, or non-consecutive tail ends replay and is truncated
// away, exactly like a torn WAL tail.
func ApplyManifestDeltas(dir string, m *Manifest) (int, error) {
	path := filepath.Join(dir, ManifestDeltaName)
	buf, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	applied, good := 0, 0
	for off := 0; off+walFrameOverhead <= len(buf); {
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		crc := binary.LittleEndian.Uint32(buf[off+4:])
		if n <= 0 || n > maxWALRecord || off+walFrameOverhead+n > len(buf) {
			break // torn final frame
		}
		payload := buf[off+walFrameOverhead : off+walFrameOverhead+n]
		if checksum(payload) != crc {
			break // corrupt tail
		}
		d, err := decodeManifestDelta(payload)
		if err != nil {
			break // undecodable: treat as the tear point
		}
		off += walFrameOverhead + n
		if d.Edition <= m.Edition {
			good = off // stale frame the base already covers
			continue
		}
		if d.Edition != m.Edition+1 {
			break // gap: the frames beyond it cannot apply
		}
		m.Edition = d.Edition
		m.NextSegID = d.NextSegID
		m.NextEventID = d.NextEventID
		if len(d.NextSeq) > 0 {
			m.NextSeq = d.NextSeq
		}
		m.Procs = append(m.Procs, d.Procs...)
		m.Files = append(m.Files, d.Files...)
		m.Conns = append(m.Conns, d.Conns...)
		m.Segments = append(m.Segments, d.Segments...)
		good = off
		applied++
	}
	if good != len(buf) {
		if f, ferr := os.OpenFile(path, os.O_WRONLY, 0o644); ferr == nil {
			f.Truncate(int64(good))
			f.Sync()
			f.Close()
		}
	}
	return applied, nil
}

// RemoveManifestDelta truncates the delta log after a full manifest
// rewrite has captured everything the frames carried.
func RemoveManifestDelta(dir string) error {
	err := os.Remove(filepath.Join(dir, ManifestDeltaName))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("durable: %w", err)
	}
	return syncDir(dir)
}

// ManifestDeltaSize returns the delta log's byte length (0 if absent).
func ManifestDeltaSize(dir string) int64 {
	st, err := os.Stat(filepath.Join(dir, ManifestDeltaName))
	if err != nil {
		return 0
	}
	return st.Size()
}
