package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sync"
	"unsafe"

	"github.com/aiql/aiql/internal/sysmon"
)

// v2 segment file layout (all integers little-endian):
//
//	header:    magic "AQS2" | version u32 | segID u64 | agent u32 |
//	           bucket i64 | count u32 | flags u8 | compression u8
//	columns:   NumCols per-attribute column vectors, each split into
//	           blocks of blockLen (1024) events. Blocks are encoded
//	           independently: raw (width-aligned in the file so mapped
//	           bytes cast straight to typed slices), lz (see lz.go), or
//	           zigzag-varint delta for the monotone ID/Seq columns. The
//	           StartTS and scan-key columns are ALWAYS raw: they are the
//	           scan hot path and read zero-copy from the mapping.
//	indexes:   (flags&segFlagIndexed) the serialized subject/object
//	           posting lists, lz-compressed when that wins.
//	directory: blockLen u32 | nBlocks u32 | per column nBlocks x
//	           {off u64, encLen u32, rawLen u32, codec u8, crc u32} |
//	           per-column min/max u64 | op histogram; the whole
//	           directory is crc'd via the footer.
//	footer:    fixed 82 bytes — dirOff u64 | dirLen u32 | dirCrc u32 |
//	           index {off u64, encLen u32, rawLen u32, codec u8,
//	           crc u32} | minEventID u64 | maxEventID u64 | minTS i64 |
//	           maxTS i64 | count u32 | flags u8 | crc u32 | "AQ2E"
//
// Opening a v2 segment reads only header, footer, and directory; column
// blocks stay on disk (or in the page cache, via mmap) until a scan
// touches them. Every block carries its own crc, so corruption is
// detected lazily at first decode with a typed ErrCorrupt error — a
// flipped byte can never panic the reader or leak bad rows.

const (
	seg2Magic       = "AQS2"
	seg2MagicFooter = "AQ2E"
	seg2Version     = 2
	seg2HeaderSize  = 4 + 4 + 8 + 4 + 8 + 4 + 1 + 1
	seg2FooterSize  = 16 + 21 + 32 + 5 + 4 + 4
	seg2BlockLen    = 1024
)

// Column identifiers of the v2 format, in file order.
const (
	ColID = iota
	ColAgent
	ColSubject
	ColOp
	ColObjType
	ColObject
	ColStartTS
	ColEndTS
	ColAmount
	ColSeq
	// ColKey is the packed (agent | op | objtype) scan key consumed by
	// the batch/bitmap scan loop; redundant with its source columns but
	// stored raw so the hot loop reads the mapping directly.
	ColKey
	NumCols
)

// colWidth is the fixed byte width of each column's values.
var colWidth = [NumCols]int{8, 4, 4, 2, 1, 4, 8, 8, 8, 8, 8}

// ScanKey packs agent, operation, and object type into the fused scan
// key stored in ColKey. The eventstore's batch scan compiles filters
// into masked compares against exactly this packing.
func ScanKey(agent uint32, op uint16, objType uint8) uint64 {
	return uint64(agent)<<32 | uint64(op)<<16 | uint64(objType)<<8
}

// blockMeta is one block directory entry.
type blockMeta struct {
	off    uint64
	encLen uint32
	rawLen uint32
	codec  uint8
	crc    uint32
}

// encodeColBlock appends the raw fixed-width encoding of events
// [lo,hi) for one column to dst.
func encodeColBlock(dst []byte, events []sysmon.Event, col, lo, hi int) []byte {
	switch col {
	case ColID:
		for i := lo; i < hi; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, events[i].ID)
		}
	case ColAgent:
		for i := lo; i < hi; i++ {
			dst = binary.LittleEndian.AppendUint32(dst, events[i].AgentID)
		}
	case ColSubject:
		for i := lo; i < hi; i++ {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(events[i].Subject))
		}
	case ColOp:
		for i := lo; i < hi; i++ {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(events[i].Op))
		}
	case ColObjType:
		for i := lo; i < hi; i++ {
			dst = append(dst, uint8(events[i].ObjType))
		}
	case ColObject:
		for i := lo; i < hi; i++ {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(events[i].Object))
		}
	case ColStartTS:
		for i := lo; i < hi; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(events[i].StartTS))
		}
	case ColEndTS:
		for i := lo; i < hi; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(events[i].EndTS))
		}
	case ColAmount:
		for i := lo; i < hi; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, events[i].Amount)
		}
	case ColSeq:
		for i := lo; i < hi; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, events[i].Seq)
		}
	case ColKey:
		for i := lo; i < hi; i++ {
			e := &events[i]
			dst = binary.LittleEndian.AppendUint64(dst, ScanKey(e.AgentID, uint16(e.Op), uint8(e.ObjType)))
		}
	}
	return dst
}

// colValue extracts one column's value of one event as u64 (i64 columns
// keep their bit pattern) for min/max bookkeeping.
func colValue(e *sysmon.Event, col int) uint64 {
	switch col {
	case ColID:
		return e.ID
	case ColAgent:
		return uint64(e.AgentID)
	case ColSubject:
		return uint64(e.Subject)
	case ColOp:
		return uint64(e.Op)
	case ColObjType:
		return uint64(e.ObjType)
	case ColObject:
		return uint64(e.Object)
	case ColStartTS:
		return uint64(e.StartTS)
	case ColEndTS:
		return uint64(e.EndTS)
	case ColAmount:
		return e.Amount
	case ColSeq:
		return e.Seq
	case ColKey:
		return ScanKey(e.AgentID, uint16(e.Op), uint8(e.ObjType))
	}
	return 0
}

// colSigned reports whether a column compares as int64 for min/max.
func colSigned(col int) bool { return col == ColStartTS || col == ColEndTS }

// EncodeSegmentV2 serializes the segment into the v2 block-compressed
// columnar layout. With compress false every block is stored raw (the
// -segment-compression=none configuration).
func EncodeSegmentV2(d *SegmentData, compress bool) []byte {
	d.fillEventIDBounds()
	n := len(d.Events)
	nBlocks := (n + seg2BlockLen - 1) / seg2BlockLen
	w := &byteWriter{buf: make([]byte, 0, seg2HeaderSize+n*64+4096)}
	w.buf = append(w.buf, seg2Magic...)
	w.u32(seg2Version)
	w.u64(d.ID)
	w.u32(d.AgentID)
	w.i64(d.Bucket)
	w.u32(uint32(n))
	var flags uint8
	if d.Indexed {
		flags |= segFlagIndexed
	}
	w.u8(flags)
	var compByte uint8
	if compress {
		compByte = 1
	}
	w.u8(compByte)

	var blocks [NumCols][]blockMeta
	var colMin, colMax [NumCols]uint64
	raw := make([]byte, 0, seg2BlockLen*8)
	for col := 0; col < NumCols; col++ {
		blocks[col] = make([]blockMeta, 0, nBlocks)
		for b := 0; b < nBlocks; b++ {
			lo := b * seg2BlockLen
			hi := min(lo+seg2BlockLen, n)
			raw = encodeColBlock(raw[:0], d.Events, col, lo, hi)
			enc, codec := raw, CodecRaw
			// StartTS and the scan key stay raw unconditionally: they
			// are read zero-copy on every scan.
			if compress && col != ColStartTS && col != ColKey {
				if col == ColID || col == ColSeq {
					if e := deltaEncode(raw); e != nil {
						enc, codec = e, CodecDelta
					}
				}
				if codec == CodecRaw {
					if e := lzCompress(raw); e != nil {
						enc, codec = e, CodecLZ
					}
				}
			}
			if codec == CodecRaw {
				// width-align raw blocks in the file so mapped bytes
				// cast directly to typed slices
				for len(w.buf)%colWidth[col] != 0 {
					w.buf = append(w.buf, 0)
				}
			}
			blocks[col] = append(blocks[col], blockMeta{
				off:    uint64(len(w.buf)),
				encLen: uint32(len(enc)),
				rawLen: uint32(len(raw)),
				codec:  codec,
				crc:    checksum(enc),
			})
			w.buf = append(w.buf, enc...)
		}
		if n > 0 {
			mn, mx := colValue(&d.Events[0], col), colValue(&d.Events[0], col)
			for i := 1; i < n; i++ {
				v := colValue(&d.Events[i], col)
				if colSigned(col) {
					if int64(v) < int64(mn) {
						mn = v
					}
					if int64(v) > int64(mx) {
						mx = v
					}
				} else {
					if v < mn {
						mn = v
					}
					if v > mx {
						mx = v
					}
				}
			}
			colMin[col], colMax[col] = mn, mx
		}
	}

	var idx blockMeta
	if d.Indexed {
		iw := &byteWriter{buf: make([]byte, 0, 16+8*n)}
		writePostings(iw, d.PostingSub)
		writePostings(iw, d.PostingObj)
		enc, codec := iw.buf, CodecRaw
		if compress {
			if e := lzCompress(iw.buf); e != nil {
				enc, codec = e, CodecLZ
			}
		}
		idx = blockMeta{
			off:    uint64(len(w.buf)),
			encLen: uint32(len(enc)),
			rawLen: uint32(len(iw.buf)),
			codec:  codec,
			crc:    checksum(enc),
		}
		w.buf = append(w.buf, enc...)
	}

	dirOff := len(w.buf)
	w.u32(seg2BlockLen)
	w.u32(uint32(nBlocks))
	for col := 0; col < NumCols; col++ {
		for _, m := range blocks[col] {
			w.u64(m.off)
			w.u32(m.encLen)
			w.u32(m.rawLen)
			w.u8(m.codec)
			w.u32(m.crc)
		}
	}
	for col := 0; col < NumCols; col++ {
		w.u64(colMin[col])
		w.u64(colMax[col])
	}
	w.u32(uint32(len(d.OpCount)))
	for _, c := range d.OpCount {
		w.u64(uint64(c))
	}
	dirLen := len(w.buf) - dirOff
	dirCrc := checksum(w.buf[dirOff:])

	footStart := len(w.buf)
	w.u64(uint64(dirOff))
	w.u32(uint32(dirLen))
	w.u32(dirCrc)
	w.u64(idx.off)
	w.u32(idx.encLen)
	w.u32(idx.rawLen)
	w.u8(idx.codec)
	w.u32(idx.crc)
	w.u64(d.MinEventID)
	w.u64(d.MaxEventID)
	var minTS, maxTS int64
	if n > 0 {
		minTS, maxTS = d.Events[0].StartTS, d.Events[n-1].StartTS
	}
	w.i64(minTS)
	w.i64(maxTS)
	w.u32(uint32(n))
	w.u8(flags)
	w.u32(checksum(w.buf[footStart:]))
	w.buf = append(w.buf, seg2MagicFooter...)
	return w.buf
}

// WriteSegmentFileV2 writes the v2 segment image to path (fsynced),
// returning the file's byte size.
func WriteSegmentFileV2(path string, d *SegmentData, compress bool) (int64, error) {
	buf := EncodeSegmentV2(d, compress)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return 0, fmt.Errorf("durable: write segment %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("durable: sync segment %s: %w", path, err)
	}
	return int64(len(buf)), f.Close()
}

// ReplaceSegmentFile atomically replaces path with a new segment image
// (temp file + fsync + rename). Used by the in-place v1→v2 upgrade.
func ReplaceSegmentFile(path string, data []byte) error {
	return writeFileAtomic(path, data)
}

// SegmentFileVersion reads just enough of path to report its format
// version (1 or 2).
func SegmentFileVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, corruptf("segment file %s: short header", path)
	}
	magic, ver := string(hdr[:4]), binary.LittleEndian.Uint32(hdr[4:])
	switch {
	case magic == segMagic && ver == segVersion:
		return 1, nil
	case magic == seg2Magic && ver == seg2Version:
		return 2, nil
	}
	return 0, corruptf("segment file %s: bad magic", path)
}

// SegmentReader is the lazy accessor over one opened v2 segment file.
// Opening parses header, directory, and footer only; column blocks are
// decoded on demand by Block/Column/MaterializeEvents. Slices returned
// zero-copy alias the file mapping and are valid only while the reader
// is reachable.
type SegmentReader struct {
	ID         uint64
	AgentID    uint32
	Bucket     int64
	Count      int
	Indexed    bool
	Compressed bool
	MinEventID uint64
	MaxEventID uint64
	MinTS      int64
	MaxTS      int64
	BlockLen   int
	// OpCount is the persisted operation histogram (nil when the
	// segment was written unindexed).
	OpCount []int
	// ColMin/ColMax are per-column value bounds (bit patterns for the
	// signed timestamp columns).
	ColMin [NumCols]uint64
	ColMax [NumCols]uint64

	h         *fileHandle
	blocks    [NumCols][]blockMeta
	idx       blockMeta
	rawVerify [NumCols]colVerify
}

// colVerify memoizes the one-time checksum pass over a column's raw
// blocks, so the zero-copy read path pays crc once per column instead
// of once per access.
type colVerify struct {
	once sync.Once
	err  error
}

// OpenSegmentReader opens a v2 segment file for lazy access.
func OpenSegmentReader(path string) (*SegmentReader, error) {
	h, err := openHandle(path)
	if err != nil {
		return nil, err
	}
	rd, err := newSegmentReader(h)
	if err != nil {
		return nil, fmt.Errorf("durable: segment file %s: %w", path, err)
	}
	return rd, nil
}

func newSegmentReader(h *fileHandle) (*SegmentReader, error) {
	size := h.size()
	if size < seg2HeaderSize+seg2FooterSize {
		return nil, corruptf("file too small (%d bytes)", size)
	}
	foot, _, err := h.readAt(size-seg2FooterSize, seg2FooterSize)
	if err != nil {
		return nil, err
	}
	if string(foot[seg2FooterSize-4:]) != seg2MagicFooter {
		return nil, corruptf("bad footer magic")
	}
	crcOff := seg2FooterSize - 8
	if binary.LittleEndian.Uint32(foot[crcOff:]) != checksum(foot[:crcOff]) {
		return nil, corruptf("footer checksum mismatch")
	}
	fr := &byteReader{buf: foot}
	dirOff := fr.u64()
	dirLen := fr.u32()
	dirCrc := fr.u32()
	idx := blockMeta{off: fr.u64(), encLen: fr.u32(), rawLen: fr.u32(), codec: fr.u8(), crc: fr.u32()}
	minEventID, maxEventID := fr.u64(), fr.u64()
	minTS, maxTS := fr.i64(), fr.i64()
	footCount := int(fr.u32())
	footFlags := fr.u8()

	head, _, err := h.readAt(0, seg2HeaderSize)
	if err != nil {
		return nil, err
	}
	hr := &byteReader{buf: head}
	if string(hr.take(4)) != seg2Magic {
		return nil, corruptf("bad magic")
	}
	if v := hr.u32(); v != seg2Version {
		return nil, fmt.Errorf("durable: unsupported segment version %d", v)
	}
	rd := &SegmentReader{
		ID:         hr.u64(),
		AgentID:    hr.u32(),
		Bucket:     hr.i64(),
		Count:      int(hr.u32()),
		MinEventID: minEventID,
		MaxEventID: maxEventID,
		MinTS:      minTS,
		MaxTS:      maxTS,
		h:          h,
		idx:        idx,
	}
	flags := hr.u8()
	rd.Indexed = flags&segFlagIndexed != 0
	rd.Compressed = hr.u8() != 0
	if footCount != rd.Count || footFlags != flags {
		return nil, corruptf("segment %d: header/footer disagree (count %d vs %d)", rd.ID, rd.Count, footCount)
	}

	if int64(dirOff)+int64(dirLen) > size-seg2FooterSize || dirLen < 8 {
		return nil, corruptf("segment %d: block directory out of bounds", rd.ID)
	}
	dir, _, err := h.readAt(int64(dirOff), int(dirLen))
	if err != nil {
		return nil, err
	}
	if checksum(dir) != dirCrc {
		return nil, corruptf("segment %d: block directory checksum mismatch", rd.ID)
	}
	dr := &byteReader{buf: dir}
	rd.BlockLen = int(dr.u32())
	nBlocks := int(dr.u32())
	if rd.BlockLen <= 0 || rd.BlockLen > 1<<16 {
		return nil, corruptf("segment %d: bad block length %d", rd.ID, rd.BlockLen)
	}
	if want := (rd.Count + rd.BlockLen - 1) / rd.BlockLen; nBlocks != want {
		return nil, corruptf("segment %d: block count %d, want %d", rd.ID, nBlocks, want)
	}
	for col := 0; col < NumCols; col++ {
		ms := make([]blockMeta, nBlocks)
		for b := 0; b < nBlocks; b++ {
			m := blockMeta{off: dr.u64(), encLen: dr.u32(), rawLen: dr.u32(), codec: dr.u8(), crc: dr.u32()}
			events := min(rd.BlockLen, rd.Count-b*rd.BlockLen)
			if int(m.rawLen) != events*colWidth[col] {
				return nil, corruptf("segment %d: column %d block %d raw length %d, want %d", rd.ID, col, b, m.rawLen, events*colWidth[col])
			}
			if m.off < seg2HeaderSize || m.off+uint64(m.encLen) > dirOff {
				return nil, corruptf("segment %d: column %d block %d out of bounds", rd.ID, col, b)
			}
			if m.codec > CodecDelta {
				return nil, corruptf("segment %d: column %d block %d unknown codec %d", rd.ID, col, b, m.codec)
			}
			if m.codec == CodecRaw && m.encLen != m.rawLen {
				return nil, corruptf("segment %d: column %d block %d raw block with encoded length %d", rd.ID, col, b, m.encLen)
			}
			ms[b] = m
		}
		rd.blocks[col] = ms
	}
	for col := 0; col < NumCols; col++ {
		rd.ColMin[col] = dr.u64()
		rd.ColMax[col] = dr.u64()
	}
	opN := int(dr.u32())
	if dr.fail || opN > 1024 {
		return nil, corruptf("segment %d: corrupt op histogram", rd.ID)
	}
	if opN > 0 {
		rd.OpCount = make([]int, opN)
		for i := range rd.OpCount {
			rd.OpCount[i] = int(dr.u64())
		}
	}
	if err := dr.err("segment block directory"); err != nil {
		return nil, err
	}
	if rd.Indexed {
		if rd.idx.off < seg2HeaderSize || rd.idx.off+uint64(rd.idx.encLen) > dirOff || rd.idx.codec > CodecLZ {
			return nil, corruptf("segment %d: index section out of bounds", rd.ID)
		}
	}
	return rd, nil
}

// NumBlocks returns the per-column block count.
func (rd *SegmentReader) NumBlocks() int { return len(rd.blocks[ColID]) }

// Size returns the file size in bytes.
func (rd *SegmentReader) Size() int64 { return rd.h.size() }

// MappedBytes returns the bytes of file mapped into the address space
// (zero under the read-at fallback).
func (rd *SegmentReader) MappedBytes() int64 {
	if rd.h.mapped() {
		return rd.h.size()
	}
	return 0
}

// verifyRawCol runs the one-time checksum pass over a column's raw
// blocks (compressed blocks verify at decode time instead).
func (rd *SegmentReader) verifyRawCol(col int) error {
	v := &rd.rawVerify[col]
	v.once.Do(func() {
		for b := range rd.blocks[col] {
			m := rd.blocks[col][b]
			if m.codec != CodecRaw {
				continue
			}
			data, _, err := rd.h.readAt(int64(m.off), int(m.encLen))
			if err != nil {
				v.err = err
				return
			}
			if checksum(data) != m.crc {
				v.err = corruptf("segment %d: column %d block %d checksum mismatch", rd.ID, col, b)
				return
			}
		}
	})
	return v.err
}

// Block returns the decoded bytes of one block of one column. dst is
// optional scratch with capacity for a decompressed block; zeroCopy
// reports that the result aliases the file mapping (raw block on the
// mmap path) and must not be mutated.
func (rd *SegmentReader) Block(col, blk int, dst []byte) (data []byte, zeroCopy bool, err error) {
	if col < 0 || col >= NumCols || blk < 0 || blk >= len(rd.blocks[col]) {
		return nil, false, corruptf("segment %d: block (%d,%d) out of range", rd.ID, col, blk)
	}
	m := rd.blocks[col][blk]
	enc, zero, err := rd.h.readAt(int64(m.off), int(m.encLen))
	if err != nil {
		return nil, false, err
	}
	switch m.codec {
	case CodecRaw:
		if zero {
			if err := rd.verifyRawCol(col); err != nil {
				return nil, false, err
			}
			return enc, true, nil
		}
		if checksum(enc) != m.crc {
			return nil, false, corruptf("segment %d: column %d block %d checksum mismatch", rd.ID, col, blk)
		}
		return enc, false, nil
	case CodecLZ, CodecDelta:
		if checksum(enc) != m.crc {
			return nil, false, corruptf("segment %d: column %d block %d checksum mismatch", rd.ID, col, blk)
		}
		if cap(dst) < int(m.rawLen) {
			dst = make([]byte, 0, m.rawLen)
		}
		var out []byte
		if m.codec == CodecLZ {
			out, err = lzDecompress(dst[:0], enc, int(m.rawLen))
		} else {
			out, err = deltaDecode(dst[:0], enc, int(m.rawLen))
		}
		if err != nil {
			return nil, false, fmt.Errorf("segment %d: column %d block %d: %w", rd.ID, col, blk, err)
		}
		return out, false, nil
	}
	return nil, false, corruptf("segment %d: column %d block %d unknown codec %d", rd.ID, col, blk, m.codec)
}

// Column returns one whole column as a contiguous byte slice. Only
// valid for columns every block of which is stored raw and adjacent in
// the file — the writer guarantees this for ColStartTS and ColKey. On
// the mmap path the result is zero-copy.
func (rd *SegmentReader) Column(col int) ([]byte, error) {
	if col < 0 || col >= NumCols {
		return nil, corruptf("segment %d: column %d out of range", rd.ID, col)
	}
	ms := rd.blocks[col]
	if len(ms) == 0 {
		return nil, nil
	}
	total := 0
	for b, m := range ms {
		if m.codec != CodecRaw {
			return nil, fmt.Errorf("durable: segment %d: column %d is block-compressed, no contiguous view", rd.ID, col)
		}
		if b > 0 && m.off != ms[b-1].off+uint64(ms[b-1].encLen) {
			return nil, fmt.Errorf("durable: segment %d: column %d blocks not contiguous", rd.ID, col)
		}
		total += int(m.encLen)
	}
	data, zero, err := rd.h.readAt(int64(ms[0].off), total)
	if err != nil {
		return nil, err
	}
	if zero {
		if err := rd.verifyRawCol(col); err != nil {
			return nil, err
		}
		return data, nil
	}
	p := 0
	for b, m := range ms {
		if checksum(data[p:p+int(m.encLen)]) != m.crc {
			return nil, corruptf("segment %d: column %d block %d checksum mismatch", rd.ID, col, b)
		}
		p += int(m.encLen)
	}
	return data, nil
}

// scatterCol writes one decoded column block into the AoS event slice.
func scatterCol(evs []sysmon.Event, col int, data []byte) {
	switch col {
	case ColID:
		for i := range evs {
			evs[i].ID = binary.LittleEndian.Uint64(data[i*8:])
		}
	case ColAgent:
		for i := range evs {
			evs[i].AgentID = binary.LittleEndian.Uint32(data[i*4:])
		}
	case ColSubject:
		for i := range evs {
			evs[i].Subject = sysmon.EntityID(binary.LittleEndian.Uint32(data[i*4:]))
		}
	case ColOp:
		for i := range evs {
			evs[i].Op = sysmon.Operation(binary.LittleEndian.Uint16(data[i*2:]))
		}
	case ColObjType:
		for i := range evs {
			evs[i].ObjType = sysmon.EntityType(data[i])
		}
	case ColObject:
		for i := range evs {
			evs[i].Object = sysmon.EntityID(binary.LittleEndian.Uint32(data[i*4:]))
		}
	case ColStartTS:
		for i := range evs {
			evs[i].StartTS = int64(binary.LittleEndian.Uint64(data[i*8:]))
		}
	case ColEndTS:
		for i := range evs {
			evs[i].EndTS = int64(binary.LittleEndian.Uint64(data[i*8:]))
		}
	case ColAmount:
		for i := range evs {
			evs[i].Amount = binary.LittleEndian.Uint64(data[i*8:])
		}
	case ColSeq:
		for i := range evs {
			evs[i].Seq = binary.LittleEndian.Uint64(data[i*8:])
		}
	}
}

// MaterializeEvents decodes the full segment into an AoS event slice
// (the compatibility path for callers that need whole events: gob
// export, compaction merges, the v1 upgrade tool).
func (rd *SegmentReader) MaterializeEvents() ([]sysmon.Event, error) {
	evs := make([]sysmon.Event, rd.Count)
	scratch := make([]byte, 0, rd.BlockLen*8)
	for col := 0; col < NumCols; col++ {
		if col == ColKey {
			continue // derived from agent/op/objtype
		}
		base := 0
		for b := range rd.blocks[col] {
			data, _, err := rd.Block(col, b, scratch)
			if err != nil {
				return nil, err
			}
			n := int(rd.blocks[col][b].rawLen) / colWidth[col]
			scatterCol(evs[base:base+n], col, data)
			base += n
		}
	}
	return evs, nil
}

// ReadIndexes decodes the posting-list section. Returns nils without
// error when the segment was written unindexed.
func (rd *SegmentReader) ReadIndexes() (sub, obj map[sysmon.EntityID][]int32, err error) {
	if !rd.Indexed {
		return nil, nil, nil
	}
	enc, _, err := rd.h.readAt(int64(rd.idx.off), int(rd.idx.encLen))
	if err != nil {
		return nil, nil, err
	}
	if checksum(enc) != rd.idx.crc {
		return nil, nil, corruptf("segment %d: index checksum mismatch", rd.ID)
	}
	raw := enc
	if rd.idx.codec == CodecLZ {
		raw, err = lzDecompress(make([]byte, 0, rd.idx.rawLen), enc, int(rd.idx.rawLen))
		if err != nil {
			return nil, nil, fmt.Errorf("segment %d: index section: %w", rd.ID, err)
		}
	}
	r := &byteReader{buf: raw}
	if sub, err = readPostings(r, rd.Count); err != nil {
		return nil, nil, corruptf("segment %d: %v", rd.ID, err)
	}
	if obj, err = readPostings(r, rd.Count); err != nil {
		return nil, nil, corruptf("segment %d: %v", rd.ID, err)
	}
	return sub, obj, nil
}

// OpenedSegment is the result of version-dispatched segment open: V1
// eager data or a V2 lazy reader, never both.
type OpenedSegment struct {
	Version int
	V1      *SegmentData
	V2      *SegmentReader
}

// OpenSegment opens a segment file of either format version. The file
// is opened (and on capable platforms mmap'd) exactly once: the
// version is sniffed from the handle, v2 files wrap it in a lazy
// reader, and v1 files are decoded out of it eagerly — cold-opening a
// directory of v2 segments costs one open+map per file, no separate
// version-probe read.
func OpenSegment(path string) (*OpenedSegment, error) {
	h, err := openHandle(path)
	if err != nil {
		return nil, err
	}
	if h.size() < 8 {
		return nil, corruptf("segment file %s: short header", path)
	}
	hdr, _, err := h.readAt(0, 8)
	if err != nil {
		return nil, err
	}
	magic, ver := string(hdr[:4]), binary.LittleEndian.Uint32(hdr[4:])
	switch {
	case magic == segMagic && ver == segVersion:
		buf, _, err := h.readAt(0, int(h.size()))
		if err != nil {
			return nil, err
		}
		d, err := DecodeSegment(buf)
		// DecodeSegment copies every value out of buf, so nothing
		// aliases the mapping afterwards — but the handle must stay
		// alive until the decode is done reading it.
		runtime.KeepAlive(h)
		if err != nil {
			return nil, fmt.Errorf("durable: segment file %s: %w", path, err)
		}
		return &OpenedSegment{Version: 1, V1: d}, nil
	case magic == seg2Magic && ver == seg2Version:
		rd, err := newSegmentReader(h)
		if err != nil {
			return nil, fmt.Errorf("durable: segment file %s: %w", path, err)
		}
		return &OpenedSegment{Version: 2, V2: rd}, nil
	}
	return nil, corruptf("segment file %s: bad magic", path)
}

// AsUint64s reinterprets b as a []uint64 without copying. Fails (ok
// false) when b is misaligned or not a whole number of values; callers
// fall back to a decoded copy.
func AsUint64s(b []byte) ([]uint64, bool) {
	if len(b)%8 != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint64)(p), len(b)/8), true
}

// AsInt64s reinterprets b as a []int64 without copying; same contract
// as AsUint64s.
func AsInt64s(b []byte) ([]int64, bool) {
	if len(b)%8 != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*int64)(p), len(b)/8), true
}
