//go:build unix

package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// LockDir takes the directory's exclusive advisory lock (an flock on a
// LOCK file), enforcing the subsystem's single-writer assumption across
// processes and across opens within one process. A crashed process
// releases its flock automatically, so recovery after a crash is never
// blocked by a stale lock file.
func LockDir(dir string) (*DirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: %s is already open by another store (flock: %w)", dir, err)
	}
	return &DirLock{f: f}, nil
}

// DirLock holds a directory's exclusive lock until Release.
type DirLock struct{ f *os.File }

// Release drops the lock. Safe to call more than once.
func (l *DirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := l.f.Close() // closing the descriptor releases the flock
	l.f = nil
	return err
}
