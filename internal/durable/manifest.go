package durable

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"github.com/aiql/aiql/internal/sysmon"
)

const (
	manifestMagic = "AQMF"
	// manifestVersion 3 added the per-segment Format hint; version-2
	// manifests (pre-columnar stores) still decode, with Format left
	// unknown.
	manifestVersion = 3
)

// Segment file format hints recorded in SegmentRef.Format.
const (
	SegmentFormatUnknown = 0 // legacy manifest: sniff the file
	SegmentFormatV1      = 1 // eager gob encoding
	SegmentFormatV2      = 2 // block-compressed columnar, mmap-friendly
)

// ErrNoManifest reports that the directory holds no manifest — a fresh
// (or never-checkpointed) durable store.
var ErrNoManifest = errors.New("durable: no manifest")

// SegmentRef names one live segment file in a manifest edition.
type SegmentRef struct {
	ID         uint64
	AgentID    uint32
	Bucket     int64
	File       string
	Events     int
	MinTS      int64
	MaxTS      int64
	MinEventID uint64
	MaxEventID uint64
	// Format is the segment file's format version (SegmentFormat*). It
	// is a hint, not a contract: a v2 hint lets a reopening store defer
	// the file open entirely (the ref already carries every bound a
	// cold segment needs), while unknown or stale hints fall back to
	// sniffing the file header on first access.
	Format uint8
}

// Manifest is one edition of the durable store's metadata: the live
// segment set (in scan order: chunks in insertion order, each chunk's
// chain oldest first), the entity dictionary tables, and the ID
// counters a reopened store resumes from. A manifest is immutable once
// written; editions replace each other atomically via rename.
//
// The encoding is the subsystem's manual little-endian format rather
// than gob: the dictionary tables hold tens of thousands of entity
// structs, and reflective decoding of those would eat a large slice of
// the fast-load budget that file-per-segment persistence exists to win.
type Manifest struct {
	Edition     uint64
	NextSegID   uint64
	NextEventID uint64
	NextSeq     map[uint32]uint64
	Procs       []sysmon.Process
	Files       []sysmon.File
	Conns       []sysmon.Netconn
	Segments    []SegmentRef

	// Layout-affecting store options, enforced on reopen: chunk routing
	// (partitioning, chunk width) decides which chain an event belongs
	// to, and dedup decides how WAL entity deltas were produced —
	// reopening with different values would scatter recovered events
	// across the wrong chunks or diverge the dictionary.
	Partitioning    bool
	ChunkDurationNS int64
	Dedup           bool
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// EncodeManifest serializes a manifest edition: magic, version,
// payload, trailing crc32.
func EncodeManifest(m *Manifest) ([]byte, error) {
	w := &byteWriter{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, manifestMagic...)
	w.u32(manifestVersion)

	payloadStart := len(w.buf)
	w.u64(m.Edition)
	w.u64(m.NextSegID)
	w.u64(m.NextEventID)
	w.u32(uint32(len(m.NextSeq)))
	for agent, seq := range m.NextSeq {
		w.u32(agent)
		w.u64(seq)
	}
	w.u8(boolByte(m.Partitioning))
	w.i64(m.ChunkDurationNS)
	w.u8(boolByte(m.Dedup))

	w.u32(uint32(len(m.Procs)))
	for i := range m.Procs {
		p := &m.Procs[i]
		w.u32(p.PID)
		w.str(p.ExeName)
		w.str(p.Path)
		w.str(p.User)
		w.str(p.CmdLine)
	}
	w.u32(uint32(len(m.Files)))
	for i := range m.Files {
		f := &m.Files[i]
		w.str(f.Path)
		w.str(f.Owner)
	}
	w.u32(uint32(len(m.Conns)))
	for i := range m.Conns {
		c := &m.Conns[i]
		w.str(c.SrcIP)
		w.u16(c.SrcPort)
		w.str(c.DstIP)
		w.u16(c.DstPort)
		w.str(c.Protocol)
	}

	w.u32(uint32(len(m.Segments)))
	for i := range m.Segments {
		r := &m.Segments[i]
		w.u64(r.ID)
		w.u32(r.AgentID)
		w.i64(r.Bucket)
		w.str(r.File)
		w.u32(uint32(r.Events))
		w.i64(r.MinTS)
		w.i64(r.MaxTS)
		w.u64(r.MinEventID)
		w.u64(r.MaxEventID)
		w.u8(r.Format)
	}
	w.u32(checksum(w.buf[payloadStart:]))
	return w.buf, nil
}

// DecodeManifest parses and validates a manifest image.
func DecodeManifest(buf []byte) (*Manifest, error) {
	if len(buf) < 12 || string(buf[:4]) != manifestMagic {
		return nil, fmt.Errorf("durable: not a manifest (bad magic)")
	}
	r := &byteReader{buf: buf, off: 4}
	r.zeroCopyStrings()
	ver := r.u32()
	if ver != 2 && ver != manifestVersion {
		return nil, fmt.Errorf("durable: unsupported manifest version %d", ver)
	}
	if len(buf) < 12+4 {
		return nil, fmt.Errorf("durable: truncated manifest")
	}
	payload := buf[8 : len(buf)-4]
	if crc := uint32(buf[len(buf)-4]) | uint32(buf[len(buf)-3])<<8 | uint32(buf[len(buf)-2])<<16 | uint32(buf[len(buf)-1])<<24; crc != checksum(payload) {
		return nil, fmt.Errorf("durable: manifest checksum mismatch")
	}

	m := &Manifest{}
	m.Edition = r.u64()
	m.NextSegID = r.u64()
	m.NextEventID = r.u64()
	nSeq := int(r.u32())
	if r.fail || nSeq > len(buf) {
		return nil, fmt.Errorf("durable: corrupt manifest (sequence table)")
	}
	m.NextSeq = make(map[uint32]uint64, nSeq)
	for i := 0; i < nSeq; i++ {
		agent := r.u32()
		m.NextSeq[agent] = r.u64()
	}
	m.Partitioning = r.u8() != 0
	m.ChunkDurationNS = r.i64()
	m.Dedup = r.u8() != 0

	nProcs := int(r.u32())
	if r.fail || nProcs > len(buf) {
		return nil, fmt.Errorf("durable: corrupt manifest (process table)")
	}
	m.Procs = make([]sysmon.Process, nProcs)
	for i := range m.Procs {
		p := &m.Procs[i]
		p.PID = r.u32()
		p.ExeName = r.str()
		p.Path = r.str()
		p.User = r.str()
		p.CmdLine = r.str()
	}
	nFiles := int(r.u32())
	if r.fail || nFiles > len(buf) {
		return nil, fmt.Errorf("durable: corrupt manifest (file table)")
	}
	m.Files = make([]sysmon.File, nFiles)
	for i := range m.Files {
		f := &m.Files[i]
		f.Path = r.str()
		f.Owner = r.str()
	}
	nConns := int(r.u32())
	if r.fail || nConns > len(buf) {
		return nil, fmt.Errorf("durable: corrupt manifest (connection table)")
	}
	m.Conns = make([]sysmon.Netconn, nConns)
	for i := range m.Conns {
		c := &m.Conns[i]
		c.SrcIP = r.str()
		c.SrcPort = r.u16()
		c.DstIP = r.str()
		c.DstPort = r.u16()
		c.Protocol = r.str()
	}

	nSegs := int(r.u32())
	if r.fail || nSegs > len(buf) {
		return nil, fmt.Errorf("durable: corrupt manifest (segment table)")
	}
	m.Segments = make([]SegmentRef, nSegs)
	for i := range m.Segments {
		ref := &m.Segments[i]
		ref.ID = r.u64()
		ref.AgentID = r.u32()
		ref.Bucket = r.i64()
		ref.File = r.str()
		ref.Events = int(r.u32())
		ref.MinTS = r.i64()
		ref.MaxTS = r.i64()
		ref.MinEventID = r.u64()
		ref.MaxEventID = r.u64()
		if ver >= 3 {
			ref.Format = r.u8()
		}
	}
	if err := r.err("manifest"); err != nil {
		return nil, err
	}
	// normalize empties to nil so a round trip is value-identical
	if len(m.Segments) == 0 {
		m.Segments = nil
	}
	if len(m.NextSeq) == 0 {
		m.NextSeq = nil
	}
	if len(m.Procs) == 0 {
		m.Procs = nil
	}
	if len(m.Files) == 0 {
		m.Files = nil
	}
	if len(m.Conns) == 0 {
		m.Conns = nil
	}
	return m, nil
}

// WriteManifest atomically installs a manifest edition in dir.
func WriteManifest(dir string, m *Manifest) error {
	buf, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, ManifestName), buf)
}

// ReadManifest loads the directory's current manifest; ErrNoManifest if
// none exists.
func ReadManifest(dir string) (*Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNoManifest
	}
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	return DecodeManifest(buf)
}
