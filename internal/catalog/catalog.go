// Package catalog maps dataset names to independent AIQL databases so
// one server process serves many investigations concurrently. Every
// dataset owns its own store, engine, segment scan cache, and service
// layer (worker pool, result cache, statistics) — noisy traffic against
// one investigation never evicts another's caches or skews its
// counters.
//
// Datasets hot-swap atomically: loading a snapshot builds a completely
// new store + service off to the side and then swaps the catalog entry
// under the lock. In-flight queries keep the service (and therefore the
// store snapshot) they started with and finish normally; only new
// requests resolve to the swapped-in dataset.
package catalog

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/service"
	"github.com/aiql/aiql/internal/workpool"
)

// DefaultScanCacheBytes is the per-dataset segment scan cache budget
// when the catalog config leaves it zero.
const DefaultScanCacheBytes = 64 << 20

// Config shapes every dataset the catalog creates.
type Config struct {
	// Service sizes each dataset's service layer (workers, result
	// cache, timeouts). Zero values select the service defaults.
	Service service.Config
	// ScanCacheBytes budgets each dataset's segment scan cache; 0
	// selects DefaultScanCacheBytes, negative disables the cache.
	ScanCacheBytes int64
	// CompactInterval, when positive, runs each dataset's background
	// segment compactor at this period, merging chains of small sealed
	// segments (and re-pointing the scan cache) while the dataset
	// serves queries. Zero disables background compaction.
	CompactInterval time.Duration
	// ScanWorkers caps the parallel-scan worker pool shared by every
	// dataset the catalog creates (a query's merging goroutine plus
	// ScanWorkers-1 pooled helpers), so total scan CPU is governed in
	// one place alongside the admission pool. Zero matches the
	// admission pool's worker count (Service.Workers, itself defaulting
	// to GOMAXPROCS); 1 scans sequentially.
	ScanWorkers int
	// SegmentCompression selects the block codec for newly written v2
	// segment files ("lz4" or "none"); empty selects the store default.
	SegmentCompression string
	// BlockCacheBytes budgets each dataset's decompressed-block cache;
	// 0 selects the store default, negative disables it.
	BlockCacheBytes int64
	// Metrics, when set, receives every dataset's counters as one
	// scrape-time collector plus each service's per-query instruments.
	Metrics *obs.Registry
	// SlowLog, when set, is shared by every dataset's service; entries
	// carry the dataset name.
	SlowLog *obs.SlowLog
}

// Dataset is one named database with its service layer.
type Dataset struct {
	name string
	path string // snapshot file backing the dataset; empty for in-memory
	svc  *service.Service
}

// Name returns the dataset's catalog name.
func (d *Dataset) Name() string { return d.name }

// Path returns the snapshot file backing the dataset, if any.
func (d *Dataset) Path() string { return d.path }

// Service returns the dataset's service layer.
func (d *Dataset) Service() *service.Service { return d.svc }

// Catalog is a concurrency-safe registry of named datasets with atomic
// hot-swap. It implements service.Resolver.
type Catalog struct {
	cfg Config

	// scanPool is shared by every dataset (and survives hot-swaps), so
	// the process-wide scan-parallelism cap holds no matter how many
	// datasets are served.
	scanPool *workpool.Pool

	// loadMu serializes hot-swaps: two concurrent Loads of one dataset
	// would otherwise both close the old database and race two writers
	// (and two recoveries) onto the same durable directory.
	loadMu sync.Mutex

	mu          sync.RWMutex
	sets        map[string]*Dataset
	order       []string // registration order
	defaultName string
}

// New creates an empty catalog.
func New(cfg Config) *Catalog {
	if cfg.ScanCacheBytes == 0 {
		cfg.ScanCacheBytes = DefaultScanCacheBytes
	}
	workers := cfg.ScanWorkers
	if workers <= 0 {
		workers = cfg.Service.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Scan helpers are CPU-bound, so a pool wider than the machine only
	// adds scheduling overhead: clamp to the cores available.
	c := &Catalog{
		cfg:      cfg,
		scanPool: workpool.New(min(workers, runtime.GOMAXPROCS(0)) - 1),
		sets:     make(map[string]*Dataset),
	}
	c.registerCollector(cfg.Metrics)
	return c
}

// storageOptions returns the default storage options with the catalog's
// segment-codec and block-cache settings applied.
func (c *Catalog) storageOptions() aiql.StorageOptions {
	storage := aiql.DefaultStorage()
	storage.SegmentCompression = c.cfg.SegmentCompression
	storage.BlockCacheBytes = c.cfg.BlockCacheBytes
	return storage
}

// openPath opens a dataset path (durable directory or gob snapshot)
// with the catalog's storage configuration applied.
func (c *Catalog) openPath(path string) (*aiql.DB, error) {
	return aiql.OpenPathWithOptions(path, c.storageOptions(), aiql.EngineConfig{})
}

// openDir opens (creating if needed) a durable store directory with the
// catalog's storage configuration applied.
func (c *Catalog) openDir(dir string) (*aiql.DB, error) {
	storage := c.storageOptions()
	storage.Dir = dir
	return aiql.OpenDirWithOptions(storage, aiql.EngineConfig{})
}

// newDataset wraps a database in a fresh service layer with the
// catalog's configuration, starting its background compactor when one
// is configured.
func (c *Catalog) newDataset(name, path string, db *aiql.DB) *Dataset {
	if c.cfg.ScanCacheBytes > 0 {
		db.EnableSegmentScanCache(c.cfg.ScanCacheBytes)
	}
	db.SetScanPool(c.scanPool)
	if c.cfg.CompactInterval > 0 {
		db.StartCompactor(c.cfg.CompactInterval)
	}
	svcCfg := c.cfg.Service
	svcCfg.Dataset = name
	svcCfg.Metrics = c.cfg.Metrics
	svcCfg.SlowLog = c.cfg.SlowLog
	return &Dataset{name: name, path: path, svc: service.New(db, svcCfg)}
}

// AddDB registers an in-memory database under name. The first dataset
// registered becomes the default.
func (c *Catalog) AddDB(name string, db *aiql.DB) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: dataset name must not be empty")
	}
	d := c.newDataset(name, "", db)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sets[name]; ok {
		return nil, fmt.Errorf("catalog: dataset %q already registered", name)
	}
	c.install(d)
	return d, nil
}

// AddFile loads a dataset from path — a durable store directory or a
// legacy gob snapshot file — and registers it under name. The first
// dataset registered becomes the default.
func (c *Catalog) AddFile(name, path string) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: dataset name must not be empty")
	}
	db, err := c.openPath(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: load %q: %w", name, err)
	}
	d := c.newDataset(name, path, db)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sets[name]; ok {
		return nil, fmt.Errorf("catalog: dataset %q already registered", name)
	}
	c.install(d)
	return d, nil
}

// AddDir opens (creating or crash-recovering if needed) a durable
// store directory and registers it under name. The first dataset
// registered becomes the default.
func (c *Catalog) AddDir(name, dir string) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: dataset name must not be empty")
	}
	db, err := c.openDir(dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: open %q: %w", name, err)
	}
	d := c.newDataset(name, dir, db)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sets[name]; ok {
		return nil, fmt.Errorf("catalog: dataset %q already registered", name)
	}
	c.install(d)
	return d, nil
}

// install registers d; the caller holds the lock.
func (c *Catalog) install(d *Dataset) {
	if _, ok := c.sets[d.name]; !ok {
		c.order = append(c.order, d.name)
	}
	c.sets[d.name] = d
	if c.defaultName == "" {
		c.defaultName = d.name
	}
}

// SetDefault names the dataset the empty request selects.
func (c *Catalog) SetDefault(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sets[name]; !ok {
		return fmt.Errorf("%w: %q", service.ErrUnknownDataset, name)
	}
	c.defaultName = name
	return nil
}

// DefaultName returns the default dataset's name.
func (c *Catalog) DefaultName() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.defaultName
}

// Resolve implements service.Resolver: the empty name selects the
// default dataset. The returned service stays valid (and keeps serving
// its in-flight queries) even if the dataset is hot-swapped afterwards.
func (c *Catalog) Resolve(dataset string) (*service.Service, error) {
	d, err := c.Get(dataset)
	if err != nil {
		return nil, err
	}
	return d.svc, nil
}

// Get returns the dataset registered under name ("" = default).
func (c *Catalog) Get(name string) (*Dataset, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if name == "" {
		name = c.defaultName
	}
	d, ok := c.sets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", service.ErrUnknownDataset, name)
	}
	return d, nil
}

// Names returns the registered dataset names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.order))
	copy(out, c.order)
	sort.Strings(out)
	return out
}

// Load hot-swaps (or registers) the dataset name from a durable store
// directory or a legacy gob snapshot file: a brand-new store, engine,
// scan cache, and service are built from path with no catalog lock
// held, then the entry is swapped atomically. In-flight queries on the
// old dataset finish on the snapshot they started with — including
// while the old dataset's compactor is mid-pass: the replaced database
// is closed first (in-flight compaction drained, further disk writes
// fenced, WAL released), so the directory has one writer at a time, and
// its in-memory snapshots stay readable until those queries finish. An
// empty path reloads the dataset's backing file.
//
// Outstanding pagination cursors are deliberately not carried over: a
// cursor names a result generation of the replaced store, and serving
// its remaining pages would hand out rows from a dataset the operator
// just swapped away. Such requests answer 410 Gone (the cursor-expired
// contract) and the client re-issues the query against the new data.
//
// Prepared statements DO survive the swap: the new service re-prepares
// every statement the old registry held against the swapped-in
// database under its original stmt_id, so clients keep executing their
// handles across the reload (results now reflect the new data, exactly
// as an inline query would).
func (c *Catalog) Load(name, path string) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: dataset name must not be empty")
	}
	if path == "" {
		c.mu.RLock()
		d, registered := c.sets[name]
		if registered {
			path = d.path
		}
		c.mu.RUnlock()
		if !registered {
			return nil, fmt.Errorf("%w: %q (a path is required to register a new dataset)", service.ErrUnknownDataset, name)
		}
		if path == "" {
			return nil, fmt.Errorf("catalog: dataset %q has no backing snapshot; a path is required", name)
		}
	}
	c.loadMu.Lock()
	defer c.loadMu.Unlock()
	c.mu.RLock()
	old := c.sets[name]
	c.mu.RUnlock()
	if old != nil && old.svc.Sharded() {
		// A sharded dataset is a coordinator over member stores, not a
		// snapshot; hot-swapping it under live fan-outs would strand the
		// members. Restart with a new partition map instead.
		return nil, fmt.Errorf("catalog: dataset %q is sharded and cannot be hot-swapped", name)
	}

	// When the reload targets the directory the old database is itself
	// writing, close the old one BEFORE opening the new: Close drains
	// any in-flight compaction pass, fences further disk writes, and
	// releases the directory flock, so the new store's recovery (orphan
	// cleanup included) sees a quiescent single-writer state. The old
	// dataset keeps serving queries from memory throughout. For any
	// other path the old database stays fully alive until the swap
	// lands, so a failed load leaves the dataset untouched.
	conflict := old != nil && old.svc.DB().DurableStats().Dir == path && path != ""
	if conflict {
		old.svc.DB().Close()
	}
	db, err := c.openPath(path)
	if err != nil {
		if conflict {
			// The old database's durability was already torn down; try
			// to reopen its directory so the dataset stays durable.
			if rdb, rerr := c.openPath(old.path); rerr == nil {
				d := c.newDataset(name, old.path, rdb)
				d.svc.AdoptPrepared(old.svc.PreparedSeeds())
				d.svc.AdoptWatches(old.svc.WatchSeeds())
				c.mu.Lock()
				c.install(d)
				c.mu.Unlock()
				return nil, fmt.Errorf("catalog: load %q: %w (previous dataset reopened)", name, err)
			}
			return nil, fmt.Errorf("catalog: load %q: %w (previous dataset now serves from memory only)", name, err)
		}
		return nil, fmt.Errorf("catalog: load %q: %w", name, err)
	}
	d := c.newDataset(name, path, db)
	if old != nil {
		d.svc.AdoptPrepared(old.svc.PreparedSeeds())
		d.svc.AdoptWatches(old.svc.WatchSeeds())
	}
	c.mu.Lock()
	c.install(d)
	c.mu.Unlock()
	if old != nil && !conflict {
		old.svc.DB().Close()
	}
	return d, nil
}

// Stats returns every dataset's statistics blob, in sorted name order,
// with the default dataset marked.
func (c *Catalog) Stats() []service.DatasetStats {
	c.mu.RLock()
	names := make([]string, len(c.order))
	copy(names, c.order)
	def := c.defaultName
	sets := make([]*Dataset, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		sets = append(sets, c.sets[n])
	}
	c.mu.RUnlock()
	out := make([]service.DatasetStats, 0, len(sets))
	for _, d := range sets {
		st := d.svc.DatasetStats(d.name)
		st.Default = d.name == def
		out = append(out, st)
	}
	return out
}
