package catalog

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/service"
)

// buildDB assembles a small database whose every event matches
// demoQuery, with rows distinguishable per dataset via the file prefix.
func buildDB(t testing.TB, prefix string, events int) *aiql.DB {
	t.Helper()
	db := aiql.Open()
	recs := make([]aiql.Record, 0, events)
	for i := 0; i < events; i++ {
		recs = append(recs, aiql.Record{
			AgentID: uint32(1 + i%3),
			Subject: aiql.Process{PID: 100, ExeName: "worker.exe", Path: `C:\bin\worker.exe`, User: "alice"},
			Op:      aiql.OpWrite,
			ObjType: aiql.EntityFile,
			ObjFile: aiql.File{Path: fmt.Sprintf(`C:\%s\out%d.log`, prefix, i)},
			StartTS: int64(i) * int64(time.Second),
		})
	}
	db.AppendAll(recs)
	db.Flush()
	return db
}

const demoQuery = `proc p["%worker.exe"] write file f as evt return p, f`

func mustAdd(t *testing.T, c *Catalog, name string, db *aiql.DB) {
	t.Helper()
	if _, err := c.AddDB(name, db); err != nil {
		t.Fatal(err)
	}
}

// TestIndependentDatasets: two datasets answer the same query text with
// their own data and keep separate cache/stat counters.
func TestIndependentDatasets(t *testing.T) {
	c := New(Config{})
	mustAdd(t, c, "alpha", buildDB(t, "alpha", 10))
	mustAdd(t, c, "beta", buildDB(t, "beta", 25))

	ctx := context.Background()
	alpha, err := c.Resolve("alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := c.Resolve("beta")
	if err != nil {
		t.Fatal(err)
	}
	ra, err := alpha.Do(ctx, service.Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := beta.Do(ctx, service.Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if ra.TotalRows != 10 || rb.TotalRows != 25 {
		t.Errorf("rows alpha=%d beta=%d, want 10/25", ra.TotalRows, rb.TotalRows)
	}
	if !strings.Contains(ra.Rows[0][1], "alpha") || !strings.Contains(rb.Rows[0][1], "beta") {
		t.Errorf("datasets served each other's data: %q / %q", ra.Rows[0][1], rb.Rows[0][1])
	}
	// repeat on alpha only: its cache takes the hit, beta's counters idle
	if _, err := alpha.Do(ctx, service.Request{Query: demoQuery}); err != nil {
		t.Fatal(err)
	}
	if st := alpha.Stats(); st.Queries != 2 || st.CacheHits != 1 {
		t.Errorf("alpha stats %+v, want 2 queries / 1 hit", st)
	}
	if st := beta.Stats(); st.Queries != 1 || st.CacheHits != 0 {
		t.Errorf("beta stats %+v, want 1 query / 0 hits", st)
	}
	// default dataset is the first registered
	if def, err := c.Resolve(""); err != nil || def != alpha {
		t.Errorf("default dataset is not alpha (err %v)", err)
	}
}

// TestHotSwapKeepsInflightQueries: a dataset hot-swap must not fail
// queries running on the old store — they hold the old service and its
// snapshot and finish normally.
func TestHotSwapKeepsInflightQueries(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.aiql")
	newPath := filepath.Join(dir, "new.aiql")
	if err := buildDB(t, "old", 2000).SaveFile(oldPath); err != nil {
		t.Fatal(err)
	}
	if err := buildDB(t, "new", 7).SaveFile(newPath); err != nil {
		t.Fatal(err)
	}

	c := New(Config{})
	if _, err := c.AddFile("inv", oldPath); err != nil {
		t.Fatal(err)
	}
	oldSvc, err := c.Resolve("inv")
	if err != nil {
		t.Fatal(err)
	}

	// Stream slowly from the old dataset while the swap happens: the
	// row callback blocks until the swap completed, so the stream is
	// provably in flight across the swap.
	swapped := make(chan struct{})
	var once sync.Once
	rows := 0
	var streamErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, streamErr = oldSvc.DoStream(context.Background(), service.Request{Query: demoQuery},
			func(cols []string, cached bool) error { return nil },
			func(row []string) error {
				once.Do(func() { <-swapped })
				rows++
				return nil
			})
	}()

	if _, err := c.Load("inv", newPath); err != nil {
		t.Fatal(err)
	}
	close(swapped)
	<-done
	if streamErr != nil {
		t.Fatalf("in-flight stream failed across hot-swap: %v", streamErr)
	}
	if rows != 2000 {
		t.Errorf("in-flight stream saw %d rows, want the old dataset's 2000", rows)
	}

	newSvc, err := c.Resolve("inv")
	if err != nil {
		t.Fatal(err)
	}
	if newSvc == oldSvc {
		t.Fatal("hot-swap did not replace the service")
	}
	resp, err := newSvc.Do(context.Background(), service.Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalRows != 7 || !strings.Contains(resp.Rows[0][1], "new") {
		t.Errorf("post-swap query returned %d rows (%q), want the new dataset's 7", resp.TotalRows, resp.Rows[0][1])
	}
	// fresh caches and counters on the swapped-in dataset
	if st := newSvc.Stats(); st.Queries != 1 {
		t.Errorf("swapped-in service stats %+v, want exactly 1 query", st)
	}
}

// TestHTTPDatasetRoutingAndManagement drives the catalog handler end to
// end: listing, per-dataset queries, per-dataset stats, and a hot-swap.
func TestHTTPDatasetRoutingAndManagement(t *testing.T) {
	dir := t.TempDir()
	betaPath := filepath.Join(dir, "beta.aiql")
	if err := buildDB(t, "beta2", 4).SaveFile(betaPath); err != nil {
		t.Fatal(err)
	}

	c := New(Config{})
	mustAdd(t, c, "alpha", buildDB(t, "alpha", 3))
	mustAdd(t, c, "beta", buildDB(t, "beta", 5))
	h := c.Handler()

	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		var r *http.Request
		if body == "" {
			r = httptest.NewRequest(method, path, nil)
		} else {
			r = httptest.NewRequest(method, path, strings.NewReader(body))
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec
	}

	// dataset routing on the query endpoint
	rec := do(http.MethodPost, "/api/v1/query", `{"query": "proc p write file f as evt return p, f", "dataset": "beta"}`)
	var qr struct {
		TotalRows int `json:"total_rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil || rec.Code != 200 {
		t.Fatalf("query beta: %d %s", rec.Code, rec.Body.String())
	}
	if qr.TotalRows != 5 {
		t.Errorf("beta rows = %d, want 5", qr.TotalRows)
	}
	if rec := do(http.MethodPost, "/api/v1/query", `{"query": "proc p write file f as evt return p, f", "dataset": "nope"}`); rec.Code != http.StatusNotFound {
		t.Errorf("unknown dataset status %d, want 404", rec.Code)
	}

	// listing with per-dataset stats
	rec = do(http.MethodGet, "/api/v1/datasets", "")
	var list DatasetsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Default != "alpha" || len(list.Datasets) != 2 {
		t.Fatalf("datasets list %+v", list)
	}
	for _, d := range list.Datasets {
		if d.Dataset == "beta" && d.Service.Queries != 1 {
			t.Errorf("beta served %d queries, want 1", d.Service.Queries)
		}
		if d.Dataset == "alpha" && d.Service.Queries != 0 {
			t.Errorf("alpha served %d queries, want 0", d.Service.Queries)
		}
	}

	// per-dataset stats endpoint
	rec = do(http.MethodGet, "/api/v1/stats?dataset=beta", "")
	var st service.DatasetStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Store.Events != 5 {
		t.Errorf("beta stats report %d events, want 5", st.Store.Events)
	}

	// hot-swap beta from a snapshot file
	rec = do(http.MethodPost, "/api/v1/datasets/beta/load", `{"path": `+fmt.Sprintf("%q", betaPath)+`}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("load: %d %s", rec.Code, rec.Body.String())
	}
	var lr LoadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Dataset != "beta" || lr.Stats.Events != 4 {
		t.Errorf("load response %+v, want beta with 4 events", lr)
	}
	rec = do(http.MethodPost, "/api/v1/query", `{"query": "proc p write file f as evt return p, f", "dataset": "beta"}`)
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.TotalRows != 4 {
		t.Errorf("post-swap beta rows = %d, want 4", qr.TotalRows)
	}

	// loading a dataset with no backing file and no path is a 400
	if rec := do(http.MethodPost, "/api/v1/datasets/alpha/load", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("pathless load of in-memory dataset: status %d, want 400", rec.Code)
	}
	// a pathless load of an unregistered name is a 404, not a 400
	if rec := do(http.MethodPost, "/api/v1/datasets/ghost/load", ""); rec.Code != http.StatusNotFound {
		t.Errorf("pathless load of unknown dataset: status %d, want 404", rec.Code)
	}
}
