package catalog

import (
	"fmt"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/service"
	"github.com/aiql/aiql/internal/shard"
	"github.com/aiql/aiql/internal/shard/client"
)

// ShardOptions tune every sharded dataset the catalog creates.
type ShardOptions struct {
	// ShardTimeout bounds each member's execution of one query.
	// Default: 30s.
	ShardTimeout time.Duration
	// Retries is the per-member transport retry budget (connect/5xx,
	// before any row). Default: 2. Negative disables retries.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt.
	// Default: 100ms.
	Backoff time.Duration
	// ProbeInterval is how often remote members are health-probed for
	// liveness and epoch changes — the bound on how stale a
	// coordinator's result cache can be against remote writes. 0
	// disables background probes.
	ProbeInterval time.Duration
}

// AddSharded registers a sharded dataset from its partition map: local
// members open from their directories with the catalog's storage
// configuration (shared scan pool, scan/block cache budgets), remote
// members are reached through NDJSON stream clients, and a coordinator
// plus sharded service front the set. The first dataset registered
// becomes the default. The planning database behind the service is an
// empty in-memory store — it compiles and validates; members execute.
func (c *Catalog) AddSharded(spec shard.DatasetSpec, opts ShardOptions) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if opts.ShardTimeout <= 0 {
		opts.ShardTimeout = 30 * time.Second
	}
	var members []shard.Member
	fail := func(err error) (*Dataset, error) {
		for _, m := range members {
			m.Source.Close()
		}
		return nil, err
	}
	for _, m := range spec.Members {
		b, err := m.Bounds()
		if err != nil {
			return fail(fmt.Errorf("catalog: %w", err))
		}
		var src shard.Source
		if m.Dir != "" {
			db, err := c.openPath(m.Dir)
			if err != nil {
				return fail(fmt.Errorf("catalog: shard member %q: %w", m.Name, err))
			}
			if c.cfg.ScanCacheBytes > 0 {
				db.EnableSegmentScanCache(c.cfg.ScanCacheBytes)
			}
			db.SetScanPool(c.scanPool)
			if c.cfg.CompactInterval > 0 {
				db.StartCompactor(c.cfg.CompactInterval)
			}
			src = shard.NewLocalSource(db)
		} else {
			cl, err := client.New(m.URL, client.Options{
				Dataset:  m.Dataset,
				Timeout:  opts.ShardTimeout,
				Retries:  opts.Retries,
				Backoff:  opts.Backoff,
				ClientID: "aiql-shard-coordinator",
			})
			if err != nil {
				return fail(fmt.Errorf("catalog: shard member %q: %w", m.Name, err))
			}
			src = cl
		}
		members = append(members, shard.Member{Name: m.Name, Source: src, Remote: m.URL != "", Bounds: b})
	}
	coord := shard.NewCoordinator(spec.Dataset, members, shard.Options{
		ShardTimeout:  opts.ShardTimeout,
		ProbeInterval: opts.ProbeInterval,
	})
	svcCfg := c.cfg.Service
	svcCfg.Dataset = spec.Dataset
	svcCfg.Metrics = c.cfg.Metrics
	svcCfg.SlowLog = c.cfg.SlowLog
	d := &Dataset{name: spec.Dataset, svc: service.NewSharded(aiql.Open(), coord, svcCfg)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sets[spec.Dataset]; ok {
		coord.Close()
		return nil, fmt.Errorf("catalog: dataset %q already registered", spec.Dataset)
	}
	c.install(d)
	return d, nil
}
