package catalog

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/service"
	"github.com/aiql/aiql/internal/shard"
)

// shardDay returns the unix-nano start of a May 2018 day, the axis the
// partition maps in these tests slice on.
func shardDay(d int) int64 {
	return time.Date(2018, 5, d, 0, 0, 0, 0, time.UTC).UnixNano()
}

// shardCorpus builds a deterministic event set spanning May 10-12, all
// matching demoQuery, with per-event file paths so row identity is
// byte-comparable across executions.
func shardCorpus() []aiql.Record {
	var recs []aiql.Record
	for i := 0; i < 60; i++ {
		recs = append(recs, aiql.Record{
			AgentID: uint32(1 + i%3),
			Subject: aiql.Process{PID: 100, ExeName: "worker.exe", Path: `C:\bin\worker.exe`, User: "alice"},
			Op:      aiql.OpWrite,
			ObjType: aiql.EntityFile,
			ObjFile: aiql.File{Path: fmt.Sprintf(`C:\logs\evt%02d.log`, i)},
			StartTS: shardDay(10+i%3) + int64(i)*int64(time.Minute),
		})
	}
	return recs
}

// writeMemberDir persists records into a durable store directory and
// closes it, leaving the directory for a shard member to open.
func writeMemberDir(t testing.TB, dir string, recs []aiql.Record) {
	t.Helper()
	storage := eventstore.DefaultOptions()
	storage.Dir = dir
	db, err := aiql.OpenDirWithOptions(storage, aiql.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	db.AppendAll(recs)
	db.Flush()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// splitByDay partitions the corpus at the given day boundary.
func splitByDay(recs []aiql.Record, boundary int64) (before, after []aiql.Record) {
	for _, r := range recs {
		if r.StartTS < boundary {
			before = append(before, r)
		} else {
			after = append(after, r)
		}
	}
	return
}

// newShardedCatalog assembles the golden-test topology: dataset "all"
// holds the whole corpus unsharded; dataset "sharded" splits it at May
// 11 between a local member directory and a remote member served by a
// second catalog over HTTP. Returns the coordinator catalog and the
// member server (closed via t.Cleanup).
func newShardedCatalog(t *testing.T, reg *obs.Registry) *Catalog {
	t.Helper()
	recs := shardCorpus()
	early, late := splitByDay(recs, shardDay(11))
	earlyDir, lateDir := t.TempDir(), t.TempDir()
	writeMemberDir(t, earlyDir, early)
	writeMemberDir(t, lateDir, late)

	mcat := New(Config{})
	if _, err := mcat.AddDir("events", lateDir); err != nil {
		t.Fatal(err)
	}
	msrv := httptest.NewServer(mcat.Handler())
	t.Cleanup(msrv.Close)

	cat := New(Config{Metrics: reg})
	all := aiql.Open()
	all.AppendAll(recs)
	all.Flush()
	if _, err := cat.AddDB("all", all); err != nil {
		t.Fatal(err)
	}
	_, err := cat.AddSharded(shard.DatasetSpec{
		Dataset: "sharded",
		Members: []shard.MemberSpec{
			{Name: "early", Dir: earlyDir, To: "05/11/2018"},
			{Name: "late", URL: msrv.URL, Dataset: "events", From: "05/11/2018"},
		},
	}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestShardedGolden is the acceptance golden test: a 2-way sharded
// dataset (one local member, one remote) answers with byte-identical
// rows, ordering, and cursor pages to the same data unsharded —
// including prepared-statement execution — and the partition map prunes
// members provably outside a query's window, observed through the
// aiql_shard_* metrics.
func TestShardedGolden(t *testing.T) {
	reg := obs.NewRegistry()
	cat := newShardedCatalog(t, reg)
	ctx := context.Background()
	sharded, err := cat.Resolve("sharded")
	if err != nil {
		t.Fatal(err)
	}
	unsharded, err := cat.Resolve("all")
	if err != nil {
		t.Fatal(err)
	}

	// full-scan equivalence
	want, err := unsharded.Do(ctx, service.Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Do(ctx, service.Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial || len(got.Warnings) != 0 {
		t.Fatalf("healthy scatter flagged partial: %+v", got.Warnings)
	}
	if !reflect.DeepEqual(got.Columns, want.Columns) || got.TotalRows != want.TotalRows {
		t.Fatalf("shape: %v/%d vs %v/%d", got.Columns, got.TotalRows, want.Columns, want.TotalRows)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatal("sharded rows are not byte-identical to the unsharded execution")
	}

	// cursor pages walk in lockstep
	gr := service.Request{Query: demoQuery, Limit: 7}
	wr := service.Request{Query: demoQuery, Limit: 7}
	for page := 0; ; page++ {
		gp, err := sharded.Do(ctx, gr)
		if err != nil {
			t.Fatalf("page %d sharded: %v", page, err)
		}
		wp, err := unsharded.Do(ctx, wr)
		if err != nil {
			t.Fatalf("page %d unsharded: %v", page, err)
		}
		if !reflect.DeepEqual(gp.Rows, wp.Rows) {
			t.Fatalf("page %d diverges", page)
		}
		if (gp.NextCursor == "") != (wp.NextCursor == "") {
			t.Fatalf("page %d: cursor presence diverges (%q vs %q)", page, gp.NextCursor, wp.NextCursor)
		}
		if gp.NextCursor == "" {
			break
		}
		gr.Cursor, wr.Cursor = gp.NextCursor, wp.NextCursor
	}

	// prepared statements fan out and stay byte-identical
	const paramQuery = `(at $day) proc p["%worker.exe"] write file f as evt return p, f`
	pg, err := sharded.Prepare(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := unsharded.Prepare(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	day := map[string]any{"day": "05/10/2018"}
	got, err = sharded.Do(ctx, service.Request{StmtID: pg.StmtID, Params: day})
	if err != nil {
		t.Fatal(err)
	}
	want, err = unsharded.Do(ctx, service.Request{StmtID: pw.StmtID, Params: day})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 || !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("prepared execution diverges (%d vs %d rows)", len(got.Rows), len(want.Rows))
	}

	// the May 10 window proves the remote member (May 11+) irrelevant:
	// it was pruned, not contacted
	st := sharded.DatasetStats("sharded")
	if st.Shards == nil {
		t.Fatal("sharded dataset stats carry no shard figures")
	}
	for _, m := range st.Shards.Members {
		switch m.Shard {
		case "late":
			if m.Pruned == 0 {
				t.Errorf("late member was never pruned: %+v", m)
			}
		case "early":
			if m.Pruned != 0 {
				t.Errorf("early member was pruned for its own window: %+v", m)
			}
		}
	}

	// the same pruning figures surface as aiql_shard_* series
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	metrics := rec.Body.String()
	var prunedSeries string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "aiql_shard_pruned_total") && strings.Contains(line, `shard="late"`) {
			prunedSeries = line
		}
	}
	if prunedSeries == "" || strings.HasSuffix(prunedSeries, " 0") {
		t.Fatalf("aiql_shard_pruned_total for the late member missing or zero: %q", prunedSeries)
	}
	for _, name := range []string{"aiql_shard_queries_total", "aiql_shard_fanouts_total", "aiql_shard_healthy", "aiql_shard_rows_total"} {
		if !strings.Contains(metrics, name) {
			t.Errorf("metrics exposition is missing %s", name)
		}
	}

	// coordinator healthz reports sharded readiness
	hrec := httptest.NewRecorder()
	cat.Handler().ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/api/v1/healthz?dataset=sharded", nil))
	if hrec.Code != http.StatusOK {
		t.Fatalf("coordinator healthz: %d %s", hrec.Code, hrec.Body.String())
	}
	var h service.Health
	if err := json.Unmarshal(hrec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Sharded || h.Status != "ok" {
		t.Fatalf("coordinator health %+v", h)
	}
}

// TestShardedStreamGolden: the streaming endpoint merges member streams
// into the same global order, with the limit pushed down.
func TestShardedStreamGolden(t *testing.T) {
	cat := newShardedCatalog(t, nil)
	unsharded, err := cat.Resolve("all")
	if err != nil {
		t.Fatal(err)
	}
	want, err := unsharded.Do(context.Background(), service.Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(service.QueryRequest{Query: demoQuery, Dataset: "sharded", Limit: 11})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/query/stream", strings.NewReader(string(body)))
	cat.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", rec.Code, rec.Body.String())
	}
	var rows [][]string
	var trailer service.StreamTrailer
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	first := true
	for sc.Scan() {
		line := sc.Text()
		switch {
		case first:
			first = false
		case strings.HasPrefix(line, "["):
			var r []string
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatal(err)
			}
			rows = append(rows, r)
		default:
			if err := json.Unmarshal([]byte(line), &trailer); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !trailer.Done || trailer.Partial {
		t.Fatalf("trailer %+v", trailer)
	}
	if len(rows) != 11 || !reflect.DeepEqual(rows, want.Rows[:11]) {
		t.Fatalf("streamed %d rows, want the unsharded sorted prefix of 11", len(rows))
	}
}

// TestShardedMemberDiesMidStream is the degradation satellite: a remote
// member that dies after contributing rows becomes a typed
// shard_unavailable warning in the stream trailer — partial, not
// failed — the healthy member's rows all arrive, and repeated queries
// do not leak goroutines.
func TestShardedMemberDiesMidStream(t *testing.T) {
	recs := shardCorpus()
	localDir := t.TempDir()
	writeMemberDir(t, localDir, recs[:40])

	// flaky member: streams a header and two rows, then drops the
	// connection without a trailer
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		enc.Encode(service.StreamHeader{Columns: []string{"p", "f"}})
		enc.Encode([]string{"~tail1", "~tail1"})
		enc.Encode([]string{"~tail2", "~tail2"})
		w.(http.Flusher).Flush()
		if hj, ok := w.(http.Hijacker); ok {
			conn, _, _ := hj.Hijack()
			conn.Close()
		}
	}))
	defer flaky.Close()

	cat := New(Config{})
	if _, err := cat.AddSharded(shard.DatasetSpec{
		Dataset: "flaky",
		Members: []shard.MemberSpec{
			{Name: "solid", Dir: localDir},
			{Name: "dying", URL: flaky.URL},
		},
	}, ShardOptions{Retries: -1}); err != nil {
		t.Fatal(err)
	}

	query := func() service.StreamTrailer {
		body, _ := json.Marshal(service.QueryRequest{Query: demoQuery, Dataset: "flaky"})
		rec := httptest.NewRecorder()
		cat.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/query/stream", strings.NewReader(string(body))))
		if rec.Code != http.StatusOK {
			t.Fatalf("stream: %d %s", rec.Code, rec.Body.String())
		}
		lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
		var tr service.StreamTrailer
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tr); err != nil {
			t.Fatalf("trailer: %v (%q)", err, lines[len(lines)-1])
		}
		if rowLines := len(lines) - 2; rowLines < 40 {
			t.Fatalf("partial stream delivered %d rows, want at least the healthy member's 40", rowLines)
		}
		return tr
	}

	tr := query()
	if !tr.Done || !tr.Partial {
		t.Fatalf("trailer %+v, want done+partial", tr)
	}
	if len(tr.Warnings) != 1 || tr.Warnings[0].Code != service.CodeShardUnavailable || tr.Warnings[0].Shard != "dying" {
		t.Fatalf("warnings %+v, want one shard_unavailable naming the dying member", tr.Warnings)
	}

	// repeated partial queries must not accumulate member goroutines
	query()
	runtime.GC()
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		query()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across partial queries", baseline, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// buffered path reports the same degradation
	svc, err := cat.Resolve("flaky")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Do(context.Background(), service.Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial || resp.NextCursor != "" {
		t.Fatalf("buffered partial: partial=%v cursor=%q", resp.Partial, resp.NextCursor)
	}

	// require_all flips degradation into a 503 shard_unavailable
	_, err = svc.Do(context.Background(), service.Request{Query: demoQuery, RequireAll: true})
	if err == nil {
		t.Fatal("require_all succeeded with a dead member")
	}
	if body := service.ErrorBody(err); body.Code != service.CodeShardUnavailable {
		t.Fatalf("require_all error code %q, want shard_unavailable", body.Code)
	}
}

// TestShardedDatasetGuards: sharded datasets refuse hot-swap and
// duplicate registration, and reject ingest at the coordinator.
func TestShardedDatasetGuards(t *testing.T) {
	localDir := t.TempDir()
	writeMemberDir(t, localDir, shardCorpus()[:5])
	cat := New(Config{})
	spec := shard.DatasetSpec{Dataset: "s", Members: []shard.MemberSpec{{Name: "m", Dir: localDir}}}
	if _, err := cat.AddSharded(spec, ShardOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.AddSharded(spec, ShardOptions{}); err == nil {
		t.Fatal("duplicate sharded dataset registered")
	}
	if _, err := cat.Load("s", localDir); err == nil {
		t.Fatal("sharded dataset accepted a hot-swap")
	}
	svc, err := cat.Resolve("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest(context.Background(), "agent", []aiql.Record{{}}); err == nil {
		t.Fatal("coordinator accepted ingest")
	}
}
