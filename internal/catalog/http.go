package catalog

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"

	"github.com/aiql/aiql/internal/service"
)

// LoadRequest is the wire form of a dataset hot-swap.
type LoadRequest struct {
	// Path is the snapshot file to load; empty reloads the dataset's
	// backing file.
	Path string `json:"path,omitempty"`
}

// LoadResponse reports a completed hot-swap.
type LoadResponse struct {
	Dataset string             `json:"dataset"`
	Path    string             `json:"path,omitempty"`
	Stats   service.StoreStats `json:"store"`
}

// DatasetsResponse lists the catalog's datasets.
type DatasetsResponse struct {
	Default  string                 `json:"default"`
	Datasets []service.DatasetStats `json:"datasets"`
}

// maxLoadBody caps hot-swap request bodies.
const maxLoadBody = 1 << 16

// Handler returns the catalog's HTTP API: the per-dataset query API
// (see service.NewHandler) plus dataset management:
//
//	GET  /api/v1/datasets              → DatasetsResponse
//	POST /api/v1/datasets/{name}/load  LoadRequest → LoadResponse
//
// A load builds the new store off to the side and swaps atomically:
// queries in flight on the old dataset complete on the snapshot they
// started with.
func (c *Catalog) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", service.NewHandler(c))
	mux.HandleFunc("/api/v1/datasets", c.handleList)
	mux.HandleFunc("/api/v1/datasets/", c.handleDataset)
	return mux
}

func (c *Catalog) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed,
			service.ErrorResponse{Code: service.CodeMethodNotAllowed, Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, DatasetsResponse{Default: c.DefaultName(), Datasets: c.Stats()})
}

// handleDataset routes /api/v1/datasets/{name}/load.
func (c *Catalog) handleDataset(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/datasets/")
	name, action, ok := strings.Cut(rest, "/")
	if !ok || name == "" || action != "load" {
		// status and code must agree with the documented table:
		// bad_request is pinned to 400
		writeJSON(w, http.StatusBadRequest, service.ErrorResponse{Code: service.CodeBadRequest,
			Error: "unknown datasets endpoint; try POST /api/v1/datasets/{name}/load"})
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed,
			service.ErrorResponse{Code: service.CodeMethodNotAllowed, Error: "POST only"})
		return
	}
	var req LoadRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxLoadBody)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest,
				service.ErrorResponse{Code: service.CodeBadRequest, Error: "bad request: " + err.Error()})
			return
		}
	}
	d, err := c.Load(name, req.Path)
	if err != nil {
		service.WriteError(w, err)
		return
	}
	st := d.Service().DatasetStats(d.Name())
	writeJSON(w, http.StatusOK, LoadResponse{Dataset: d.Name(), Path: d.Path(), Stats: st.Store})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Warn("catalog: response encode failed", "error", err)
	}
}
