package catalog

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/service"
)

// watchIngestLine renders one NDJSON ingest record matching demoQuery.
func watchIngestLine(prefix string, i int) string {
	return fmt.Sprintf(`{"agentid": %d, "op": "write", "object_type": "file", "subject": {"pid": 100, "exe_name": "worker.exe", "path": "C:\\bin\\worker.exe", "user": "alice"}, "file": {"name": "C:\\%s\\live%d.log"}, "start_ts": %d}`,
		1+i%3, prefix, i, int64(5000+i)*int64(time.Second))
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestWatchSurvivesHotSwap: a standing query and its live subscriber
// carry across a dataset hot-swap under the original watch id. The
// first post-swap evaluation re-baselines silently (the swapped-in
// history is not replayed), then fresh post-swap ingests flow to the
// same subscriber again.
func TestWatchSurvivesHotSwap(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.aiql")
	if err := buildDB(t, "x", 8).SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	if _, err := c.AddFile("inv", snap); err != nil {
		t.Fatal(err)
	}
	h := c.Handler()
	svc, err := c.Resolve("inv")
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Watch(context.Background(), demoQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := svc.Subscribe(info.WatchID)
	if err != nil {
		t.Fatal(err)
	}

	// pre-swap ingest reaches the subscriber
	if rec := do(t, h, http.MethodPost, "/api/v1/ingest?dataset=inv", watchIngestLine("pre", 0)); rec.Code != http.StatusOK {
		t.Fatalf("pre-swap ingest: %s", rec.Body.String())
	}
	select {
	case m := <-sub.Matches():
		if len(m.Rows) != 1 {
			t.Fatalf("pre-swap match = %+v", m)
		}
	default:
		t.Fatal("pre-swap ingest pushed nothing")
	}

	if _, err := c.Load("inv", snap); err != nil {
		t.Fatal(err)
	}
	svc2, err := c.Resolve("inv")
	if err != nil {
		t.Fatal(err)
	}
	after, err := svc2.WatchInfo(info.WatchID)
	if err != nil {
		t.Fatalf("watch id did not survive the hot-swap: %v", err)
	}
	if after.Subscribers != 1 {
		t.Fatalf("post-swap subscribers = %d, want the carried SSE subscription", after.Subscribers)
	}

	// first post-swap ingest re-baselines: the swapped-in store's 8
	// historical rows are recorded, the 1 fresh row rides along unseen —
	// nothing is pushed
	if rec := do(t, h, http.MethodPost, "/api/v1/ingest?dataset=inv", watchIngestLine("rebase", 1)); rec.Code != http.StatusOK {
		t.Fatalf("re-baseline ingest: %s", rec.Body.String())
	}
	select {
	case m := <-sub.Matches():
		t.Fatalf("re-baseline pushed %d rows; history must not replay", len(m.Rows))
	default:
	}

	// the next ingest is a normal delta push to the carried subscriber
	if rec := do(t, h, http.MethodPost, "/api/v1/ingest?dataset=inv", watchIngestLine("post", 2)); rec.Code != http.StatusOK {
		t.Fatalf("post-swap ingest: %s", rec.Body.String())
	}
	select {
	case m := <-sub.Matches():
		if len(m.Rows) != 1 || !strings.Contains(strings.Join(m.Rows[0], " "), "post") {
			t.Fatalf("post-swap match = %+v, want the single post-swap row", m)
		}
	default:
		t.Fatal("post-swap ingest pushed nothing to the carried subscriber")
	}

	// deleting on the new service closes the carried subscription
	if err := svc2.Unwatch(info.WatchID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Closed():
	case <-time.After(5 * time.Second):
		t.Fatal("carried subscription not closed by post-swap delete")
	}
}

// TestConcurrentIngestWatchCursorHotSwap is the -race regression for
// the live-ingestion stack: HTTP NDJSON ingests (with synchronous
// standing-query evaluation), cursor-paginated reads, an SSE-style
// subscriber draining matches, and repeated catalog hot-swaps all run
// concurrently. Every operation must succeed or fail with a clean
// contract error — no data races, no torn registries, no stuck ingests.
func TestConcurrentIngestWatchCursorHotSwap(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.aiql")
	if err := buildDB(t, "x", 30).SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	if _, err := c.AddFile("inv", snap); err != nil {
		t.Fatal(err)
	}
	h := c.Handler()
	svc, err := c.Resolve("inv")
	if err != nil {
		t.Fatal(err)
	}
	winfo, err := svc.Watch(context.Background(), demoQuery, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ingests, pages, drained, swaps atomic.Int64
	errs := make(chan error, 16)
	workers := 0

	// ingesters: NDJSON batches through the HTTP handler; dataset
	// teardown mid-commit must surface as dataset_reloading, never as a
	// torn batch
	for g := 0; g < 3; g++ {
		wg.Add(1)
		workers++
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				var body strings.Builder
				for j := 0; j < 4; j++ {
					body.WriteString(watchIngestLine(fmt.Sprintf("g%d", g), i*4+j) + "\n")
				}
				rec := do(t, h, http.MethodPost, "/api/v1/ingest?dataset=inv", body.String())
				switch rec.Code {
				case http.StatusOK:
					ingests.Add(1)
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					// shed or mid-swap: both are clean rejections
				default:
					errs <- fmt.Errorf("ingester %d: status %d: %s", g, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}

	// readers: cursor pagination across whatever service currently
	// serves the dataset; swaps may expire a cursor chain mid-walk
	for r := 0; r < 3; r++ {
		wg.Add(1)
		workers++
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				s, err := c.Resolve("inv")
				if err != nil {
					errs <- err
					return
				}
				cursor := ""
				for page := 0; page < 50; page++ {
					resp, err := s.Do(ctx, service.Request{
						Query:  demoQuery,
						Limit:  7,
						Cursor: cursor,
						Client: fmt.Sprintf("reader-%d", r),
					})
					switch {
					case err == nil:
						pages.Add(1)
						cursor = resp.NextCursor
					case errors.Is(err, service.ErrClientThrottled),
						errors.Is(err, service.ErrOverloaded),
						errors.Is(err, service.ErrCursorExpired),
						errors.Is(err, aiql.ErrClosed):
						cursor = ""
					default:
						errs <- fmt.Errorf("reader %d: %v", r, err)
						return
					}
					if cursor == "" {
						break
					}
				}
			}
		}(r)
	}

	// subscriber: drains matches from whichever service holds the watch,
	// re-subscribing across swaps (the carried sub also keeps working;
	// this exercises the subscribe/unsubscribe paths under churn)
	wg.Add(1)
	workers++
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			s, err := c.Resolve("inv")
			if err != nil {
				errs <- err
				return
			}
			sub, err := s.Subscribe(winfo.WatchID)
			if err != nil {
				// the watch can be mid-adoption during a swap
				if errors.Is(err, service.ErrWatchNotFound) {
					continue
				}
				errs <- err
				return
			}
			for i := 0; i < 20; i++ {
				select {
				case <-sub.Matches():
					drained.Add(1)
				case <-sub.Closed():
					i = 20
				case <-time.After(5 * time.Millisecond):
					i = 20
				case <-stop:
					i = 20
				}
			}
			s.Unsubscribe(winfo.WatchID, sub)
		}
	}()

	// swapper: hot-swap the dataset back to the snapshot repeatedly
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			time.Sleep(60 * time.Millisecond)
			if _, err := c.Load("inv", snap); err != nil {
				t.Errorf("hot-swap: %v", err)
				return
			}
			swaps.Add(1)
		}
		close(stop)
	}()

	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	if ingests.Load() == 0 || pages.Load() == 0 || swaps.Load() != 5 {
		t.Fatalf("test exercised nothing: %d ingests, %d pages, %d swaps", ingests.Load(), pages.Load(), swaps.Load())
	}

	// the watch still answers under its original id on the final service
	s, err := c.Resolve("inv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WatchInfo(winfo.WatchID); err != nil {
		t.Fatalf("watch lost across %d swaps: %v", swaps.Load(), err)
	}
	if rec := do(t, h, http.MethodGet, "/api/v1/watch?dataset=inv", ""); rec.Code != http.StatusOK {
		t.Errorf("final watch list: %s", rec.Body.String())
	} else {
		var infos []service.WatchInfo
		if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil || len(infos) != 1 {
			t.Errorf("final watch list = %s", rec.Body.String())
		}
	}
	t.Logf("%d ingests, %d pages, %d matches drained across %d hot-swaps",
		ingests.Load(), pages.Load(), drained.Load(), swaps.Load())
}
