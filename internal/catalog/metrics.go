package catalog

import (
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/service"
)

// registerCollector wires the catalog's subsystem counters into the
// metrics registry as one scrape-time collector: every sample is read
// from the live per-dataset stats snapshots, so /metrics and
// /api/v1/stats report from the same source of truth and a dataset
// hot-swap is picked up automatically (the collector walks whatever
// datasets the catalog holds at scrape time). The shared scan pool is
// emitted once, unlabeled, since its figures are process-global.
func (c *Catalog) registerCollector(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetCollector("catalog", func() []obs.Sample {
		var out []obs.Sample
		for _, st := range c.Stats() {
			out = append(out, datasetSamples(st)...)
		}
		ps := c.scanPool.Stats()
		out = append(out,
			gauge("aiql_scan_pool_workers", "Parallel-scan helper slot capacity.", nil, float64(ps.Workers)),
			gauge("aiql_scan_pool_busy", "Parallel-scan helpers currently running a task.", nil, float64(ps.Busy)),
			counter("aiql_scan_pool_tasks_total", "Scan tasks ever started on a pooled helper.", nil, float64(ps.Tasks)),
			counter("aiql_scan_pool_saturated_total", "Pool submissions refused for lack of a free slot (ran inline).", nil, float64(ps.Saturated)),
		)
		return out
	})
}

func counter(name, help string, labels []obs.Label, v float64) obs.Sample {
	return obs.Sample{Name: name, Help: help, Kind: obs.KindCounter, Labels: labels, Value: v}
}

func gauge(name, help string, labels []obs.Label, v float64) obs.Sample {
	return obs.Sample{Name: name, Help: help, Kind: obs.KindGauge, Labels: labels, Value: v}
}

// datasetSamples flattens one dataset's statistics blob into labeled
// samples, one series per counter the JSON stats endpoint reports.
func datasetSamples(st service.DatasetStats) []obs.Sample {
	lbl := []obs.Label{{Name: "dataset", Value: st.Dataset}}
	sv, store, sc := st.Service, st.Store, st.ScanCache
	dur, stg, bc := st.Durable, st.Storage, st.Storage.BlockCache
	pr, ing, w := st.Prepared, st.Ingest, st.Watch
	out := []obs.Sample{
		counter("aiql_queries_total", "Query requests received (buffered and streaming).", lbl, float64(sv.Queries)),
		counter("aiql_executions_total", "Engine executions actually started.", lbl, float64(sv.Executions)),
		counter("aiql_cache_hits_total", "Query requests served from the result cache.", lbl, float64(sv.CacheHits)),
		counter("aiql_cache_misses_total", "Query requests that missed the result cache.", lbl, float64(sv.CacheMisses)),
		counter("aiql_coalesced_total", "Cache misses served by an identical in-flight execution.", lbl, float64(sv.Coalesced)),
		counter("aiql_rejected_total", "Queries shed by admission control.", lbl, float64(sv.Rejected)),
		counter("aiql_throttled_total", "Queries rejected by per-client fairness.", lbl, float64(sv.Throttled)),
		counter("aiql_timeouts_total", "Queries aborted by their execution deadline.", lbl, float64(sv.Timeouts)),
		counter("aiql_canceled_total", "Queries abandoned by their client.", lbl, float64(sv.Canceled)),
		counter("aiql_errors_total", "Queries that failed with an execution or validation error.", lbl, float64(sv.Errors)),
		counter("aiql_rows_streamed_total", "Rows delivered through the streaming endpoint.", lbl, float64(sv.RowsStreamed)),
		gauge("aiql_active_queries", "Queries currently executing.", lbl, float64(sv.Active)),
		gauge("aiql_queued_queries", "Queries waiting for a worker slot.", lbl, float64(sv.Queued)),
		gauge("aiql_result_cache_entries", "Entries resident in the result cache.", lbl, float64(sv.CacheEntries)),
		gauge("aiql_result_cache_bytes", "Approximate bytes resident in the result cache.", lbl, float64(sv.CacheBytes)),
		gauge("aiql_store_events", "Events resident in the store.", lbl, float64(store.Events)),
		gauge("aiql_store_segments", "Sealed segments in the store.", lbl, float64(store.Segments)),
		gauge("aiql_store_sealed_bytes", "Approximate bytes held by sealed segments.", lbl, float64(store.SealedBytes)),
		gauge("aiql_store_memtable_events", "Events in the unsealed memtables.", lbl, float64(store.MemtableEvents)),
		counter("aiql_scan_cache_hits_total", "Sealed-segment scans served from the scan cache.", lbl, float64(sc.Hits)),
		counter("aiql_scan_cache_misses_total", "Sealed-segment scans that had to run.", lbl, float64(sc.Misses)),
		gauge("aiql_scan_cache_entries", "Entries resident in the segment scan cache.", lbl, float64(sc.Entries)),
		gauge("aiql_scan_cache_bytes", "Approximate bytes resident in the segment scan cache.", lbl, float64(sc.Bytes)),
		counter("aiql_wal_syncs_total", "WAL fsync batches.", lbl, float64(dur.WALSyncs)),
		gauge("aiql_wal_bytes", "Bytes in the live WAL.", lbl, float64(dur.WALBytes)),
		counter("aiql_compactions_total", "Background compaction passes that merged segments.", lbl, float64(dur.Compactions)),
		counter("aiql_segments_compacted_total", "Sealed segments consumed by compaction.", lbl, float64(dur.SegmentsCompacted)),
		gauge("aiql_segment_files", "Segment files on disk.", lbl, float64(dur.SegmentFiles)),
		gauge("aiql_segment_file_bytes", "Bytes of segment files on disk.", lbl, float64(dur.SegmentFileBytes)),
		gauge("aiql_storage_mapped_bytes", "Bytes of segment files currently memory-mapped.", lbl, float64(stg.MappedBytes)),
		gauge("aiql_storage_heap_bytes", "Approximate heap bytes held by segment data.", lbl, float64(stg.HeapBytes)),
		counter("aiql_block_cache_hits_total", "Block reads served from the decompressed-block cache.", lbl, float64(bc.Hits)),
		counter("aiql_block_cache_misses_total", "Block reads that decompressed from disk.", lbl, float64(bc.Misses)),
		counter("aiql_block_cache_evictions_total", "Blocks evicted from the decompressed-block cache.", lbl, float64(bc.Evictions)),
		gauge("aiql_block_cache_bytes", "Bytes resident in the decompressed-block cache.", lbl, float64(bc.Bytes)),
		gauge("aiql_block_cache_entries", "Blocks resident in the decompressed-block cache.", lbl, float64(bc.Entries)),
		gauge("aiql_prepared_statements", "Statements resident in the prepared registry.", lbl, float64(pr.Statements)),
		counter("aiql_prepared_hits_total", "Prepared-statement executions that found their handle.", lbl, float64(pr.Hits)),
		counter("aiql_prepared_misses_total", "Prepared-statement lookups that missed.", lbl, float64(pr.Misses)),
		counter("aiql_prepared_evictions_total", "Statements evicted from the prepared registry.", lbl, float64(pr.Evictions)),
		counter("aiql_prepared_expired_total", "Statements expired by the idle TTL.", lbl, float64(pr.Expired)),
		counter("aiql_ingest_requests_total", "Accepted ingest batches.", lbl, float64(ing.Requests)),
		counter("aiql_ingest_events_total", "Events committed across all ingest batches.", lbl, float64(ing.Events)),
		counter("aiql_ingest_rejected_total", "Ingest batches refused before commit.", lbl, float64(ing.Rejected)),
		gauge("aiql_watches", "Registered standing queries.", lbl, float64(w.Watches)),
		counter("aiql_watch_evals_total", "Post-ingest standing-query evaluations.", lbl, float64(w.Evals)),
		counter("aiql_watch_matches_total", "Fresh rows pushed to watch subscribers.", lbl, float64(w.Matches)),
		counter("aiql_watch_dropped_total", "Watch matches discarded by slow subscribers' buffers.", lbl, float64(w.Dropped)),
	}
	if sh := st.Shards; sh != nil {
		out = append(out,
			counter("aiql_shard_queries_total", "Queries fanned out by the shard coordinator.", lbl, float64(sh.Queries)),
			counter("aiql_shard_partial_total", "Sharded queries that returned partial results.", lbl, float64(sh.Partial)),
			gauge("aiql_shard_generation", "Hash of every member's store epoch (cache invalidation signal).", lbl, float64(sh.Generation)),
		)
		for _, m := range sh.Members {
			ml := append([]obs.Label{{Name: "shard", Value: m.Shard}}, lbl...)
			healthy := 0.0
			if m.Healthy {
				healthy = 1
			}
			out = append(out,
				gauge("aiql_shard_healthy", "Whether the member answered its last probe or query.", ml, healthy),
				counter("aiql_shard_fanouts_total", "Queries dispatched to the member.", ml, float64(m.Fanouts)),
				counter("aiql_shard_pruned_total", "Queries skipped at the member by partition-map pruning.", ml, float64(m.Pruned)),
				counter("aiql_shard_retries_total", "Transport retries against the member.", ml, float64(m.Retries)),
				counter("aiql_shard_errors_total", "Member executions that failed.", ml, float64(m.Errors)),
				counter("aiql_shard_rows_total", "Rows the member contributed to merges.", ml, float64(m.Rows)),
			)
		}
	}
	return out
}
