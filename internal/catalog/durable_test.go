package catalog

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/service"
)

// buildSegmentedDir creates a durable store directory holding events
// fragmented into many tiny sealed segments.
func buildSegmentedDir(t testing.TB, dir string, batches, perBatch int) int {
	t.Helper()
	storage := eventstore.DefaultOptions()
	storage.Dir = dir
	storage.BatchCommit = false
	storage.CompactTargetEvents = batches * perBatch
	db, err := aiql.OpenDirWithOptions(storage, aiql.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	n := 0
	for b := 0; b < batches; b++ {
		recs := make([]aiql.Record, 0, perBatch)
		for i := 0; i < perBatch; i++ {
			recs = append(recs, aiql.Record{
				AgentID: 1,
				Subject: aiql.Process{PID: 100, ExeName: "worker.exe", Path: `C:\bin\worker.exe`, User: "alice"},
				Op:      aiql.OpWrite,
				ObjType: aiql.EntityFile,
				ObjFile: aiql.File{Path: fmt.Sprintf(`C:\logs\out%d.log`, n)},
				StartTS: int64(n) * int64(time.Second),
			})
			n++
		}
		db.AppendAll(recs)
		db.Flush() // tiny seal per batch
	}
	segs := db.SegmentStats().Segments
	if segs < batches {
		t.Fatalf("setup sealed only %d segments, want >= %d", segs, batches)
	}
	return n
}

// TestCatalogServesDurableDirectory: a durable directory registers,
// serves queries, and hot-reloads.
func TestCatalogServesDurableDirectory(t *testing.T) {
	dir := t.TempDir()
	events := buildSegmentedDir(t, dir, 8, 4)

	c := New(Config{})
	d, err := c.AddDir("dur", dir)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := d.Service().Do(context.Background(), service.Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalRows != events {
		t.Fatalf("durable dataset returned %d rows, want %d", resp.TotalRows, events)
	}
	if st := d.Service().DatasetStats("dur"); st.Durable.Dir != dir || st.Durable.SegmentFiles == 0 {
		t.Fatalf("stats missing durable figures: %+v", st.Durable)
	}
}

// The satellite scenario: a hot-swap lands while the old dataset's
// compaction is in flight. Queries started on the old service must
// finish on their pinned snapshot, and the reloaded dataset must open
// from the compacted manifest.
func TestHotSwapDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	events := buildSegmentedDir(t, dir, 16, 4)

	c := New(Config{})
	d, err := c.AddDir("x", dir)
	if err != nil {
		t.Fatal(err)
	}
	oldSvc := d.Service()
	segsBefore := oldSvc.DatasetStats("x").Store.Segments

	// queries hammer the old service while compaction runs and the
	// catalog entry is swapped out from under it
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := oldSvc.Do(context.Background(), service.Request{Query: demoQuery})
				if err != nil {
					errs <- err
					return
				}
				if resp.TotalRows != events {
					errs <- fmt.Errorf("in-flight query on old dataset saw %d rows, want %d", resp.TotalRows, events)
					return
				}
			}
		}()
	}

	// compact the old dataset's store concurrently with the queries;
	// wait for at least one pass to land so the manifest on disk is
	// known to carry a compacted edition before the swap
	compactDone := make(chan eventstore.CompactionResult, 1)
	go func() { compactDone <- oldSvc.DB().Compact() }()
	deadline := time.Now().Add(5 * time.Second)
	for oldSvc.DB().DurableStats().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// hot-swap while the compaction loop may still be mid-pass: Load
	// drains it via Close before the replacement opens the directory
	if _, err := c.Load("x", dir); err != nil {
		t.Fatal(err)
	}
	res := <-compactDone
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if res.Passes == 0 {
		t.Fatal("compaction performed no merges")
	}

	// the swapped-in dataset reads whatever manifest edition the
	// compactor had installed; reloading once more after compaction
	// finished must see the fully compacted manifest
	d2, err := c.Load("x", dir)
	if err != nil {
		t.Fatal(err)
	}
	st := d2.Service().DatasetStats("x")
	if st.Store.Segments >= segsBefore {
		t.Fatalf("reloaded dataset has %d segments, want fewer than %d (compacted manifest)", st.Store.Segments, segsBefore)
	}
	if st.Store.Events != events {
		t.Fatalf("reloaded dataset has %d events, want %d", st.Store.Events, events)
	}
	resp, err := d2.Service().Do(context.Background(), service.Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalRows != events {
		t.Fatalf("compacted dataset returned %d rows, want %d", resp.TotalRows, events)
	}
}
