package catalog

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/service"
)

const paramQuery = `proc p[$exe] write file f as evt return p, f`

// TestPreparedSurvivesHotSwap: a statement registered before a dataset
// hot-swap keeps executing under its original stmt_id afterwards, now
// against the swapped-in data.
func TestPreparedSurvivesHotSwap(t *testing.T) {
	dir := t.TempDir()
	small, big := filepath.Join(dir, "small.aiql"), filepath.Join(dir, "big.aiql")
	if err := buildDB(t, "x", 5).SaveFile(small); err != nil {
		t.Fatal(err)
	}
	if err := buildDB(t, "x", 40).SaveFile(big); err != nil {
		t.Fatal(err)
	}

	c := New(Config{})
	if _, err := c.AddFile("inv", small); err != nil {
		t.Fatal(err)
	}
	svc, err := c.Resolve("inv")
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Prepare(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bindings := map[string]any{"exe": "%worker.exe"}
	before, err := svc.Do(ctx, service.Request{StmtID: info.StmtID, Params: bindings})
	if err != nil {
		t.Fatal(err)
	}
	if before.TotalRows != 5 {
		t.Fatalf("pre-swap rows = %d", before.TotalRows)
	}

	if _, err := c.Load("inv", big); err != nil {
		t.Fatal(err)
	}
	svc2, err := c.Resolve("inv")
	if err != nil {
		t.Fatal(err)
	}
	after, err := svc2.Do(ctx, service.Request{StmtID: info.StmtID, Params: bindings})
	if err != nil {
		t.Fatalf("stmt_id did not survive the hot-swap: %v", err)
	}
	if after.TotalRows != 40 {
		t.Errorf("post-swap rows = %d, want 40 (new data)", after.TotalRows)
	}
	if st := svc2.PreparedStats(); st.Statements != 1 {
		t.Errorf("adopted registry stats = %+v", st)
	}
}

// TestPreparedConcurrentAcrossAppendSealAndHotSwap is the -race
// acceptance test: one statement prepared once, executed concurrently
// from many goroutines while a writer appends + seals into the live
// dataset and the catalog hot-swaps it mid-flight. Every execution must
// either succeed or report a clean stmt/cursor contract error — no
// races, no torn state.
func TestPreparedConcurrentAcrossAppendSealAndHotSwap(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.aiql")
	if err := buildDB(t, "x", 20).SaveFile(snap); err != nil {
		t.Fatal(err)
	}

	c := New(Config{})
	if _, err := c.AddFile("inv", snap); err != nil {
		t.Fatal(err)
	}
	svc, err := c.Resolve("inv")
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Prepare(paramQuery)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var execs, swaps atomic.Int64

	// writer: append + seal into whichever database currently serves the
	// dataset
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s, err := c.Resolve("inv")
			if err != nil {
				continue
			}
			db := s.DB()
			db.Append(aiql.Record{
				AgentID: uint32(1 + i%3),
				Subject: aiql.Process{PID: 100, ExeName: "worker.exe", Path: `C:\bin\worker.exe`, User: "alice"},
				Op:      aiql.OpWrite, ObjType: aiql.EntityFile,
				ObjFile: aiql.File{Path: fmt.Sprintf(`C:\live\%d.log`, i)},
				StartTS: int64(1000+i) * int64(time.Second),
			})
			if i%25 == 0 {
				db.Flush() // seal
			}
		}
	}()

	// readers: execute the prepared handle through whatever service the
	// catalog currently resolves
	const readers = 6
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			deadline := time.Now().Add(400 * time.Millisecond)
			for time.Now().Before(deadline) {
				s, err := c.Resolve("inv")
				if err != nil {
					errs <- err
					return
				}
				resp, err := s.Do(ctx, service.Request{
					StmtID: info.StmtID,
					Params: map[string]any{"exe": "%worker.exe"},
					Client: fmt.Sprintf("reader-%d", r),
				})
				switch {
				case err == nil:
					if resp.TotalRows < 20 {
						errs <- fmt.Errorf("result lost base rows: %d", resp.TotalRows)
						return
					}
					execs.Add(1)
				case errors.Is(err, service.ErrClientThrottled), errors.Is(err, service.ErrOverloaded):
					// clean shedding under load is fine
				default:
					errs <- err
					return
				}
			}
			errs <- nil
		}(r)
	}

	// swapper: hot-swap the dataset back to the snapshot repeatedly
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			time.Sleep(80 * time.Millisecond)
			if _, err := c.Load("inv", snap); err != nil {
				t.Errorf("hot-swap: %v", err)
				return
			}
			swaps.Add(1)
		}
	}()

	for r := 0; r < readers; r++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	if execs.Load() == 0 || swaps.Load() == 0 {
		t.Fatalf("test exercised nothing: %d execs, %d swaps", execs.Load(), swaps.Load())
	}

	// the handle still answers on the final post-swap service
	s, err := c.Resolve("inv")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Do(ctx, service.Request{StmtID: info.StmtID, Params: map[string]any{"exe": "%worker.exe"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalRows < 20 {
		t.Errorf("final rows = %d", resp.TotalRows)
	}
	t.Logf("%d executions across %d hot-swaps", execs.Load(), swaps.Load())
}
