package benchjson

import (
	"errors"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/aiql/aiql/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScanColdSequential 	      10	    213449 ns/op	       0 B/op	       0 allocs/op
BenchmarkScanColdWorkers4-8 	      10	     77741 ns/op	   12672 B/op	       7 allocs/op
some stray log line
BenchmarkBroken 	 notanumber 	 x ns/op
PASS
ok  	github.com/aiql/aiql/internal/engine	0.247s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header = %q/%q/%q", rep.GOOS, rep.GOARCH, rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (malformed line must be skipped)", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[1]
	if b.Name != "BenchmarkScanColdWorkers4-8" || b.Iterations != 10 || b.NsPerOp != 77741 {
		t.Errorf("benchmark 1 = %+v", b)
	}
	if b.MsPerOp != b.NsPerOp/1e6 {
		t.Errorf("MsPerOp = %v, want %v", b.MsPerOp, b.NsPerOp/1e6)
	}
}

func TestParseNoBenchmarks(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok\n")); !errors.Is(err, ErrNoBenchmarks) {
		t.Fatalf("want ErrNoBenchmarks, got %v", err)
	}
}

func TestEncodeRoundTrips(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	enc, err := rep.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out := string(enc)
	if !strings.HasSuffix(out, "\n") {
		t.Error("encoded report must end in a newline")
	}
	for _, want := range []string{`"goos": "linux"`, `"ns_per_op": 213449`, `"BenchmarkScanColdWorkers4-8"`} {
		if !strings.Contains(out, want) {
			t.Errorf("encoded report missing %s", want)
		}
	}
}
