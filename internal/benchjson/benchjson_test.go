package benchjson

import (
	"errors"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/aiql/aiql/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScanColdSequential 	      10	    213449 ns/op	       0 B/op	       0 allocs/op
BenchmarkScanColdWorkers4-8 	      10	     77741 ns/op	   12672 B/op	       7 allocs/op
some stray log line
BenchmarkBroken 	 notanumber 	 x ns/op
PASS
ok  	github.com/aiql/aiql/internal/engine	0.247s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header = %q/%q/%q", rep.GOOS, rep.GOARCH, rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (malformed line must be skipped)", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[1]
	if b.Name != "BenchmarkScanColdWorkers4-8" || b.Iterations != 10 || b.NsPerOp != 77741 {
		t.Errorf("benchmark 1 = %+v", b)
	}
	if b.MsPerOp != b.NsPerOp/1e6 {
		t.Errorf("MsPerOp = %v, want %v", b.MsPerOp, b.NsPerOp/1e6)
	}
}

func TestParseNoBenchmarks(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok\n")); !errors.Is(err, ErrNoBenchmarks) {
		t.Fatalf("want ErrNoBenchmarks, got %v", err)
	}
}

func TestEncodeRoundTrips(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	enc, err := rep.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out := string(enc)
	if !strings.HasSuffix(out, "\n") {
		t.Error("encoded report must end in a newline")
	}
	for _, want := range []string{`"goos": "linux"`, `"ns_per_op": 213449`, `"BenchmarkScanColdWorkers4-8"`} {
		if !strings.Contains(out, want) {
			t.Errorf("encoded report missing %s", want)
		}
	}
}

func TestAssertRatio(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// 77741 / 213449 ≈ 0.364 — passes a 1.05 bound; suffix "-8" on the
	// numerator must resolve from the bare name.
	r, err := rep.AssertRatio("BenchmarkScanColdWorkers4/BenchmarkScanColdSequential<=1.05")
	if err != nil {
		t.Fatalf("AssertRatio: %v", err)
	}
	if !r.Pass || r.Value < 0.36 || r.Value > 0.37 || r.Limit != 1.05 {
		t.Errorf("ratio = %+v", r)
	}
	// Inverted ratio ≈ 2.75 — must fail the bound without erroring.
	r, err = rep.AssertRatio("BenchmarkScanColdSequential/BenchmarkScanColdWorkers4<=1.05")
	if err != nil {
		t.Fatalf("AssertRatio inverted: %v", err)
	}
	if r.Pass || r.Value < 2.7 || r.Value > 2.8 {
		t.Errorf("inverted ratio = %+v", r)
	}
	if len(rep.Ratios) != 2 {
		t.Errorf("report recorded %d ratios, want 2", len(rep.Ratios))
	}
	enc, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), `"ratios"`) {
		t.Error("encoded report missing ratios block")
	}

	for _, bad := range []string{
		"no-limit-separator",
		"OnlyOneName<=1.05",
		"A/B<=zero",
		"A/B<=-1",
		"BenchmarkMissing/BenchmarkScanColdSequential<=1.05",
		"BenchmarkScanColdSequential/BenchmarkMissing<=1.05",
	} {
		if _, err := rep.AssertRatio(bad); err == nil {
			t.Errorf("AssertRatio(%q) succeeded; want error", bad)
		}
	}
}
