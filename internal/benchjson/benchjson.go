// Package benchjson parses `go test -bench` output into a
// machine-readable JSON benchmark report, so CI can record the perf
// trajectory per PR as an artifact. Command benchjson wraps it for
// Makefile pipelines; benchmark tests use it directly to emit their
// report next to the regular test output.
package benchjson

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MsPerOp    float64 `json:"ms_per_op"`
}

// Ratio is one asserted ns/op comparison between two benchmarks in the
// report, recorded in the artifact so CI history shows the margin, not
// just pass/fail.
type Ratio struct {
	Name  string  `json:"name"` // "Numerator/Denominator"
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
	Pass  bool    `json:"pass"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Ratios     []Ratio     `json:"ratios,omitempty"`
}

// ErrNoBenchmarks reports that the parsed stream held no benchmark
// result lines (e.g. the bench run failed before printing any).
var ErrNoBenchmarks = errors.New("benchjson: no benchmark lines found")

// Parse reads `go test -bench` output and collects every benchmark
// result line plus the goos/goarch/cpu header. It returns
// ErrNoBenchmarks when the stream held none.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		// BenchmarkName-8   	       3	 123456789 ns/op [...]
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name:       fields[0],
			Iterations: iters,
			NsPerOp:    ns,
			MsPerOp:    ns / 1e6,
		})
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Benchmarks) == 0 {
		return rep, ErrNoBenchmarks
	}
	return rep, nil
}

// find returns the first benchmark whose name matches exactly or up to
// the `-N` GOMAXPROCS suffix go test appends (BenchmarkX-8).
func (rep Report) find(name string) (Benchmark, bool) {
	for _, b := range rep.Benchmarks {
		if b.Name == name || strings.HasPrefix(b.Name, name+"-") {
			return b, true
		}
	}
	return Benchmark{}, false
}

// AssertRatio evaluates a "Numerator/Denominator<=Limit" spec against
// the report's ns/op figures, appends the outcome to rep.Ratios, and
// reports whether the bound held. It errors when the spec is malformed
// or names a benchmark the report does not contain — CI must fail on a
// gate that silently measured nothing.
func (rep *Report) AssertRatio(spec string) (Ratio, error) {
	names, limitStr, ok := strings.Cut(spec, "<=")
	if !ok {
		return Ratio{}, fmt.Errorf("benchjson: ratio spec %q, want Numerator/Denominator<=Limit", spec)
	}
	num, den, ok := strings.Cut(names, "/")
	if !ok || num == "" || den == "" {
		return Ratio{}, fmt.Errorf("benchjson: ratio spec %q, want Numerator/Denominator<=Limit", spec)
	}
	limit, err := strconv.ParseFloat(strings.TrimSpace(limitStr), 64)
	if err != nil || limit <= 0 {
		return Ratio{}, fmt.Errorf("benchjson: ratio spec %q: bad limit %q", spec, limitStr)
	}
	num, den = strings.TrimSpace(num), strings.TrimSpace(den)
	nb, ok := rep.find(num)
	if !ok {
		return Ratio{}, fmt.Errorf("benchjson: ratio spec %q: no benchmark %q in report", spec, num)
	}
	db, ok := rep.find(den)
	if !ok {
		return Ratio{}, fmt.Errorf("benchjson: ratio spec %q: no benchmark %q in report", spec, den)
	}
	if db.NsPerOp <= 0 {
		return Ratio{}, fmt.Errorf("benchjson: ratio spec %q: denominator %q has no ns/op", spec, den)
	}
	r := Ratio{
		Name:  num + "/" + den,
		Value: nb.NsPerOp / db.NsPerOp,
		Limit: limit,
	}
	r.Pass = r.Value <= limit
	rep.Ratios = append(rep.Ratios, r)
	return r, nil
}

// Encode marshals the report as indented JSON with a trailing newline.
func (rep Report) Encode() ([]byte, error) {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(enc, '\n'), nil
}

// WriteFile writes the report to path ("" or "-" = stdout).
func (rep Report) WriteFile(path string) error {
	enc, err := rep.Encode()
	if err != nil {
		return err
	}
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
	return nil
}
