// Package datagen synthesizes enterprise system-monitoring data: multi-
// host background workloads (services, interactive sessions, builds, web
// traffic) with the paper's two APT attack scenarios injected as ground
// truth. Generation is fully deterministic under a seed, so experiments
// and tests are reproducible.
//
// This package substitutes for the paper's production deployment (auditd/
// ETW/DTrace agents on 150 enterprise hosts): the query engines consume
// identical SVO event streams, and the generator reproduces the data
// characteristics the optimizations exploit — heavy skew toward a few
// busy system processes, strong spatial/temporal locality, and attack
// traces that are vanishingly rare relative to background noise.
package datagen

import (
	"math/rand"
	"time"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

// Scenario selects an attack trace to inject.
type Scenario string

// The two APT scenarios of the paper.
const (
	// ScenarioDemoAPT is the five-step attack of the demo (Figure 2):
	// IRC exploit, malware infection, privilege escalation, credential
	// dumping on the domain controller, and database exfiltration.
	ScenarioDemoAPT Scenario = "demo-apt"
	// ScenarioATCCase is the APT case study of the underlying ATC'18
	// paper (Figure 5's workload): phishing delivery, backdoor download,
	// privilege escalation, lateral movement, and document exfiltration.
	ScenarioATCCase Scenario = "atc-case"
)

// Well-known agents and endpoints of the generated enterprise. Agent IDs
// below FirstWorkstation are servers.
const (
	AgentWebServer   = 1 // Linux web/IRC server (demo entry point)
	AgentDBServer    = 2 // Windows SQL database server
	AgentDC          = 3 // Windows domain controller
	AgentFileServer  = 4 // Windows file server (ATC exfil source)
	FirstWorkstation = 5

	// AttackerIP receives exfiltrated data in both scenarios ("XXX.129").
	AttackerIP = "203.0.113.129"
	// ATCAttackerIP is the ATC scenario's command-and-control host.
	ATCAttackerIP = "198.51.100.77"
)

// Attack timing inside the generated day.
const (
	DemoAttackHour = 13 // demo APT runs 13:00–14:00
	ATCAttackHour  = 15 // ATC case runs 15:00–16:00
)

// DefaultStart is the first instant of the generated timeline, matching
// the paper's obfuscated "mm/dd/2018" window.
var DefaultStart = time.Date(2018, 5, 10, 0, 0, 0, 0, time.UTC)

// Config controls generation.
type Config struct {
	Seed      int64
	Hosts     int           // number of agents; servers occupy IDs 1..4
	Events    int           // approximate number of background events
	Start     time.Time     // timeline start (DefaultStart when zero)
	Duration  time.Duration // timeline span (24h when zero)
	Scenarios []Scenario
}

func (c Config) normalized() Config {
	if c.Hosts < 5 {
		c.Hosts = 5
	}
	if c.Events <= 0 {
		c.Events = 100000
	}
	if c.Start.IsZero() {
		c.Start = DefaultStart
	}
	if c.Duration <= 0 {
		c.Duration = 24 * time.Hour
	}
	return c
}

// Generate produces the full record stream, background plus injected
// scenarios, sorted by start timestamp.
func Generate(cfg Config) []eventstore.Record {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, rng: rng}
	g.buildHosts()
	recs := g.background()
	for _, sc := range cfg.Scenarios {
		switch sc {
		case ScenarioDemoAPT:
			recs = append(recs, g.demoAPT()...)
		case ScenarioATCCase:
			recs = append(recs, g.atcCase()...)
		}
	}
	sortRecords(recs)
	return recs
}

// GenerateInto generates and ingests into a store.
func GenerateInto(s *eventstore.Store, cfg Config) int {
	recs := Generate(cfg)
	s.AppendAll(recs)
	s.Flush()
	return len(recs)
}

func sortRecords(recs []eventstore.Record) {
	// insertion-friendly sort by timestamp: use sort.SliceStable for
	// deterministic ordering of equal timestamps
	sortSliceStable(recs, func(i, j int) bool { return recs[i].StartTS < recs[j].StartTS })
}

// sortSliceStable avoids importing sort in several files.
func sortSliceStable(recs []eventstore.Record, less func(i, j int) bool) {
	// simple binary insertion would be O(n^2); delegate to stdlib
	stableSort(recs, less)
}

// hostProfile describes one agent's background behavior.
type hostProfile struct {
	agent    uint32
	os       string // "windows" or "linux"
	role     string // "web", "db", "dc", "file", "workstation"
	procs    []sysmon.Process
	files    []string
	weight   int // relative share of background events
	internal string
}

type generator struct {
	cfg   Config
	rng   *rand.Rand
	hosts []hostProfile
	// shared pools
	externalIPs []string
}

func (g *generator) at(hour, min, sec int) int64 {
	return g.cfg.Start.Add(time.Duration(hour)*time.Hour +
		time.Duration(min)*time.Minute + time.Duration(sec)*time.Second).UnixNano()
}

// rnd returns a deterministic pseudo-random int in [0, n).
func (g *generator) rnd(n int) int { return g.rng.Intn(n) }
