package datagen

import (
	"fmt"
	"sort"
	"time"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

func stableSort(recs []eventstore.Record, less func(i, j int) bool) {
	sort.SliceStable(recs, less)
}

// windowsServices and friends are the background process populations.
var (
	windowsServices = []string{"svchost.exe", "services.exe", "lsass.exe", "wininit.exe", "explorer.exe", "spoolsv.exe", "taskhost.exe"}
	windowsApps     = []string{"chrome.exe", "firefox.exe", "outlook.exe", "winword.exe", "excel.exe", "notepad.exe", "teams.exe"}
	windowsShells   = []string{"cmd.exe", "powershell.exe"}
	linuxServices   = []string{"systemd", "sshd", "cron", "rsyslogd", "dbus-daemon"}
	linuxApps       = []string{"bash", "vim", "python3", "curl", "git", "make", "gcc"}
	webProcs        = []string{"apache2", "nginx", "php-fpm", "unrealircd"}
	dbProcs         = []string{"sqlservr.exe", "sqlwriter.exe", "sqlagent.exe"}
	dcProcs         = []string{"lsass.exe", "ntds.exe", "dns.exe", "kdc.exe"}
	fileProcs       = []string{"lanmanserver.exe", "srv2.exe", "smbd"}
)

func (g *generator) buildHosts() {
	mk := func(agent uint32, os, role string, names []string, weight int) hostProfile {
		h := hostProfile{
			agent: agent, os: os, role: role, weight: weight,
			internal: fmt.Sprintf("10.0.0.%d", agent),
		}
		pid := uint32(400 + agent*17)
		user := "system"
		if os == "linux" {
			user = "root"
		}
		for _, n := range names {
			h.procs = append(h.procs, sysmon.Process{
				PID: pid, ExeName: n, Path: procPath(os, n), User: user,
			})
			pid += 13
		}
		// per-host file pool
		nfiles := 60 + int(agent)*7%40
		for i := 0; i < nfiles; i++ {
			h.files = append(h.files, filePath(os, role, int(agent), i))
		}
		return h
	}
	g.hosts = nil
	g.hosts = append(g.hosts,
		mk(AgentWebServer, "linux", "web", append(append([]string{}, linuxServices...), webProcs...), 16),
		mk(AgentDBServer, "windows", "db", append(append([]string{}, windowsServices...), dbProcs...), 14),
		mk(AgentDC, "windows", "dc", append(append([]string{}, windowsServices...), dcProcs...), 8),
		mk(AgentFileServer, "windows", "file", append(append([]string{}, windowsServices...), fileProcs...), 10),
	)
	for a := FirstWorkstation; a <= g.cfg.Hosts; a++ {
		os := "windows"
		names := append(append([]string{}, windowsServices...), windowsApps...)
		names = append(names, windowsShells...)
		if a%4 == 0 {
			os = "linux"
			names = append(append([]string{}, linuxServices...), linuxApps...)
		}
		g.hosts = append(g.hosts, mk(uint32(a), os, "workstation", names, 4))
	}
	g.externalIPs = nil
	for i := 0; i < 48; i++ {
		g.externalIPs = append(g.externalIPs, fmt.Sprintf("93.184.%d.%d", 10+i/8, 20+i*5%200))
	}
}

func procPath(os, name string) string {
	if os == "linux" {
		return "/usr/bin/" + name
	}
	return `C:\Windows\System32\` + name
}

func filePath(os, role string, agent, i int) string {
	if os == "linux" {
		switch {
		case role == "web" && i%3 == 0:
			return fmt.Sprintf("/var/www/html/page%d.php", i)
		case i%4 == 1:
			return fmt.Sprintf("/var/log/app/app%d.log", i)
		default:
			return fmt.Sprintf("/home/user%d/work/file%d.txt", agent, i)
		}
	}
	switch {
	case role == "db" && i%3 == 0:
		return fmt.Sprintf(`C:\SQLData\tablespace%d.mdf`, i)
	case i%5 == 2:
		return fmt.Sprintf(`C:\Windows\Temp\tmp%d-%d.dat`, agent, i)
	case i%5 == 3:
		return fmt.Sprintf(`C:\ProgramData\app\cache%d.bin`, i)
	default:
		return fmt.Sprintf(`C:\Users\user%d\Documents\doc%d.docx`, agent, i)
	}
}

// background emits the configured volume of benign events across hosts.
// The mix follows observed audit-log skew: file I/O dominates, network
// activity clusters on servers, process starts are comparatively rare.
func (g *generator) background() []eventstore.Record {
	totalWeight := 0
	for _, h := range g.hosts {
		totalWeight += h.weight
	}
	span := g.cfg.Duration
	recs := make([]eventstore.Record, 0, g.cfg.Events+1024)
	for i := 0; i < g.cfg.Events; i++ {
		// pick host by weight
		w := g.rnd(totalWeight)
		var host *hostProfile
		for j := range g.hosts {
			if w < g.hosts[j].weight {
				host = &g.hosts[j]
				break
			}
			w -= g.hosts[j].weight
		}
		ts := g.cfg.Start.Add(time.Duration(g.rng.Int63n(int64(span)))).UnixNano()
		recs = append(recs, g.backgroundEvent(host, ts))
	}
	// Administrative tooling churn: real fleets run cmd.exe, powershell,
	// services.exe child starts, and scheduled robocopy/office activity
	// constantly, so the names investigation queries filter on also match
	// benign events — the match sets baselines must join are not tiny.
	recs = append(recs, g.adminNoise()...)

	// steady benign CDN traffic to the attacker IP from the database
	// server's updater: small transfers all day, so anomaly models have a
	// baseline to compare the exfiltration burst against
	updater := sysmon.Process{PID: 912, ExeName: "updatesvc.exe", Path: `C:\Program Files\Updater\updatesvc.exe`, User: "system"}
	cdnConn := sysmon.Netconn{SrcIP: "10.0.0.2", SrcPort: 49152, DstIP: AttackerIP, DstPort: 443, Protocol: "tcp"}
	for m := 0; m < int(span/time.Minute); m += 2 {
		recs = append(recs, eventstore.Record{
			AgentID: AgentDBServer, Subject: updater, Op: sysmon.OpWrite,
			ObjType: sysmon.EntityNetconn, ObjConn: cdnConn,
			StartTS: g.cfg.Start.Add(time.Duration(m)*time.Minute + 30*time.Second).UnixNano(),
			Amount:  uint64(800 + g.rnd(400)),
		})
	}
	return recs
}

func (g *generator) backgroundEvent(h *hostProfile, ts int64) eventstore.Record {
	subj := h.procs[g.rnd(len(h.procs))]
	r := eventstore.Record{AgentID: h.agent, Subject: subj, StartTS: ts}
	switch pick := g.rnd(100); {
	case pick < 34: // file read
		r.Op = sysmon.OpRead
		r.ObjType = sysmon.EntityFile
		r.ObjFile = sysmon.File{Path: h.files[g.rnd(len(h.files))]}
		r.Amount = uint64(256 + g.rnd(16384))
	case pick < 58: // file write
		r.Op = sysmon.OpWrite
		r.ObjType = sysmon.EntityFile
		r.ObjFile = sysmon.File{Path: h.files[g.rnd(len(h.files))]}
		r.Amount = uint64(128 + g.rnd(8192))
	case pick < 66: // file execute/chmod/delete
		ops := []sysmon.Operation{sysmon.OpExecute, sysmon.OpChmod, sysmon.OpDelete}
		r.Op = ops[g.rnd(len(ops))]
		r.ObjType = sysmon.EntityFile
		r.ObjFile = sysmon.File{Path: h.files[g.rnd(len(h.files))]}
	case pick < 76: // process start: a shell or service spawns an app
		r.Op = sysmon.OpStart
		r.ObjType = sysmon.EntityProcess
		child := h.procs[g.rnd(len(h.procs))]
		child.PID = uint32(2000 + g.rnd(6000))
		r.ObjProc = child
	case pick < 90: // outbound traffic
		if g.rnd(2) == 0 {
			r.Op = sysmon.OpConnect
		} else {
			r.Op = sysmon.OpWrite
		}
		r.ObjType = sysmon.EntityNetconn
		r.ObjConn = sysmon.Netconn{
			SrcIP: h.internal, SrcPort: uint16(32768 + g.rnd(28000)),
			DstIP: g.externalIPs[g.rnd(len(g.externalIPs))], DstPort: 443, Protocol: "tcp",
		}
		r.Amount = uint64(200 + g.rnd(4000))
	default: // inbound/service traffic
		if g.rnd(2) == 0 {
			r.Op = sysmon.OpAccept
		} else {
			r.Op = sysmon.OpRecv
		}
		r.ObjType = sysmon.EntityNetconn
		peer := g.hosts[g.rnd(len(g.hosts))]
		r.ObjConn = sysmon.Netconn{
			SrcIP: peer.internal, SrcPort: uint16(32768 + g.rnd(28000)),
			DstIP: h.internal, DstPort: servicePort(h.role), Protocol: "tcp",
		}
		r.Amount = uint64(100 + g.rnd(2000))
	}
	return r
}

// adminNoise emits the benign administrative activity that shares names
// with attack tooling: scheduled shells, service starts, office documents,
// and nightly copy jobs. Volume scales with the configured event count so
// the noise/selectivity ratio is stable across dataset sizes.
func (g *generator) adminNoise() []eventstore.Record {
	var out []eventstore.Record
	scale := g.cfg.Events / 2000
	if scale < 4 {
		scale = 4
	}
	span := int(g.cfg.Duration / time.Minute)
	randMin := func() (int, int, int) { // hour, min, sec
		m := g.rnd(span)
		return m / 60, m % 60, g.rnd(60)
	}
	for _, h := range g.hosts {
		if h.os != "windows" {
			continue
		}
		services := sysmon.Process{PID: 700 + h.agent, ExeName: "services.exe", Path: `C:\Windows\System32\services.exe`, User: "system"}
		taskeng := sysmon.Process{PID: 720 + h.agent, ExeName: "taskeng.exe", Path: `C:\Windows\System32\taskeng.exe`, User: "system"}
		for i := 0; i < scale; i++ {
			hh, mm, ss := randMin()
			cmd := sysmon.Process{PID: uint32(3000 + g.rnd(4000)), ExeName: "cmd.exe", Path: `C:\Windows\System32\cmd.exe`, User: "system"}
			ps := sysmon.Process{PID: uint32(3000 + g.rnd(4000)), ExeName: "powershell.exe", Path: `C:\Windows\System32\WindowsPowerShell\powershell.exe`, User: "system"}
			out = append(out,
				withProc(rec(h.agent, taskeng, sysmon.OpStart, g.at(hh, mm, ss), 0), cmd),
				withProc(rec(h.agent, cmd, sysmon.OpStart, g.at(hh, mm, ss+2), 0), ps),
				withFile(rec(h.agent, ps, sysmon.OpRead, g.at(hh, mm, ss+4), uint64(1024+g.rnd(8192))),
					sysmon.File{Path: fmt.Sprintf(`C:\Scripts\maint%d.ps1`, g.rnd(20))}),
			)
			svc := h.procs[g.rnd(len(h.procs))]
			out = append(out, withProc(rec(h.agent, services, sysmon.OpStart, g.at(hh, mm, ss+6), 0), svc))
		}
	}
	// nightly copy jobs on the file server touch the engineering tree and
	// write dated backup archives (not the staging archive the attack uses)
	robocopy := sysmon.Process{PID: 4410, ExeName: "robocopy.exe", Path: `C:\Windows\System32\robocopy.exe`, User: "backup"}
	for i := 0; i < scale*2; i++ {
		hh, mm, ss := randMin()
		out = append(out,
			withFile(rec(AgentFileServer, robocopy, sysmon.OpRead, g.at(hh, mm, ss), uint64(1000000+g.rnd(9000000))),
				sysmon.File{Path: designDoc(g.rnd(8))}),
			withFile(rec(AgentFileServer, robocopy, sysmon.OpWrite, g.at(hh, mm, ss+20), uint64(2000000+g.rnd(9000000))),
				sysmon.File{Path: fmt.Sprintf(`C:\Backups\backup-%d.rar`, g.rnd(30))}),
		)
	}
	// office activity on workstations: outlook delivers documents, word
	// reads them
	for _, h := range g.hosts {
		if h.role != "workstation" || h.os != "windows" {
			continue
		}
		outlook := sysmon.Process{PID: 800 + h.agent, ExeName: "outlook.exe", Path: `C:\Program Files\Office\outlook.exe`, User: fmt.Sprintf("user%d", h.agent)}
		word := sysmon.Process{PID: 820 + h.agent, ExeName: "winword.exe", Path: `C:\Program Files\Office\winword.exe`, User: fmt.Sprintf("user%d", h.agent)}
		for i := 0; i < scale/2+1; i++ {
			hh, mm, ss := randMin()
			doc := sysmon.File{Path: fmt.Sprintf(`C:\Users\user%d\Downloads\report%d.doc`, h.agent, g.rnd(40))}
			out = append(out,
				withFile(rec(h.agent, outlook, sysmon.OpWrite, g.at(hh, mm, ss), uint64(50000+g.rnd(400000))), doc),
				withFile(rec(h.agent, word, sysmon.OpRead, g.at(hh, mm, ss+30), uint64(50000+g.rnd(400000))), doc),
			)
		}
	}
	return out
}

func servicePort(role string) uint16 {
	switch role {
	case "web":
		return 80
	case "db":
		return 1433
	case "dc":
		return 389
	case "file":
		return 445
	default:
		return 135
	}
}
