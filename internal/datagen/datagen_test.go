package datagen

import (
	"context"
	"testing"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 11, Hosts: 6, Events: 2000, Scenarios: []Scenario{ScenarioDemoAPT}}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	c := Generate(Config{Seed: 12, Hosts: 6, Events: 2000, Scenarios: []Scenario{ScenarioDemoAPT}})
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRecordsSortedByTime(t *testing.T) {
	recs := Generate(Config{Seed: 1, Hosts: 6, Events: 3000, Scenarios: []Scenario{ScenarioDemoAPT, ScenarioATCCase}})
	for i := 1; i < len(recs); i++ {
		if recs[i].StartTS < recs[i-1].StartTS {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestVolumeScales(t *testing.T) {
	small := len(Generate(Config{Seed: 2, Hosts: 6, Events: 1000}))
	large := len(Generate(Config{Seed: 2, Hosts: 6, Events: 10000}))
	if large <= small {
		t.Errorf("expected more records for a larger budget: %d vs %d", small, large)
	}
}

// findEvent loads the stream into a store and greps for an event whose
// subject, op, and object match.
func findEvent(t *testing.T, s *eventstore.Store, agent uint32, exe string, op sysmon.Operation, objContains string) bool {
	t.Helper()
	found := false
	s.Scan(context.Background(), &eventstore.EventFilter{Agents: []uint32{agent}, Ops: []sysmon.Operation{op}}, func(ev *sysmon.Event) bool {
		subj := s.Dict().Attr(sysmon.EntityProcess, ev.Subject, "exe_name")
		if subj != exe {
			return true
		}
		obj := s.Dict().Attr(ev.ObjType, ev.Object, sysmon.DefaultAttr(ev.ObjType))
		if objContains == "" || containsFold(obj, objContains) {
			found = true
			return false
		}
		return true
	})
	return found
}

func containsFold(s, sub string) bool {
	ls, lsub := lower(s), lower(sub)
	for i := 0; i+len(lsub) <= len(ls); i++ {
		if ls[i:i+len(lsub)] == lsub {
			return true
		}
	}
	return false
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

func TestDemoAPTTracePresent(t *testing.T) {
	s := eventstore.New(eventstore.DefaultOptions())
	GenerateInto(s, Config{Seed: 42, Hosts: 8, Events: 5000, Scenarios: []Scenario{ScenarioDemoAPT}})

	checks := []struct {
		agent uint32
		exe   string
		op    sysmon.Operation
		obj   string
	}{
		{AgentWebServer, "unrealircd", sysmon.OpAccept, "10.0.0.1"},    // a1 (dst of inbound conn)
		{AgentWebServer, "cp", sysmon.OpWrite, "info_stealer"},         // a2
		{FirstWorkstation, "mimikatz.exe", sysmon.OpRead, "lsass"},     // a3
		{AgentDC, "PwDump7.exe", sysmon.OpRead, "ntds.dit"},            // a4
		{AgentDBServer, "sqlservr.exe", sysmon.OpWrite, "backup1.dmp"}, // a5
		{AgentDBServer, "sbblv.exe", sysmon.OpWrite, AttackerIP},       // a5 exfil
	}
	for _, c := range checks {
		if !findEvent(t, s, c.agent, c.exe, c.op, c.obj) {
			t.Errorf("missing attack event: agent %d %s %v %q", c.agent, c.exe, c.op, c.obj)
		}
	}
}

func TestATCCaseTracePresent(t *testing.T) {
	s := eventstore.New(eventstore.DefaultOptions())
	GenerateInto(s, Config{Seed: 42, Hosts: 8, Events: 5000, Scenarios: []Scenario{ScenarioATCCase}})
	ws := uint32(FirstWorkstation + 1)
	checks := []struct {
		agent uint32
		exe   string
		op    sysmon.Operation
		obj   string
	}{
		{ws, "winword.exe", sysmon.OpRead, "invoice.doc"},
		{ws, "powershell.exe", sysmon.OpWrite, "dropper"},
		{ws, "backdoor.exe", sysmon.OpWrite, ATCAttackerIP},
		{AgentFileServer, "robocopy.exe", sysmon.OpWrite, "archive.rar"},
		{AgentFileServer, "ftp.exe", sysmon.OpWrite, ATCAttackerIP},
	}
	for _, c := range checks {
		if !findEvent(t, s, c.agent, c.exe, c.op, c.obj) {
			t.Errorf("missing attack event: agent %d %s %v %q", c.agent, c.exe, c.op, c.obj)
		}
	}
}

func TestNoScenarioMeansNoAttack(t *testing.T) {
	s := eventstore.New(eventstore.DefaultOptions())
	GenerateInto(s, Config{Seed: 42, Hosts: 8, Events: 5000})
	if findEvent(t, s, AgentDBServer, "sbblv.exe", sysmon.OpWrite, "") {
		t.Error("attack process present without scenario")
	}
	if findEvent(t, s, AgentFileServer, "ftp.exe", sysmon.OpWrite, ATCAttackerIP) {
		t.Error("ATC exfiltration present without scenario")
	}
}

func TestBackgroundSpansAgentsAndTime(t *testing.T) {
	s := eventstore.New(eventstore.DefaultOptions())
	GenerateInto(s, Config{Seed: 9, Hosts: 8, Events: 8000})
	agents := s.Agents()
	if len(agents) < 8 {
		t.Errorf("only %d agents active", len(agents))
	}
	lo, hi := s.TimeRange()
	if hi-lo < int64(20)*3600*1e9 {
		t.Errorf("timeline too short: %d ns", hi-lo)
	}
}

func TestBenignDecoyTrafficExists(t *testing.T) {
	s := eventstore.New(eventstore.DefaultOptions())
	GenerateInto(s, Config{Seed: 42, Hosts: 8, Events: 5000, Scenarios: []Scenario{ScenarioDemoAPT}})
	// the steady updater traffic to the attacker IP must exist, so the
	// anomaly model has a baseline that should NOT be flagged
	if !findEvent(t, s, AgentDBServer, "updatesvc.exe", sysmon.OpWrite, AttackerIP) {
		t.Error("benign CDN traffic to attacker IP missing")
	}
	// admin noise: scheduled shells on windows servers
	if !findEvent(t, s, AgentDBServer, "taskeng.exe", sysmon.OpStart, "cmd.exe") {
		t.Error("scheduled cmd.exe noise missing")
	}
}
