package datagen

import (
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

// Well-known attack entities referenced by the investigation queries.
var (
	// demo APT
	procUnrealIRC  = sysmon.Process{PID: 1201, ExeName: "unrealircd", Path: "/usr/sbin/unrealircd", User: "ircd"}
	procShell      = sysmon.Process{PID: 4301, ExeName: "sh", Path: "/bin/sh", User: "ircd"}
	procCp         = sysmon.Process{PID: 4310, ExeName: "cp", Path: "/bin/cp", User: "ircd"}
	procApache     = sysmon.Process{PID: 1210, ExeName: "apache2", Path: "/usr/sbin/apache2", User: "www-data"}
	procWget       = sysmon.Process{PID: 5202, ExeName: "wget.exe", Path: `C:\Tools\wget.exe`, User: "user5"}
	procStealer    = sysmon.Process{PID: 5210, ExeName: "info_stealer.exe", Path: `C:\Temp\info_stealer.exe`, User: "user5"}
	procExploit    = sysmon.Process{PID: 5220, ExeName: "cve1701.exe", Path: `C:\Temp\cve1701.exe`, User: "user5"}
	procMimikatz   = sysmon.Process{PID: 5230, ExeName: "mimikatz.exe", Path: `C:\Temp\mimikatz.exe`, User: "system"}
	procKiwi       = sysmon.Process{PID: 5240, ExeName: "kiwi.exe", Path: `C:\Temp\kiwi.exe`, User: "system"}
	procDCServices = sysmon.Process{PID: 3105, ExeName: "services.exe", Path: `C:\Windows\System32\services.exe`, User: "system"}
	procPwDump     = sysmon.Process{PID: 3210, ExeName: "PwDump7.exe", Path: `C:\Temp\PwDump7.exe`, User: "system"}
	procWCE        = sysmon.Process{PID: 3220, ExeName: "WCE.exe", Path: `C:\Temp\WCE.exe`, User: "system"}
	procDBServices = sysmon.Process{PID: 2105, ExeName: "services.exe", Path: `C:\Windows\System32\services.exe`, User: "system"}
	procCmdDB      = sysmon.Process{PID: 2210, ExeName: "cmd.exe", Path: `C:\Windows\System32\cmd.exe`, User: "dbadmin"}
	procOsql       = sysmon.Process{PID: 2220, ExeName: "osql.exe", Path: `C:\Program Files\SQL\osql.exe`, User: "dbadmin"}
	procSQLServer  = sysmon.Process{PID: 2110, ExeName: "sqlservr.exe", Path: `C:\Program Files\SQL\sqlservr.exe`, User: "system"}
	procSbblv      = sysmon.Process{PID: 2230, ExeName: "sbblv.exe", Path: `C:\Temp\sbblv.exe`, User: "dbadmin"}
	procPowershell = sysmon.Process{PID: 2240, ExeName: "powershell.exe", Path: `C:\Windows\System32\WindowsPowerShell\powershell.exe`, User: "dbadmin"}

	fileStealerWeb = sysmon.File{Path: "/var/www/html/info_stealer.sh", Owner: "www-data"}
	fileStealerWS  = sysmon.File{Path: `C:\Temp\info_stealer.exe`, Owner: "user5"}
	fileLsass      = sysmon.File{Path: `C:\Windows\System32\lsass.exe`, Owner: "system"}
	fileCreds      = sysmon.File{Path: `C:\Temp\creds.txt`, Owner: "system"}
	fileKiwiCreds  = sysmon.File{Path: `C:\Temp\kiwi_creds.txt`, Owner: "system"}
	fileNTDS       = sysmon.File{Path: `C:\Windows\NTDS\ntds.dit`, Owner: "system"}
	filePwOut      = sysmon.File{Path: `C:\Temp\pwdump_out.txt`, Owner: "system"}
	fileWCEOut     = sysmon.File{Path: `C:\Temp\wce_creds.txt`, Owner: "system"}
	fileBackup     = sysmon.File{Path: `C:\SQLData\backup1.dmp`, Owner: "system"}
	fileDBBak      = sysmon.File{Path: `C:\SQLData\db.bak`, Owner: "system"}
)

func conn(src string, sport uint16, dst string, dport uint16) sysmon.Netconn {
	return sysmon.Netconn{SrcIP: src, SrcPort: sport, DstIP: dst, DstPort: dport, Protocol: "tcp"}
}

// rec builds one attack record.
func rec(agent uint32, subj sysmon.Process, op sysmon.Operation, ts int64, amount uint64) eventstore.Record {
	return eventstore.Record{AgentID: agent, Subject: subj, Op: op, StartTS: ts, Amount: amount}
}

func withFile(r eventstore.Record, f sysmon.File) eventstore.Record {
	r.ObjType = sysmon.EntityFile
	r.ObjFile = f
	return r
}

func withProc(r eventstore.Record, p sysmon.Process) eventstore.Record {
	r.ObjType = sysmon.EntityProcess
	r.ObjProc = p
	return r
}

func withConn(r eventstore.Record, c sysmon.Netconn) eventstore.Record {
	r.ObjType = sysmon.EntityNetconn
	r.ObjConn = c
	return r
}

// demoAPT injects the five-step attack of the demo paper (Figure 2),
// running in the DemoAttackHour of the timeline. Step timings are fixed
// so investigation queries can bracket them.
func (g *generator) demoAPT() []eventstore.Record {
	H := DemoAttackHour
	ws := uint32(FirstWorkstation) // compromised intranet workstation
	var out []eventstore.Record

	// ---- a1: initial compromise of the IRC/web server
	ircConn := conn(AttackerIP, 50123, "10.0.0.1", 6667)
	backConn := conn("10.0.0.1", 48100, AttackerIP, 31337)
	out = append(out,
		withConn(rec(AgentWebServer, procUnrealIRC, sysmon.OpAccept, g.at(H, 0, 0), 900), ircConn),
		withProc(rec(AgentWebServer, procUnrealIRC, sysmon.OpStart, g.at(H, 0, 5), 0), procShell),
		withConn(rec(AgentWebServer, procShell, sysmon.OpConnect, g.at(H, 0, 10), 0), backConn),
		withConn(rec(AgentWebServer, procShell, sysmon.OpRecv, g.at(H, 0, 20), 2048), backConn),
	)

	// ---- a2: malware staged on the web root and fetched by a workstation
	fetchConn := conn("10.0.0.1", 48200, "10.0.0.5", 80)
	out = append(out,
		withProc(rec(AgentWebServer, procShell, sysmon.OpStart, g.at(H, 5, 0), 0), procCp),
		withFile(rec(AgentWebServer, procCp, sysmon.OpWrite, g.at(H, 5, 5), 150000), fileStealerWeb),
		withFile(rec(AgentWebServer, procApache, sysmon.OpRead, g.at(H, 5, 30), 150000), fileStealerWeb),
		withConn(rec(AgentWebServer, procApache, sysmon.OpConnect, g.at(H, 5, 31), 150000), fetchConn),
		withConn(rec(ws, procWget, sysmon.OpAccept, g.at(H, 6, 0), 150000), fetchConn),
		withFile(rec(ws, procWget, sysmon.OpWrite, g.at(H, 6, 5), 150000), fileStealerWS),
		withFile(rec(ws, procWget, sysmon.OpChmod, g.at(H, 6, 10), 0), fileStealerWS),
		withProc(rec(ws, procWget, sysmon.OpStart, g.at(H, 6, 20), 0), procStealer),
	)

	// ---- a3: privilege escalation and memory dumping on the workstation
	out = append(out,
		withProc(rec(ws, procStealer, sysmon.OpStart, g.at(H, 10, 0), 0), procExploit),
		withProc(rec(ws, procExploit, sysmon.OpStart, g.at(H, 10, 30), 0), procMimikatz),
		withFile(rec(ws, procMimikatz, sysmon.OpRead, g.at(H, 10, 35), 52000000), fileLsass),
		withFile(rec(ws, procMimikatz, sysmon.OpWrite, g.at(H, 10, 40), 4096), fileCreds),
		withProc(rec(ws, procExploit, sysmon.OpStart, g.at(H, 11, 0), 0), procKiwi),
		withFile(rec(ws, procKiwi, sysmon.OpRead, g.at(H, 11, 5), 52000000), fileLsass),
		withFile(rec(ws, procKiwi, sysmon.OpWrite, g.at(H, 11, 10), 4096), fileKiwiCreds),
	)

	// ---- a4: credential dumping on the domain controller
	dcConn := conn("10.0.0.5", 48300, "10.0.0.3", 445)
	exfilDC := conn("10.0.0.3", 48400, AttackerIP, 443)
	out = append(out,
		withConn(rec(ws, procStealer, sysmon.OpConnect, g.at(H, 20, 0), 2000), dcConn),
		withConn(rec(AgentDC, procDCServices, sysmon.OpAccept, g.at(H, 20, 5), 2000), dcConn),
		withProc(rec(AgentDC, procDCServices, sysmon.OpStart, g.at(H, 20, 10), 0), procPwDump),
		withFile(rec(AgentDC, procPwDump, sysmon.OpRead, g.at(H, 20, 30), 8300000), fileNTDS),
		withFile(rec(AgentDC, procPwDump, sysmon.OpWrite, g.at(H, 20, 40), 96000), filePwOut),
		withProc(rec(AgentDC, procDCServices, sysmon.OpStart, g.at(H, 21, 0), 0), procWCE),
		withFile(rec(AgentDC, procWCE, sysmon.OpRead, g.at(H, 21, 5), 52000000), fileLsass),
		withFile(rec(AgentDC, procWCE, sysmon.OpWrite, g.at(H, 21, 10), 48000), fileWCEOut),
		withConn(rec(AgentDC, procPwDump, sysmon.OpConnect, g.at(H, 21, 30), 0), exfilDC),
		withConn(rec(AgentDC, procPwDump, sysmon.OpWrite, g.at(H, 21, 40), 144000), exfilDC),
	)

	// ---- a5: data exfiltration from the database server
	dbConn := conn("10.0.0.5", 48500, "10.0.0.2", 445)
	exfilConn := conn("10.0.0.2", 48600, AttackerIP, 443)
	out = append(out,
		withConn(rec(ws, procStealer, sysmon.OpConnect, g.at(H, 30, 0), 2000), dbConn),
		withConn(rec(AgentDBServer, procDBServices, sysmon.OpAccept, g.at(H, 30, 5), 2000), dbConn),
		withProc(rec(AgentDBServer, procDBServices, sysmon.OpStart, g.at(H, 30, 8), 0), procCmdDB),
		withProc(rec(AgentDBServer, procCmdDB, sysmon.OpStart, g.at(H, 30, 10), 0), procOsql),
		withFile(rec(AgentDBServer, procSQLServer, sysmon.OpWrite, g.at(H, 31, 0), 850000000), fileBackup),
		withProc(rec(AgentDBServer, procCmdDB, sysmon.OpStart, g.at(H, 32, 0), 0), procSbblv),
		withFile(rec(AgentDBServer, procSbblv, sysmon.OpRead, g.at(H, 32, 30), 850000000), fileBackup),
		withConn(rec(AgentDBServer, procSbblv, sysmon.OpConnect, g.at(H, 33, 0), 0), exfilConn),
	)
	// exfiltration burst: large transfers over several minutes — the
	// anomaly query's target
	for m := 0; m < 6; m++ {
		out = append(out, withConn(
			rec(AgentDBServer, procSbblv, sysmon.OpWrite, g.at(H, 33+m, 30), uint64(6000000+g.rnd(2000000))),
			exfilConn))
	}
	// the powershell variant from the demo walkthrough: a second dump
	// (db.bak) read and shipped by powershell.exe
	out = append(out,
		withProc(rec(AgentDBServer, procCmdDB, sysmon.OpStart, g.at(H, 34, 0), 0), procPowershell),
		withFile(rec(AgentDBServer, procSQLServer, sysmon.OpWrite, g.at(H, 35, 0), 425000000), fileDBBak),
		withFile(rec(AgentDBServer, procPowershell, sysmon.OpRead, g.at(H, 36, 0), 425000000), fileDBBak),
		withConn(rec(AgentDBServer, procPowershell, sysmon.OpConnect, g.at(H, 36, 30), 0), exfilConn),
	)
	for m := 0; m < 5; m++ {
		out = append(out, withConn(
			rec(AgentDBServer, procPowershell, sysmon.OpWrite, g.at(H, 37+m, 0), uint64(5000000+g.rnd(3000000))),
			exfilConn))
	}

	// decoys that shape the joins: a benign scheduled backup touches the
	// same dump file earlier, and benign cmd.exe starts happen elsewhere
	backupSvc := sysmon.Process{PID: 2150, ExeName: "backupsvc.exe", Path: `C:\Program Files\Backup\backupsvc.exe`, User: "system"}
	out = append(out,
		withFile(rec(AgentDBServer, backupSvc, sysmon.OpRead, g.at(H-2, 15, 0), 850000000), fileBackup),
		withFile(rec(AgentDBServer, procSQLServer, sysmon.OpWrite, g.at(H-3, 0, 0), 850000000), fileBackup),
	)
	return out
}

// ---- ATC'18 case-study entities
var (
	procOutlook   = sysmon.Process{PID: 6101, ExeName: "outlook.exe", Path: `C:\Program Files\Office\outlook.exe`, User: "user6"}
	procWord      = sysmon.Process{PID: 6110, ExeName: "winword.exe", Path: `C:\Program Files\Office\winword.exe`, User: "user6"}
	procCmdWS     = sysmon.Process{PID: 6120, ExeName: "cmd.exe", Path: `C:\Windows\System32\cmd.exe`, User: "user6"}
	procPSWS      = sysmon.Process{PID: 6130, ExeName: "powershell.exe", Path: `C:\Windows\System32\WindowsPowerShell\powershell.exe`, User: "user6"}
	procDropper   = sysmon.Process{PID: 6140, ExeName: "dropper.exe", Path: `C:\Users\user6\AppData\dropper.exe`, User: "user6"}
	procBackdoor  = sysmon.Process{PID: 6150, ExeName: "backdoor.exe", Path: `C:\Users\user6\AppData\backdoor.exe`, User: "user6"}
	procMS16      = sysmon.Process{PID: 6160, ExeName: "ms16-032.exe", Path: `C:\Users\user6\AppData\ms16-032.exe`, User: "user6"}
	procSysCmd    = sysmon.Process{PID: 6170, ExeName: "cmd.exe", Path: `C:\Windows\System32\cmd.exe`, User: "system"}
	procFSService = sysmon.Process{PID: 4105, ExeName: "services.exe", Path: `C:\Windows\System32\services.exe`, User: "system"}
	procPsexesvc  = sysmon.Process{PID: 4210, ExeName: "psexesvc.exe", Path: `C:\Windows\psexesvc.exe`, User: "system"}
	procFSCmd     = sysmon.Process{PID: 4220, ExeName: "cmd.exe", Path: `C:\Windows\System32\cmd.exe`, User: "system"}
	procRobocopy  = sysmon.Process{PID: 4230, ExeName: "robocopy.exe", Path: `C:\Windows\System32\robocopy.exe`, User: "system"}
	procFtp       = sysmon.Process{PID: 4240, ExeName: "ftp.exe", Path: `C:\Windows\System32\ftp.exe`, User: "system"}

	fileInvoice = sysmon.File{Path: `C:\Users\user6\Downloads\invoice.doc`, Owner: "user6"}
	fileDropper = sysmon.File{Path: `C:\Users\user6\AppData\dropper.exe`, Owner: "user6"}
	fileBackdr  = sysmon.File{Path: `C:\Users\user6\AppData\backdoor.exe`, Owner: "user6"}
	fileArchive = sysmon.File{Path: `C:\Staging\archive.rar`, Owner: "system"}
)

// atcCase injects the ATC'18 case-study attack in the ATCAttackHour.
func (g *generator) atcCase() []eventstore.Record {
	H := ATCAttackHour
	ws := uint32(FirstWorkstation + 1) // workstation 6
	var out []eventstore.Record

	// ---- c1: phishing delivery and malicious document
	out = append(out,
		withFile(rec(ws, procOutlook, sysmon.OpWrite, g.at(H, 0, 0), 380000), fileInvoice),
		withFile(rec(ws, procWord, sysmon.OpRead, g.at(H, 1, 0), 380000), fileInvoice),
		withProc(rec(ws, procWord, sysmon.OpStart, g.at(H, 1, 30), 0), procCmdWS),
		withProc(rec(ws, procCmdWS, sysmon.OpStart, g.at(H, 1, 40), 0), procPSWS),
	)

	// ---- c2: backdoor download and beaconing
	c2Conn := conn("10.0.0.6", 49200, ATCAttackerIP, 443)
	beacon := conn("10.0.0.6", 49210, ATCAttackerIP, 8443)
	out = append(out,
		withConn(rec(ws, procPSWS, sysmon.OpConnect, g.at(H, 2, 0), 0), c2Conn),
		withConn(rec(ws, procPSWS, sysmon.OpRecv, g.at(H, 2, 10), 720000), c2Conn),
		withFile(rec(ws, procPSWS, sysmon.OpWrite, g.at(H, 2, 20), 720000), fileDropper),
		withProc(rec(ws, procPSWS, sysmon.OpStart, g.at(H, 2, 40), 0), procDropper),
		withFile(rec(ws, procDropper, sysmon.OpWrite, g.at(H, 3, 0), 910000), fileBackdr),
		withProc(rec(ws, procDropper, sysmon.OpStart, g.at(H, 3, 20), 0), procBackdoor),
		withConn(rec(ws, procBackdoor, sysmon.OpConnect, g.at(H, 3, 40), 0), beacon),
	)
	for m := 4; m < 58; m += 3 {
		out = append(out, withConn(
			rec(ws, procBackdoor, sysmon.OpWrite, g.at(H, m, 15), uint64(300+g.rnd(200))), beacon))
	}

	// ---- c3: privilege escalation on the workstation
	out = append(out,
		withProc(rec(ws, procBackdoor, sysmon.OpStart, g.at(H, 8, 0), 0), procMS16),
		withProc(rec(ws, procMS16, sysmon.OpStart, g.at(H, 8, 30), 0), procSysCmd),
		withFile(rec(ws, procSysCmd, sysmon.OpRead, g.at(H, 8, 45), 52000000), fileLsass),
	)

	// ---- c4: lateral movement to the file server and staging
	fsConn := conn("10.0.0.6", 49300, "10.0.0.4", 445)
	out = append(out,
		withConn(rec(ws, procBackdoor, sysmon.OpConnect, g.at(H, 15, 0), 4000), fsConn),
		withConn(rec(AgentFileServer, procFSService, sysmon.OpAccept, g.at(H, 15, 5), 4000), fsConn),
		withProc(rec(AgentFileServer, procFSService, sysmon.OpStart, g.at(H, 15, 10), 0), procPsexesvc),
		withProc(rec(AgentFileServer, procPsexesvc, sysmon.OpStart, g.at(H, 15, 20), 0), procFSCmd),
		withProc(rec(AgentFileServer, procFSCmd, sysmon.OpStart, g.at(H, 16, 0), 0), procRobocopy),
	)
	for i := 0; i < 8; i++ {
		design := sysmon.File{Path: designDoc(i), Owner: "engineering"}
		out = append(out, withFile(
			rec(AgentFileServer, procRobocopy, sysmon.OpRead, g.at(H, 17, i*10), uint64(12000000+g.rnd(9000000))), design))
	}
	out = append(out, withFile(
		rec(AgentFileServer, procRobocopy, sysmon.OpWrite, g.at(H, 19, 0), 96000000), fileArchive))

	// ---- c5: exfiltration from the file server
	exfil := conn("10.0.0.4", 49400, ATCAttackerIP, 21)
	out = append(out,
		withProc(rec(AgentFileServer, procFSCmd, sysmon.OpStart, g.at(H, 25, 0), 0), procFtp),
		withFile(rec(AgentFileServer, procFtp, sysmon.OpRead, g.at(H, 25, 30), 96000000), fileArchive),
		withConn(rec(AgentFileServer, procFtp, sysmon.OpConnect, g.at(H, 26, 0), 0), exfil),
	)
	for m := 0; m < 6; m++ {
		out = append(out, withConn(
			rec(AgentFileServer, procFtp, sysmon.OpWrite, g.at(H, 26+m, 30), uint64(14000000+g.rnd(4000000))), exfil))
	}
	return out
}

func designDoc(i int) string {
	names := []string{"chassis", "pcb", "firmware", "antenna", "battery", "sensor", "housing", "optics"}
	return `C:\Projects\eng\` + names[i%len(names)] + `_design.cad`
}
