// Package concise measures query conciseness — the number of constraints,
// words, and non-whitespace characters of a query text — reproducing the
// paper's comparison: "SQL queries contain at least 3.0x more constraints,
// 3.5x more words, and 5.2x more characters (excluding spaces) than AIQL
// queries."
package concise

import (
	"strings"
	"unicode"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/parser"
	"github.com/aiql/aiql/internal/relational"
)

// Metrics are the three conciseness measures of a query text.
type Metrics struct {
	Constraints int
	Words       int
	Chars       int // non-whitespace characters
}

// textCounts fills the word and character measures.
func textCounts(text string) (words, chars int) {
	words = len(strings.Fields(text))
	for _, r := range text {
		if !unicode.IsSpace(r) {
			chars++
		}
	}
	return words, chars
}

// MeasureAIQL parses an AIQL query and counts its constraints: global
// clauses, entity/event attribute filters, and with-clause conditions.
func MeasureAIQL(text string) (Metrics, error) {
	q, err := parser.Parse(text)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{}
	m.Words, m.Chars = textCounts(text)

	head := q.Header()
	if head.Window != nil {
		m.Constraints++
	}
	m.Constraints += len(head.Globals)

	countRef := func(r *ast.EntityRef) { m.Constraints += len(r.Filters) }
	countPattern := func(p *ast.EventPattern) {
		countRef(&p.Subject)
		countRef(&p.Object)
		m.Constraints += len(p.EvtFilters)
		m.Constraints++ // the operation itself constrains the event
	}
	switch x := q.(type) {
	case *ast.MultieventQuery:
		for i := range x.Patterns {
			countPattern(&x.Patterns[i])
		}
		m.Constraints += len(x.With)
	case *ast.DependencyQuery:
		for i := range x.Nodes {
			countRef(&x.Nodes[i])
		}
		m.Constraints += len(x.Edges)
	case *ast.AnomalyQuery:
		countPattern(&x.Pattern)
		m.Constraints++ // window spec
		if x.Having != nil {
			m.Constraints++
		}
	}
	return m, nil
}

// MeasureSQL parses a SQL query and counts its constraints: WHERE and ON
// conjuncts, HAVING conjuncts, and GROUP BY keys, recursing into derived
// tables.
func MeasureSQL(text string) (Metrics, error) {
	stmt, err := relational.ParseSQL(text)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{}
	m.Words, m.Chars = textCounts(text)
	m.Constraints = countSelect(stmt)
	return m, nil
}

func countSelect(stmt *relational.SelectStmt) int {
	n := 0
	n += countConjuncts(stmt.Where)
	n += countConjuncts(stmt.Having)
	n += len(stmt.GroupBy)
	for _, f := range stmt.From {
		n += countConjuncts(f.On)
		if f.Sub != nil {
			n += countSelect(f.Sub)
		}
	}
	return n
}

func countConjuncts(e relational.SQLExpr) int {
	if e == nil {
		return 0
	}
	if b, ok := e.(*relational.BinExpr); ok && b.Op == "AND" {
		return countConjuncts(b.L) + countConjuncts(b.R)
	}
	return 1
}

// MeasureCypher counts a Cypher query's constraints textually: WHERE
// conjuncts (top-level ANDs) plus one constraint per relationship pattern
// (each `-[...]->` both binds and restricts).
func MeasureCypher(text string) Metrics {
	m := Metrics{}
	m.Words, m.Chars = textCounts(text)
	m.Constraints = strings.Count(text, "]->")
	if i := strings.Index(text, "WHERE"); i >= 0 {
		clause := text[i+len("WHERE"):]
		if j := strings.Index(clause, "RETURN"); j >= 0 {
			clause = clause[:j]
		}
		m.Constraints += countTopLevelAnds(clause) + 1
	}
	return m
}

// countTopLevelAnds counts AND tokens outside parentheses.
func countTopLevelAnds(s string) int {
	depth, count := 0, 0
	fields := strings.Fields(s)
	for _, f := range fields {
		depth += strings.Count(f, "(") - strings.Count(f, ")")
		if depth == 0 && strings.EqualFold(strings.Trim(f, "()"), "AND") {
			count++
		}
	}
	return count
}

// Ratio returns b's measure relative to a's, per metric.
func Ratio(a, b Metrics) (constraints, words, chars float64) {
	div := func(x, y int) float64 {
		if y == 0 {
			return 0
		}
		return float64(x) / float64(y)
	}
	return div(b.Constraints, a.Constraints), div(b.Words, a.Words), div(b.Chars, a.Chars)
}
