package concise

import (
	"testing"
)

const sampleAIQL = `
(at "05/10/2018")
agentid = 7
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
with evt1 before evt2
return distinct p1, p2, p3, f1`

func TestMeasureAIQL(t *testing.T) {
	m, err := MeasureAIQL(sampleAIQL)
	if err != nil {
		t.Fatal(err)
	}
	// constraints: window(1) + agentid(1) + 4 entity filters + 2 ops + 1 with = 9
	if m.Constraints != 9 {
		t.Errorf("constraints = %d, want 9", m.Constraints)
	}
	if m.Words == 0 || m.Chars == 0 {
		t.Error("zero word/char counts")
	}
	if m.Chars <= m.Words {
		t.Error("chars should exceed words")
	}
}

func TestMeasureAIQLAnomaly(t *testing.T) {
	m, err := MeasureAIQL(`
window = 1 min, step = 1 min
proc p write ip i[dstip = "1.2.3.4"] as evt
return p, avg(evt.amount) as amt
group by p
having amt > 2 * amt[1]`)
	if err != nil {
		t.Fatal(err)
	}
	// constraints: window spec(1) + dstip filter(1) + op(1) + having(1) = 4
	if m.Constraints != 4 {
		t.Errorf("constraints = %d, want 4", m.Constraints)
	}
}

func TestMeasureSQL(t *testing.T) {
	m, err := MeasureSQL(`
SELECT p.name FROM people p JOIN orders o ON o.person_id = p.id AND o.x = 1
WHERE p.age > 30 AND p.name LIKE '%a%'
GROUP BY p.name HAVING COUNT(*) > 2`)
	if err != nil {
		t.Fatal(err)
	}
	// 2 ON conjuncts + 2 WHERE + 1 GROUP BY key + 1 HAVING = 6
	if m.Constraints != 6 {
		t.Errorf("constraints = %d, want 6", m.Constraints)
	}
}

func TestMeasureSQLDerivedTables(t *testing.T) {
	m, err := MeasureSQL(`
SELECT b0.n FROM (SELECT age, COUNT(*) AS n FROM people WHERE age > 1 GROUP BY age) b0
WHERE b0.n > 2`)
	if err != nil {
		t.Fatal(err)
	}
	// outer WHERE(1) + inner WHERE(1) + inner GROUP BY(1) = 3
	if m.Constraints != 3 {
		t.Errorf("constraints = %d, want 3", m.Constraints)
	}
}

func TestMeasureCypher(t *testing.T) {
	m := MeasureCypher(`MATCH (p1:Process)-[e1:START]->(p2:Process),
      (p3:Process)-[e2:WRITE]->(f1:File)
WHERE p1.exe_name =~ '(?i).*cmd\.exe' AND e1.agentid = 7 AND e1.start_ts < e2.start_ts
RETURN DISTINCT p1.exe_name, p2.exe_name`)
	// 2 relationship patterns + 3 WHERE conjuncts = 5
	if m.Constraints != 5 {
		t.Errorf("constraints = %d, want 5", m.Constraints)
	}
}

func TestMeasureErrors(t *testing.T) {
	if _, err := MeasureAIQL("not a query"); err == nil {
		t.Error("expected AIQL parse error")
	}
	if _, err := MeasureSQL("SELECT FROM"); err == nil {
		t.Error("expected SQL parse error")
	}
}

func TestRatio(t *testing.T) {
	a := Metrics{Constraints: 2, Words: 10, Chars: 50}
	b := Metrics{Constraints: 6, Words: 35, Chars: 260}
	c, w, ch := Ratio(a, b)
	if c != 3 || w != 3.5 || ch != 5.2 {
		t.Errorf("ratios = %v, %v, %v", c, w, ch)
	}
	// zero denominators are safe
	if c, _, _ := Ratio(Metrics{}, b); c != 0 {
		t.Error("zero denominator should yield 0")
	}
}
