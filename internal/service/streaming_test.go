package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
)

// fig4StreamQuery is a high-volume single-pattern query on the Fig4
// 50k-event dataset (~17k matching events), the workload where limit
// pushdown pays.
const fig4StreamQuery = `proc p read file f as evt return p, f`

// singleAgentDB builds a deterministic one-partition store: one agent,
// adjacent timestamps, one matching row per event, so streamed row
// order is stable even under parallel partition scans.
func singleAgentDB(t testing.TB, events int) *aiql.DB {
	t.Helper()
	db := aiql.Open()
	recs := make([]aiql.Record, 0, events)
	for i := 0; i < events; i++ {
		recs = append(recs, aiql.Record{
			AgentID: 1,
			Subject: aiql.Process{PID: 100, ExeName: "worker.exe", Path: `C:\bin\worker.exe`, User: "alice"},
			Op:      aiql.OpWrite,
			ObjType: aiql.EntityFile,
			ObjFile: aiql.File{Path: fmt.Sprintf(`C:\data\out%d.log`, i)},
			StartTS: int64(i) * int64(time.Second),
		})
	}
	db.AppendAll(recs)
	db.Flush()
	return db
}

// TestFig4LimitPushdownAcceptance is the acceptance check for the
// streaming pipeline: a LIMIT-50 query on the Fig4 50k-event dataset
// must scan strictly fewer events than its unlimited form and run at
// least 2x faster wall-clock.
func TestFig4LimitPushdownAcceptance(t *testing.T) {
	db := fig4DB()

	fullStart := time.Now()
	full, err := db.Query(fig4StreamQuery)
	fullTime := time.Since(fullStart)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) <= 50 {
		t.Fatalf("acceptance query yields %d rows, need > 50", len(full.Rows))
	}

	limitedTime := time.Hour
	var limitedStats aiql.Result
	for i := 0; i < 5; i++ { // best of 5 to shrug off scheduler noise
		start := time.Now()
		cur, err := db.QueryCursor(context.Background(), fig4StreamQuery, aiql.CursorOptions{Limit: 50})
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for cur.Next() {
			rows++
		}
		cur.Close()
		d := time.Since(start)
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		if rows != 50 {
			t.Fatalf("limit 50 yielded %d rows", rows)
		}
		if d < limitedTime {
			limitedTime = d
			limitedStats.Stats = cur.Stats()
		}
	}

	if limitedStats.Stats.ScannedEvents >= full.Stats.ScannedEvents {
		t.Errorf("limit 50 scanned %d events, full drain scanned %d — want strictly fewer",
			limitedStats.Stats.ScannedEvents, full.Stats.ScannedEvents)
	}
	if 2*limitedTime > fullTime {
		t.Errorf("limit 50 took %v, full drain %v — want >= 2x faster", limitedTime, fullTime)
	}
	t.Logf("full: %d events scanned in %v; limit 50: %d events scanned in %v (%.0fx)",
		full.Stats.ScannedEvents, fullTime, limitedStats.Stats.ScannedEvents, limitedTime,
		float64(fullTime)/float64(limitedTime))
}

// TestDoPagination pages a 100-row result in 30-row pages through the
// cursor-token chain and checks offsets, page sizes, cache service, and
// exact reassembly.
func TestDoPagination(t *testing.T) {
	db := newTestDB(t, 100)
	svc := New(db, Config{})
	ctx := context.Background()

	full, err := svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}

	var pages []*Response
	req := Request{Query: demoQuery, Limit: 30}
	for {
		resp, err := svc.Do(ctx, req)
		if err != nil {
			t.Fatalf("page %d: %v", len(pages), err)
		}
		pages = append(pages, resp)
		if resp.NextCursor == "" {
			break
		}
		req.Cursor = resp.NextCursor
	}
	if len(pages) != 4 {
		t.Fatalf("got %d pages, want 4", len(pages))
	}
	var got [][]string
	for i, p := range pages {
		if p.TotalRows != 100 {
			t.Errorf("page %d: total_rows = %d, want 100", i, p.TotalRows)
		}
		if p.Offset != i*30 {
			t.Errorf("page %d: offset = %d, want %d", i, p.Offset, i*30)
		}
		want := 30
		if i == 3 {
			want = 10
		}
		if len(p.Rows) != want {
			t.Errorf("page %d: %d rows, want %d", i, len(p.Rows), want)
		}
		if !p.Cached {
			t.Errorf("page %d not served from cache", i)
		}
		got = append(got, p.Rows...)
	}
	if len(got) != len(full.Rows) {
		t.Fatalf("reassembled %d rows, want %d", len(got), len(full.Rows))
	}
	for i := range got {
		if strings.Join(got[i], "\t") != strings.Join(full.Rows[i], "\t") {
			t.Fatalf("row %d differs after reassembly", i)
		}
	}
}

// TestPaginationTokenValidation: tokens must be well-formed, belong to
// the submitted query, and point at a still-available snapshot.
func TestPaginationTokenValidation(t *testing.T) {
	db := newTestDB(t, 50)
	svc := New(db, Config{CacheEntries: 1})
	ctx := context.Background()

	first, err := svc.Do(ctx, Request{Query: demoQuery, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if first.NextCursor == "" {
		t.Fatal("no cursor for a 50-row result with limit 10")
	}

	if _, err := svc.Do(ctx, Request{Query: demoQuery, Cursor: "!!not base64!!"}); !errors.Is(err, ErrBadCursor) {
		t.Errorf("malformed token: got %v, want ErrBadCursor", err)
	}
	otherQuery := `proc p write file f["%out1.log"] as evt return p, f`
	if _, err := svc.Do(ctx, Request{Query: otherQuery, Cursor: first.NextCursor}); !errors.Is(err, ErrBadCursor) {
		t.Errorf("token replayed against another query: got %v, want ErrBadCursor", err)
	}

	// Evict the snapshot (capacity 1) and advance the store: the token's
	// generation is gone, so the chain must expire instead of silently
	// recomputing over newer data.
	if _, err := svc.Do(ctx, Request{Query: otherQuery}); err != nil {
		t.Fatal(err)
	}
	db.Append(demoRecord(50))
	db.Flush()
	if _, err := svc.Do(ctx, Request{Query: demoQuery, Cursor: first.NextCursor}); !errors.Is(err, ErrCursorExpired) {
		t.Errorf("superseded snapshot: got %v, want ErrCursorExpired", err)
	}
}

// TestPaginationSnapshotUnderWrites is the stress test: readers page
// through a result while a writer appends. Every chain must observe one
// consistent generation — all pages report the same total, the pages are
// disjoint, and together they are exactly rows {out0..out(T-1)} for the
// chain's total T. A chain whose snapshot was evicted and superseded may
// expire (the reader restarts), but it must never mix generations.
func TestPaginationSnapshotUnderWrites(t *testing.T) {
	const (
		initial  = 300
		readers  = 4
		chains   = 15
		pageSize = 50
		batches  = 40
		batch    = 10
	)
	db := newTestDB(t, initial)
	svc := New(db, Config{Workers: 8, CacheEntries: 64})
	ctx := context.Background()

	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)
	rowIndex := func(row []string) (int, error) {
		f := row[len(row)-1] // the file column, C:\data\out<N>.log
		num := strings.TrimSuffix(f[strings.Index(f, "out")+3:], ".log")
		return strconv.Atoi(num)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for c := 0; c < chains; c++ {
			restart:
				first, err := svc.Do(ctx, Request{Query: demoQuery, Limit: pageSize})
				if err != nil {
					errCh <- fmt.Errorf("reader %d chain %d: %w", r, c, err)
					return
				}
				total := first.TotalRows
				seen := make(map[int]bool, total)
				page := first
				for {
					if page.TotalRows != total {
						errCh <- fmt.Errorf("reader %d chain %d: total changed mid-chain: %d -> %d (mixed generations)", r, c, total, page.TotalRows)
						return
					}
					for _, row := range page.Rows {
						i, err := rowIndex(row)
						if err != nil {
							errCh <- fmt.Errorf("reader %d chain %d: bad row %v: %w", r, c, row, err)
							return
						}
						if seen[i] {
							errCh <- fmt.Errorf("reader %d chain %d: row %d served twice (overlapping pages)", r, c, i)
							return
						}
						seen[i] = true
					}
					if page.NextCursor == "" {
						break
					}
					page, err = svc.Do(ctx, Request{Query: demoQuery, Cursor: page.NextCursor})
					if errors.Is(err, ErrCursorExpired) {
						goto restart // snapshot evicted+superseded: legal, start a new chain
					}
					if err != nil {
						errCh <- fmt.Errorf("reader %d chain %d: %w", r, c, err)
						return
					}
				}
				if len(seen) != total {
					errCh <- fmt.Errorf("reader %d chain %d: chain yielded %d rows, total said %d", r, c, len(seen), total)
					return
				}
				for i := 0; i < total; i++ {
					if !seen[i] {
						errCh <- fmt.Errorf("reader %d chain %d: row %d missing — pages are not one generation", r, c, i)
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < batches; b++ {
			recs := make([]aiql.Record, 0, batch)
			for j := 0; j < batch; j++ {
				recs = append(recs, demoRecord(initial+b*batch+j))
			}
			db.AppendAll(recs)
			db.Flush()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestSingleflight: 16 concurrent identical cache-miss queries trigger
// exactly one engine execution; everyone gets the same full result.
// (Run under -race via the tier-1 gate.)
func TestSingleflight(t *testing.T) {
	const clients = 16
	db := newTestDB(t, 2000)
	svc := New(db, Config{Workers: 4})
	ctx := context.Background()

	start := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			resp, err := svc.Do(ctx, Request{Query: demoQuery})
			if err != nil {
				errCh <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			if resp.TotalRows != 2000 {
				errCh <- fmt.Errorf("client %d: %d rows, want 2000", c, resp.TotalRows)
			}
		}(c)
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := svc.Stats()
	if st.Executions != 1 {
		t.Errorf("%d engine executions for %d concurrent identical queries, want exactly 1 (stats %+v)", st.Executions, clients, st)
	}
	if st.Queries != clients {
		t.Errorf("queries = %d, want %d", st.Queries, clients)
	}
}

// TestClientThrottling: one client at its in-flight cap is rejected with
// ErrClientThrottled while other clients (and unkeyed requests) proceed.
func TestClientThrottling(t *testing.T) {
	db := newTestDB(t, 10)
	svc := New(db, Config{Workers: 4, ClientInflight: 1, CacheEntries: -1})
	ctx := context.Background()

	svc.clientMu.Lock()
	svc.clients["noisy"] = 1 // the noisy client's one slot is taken
	svc.clientMu.Unlock()
	defer func() {
		svc.clientMu.Lock()
		delete(svc.clients, "noisy")
		svc.clientMu.Unlock()
	}()

	if _, err := svc.Do(ctx, Request{Query: demoQuery, Client: "noisy"}); !errors.Is(err, ErrClientThrottled) {
		t.Fatalf("noisy client: got %v, want ErrClientThrottled", err)
	}
	if _, err := svc.Do(ctx, Request{Query: demoQuery, Client: "calm"}); err != nil {
		t.Fatalf("calm client rejected: %v", err)
	}
	if _, err := svc.Do(ctx, Request{Query: demoQuery}); err != nil {
		t.Fatalf("unkeyed request rejected: %v", err)
	}
	if st := svc.Stats(); st.Throttled != 1 {
		t.Errorf("throttled = %d, want 1", st.Throttled)
	}
}

// TestHTTPClientThrottled: the API maps ErrClientThrottled to 429 with
// Retry-After, keyed by the X-Client-Id header.
func TestHTTPClientThrottled(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{ClientInflight: 1, CacheEntries: -1})
	svc.clientMu.Lock()
	svc.clients["tenant-a"] = 1
	svc.clientMu.Unlock()

	req := httptest.NewRequest(http.MethodPost, "/api/v1/query",
		strings.NewReader(`{"query": "proc p write file f as evt return p, f"}`))
	req.Header.Set("X-Client-Id", "tenant-a")
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestCacheByteBudget: the cache evicts by approximate byte footprint,
// not only by entry count.
func TestCacheByteBudget(t *testing.T) {
	db := newTestDB(t, 100)
	// ~100 rows x ~2 cells x ~(len+16) ≈ 10 KiB per entry: budget one
	// entry but allow many by count
	svc := New(db, Config{CacheEntries: 64, MaxCacheBytes: 15 << 10})
	ctx := context.Background()

	if _, err := svc.Do(ctx, Request{Query: demoQuery}); err != nil {
		t.Fatal(err)
	}
	q2 := `proc p["%worker.exe"] write file f as evt return distinct p, f`
	if _, err := svc.Do(ctx, Request{Query: q2}); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.CacheEntries != 1 {
		t.Fatalf("cache holds %d entries, want 1 under the byte budget (bytes=%d)", st.CacheEntries, st.CacheBytes)
	}
	if st.CacheBytes <= 0 || st.CacheBytes > 15<<10 {
		t.Errorf("cache_bytes = %d, want within (0, %d]", st.CacheBytes, 15<<10)
	}
	// the first query was evicted; the second is the survivor
	resp, err := svc.Do(ctx, Request{Query: q2})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("most recent entry evicted instead of oldest")
	}
	resp, err = svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("evicted entry still served from cache")
	}
}

// TestCacheRejectsOversizedEntry: a result larger than the whole byte
// budget must not wipe the cache to admit itself.
func TestCacheRejectsOversizedEntry(t *testing.T) {
	db := newTestDB(t, 200)
	svc := New(db, Config{CacheEntries: 64, MaxCacheBytes: 1 << 10})
	if _, err := svc.Do(context.Background(), Request{Query: demoQuery}); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.CacheEntries != 0 {
		t.Errorf("oversized result was cached (%d entries, %d bytes)", st.CacheEntries, st.CacheBytes)
	}
}

// TestDoStreamCancelMidStream: cancelling the request context after k
// rows aborts the stream with a context error — the deterministic
// mid-stream disconnect path.
func TestDoStreamCancelMidStream(t *testing.T) {
	svc := New(fig4DB(), Config{CacheEntries: -1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	rows := 0
	_, err := svc.DoStream(ctx, Request{Query: fig4StreamQuery},
		func(cols []string, cached bool) error {
			if cached {
				return errors.New("unexpected cache hit")
			}
			return nil
		},
		func(row []string) error {
			rows++
			if rows == 5 {
				cancel() // the client goes away mid-stream
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rows < 5 {
		t.Fatalf("stream delivered %d rows before cancel, want >= 5", rows)
	}
	if st := svc.Stats(); st.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", st.Canceled)
	}
}

// TestDoStreamLimitPushdown: the stream's limit reaches the engine — the
// scan stops after the limit instead of draining the store.
func TestDoStreamLimitPushdown(t *testing.T) {
	svc := New(fig4DB(), Config{CacheEntries: -1})
	rows := 0
	resp, err := svc.DoStream(context.Background(), Request{Query: fig4StreamQuery, Limit: 25},
		func([]string, bool) error { return nil },
		func([]string) error { rows++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rows != 25 || resp.TotalRows != 25 {
		t.Fatalf("streamed %d rows (reported %d), want 25", rows, resp.TotalRows)
	}
	if resp.Stats.ScannedEvents >= int64(svc.DB().Len()) {
		t.Errorf("limit 25 stream scanned the whole store (%d events)", resp.Stats.ScannedEvents)
	}
}

// TestHTTPQueryPagination: the buffered endpoint carries cursor tokens
// over the wire — limit picks the page size, next_cursor chains pages,
// offsets advance, and the final page has no cursor.
func TestHTTPQueryPagination(t *testing.T) {
	svc := New(newTestDB(t, 25), Config{})
	h := svc.Handler()

	first := decodeResult(t, doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f", "limit": 10}`))
	if len(first.Rows) != 10 || first.TotalRows != 25 || first.Offset != 0 || first.NextCursor == "" {
		t.Fatalf("first page = %d rows / total %d / offset %d / cursor %q", len(first.Rows), first.TotalRows, first.Offset, first.NextCursor)
	}
	second := decodeResult(t, doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f", "limit": 10, "cursor": "`+first.NextCursor+`"}`))
	if len(second.Rows) != 10 || second.Offset != 10 || second.NextCursor == "" {
		t.Fatalf("second page = %d rows / offset %d / cursor %q", len(second.Rows), second.Offset, second.NextCursor)
	}
	third := decodeResult(t, doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f", "limit": 10, "cursor": "`+second.NextCursor+`"}`))
	if len(third.Rows) != 5 || third.Offset != 20 || third.NextCursor != "" {
		t.Fatalf("third page = %d rows / offset %d / cursor %q", len(third.Rows), third.Offset, third.NextCursor)
	}

	rec := doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f", "cursor": "garbage!"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed cursor: status %d, want 400", rec.Code)
	}
}

// TestHTTPQueryCursorExpired: a token whose snapshot is evicted and
// superseded maps to 410 Gone.
func TestHTTPQueryCursorExpired(t *testing.T) {
	db := newTestDB(t, 25)
	svc := New(db, Config{CacheEntries: 1})
	h := svc.Handler()

	first := decodeResult(t, doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f", "limit": 10}`))
	// evict the snapshot, then advance the store
	doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f[\"%out1.log\"] as evt return p, f"}`)
	db.Append(demoRecord(25))
	db.Flush()

	rec := doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f", "cursor": "`+first.NextCursor+`"}`)
	if rec.Code != http.StatusGone {
		t.Fatalf("status %d, want 410: %s", rec.Code, rec.Body.String())
	}
}

// TestHTTPStreamGolden locks the NDJSON wire format: header line, one
// JSON array per row in deterministic order, trailer line.
func TestHTTPStreamGolden(t *testing.T) {
	svc := New(singleAgentDB(t, 3), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query/stream",
		`{"query": "proc p write file f as evt return p, f"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	goldenPrefix := []string{
		`{"columns":["p.exe_name","f.name"]}`,
		`["worker.exe","C:\\data\\out0.log"]`,
		`["worker.exe","C:\\data\\out1.log"]`,
		`["worker.exe","C:\\data\\out2.log"]`,
	}
	if len(lines) != len(goldenPrefix)+1 {
		t.Fatalf("got %d NDJSON lines, want %d:\n%s", len(lines), len(goldenPrefix)+1, rec.Body.String())
	}
	for i, want := range goldenPrefix {
		if lines[i] != want {
			t.Errorf("line %d = %s, want %s", i, lines[i], want)
		}
	}
	var trailer StreamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("trailer %q: %v", lines[len(lines)-1], err)
	}
	if !trailer.Done || trailer.Rows != 3 || trailer.Error != "" || trailer.ScannedEvents != 3 {
		t.Errorf("trailer = %+v, want done, 3 rows, 3 scanned, no error", trailer)
	}
}

// TestHTTPStreamParseError: failures before the first streamed byte use
// normal error statuses.
func TestHTTPStreamParseError(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query/stream", `{"query": "not aiql"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body.String())
	}
}

// TestHTTPStreamClientDisconnect exercises the real network path: the
// client reads the stream's head and slams the connection while the
// server is still producing; the server-side execution must abort (the
// canceled counter moves, far fewer rows streamed than the result
// holds) instead of draining everything into a dead socket. The query
// is a deliberate quadratic self-join (~1.1M result rows, far beyond
// any socket buffering) so the producer is guaranteed to still be
// running when the disconnect lands.
func TestHTTPStreamClientDisconnect(t *testing.T) {
	const totalRows = 1500 * 1499 / 2 // ordered pairs under `e1 before e2`
	svc := New(singleAgentDB(t, 1500), Config{CacheEntries: -1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	query := `proc p1 write file f1 as e1
proc p2 write file f2 as e2
with e1 before e2
return f1, f2`
	resp, err := http.Post(srv.URL+"/api/v1/query/stream", "application/json",
		strings.NewReader(`{"query": "`+strings.ReplaceAll(query, "\n", " ")+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 4 && sc.Scan(); i++ { // header + 3 rows
	}
	resp.Body.Close() // disconnect mid-stream

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := svc.Stats()
		if st.Canceled >= 1 && st.Active == 0 {
			if st.RowsStreamed >= totalRows {
				t.Fatalf("disconnect did not stop the stream: %d rows streamed", st.RowsStreamed)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("stream not aborted after client disconnect: stats %+v", svc.Stats())
}

// BenchmarkFullDrain is the price of materializing the ~17k-row Fig4
// read query end to end.
func BenchmarkFullDrain(b *testing.B) {
	db := fig4DB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(fig4StreamQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLimit50EarlyTermination is the same query under limit
// pushdown: the scan stops after 50 matches.
func BenchmarkLimit50EarlyTermination(b *testing.B) {
	db := fig4DB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := db.QueryCursor(context.Background(), fig4StreamQuery, aiql.CursorOptions{Limit: 50})
		if err != nil {
			b.Fatal(err)
		}
		for cur.Next() {
		}
		cur.Close()
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
