package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/engine"
)

// fakeShards scripts a ShardBackend outcome, counting invocations so
// tests can observe caching behavior.
type fakeShards struct {
	rows  [][]string
	warns []ShardWarning
	err   error
	gen   atomic.Uint64
	runs  atomic.Int64
}

func (f *fakeShards) Run(ctx context.Context, q ShardQuery) (*engine.Result, []ShardWarning, error) {
	f.runs.Add(1)
	if f.err != nil {
		return nil, f.warns, f.err
	}
	return &engine.Result{Columns: q.Columns, Rows: f.rows, Stats: engine.ExecStats{ScannedEvents: int64(len(f.rows))}}, f.warns, nil
}

func (f *fakeShards) RunStream(ctx context.Context, q ShardQuery, header func([]string) error, row func([]string) error) (engine.ExecStats, []ShardWarning, error) {
	f.runs.Add(1)
	if err := header(q.Columns); err != nil {
		return engine.ExecStats{}, nil, err
	}
	if f.err != nil {
		return engine.ExecStats{}, f.warns, f.err
	}
	rows := f.rows
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	for _, r := range rows {
		if err := row(r); err != nil {
			return engine.ExecStats{}, nil, err
		}
	}
	return engine.ExecStats{ScannedEvents: int64(len(rows))}, f.warns, nil
}

func (f *fakeShards) Generation() uint64 { return f.gen.Load() }
func (f *fakeShards) Stats() *ShardStats {
	return &ShardStats{Queries: uint64(f.runs.Load()), Generation: f.gen.Load()}
}
func (f *fakeShards) Close() error { return nil }

const shardTestQuery = `proc p write file f as evt return p, f`

func newShardedService(t *testing.T, f *fakeShards, cfg Config) *Service {
	t.Helper()
	svc := NewSharded(aiql.Open(), f, cfg)
	if !svc.Sharded() {
		t.Fatal("NewSharded service does not report Sharded()")
	}
	return svc
}

// TestShardRetryAfterPropagates rides alongside
// TestRetryAfterProportional: when a member 429s, the coordinator's
// propagated hint — not a locally synthesized one — reaches the
// client's Retry-After header.
func TestShardRetryAfterPropagates(t *testing.T) {
	f := &fakeShards{err: WithRetryHint(fmt.Errorf("shard m2: %w", ErrClientThrottled), 9)}
	svc := newShardedService(t, f, Config{CacheEntries: -1})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query",
		`{"query": "`+shardTestQuery+`"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "9" {
		t.Fatalf("Retry-After = %q, want the member's own hint 9", got)
	}
	if e := decodeError(t, rec); e.Code != CodeThrottled {
		t.Errorf("code %q, want %q", e.Code, CodeThrottled)
	}
}

// TestShardedPartialResponse: member failures surface as typed warnings
// with partial=true, partial results are never cached and never hand
// out pagination cursors.
func TestShardedPartialResponse(t *testing.T) {
	f := &fakeShards{
		rows:  [][]string{{"worker.exe", "a.log"}, {"worker.exe", "b.log"}},
		warns: []ShardWarning{{Code: CodeShardUnavailable, Shard: "m2", Error: "connection refused"}},
	}
	svc := newShardedService(t, f, Config{})
	resp, err := svc.Do(context.Background(), Request{Query: shardTestQuery, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial || len(resp.Warnings) != 1 || resp.Warnings[0].Shard != "m2" {
		t.Fatalf("partial=%v warnings=%+v", resp.Partial, resp.Warnings)
	}
	if resp.Warnings[0].Code != CodeShardUnavailable {
		t.Errorf("warning code %q, want %q", resp.Warnings[0].Code, CodeShardUnavailable)
	}
	if resp.NextCursor != "" {
		t.Error("partial result handed out a pagination cursor (its later pages could silently differ once the member returns)")
	}
	if _, err := svc.Do(context.Background(), Request{Query: shardTestQuery, Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if f.runs.Load() != 2 {
		t.Errorf("backend ran %d times, want 2 (partial results must not be cached)", f.runs.Load())
	}

	// the same query with healthy members: cached, paginated
	f.warns = nil
	resp, err = svc.Do(context.Background(), Request{Query: shardTestQuery, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Partial || resp.NextCursor == "" {
		t.Fatalf("healthy scatter: partial=%v cursor=%q", resp.Partial, resp.NextCursor)
	}
	page2, err := svc.Do(context.Background(), Request{Query: shardTestQuery, Cursor: resp.NextCursor, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(page2.Rows) != 1 || page2.Rows[0][1] != "b.log" {
		t.Fatalf("page 2 = %+v", page2.Rows)
	}
	runs := f.runs.Load()
	if _, err := svc.Do(context.Background(), Request{Query: shardTestQuery, Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if f.runs.Load() != runs {
		t.Error("healthy sharded result was not served from cache")
	}

	// a member commit moves the generation; the cache invalidates
	f.gen.Add(1)
	if _, err := svc.Do(context.Background(), Request{Query: shardTestQuery, Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if f.runs.Load() != runs+1 {
		t.Error("generation change did not invalidate the sharded result cache")
	}
}

// TestShardedStreamTrailer: the streaming endpoint carries partiality in
// its trailer, after delivering every healthy member's rows.
func TestShardedStreamTrailer(t *testing.T) {
	f := &fakeShards{
		rows:  [][]string{{"worker.exe", "a.log"}},
		warns: []ShardWarning{{Code: CodeShardUnavailable, Shard: "dead", Error: "eof"}},
	}
	svc := newShardedService(t, f, Config{})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query/stream",
		`{"query": "`+shardTestQuery+`"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	lines := []string{}
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 3 { // header, 1 row, trailer
		t.Fatalf("stream lines = %d: %q", len(lines), lines)
	}
	var tr StreamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Done || !tr.Partial || len(tr.Warnings) != 1 || tr.Warnings[0].Shard != "dead" {
		t.Fatalf("trailer %+v, want done+partial with the dead member's warning", tr)
	}
}

// TestShardedRejectsWrites: a coordinator is read-only — ingest and
// standing queries belong on the members.
func TestShardedRejectsWrites(t *testing.T) {
	svc := newShardedService(t, &fakeShards{}, Config{})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/ingest", ingestLine(0))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("ingest on coordinator: status %d, want 400", rec.Code)
	}
	if e := decodeError(t, rec); e.Code != CodeUnsupported {
		t.Errorf("ingest code %q, want %q", e.Code, CodeUnsupported)
	}
	rec = doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/watch",
		`{"query": "`+shardTestQuery+`"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("watch on coordinator: status %d, want 400", rec.Code)
	}
}

// TestHealthzEndpoint: 200 with store/WAL figures while serving, 503
// once the store closes or for a dataset the catalog does not hold.
func TestHealthzEndpoint(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/api/v1/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.StoreOpen || h.WALHeld || h.Sharded {
		t.Fatalf("health %+v, want ok/open/in-memory/unsharded", h)
	}
	if h.Generation == 0 {
		t.Error("healthz reports no store generation")
	}

	if rec := doJSON(t, svc.Handler(), http.MethodGet, "/api/v1/healthz?dataset=nope", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unknown dataset healthz: status %d, want 503", rec.Code)
	}
	if rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/healthz", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST healthz: status %d, want 405", rec.Code)
	}

	if err := svc.DB().Close(); err != nil {
		t.Fatal(err)
	}
	rec = doJSON(t, svc.Handler(), http.MethodGet, "/api/v1/healthz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("closed store healthz: status %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "unavailable" || h.StoreOpen {
		t.Fatalf("closed store health %+v", h)
	}
}

// TestHealthzWALHeld: a durable dataset reports its WAL lock.
func TestHealthzWALHeld(t *testing.T) {
	db, err := aiql.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(db, Config{})
	defer db.Close()
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/api/v1/healthz", "")
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.WALHeld {
		t.Fatalf("durable dataset health %+v, want wal_held", h)
	}
}

// TestSortedStream: "sorted": true streams the buffered execution's
// canonical row order — the contract shard members serve coordinators.
func TestSortedStream(t *testing.T) {
	svc := New(newTestDB(t, 30), Config{})
	want, err := svc.Do(context.Background(), Request{Query: shardTestQuery})
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query/stream",
		`{"query": "`+shardTestQuery+`", "sorted": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var rows [][]string
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	first := true
	for sc.Scan() {
		line := sc.Text()
		if first {
			first = false
			continue
		}
		if strings.HasPrefix(line, "[") {
			var r []string
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatal(err)
			}
			rows = append(rows, r)
		}
	}
	if len(rows) != len(want.Rows) {
		t.Fatalf("sorted stream delivered %d rows, want %d", len(rows), len(want.Rows))
	}
	for i := range rows {
		if rows[i][0] != want.Rows[i][0] || rows[i][1] != want.Rows[i][1] {
			t.Fatalf("row %d: stream %v != buffered %v", i, rows[i], want.Rows[i])
		}
	}
}
