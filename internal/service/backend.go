package service

import (
	"context"
	"errors"

	"github.com/aiql/aiql/internal/engine"
)

// ShardQuery is one query the service hands to its shard backend for
// scatter-gather execution. The query travels as template text plus raw
// bindings — prepared statements fan out by fingerprint, each member
// compiling (or reusing) the template against its own store.
type ShardQuery struct {
	// Query is the AIQL text: a template when Params is non-empty,
	// plain text otherwise.
	Query string
	// Params are the raw `$name` bindings, forwarded verbatim.
	Params map[string]any
	// Columns is the result header, known from planning before any
	// member responds; streams emit it immediately.
	Columns []string
	// Kind is the query family (multievent, dependency, anomaly).
	Kind string
	// Client is the caller's fairness key, forwarded so member-side
	// admission attributes fan-out load to the real client.
	Client string
	// Limit, when positive, is pushed down to every member: each
	// member's sorted stream stops after Limit rows, and the merged
	// stream stops after Limit rows overall — member streams are
	// sorted, so the first Limit rows of each member are a superset of
	// the global first Limit.
	Limit int
	// RequireAll fails the query on any unreachable member instead of
	// degrading to partial results with warnings.
	RequireAll bool
}

// ShardWarning reports one member that could not contribute to a
// scatter-gathered result. A response carrying warnings is partial: the
// rows are complete for every healthy member and missing the rest.
type ShardWarning struct {
	Code  string `json:"code"`  // CodeShardUnavailable
	Shard string `json:"shard"` // member name from the partition map
	Error string `json:"error"`
}

// ShardMemberStats are one member's monotonic fan-out counters plus its
// probed health.
type ShardMemberStats struct {
	Shard   string `json:"shard"`
	Remote  bool   `json:"remote"`
	Healthy bool   `json:"healthy"`
	// Fanouts counts queries dispatched to the member; Pruned counts
	// queries whose time window or agent filter proved the member could
	// hold no matches, skipped without contact.
	Fanouts uint64 `json:"fanouts"`
	Pruned  uint64 `json:"pruned"`
	Retries uint64 `json:"retries"`
	Errors  uint64 `json:"errors"`
	Rows    uint64 `json:"rows"`
}

// ShardStats snapshots a shard coordinator for /api/v1/stats and the
// metrics collector.
type ShardStats struct {
	Queries    uint64             `json:"queries"`
	Partial    uint64             `json:"partial"` // queries degraded to partial results
	Generation uint64             `json:"generation"`
	Members    []ShardMemberStats `json:"members"`
}

// ShardBackend executes queries across a sharded dataset's members. The
// service stays the single admission/caching/pagination layer; the
// backend owns fan-out, per-member transport, pruning, and the
// deterministic merge. Implementations must be safe for concurrent use.
type ShardBackend interface {
	// Run scatter-gathers the full result: every member's sorted rows,
	// k-way merge-sorted with engine.RowLess — byte-identical to the
	// same data executed in one store. Warnings name members that
	// could not contribute (nil error: partial result).
	Run(ctx context.Context, q ShardQuery) (*engine.Result, []ShardWarning, error)
	// RunStream merge-streams rows in sorted order as members produce
	// them: header is called once before any row. A positive q.Limit
	// cancels member streams after the merged limit is reached.
	RunStream(ctx context.Context, q ShardQuery, header func(cols []string) error, row func([]string) error) (engine.ExecStats, []ShardWarning, error)
	// Generation identifies the members' combined store version for
	// result-cache keying: it changes whenever any local member
	// commits or a remote member's probed epoch moves.
	Generation() uint64
	// Stats snapshots the coordinator's counters.
	Stats() *ShardStats
	// Close stops probes and releases member transports.
	Close() error
}

// WithRetryHint decorates err with the backoff (whole seconds) the
// client should observe before retrying; the HTTP layer surfaces it as
// the Retry-After header. The shard coordinator uses it to propagate a
// throttled member's own hint — the largest across members — instead of
// synthesizing a new one from coordinator-local queue pressure.
func WithRetryHint(err error, seconds int) error {
	if seconds < 1 {
		seconds = 1
	}
	return &retryHintError{err: err, after: seconds}
}

// RetryHintSeconds extracts a Retry-After hint attached by
// WithRetryHint or the admission layer (0, false when none is set).
func RetryHintSeconds(err error) (int, bool) {
	var hint *retryHintError
	if errors.As(err, &hint) {
		return hint.after, true
	}
	return 0, false
}
