package service

import (
	"container/list"
	"sync"

	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/qtext"
)

// cacheKey identifies one query result: the normalized query text plus
// the store's commit counter at execution time. Because every append
// commit bumps the counter, entries computed over an older store version
// become unreachable (and age out of the LRU) the moment new data lands —
// invalidation by key, not by scanning.
type cacheKey struct {
	query   string
	commits uint64
}

// cacheEntry is one cached execution outcome. The Result is shared by
// every client that hits the entry and must be treated as read-only;
// response shaping (limit truncation, pagination) slices, never mutates.
type cacheEntry struct {
	key    cacheKey
	result *engine.Result
	kind   string
	bytes  int64 // approximate memory footprint, fixed at creation
	// trace is the producing execution's span tree; responses expose it
	// only when the request asked to be traced.
	trace *obs.SpanNode
	// warnings names shard members that could not contribute; a
	// non-empty list marks the result partial and bars the entry from
	// the cache (executeShared skips the put).
	warnings []ShardWarning
}

// approxResultBytes estimates the resident size of a result: the string
// bytes of every cell and column plus slice/header overhead. It is the
// unit the cache's byte budget is accounted in.
func approxResultBytes(res *engine.Result) int64 {
	const (
		stringOverhead = 16 // string header
		rowOverhead    = 24 // slice header per row
	)
	var n int64
	for _, c := range res.Columns {
		n += int64(len(c)) + stringOverhead
	}
	for _, row := range res.Rows {
		n += rowOverhead
		for _, cell := range row {
			n += int64(len(cell)) + stringOverhead
		}
	}
	return n
}

// resultCache is a mutex-guarded LRU over executed query results,
// bounded both by entry count and by the approximate memory footprint of
// the cached rows. Whichever bound is exceeded first drives eviction, so
// one enormous result cannot pin the budget the way it could under a
// pure entry-count policy.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64
	bytes    int64
	entries  map[cacheKey]*list.Element
	order    *list.List // front = most recently used
}

func newResultCache(capacity int, maxBytes int64) *resultCache {
	if capacity <= 0 {
		return nil // caching disabled
	}
	return &resultCache{
		cap:      capacity,
		maxBytes: maxBytes,
		entries:  make(map[cacheKey]*list.Element, capacity),
		order:    list.New(),
	}
}

func (c *resultCache) get(key cacheKey) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

func (c *resultCache) put(entry *cacheEntry) {
	if c == nil {
		return
	}
	if entry.bytes == 0 {
		entry.bytes = approxResultBytes(entry.result)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// an entry larger than the whole budget would evict everything and
	// still not fit; don't admit it
	if c.maxBytes > 0 && entry.bytes > c.maxBytes {
		return
	}
	if el, ok := c.entries[entry.key]; ok {
		c.order.MoveToFront(el)
		c.bytes += entry.bytes - el.Value.(*cacheEntry).bytes
		el.Value = entry
	} else {
		c.entries[entry.key] = c.order.PushFront(entry)
		c.bytes += entry.bytes
	}
	for c.order.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		old := oldest.Value.(*cacheEntry)
		c.bytes -= old.bytes
		delete(c.entries, old.key)
	}
}

func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *resultCache) sizeBytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// normalizeQuery canonicalizes query text for cache keying, so
// reformatting a query (line breaks, indentation) still hits the cache.
// The same normalization fingerprints prepared-statement templates.
func normalizeQuery(src string) string { return qtext.Normalize(src) }
