package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/experiments"
)

// newSegmentedTestDB builds a database with many small sealed segments,
// the segment scan cache enabled, and per-record commits so appended
// tails land in memtables.
func newSegmentedTestDB(t testing.TB, events int) *aiql.DB {
	t.Helper()
	storage := aiql.DefaultStorage()
	storage.SegmentEvents = 16
	storage.BatchSize = 1
	db := aiql.OpenWithOptions(storage, aiql.EngineConfig{ScanCacheBytes: 8 << 20})
	recs := make([]aiql.Record, 0, events)
	for i := 0; i < events; i++ {
		recs = append(recs, demoRecord(i))
	}
	db.AppendAll(recs)
	db.Flush() // seal everything loaded so far
	return db
}

// TestServiceSegmentReuseAfterAppend is the service-level acceptance
// check for segment-granular reuse: after an AppendAll to a warm store,
// re-running the same query misses the result cache (the commit counter
// moved) but reuses every previously sealed segment's scan results —
// asserted via the response's segment-cache hit counters.
func TestServiceSegmentReuseAfterAppend(t *testing.T) {
	db := newSegmentedTestDB(t, 160)
	svc := New(db, Config{})
	ctx := context.Background()

	cold, err := svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached || cold.Stats.SegmentHits != 0 {
		t.Fatalf("cold response: cached=%v hits=%d", cold.Cached, cold.Stats.SegmentHits)
	}
	sealed := cold.Stats.SegmentMisses
	if sealed < 5 {
		t.Fatalf("store produced only %d sealed segments, fixture is wrong", sealed)
	}

	// warm repeat: served from the result cache, no execution at all
	warm, err := svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("repeat on an unchanged store missed the result cache")
	}

	// append new data and seal it: the result cache invalidates (new
	// commit), but the re-execution reuses every pre-append segment
	db.AppendAll([]aiql.Record{demoRecord(160), demoRecord(161)})
	db.Flush()

	requery, err := svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if requery.Cached {
		t.Fatal("append did not invalidate the result cache")
	}
	if requery.TotalRows != cold.TotalRows+2 {
		t.Fatalf("re-query rows %d, want %d", requery.TotalRows, cold.TotalRows+2)
	}
	if requery.Stats.SegmentHits != sealed {
		t.Errorf("re-query reused %d sealed segments, want all %d", requery.Stats.SegmentHits, sealed)
	}
	if requery.Stats.ScannedEvents >= cold.Stats.ScannedEvents {
		t.Errorf("re-query scanned %d events, cold scanned %d — want far fewer", requery.Stats.ScannedEvents, cold.Stats.ScannedEvents)
	}
	if cs := db.ScanCacheStats(); cs.Hits == 0 || cs.Entries == 0 {
		t.Errorf("scan cache stats %+v, want hits and entries", cs)
	}
}

// TestCursorPaginationAcrossSeal: walking a cursor chain across a
// concurrent append + seal must keep serving pages from the pinned
// generation — never a spurious 410.
func TestCursorPaginationAcrossSeal(t *testing.T) {
	db := newSegmentedTestDB(t, 100)
	svc := New(db, Config{})
	ctx := context.Background()

	page1, err := svc.Do(ctx, Request{Query: demoQuery, Limit: 30})
	if err != nil {
		t.Fatal(err)
	}
	if page1.NextCursor == "" || page1.TotalRows != 100 {
		t.Fatalf("page 1: total=%d cursor=%q", page1.TotalRows, page1.NextCursor)
	}

	// a pure seal (no new data) must not disturb the chain
	db.Flush()
	page2, err := svc.Do(ctx, Request{Query: demoQuery, Limit: 30, Cursor: page1.NextCursor})
	if err != nil {
		t.Fatalf("page 2 across a pure seal: %v", err)
	}

	// an append + seal moves the commit counter; the chain's generation
	// is still cached, so later pages keep working on the old snapshot
	db.AppendAll([]aiql.Record{demoRecord(100)})
	db.Flush()
	page3, err := svc.Do(ctx, Request{Query: demoQuery, Limit: 30, Cursor: page2.NextCursor})
	if err != nil {
		t.Fatalf("page 3 across an append+seal: %v", err)
	}
	total := len(page1.Rows) + len(page2.Rows) + len(page3.Rows)
	if total != 90 || page3.Offset != 60 {
		t.Errorf("pages covered %d rows (offset %d), want 90 rows offset 60", total, page3.Offset)
	}
	// every page reports the pinned generation's size, not the grown store's
	if page3.TotalRows != 100 {
		t.Errorf("page 3 total %d, want the pinned generation's 100", page3.TotalRows)
	}
}

// segFig4DB lazily builds a private Fig4 50k dataset with the segment
// scan cache enabled, fully sealed — the append-then-requery benchmarks
// mutate it, so it is deliberately not shared with other fixtures.
var segFig4DB = sync.OnceValue(func() *aiql.DB {
	store := experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42))
	db := aiql.FromStore(store)
	db.EnableSegmentScanCache(64 << 20)
	db.Flush() // seal all generated data
	return db
})

// segDeltaRecord fabricates one agent-2 file write inside the dataset's
// time range that matches none of fig4Query's patterns, so an appended
// delta invalidates the result cache without disturbing the bindings
// (the realistic "new telemetry lands, analyst re-runs an old
// investigation" shape).
func segDeltaRecord(i int) aiql.Record {
	return aiql.Record{
		AgentID: 2,
		Subject: aiql.Process{PID: 4242, ExeName: "collector.exe", Path: `C:\bin\collector.exe`, User: "system"},
		Op:      aiql.OpWrite,
		ObjType: aiql.EntityFile,
		ObjFile: aiql.File{Path: fmt.Sprintf(`C:\telemetry\delta%d.log`, i)},
		StartTS: time.Date(2018, 5, 10, 12, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second).UnixNano(),
	}
}

// segHuntQuery is the append-then-requery benchmark workload: a
// scan-bound hunting query ("find abnormally large file operations")
// that sweeps every file event in the store and matches a handful —
// exactly the shape where re-scanning after every append hurts and
// segment-granular reuse pays. Join-bound workloads (fig4Query) see a
// smaller, bindings-dominated benefit and stay covered by the
// streaming benchmarks.
const segHuntQuery = `proc p read || write || execute || delete file f as evt with evt.amount > 10000000 return p, f`

// BenchmarkSegmentsCold is the baseline: every iteration re-executes
// the hunting query with no result cache and no segment reuse.
func BenchmarkSegmentsCold(b *testing.B) {
	svc := New(fig4DB(), Config{CacheEntries: -1})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Do(ctx, Request{Query: segHuntQuery}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentsFullCacheHit measures the unchanged-store repeat:
// the monolithic result cache serves it without executing.
func BenchmarkSegmentsFullCacheHit(b *testing.B) {
	svc := New(fig4DB(), Config{})
	ctx := context.Background()
	if _, err := svc.Do(ctx, Request{Query: segHuntQuery}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Do(ctx, Request{Query: segHuntQuery})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("expected a result-cache hit")
		}
	}
}

// BenchmarkSegmentsPartialReuseAfterAppend measures the case the
// segment cache exists for: every iteration appends fresh telemetry
// (invalidating the result cache) and re-runs the query, which reuses
// all sealed-segment scan results and re-scans only the delta. The
// append itself runs off the clock; the measured work is the requery.
func BenchmarkSegmentsPartialReuseAfterAppend(b *testing.B) {
	db := segFig4DB()
	svc := New(db, Config{})
	ctx := context.Background()
	if _, err := svc.Do(ctx, Request{Query: segHuntQuery}); err != nil {
		b.Fatal(err) // warm the segment cache once
	}
	next := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		delta := make([]aiql.Record, 64)
		for j := range delta {
			delta[j] = segDeltaRecord(next)
			next++
		}
		db.AppendAll(delta)
		db.Flush()
		b.StartTimer()
		resp, err := svc.Do(ctx, Request{Query: segHuntQuery})
		if err != nil {
			b.Fatal(err)
		}
		if resp.Cached {
			b.Fatal("append failed to invalidate the result cache")
		}
		if resp.Stats.SegmentHits == 0 {
			b.Fatal("re-query reused no sealed segments")
		}
	}
}
