package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	aiql "github.com/aiql/aiql"
)

// Standing queries (the SAQL-style extension): an analyst registers an
// AIQL query once and the service re-evaluates it after every ingest
// commit, pushing only the rows that are new since the last evaluation
// to SSE subscribers. The prepared-statement machinery gives the
// compile-once template; the engine's delta evaluation plus the segment
// scan cache make each re-evaluation proportional to the fresh data,
// not the store size. The registry survives catalog hot-swaps the same
// way the prepared registry does — watches re-prepare against the
// swapped-in database under their original ids, live SSE subscriptions
// carried across.

// ErrWatchNotFound reports a watch id the registry does not hold:
// never issued, deleted, or killed because its query stopped compiling
// across a hot-swap.
var ErrWatchNotFound = errors.New("service: unknown or deleted watch id")

// ErrWatchLimit reports that the dataset's standing-query capacity is
// reached; delete a watch or raise -max-watches.
var ErrWatchLimit = errors.New("service: standing-query limit reached")

// WatchMatch is one push to a watch's subscribers: the rows a single
// post-ingest evaluation produced that no earlier evaluation reported.
type WatchMatch struct {
	WatchID string     `json:"watch_id"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// TotalMatches is the watch's cumulative distinct-row count after
	// this delta.
	TotalMatches int `json:"total_matches"`
}

// WatchEvalStats describes a watch's most recent evaluation.
type WatchEvalStats struct {
	ScannedEvents int64  `json:"scanned_events"`
	SegmentHits   int    `json:"segment_hits"`
	SegmentMisses int    `json:"segment_misses"`
	FreshRows     int    `json:"fresh_rows"`
	Skipped       bool   `json:"skipped"`
	Error         string `json:"error,omitempty"`
}

// WatchInfo is the wire description of one registered watch.
type WatchInfo struct {
	WatchID string   `json:"watch_id"`
	Query   string   `json:"query"`
	Kind    string   `json:"kind"`
	Columns []string `json:"columns,omitempty"`
	// Matches is the cumulative distinct rows this watch has reported
	// (including its registration baseline, which is recorded but not
	// pushed).
	Matches     int             `json:"matches"`
	Evals       uint64          `json:"evals"`
	Subscribers int             `json:"subscribers"`
	Dropped     uint64          `json:"dropped"`
	LastEval    *WatchEvalStats `json:"last_eval,omitempty"`
}

// WatchStats aggregates the registry for GET /api/v1/stats.
type WatchStats struct {
	Watches     int    `json:"watches"`
	Subscribers int    `json:"subscribers"`
	Evals       uint64 `json:"evals"`
	// Matches counts fresh rows pushed to subscribers over the
	// dataset's lifetime (baselines excluded).
	Matches uint64 `json:"matches"`
	// Dropped counts matches discarded by slow subscribers' buffers
	// (drop-oldest backpressure).
	Dropped uint64 `json:"dropped"`
}

// WatchSeed carries one watch across a dataset hot-swap, including its
// live subscribers; the catalog passes seeds between services opaquely.
type WatchSeed struct {
	ID     string
	Source string
	Params map[string]any

	subs    map[*watchSub]struct{}
	matches int
	dropped uint64
}

// watchSub is one SSE subscriber: a bounded match buffer plus a closed
// signal for watch deletion (or death across a hot-swap).
type watchSub struct {
	ch        chan WatchMatch
	closed    chan struct{}
	closeOnce sync.Once
}

func (sub *watchSub) close() { sub.closeOnce.Do(func() { close(sub.closed) }) }

// Matches returns the subscriber's delivery channel.
func (sub *watchSub) Matches() <-chan WatchMatch { return sub.ch }

// Closed is signalled when the watch is deleted out from under the
// subscriber; the SSE handler ends the stream then.
func (sub *watchSub) Closed() <-chan struct{} { return sub.closed }

// watch is one registered standing query.
type watch struct {
	id     string
	stmt   *aiql.Stmt
	params aiql.Params

	// mu serializes evaluations (the state is single-writer) and
	// guards the subscriber set and counters.
	mu        sync.Mutex
	state     *aiql.StandingState
	baselined bool
	evals     uint64
	dropped   uint64
	lastEval  WatchEvalStats
	subs      map[*watchSub]struct{}
}

// offer delivers m to sub without ever blocking the ingest path: a full
// buffer drops its oldest entry and retries, so a stalled SSE consumer
// loses its oldest matches, keeps its freshest, and never applies
// backpressure to the firehose. Called under w.mu — the single-producer
// guarantee that makes the drain-retry loop race-free against the
// consumer.
func (w *watch) offer(sub *watchSub, m WatchMatch) {
	for {
		select {
		case sub.ch <- m:
			return
		default:
		}
		select {
		case <-sub.ch:
			w.dropped++
		default:
		}
	}
}

// watchRegistry is a dataset's standing-query set.
type watchRegistry struct {
	cap    int
	buffer int

	mu      sync.Mutex
	watches map[string]*watch
	order   []string // registration order, for stable listings

	evals   atomic.Uint64
	matches atomic.Uint64
	dropped atomic.Uint64 // drops by watches since removed
}

func newWatchRegistry(capacity, buffer int) *watchRegistry {
	if capacity <= 0 {
		return nil // standing queries disabled
	}
	return &watchRegistry{cap: capacity, buffer: buffer, watches: make(map[string]*watch, capacity)}
}

// newWatchID mints an unguessable watch handle.
func newWatchID() string { return "watch_" + newStmtID()[len("stmt_"):] }

// insert registers w, enforcing the capacity cap.
func (r *watchRegistry) insert(w *watch) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.watches) >= r.cap {
		return fmt.Errorf("%w (%d)", ErrWatchLimit, r.cap)
	}
	r.watches[w.id] = w
	r.order = append(r.order, w.id)
	return nil
}

// get looks up a watch by id.
func (r *watchRegistry) get(id string) (*watch, error) {
	if r == nil {
		return nil, ErrWatchNotFound
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.watches[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrWatchNotFound, id)
	}
	return w, nil
}

// remove deletes a watch, returning it for subscriber shutdown.
func (r *watchRegistry) remove(id string) (*watch, error) {
	if r == nil {
		return nil, ErrWatchNotFound
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.watches[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrWatchNotFound, id)
	}
	delete(r.watches, id)
	for i, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return w, nil
}

// snapshot returns the live watches in registration order.
func (r *watchRegistry) snapshot() []*watch {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*watch, 0, len(r.watches))
	for _, id := range r.order {
		out = append(out, r.watches[id])
	}
	return out
}

// info renders one watch's wire description; the caller does not hold
// w.mu.
func (w *watch) info() WatchInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	le := w.lastEval
	info := WatchInfo{
		WatchID:     w.id,
		Query:       w.stmt.Source(),
		Kind:        w.stmt.Kind(),
		Columns:     w.stmt.Columns(),
		Matches:     w.state.Matches(),
		Evals:       w.evals,
		Subscribers: len(w.subs),
		Dropped:     w.dropped,
	}
	if w.evals > 0 {
		info.LastEval = &le
	}
	return info
}

// Watch registers src as a standing query over this dataset. The
// current matches are evaluated synchronously as the baseline — they
// are recorded, not pushed, so subscribers receive only matches caused
// by data that arrives after registration.
func (s *Service) Watch(ctx context.Context, src string, params map[string]any) (WatchInfo, error) {
	if s.watches == nil {
		return WatchInfo{}, &apiError{status: http.StatusBadRequest, code: CodeUnsupported,
			msg: "service: standing queries are disabled on this dataset"}
	}
	if s.shards != nil {
		return WatchInfo{}, &apiError{status: http.StatusBadRequest, code: CodeUnsupported,
			msg: "service: standing queries are not supported on a sharded dataset; watch the member datasets"}
	}
	stmt, err := s.db.Prepare(src)
	if err != nil {
		return WatchInfo{}, err
	}
	p := aiql.Params(params)
	if err := stmt.Check(p); err != nil {
		return WatchInfo{}, err
	}
	w := &watch{
		id:     newWatchID(),
		stmt:   stmt,
		params: p,
		state:  aiql.NewStandingState(),
		subs:   make(map[*watchSub]struct{}),
	}
	// The baseline runs under admission like any query — registration
	// is the one expensive evaluation (full scan, cold cache).
	if err := s.admit(ctx); err != nil {
		return WatchInfo{}, err
	}
	s.active.Add(1)
	s.evalWatch(ctx, w)
	s.active.Add(-1)
	<-s.sem
	w.mu.Lock()
	evalErr := w.lastEval.Error
	w.mu.Unlock()
	if evalErr != "" {
		return WatchInfo{}, &apiError{status: http.StatusBadRequest, code: CodeExecError,
			msg: "service: watch baseline evaluation failed: " + evalErr}
	}
	if err := s.watches.insert(w); err != nil {
		return WatchInfo{}, err
	}
	return w.info(), nil
}

// Unwatch deletes a standing query, ending every subscriber's stream.
func (s *Service) Unwatch(id string) error {
	w, err := s.watches.remove(id)
	if err != nil {
		return err
	}
	w.mu.Lock()
	s.watches.dropped.Add(w.dropped)
	subs := w.subs
	w.subs = make(map[*watchSub]struct{})
	w.mu.Unlock()
	for sub := range subs {
		sub.close()
	}
	return nil
}

// Watches lists the registered standing queries in registration order.
func (s *Service) Watches() []WatchInfo {
	ws := s.watches.snapshot()
	out := make([]WatchInfo, 0, len(ws))
	for _, w := range ws {
		out = append(out, w.info())
	}
	return out
}

// WatchInfo describes one registered watch.
func (s *Service) WatchInfo(id string) (WatchInfo, error) {
	w, err := s.watches.get(id)
	if err != nil {
		return WatchInfo{}, err
	}
	return w.info(), nil
}

// Subscribe attaches a bounded-buffer subscriber to a watch. The caller
// consumes sub.Matches() until sub.Closed() fires or it unsubscribes.
func (s *Service) Subscribe(id string) (*watchSub, error) {
	w, err := s.watches.get(id)
	if err != nil {
		return nil, err
	}
	sub := &watchSub{ch: make(chan WatchMatch, s.cfg.WatchBuffer), closed: make(chan struct{})}
	w.mu.Lock()
	w.subs[sub] = struct{}{}
	w.mu.Unlock()
	return sub, nil
}

// Unsubscribe detaches sub from the watch (a disconnected SSE client).
// Safe when the watch is already deleted or swapped.
func (s *Service) Unsubscribe(id string, sub *watchSub) {
	if w, err := s.watches.get(id); err == nil {
		w.mu.Lock()
		delete(w.subs, sub)
		w.mu.Unlock()
	}
	sub.close()
}

// evalWatch runs one standing-query evaluation. The first evaluation
// against a fresh state is the baseline: its matches are recorded in
// the state but not pushed, so subscribers only ever see matches new
// relative to registration (or to a hot-swap adoption). Evaluation
// errors are recorded on the watch, never propagated to the ingest —
// a broken watch must not poison the firehose.
func (s *Service) evalWatch(ctx context.Context, w *watch) (fresh int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	evalCtx, cancel := context.WithTimeout(ctx, s.cfg.DefaultTimeout)
	defer cancel()
	d, err := w.stmt.ExecDelta(evalCtx, w.params, w.state)
	w.evals++
	s.watches.evals.Add(1)
	if err != nil {
		w.lastEval = WatchEvalStats{Error: err.Error()}
		return 0
	}
	w.lastEval = WatchEvalStats{
		ScannedEvents: d.Stats.ScannedEvents,
		SegmentHits:   d.Stats.SegmentHits,
		SegmentMisses: d.Stats.SegmentMisses,
		FreshRows:     len(d.Fresh),
		Skipped:       d.Skipped,
	}
	if !w.baselined {
		w.baselined = true
		return 0
	}
	if len(d.Fresh) == 0 {
		return 0
	}
	s.watches.matches.Add(uint64(len(d.Fresh)))
	m := WatchMatch{WatchID: w.id, Columns: d.Columns, Rows: d.Fresh, TotalMatches: w.state.Matches()}
	for sub := range w.subs {
		w.offer(sub, m)
	}
	return len(d.Fresh)
}

// evalWatches re-evaluates every registered watch after an ingest
// commit, in registration order, returning how many evaluated and the
// total fresh rows produced.
func (s *Service) evalWatches(ctx context.Context) (evaluated, fresh int) {
	for _, w := range s.watches.snapshot() {
		fresh += s.evalWatch(ctx, w)
		evaluated++
	}
	return evaluated, fresh
}

// WatchStats aggregates the registry's counters.
func (s *Service) WatchStats() WatchStats {
	r := s.watches
	if r == nil {
		return WatchStats{}
	}
	st := WatchStats{
		Evals:   r.evals.Load(),
		Matches: r.matches.Load(),
		Dropped: r.dropped.Load(),
	}
	for _, w := range r.snapshot() {
		w.mu.Lock()
		st.Watches++
		st.Subscribers += len(w.subs)
		st.Dropped += w.dropped
		w.mu.Unlock()
	}
	return st
}

// WatchSeeds exports the registered watches — including their live
// subscribers — for hot-swap adoption by a successor service. Each
// seed takes ownership of its watch's subscriber set: the retiring
// watch is left with none, so its remaining evaluations cannot race
// the successor's subscribe/unsubscribe traffic on a shared map.
func (s *Service) WatchSeeds() []WatchSeed {
	ws := s.watches.snapshot()
	out := make([]WatchSeed, 0, len(ws))
	for _, w := range ws {
		w.mu.Lock()
		subs := w.subs
		w.subs = make(map[*watchSub]struct{})
		out = append(out, WatchSeed{
			ID:      w.id,
			Source:  w.stmt.Source(),
			Params:  w.params,
			subs:    subs,
			matches: w.state.Matches(),
			dropped: w.dropped,
		})
		w.mu.Unlock()
	}
	return out
}

// AdoptWatches re-prepares seeds against this service's database under
// their original ids, carrying live SSE subscriptions across a dataset
// hot-swap. Each adopted watch restarts with a fresh standing state:
// its first post-swap evaluation re-baselines silently, so subscribers
// are not replayed the swapped-in store's entire history — they resume
// receiving matches caused by post-swap ingests. Seeds whose query no
// longer compiles are dropped and their subscribers' streams closed.
func (s *Service) AdoptWatches(seeds []WatchSeed) {
	if s.watches == nil {
		for _, seed := range seeds {
			for sub := range seed.subs {
				sub.close()
			}
		}
		return
	}
	for _, seed := range seeds {
		stmt, err := s.db.Prepare(seed.Source)
		if err == nil {
			err = stmt.Check(aiql.Params(seed.Params))
		}
		if err != nil {
			for sub := range seed.subs {
				sub.close()
			}
			continue
		}
		w := &watch{
			id:      seed.ID,
			stmt:    stmt,
			params:  aiql.Params(seed.Params),
			state:   aiql.NewStandingState(),
			dropped: seed.dropped,
			subs:    seed.subs,
		}
		if w.subs == nil {
			w.subs = make(map[*watchSub]struct{})
		}
		if err := s.watches.insert(w); err != nil {
			for sub := range seed.subs {
				sub.close()
			}
		}
	}
}
