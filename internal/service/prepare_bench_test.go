package service

import (
	"context"
	"sync"
	"testing"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/experiments"
)

// fig4PrepDB is a dedicated Fig4 50k-event dataset for the prepared-
// statement benchmarks, with the segment scan cache enabled so both
// contenders reuse sealed-segment scans and the measured difference is
// the per-call compilation work (parse → semantic → estimate →
// schedule) that preparation amortizes. Separate from fig4DB so the
// scan cache never skews the latency-acceptance tests.
var fig4PrepDB = sync.OnceValue(func() *aiql.DB {
	db := aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42)))
	db.EnableSegmentScanCache(64 << 20)
	return db
})

// fig4SelQuery is a selective multi-pattern investigation (the paper's
// Query-1 shape with tight entity filters) — the interactive workload
// where per-call compilation (parse → semantic → pruning-power
// estimates → schedule) is a large fraction of total latency, which is
// precisely what preparing once amortizes away.
const fig4SelQuery = `(at "05/10/2018")
agentid = 2
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
with evt1 before evt2
return distinct p1, p2, p3, f1`

// fig4SelParamQuery is the same template with the host under
// investigation as the parameter an analyst iterates.
const fig4SelParamQuery = `(at "05/10/2018")
agentid = $agent
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
with evt1 before evt2
return distinct p1, p2, p3, f1`

// BenchmarkPrepareColdPerCall is the baseline the prepared API
// replaces: every call re-runs parse → semantic → plan (with
// pruning-power estimates) → execute on the full query text.
func BenchmarkPrepareColdPerCall(b *testing.B) {
	db := fig4PrepDB()
	if _, err := db.Query(fig4SelQuery); err != nil { // warm the scan cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(fig4SelQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedReexecute compiles the template once and re-executes
// with bound parameters: per call only bind + fixed-order plan +
// execute run.
func BenchmarkPreparedReexecute(b *testing.B) {
	db := fig4PrepDB()
	stmt, err := db.Prepare(fig4SelParamQuery)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	params := aiql.Params{"agent": 2}
	if _, err := stmt.Exec(ctx, params); err != nil { // warm the scan cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Exec(ctx, params); err != nil {
			b.Fatal(err)
		}
	}
}
